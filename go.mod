module dualcdb

go 1.22
