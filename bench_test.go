// Benchmarks regenerating the paper's experiments (Section 5). One
// benchmark per table/figure; each reports the figures' metric —
// pages/query (I/O with a cold cache) or pages (space) — via
// b.ReportMetric, so `go test -bench=. -benchmem` prints the series the
// paper plots. The full parameter sweeps (every N and k) are produced by
// cmd/experiments; benchmarks pin N to a mid-range cardinality to stay
// fast while preserving the comparisons.
package dualcdb_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dualcdb"
	"dualcdb/internal/core"
)

const benchN = 4000

type benchSetup struct {
	rel     *dualcdb.Relation
	queries []dualcdb.Query
}

func setupWorkload(b *testing.B, size dualcdb.SizeClass, kind dualcdb.QueryKind) benchSetup {
	b.Helper()
	rel, err := dualcdb.GenerateRelation(dualcdb.WorkloadConfig{N: benchN, Size: size, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := dualcdb.GenerateQueries(rel, dualcdb.QueryWorkloadConfig{
		Count: 6, Kind: kind, SelectivityLo: 0.10, SelectivityHi: 0.15, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	return benchSetup{rel: rel, queries: queries}
}

// benchDual measures technique T2 at slope-set cardinality k.
func benchDual(b *testing.B, s benchSetup, k int) {
	idx, err := dualcdb.BuildIndex(s.rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(k), Technique: dualcdb.T2, PoolPages: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	var pages uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := s.queries[i%len(s.queries)]
		if err := idx.Pool().EvictAll(); err != nil {
			b.Fatal(err)
		}
		idx.Pool().ResetStats()
		res, err := idx.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		pages += res.Stats.PagesRead
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
}

// benchRPlus measures the R⁺-tree baseline.
func benchRPlus(b *testing.B, s benchSetup) {
	idx, err := dualcdb.BuildRPlusIndex(s.rel, dualcdb.RPlusOptions{PoolPages: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	var pages uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := s.queries[i%len(s.queries)]
		if err := idx.Pool().EvictAll(); err != nil {
			b.Fatal(err)
		}
		idx.Pool().ResetStats()
		res, err := idx.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		pages += res.Stats.PagesRead
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
}

func benchFigure(b *testing.B, size dualcdb.SizeClass, kind dualcdb.QueryKind) {
	s := setupWorkload(b, size, kind)
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("T2/k=%d", k), func(b *testing.B) { benchDual(b, s, k) })
	}
	b.Run("RPlusTree", func(b *testing.B) { benchRPlus(b, s) })
}

// BenchmarkFig8aExistSmall regenerates Figure 8(a): EXIST selections over
// small objects — pages/query for T2 (k = 2..5) vs the R⁺-tree.
func BenchmarkFig8aExistSmall(b *testing.B) {
	benchFigure(b, dualcdb.SmallObjects, dualcdb.EXIST)
}

// BenchmarkFig8bAllSmall regenerates Figure 8(b): ALL selections over
// small objects.
func BenchmarkFig8bAllSmall(b *testing.B) {
	benchFigure(b, dualcdb.SmallObjects, dualcdb.ALL)
}

// BenchmarkFig9aExistMedium regenerates Figure 9(a): EXIST selections over
// medium objects.
func BenchmarkFig9aExistMedium(b *testing.B) {
	benchFigure(b, dualcdb.MediumObjects, dualcdb.EXIST)
}

// BenchmarkFig9bAllMedium regenerates Figure 9(b): ALL selections over
// medium objects.
func BenchmarkFig9bAllMedium(b *testing.B) {
	benchFigure(b, dualcdb.MediumObjects, dualcdb.ALL)
}

// BenchmarkFig10Space regenerates Figure 10: occupied pages for T2
// (k = 2..5) and the R⁺-tree at N = 4000 small objects. The metric is
// build cost; the reported "pages" metric is the figure's series.
func BenchmarkFig10Space(b *testing.B) {
	rel, err := dualcdb.GenerateRelation(dualcdb.WorkloadConfig{
		N: benchN, Size: dualcdb.SmallObjects, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("T2/k=%d", k), func(b *testing.B) {
			var pages int
			for i := 0; i < b.N; i++ {
				idx, err := dualcdb.BuildIndex(rel, dualcdb.IndexOptions{
					Slopes: dualcdb.EquiangularSlopes(k), Technique: dualcdb.T2,
				})
				if err != nil {
					b.Fatal(err)
				}
				pages = idx.Pages()
			}
			b.ReportMetric(float64(pages), "pages")
		})
	}
	b.Run("RPlusTree", func(b *testing.B) {
		var pages int
		for i := 0; i < b.N; i++ {
			idx, err := dualcdb.BuildRPlusIndex(rel, dualcdb.RPlusOptions{})
			if err != nil {
				b.Fatal(err)
			}
			pages = idx.Pages()
		}
		b.ReportMetric(float64(pages), "pages")
	})
}

// BenchmarkQueryBatchParallel measures QueryBatch throughput on the
// Figure 9 (medium objects) workload at 1/2/4/8 query workers over a warm
// sharded buffer pool. The workers=1 row is the sequential baseline the
// speedup is read against; on a multi-core host the 4-worker row is
// expected to clear 2× its queries/sec.
func BenchmarkQueryBatchParallel(b *testing.B) {
	rel, err := dualcdb.GenerateRelation(dualcdb.WorkloadConfig{
		N: benchN, Size: dualcdb.MediumObjects, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := dualcdb.GenerateQueries(rel, dualcdb.QueryWorkloadConfig{
		Count: 64, Kind: dualcdb.EXIST, SelectivityLo: 0.10, SelectivityHi: 0.15, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := dualcdb.BuildIndex(rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(3), Technique: dualcdb.T2,
		PoolPages: 1 << 16, BuildWorkers: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the pool so the rows measure compute scaling, not first-touch
	// page faulting.
	if _, err := idx.QueryBatch(queries, dualcdb.BatchOptions{Workers: 1}); err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.QueryBatch(queries, dualcdb.BatchOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*len(queries))/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// BenchmarkBuildParallel measures bulk-loading the 2·k slope trees across
// a build worker pool at 1/2/4/8 workers (k = 4, so eight independent
// trees plus per-slope handicap folding are available to parallelize).
func BenchmarkBuildParallel(b *testing.B) {
	rel, err := dualcdb.GenerateRelation(dualcdb.WorkloadConfig{
		N: benchN, Size: dualcdb.MediumObjects, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Resolve every tuple extension up front so the rows time tree
	// construction, not the once-per-relation geometry cache fill.
	if _, err := dualcdb.BuildIndex(rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(4), Technique: dualcdb.T2,
	}); err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dualcdb.BuildIndex(rel, dualcdb.IndexOptions{
					Slopes: dualcdb.EquiangularSlopes(4), Technique: dualcdb.T2,
					BuildWorkers: w,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1PlanT1 measures the Table 1 app-query planner (the
// rewrite every out-of-set T1/fallback query pays).
func BenchmarkTable1PlanT1(b *testing.B) {
	slopes := dualcdb.EquiangularSlopes(5)
	rng := rand.New(rand.NewSource(3))
	queries := make([]dualcdb.Query, 256)
	for i := range queries {
		queries[i] = dualcdb.Exist2(rng.NormFloat64()*3, rng.NormFloat64()*40, dualcdb.GE)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanT1(queries[i%len(queries)], slopes, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThm31RestrictedQuery measures the Section 3 structure on
// in-set slopes — the O(log_B n + t) path of Theorem 3.1.
func BenchmarkThm31RestrictedQuery(b *testing.B) {
	s := setupWorkload(b, dualcdb.SmallObjects, dualcdb.EXIST)
	slopes := dualcdb.EquiangularSlopes(3)
	idx, err := dualcdb.BuildIndex(s.rel, dualcdb.IndexOptions{
		Slopes: slopes, Technique: dualcdb.T2, PoolPages: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	var pages uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := s.queries[i%len(s.queries)]
		q.Slope[0] = slopes[i%len(slopes)] // force the restricted path
		if err := idx.Pool().EvictAll(); err != nil {
			b.Fatal(err)
		}
		idx.Pool().ResetStats()
		res, err := idx.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		pages += res.Stats.PagesRead
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
}

// BenchmarkIndexBuild measures bulk-loading the dual index.
func BenchmarkIndexBuild(b *testing.B) {
	rel, err := dualcdb.GenerateRelation(dualcdb.WorkloadConfig{
		N: 2000, Size: dualcdb.SmallObjects, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dualcdb.BuildIndex(rel, dualcdb.IndexOptions{
			Slopes: dualcdb.EquiangularSlopes(3), Technique: dualcdb.T2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexInsert measures incremental insertion (trees plus
// handicap maintenance).
func BenchmarkIndexInsert(b *testing.B) {
	rel, err := dualcdb.GenerateRelation(dualcdb.WorkloadConfig{
		N: b.N, Size: dualcdb.SmallObjects, Seed: 13,
	})
	if err != nil {
		b.Fatal(err)
	}
	ids := rel.IDs()
	tuples := make([]*dualcdb.Tuple, 0, len(ids))
	for _, id := range ids {
		t, _ := rel.Get(id)
		cons := t.Constraints()
		fresh, _ := dualcdb.NewTuple(2, cons)
		tuples = append(tuples, fresh)
	}
	target := dualcdb.NewRelation(2)
	idx, err := dualcdb.NewIndex(target, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(3), Technique: dualcdb.T2, PoolPages: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Insert(tuples[i]); err != nil {
			b.Fatal(err)
		}
	}
}
