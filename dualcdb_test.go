package dualcdb_test

import (
	"fmt"
	"testing"

	"dualcdb"
)

// TestQuickstart exercises the documented public API end to end.
func TestQuickstart(t *testing.T) {
	rel := dualcdb.NewRelation(2)
	idx, err := dualcdb.NewIndex(rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	triangle, err := dualcdb.ParseTuple("x >= 0 && y >= 0 && x + y <= 4", 2)
	if err != nil {
		t.Fatal(err)
	}
	id, err := idx.Insert(triangle)
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.Query(dualcdb.Exist2(0.5, 1, dualcdb.GE))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 || res.IDs[0] != id {
		t.Fatalf("EXIST(y ≥ 0.5x+1) = %v", res.IDs)
	}
	res, err = idx.Query(dualcdb.All2(0, -1, dualcdb.GE)) // triangle ⊆ {y ≥ −1}
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 {
		t.Fatalf("ALL(y ≥ −1) = %v", res.IDs)
	}
	res, err = idx.Query(dualcdb.All2(0, 1, dualcdb.GE)) // triangle ⊄ {y ≥ 1}
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 0 {
		t.Fatalf("ALL(y ≥ 1) = %v", res.IDs)
	}
}

// TestFacadeWorkloadAndBaseline drives the generator, both index
// structures and the ground-truth evaluator through the public API.
func TestFacadeWorkloadAndBaseline(t *testing.T) {
	rel, err := dualcdb.GenerateRelation(dualcdb.WorkloadConfig{
		N: 400, Size: dualcdb.SmallObjects, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	dual, err := dualcdb.BuildIndex(rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(3), Technique: dualcdb.T2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rplus, err := dualcdb.BuildRPlusIndex(rel, dualcdb.RPlusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := dualcdb.GenerateQueries(rel, dualcdb.QueryWorkloadConfig{
		Count: 8, Kind: dualcdb.ALL, SelectivityLo: 0.1, SelectivityHi: 0.15, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, err := q.Eval(rel)
		if err != nil {
			t.Fatal(err)
		}
		dres, err := dual.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		rres, err := rplus.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(dres.IDs) != len(want) || len(rres.IDs) != len(want) {
			t.Fatalf("%v: dual %d, rplus %d, want %d", q, len(dres.IDs), len(rres.IDs), len(want))
		}
		for i := range want {
			if dres.IDs[i] != want[i] || rres.IDs[i] != want[i] {
				t.Fatalf("%v: mismatch at %d", q, i)
			}
		}
	}
}

// Example demonstrates the README quick-start snippet.
func Example() {
	rel := dualcdb.NewRelation(2)
	idx, _ := dualcdb.NewIndex(rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(3),
	})
	t1, _ := dualcdb.ParseTuple("x >= 0 && y >= 0 && x + y <= 4", 2)
	t2, _ := dualcdb.ParseTuple("y >= 8", 2) // an infinite object
	id1, _ := idx.Insert(t1)
	id2, _ := idx.Insert(t2)

	exist, _ := idx.Query(dualcdb.Exist2(0, 6, dualcdb.GE)) // who meets y ≥ 6?
	all, _ := idx.Query(dualcdb.All2(0, 6, dualcdb.GE))     // who lies inside y ≥ 6?
	fmt.Println("ids:", id1, id2)
	fmt.Println("EXIST(y>=6):", exist.IDs)
	fmt.Println("ALL(y>=6):  ", all.IDs)
	// Output:
	// ids: 1 2
	// EXIST(y>=6): [2]
	// ALL(y>=6):   [2]
}
