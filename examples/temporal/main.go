// Temporal scenario: constraint databases model time naturally because
// validity intervals and ramps are linear constraints. Here a relation
// stores service-level envelopes over (t, load): each service promises
// that its load stays inside a convex region of the time×load plane —
// possibly forever (unbounded in t).
//
// Capacity questions become half-plane selections:
//
//	ALL(load <= c·t + b)   — which services provably stay under a ramp?
//	EXIST(load >= c·t + b) — which services may ever exceed it?
package main

import (
	"fmt"
	"log"
	"sort"

	"dualcdb"
)

func main() {
	rel := dualcdb.NewRelation(2) // variables: x = t (hours), y = load (req/s)
	idx, err := dualcdb.BuildIndex(rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(5), Technique: dualcdb.T2,
	})
	if err != nil {
		log.Fatal(err)
	}

	services := []struct {
		name string
		cons string
	}{
		// Batch job: active 0–8 h, load between 10 and 20 req/s.
		{"nightly-batch", "x >= 0 && x <= 8 && y >= 10 && y <= 20"},
		// Web frontend: runs forever, load ramps at most 2 req/s per hour.
		{"web-frontend", "x >= 0 && y >= 0 && y <= 2x + 15"},
		// Analytics: starts at hour 4, load 5–30, shuts down by hour 40.
		{"analytics", "x >= 4 && x <= 40 && y >= 5 && y <= 30"},
		// Streaming: forever, load pinned between two slow ramps.
		{"streaming", "x >= 0 && y >= 0.25x + 8 && y <= 0.25x + 12"},
		// Burst cache warmer: short and hot.
		{"cache-warmer", "x >= 1 && x <= 2 && y >= 60 && y <= 90"},
	}
	names := map[dualcdb.TupleID]string{}
	for _, s := range services {
		t, err := dualcdb.ParseTuple(s.cons, 2)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		id, err := idx.Insert(t)
		if err != nil {
			log.Fatal(err)
		}
		names[id] = s.name
	}

	show := func(label string, q dualcdb.Query) {
		res, err := idx.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		var got []string
		for _, id := range res.IDs {
			got = append(got, names[id])
		}
		sort.Strings(got)
		fmt.Printf("%-58s %v\n", label, got)
	}

	fmt.Println("capacity ramp: load = 0.5·t + 25")
	// Services that provably stay under the ramp at all times they exist.
	show("  always under it (ALL load <= 0.5t + 25):", dualcdb.All2(0.5, 25, dualcdb.LE))
	// Services that can ever exceed it.
	show("  may exceed it (EXIST load >= 0.5t + 25):", dualcdb.Exist2(0.5, 25, dualcdb.GE))

	fmt.Println("\nminimum heartbeat: load = 5 (flat line)")
	show("  never drop below 5 (ALL load >= 5):", dualcdb.All2(0, 5, dualcdb.GE))
	show("  can idle below 5 (EXIST load <= 5):", dualcdb.Exist2(0, 5, dualcdb.LE))

	// What-if: retire the cache warmer and tighten the ramp.
	for id, n := range names {
		if n == "cache-warmer" {
			if err := idx.Delete(id); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\nafter retiring cache-warmer, ramp tightened to load = 0.3·t + 24")
	show("  always under it (ALL load <= 0.3t + 24):", dualcdb.All2(0.3, 24, dualcdb.LE))
}
