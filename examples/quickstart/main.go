// Quickstart: create a constraint relation, index it with the
// dual-representation index, and run ALL/EXIST half-plane selections.
package main

import (
	"fmt"
	"log"

	"dualcdb"
)

func main() {
	// A relation over E²: each tuple is a conjunction of linear
	// constraints — a convex region, possibly unbounded.
	rel := dualcdb.NewRelation(2)

	// The index keeps two B⁺-trees per slope in the predefined set S
	// (here: three equiangular slopes) and answers arbitrary-slope queries
	// with the paper's T2 approximation technique.
	idx, err := dualcdb.NewIndex(rel, dualcdb.IndexOptions{
		Slopes:    dualcdb.EquiangularSlopes(3),
		Technique: dualcdb.T2,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, src := range []string{
		"x >= 0 && y >= 0 && x + y <= 4",       // a triangle
		"x >= 5 && x <= 7 && y >= 1 && y <= 2", // a box
		"y >= 2x + 10",                         // an infinite half-plane — fine for this index
		"y >= 3 && y <= 4 && x >= -2",          // an infinite strip to the right
	} {
		t, err := dualcdb.ParseTuple(src, 2)
		if err != nil {
			log.Fatal(err)
		}
		id, err := idx.Insert(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tuple %d: %s (bounded=%v)\n", id, src, t.IsBounded())
	}

	// EXIST: which tuples intersect the half-plane y ≥ 0.7·x + 2?
	exist, err := idx.Query(dualcdb.Exist2(0.7, 2, dualcdb.GE))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEXIST(y >= 0.7x + 2) -> %v\n", exist.IDs)
	fmt.Printf("  executed via %q, %d candidates, %d false hits, %d page reads\n",
		exist.Stats.Path, exist.Stats.Candidates, exist.Stats.FalseHits, exist.Stats.PagesRead)

	// ALL: which tuples lie entirely inside y ≥ 0.7·x + 2?
	all, err := idx.Query(dualcdb.All2(0.7, 2, dualcdb.GE))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALL(y >= 0.7x + 2)   -> %v\n", all.IDs)

	// Selections whose slope is in S run the optimal restricted structure.
	restricted, err := idx.Query(dualcdb.All2(idx.Slopes()[1], 2.5, dualcdb.LE))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALL(y <= %gx + 2.5)  -> %v  (path %q)\n",
		idx.Slopes()[1], restricted.IDs, restricted.Stats.Path)
}
