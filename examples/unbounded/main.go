// Infinite objects: the Operations Research scenario from the paper's
// introduction (and its Figure 1). Linear-programming feasible regions
// are naturally unbounded polyhedra; the dual-representation index stores
// them exactly, while bounding-box structures either reject them or —
// worse — give wrong answers after clipping them at a working window.
package main

import (
	"fmt"
	"log"

	"dualcdb"
)

func main() {
	rel := dualcdb.NewRelation(2)
	idx, err := dualcdb.BuildIndex(rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(3), Technique: dualcdb.T2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Feasible regions of three production-planning LPs over (x, y) =
	// (units of product A, units of product B). All are unbounded — more
	// production is always feasible in some direction.
	plans := []struct {
		name string
		cons string
	}{
		{"plant-1", "x >= 0 && y >= 0 && y <= 2x + 5"},
		{"plant-2", "x >= 3 && y >= x - 1"},
		{"plant-3", "y >= x - 100 && y <= x - 99"}, // Figure 1's t2: a far-away strip
	}
	ids := map[string]dualcdb.TupleID{}
	for _, p := range plans {
		t, err := dualcdb.ParseTuple(p.cons, 2)
		if err != nil {
			log.Fatal(err)
		}
		id, err := idx.Insert(t)
		if err != nil {
			log.Fatal(err)
		}
		ids[p.name] = id
		fmt.Printf("%-8s %-34s bounded=%v\n", p.name, p.cons, t.IsBounded())
	}

	// The R⁺-tree cannot store any of these.
	rplus, err := dualcdb.BuildRPlusIndex(rel, dualcdb.RPlusOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nR+-tree skipped %d of %d tuples (bounded objects only)\n",
		rplus.Skipped, rel.Len())

	// A profit constraint: profit = −x + y ≥ 100, i.e. y ≥ x + 100.
	// Which plans *can* reach it (EXIST)? Which satisfy it always (ALL)?
	q := dualcdb.Exist2(1, 100, dualcdb.GE)
	res, err := idx.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%v -> %v\n", q, res.IDs)
	for name, id := range ids {
		for _, got := range res.IDs {
			if got == id {
				fmt.Printf("  %s can reach the profit region\n", name)
			}
		}
	}

	// Figure 1's point: query q ≡ y ≥ −x + 100 and the strip plant-3 are
	// disjoint inside the window [−50, 50]² but intersect far outside it.
	fig1 := dualcdb.Exist2(-1, 100, dualcdb.GE)
	res, err = idx.Query(fig1)
	if err != nil {
		log.Fatal(err)
	}
	hit := false
	for _, id := range res.IDs {
		if id == ids["plant-3"] {
			hit = true
		}
	}
	fmt.Printf("\nFigure 1 check: %v intersects plant-3? %v (correct: true)\n", fig1, hit)

	// The window-clipped version of plant-3 — what a bounded structure
	// would store — misses the intersection entirely.
	clipped, err := dualcdb.ParseTuple(
		"y >= x - 100 && y <= x - 99 && x >= -50 && x <= 50 && y >= -50 && y <= 50", 2)
	if err != nil {
		log.Fatal(err)
	}
	if clipped.IsSatisfiable() {
		ok, err := fig1.Matches(clipped)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window-clipped plant-3 intersects? %v (clipping loses the answer)\n", ok)
	} else {
		fmt.Println("window-clipped plant-3 is empty inside the window (clipping loses the object)")
	}
}
