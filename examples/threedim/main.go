// Three-dimensional constraint database (Section 4.4): resource envelopes
// over (cpu, memory, cost). Each deployment plan is a convex region of
// feasible (cpu, mem, cost) triples; budget planes are 3-D half-space
// selections cost θ b₁·cpu + b₂·mem + b₃.
//
// The d-dimensional index keeps one B^up/B^down tree pair per slope-space
// site; the query routes to the nearest site of the proximity partition
// and the cell handicaps bound the second sweep — queries never touch the
// tuple geometry until refinement.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"dualcdb"
)

func main() {
	rel := dualcdb.NewRelation(3) // variables: x = cpu, y = mem, z = cost
	idx, err := dualcdb.BuildIndexD(rel, dualcdb.IndexDOptions{
		// A 3×3 lattice of slope-space sites over (b1, b2) ∈ [−1.5, 1.5]².
		Sites: dualcdb.LatticeSites(2, 3, 1.5),
	})
	if err != nil {
		log.Fatal(err)
	}

	plans := []struct {
		name string
		cons string
	}{
		// cost grows with cpu and memory within each plan's envelope.
		{"burst", "x >= 1 && x <= 8 && y >= 2 && y <= 4 && z >= 0.5x + 0.25y && z <= 0.5x + 0.25y + 3"},
		{"steady", "x >= 2 && x <= 4 && y >= 1 && y <= 16 && z >= 0.2x + 0.5y && z <= 0.2x + 0.5y + 1"},
		{"spot", "x >= 0 && x <= 16 && y >= 0 && y <= 16 && z >= 0.05x + 0.05y && z <= 0.05x + 0.05y + 0.5"},
		// A reserved contract: unbounded cpu at flat cost band.
		{"reserved", "x >= 4 && y >= 4 && y <= 32 && z >= 6 && z <= 7"},
	}
	names := map[dualcdb.TupleID]string{}
	for _, p := range plans {
		t, err := dualcdb.ParseTuple(p.cons, 3)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		id, err := idx.Insert(t)
		if err != nil {
			log.Fatal(err)
		}
		names[id] = p.name
		fmt.Printf("%-9s bounded=%v  %s\n", p.name, t.IsBounded(), p.cons)
	}

	show := func(label string, q dualcdb.Query) {
		res, err := idx.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		var got []string
		for _, id := range res.IDs {
			got = append(got, names[id])
		}
		sort.Strings(got)
		fmt.Printf("%-64s [%s]  path=%s\n", label, strings.Join(got, ", "), res.Stats.Path)
	}

	fmt.Println("\nbudget plane: cost = 0.3·cpu + 0.3·mem + 2")
	budget := []float64{0.3, 0.3}
	show("  plans always within budget (ALL z <= plane):",
		dualcdb.NewQuery(dualcdb.ALL, budget, 2, dualcdb.LE))
	show("  plans that can exceed it (EXIST z >= plane):",
		dualcdb.NewQuery(dualcdb.EXIST, budget, 2, dualcdb.GE))

	fmt.Println("\nminimum-spend plane: cost = 1 (flat)")
	show("  plans that always cost at least 1 (ALL z >= 1):",
		dualcdb.NewQuery(dualcdb.ALL, []float64{0, 0}, 1, dualcdb.GE))
	show("  plans that can run under 1 (EXIST z <= 1):",
		dualcdb.NewQuery(dualcdb.EXIST, []float64{0, 0}, 1, dualcdb.LE))

	fmt.Printf("\nindex: %d sites, %d pages, %d tuples\n",
		len(idx.Sites()), idx.Pages(), idx.Len())
}
