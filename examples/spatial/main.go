// Spatial-database scenario: a city's zoning map stored as a constraint
// relation. Zones are convex polygons; planners ask half-plane questions
// like "which zones are entirely north-east of the new railway line?"
// (ALL) and "which zones does the flight corridor touch?" (EXIST).
//
// The example runs the same selections through the dual index with
// technique T2, with technique T1, and through the R⁺-tree baseline, and
// shows that the answers agree while the execution profiles differ —
// duplicates for T1, extra false hits for the R⁺-tree ALL path.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dualcdb"
)

func main() {
	rel := dualcdb.NewRelation(2)

	// A few hand-made downtown zones...
	zones := []struct {
		name string
		cons string
	}{
		{"old town", "x >= -4 && x <= 4 && y >= -3 && y <= 3"},
		{"harbour", "x >= 6 && y >= -8 && x + y <= 4 && y <= -2"},
		{"campus", "y >= 6 && y <= 12 && y >= x + 2 && y >= -x + 2"},
		{"airport", "x >= -20 && x <= -12 && y >= 8 && y <= 14"},
		{"park", "x + y >= 10 && x - y <= -2 && y <= 14 && x >= 1"},
	}
	names := map[dualcdb.TupleID]string{}
	for _, z := range zones {
		t, err := dualcdb.ParseTuple(z.cons, 2)
		if err != nil {
			log.Fatalf("%s: %v", z.name, err)
		}
		id, err := rel.Insert(t)
		if err != nil {
			log.Fatal(err)
		}
		names[id] = z.name
	}
	// ...plus a synthetic suburb belt so the indexes have real work.
	rng := rand.New(rand.NewSource(4))
	suburb, err := dualcdb.GenerateRelation(dualcdb.WorkloadConfig{
		N: 400, Size: dualcdb.SmallObjects, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	suburb.Scan(func(t *dualcdb.Tuple) bool {
		fresh, err := dualcdb.NewTuple(2, t.Constraints())
		if err != nil {
			log.Fatal(err)
		}
		id, err := rel.Insert(fresh)
		if err != nil {
			log.Fatal(err)
		}
		names[id] = fmt.Sprintf("lot-%d", id)
		return true
	})
	_ = rng

	t2, err := dualcdb.BuildIndex(rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(4), Technique: dualcdb.T2,
	})
	if err != nil {
		log.Fatal(err)
	}
	t1, err := dualcdb.BuildIndex(rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(4), Technique: dualcdb.T1,
	})
	if err != nil {
		log.Fatal(err)
	}
	rplus, err := dualcdb.BuildRPlusIndex(rel, dualcdb.RPlusOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The railway runs along y = 0.8·x − 6; the corridor is its upper side.
	queries := []struct {
		label string
		q     dualcdb.Query
	}{
		{"zones entirely above the railway (ALL y >= 0.8x - 6)", dualcdb.All2(0.8, -6, dualcdb.GE)},
		{"zones the corridor touches (EXIST y >= 0.8x - 6)", dualcdb.Exist2(0.8, -6, dualcdb.GE)},
		{"zones fully below the flight path (ALL y <= -0.4x + 18)", dualcdb.All2(-0.4, 18, dualcdb.LE)},
	}
	for _, qc := range queries {
		fmt.Printf("\n%s\n", qc.label)
		r2, err := t2.Query(qc.q)
		if err != nil {
			log.Fatal(err)
		}
		r1, err := t1.Query(qc.q)
		if err != nil {
			log.Fatal(err)
		}
		rr, err := rplus.Query(qc.q)
		if err != nil {
			log.Fatal(err)
		}
		if len(r1.IDs) != len(r2.IDs) || len(rr.IDs) != len(r2.IDs) {
			log.Fatalf("structures disagree: T2=%d T1=%d R+=%d results",
				len(r2.IDs), len(r1.IDs), len(rr.IDs))
		}
		fmt.Printf("  %d matching zones; named ones:", len(r2.IDs))
		shown := 0
		for _, id := range r2.IDs {
			if n := names[id]; n != "" && id <= dualcdb.TupleID(len(zones)) {
				fmt.Printf(" %s", n)
				shown++
			}
		}
		if shown == 0 {
			fmt.Print(" (none)")
		}
		fmt.Println()
		fmt.Printf("  T2:      path=%-14s candidates=%-4d falseHits=%-3d duplicates=%d\n",
			r2.Stats.Path, r2.Stats.Candidates, r2.Stats.FalseHits, r2.Stats.Duplicates)
		fmt.Printf("  T1:      path=%-14s candidates=%-4d falseHits=%-3d duplicates=%d\n",
			r1.Stats.Path, r1.Stats.Candidates, r1.Stats.FalseHits, r1.Stats.Duplicates)
		fmt.Printf("  R+-tree: path=%-14s candidates=%-4d falseHits=%-3d duplicates=%d\n",
			rr.Stats.Path, rr.Stats.Candidates, rr.Stats.FalseHits, rr.Stats.Duplicates)
	}
}
