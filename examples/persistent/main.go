// Persistence: the dual index plus its relation form a self-contained
// single-file database. This example creates one, fills it with a mixed
// (bounded + unbounded) workload, saves it, reopens it through a cold
// buffer pool and shows that queries — and further updates — carry on.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dualcdb"
)

func main() {
	dir, err := os.MkdirTemp("", "dualcdb-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "zones.cdb")

	// --- Session 1: create, load, save. ---
	rel, err := dualcdb.GenerateRelation(dualcdb.WorkloadConfig{
		N: 500, Size: dualcdb.SmallObjects, UnboundedFraction: 0.1, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	idx, err := dualcdb.CreateDatabase(path, rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(3), Technique: dualcdb.T2,
	})
	if err != nil {
		log.Fatal(err)
	}
	q := dualcdb.Exist2(0.6, 10, dualcdb.GE)
	before, err := idx.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.Save(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1: %d tuples indexed, %d tree pages, %v -> %d results; saved to %s\n",
		idx.Len(), idx.Pages(), q, len(before.IDs), filepath.Base(path))

	// --- Session 2: reopen from disk. ---
	rel2, idx2, err := dualcdb.OpenDatabase(path, dualcdb.DefaultPageSize)
	if err != nil {
		log.Fatal(err)
	}
	after, err := idx2.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	same := len(after.IDs) == len(before.IDs)
	for i := range after.IDs {
		if !same || after.IDs[i] != before.IDs[i] {
			same = false
			break
		}
	}
	fmt.Printf("session 2: reopened %d tuples; same answer as before saving: %v\n",
		rel2.Len(), same)

	// The reopened database accepts updates and can be saved again.
	extra, err := dualcdb.ParseTuple("y >= 0.6x + 10 && y <= 0.6x + 11", 2)
	if err != nil {
		log.Fatal(err)
	}
	id, err := idx2.Insert(extra)
	if err != nil {
		log.Fatal(err)
	}
	res, err := idx2.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2: inserted tuple %d (an infinite strip on the query line); results now %d\n",
		id, len(res.IDs))
	if err := idx2.Save(); err != nil {
		log.Fatal(err)
	}

	// --- Session 3: verify the update survived. ---
	rel3, idx3, err := dualcdb.OpenDatabase(path, dualcdb.DefaultPageSize)
	if err != nil {
		log.Fatal(err)
	}
	res3, err := idx3.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 3: reopened %d tuples; results %d (update persisted: %v)\n",
		rel3.Len(), len(res3.IDs), len(res3.IDs) == len(res.IDs))
}
