// Package dualcdb is a linear constraint database engine with
// dual-representation indexing, reproducing Bertino, Catania and
// Chidlovskii, "Indexing Constraint Databases by Using a Dual
// Representation" (ICDE 1999).
//
// A relation stores generalized tuples — conjunctions of linear
// constraints over real variables, i.e. convex polyhedra that may be
// unbounded. The index answers the two selection types of constraint
// query languages against a query half-plane q:
//
//	ALL(q, r)   — tuples whose extension is contained in q
//	EXIST(q, r) — tuples whose extension intersects q
//
// both in O(log_B n + t) page accesses when the query slope belongs to a
// predefined set S, and by two approximation techniques (T1 and T2, the
// paper's contribution) otherwise. An R⁺-tree baseline, the paper's
// workload generators and an experiment harness that regenerates every
// figure are included.
//
// Quick start:
//
//	rel := dualcdb.NewRelation(2)
//	t, _ := dualcdb.ParseTuple("x >= 0 && y >= 0 && x + y <= 4", 2)
//	idx, _ := dualcdb.NewIndex(rel, dualcdb.IndexOptions{
//		Slopes: dualcdb.EquiangularSlopes(3),
//	})
//	idx.Insert(t)
//	res, _ := idx.Query(dualcdb.Exist2(0.5, 1, dualcdb.GE)) // y ≥ 0.5x + 1 ?
//	fmt.Println(res.IDs)
package dualcdb

import (
	"net/http"

	"dualcdb/internal/constraint"
	"dualcdb/internal/core"
	"dualcdb/internal/geom"
	"dualcdb/internal/harness"
	"dualcdb/internal/obs"
	"dualcdb/internal/pagestore"
	"dualcdb/internal/rplustree"
	"dualcdb/internal/workload"
)

// Core model types.
type (
	// Tuple is a generalized tuple: a conjunction of linear constraints.
	Tuple = constraint.Tuple
	// TupleID identifies a tuple within a relation.
	TupleID = constraint.TupleID
	// Relation is a set of generalized tuples over one variable space.
	Relation = constraint.Relation
	// Query is an ALL/EXIST half-plane selection.
	Query = constraint.Query
	// QueryKind is ALL or EXIST.
	QueryKind = constraint.QueryKind
	// HalfSpace is a single linear constraint a·x + c θ 0.
	HalfSpace = geom.HalfSpace
	// Op is a constraint operator (LE or GE).
	Op = geom.Op
	// Polyhedron is a tuple extension in vertex/ray representation.
	Polyhedron = geom.Polyhedron
	// Point is a point in E^d.
	Point = geom.Point
)

// Re-exported constants.
const (
	// LE is the operator "≤ 0".
	LE = geom.LE
	// GE is the operator "≥ 0".
	GE = geom.GE
	// EXIST selections retrieve intersecting tuples.
	EXIST = constraint.EXIST
	// ALL selections retrieve contained tuples.
	ALL = constraint.ALL
)

// NewRelation creates an empty relation over E^dim.
func NewRelation(dim int) *Relation { return constraint.NewRelation(dim) }

// NewTuple builds a generalized tuple from constraints.
func NewTuple(dim int, cons []HalfSpace) (*Tuple, error) { return constraint.NewTuple(dim, cons) }

// ParseTuple parses the textual constraint syntax, e.g.
// "x >= 0 && y >= 0 && x + y <= 4".
func ParseTuple(s string, dim int) (*Tuple, error) { return constraint.ParseTuple(s, dim) }

// ParseConstraints parses a conjunction into individual constraints.
func ParseConstraints(s string, dim int) ([]HalfSpace, error) {
	return constraint.ParseConstraints(s, dim)
}

// NewQuery builds a d-dimensional half-plane selection
// Q(x_d θ slope·x + intercept).
func NewQuery(kind QueryKind, slope []float64, intercept float64, op Op) Query {
	return constraint.NewQuery(kind, slope, intercept, op)
}

// Exist2 builds the 2-D selection EXIST(y op a·x + b).
func Exist2(a, b float64, op Op) Query { return constraint.Query2(constraint.EXIST, a, b, op) }

// All2 builds the 2-D selection ALL(y op a·x + b).
func All2(a, b float64, op Op) Query { return constraint.Query2(constraint.ALL, a, b, op) }

// The dual-representation index (the paper's contribution).
type (
	// Index is the 2-D dual-representation index.
	Index = core.Index
	// IndexOptions configures an Index.
	IndexOptions = core.Options
	// Technique selects T1, T2 or restricted-only processing.
	Technique = core.Technique
	// Result is a selection answer with execution statistics.
	Result = core.Result
	// QueryStats describes how a selection executed.
	QueryStats = core.QueryStats
	// BatchOptions tunes Index.QueryBatch's worker pool and intra-query
	// parallelism; the zero value selects sensible defaults.
	BatchOptions = core.BatchOptions
	// Snapshot is a pinned, immutable read view of one committed index
	// version: queries on it are repeatable and unaffected by concurrent
	// commits. Obtain with Index.Snapshot, release promptly (DESIGN.md
	// §13).
	Snapshot = core.Snapshot
	// Commit is a writer batch: stage Insert/Delete against Index.Begin's
	// batch, then Commit publishes all of it as one new version (or Abort
	// discards it invisibly).
	Commit = core.Commit
)

// Technique constants.
const (
	// T2 is the single-tree handicap technique (Section 4.2, default).
	T2 = core.T2
	// T1 is the two-app-query technique (Section 4.1).
	T1 = core.T1
	// RestrictedOnly supports only query slopes in S (Section 3).
	RestrictedOnly = core.RestrictedOnly
)

// d-dimensional index (Section 4.4) and generalized-tuple selections.
type (
	// IndexD is the d-dimensional dual index (Section 4.4).
	IndexD = core.IndexD
	// IndexDOptions configures an IndexD.
	IndexDOptions = core.OptionsD
	// TupleResult is the answer of a generalized-tuple selection.
	TupleResult = core.TupleResult
	// QueryTupleStats describes a generalized-tuple execution.
	QueryTupleStats = core.QueryTupleStats
)

// NewIndexD creates an empty d-dimensional dual index over rel.
func NewIndexD(rel *Relation, opt IndexDOptions) (*IndexD, error) { return core.NewD(rel, opt) }

// BuildIndexD bulk-loads a d-dimensional dual index.
func BuildIndexD(rel *Relation, opt IndexDOptions) (*IndexD, error) { return core.BuildD(rel, opt) }

// LatticeSites returns a regular grid of slope-space sites for IndexD.
func LatticeSites(sdim, perAxis int, extent float64) []Point {
	return core.LatticeSites(sdim, perAxis, extent)
}

// EvalTuple is the exhaustive ground truth for generalized-tuple
// selections.
func EvalTuple(kind QueryKind, qt *Tuple, rel *Relation) ([]TupleID, error) {
	return core.EvalTuple(kind, qt, rel)
}

// NewIndex creates an empty dual index over rel.
func NewIndex(rel *Relation, opt IndexOptions) (*Index, error) { return core.New(rel, opt) }

// BuildIndex bulk-loads a dual index from the relation's current tuples.
func BuildIndex(rel *Relation, opt IndexOptions) (*Index, error) { return core.Build(rel, opt) }

// EquiangularSlopes returns k slopes at equally spaced angles — the
// natural predefined set S for uniformly distributed query slopes.
func EquiangularSlopes(k int) []float64 { return core.EquiangularSlopes(k) }

// R⁺-tree baseline (Section 5's comparison structure).
type (
	// RPlusIndex is the relation-aware R⁺-tree baseline.
	RPlusIndex = rplustree.Index
	// RPlusOptions configures an RPlusIndex.
	RPlusOptions = rplustree.Options
)

// BuildRPlusIndex bulk-loads an R⁺-tree over the relation's bounded tuples.
func BuildRPlusIndex(rel *Relation, opt RPlusOptions) (*RPlusIndex, error) {
	return rplustree.Build(rel, opt)
}

// Workload generation (Section 5's synthetic data).
type (
	// WorkloadConfig parameterizes relation generation.
	WorkloadConfig = workload.Config
	// QueryWorkloadConfig parameterizes calibrated query generation.
	QueryWorkloadConfig = workload.QueryConfig
	// SizeClass is the paper's small/medium object regime.
	SizeClass = workload.SizeClass
)

// Size-regime constants.
const (
	// SmallObjects cover 1–5 % of the working window.
	SmallObjects = workload.Small
	// MediumObjects cover 5–50 % of the working window.
	MediumObjects = workload.Medium
)

// GenerateRelation builds a deterministic random relation per the paper's
// Section 5 parameters.
func GenerateRelation(cfg WorkloadConfig) (*Relation, error) { return workload.GenerateRelation(cfg) }

// GenerateQueries builds half-plane queries calibrated to a selectivity.
func GenerateQueries(rel *Relation, qc QueryWorkloadConfig) ([]Query, error) {
	return workload.GenerateQueries(rel, qc)
}

// WorkloadConfigD parameterizes d-dimensional relation generation.
type WorkloadConfigD = workload.ConfigD

// GenerateRelationD builds a deterministic random d-dimensional relation.
func GenerateRelationD(cfg WorkloadConfigD) (*Relation, error) {
	return workload.GenerateRelationD(cfg)
}

// GenerateQueriesD builds calibrated d-dimensional half-plane queries with
// slope vectors uniform in [−slopeExtent, slopeExtent]^{d−1}.
func GenerateQueriesD(rel *Relation, qc QueryWorkloadConfig, slopeExtent float64) ([]Query, error) {
	return workload.GenerateQueriesD(rel, qc, slopeExtent)
}

// EvalLine is the exhaustive ground truth for line-stabbing selections
// (Index.QueryLine).
func EvalLine(a, b float64, rel *Relation) ([]TupleID, error) { return core.EvalLine(a, b, rel) }

// EvalVertical is the exhaustive ground truth for vertical selections
// Kind(x op c) (Index.QueryVertical; enable IndexOptions.IndexVertical for
// the indexed path).
func EvalVertical(kind QueryKind, op Op, c float64, rel *Relation) ([]TupleID, error) {
	return core.EvalVertical(kind, op, c, rel)
}

// LineIndex is the interval-tree realization of restricted line-stabbing
// queries (the paper's footnote 6 alternative).
type LineIndex = core.LineIndex

// BuildLineIndex constructs interval trees over the relation's dual
// intervals at each slope in S.
func BuildLineIndex(rel *Relation, slopes []float64) (*LineIndex, error) {
	return core.BuildLineIndex(rel, slopes, nil)
}

// Experiment harness (regenerates the paper's figures).
type (
	// Figure is a regenerated experiment table.
	Figure = harness.Figure
	// FigureConfig parameterizes a figure run.
	FigureConfig = harness.Config
)

// RunQueryFigure regenerates one of Figures 8(a/b)/9(a/b).
func RunQueryFigure(id, title string, cfg FigureConfig) (Figure, error) {
	return harness.RunQueryFigure(id, title, cfg)
}

// RunSpaceFigure regenerates Figure 10.
func RunSpaceFigure(cfg FigureConfig) (Figure, error) { return harness.RunSpaceFigure(cfg) }

// Observability layer (metrics registry, per-query and per-commit
// tracing, slow-query and slow-commit logs, commit flight recorder,
// Prometheus exposition, debug server).
type (
	// Observer aggregates per-query metrics, stage-span latencies and
	// slow-query traces — and on the write path, per-commit stage
	// traces with exact page clone/free attribution, MVCC health
	// histograms and the commit flight recorder — for one index; attach
	// it with IndexOptions.Observe or Index.SetObserver. A nil
	// *Observer is valid everywhere and costs nothing on the query or
	// commit path.
	Observer = obs.Observer
	// ObserverOptions configures an Observer (slow threshold, logger,
	// trace-ring and flight-recorder capacities).
	ObserverOptions = obs.Options
	// ObserverSnapshot is a point-in-time read of an Observer.
	ObserverSnapshot = obs.Snapshot
	// TraceSnapshot is one retained per-query trace with its stage
	// spans.
	TraceSnapshot = obs.TraceSnapshot
	// CommitTraceSnapshot is one retained per-commit trace: the
	// stage/shadow/publish/reclaim spans with per-stage page
	// clone/free attribution, plus the batch outcome (published
	// version, or abort with its cause).
	CommitTraceSnapshot = obs.CommitTraceSnapshot
	// FlightDump is the /debug/flight document: recent commit traces
	// plus the slow-or-aborted subset.
	FlightDump = obs.FlightDump
	// StatsSnapshot is the unified observability view of one Index
	// (shape, pool, caches, sweeps, MVCC health, observer aggregates).
	StatsSnapshot = core.StatsSnapshot
	// MVCCStats is the version/watermark health view of the MVCC layer
	// (published vs pinned version lag, reclaim backlog, COW totals).
	MVCCStats = core.MVCCStats
)

// NewObserver creates a metrics-and-tracing observer.
func NewObserver(opt ObserverOptions) *Observer { return obs.New(opt) }

// DebugMux builds the live debug server's handler: /debug/stats (the
// stats callback's JSON), /debug/metrics, /debug/traces, /debug/prom
// (Prometheus text exposition of the registry plus a runtime/metrics
// bridge), /debug/flight (the commit flight recorder) and /debug/pprof.
// Either argument may be nil.
func DebugMux(stats func() any, o *Observer) *http.ServeMux { return obs.DebugMux(stats, o) }

// DefaultPageSize is the paper's 1024-byte page size.
const DefaultPageSize = pagestore.DefaultPageSize

// CreateDatabase builds a dual index over rel backed by a new database
// file at path. Call (*Index).Save to persist the catalog and the relation
// after loading or updating.
func CreateDatabase(path string, rel *Relation, opt IndexOptions) (*Index, error) {
	store, err := pagestore.OpenFileStore(path, opt.PageSize)
	if err != nil {
		return nil, err
	}
	opt.Store = store
	opt.Pool = nil
	return core.Build(rel, opt)
}

// OpenDatabase reopens a database file written by CreateDatabase + Save,
// returning the restored relation and index.
func OpenDatabase(path string, pageSize int) (*Relation, *Index, error) {
	store, err := pagestore.OpenExistingFileStore(path, pageSize)
	if err != nil {
		return nil, nil, err
	}
	return core.Open(pagestore.NewPool(store, 0))
}
