// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5):
//
//	fig8a  — EXIST selections, small objects:  pages/query vs N
//	fig8b  — ALL selections, small objects
//	fig9a  — EXIST selections, medium objects
//	fig9b  — ALL selections, medium objects
//	fig10  — occupied disk pages vs N
//	table1 — verification of the app-query operator rules (Table 1)
//	batchsweep — QueryBatch throughput scaling vs worker count
//	readpath — ablation of the buffered read path (decode cache,
//	           leaf readahead, midpoint LRU) on a small pool
//
// Usage:
//
//	experiments -exp all            # everything, paper-scale (minutes)
//	experiments -exp fig8a -quick   # one figure, reduced cardinalities
//	experiments -exp fig10 -csv     # machine-readable output
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"

	"dualcdb"
	"dualcdb/internal/constraint"
	"dualcdb/internal/core"
	"dualcdb/internal/geom"
	"dualcdb/internal/harness"
	"dualcdb/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig8a|fig8b|fig9a|fig9b|fig10|table1|sizesweep|dimsweep|selsweep|techniques|batchsweep|readpath|all")
	quick := flag.Bool("quick", false, "reduced cardinalities (fast smoke run)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Int64("seed", 1999, "workload seed")
	queries := flag.Int("queries", 6, "queries averaged per data point")
	flag.Parse()

	cfg := dualcdb.FigureConfig{Seed: *seed, QueriesPerPoint: *queries}
	if *quick {
		cfg.Ns = []int{500, 2000, 4000}
		cfg.Ks = []int{2, 3}
	}

	run := func(id string) error {
		switch id {
		case "fig8a", "fig8b", "fig9a", "fig9b":
			c := cfg
			if id[3] == '8' {
				c.Size = dualcdb.SmallObjects
			} else {
				c.Size = dualcdb.MediumObjects
			}
			if id[4] == 'a' {
				c.Kind = dualcdb.EXIST
			} else {
				c.Kind = dualcdb.ALL
			}
			title := fmt.Sprintf("%s selections, %s objects: avg page accesses per query",
				c.Kind, c.Size)
			fig, err := dualcdb.RunQueryFigure(id, title, c)
			if err != nil {
				return err
			}
			emit(fig, *csv)
			rep := fig.Shape()
			fmt.Printf("shape: T2 beats R+-tree at %d/%d points; win factor min %.2f, mean %.2f\n\n",
				rep.PointsT2Wins, rep.PointsTotal, rep.MinWinFactor, rep.MeanWinFactor)
		case "fig10":
			fig, err := dualcdb.RunSpaceFigure(cfg)
			if err != nil {
				return err
			}
			emit(fig, *csv)
			ks := cfg.Ks
			if len(ks) == 0 {
				ks = []int{2, 3, 4, 5}
			}
			fmt.Printf("space ratio pages(T2,k)/(k·pages(R+)), paper reports ≈ 1.32:\n")
			for _, k := range ks {
				if r, ok := fig.SpaceRatios(ks)[k]; ok {
					fmt.Printf("  k=%d: %.2f\n", k, r)
				}
			}
			fmt.Println()
		case "table1":
			if err := runTable1(*seed); err != nil {
				return err
			}
		case "selsweep":
			sc := harness.SelSweepConfig{Seed: *seed, QueriesPerPoint: *queries}
			if *quick {
				sc.N = 1500
				sc.Bands = [][2]float64{{0.05, 0.08}, {0.35, 0.40}}
			}
			rows, err := harness.RunSelSweep(sc)
			if err != nil {
				return err
			}
			fmt.Println("selsweep — win factor across the paper's 5–60 % selectivity range:")
			fmt.Print(harness.FormatSelSweep(rows))
			fmt.Println("shape: the T2-over-R+ advantage holds across all selectivities (Section 5's remark).")
			fmt.Println()
		case "techniques":
			n := 4000
			if *quick {
				n = 1500
			}
			rows, err := harness.RunTechniqueComparison(n, 3, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("techniques — unified profile on one workload (N=%d, EXIST, sel 10–15%%):\n", n)
			fmt.Print(harness.FormatTechniques(rows))
			fmt.Println()
		case "dimsweep":
			dc := harness.DimSweepConfig{Seed: *seed, QueriesPerPoint: *queries}
			if *quick {
				dc.N = 600
				dc.Dims = []int{2, 3}
			}
			rows, err := harness.RunDimSweep(dc)
			if err != nil {
				return err
			}
			fmt.Println("dimsweep — pages/query vs dimension (Section 6's conjecture implemented):")
			fmt.Print(harness.FormatDimSweep(rows))
			fmt.Println("shape: the index always deals with single surface values, so I/O is flat in d.")
			fmt.Println()
		case "batchsweep":
			bc := harness.BatchSweepConfig{Seed: *seed, Size: workload.Medium}
			if *quick {
				bc.N = 1500
				bc.Queries = 24
				bc.Workers = []int{1, 2, 4}
			}
			rows, err := harness.RunBatchSweep(bc)
			if err != nil {
				return err
			}
			fmt.Println("batchsweep — QueryBatch throughput vs worker count (Fig. 9 medium workload):")
			fmt.Print(harness.FormatBatchSweep(rows))
			fmt.Printf("shape: the 2·k trees, sweeps and refinement parallelize; speedup tracks available cores (GOMAXPROCS=%d here, ≈1.0x expected on a single core).\n", runtime.GOMAXPROCS(0))
			fmt.Println()
		case "readpath":
			rc := harness.ReadPathConfig{Seed: *seed}
			if *quick {
				rc.N = 800
				rc.Passes = 2
			}
			rows, err := harness.RunReadPath(rc)
			if err != nil {
				return err
			}
			fmt.Println("readpath — read-path ablation (decode cache, readahead, midpoint LRU) on a pool far smaller than the leaf level:")
			fmt.Print(harness.FormatReadPath(rows))
			fmt.Println("shape: the cache removes repeat decodes, readahead batches sibling reads into fewer calls, and the midpoint LRU keeps inner nodes resident across sweeps (old-region evictions ≈ 0).")
			fmt.Println()
		case "sizesweep":
			sc := harness.SizeSweepConfig{Seed: *seed, QueriesPerPoint: *queries}
			if *quick {
				sc.N = 1500
				sc.AreaFracs = []float64{0.0005, 0.01, 0.2}
			}
			rows, err := harness.RunSizeSweep(sc)
			if err != nil {
				return err
			}
			fmt.Println("sizesweep — EXIST pages/query vs object size (the Figure 8→9 trend isolated):")
			fmt.Print(harness.FormatSizeSweep(rows))
			fmt.Println("shape: R+-tree I/O grows with object size while T2 stays flat (Section 5).")
			fmt.Println()
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "fig8a", "fig8b", "fig9a", "fig9b", "fig10", "sizesweep", "dimsweep", "selsweep", "techniques", "batchsweep", "readpath"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func emit(fig dualcdb.Figure, csv bool) {
	if csv {
		fmt.Printf("# %s — %s\n%s", fig.ID, fig.Title, fig.CSV())
		return
	}
	fmt.Print(fig.Format())
}

// runTable1 validates the paper's Table 1 — the operator choice for the
// two app-queries — by checking the covering property on random queries
// against every slope configuration and tabulating the rules exercised.
func runTable1(seed int64) error {
	slopes := []float64{-2, -0.5, 0.75, 3}
	rng := rand.New(rand.NewSource(seed))
	counts := map[string]int{}
	trials := 20000
	for trial := 0; trial < trials; trial++ {
		kind := constraint.EXIST
		if rng.Intn(2) == 0 {
			kind = constraint.ALL
		}
		op := geom.GE
		if rng.Intn(2) == 0 {
			op = geom.LE
		}
		a := math.Tan((rng.Float64() - 0.5) * (math.Pi - 0.2))
		q := constraint.Query2(kind, a, rng.Float64()*100-50, op)
		plan, err := core.PlanT1(q, slopes, 0)
		if err != nil {
			return err
		}
		// Classify the configuration row of Table 1.
		a1, a2 := plan[0].Query.Slope[0], plan[1].Query.Slope[0]
		var row string
		switch {
		case a1 < a && a < a2:
			row = "a1 < a < a2    -> θ1 ≡ θ,  θ2 ≡ θ"
		case a1 < a && a2 < a:
			row = "a1 < a, a2 < a -> θ1 ≡ θ,  θ2 ≡ ¬θ"
		default:
			row = "a < a1, a < a2 -> θ1 ≡ θ,  θ2 ≡ ¬θ (mirrored)"
		}
		counts[row]++
		// Covering property: sampled points of q must lie in q1 ∪ q2.
		qh, h1, h2 := q.HalfSpace(), plan[0].Query.HalfSpace(), plan[1].Query.HalfSpace()
		for s := 0; s < 10; s++ {
			p := geom.Pt2(rng.Float64()*400-200, rng.Float64()*400-200)
			if qh.ContainsStrict(p) && !h1.Contains(p) && !h2.Contains(p) {
				return fmt.Errorf("table1: covering violated for %v at %v", q, p)
			}
		}
	}
	fmt.Printf("table1 — app-query operator rules (Table 1), %d random queries, covering verified:\n", trials)
	for row, n := range counts {
		fmt.Printf("  %-46s %6d queries\n", row, n)
	}
	fmt.Println()
	return nil
}
