// Command benchsnap measures the read-path benchmarks outside `go test`
// and writes a machine-readable snapshot, so CI can archive per-PR
// numbers and regressions show up as artifact diffs.
//
// Usage:
//
//	benchsnap                # full measurement, writes BENCH_pr10.json
//	benchsnap -quick -o out.json
//	benchsnap -quick -gate   # also fail on regression past the PR-5/PR-6 floors
//
// -gate compares the fresh measurement against the checked-in PR-5 and
// PR-6 baselines (allocations and page reads only — wall-clock is too
// noisy for CI): warm sweeps must stay allocation-free, cold sweeps must
// stay strictly below the pre-flat-layout decode cost, the per-sweep
// physical read count must not move at all (the paper's I/O model is
// exact; a layout change has no business touching it), and the warm
// QueryFlat end-to-end path must hold the PR-6 allocation count — MVCC
// snapshots must cost readers nothing when no writer is active — and the
// observed commit path may add only a bounded handful of allocations over
// the bare one (the commit trace and its ring slot). The alloc floors
// were measured with -quick, so the gate requires -quick.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dualcdb/internal/btree"
	"dualcdb/internal/constraint"
	"dualcdb/internal/core"
	"dualcdb/internal/geom"
	"dualcdb/internal/obs"
	"dualcdb/internal/pagestore"
)

// Row is one benchmark measurement in the snapshot.
type Row struct {
	Name     string             `json:"name"`
	NsOp     float64            `json:"ns_op"`
	AllocsOp int64              `json:"allocs_op"`
	BytesOp  int64              `json:"bytes_op"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_pr10.json", "output file")
	quick := flag.Bool("quick", false, "smaller trees (smoke run)")
	gate := flag.Bool("gate", false, "fail on regression past the PR-5 baselines (requires -quick)")
	flag.Parse()
	if *gate && !*quick {
		fatal(fmt.Errorf("-gate baselines were measured with -quick; run benchsnap -quick -gate"))
	}

	n := 50000
	coreN := 2000
	if *quick {
		n = 10000
		coreN = 500
	}

	tmp, err := os.MkdirTemp("", "benchsnap")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	var rows []Row
	add := func(name string, extra map[string]float64, r testing.BenchmarkResult) {
		row := Row{
			Name:     name,
			NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
			Extra:    extra,
		}
		rows = append(rows, row)
		fmt.Printf("%-28s %12.0f ns/op %8d allocs/op %10d B/op  %v\n",
			name, row.NsOp, row.AllocsOp, row.BytesOp, extra)
	}

	// Warm leaf sweeps over a MemStore-backed tree: the decoded-node
	// cache ablation.
	for _, bc := range []struct {
		name    string
		noCache bool
	}{{"SweepWarm", false}, {"SweepWarmNoCache", true}} {
		tr := buildTree(pagestore.NewPool(pagestore.NewMemStore(1024), 1<<16), n, 0, bc.noCache)
		add(bc.name, nil, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sweep(b, tr, float64(n)*0.9)
			}
		}))
	}

	// Cold file-backed sweeps: the readahead ablation, plus the flat-layout
	// row that reads every entry and handicap through the view instead of
	// only counting leaves — the zero-copy per-entry access path.
	for _, bc := range []struct {
		name string
		ra   int
		flat bool
	}{{"SweepCold", 0, false}, {"SweepColdFlat", 0, true}, {"SweepColdReadahead", 8, false}} {
		store, err := pagestore.OpenFileStore(filepath.Join(tmp, bc.name+".db"), 1024)
		if err != nil {
			fatal(err)
		}
		pool := pagestore.NewPool(store, 1<<16)
		tr := buildTree(pool, n, bc.ra, false)
		pool.ResetStats()
		var iters int
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := pool.EvictAll(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if bc.flat {
					sweepFlat(b, tr, float64(n)*0.9)
				} else {
					sweep(b, tr, float64(n)*0.9)
				}
			}
			iters += b.N
		})
		st := pool.Stats()
		add(bc.name, map[string]float64{
			"physical_reads_op":    float64(st.PhysicalReads) / float64(iters),
			"readahead_batches_op": float64(st.ReadaheadBatches) / float64(iters),
		}, res)
		if err := store.Close(); err != nil {
			fatal(err)
		}
	}

	// Cold T2 queries against a file-backed index: the end-to-end path.
	for _, bc := range []struct {
		name string
		ra   int
	}{{"QueryFileStore", 0}, {"QueryFileStoreReadahead", 8}} {
		store, err := pagestore.OpenFileStore(filepath.Join(tmp, bc.name+".db"), 1024)
		if err != nil {
			fatal(err)
		}
		rng := rand.New(rand.NewSource(79))
		rel := constraint.NewRelation(2)
		for i := 0; i < coreN; i++ {
			if _, err := rel.Insert(randTuple(rng)); err != nil {
				fatal(err)
			}
		}
		ix, err := core.Build(rel, core.Options{
			Slopes:    core.EquiangularSlopes(3),
			Technique: core.T2,
			Store:     store,
			PoolPages: 1 << 14,
			Readahead: bc.ra,
		})
		if err != nil {
			fatal(err)
		}
		queries := make([]constraint.Query, 64)
		for i := range queries {
			queries[i] = randQuery(rng)
		}
		var pages uint64
		var iters int
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := ix.Pool().EvictAll(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				r, err := ix.Query(queries[i%len(queries)])
				if err != nil {
					b.Fatal(err)
				}
				pages += r.Stats.PagesRead
			}
			iters += b.N
		})
		add(bc.name, map[string]float64{
			"physical_reads_op": float64(pages) / float64(iters),
		}, res)
		if err := store.Close(); err != nil {
			fatal(err)
		}
	}

	// Warm queries with and without an attached observer: the
	// observability overhead guard. QueryBare is the nil-hook path and
	// must stay at the pre-observability numbers; QueryObserved pays for
	// one trace plus its spans.
	{
		rng := rand.New(rand.NewSource(79))
		rel := constraint.NewRelation(2)
		for i := 0; i < coreN; i++ {
			if _, err := rel.Insert(randTuple(rng)); err != nil {
				fatal(err)
			}
		}
		queries := make([]constraint.Query, 64)
		for i := range queries {
			queries[i] = randQuery(rng)
		}
		// QueryFlat is the warm end-to-end query on the flat layout; its
		// extra column reports the view-meta cache hit rate, the number the
		// zero-copy read path lives on when frames stay resident.
		for _, bc := range []struct {
			name     string
			observed bool
		}{{"QueryBare", false}, {"QueryObserved", true}, {"QueryFlat", false}} {
			opt := core.Options{
				Slopes:    core.EquiangularSlopes(3),
				Technique: core.T2,
				Store:     pagestore.NewMemStore(1024),
				PoolPages: 1 << 14,
			}
			if bc.observed {
				opt.Observe = obs.New(obs.Options{Name: "benchsnap"})
			}
			ix, err := core.Build(rel, opt)
			if err != nil {
				fatal(err)
			}
			for _, q := range queries { // prime pool + decode cache
				if _, err := ix.Query(q); err != nil {
					fatal(err)
				}
			}
			before := ix.DecodeCacheStats()
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ix.Query(queries[i%len(queries)]); err != nil {
						b.Fatal(err)
					}
				}
			})
			var extra map[string]float64
			if bc.name == "QueryFlat" {
				st := ix.DecodeCacheStats()
				hits := float64(st.Hits - before.Hits)
				misses := float64(st.Misses - before.Misses)
				if hits+misses > 0 {
					extra = map[string]float64{"view_cache_hit_rate": hits / (hits + misses)}
				}
			}
			add(bc.name, extra, res)
		}
	}

	// MVCC rows. QueryWhileWrite is the headline read-while-write
	// benchmark: one QueryBatch over 64 selections, first on a quiesced
	// index, then with a writer goroutine committing an insert/delete
	// pair every 2ms (~1000 commits/s, a heavy write rate for an index
	// this size — a busy-loop writer would measure raw CPU timesharing on
	// small CI machines, not snapshot interference); the extra column
	// carries the read-only ns/op and the with-writer / read-only ratio
	// (wall-clock, so recorded rather than gated — the acceptance target
	// is 1.15×). CommitLatency times
	// the single-op commit path (copy-on-write shadowing, root-set
	// publication, watermark reclamation) as one insert commit plus one
	// delete commit per iteration, holding the index size fixed.
	{
		rng := rand.New(rand.NewSource(83))
		rel := constraint.NewRelation(2)
		for i := 0; i < coreN; i++ {
			if _, err := rel.Insert(randTuple(rng)); err != nil {
				fatal(err)
			}
		}
		ix, err := core.Build(rel, core.Options{
			Slopes:    core.EquiangularSlopes(3),
			Technique: core.T2,
			Store:     pagestore.NewMemStore(1024),
			PoolPages: 1 << 14,
		})
		if err != nil {
			fatal(err)
		}
		queries := make([]constraint.Query, 64)
		for i := range queries {
			queries[i] = randQuery(rng)
		}
		batch := func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ix.QueryBatch(queries, core.BatchOptions{Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := ix.QueryBatch(queries, core.BatchOptions{Workers: 4}); err != nil {
			fatal(err) // prime pool + caches
		}
		readOnly := testing.Benchmark(batch)

		ids := rel.IDs()
		stop := make(chan struct{})
		writerDone := make(chan error, 1)
		var commitPairs atomic.Int64
		start := time.Now()
		go func() {
			wrng := rand.New(rand.NewSource(89))
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					writerDone <- nil
					return
				case <-tick.C:
				}
				id, err := ix.Insert(randTuple(wrng))
				if err != nil {
					writerDone <- err
					return
				}
				ids = append(ids, id)
				j := wrng.Intn(len(ids))
				if err := ix.Delete(ids[j]); err != nil {
					writerDone <- err
					return
				}
				ids[j] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				commitPairs.Add(1)
			}
		}()
		withWriter := testing.Benchmark(batch)
		elapsed := time.Since(start)
		close(stop)
		if err := <-writerDone; err != nil {
			fatal(err)
		}
		roNs := float64(readOnly.T.Nanoseconds()) / float64(readOnly.N)
		wwNs := float64(withWriter.T.Nanoseconds()) / float64(withWriter.N)
		add("QueryWhileWrite", map[string]float64{
			"readonly_ns_op":    roNs,
			"ratio_vs_readonly": wwNs / roNs,
			"commits_per_sec":   2 * float64(commitPairs.Load()) / elapsed.Seconds(),
		}, withWriter)

		// Bare vs observed runs each get a fresh, identically seeded index:
		// commits grow the frozen relation slice with the max tuple id, so
		// measuring the observed pair on an index the bare pair already
		// churned would charge the observer for id-space growth.
		measureCommit := func(observed bool) testing.BenchmarkResult {
			crng := rand.New(rand.NewSource(83))
			crel := constraint.NewRelation(2)
			for i := 0; i < coreN; i++ {
				if _, err := crel.Insert(randTuple(crng)); err != nil {
					fatal(err)
				}
			}
			cix, err := core.Build(crel, core.Options{
				Slopes:    core.EquiangularSlopes(3),
				Technique: core.T2,
				Store:     pagestore.NewMemStore(1024),
				PoolPages: 1 << 14,
			})
			if err != nil {
				fatal(err)
			}
			if observed {
				cix.SetObserver(obs.New(obs.Options{Name: "benchsnap"}))
			}
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					id, err := cix.Insert(randTuple(crng))
					if err != nil {
						b.Fatal(err)
					}
					if err := cix.Delete(id); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		res := measureCommit(false)
		add("CommitLatency", map[string]float64{"commits_per_op": 2}, res)

		// The same insert+delete pair with an observer attached: commit
		// tracing, per-stage clone/free attribution, flight-recorder
		// retention. ratio_vs_bare is the issue's 5% acceptance bar —
		// wall-clock, so recorded rather than gated; the gate bounds the
		// allocation delta instead.
		obsRes := measureCommit(true)
		bareNs := float64(res.T.Nanoseconds()) / float64(res.N)
		obsNs := float64(obsRes.T.Nanoseconds()) / float64(obsRes.N)
		add("CommitObserved", map[string]float64{
			"commits_per_op": 2,
			"bare_ns_op":     bareNs,
			"ratio_vs_bare":  obsNs / bareNs,
		}, obsRes)
	}

	// Dualvet unit-cache ablations: the tool is invoked directly on
	// hand-written compilation units — a cold run (parse, type-check, all
	// analyzers) against a warm replay of the same fingerprint from
	// DUALVET_CACHE. These rows are wall-clock process timings, not
	// allocation profiles. The Summary unit is call-chain heavy (helper
	// chains, mutual recursion, tuple pass-through) so the interprocedural
	// summary fixpoint dominates; the invalidation row sweeps a scratch
	// copy of the whole repository, edits one internal/btree file and
	// re-sweeps, measuring how far a single-package change invalidates the
	// vetx cache.
	if tool, err := buildDualvet(tmp); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: skipping dualvet rows: %v\n", err)
	} else {
		if cold, warm, err := unitTimings(tool, tmp, "benchunit", branchyUnitSrc); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: skipping dualvet unit rows: %v\n", err)
		} else {
			add("DualvetColdUnit", nil, testing.BenchmarkResult{N: 1, T: cold})
			add("DualvetWarmUnit", nil, testing.BenchmarkResult{N: 1, T: warm})
		}
		if cold, warm, err := unitTimings(tool, tmp, "summaryunit", summaryUnitSrc); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: skipping dualvet summary rows: %v\n", err)
		} else {
			add("DualvetSummaryCold", nil, testing.BenchmarkResult{N: 1, T: cold})
			add("DualvetSummaryWarm", nil, testing.BenchmarkResult{N: 1, T: warm})
		}
		if cold, warm, err := lockUnitTimings(tool, tmp); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: skipping dualvet lockset rows: %v\n", err)
		} else {
			add("DualvetLocksetCold", nil, testing.BenchmarkResult{N: 1, T: cold})
			add("DualvetLocksetWarm", nil, testing.BenchmarkResult{N: 1, T: warm})
		}
		if d, extra, err := dualvetInvalidation(tool, tmp); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: skipping dualvet invalidation row: %v\n", err)
		} else {
			add("DualvetCrossPkgInvalidate", extra, testing.BenchmarkResult{N: 1, T: d})
		}
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rows))

	if *gate {
		if errs := checkGate(rows); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchsnap: gate: %v\n", e)
			}
			os.Exit(1)
		}
		fmt.Println("gate: all alloc and page-read floors hold")
	}
}

// PR-5 -quick floors (BENCH_pr5.json): the decoded-node read path. The
// flat layout must beat the cold decode cost strictly and keep warm sweeps
// allocation-free; physical reads per cold sweep are pinned exactly — the
// leaf chain is 17 pages under -quick and a layout change must not move
// paper-exact I/O.
const (
	gateSweepColdAllocs   = 51
	gateSweepColdBytes    = 19584
	gateWarmNoCacheAllocs = 15
	gateColdPhysReads     = 17
)

// PR-6 -quick floor (BENCH_pr6.json): the warm end-to-end query on the
// flat layout. MVCC pins a version per query with one atomic load and a
// census tick — no Snapshot object, no extra allocation — so the count
// must not move at all: a regression here means snapshots started costing
// idle readers something.
const gateQueryFlatAllocs = 368

// PR-9 budget: the observed commit pair may allocate at most this many
// objects over the bare pair — two commit traces, their span slices and
// ring bookkeeping. Additive rather than a ratio so the bound stays
// meaningful if the bare count moves.
const gateCommitObservedExtraAllocs = 64

// checkGate enforces the PR-5 floors on a -quick measurement.
func checkGate(rows []Row) []error {
	byName := make(map[string]Row, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}
	var errs []error
	need := func(name string) (Row, bool) {
		r, ok := byName[name]
		if !ok {
			errs = append(errs, fmt.Errorf("row %s missing from snapshot", name))
		}
		return r, ok
	}
	if r, ok := need("SweepWarm"); ok && r.AllocsOp != 0 {
		errs = append(errs, fmt.Errorf("SweepWarm allocates (%d allocs/op); warm sweeps must be allocation-free", r.AllocsOp))
	}
	if r, ok := need("QueryFlat"); ok && r.AllocsOp > gateQueryFlatAllocs {
		errs = append(errs, fmt.Errorf("QueryFlat at %d allocs/op; must not exceed the PR-6 floor of %d — read-only queries may not pay for MVCC", r.AllocsOp, gateQueryFlatAllocs))
	}
	if bare, ok := need("CommitLatency"); ok {
		if r, ok := need("CommitObserved"); ok && r.AllocsOp > bare.AllocsOp+gateCommitObservedExtraAllocs {
			errs = append(errs, fmt.Errorf("CommitObserved at %d allocs/op vs bare %d; observed commits may add at most %d allocations",
				r.AllocsOp, bare.AllocsOp, gateCommitObservedExtraAllocs))
		}
	}
	if r, ok := need("SweepWarmNoCache"); ok && r.AllocsOp >= gateWarmNoCacheAllocs {
		errs = append(errs, fmt.Errorf("SweepWarmNoCache at %d allocs/op; must stay below the PR-5 decode floor of %d", r.AllocsOp, gateWarmNoCacheAllocs))
	}
	for _, name := range []string{"SweepCold", "SweepColdFlat"} {
		r, ok := need(name)
		if !ok {
			continue
		}
		if r.AllocsOp >= gateSweepColdAllocs || r.BytesOp >= gateSweepColdBytes {
			errs = append(errs, fmt.Errorf("%s at %d allocs/op, %d B/op; must stay strictly below the PR-5 SweepCold floor of %d allocs/op, %d B/op",
				name, r.AllocsOp, r.BytesOp, gateSweepColdAllocs, gateSweepColdBytes))
		}
		// Page counts are whole numbers carried in a float column; the gate
		// is exact by design — any drift at all is a broken I/O contract.
		if pr := r.Extra["physical_reads_op"]; pr != gateColdPhysReads { //dualvet:allow floatcmp
			errs = append(errs, fmt.Errorf("%s reads %g pages/op; the -quick leaf chain is exactly %d pages and the layout must not change I/O",
				name, pr, gateColdPhysReads))
		}
	}
	return errs
}

// buildTree bulk-loads n sequential entries into a fresh tree.
func buildTree(pool *pagestore.Pool, n, readahead int, noCache bool) *btree.Tree {
	tr, err := btree.New(pool, btree.Config{Readahead: readahead, NoDecodeCache: noCache})
	if err != nil {
		fatal(err)
	}
	entries := make([]btree.Entry, n)
	for i := range entries {
		entries[i] = btree.Entry{Key: float64(i), TID: uint32(i + 1)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		fatal(err)
	}
	if _, err := tr.ScanAll(); err != nil { // prime pool + decode cache
		fatal(err)
	}
	return tr
}

// sweep visits the tail of the key space, counting entries.
func sweep(b *testing.B, tr *btree.Tree, from float64) {
	count := 0
	err := tr.VisitLeavesAsc(from, func(lv btree.LeafView) bool {
		count += lv.Len()
		return true
	})
	if err != nil || count == 0 {
		b.Fatalf("count=%d err=%v", count, err)
	}
}

// sweepFlat reads every key, TID and handicap slot of the tail through the
// view — the per-entry zero-copy access path, not just the leaf counts.
func sweepFlat(b *testing.B, tr *btree.Tree, from float64) {
	var sum float64
	var tids uint64
	err := tr.VisitLeavesAsc(from, func(lv btree.LeafView) bool {
		for i, n := 0, lv.Len(); i < n; i++ {
			sum += lv.Key(i)
			tids += uint64(lv.TID(i))
		}
		for s, n := 0, lv.NumHandicaps(); s < n; s++ {
			if !math.IsInf(lv.Handicap(s), 0) {
				tids++
			}
		}
		return true
	})
	if err != nil || tids == 0 {
		b.Fatalf("sum=%g tids=%d err=%v", sum, tids, err)
	}
}

// randTuple builds a random bounded convex tuple (mirrors the core
// package's benchmark workload).
func randTuple(rng *rand.Rand) *constraint.Tuple {
	cx, cy := rng.Float64()*100-50, rng.Float64()*100-50
	r := rng.Float64()*8 + 0.3
	m := 3 + rng.Intn(4)
	hs := make([]geom.HalfSpace, 0, m)
	for i := 0; i < m; i++ {
		ang := (float64(i) + rng.Float64()*0.3 + 0.35) * 2 * math.Pi / float64(m)
		nx, ny := math.Cos(ang), math.Sin(ang)
		hs = append(hs, geom.HalfSpace{A: []float64{nx, ny}, C: -(nx*cx + ny*cy + r), Op: geom.LE})
	}
	t, err := constraint.NewTuple(2, hs)
	if err != nil {
		fatal(err)
	}
	return t
}

func randQuery(rng *rand.Rand) constraint.Query {
	kind := constraint.EXIST
	if rng.Intn(2) == 0 {
		kind = constraint.ALL
	}
	op := geom.GE
	if rng.Intn(2) == 0 {
		op = geom.LE
	}
	ang := (rng.Float64() - 0.5) * (math.Pi - 0.2)
	return constraint.Query2(kind, math.Tan(ang), rng.Float64()*160-80, op)
}

// buildDualvet compiles the vet tool into tmp once for all dualvet rows.
func buildDualvet(tmp string) (string, error) {
	tool := filepath.Join(tmp, "dualvet")
	if out, err := exec.Command("go", "build", "-o", tool, "dualcdb/cmd/dualvet").CombinedOutput(); err != nil {
		return "", fmt.Errorf("building dualvet: %v\n%s", err, out)
	}
	return tool, nil
}

// unitTimings lays out a scratch compilation unit and times a cold unit
// analysis against a warm cache replay. The tool is driven through its
// go-vet unit protocol directly — a hand-written .cfg file, exactly what
// the go command would pass — so the measurement isolates the driver
// (parse, type-check, CFG/dataflow analysis vs fingerprint match +
// diagnostic replay) from the go command's own compile pipeline, which
// dwarfs it.
func unitTimings(tool, tmp, name string, srcFor func(i int) string) (cold, warm time.Duration, err error) {
	mod := filepath.Join(tmp, name+"-unit")
	if err := os.MkdirAll(mod, 0o777); err != nil {
		return 0, 0, err
	}
	var goFiles []string
	for i := 0; i < 128; i++ {
		file := filepath.Join(mod, fmt.Sprintf("f%03d.go", i))
		if err := os.WriteFile(file, []byte(srcFor(i)), 0o666); err != nil {
			return 0, 0, err
		}
		goFiles = append(goFiles, file)
	}
	cfg := map[string]any{
		"ID":         name,
		"Compiler":   "gc",
		"Dir":        mod,
		"ImportPath": name,
		"GoVersion":  "go1.22",
		"GoFiles":    goFiles,
		"VetxOutput": filepath.Join(tmp, name+".vetx"),
	}
	cfgData, err := json.Marshal(cfg)
	if err != nil {
		return 0, 0, err
	}
	cfgFile := filepath.Join(tmp, name+".cfg")
	if err := os.WriteFile(cfgFile, cfgData, 0o666); err != nil {
		return 0, 0, err
	}

	cache := filepath.Join(tmp, name+"-cache")
	runUnit := func() (time.Duration, error) {
		cmd := exec.Command(tool, cfgFile)
		cmd.Env = append(os.Environ(), "DUALVET_CACHE="+cache)
		start := time.Now()
		out, err := cmd.CombinedOutput()
		if err != nil {
			return 0, fmt.Errorf("dualvet unit run: %v\n%s", err, out)
		}
		return time.Since(start), nil
	}

	if cold, err = runUnit(); err != nil {
		return 0, 0, err
	}
	// Same fingerprint, populated cache: replays. Best of three, since
	// process startup noise dominates runs this short.
	warm = time.Duration(math.MaxInt64)
	for i := 0; i < 3; i++ {
		d, err := runUnit()
		if err != nil {
			return 0, 0, err
		}
		if d < warm {
			warm = d
		}
	}
	return cold, warm, nil
}

// branchyUnitSrc is an import-free unit (so the driver needs no export
// data) with enough branchy control flow, float arithmetic, defers and
// closures that every analyzer does real CFG/dataflow work per function.
func branchyUnitSrc(i int) string {
	return fmt.Sprintf(`package benchunit

type ring%[1]d struct {
	buf  []float64
	head int
}

func (r *ring%[1]d) push(v float64) {
	if len(r.buf) == 0 {
		r.buf = make([]float64, 8)
	}
	r.buf[r.head%%len(r.buf)] = v
	r.head++
}

func scan%[1]d(xs []float64, lo, hi float64) (int, float64) {
	count, best := 0, lo
	for i, x := range xs {
		switch {
		case x < lo:
			continue
		case x > hi:
			return count, best
		default:
			count++
		}
		if x > best {
			best = x
		}
		if i > 0 && count > len(xs)/2 {
			break
		}
	}
	return count, best
}

func fold%[1]d(n int, f func(int) float64) float64 {
	acc := 0.0
	for i := 0; i < n; i++ {
		v := f(i)
		if v < 0 {
			acc -= v
		} else {
			acc += v
		}
	}
	defer func() { _ = acc }()
	return acc
}
`, i)
}

// summaryUnitSrc is a call-chain-heavy unit: three-deep helper chains,
// an even/odd mutually recursive SCC, and tuple pass-through returns, so
// the interprocedural summary fixpoint (call graph, per-parameter taint
// flows, SCC iteration) is the dominant analysis cost.
func summaryUnitSrc(i int) string {
	return fmt.Sprintf(`package summaryunit

func leaf%[1]d(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func mid%[1]d(x float64) float64  { return leaf%[1]d(x) + 1 }
func high%[1]d(x float64) float64 { return mid%[1]d(x) * 0.5 }

func even%[1]d(n int, x float64) float64 {
	if n == 0 {
		return high%[1]d(x)
	}
	return odd%[1]d(n-1, x)
}

func odd%[1]d(n int, x float64) float64 {
	if n == 0 {
		return x
	}
	return even%[1]d(n-1, -x)
}

func pair%[1]d(x float64) (float64, float64) { return high%[1]d(x), x }

func spread%[1]d(x float64) (float64, float64) { return pair%[1]d(high%[1]d(x)) }
`, i)
}

// lockUnitTimings lays out a scratch module of lock-heavy code — guarded
// fields, Begin/End summary pairs, RWMutex read paths, TryLock refinement,
// deferred unlocks — and times a cold sweep of the concurrency analyzers
// (lockset, atomicpub, frozen) against a warm vetx replay. Unlike
// unitTimings this goes through `go vet -vettool` (the unit imports sync,
// so the driver needs the go command's export-data plumbing); each run
// gets a fresh GOCACHE so the go command re-invokes the tool, while the
// persistent DUALVET_CACHE is what turns the later runs warm.
func lockUnitTimings(tool, tmp string) (cold, warm time.Duration, err error) {
	mod := filepath.Join(tmp, "lockunit")
	if err := os.MkdirAll(mod, 0o777); err != nil {
		return 0, 0, err
	}
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module lockunit\n\ngo 1.22\n"), 0o666); err != nil {
		return 0, 0, err
	}
	for i := 0; i < 64; i++ {
		file := filepath.Join(mod, fmt.Sprintf("f%03d.go", i))
		if err := os.WriteFile(file, []byte(lockUnitSrc(i)), 0o666); err != nil {
			return 0, 0, err
		}
	}
	cache := filepath.Join(tmp, "lockunit-cache")
	runSweep := func(i int) (time.Duration, error) {
		gocache := filepath.Join(tmp, fmt.Sprintf("lockunit-gocache-%d", i))
		cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
		cmd.Dir = mod
		cmd.Env = append(os.Environ(),
			"DUALVET_CACHE="+cache, "GOCACHE="+gocache, "GOFLAGS=-mod=mod")
		start := time.Now()
		if out, err := cmd.CombinedOutput(); err != nil {
			return 0, fmt.Errorf("go vet lock unit: %v\n%s", err, out)
		}
		return time.Since(start), nil
	}
	if cold, err = runSweep(0); err != nil {
		return 0, 0, err
	}
	// Same fingerprint, populated vetx cache: replays. Best of three.
	warm = time.Duration(math.MaxInt64)
	for i := 1; i <= 3; i++ {
		d, err := runSweep(i)
		if err != nil {
			return 0, 0, err
		}
		if d < warm {
			warm = d
		}
	}
	return cold, warm, nil
}

// lockUnitSrc is a sync-heavy source file: every function shape the
// lock-set engine models (defer-balanced holds, summary-applied
// Begin/End, RWMutex read sections, TryLock refinement, guarded-field
// writes) with no violations, so the sweep measures analysis cost, not
// diagnostic rendering.
func lockUnitSrc(i int) string {
	return fmt.Sprintf(`package lockunit

import "sync"

type store%[1]d struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int         //dualvet:guarded=mu
	m  map[int]int //dualvet:guarded=rw
}

func (s *store%[1]d) begin() { s.mu.Lock() }
func (s *store%[1]d) end()   { s.mu.Unlock() }

func (s *store%[1]d) bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func (s *store%[1]d) read(k int) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.m[k]
}

func (s *store%[1]d) write(k, v int) {
	s.rw.Lock()
	if s.m == nil {
		s.m = make(map[int]int)
	}
	s.m[k] = v
	s.rw.Unlock()
}

func (s *store%[1]d) roundTrip(cond bool) {
	s.begin()
	if cond {
		s.n++
	}
	s.end()
}

func (s *store%[1]d) tryBump() {
	if s.mu.TryLock() {
		s.n++
		s.mu.Unlock()
	}
}

func newStore%[1]d() *store%[1]d {
	s := &store%[1]d{}
	s.n = %[1]d
	return s
}
`, i)
}

// dualvetInvalidation copies the repository into a scratch dir, sweeps it
// cold through `go vet -vettool`, appends a comment to one internal/btree
// file and sweeps again against the same DUALVET_CACHE. The second run's
// wall-clock and cold/warm unit split measure how far a single-package
// edit invalidates the vetx cache: btree and its dependents go cold,
// everything else must replay.
func dualvetInvalidation(tool, tmp string) (time.Duration, map[string]float64, error) {
	gomod, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return 0, nil, err
	}
	root := filepath.Dir(strings.TrimSpace(string(gomod)))
	if root == "." || root == string(filepath.Separator) {
		return 0, nil, fmt.Errorf("not inside the dualcdb module")
	}
	dst := filepath.Join(tmp, "repo")
	if err := copyTree(root, dst); err != nil {
		return 0, nil, err
	}

	cache := filepath.Join(tmp, "inv-cache")
	sweepRepo := func(trace string) (time.Duration, error) {
		cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
		cmd.Dir = dst
		cmd.Env = append(os.Environ(), "DUALVET_CACHE="+cache, "DUALVET_TRACE="+trace)
		start := time.Now()
		if out, err := cmd.CombinedOutput(); err != nil {
			return 0, fmt.Errorf("go vet in scratch copy: %v\n%s", err, out)
		}
		return time.Since(start), nil
	}
	if _, err := sweepRepo(filepath.Join(tmp, "inv-trace-cold")); err != nil {
		return 0, nil, err
	}

	// A comment-only edit still moves the file hash: btree's unit
	// fingerprint changes, and with it every unit importing btree.
	touched := filepath.Join(dst, "internal", "btree", "tree.go")
	fh, err := os.OpenFile(touched, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		return 0, nil, err
	}
	if _, err := fh.WriteString("\n// benchsnap: invalidation probe\n"); err != nil {
		fh.Close()
		return 0, nil, err
	}
	if err := fh.Close(); err != nil {
		return 0, nil, err
	}

	trace := filepath.Join(tmp, "inv-trace-mixed")
	d, err := sweepRepo(trace)
	if err != nil {
		return 0, nil, err
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		return 0, nil, err
	}
	var coldN, warmN float64
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "cold "):
			coldN++
		case strings.HasPrefix(line, "warm "):
			warmN++
		}
	}
	if coldN == 0 || warmN == 0 {
		return 0, nil, fmt.Errorf("invalidation sweep saw %g cold / %g warm units; expected a mixed replay", coldN, warmN)
	}
	return d, map[string]float64{"cold_units": coldN, "warm_units": warmN}, nil
}

// copyTree copies a source tree into dst, skipping .git (the scratch copy
// only needs what go vet reads).
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o777)
		}
		if !d.Type().IsRegular() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o666)
	})
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
	os.Exit(1)
}
