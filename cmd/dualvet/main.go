// Command dualvet is the multichecker for the repository's machine-checked
// invariants (DESIGN.md §7, §10, §15): float comparison discipline, ±Inf
// sentinel arithmetic, atomic/plain field mixing, shard-lock re-entrancy,
// dropped I/O errors, leaked page-frame pins, leaked observability
// spans, leaked MVCC snapshots, mutex lock-set balance, declared field
// guards, and frozen-after-publish immutability.
//
// Run it through the go command, which supplies type information for every
// compilation unit:
//
//	go build -o /tmp/dualvet ./cmd/dualvet
//	go vet -vettool=/tmp/dualvet ./...
//
// or directly — `dualvet ./...` re-executes itself under go vet. A single
// analyzer runs with its enable flag: `go vet -vettool=/tmp/dualvet
// -floatcmp ./...`. `dualvet -json ./...` emits machine-readable
// diagnostics; `dualvet -annotations ./...` emits GitHub Actions ::error
// lines.
package main

import (
	"dualcdb/internal/analysis/atomicfield"
	"dualcdb/internal/analysis/atomicpub"
	"dualcdb/internal/analysis/errsink"
	"dualcdb/internal/analysis/floatcmp"
	"dualcdb/internal/analysis/frozen"
	"dualcdb/internal/analysis/infguard"
	"dualcdb/internal/analysis/lockorder"
	"dualcdb/internal/analysis/lockset"
	"dualcdb/internal/analysis/pinleak"
	"dualcdb/internal/analysis/snapleak"
	"dualcdb/internal/analysis/spanleak"
	"dualcdb/internal/analysis/unitdriver"
)

func main() {
	unitdriver.Main(
		floatcmp.Analyzer,
		infguard.Analyzer,
		atomicfield.Analyzer,
		lockorder.Analyzer,
		lockset.Analyzer,
		atomicpub.Analyzer,
		frozen.Analyzer,
		errsink.Analyzer,
		pinleak.Analyzer,
		snapleak.Analyzer,
		spanleak.Analyzer,
	)
}
