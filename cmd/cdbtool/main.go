// Command cdbtool is an interactive shell for the constraint database: it
// creates relations, inserts generalized tuples in the textual constraint
// syntax, builds the dual-representation index and/or the R⁺-tree
// baseline, and runs ALL/EXIST half-plane selections with execution
// statistics.
//
// Example session:
//
//	$ cdbtool
//	> insert x >= 0 && y >= 0 && x + y <= 4
//	inserted tuple 1
//	> insert y >= 8
//	inserted tuple 2
//	> index 3 t2
//	dual index built: k=3, technique T2, 6 pages
//	> exist y >= 0.7x + 1
//	EXIST(y >= 0.7x + 1): [1 2]  (path=t2, candidates=2, falseHits=0, pages=4)
//	> all y >= 6
//	ALL(y >= 6): [2]  (path=restricted, ...)
//
// Commands are also accepted on stdin non-interactively:
//
//	echo "gen 1000 small 7; index 3 t2; exist y >= x; stats" | cdbtool
package main

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"

	"dualcdb"
	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
)

type session struct {
	// mu serializes command execution against the debug server's stats
	// callback (the only concurrent reader of the session state).
	mu    sync.Mutex
	rel   *dualcdb.Relation
	dual  *dualcdb.Index
	rplus *dualcdb.RPlusIndex
	obs   *dualcdb.Observer
	srv   *http.Server
	out   *bufio.Writer
}

func main() {
	s := &session{rel: dualcdb.NewRelation(2), out: bufio.NewWriter(os.Stdout)}
	defer s.out.Flush()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	if interactive {
		fmt.Fprintln(s.out, "dualcdb constraint database shell — 'help' for commands")
	}
	prompt := func() {
		if interactive {
			fmt.Fprint(s.out, "> ")
		}
		s.out.Flush()
	}
	prompt()
	for sc.Scan() {
		for _, line := range strings.Split(sc.Text(), ";") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			if line == "quit" || line == "exit" {
				return
			}
			if err := s.exec(line); err != nil {
				fmt.Fprintf(s.out, "error: %v\n", err)
			}
		}
		prompt()
	}
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func (s *session) exec(line string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execLocked(line)
}

func (s *session) execLocked(line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "help":
		s.help()
	case "insert":
		t, err := dualcdb.ParseTuple(rest, 2)
		if err != nil {
			return err
		}
		var id dualcdb.TupleID
		if s.dual != nil {
			id, err = s.dual.Insert(t)
		} else {
			id, err = s.rel.Insert(t)
			if err == nil && s.rplus != nil {
				// Keep the baseline in sync when it exists without the dual.
				err = fmt.Errorf("note: R+-tree index is stale; rebuild with 'rindex'")
			}
		}
		if err != nil {
			return err
		}
		sat := ""
		if !t.IsSatisfiable() {
			sat = " (unsatisfiable: matches nothing)"
		} else if !t.IsBounded() {
			sat = " (infinite object)"
		}
		fmt.Fprintf(s.out, "inserted tuple %d%s\n", id, sat)
	case "delete":
		id, err := strconv.Atoi(rest)
		if err != nil {
			return fmt.Errorf("delete <tuple-id>")
		}
		if s.dual != nil {
			return s.dual.Delete(dualcdb.TupleID(id))
		}
		return s.rel.Delete(dualcdb.TupleID(id))
	case "list":
		s.rel.Scan(func(t *dualcdb.Tuple) bool {
			fmt.Fprintf(s.out, "%4d: %s\n", t.ID(), t)
			return true
		})
	case "gen":
		return s.gen(rest)
	case "index":
		return s.buildDual(rest)
	case "rindex":
		ix, err := dualcdb.BuildRPlusIndex(s.rel, dualcdb.RPlusOptions{})
		if err != nil {
			return err
		}
		s.rplus = ix
		fmt.Fprintf(s.out, "R+-tree built: %d pages (%d unbounded/empty tuples skipped)\n",
			ix.Pages(), ix.Skipped)
	case "exist", "all":
		kind := dualcdb.EXIST
		if cmd == "all" {
			kind = dualcdb.ALL
		}
		return s.query(kind, rest)
	case "save":
		return s.save(rest)
	case "load":
		return s.load(rest)
	case "dbsave":
		return s.dbsave(rest)
	case "dbopen":
		return s.dbopen(rest)
	case "observe":
		return s.observe(rest)
	case "serve":
		return s.serve(rest)
	case "traces":
		return s.traces()
	case "flight":
		return s.flight()
	case "stats":
		s.stats()
	default:
		return fmt.Errorf("unknown command %q ('help' lists commands)", cmd)
	}
	return nil
}

func (s *session) help() {
	fmt.Fprint(s.out, `commands:
  insert <constraints>     insert a tuple, e.g. insert x >= 0 && y <= 2x + 1
  delete <id>              delete a tuple
  list                     list tuples
  gen <n> <small|medium> [seed]
                           generate a random relation (replaces current)
  index <k> [t1|t2]        build the dual index with k slopes (default t2)
  rindex                   build the R+-tree baseline
  exist <constraints>      EXIST selection; one constraint runs a half-plane
                           query, a conjunction runs a generalized-tuple
                           query, e.g. exist y >= 0.5x + 2 && x <= 10
  all <constraints>        ALL selection (same forms)
  save <path>              write the relation as a text file
  load <path>              read a relation text file (replaces current)
  dbsave <path>            write relation + dual index as a binary database
  dbopen <path>            reopen a binary database (replaces current)
  observe [slow <dur>|off] attach a query observer (metrics, traces); with
                           'slow 10ms' queries at or over the threshold are
                           logged to stderr and retained for 'traces'
  serve [addr]             start the HTTP debug server (default
                           127.0.0.1:6060): /debug/stats, /debug/metrics,
                           /debug/traces, /debug/prom, /debug/flight,
                           /debug/pprof
  traces                   dump the retained slow-query traces
  flight                   dump the commit flight recorder (recent commits
                           with stage timings and page clone/free counts)
  stats                    structure + query and commit statistics
  quit                     leave
`)
}

// save writes one tuple per line in the parseable constraint syntax.
func (s *session) save(path string) error {
	if path == "" {
		return fmt.Errorf("save <path>")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	var scanErr error
	s.rel.Scan(func(t *dualcdb.Tuple) bool {
		if _, err := fmt.Fprintln(w, t.String()); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "saved %d tuples to %s\n", s.rel.Len(), path)
	return nil
}

// load replaces the relation with the tuples from a text file (one tuple
// per line; blank lines and lines starting with '#' are skipped).
func (s *session) load(path string) error {
	if path == "" {
		return fmt.Errorf("load <path>")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rel := dualcdb.NewRelation(2)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		t, err := dualcdb.ParseTuple(text, 2)
		if err != nil {
			return fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if _, err := rel.Insert(t); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	s.rel, s.dual, s.rplus = rel, nil, nil
	fmt.Fprintf(s.out, "loaded %d tuples from %s; indexes cleared\n", rel.Len(), path)
	return nil
}

func (s *session) gen(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return fmt.Errorf("gen <n> <small|medium> [seed]")
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n <= 0 {
		return fmt.Errorf("bad cardinality %q", fields[0])
	}
	size := dualcdb.SmallObjects
	switch fields[1] {
	case "small":
	case "medium":
		size = dualcdb.MediumObjects
	default:
		return fmt.Errorf("size must be small or medium")
	}
	seed := int64(1)
	if len(fields) > 2 {
		if seed, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
			return fmt.Errorf("bad seed %q", fields[2])
		}
	}
	rel, err := dualcdb.GenerateRelation(dualcdb.WorkloadConfig{N: n, Size: size, Seed: seed})
	if err != nil {
		return err
	}
	s.rel, s.dual, s.rplus = rel, nil, nil
	fmt.Fprintf(s.out, "generated %d %s tuples (seed %d); indexes cleared\n", n, size, seed)
	return nil
}

func (s *session) buildDual(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return fmt.Errorf("index <k> [t1|t2]")
	}
	k, err := strconv.Atoi(fields[0])
	if err != nil || k < 1 {
		return fmt.Errorf("bad k %q", fields[0])
	}
	tech := dualcdb.T2
	if len(fields) > 1 {
		switch fields[1] {
		case "t1":
			tech = dualcdb.T1
		case "t2":
		case "restricted":
			tech = dualcdb.RestrictedOnly
		default:
			return fmt.Errorf("technique must be t1, t2 or restricted")
		}
	}
	ix, err := dualcdb.BuildIndex(s.rel, dualcdb.IndexOptions{
		Slopes: dualcdb.EquiangularSlopes(k), Technique: tech, Observe: s.obs,
	})
	if err != nil {
		return err
	}
	s.dual = ix
	fmt.Fprintf(s.out, "dual index built: k=%d, technique %v, %d pages\n", k, tech, ix.Pages())
	return nil
}

// query parses the constraint text and runs either a half-plane selection
// (single constraint) or a generalized-tuple selection (conjunction) on
// the dual index (preferred), the R⁺-tree, or by exhaustive scan.
func (s *session) query(kind dualcdb.QueryKind, rest string) error {
	cons, err := dualcdb.ParseConstraints(rest, 2)
	if err != nil {
		return err
	}
	if len(cons) > 1 {
		return s.queryTuple(kind, rest)
	}
	q, err := parseHalfPlaneQuery(kind, rest)
	if err != nil {
		return err
	}
	switch {
	case s.dual != nil:
		res, err := s.dual.Query(q)
		if err != nil {
			return err
		}
		st := res.Stats
		fmt.Fprintf(s.out, "%v: %v  (path=%s, candidates=%d, falseHits=%d, duplicates=%d, pages=%d)\n",
			q, res.IDs, st.Path, st.Candidates, st.FalseHits, st.Duplicates, st.PagesRead)
	case s.rplus != nil:
		res, err := s.rplus.Query(q)
		if err != nil {
			return err
		}
		st := res.Stats
		fmt.Fprintf(s.out, "%v: %v  (path=%s, candidates=%d, falseHits=%d, pages=%d)\n",
			q, res.IDs, st.Path, st.Candidates, st.FalseHits, st.PagesRead)
	default:
		ids, err := q.Eval(s.rel)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%v: %v  (exhaustive scan — build an index with 'index')\n", q, ids)
	}
	return nil
}

// queryTuple runs a generalized-tuple selection (conjunction of
// constraints as the query object).
func (s *session) queryTuple(kind dualcdb.QueryKind, rest string) error {
	qt, err := dualcdb.ParseTuple(rest, 2)
	if err != nil {
		return err
	}
	if s.dual == nil {
		ids, err := dualcdb.EvalTuple(kind, qt, s.rel)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%v(%s): %v  (exhaustive scan — build an index with 'index')\n", kind, qt, ids)
		return nil
	}
	res, err := s.dual.QueryTuple(kind, qt)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(s.out, "%v(%s): %v  (path=%s, constraints=%d indexed/%d skipped, candidates=%d, falseHits=%d, pages=%d)\n",
		kind, qt, res.IDs, st.Path, st.ConstraintsIndexed, st.ConstraintsSkipped,
		st.Candidates, st.FalseHits, st.PagesRead)
	return nil
}

// dbsave persists the relation and the dual index as a single-file binary
// database. The current in-memory index is rebuilt onto the file store.
func (s *session) dbsave(path string) error {
	if path == "" {
		return fmt.Errorf("dbsave <path>")
	}
	if s.dual == nil {
		return fmt.Errorf("build a dual index first ('index <k>')")
	}
	opt := dualcdb.IndexOptions{
		Slopes:    s.dual.Slopes(),
		Technique: dualcdb.T2,
	}
	// Rebuild onto the file store: relation tuples must be re-owned by a
	// fresh relation (tuples carry their relation identity).
	rel := dualcdb.NewRelation(2)
	var copyErr error
	s.rel.Scan(func(t *dualcdb.Tuple) bool {
		fresh, err := dualcdb.NewTuple(2, t.Constraints())
		if err != nil {
			copyErr = err
			return false
		}
		if _, err := rel.Insert(fresh); err != nil {
			copyErr = err
			return false
		}
		return true
	})
	if copyErr != nil {
		return copyErr
	}
	idx, err := dualcdb.CreateDatabase(path, rel, opt)
	if err != nil {
		return err
	}
	if err := idx.Save(); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "database saved: %d tuples, %d tree pages -> %s\n", rel.Len(), idx.Pages(), path)
	return nil
}

// dbopen replaces the session state with a reopened binary database.
func (s *session) dbopen(path string) error {
	if path == "" {
		return fmt.Errorf("dbopen <path>")
	}
	rel, idx, err := dualcdb.OpenDatabase(path, dualcdb.DefaultPageSize)
	if err != nil {
		return err
	}
	idx.SetObserver(s.obs)
	s.rel, s.dual, s.rplus = rel, idx, nil
	fmt.Fprintf(s.out, "database opened: %d tuples, k=%d, %d tree pages\n",
		rel.Len(), len(idx.Slopes()), idx.Pages())
	return nil
}

// parseHalfPlaneQuery turns "y >= 0.5x + 2" into a Query via the
// constraint parser and the slope-form conversion.
func parseHalfPlaneQuery(kind dualcdb.QueryKind, text string) (dualcdb.Query, error) {
	cons, err := dualcdb.ParseConstraints(text, 2)
	if err != nil {
		return dualcdb.Query{}, err
	}
	if len(cons) != 1 {
		return dualcdb.Query{}, fmt.Errorf("a query is a single half-plane, got %d constraints", len(cons))
	}
	slope, icpt, op, err := cons[0].SlopeForm()
	if err != nil {
		return dualcdb.Query{}, fmt.Errorf("vertical query half-planes are not supported: %w", err)
	}
	return constraint.NewQuery(kind, slope, icpt, geom.Op(op)), nil
}
