package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestSessionDBSaveOpenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shell.cdb")
	out := runScript(t, []string{
		"gen 120 small 4",
		"index 3 t2",
		"exist y >= 0.4x + 5",
		"dbsave " + path,
		"gen 3 small 9", // clobber the session
		"dbopen " + path,
		"exist y >= 0.4x + 5",
		"stats",
	})
	if !strings.Contains(out, "database saved: 120 tuples") {
		t.Errorf("dbsave missing:\n%s", out)
	}
	if !strings.Contains(out, "database opened: 120 tuples, k=3") {
		t.Errorf("dbopen missing:\n%s", out)
	}
	// The query before saving and after reopening must return the same
	// number of results: extract both result lines.
	lines := strings.Split(out, "\n")
	var results []string
	for _, l := range lines {
		if strings.HasPrefix(l, "EXIST(") {
			results = append(results, l[:strings.Index(l, "  (")])
		}
	}
	if len(results) != 2 || results[0] != results[1] {
		t.Errorf("answers differ across dbsave/dbopen:\n%v", results)
	}
}

func TestSessionDBSaveRequiresIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "noidx.cdb")
	out := captureErr(t, []string{"gen 10 small 1"}, "dbsave "+path)
	if !strings.Contains(out, "build a dual index first") {
		t.Errorf("error missing:\n%s", out)
	}
}

// captureErr runs setup commands (which must succeed) and then one failing
// command, returning its error text.
func captureErr(t *testing.T, setup []string, failing string) string {
	t.Helper()
	_ = runScript(t, setup) // separate session is fine: gen is deterministic
	var sb strings.Builder
	s := newTestSession(&sb)
	for _, line := range setup {
		if err := s.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	err := s.exec(failing)
	if err == nil {
		t.Fatalf("%q should fail", failing)
	}
	return err.Error()
}
