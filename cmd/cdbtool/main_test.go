package main

import (
	"bufio"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"dualcdb"
)

// runScript feeds commands through a session and returns the output.
func runScript(t *testing.T, commands []string) string {
	t.Helper()
	var sb strings.Builder
	s := &session{rel: dualcdb.NewRelation(2), out: bufio.NewWriter(&sb)}
	for _, line := range commands {
		if err := s.exec(line); err != nil {
			s.out.Flush()
			t.Fatalf("%q: %v (output so far: %s)", line, err, sb.String())
		}
	}
	s.out.Flush()
	return sb.String()
}

func TestSessionInsertIndexQuery(t *testing.T) {
	out := runScript(t, []string{
		"insert x >= 0 && y >= 0 && x + y <= 4",
		"insert y >= 8",
		"index 3 t2",
		"exist y >= 0.7x + 1",
		"all y >= 6",
		"stats",
	})
	for _, want := range []string{
		"inserted tuple 1",
		"inserted tuple 2 (infinite object)",
		"dual index built: k=3",
		"EXIST(y >= 0.7x + 1): [1 2]",
		"ALL(y >= 0x + 6): [2]",
		"relation: 2 tuples",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSessionTupleQuery(t *testing.T) {
	out := runScript(t, []string{
		"insert x >= 1 && x <= 2 && y >= 1 && y <= 2",
		"insert x >= 8 && x <= 9 && y >= 8 && y <= 9",
		"index 2 t2",
		"all x >= 0 && x <= 5 && y >= 0 && y <= 5",
		"exist x >= 0 && x <= 5 && y >= 0 && y <= 5",
	})
	if !strings.Contains(out, "ALL(") || !strings.Contains(out, ": [1]") {
		t.Errorf("tuple ALL missing:\n%s", out)
	}
	if !strings.Contains(out, "EXIST(") {
		t.Errorf("tuple EXIST missing:\n%s", out)
	}
}

func TestSessionGenAndRIndex(t *testing.T) {
	out := runScript(t, []string{
		"gen 100 small 3",
		"rindex",
		"exist y >= 0",
	})
	if !strings.Contains(out, "generated 100 small tuples") {
		t.Errorf("gen missing:\n%s", out)
	}
	if !strings.Contains(out, "R+-tree built") {
		t.Errorf("rindex missing:\n%s", out)
	}
	if !strings.Contains(out, "path=rplus-EXIST") {
		t.Errorf("R+ query path missing:\n%s", out)
	}
}

func TestSessionSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel.cdb")
	out := runScript(t, []string{
		"insert x >= 0 && y >= 0 && x + y <= 4",
		"insert y >= 2x + 1",
		"save " + path,
		"gen 5 small 1", // overwrite in-session
		"load " + path,
		"index 2 t2",
		"exist y >= 0",
		"stats",
	})
	if !strings.Contains(out, "saved 2 tuples") {
		t.Errorf("save missing:\n%s", out)
	}
	if !strings.Contains(out, "loaded 2 tuples") {
		t.Errorf("load missing:\n%s", out)
	}
	if !strings.Contains(out, "relation: 2 tuples") {
		t.Errorf("reloaded relation wrong:\n%s", out)
	}
}

func TestSessionErrors(t *testing.T) {
	var sb strings.Builder
	s := &session{rel: dualcdb.NewRelation(2), out: bufio.NewWriter(&sb)}
	for _, bad := range []string{
		"insert q >= 1",
		"delete notanumber",
		"index 0",
		"gen 5",
		"gen -1 small",
		"exist x >= 0 || y >= 0",
		"frobnicate",
		"load /nonexistent/path/xyz",
	} {
		if err := s.exec(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestParseHalfPlaneQuery(t *testing.T) {
	q, err := parseHalfPlaneQuery(dualcdb.EXIST, "y >= 0.5x + 2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != dualcdb.EXIST || math.Abs(q.Slope[0]-0.5) > 1e-12 || math.Abs(q.Intercept-2) > 1e-12 {
		t.Fatalf("parsed %+v", q)
	}
	// Flipped form: 2y <= 4x + 6 ⇔ y <= 2x + 3.
	q, err = parseHalfPlaneQuery(dualcdb.ALL, "2y <= 4x + 6")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Slope[0]-2) > 1e-12 || math.Abs(q.Intercept-3) > 1e-12 {
		t.Fatalf("parsed %+v", q)
	}
	if _, err := parseHalfPlaneQuery(dualcdb.ALL, "x >= 1"); err == nil {
		t.Fatal("vertical query must be rejected")
	}
	if _, err := parseHalfPlaneQuery(dualcdb.ALL, "y >= 0 && x >= 0"); err == nil {
		t.Fatal("multi-constraint text must be rejected by the half-plane parser")
	}
}

// newTestSession builds a session writing to sb (helper shared with
// db_test.go).
func newTestSession(sb *strings.Builder) *session {
	return &session{rel: dualcdb.NewRelation(2), out: bufio.NewWriter(sb)}
}
