package main

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// TestServeSmoke drives a full observed session — generate, index, query,
// serve — then scrapes the debug server and checks the JSON is well-formed
// with nonzero pool counters. This is the CI smoke test for the debug
// server.
func TestServeSmoke(t *testing.T) {
	var sb strings.Builder
	s := newTestSession(&sb)
	for _, line := range []string{
		"observe slow 1ns",
		"gen 300 small 7",
		"index 3 t2",
		"exist y >= 0.4x + 1",
		"all y <= 2",
		"serve 127.0.0.1:0",
	} {
		if err := s.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	s.out.Flush()
	defer s.srv.Close()

	m := regexp.MustCompile(`listening on (http://[^/ ]+)/`).FindStringSubmatch(sb.String())
	if m == nil {
		t.Fatalf("no listen address in output:\n%s", sb.String())
	}
	base := m[1]

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	// /debug/stats: the unified snapshot with live pool counters.
	var stats struct {
		Tuples    int    `json:"tuples"`
		Pages     int    `json:"pages"`
		Technique string `json:"technique"`
		Pool      struct {
			LogicalReads  uint64 `json:"LogicalReads"`
			PhysicalReads uint64 `json:"PhysicalReads"`
		} `json:"pool"`
		Observer *struct {
			Queries uint64 `json:"queries"`
		} `json:"observer"`
	}
	if err := json.Unmarshal(get("/debug/stats"), &stats); err != nil {
		t.Fatalf("/debug/stats is not valid JSON: %v", err)
	}
	if stats.Tuples != 300 || stats.Pages == 0 || stats.Technique != "T2" {
		t.Errorf("unexpected snapshot shape: %+v", stats)
	}
	if stats.Pool.LogicalReads == 0 {
		t.Error("pool logical reads are zero after an index build and two queries")
	}
	if stats.Observer == nil || stats.Observer.Queries != 2 {
		t.Errorf("observer should report 2 queries, got %+v", stats.Observer)
	}

	// /debug/metrics: flat registry snapshot.
	var metrics map[string]any
	if err := json.Unmarshal(get("/debug/metrics"), &metrics); err != nil {
		t.Fatalf("/debug/metrics is not valid JSON: %v", err)
	}
	if v, ok := metrics["queries.total"].(float64); !ok || v != 2 {
		t.Errorf("queries.total = %v, want 2", metrics["queries.total"])
	}
	if v, ok := metrics["pool.logical_reads"].(float64); !ok || v == 0 {
		t.Errorf("pool.logical_reads gauge = %v, want nonzero", metrics["pool.logical_reads"])
	}

	// /debug/traces: both queries crossed the 1ns threshold.
	var traces []json.RawMessage
	if err := json.Unmarshal(get("/debug/traces"), &traces); err != nil {
		t.Fatalf("/debug/traces is not valid JSON: %v", err)
	}
	if len(traces) != 2 {
		t.Errorf("expected 2 retained traces, got %d", len(traces))
	}

	// The shell's stats command must surface the same layer.
	sb.Reset()
	if err := s.exec("stats"); err != nil {
		t.Fatal(err)
	}
	s.out.Flush()
	out := sb.String()
	for _, want := range []string{"pool:", "decode cache:", "queries: 2 total"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}
