package main

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestServeSmoke drives a full observed session — generate, index, query,
// serve — then scrapes the debug server and checks the JSON is well-formed
// with nonzero pool counters. This is the CI smoke test for the debug
// server.
func TestServeSmoke(t *testing.T) {
	var sb strings.Builder
	s := newTestSession(&sb)
	for _, line := range []string{
		"observe slow 1ns",
		"gen 300 small 7",
		"index 3 t2",
		"exist y >= 0.4x + 1",
		"all y <= 2",
		"insert x >= 0 && y >= 0 && x + y <= 4",
		"insert y >= 8",
		"delete 301",
		"serve 127.0.0.1:0",
	} {
		if err := s.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	s.out.Flush()
	defer s.srv.Close()

	m := regexp.MustCompile(`listening on (http://[^/ ]+)/`).FindStringSubmatch(sb.String())
	if m == nil {
		t.Fatalf("no listen address in output:\n%s", sb.String())
	}
	base := m[1]

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	// /debug/stats: the unified snapshot with live pool counters.
	var stats struct {
		Tuples    int    `json:"tuples"`
		Pages     int    `json:"pages"`
		Technique string `json:"technique"`
		Pool      struct {
			LogicalReads  uint64 `json:"LogicalReads"`
			PhysicalReads uint64 `json:"PhysicalReads"`
		} `json:"pool"`
		Observer *struct {
			Queries uint64 `json:"queries"`
		} `json:"observer"`
	}
	if err := json.Unmarshal(get("/debug/stats"), &stats); err != nil {
		t.Fatalf("/debug/stats is not valid JSON: %v", err)
	}
	if stats.Tuples != 301 || stats.Pages == 0 || stats.Technique != "T2" {
		t.Errorf("unexpected snapshot shape: %+v", stats)
	}
	if stats.Pool.LogicalReads == 0 {
		t.Error("pool logical reads are zero after an index build and two queries")
	}
	if stats.Observer == nil || stats.Observer.Queries != 2 {
		t.Errorf("observer should report 2 queries, got %+v", stats.Observer)
	}

	// /debug/metrics: flat registry snapshot.
	var metrics map[string]any
	if err := json.Unmarshal(get("/debug/metrics"), &metrics); err != nil {
		t.Fatalf("/debug/metrics is not valid JSON: %v", err)
	}
	if v, ok := metrics["queries.total"].(float64); !ok || v != 2 {
		t.Errorf("queries.total = %v, want 2", metrics["queries.total"])
	}
	if v, ok := metrics["pool.logical_reads"].(float64); !ok || v == 0 {
		t.Errorf("pool.logical_reads gauge = %v, want nonzero", metrics["pool.logical_reads"])
	}

	// /debug/traces: both queries crossed the 1ns threshold.
	var traces []json.RawMessage
	if err := json.Unmarshal(get("/debug/traces"), &traces); err != nil {
		t.Fatalf("/debug/traces is not valid JSON: %v", err)
	}
	if len(traces) != 2 {
		t.Errorf("expected 2 retained traces, got %d", len(traces))
	}

	// /debug/prom: Prometheus text exposition with the right content
	// type, TYPE declarations, and well-formed cumulative histograms.
	resp, err := http.Get(base + "/debug/prom")
	if err != nil {
		t.Fatalf("GET /debug/prom: %v", err)
	}
	promBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET /debug/prom: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/debug/prom content type = %q", ct)
	}
	prom := string(promBody)
	for _, want := range []string{
		"# TYPE dualcdb_cdbtool_queries_total counter",
		"# TYPE dualcdb_cdbtool_commits_total counter",
		"# TYPE dualcdb_cdbtool_commits_latency_ns histogram",
		"dualcdb_cdbtool_mvcc_version",
		"go_goroutines",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/debug/prom missing %q", want)
		}
	}
	checkPromHistogram(t, prom, "dualcdb_cdbtool_commits_latency_ns")

	// /debug/flight: the three commits above, newest first, each with the
	// full stage breakdown.
	var flight struct {
		Commits []struct {
			Op      string `json:"op"`
			Version uint64 `json:"version"`
			Spans   []struct {
				Stage string `json:"stage"`
			} `json:"spans"`
		} `json:"commits"`
		SlowCommits []json.RawMessage `json:"slow_commits"`
	}
	if err := json.Unmarshal(get("/debug/flight"), &flight); err != nil {
		t.Fatalf("/debug/flight is not valid JSON: %v", err)
	}
	if len(flight.Commits) != 3 {
		t.Fatalf("flight recorder has %d commits, want 3", len(flight.Commits))
	}
	if flight.Commits[0].Op != "delete" || flight.Commits[2].Op != "insert" {
		t.Errorf("flight recorder order/ops wrong: %+v", flight.Commits)
	}
	if len(flight.Commits[0].Spans) != 4 {
		t.Errorf("commit trace has %d spans, want 4", len(flight.Commits[0].Spans))
	}

	// The shell's stats command must surface the same layers.
	sb.Reset()
	if err := s.exec("stats"); err != nil {
		t.Fatal(err)
	}
	s.out.Flush()
	out := sb.String()
	for _, want := range []string{"pool:", "decode cache:", "queries: 2 total", "mvcc: version 4", "commits: 3 total"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}

	// And the flight command renders the same traces as text.
	sb.Reset()
	if err := s.exec("flight"); err != nil {
		t.Fatal(err)
	}
	s.out.Flush()
	out = sb.String()
	for _, want := range []string{"delete", "publish", "reclaim", "cloned="} {
		if !strings.Contains(out, want) {
			t.Errorf("flight output missing %q:\n%s", want, out)
		}
	}
}

// checkPromHistogram asserts one exposition histogram is well-formed in
// document order: le labels ascending, cumulative counts nondecreasing,
// and the terminal +Inf bucket equal to _count.
func checkPromHistogram(t *testing.T, doc, name string) {
	t.Helper()
	var (
		lastLe    float64
		lastCount float64
		infCount  = -1.0
		buckets   int
	)
	bucketRe := regexp.MustCompile(`^` + name + `_bucket\{le="([^"]+)"\} (\d+)$`)
	countRe := regexp.MustCompile(`^` + name + `_count (\d+)$`)
	count := -1.0
	for _, line := range strings.Split(doc, "\n") {
		if m := countRe.FindStringSubmatch(line); m != nil {
			count = mustFloat(t, m[1])
			continue
		}
		m := bucketRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		c := mustFloat(t, m[2])
		if c < lastCount {
			t.Errorf("%s: cumulative count decreases at le=%q (%g -> %g)", name, m[1], lastCount, c)
		}
		lastCount = c
		if m[1] == "+Inf" {
			infCount = c
			continue
		}
		le := mustFloat(t, m[1])
		if buckets > 0 && le <= lastLe {
			t.Errorf("%s: le not ascending (%g after %g)", name, le, lastLe)
		}
		lastLe = le
		buckets++
	}
	if buckets == 0 {
		t.Fatalf("%s: no buckets in exposition", name)
	}
	if infCount < 0 || count < 0 || infCount != count {
		t.Errorf("%s: +Inf bucket %g != _count %g", name, infCount, count)
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad number %q: %v", s, err)
	}
	return v
}
