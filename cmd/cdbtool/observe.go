package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"dualcdb"
)

// observe attaches (or with "off" detaches) a query observer to the
// session. "observe slow 10ms" additionally logs queries at or over the
// threshold to stderr as structured JSON and retains their traces.
func (s *session) observe(rest string) error {
	opt := dualcdb.ObserverOptions{Name: "cdbtool", TraceCapacity: 64}
	fields := strings.Fields(rest)
	for i := 0; i < len(fields); i++ {
		switch fields[i] {
		case "off":
			s.obs = nil
			if s.dual != nil {
				s.dual.SetObserver(nil)
			}
			fmt.Fprintln(s.out, "observation off")
			return nil
		case "slow":
			if i+1 >= len(fields) {
				return fmt.Errorf("observe slow <duration> (e.g. observe slow 10ms)")
			}
			d, err := time.ParseDuration(fields[i+1])
			if err != nil {
				return fmt.Errorf("bad duration %q: %w", fields[i+1], err)
			}
			opt.SlowThreshold = d
			opt.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
			i++
		default:
			return fmt.Errorf("observe [slow <duration>|off]")
		}
	}
	s.obs = dualcdb.NewObserver(opt)
	if s.dual != nil {
		s.dual.SetObserver(s.obs)
	}
	if opt.SlowThreshold > 0 {
		fmt.Fprintf(s.out, "observation on (slow-query threshold %v, logging to stderr)\n", opt.SlowThreshold)
	} else {
		fmt.Fprintln(s.out, "observation on")
	}
	return nil
}

// statsAny is the debug server's /debug/stats payload: the unified index
// snapshot, or the bare relation shape before an index exists.
func (s *session) statsAny() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dual != nil {
		return s.dual.StatsSnapshot()
	}
	return map[string]any{"tuples": s.rel.Len(), "dim": s.rel.Dim()}
}

// serve starts the HTTP debug server. The listener address is printed so
// "serve 127.0.0.1:0" works for scripted smoke tests.
func (s *session) serve(addr string) error {
	if s.srv != nil {
		return fmt.Errorf("debug server already running")
	}
	if addr == "" {
		addr = "127.0.0.1:6060"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := dualcdb.DebugMux(s.statsAny, s.obs)
	s.srv = &http.Server{Handler: mux}
	go func() {
		// ErrServerClosed on shutdown; anything else is already fatal
		// to the server goroutine and surfaces via failed scrapes.
		_ = s.srv.Serve(ln)
	}()
	fmt.Fprintf(s.out, "debug server listening on http://%s/ (stats at /debug/stats)\n", ln.Addr())
	return nil
}

// traces dumps the retained slow-query traces, newest first.
func (s *session) traces() error {
	if s.obs == nil {
		return fmt.Errorf("no observer attached ('observe slow <dur>' first)")
	}
	trs := s.obs.SlowTraces()
	if len(trs) == 0 {
		fmt.Fprintln(s.out, "no slow traces retained")
		return nil
	}
	for _, tr := range trs {
		fmt.Fprintf(s.out, "%s  path=%s total=%dus pages=%d candidates=%d falseHits=%d\n",
			tr.Query, tr.Path, tr.TotalUs, tr.Pages, tr.Candidates, tr.FalseHits)
		for _, sp := range tr.Spans {
			fmt.Fprintf(s.out, "  %-7s +%6dus %6dus  pages=%d items=%d\n",
				sp.Stage, sp.StartUs, sp.DurUs, sp.Pages, sp.Items)
		}
	}
	return nil
}

// flight dumps the commit flight recorder, newest first: every recent
// commit with its stage breakdown and exact page-clone/free attribution.
func (s *session) flight() error {
	if s.obs == nil {
		return fmt.Errorf("no observer attached ('observe' first)")
	}
	recs := s.obs.FlightRecords()
	if len(recs) == 0 {
		fmt.Fprintln(s.out, "no commits recorded")
		return nil
	}
	for _, tr := range recs {
		status := fmt.Sprintf("v%d", tr.Version)
		if tr.Aborted {
			status = "aborted(" + tr.Cause + ")"
		}
		fmt.Fprintf(s.out, "%-7s %-16s total=%dus inserts=%d deletes=%d superseded=%d cloned=%d freed=%d\n",
			tr.Op, status, tr.TotalUs, tr.Inserts, tr.Deletes, tr.Superseded, tr.Cloned, tr.Freed)
		for _, sp := range tr.Spans {
			fmt.Fprintf(s.out, "  %-7s +%6dus %6dus  cloned=%d freed=%d items=%d\n",
				sp.Stage, sp.StartUs, sp.DurUs, sp.Cloned, sp.Freed, sp.Items)
		}
		if tr.Err != "" {
			fmt.Fprintf(s.out, "  err: %s\n", tr.Err)
		}
	}
	return nil
}

// stats prints the unified snapshot in the shell's line format.
func (s *session) stats() {
	fmt.Fprintf(s.out, "relation: %d tuples, dim %d\n", s.rel.Len(), s.rel.Dim())
	if s.dual != nil {
		snap := s.dual.StatsSnapshot()
		fmt.Fprintf(s.out, "dual index: %d indexed tuples, %d pages, slopes %v\n",
			s.dual.Len(), snap.Pages, s.dual.Slopes())
		fmt.Fprintf(s.out, "pool: %d logical / %d physical reads, %d writes; %d/%d frames resident (%d pinned)\n",
			snap.Pool.LogicalReads, snap.Pool.PhysicalReads, snap.Pool.Writes,
			snap.Residency.Frames, snap.Residency.Capacity, snap.Residency.Pinned)
		fmt.Fprintf(s.out, "decode cache: %d hits, %d misses, %d invalidations, %d resident\n",
			snap.DecodeCache.Hits, snap.DecodeCache.Misses,
			snap.DecodeCache.Invalidations, snap.DecodeCache.Resident)
		fmt.Fprintf(s.out, "readahead: %d batches, %d pages; sweeps: %d descents, %d leaves visited\n",
			snap.Pool.ReadaheadBatches, snap.Pool.ReadaheadPages,
			snap.Sweeps.Descents, snap.Sweeps.LeavesVisited)
		m := snap.MVCC
		fmt.Fprintf(s.out, "mvcc: version %d, watermark %d (lag %d), %d pinned snapshots, %d backlog pages, %d cloned, %d reclaimed, %d chain overrides\n",
			m.Version, m.Watermark, m.VersionLag, m.PinnedSnapshots,
			m.ReclaimBacklogPages, m.PagesCloned, m.PagesReclaimed, m.ChainOverrides)
		if o := snap.Observer; o != nil {
			rate := 0.0
			if o.UptimeSec > 0 {
				rate = float64(o.Commits) / o.UptimeSec
			}
			fmt.Fprintf(s.out, "commits: %d total (%.2f/s), %d aborted (%d fault, %d explicit), %d slow, %d in flight; p50=%s p99=%s\n",
				o.Commits, rate, o.CommitAborts, o.AbortsFault, o.AbortsExplicit,
				o.CommitsSlow, o.CommitInflight,
				time.Duration(o.CommitLatency.P50), time.Duration(o.CommitLatency.P99))
		}
		if o := snap.Observer; o != nil {
			fmt.Fprintf(s.out, "queries: %d total, %d slow, %d errors\n", o.Queries, o.Slow, o.Errors)
			for _, name := range o.PathNames {
				ps := o.Paths[name]
				fmt.Fprintf(s.out, "  path %-12s %5d queries  p50=%s p99=%s  pages=%d candidates=%d falseHits=%d\n",
					name, ps.Count,
					time.Duration(ps.Latency.P50), time.Duration(ps.Latency.P99),
					ps.Pages, ps.Candidates, ps.FalseHits)
			}
		}
	}
	if s.rplus != nil {
		fmt.Fprintf(s.out, "R+-tree: %d pages\n", s.rplus.Pages())
	}
}
