package geom

import (
	"math"
	"testing"
)

// FuzzTOPBOTEnvelope checks the soundness invariants of the dual surfaces on
// arbitrary polyhedra: BOT^P(a) ≤ TOP^P(a) at every slope, the surfaces are
// never NaN, and they reach ±Inf only when a recession ray demands it (the
// paper's Proposition 2.2 reduction treats ±Inf as the honest value of an
// unbounded support problem, never as a rounding artifact).
func FuzzTOPBOTEnvelope(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.5)
	f.Add(-1.0, 2.0, 3.0, -4.0, 0.5, 0.5, 1.0, 1.0, -2.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 3.0)
	f.Add(2.0, 3.0, 2.0, 3.0, 2.0, 3.0, 0.0, 0.0, 0.0)
	f.Add(0.0, 0.0, 1e-300, 1.0, 1.0, 0.0, 0.0, 0.0, 1.0)
	f.Fuzz(func(t *testing.T, x0, y0, x1, y1, x2, y2, rx, ry, a float64) {
		for _, v := range []float64{x0, y0, x1, y1, x2, y2, rx, ry, a} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				t.Skip("outside the modeled coordinate range")
			}
		}
		verts := []Point{{x0, y0}, {x1, y1}, {x2, y2}}
		var rays []Point
		if rx != 0 || ry != 0 {
			rays = append(rays, Point{rx, ry})
		}
		p, err := FromVertices(verts, rays)
		if err != nil {
			t.Skip(err)
		}
		top, bot := TopEnvelope2(p), BotEnvelope2(p)
		gt, gb := top.Eval(a), bot.Eval(a)
		if math.IsNaN(gt) || math.IsNaN(gb) {
			t.Fatalf("NaN surface at a=%v: TOP=%v BOT=%v", a, gt, gb)
		}
		if gb > gt+1e-6 {
			t.Fatalf("BOT(%v)=%v above TOP(%v)=%v", a, gb, a, gt)
		}
		if p.IsBounded() && (math.IsInf(gt, 0) || math.IsInf(gb, 0)) {
			t.Fatalf("infinite surface on a bounded polyhedron: TOP=%v BOT=%v", gt, gb)
		}
		// TOP(a) = sup(y − a·x) diverges only along a ray with positive
		// objective; BOT only along one with negative objective.
		rayMax, rayMin := math.Inf(-1), math.Inf(1)
		for _, r := range p.Rays {
			obj := r[1] - a*r[0]
			rayMax = math.Max(rayMax, obj)
			rayMin = math.Min(rayMin, obj)
		}
		if math.IsInf(gt, 1) && !(rayMax > -Eps) {
			t.Fatalf("TOP(%v)=+Inf but no recession ray demands it (max ray objective %v)", a, rayMax)
		}
		if math.IsInf(gb, -1) && !(rayMin < Eps) {
			t.Fatalf("BOT(%v)=−Inf but no recession ray demands it (min ray objective %v)", a, rayMin)
		}
	})
}
