package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointBasicOps(t *testing.T) {
	p := NewPoint(1, 2)
	q := NewPoint(3, -1)
	if got := p.Add(q); !got.Eq(Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Eq(Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Eq(Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Errorf("Dot = %v", got)
	}
	if got := NewPoint(3, 4).Norm(); math.Abs(got-5) > Eps {
		t.Errorf("Norm = %v", got)
	}
	if got := NewPoint(0, 0).Dist(NewPoint(3, 4)); math.Abs(got-5) > Eps {
		t.Errorf("Dist = %v", got)
	}
}

func TestPointCloneIndependent(t *testing.T) {
	p := NewPoint(1, 2)
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestPointEqDifferentDims(t *testing.T) {
	if (Point{1}).Eq(Point{1, 0}) {
		t.Fatal("points of different dimension reported equal")
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	z := Point{0, 0}
	if got := z.Normalize(); !got.Eq(z) {
		t.Errorf("Normalize(0) = %v", got)
	}
}

func TestNormalizeUnit(t *testing.T) {
	f := func(x, y float64) bool {
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			return true
		}
		p := Point{x, y}
		if p.Norm() < 1e-3 {
			return true
		}
		return math.Abs(p.Normalize().Norm()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCross2Orientation(t *testing.T) {
	a, b, c := Pt2(0, 0), Pt2(1, 0), Pt2(0, 1)
	if Cross2(a, b, c) <= 0 {
		t.Error("CCW turn must have positive cross product")
	}
	if Cross2(a, c, b) >= 0 {
		t.Error("CW turn must have negative cross product")
	}
	if Cross2(a, b, Pt2(2, 0)) != 0 {
		t.Error("collinear points must have zero cross product")
	}
}

func TestPointString(t *testing.T) {
	if got := Pt2(1, -2.5).String(); got != "(1, -2.5)" {
		t.Errorf("String = %q", got)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		a, b := Pt2(ax, ay), Pt2(bx, by)
		return a.Add(b).Sub(b).Eq(a) || a.Norm() > 1e12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
			return true
		}
	}
	return false
}
