package geom

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Polyhedron is a closed convex polyhedron in E^d in vertex/ray
// (V-) representation: the set conv(Verts) + cone(Rays). It may be empty,
// bounded (no rays) or unbounded. When built from half-spaces the original
// H-representation is retained in HS, which makes point-membership tests
// exact and cheap.
//
// The V-representation is what the dual transform of the paper consumes:
// the TOP/BOT surfaces of Section 2.1 are maxima/minima of the dual
// hyperplanes of the vertices, with the recession rays deciding where the
// surfaces become infinite (the paper's "virtual vertices at infinity").
type Polyhedron struct {
	// Verts are the generating points. For a non-empty polyhedron there is
	// at least one. For full-dimensional bounded 2-D polyhedra they are the
	// extreme points in counter-clockwise order.
	Verts []Point
	// Rays are unit generator directions of the recession cone; empty for
	// bounded polyhedra.
	Rays []Point
	// HS is the originating H-representation when known, nil otherwise.
	HS []HalfSpace

	dim   int
	empty bool
}

// ErrNoHRep is returned by operations that require the half-space
// representation when the polyhedron was built from vertices only.
var ErrNoHRep = errors.New("geom: polyhedron has no half-space representation")

// EmptyPolyhedron returns the empty polyhedron in E^dim.
func EmptyPolyhedron(dim int) Polyhedron {
	return Polyhedron{dim: dim, empty: true}
}

// FromVertices builds a polyhedron from generating points and optional ray
// directions (which are normalized). In E² bounded polyhedra get their
// vertex set reduced to the convex hull in CCW order and an
// H-representation derived from the hull edges.
func FromVertices(verts []Point, rays []Point) (Polyhedron, error) {
	if len(verts) == 0 {
		if len(rays) != 0 {
			return Polyhedron{}, errors.New("geom: rays without vertices")
		}
		return Polyhedron{}, errors.New("geom: no vertices")
	}
	dim := verts[0].Dim()
	p := Polyhedron{dim: dim}
	for _, v := range verts {
		if v.Dim() != dim {
			return Polyhedron{}, fmt.Errorf("geom: vertex dimension %d != %d", v.Dim(), dim)
		}
		p.Verts = append(p.Verts, v.Clone())
	}
	for _, r := range rays {
		if r.Dim() != dim {
			return Polyhedron{}, fmt.Errorf("geom: ray dimension %d != %d", r.Dim(), dim)
		}
		if r.IsZero() {
			continue
		}
		p.Rays = append(p.Rays, r.Normalize())
	}
	if dim == 2 && len(p.Rays) == 0 {
		p.Verts = ConvexHull2(p.Verts)
		p.HS = edgesToHalfPlanes(p.Verts)
	}
	return p, nil
}

// edgesToHalfPlanes derives the H-representation of a bounded 2-D convex
// polygon given its CCW-ordered vertices. Degenerate polygons (point,
// segment) are handled by emitting equality pairs.
func edgesToHalfPlanes(verts []Point) []HalfSpace {
	switch len(verts) {
	case 0:
		return nil
	case 1:
		v := verts[0]
		return []HalfSpace{
			HalfPlane2(1, 0, -v[0], LE), HalfPlane2(1, 0, -v[0], GE),
			HalfPlane2(0, 1, -v[1], LE), HalfPlane2(0, 1, -v[1], GE),
		}
	case 2:
		a, b := verts[0], verts[1]
		d := b.Sub(a)
		// Line through a,b: n·x = n·a with n ⟂ d.
		n := Point{-d[1], d[0]}
		c := -n.Dot(a)
		hs := []HalfSpace{
			{A: []float64{n[0], n[1]}, C: c, Op: LE},
			{A: []float64{n[0], n[1]}, C: c, Op: GE},
		}
		// Clamp to the segment with two half-planes orthogonal to d.
		hs = append(hs,
			HalfSpace{A: []float64{d[0], d[1]}, C: -d.Dot(b), Op: LE},
			HalfSpace{A: []float64{d[0], d[1]}, C: -d.Dot(a), Op: GE},
		)
		return hs
	}
	hs := make([]HalfSpace, 0, len(verts))
	for i := range verts {
		a, b := verts[i], verts[(i+1)%len(verts)]
		d := b.Sub(a)
		// Inward normal for CCW order is (-dy, dx); constraint n·x ≥ n·a.
		n := Point{-d[1], d[0]}
		hs = append(hs, HalfSpace{A: []float64{n[0], n[1]}, C: -n.Dot(a), Op: GE})
	}
	return hs
}

// FromHalfSpaces builds the polyhedron defined by the conjunction of the
// given half-spaces in E^dim (the extension of a generalized tuple,
// Section 2 of the paper). It enumerates vertices as feasible intersections
// of dim supporting hyperplanes and generator rays of the recession cone,
// handling empty, bounded and unbounded (including non-pointed) cases.
//
// The enumeration is brute force over constraint subsets — O(C(m,d)) — which
// matches this repository's workloads (m ≤ ~12, d ≤ 4).
func FromHalfSpaces(hs []HalfSpace, dim int) (Polyhedron, error) {
	if dim < 1 {
		return Polyhedron{}, fmt.Errorf("geom: invalid dimension %d", dim)
	}
	eff := make([]HalfSpace, 0, len(hs))
	for _, h := range hs {
		if h.Dim() != dim {
			return Polyhedron{}, fmt.Errorf("geom: constraint dimension %d != %d", h.Dim(), dim)
		}
		if h.IsTrivial() {
			if !h.TrivialSatisfiable() {
				return EmptyPolyhedron(dim), nil
			}
			continue // vacuous
		}
		eff = append(eff, h)
	}
	p := Polyhedron{dim: dim, HS: append([]HalfSpace(nil), hs...)}

	// --- Vertices: feasible solutions of d boundary hyperplanes. ---
	verts := enumerateVertices(eff, dim)

	// --- Recession cone generators. ---
	rays := enumerateRays(eff, dim)

	if len(verts) == 0 {
		// The polyhedron is either empty or has no extreme points because it
		// contains a line (a slab, a half-plane, the whole space, …). Split
		// off the lineality space L and enumerate the generating points of
		// the pointed part P ∩ L⊥, so that conv(V) + cone(R) = P exactly.
		verts = linealityVertices(eff, dim)
		if len(verts) == 0 {
			// Last resort: any feasible point (covers numerically tricky
			// inputs); failure means the polyhedron is empty.
			seed, ok := feasiblePoint(eff, dim)
			if !ok {
				return EmptyPolyhedron(dim), nil
			}
			verts = []Point{seed}
		}
	}
	p.Verts = verts
	p.Rays = rays
	if dim == 2 && len(rays) == 0 && len(verts) >= 3 {
		p.Verts = ConvexHull2(p.Verts)
	}
	return p, nil
}

// enumerateVertices returns the feasible intersection points of every
// d-subset of constraint boundaries, deduplicated.
func enumerateVertices(hs []HalfSpace, dim int) []Point {
	var verts []Point
	idx := make([]int, dim)
	var rec func(start, k int)
	a := make([][]float64, dim)
	b := make([]float64, dim)
	rec = func(start, k int) {
		if k == dim {
			for i, j := range idx {
				a[i] = hs[j].A
				b[i] = -hs[j].C
			}
			x, ok := SolveLinear(a, b)
			if !ok {
				return
			}
			pt := Point(x)
			for _, h := range hs {
				if !containsLoose(h, pt) {
					return
				}
			}
			for _, v := range verts {
				if v.Eq(pt) {
					return
				}
			}
			verts = append(verts, pt)
			return
		}
		for i := start; i < len(hs); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	if len(hs) >= dim {
		rec(0, 0)
	}
	return verts
}

// linealityVertices handles polyhedra without extreme points. It computes
// the lineality space L (directions feasible both ways: the null space of
// all constraint normals), restricts the constraints to an orthonormal
// basis W of L⊥, enumerates the vertices of the restricted — now pointed —
// polyhedron, and maps them back into E^dim. The recession-cone generators
// produced by enumerateRays always include a generating set of L, so
// conv(result) + cone(rays) reproduces the polyhedron exactly.
func linealityVertices(hs []HalfSpace, dim int) []Point {
	normals := make([][]float64, len(hs))
	for i, h := range hs {
		normals[i] = h.A
	}
	lin := NullSpaceBasis(normals, dim)
	if len(lin) == 0 || len(lin) == dim {
		if len(lin) == dim {
			// No effective constraints: the whole space; the origin generates
			// together with the ± basis rays.
			return []Point{make(Point, dim)}
		}
		return nil // pointed: nothing to add here
	}
	w := orthoComplement(lin, dim)
	rdim := len(w)
	if rdim == 0 {
		return []Point{make(Point, dim)}
	}
	// Restrict each constraint to coordinates u over basis W:
	// h(W·u) = Σ_j (a·w_j)·u_j + c θ 0.
	rhs := make([]HalfSpace, 0, len(hs))
	for _, h := range hs {
		a := make([]float64, rdim)
		for j, wj := range w {
			for i := range wj {
				a[j] += h.A[i] * wj[i]
			}
		}
		rhs = append(rhs, HalfSpace{A: a, C: h.C, Op: h.Op})
	}
	rverts := enumerateVertices(rhs, rdim)
	if len(rverts) == 0 {
		// Either the restriction is empty or every restricted constraint is
		// trivial; fall back to a feasibility probe in restricted space.
		eff := rhs[:0:0]
		for _, h := range rhs {
			if h.IsTrivial() {
				if !h.TrivialSatisfiable() {
					return nil
				}
				continue
			}
			eff = append(eff, h)
		}
		if len(eff) == 0 {
			return []Point{make(Point, dim)}
		}
		seed, ok := feasiblePoint(eff, rdim)
		if !ok {
			return nil
		}
		rverts = []Point{seed}
	}
	verts := make([]Point, 0, len(rverts))
	for _, u := range rverts {
		v := make(Point, dim)
		for j, wj := range w {
			for i := range wj {
				v[i] += u[j] * wj[i]
			}
		}
		verts = append(verts, v)
	}
	return verts
}

// orthoComplement returns an orthonormal basis of the orthogonal complement
// of span(basis) in E^dim via Gram–Schmidt over the standard basis.
func orthoComplement(basis [][]float64, dim int) [][]float64 {
	ortho := make([][]float64, 0, dim)
	// First orthonormalize the given basis.
	for _, b := range basis {
		v := append([]float64(nil), b...)
		for _, o := range ortho {
			var dot float64
			for i := range v {
				dot += v[i] * o[i]
			}
			for i := range v {
				v[i] -= dot * o[i]
			}
		}
		var n float64
		for _, x := range v {
			n += x * x
		}
		n = math.Sqrt(n)
		if n > Eps {
			for i := range v {
				v[i] /= n
			}
			ortho = append(ortho, v)
		}
	}
	nLin := len(ortho)
	for e := 0; e < dim && len(ortho) < dim; e++ {
		v := make([]float64, dim)
		v[e] = 1
		for _, o := range ortho {
			var dot float64
			for i := range v {
				dot += v[i] * o[i]
			}
			for i := range v {
				v[i] -= dot * o[i]
			}
		}
		var n float64
		for _, x := range v {
			n += x * x
		}
		n = math.Sqrt(n)
		if n > 1e-7 {
			for i := range v {
				v[i] /= n
			}
			ortho = append(ortho, v)
		}
	}
	return ortho[nLin:]
}

// containsLoose is Contains with a slightly larger tolerance, needed because
// intersection points of nearly parallel boundaries carry rounding error.
func containsLoose(h HalfSpace, p Point) bool {
	v := h.Eval(p)
	// Scale tolerance with the constraint's magnitude at p.
	tol := 1e-7 * (1 + math.Abs(h.C))
	for i, a := range h.A {
		tol += 1e-7 * math.Abs(a*p[i])
	}
	if h.Op == LE {
		return v <= tol
	}
	return v >= -tol
}

// enumerateRays returns unit generator directions of the recession cone
// {x : h homogeneous, ∀h}. Candidates are drawn from null spaces of every
// subset of up to d−1 constraint normals (boundary-parallel directions,
// both signs), the inward normals, and the signed standard basis; each is
// kept iff every constraint allows it. The result generates the cone, which
// is all the support function needs.
func enumerateRays(hs []HalfSpace, dim int) []Point {
	inCone := func(d Point) bool {
		for _, h := range hs {
			if !h.AllowsDirection(d) {
				return false
			}
		}
		return true
	}
	seen := func(rays []Point, d Point) bool {
		for _, r := range rays {
			if r.Eq(d) {
				return true
			}
		}
		return false
	}
	var rays []Point
	add := func(d Point) {
		if d.IsZero() {
			return
		}
		d = d.Normalize()
		if inCone(d) && !seen(rays, d) {
			rays = append(rays, d)
		}
	}
	// Signed standard basis.
	for i := 0; i < dim; i++ {
		e := make(Point, dim)
		e[i] = 1
		add(e)
		e2 := make(Point, dim)
		e2[i] = -1
		add(e2)
	}
	// Inward normals.
	for _, h := range hs {
		n := make(Point, dim)
		copy(n, h.A)
		if h.Op == LE {
			n = n.Scale(-1)
		}
		add(n)
	}
	// Null spaces of subsets of normals, sizes 1..d−1.
	var rec func(start int, rows [][]float64)
	rec = func(start int, rows [][]float64) {
		if len(rows) >= 1 {
			for _, v := range NullSpaceBasis(rows, dim) {
				add(Point(v))
				add(Point(v).Scale(-1))
			}
		}
		if len(rows) == dim-1 {
			return
		}
		for i := start; i < len(hs); i++ {
			rec(i+1, append(rows, hs[i].A))
		}
	}
	rec(0, nil)
	return rays
}

// feasiblePoint finds a point satisfying all constraints via cyclic
// projection onto violated half-space boundaries (POCS), which converges
// for non-empty intersections of closed half-spaces. It reports failure if
// no feasible point is reached within the iteration budget.
func feasiblePoint(hs []HalfSpace, dim int) (Point, bool) {
	p := make(Point, dim)
	const maxIter = 10000
	for it := 0; it < maxIter; it++ {
		worst, worstViol := -1, Eps
		for i, h := range hs {
			v := h.Eval(p)
			viol := v
			if h.Op == GE {
				viol = -v
			}
			if viol > worstViol {
				worst, worstViol = i, viol
			}
		}
		if worst < 0 {
			return p, true
		}
		h := hs[worst]
		n2 := 0.0
		for _, a := range h.A {
			n2 += a * a
		}
		if n2 <= Eps {
			return nil, false
		}
		// Project onto the boundary, with a small overshoot into the
		// feasible side to avoid stalling on the boundary of several
		// constraints at once.
		v := h.Eval(p)
		step := v / n2 * 1.000001
		for i, a := range h.A {
			p[i] -= step * a
		}
	}
	// Final exact check in case the loop exited right at feasibility.
	for _, h := range hs {
		if !containsLoose(h, p) {
			return nil, false
		}
	}
	return p, true
}

// Dim returns the dimension of the ambient space.
func (p Polyhedron) Dim() int { return p.dim }

// IsEmpty reports whether the polyhedron has no points.
func (p Polyhedron) IsEmpty() bool { return p.empty }

// IsBounded reports whether the polyhedron is bounded (no recession rays).
func (p Polyhedron) IsBounded() bool { return !p.empty && len(p.Rays) == 0 }

// Contains reports whether the point satisfies every defining constraint.
// It requires the H-representation (ErrNoHRep otherwise).
func (p Polyhedron) Contains(pt Point) (bool, error) {
	if p.empty {
		return false, nil
	}
	if p.HS == nil {
		return false, ErrNoHRep
	}
	for _, h := range p.HS {
		if !h.Contains(pt) {
			return false, nil
		}
	}
	return true, nil
}

// Support returns the support function sup_{p∈P} c·p. It returns +Inf when
// the recession cone contains a direction with positive inner product with
// c, and −Inf for the empty polyhedron.
func (p Polyhedron) Support(c Point) float64 {
	if p.empty {
		return math.Inf(-1)
	}
	for _, r := range p.Rays {
		if c.Dot(r) > Eps {
			return math.Inf(1)
		}
	}
	best := math.Inf(-1)
	for _, v := range p.Verts {
		if s := c.Dot(v); s > best {
			best = s
		}
	}
	return best
}

// Top evaluates the paper's TOP^P surface at the slope vector
// b = (b1..b_{d−1}): TOP^P(b) = sup_{p∈P} (p_d − Σ b_i p_i), the largest
// intercept b_d for which the hyperplane x_d = b·x + b_d intersects P.
// It is +Inf where P is unbounded "upward" relative to that slope and −Inf
// for the empty polyhedron.
func (p Polyhedron) Top(b []float64) float64 {
	c := make(Point, p.dim)
	for i, bi := range b {
		c[i] = -bi
	}
	c[p.dim-1] = 1
	return p.Support(c)
}

// Bot evaluates the paper's BOT^P surface at the slope vector b:
// BOT^P(b) = inf_{p∈P} (p_d − Σ b_i p_i). It is −Inf where P is unbounded
// "downward" and +Inf for the empty polyhedron.
func (p Polyhedron) Bot(b []float64) float64 {
	c := make(Point, p.dim)
	for i, bi := range b {
		c[i] = bi
	}
	c[p.dim-1] = -1
	return -p.Support(c)
}

// MBR returns the minimum bounding axis-aligned rectangle as (lo, hi)
// corner points; unbounded directions yield ±Inf coordinates. It returns
// an error for the empty polyhedron.
func (p Polyhedron) MBR() (lo, hi Point, err error) {
	if p.empty {
		return nil, nil, errors.New("geom: MBR of empty polyhedron")
	}
	lo = make(Point, p.dim)
	hi = make(Point, p.dim)
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	for _, v := range p.Verts {
		for i := range v {
			lo[i] = math.Min(lo[i], v[i])
			hi[i] = math.Max(hi[i], v[i])
		}
	}
	for _, r := range p.Rays {
		for i := range r {
			if r[i] > Eps {
				hi[i] = math.Inf(1)
			}
			if r[i] < -Eps {
				lo[i] = math.Inf(-1)
			}
		}
	}
	return lo, hi, nil
}

// Area2 returns the area of a 2-D polyhedron: 0 for degenerate, +Inf for
// unbounded.
func (p Polyhedron) Area2() float64 {
	if p.empty {
		return 0
	}
	if len(p.Rays) > 0 {
		return math.Inf(1)
	}
	return PolygonArea2(ConvexHull2(p.Verts))
}

// Centroid returns the arithmetic mean of the generating vertices — a cheap
// interior representative ("weight-center" in the paper's workload).
func (p Polyhedron) Centroid() Point {
	if p.empty || len(p.Verts) == 0 {
		return nil
	}
	c := make(Point, p.dim)
	for _, v := range p.Verts {
		for i := range v {
			c[i] += v[i]
		}
	}
	return c.Scale(1 / float64(len(p.Verts)))
}

// SortedVerts2 returns the vertices of a 2-D polyhedron in a deterministic
// order (hull CCW order for bounded full-dimensional ones, lexicographic
// otherwise), for stable printing and tests.
func (p Polyhedron) SortedVerts2() []Point {
	if p.dim != 2 || p.empty {
		return nil
	}
	if len(p.Rays) == 0 && len(p.Verts) >= 3 {
		return ConvexHull2(p.Verts)
	}
	vs := make([]Point, len(p.Verts))
	copy(vs, p.Verts)
	sort.Slice(vs, func(i, j int) bool {
		if vs[i][0] != vs[j][0] { //dualvet:allow floatcmp — sort needs a strict weak order over the raw bits
			return vs[i][0] < vs[j][0]
		}
		return vs[i][1] < vs[j][1]
	})
	return vs
}

// String summarizes the polyhedron.
func (p Polyhedron) String() string {
	if p.empty {
		return fmt.Sprintf("Polyhedron(dim=%d, empty)", p.dim)
	}
	return fmt.Sprintf("Polyhedron(dim=%d, %d verts, %d rays)", p.dim, len(p.Verts), len(p.Rays))
}
