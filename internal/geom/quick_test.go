package geom

import (
	"math"
	"testing"
	"testing/quick"
)

// boxSpec is a quick-generated bounded box; coordinates fold into the
// working window.
type boxSpec struct {
	CX, CY uint16
	W, H   uint8
}

func (b boxSpec) poly() Polyhedron {
	cx := float64(b.CX%100) - 50
	cy := float64(b.CY%100) - 50
	w := float64(b.W%40)/2 + 0.25
	h := float64(b.H%40)/2 + 0.25
	p, err := FromHalfSpaces([]HalfSpace{
		HalfPlane2(1, 0, -(cx - w), GE),
		HalfPlane2(1, 0, -(cx + w), LE),
		HalfPlane2(0, 1, -(cy - h), GE),
		HalfPlane2(0, 1, -(cy + h), LE),
	}, 2)
	if err != nil {
		panic(err)
	}
	return p
}

// TestQuickTopBotBox: closed forms for boxes — TOP(a) = cy+h + |a|·w' and
// BOT symmetric — expressed via corner maxima.
func TestQuickTopBotBox(t *testing.T) {
	f := func(b boxSpec, aRaw int8) bool {
		p := b.poly()
		a := float64(aRaw) / 8
		lo, hi, err := p.MBR()
		if err != nil {
			return false
		}
		// TOP(a) = max over the 4 corners of (y − a·x).
		want := math.Inf(-1)
		wantBot := math.Inf(1)
		for _, x := range []float64{lo[0], hi[0]} {
			for _, y := range []float64{lo[1], hi[1]} {
				v := y - a*x
				want = math.Max(want, v)
				wantBot = math.Min(wantBot, v)
			}
		}
		return math.Abs(p.Top([]float64{a})-want) < 1e-7 &&
			math.Abs(p.Bot([]float64{a})-wantBot) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickEnvelopeAgreesWithSupport: the 2-D envelope and the support
// function must agree everywhere, for quick-generated boxes and slopes.
func TestQuickEnvelopeAgreesWithSupport(t *testing.T) {
	f := func(b boxSpec, aRaw int16) bool {
		p := b.poly()
		top := TopEnvelope2(p)
		bot := BotEnvelope2(p)
		a := float64(aRaw) / 256
		return math.Abs(top.Eval(a)-p.Top([]float64{a})) < 1e-7 &&
			math.Abs(bot.Eval(a)-p.Bot([]float64{a})) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDualityOrderReversal: the Section 2.1 property over the whole
// quick-generated input space.
func TestQuickDualityOrderReversal(t *testing.T) {
	f := func(slopeRaw, icptRaw, pxRaw, pyRaw int16) bool {
		h := NewHyperplane([]float64{float64(slopeRaw) / 128}, float64(icptRaw)/64)
		p := Pt2(float64(pxRaw)/64, float64(pyRaw)/64)
		primal := p[1] - h.F(p[:1])
		dh := DualOfHyperplane(h)
		dp := DualOfPoint(p)
		dual := dh[1] - dp.F(dh[:1])
		switch {
		case primal > 1e-9:
			return dual < 1e-9
		case primal < -1e-9:
			return dual > -1e-9
		default:
			return math.Abs(dual) < 1e-6
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickHalfSpaceSlopeFormAgreement: SlopeForm preserves the point set.
func TestQuickHalfSpaceSlopeFormAgreement(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, pxRaw, pyRaw int16, le bool) bool {
		b := float64(bRaw) / 64
		if math.Abs(b) < 1e-3 {
			return true // vertical: no slope form
		}
		op := GE
		if le {
			op = LE
		}
		h := HalfPlane2(float64(aRaw)/64, b, float64(cRaw)/64, op)
		slope, icpt, sop, err := h.SlopeForm()
		if err != nil {
			return false
		}
		h2 := FromSlopeForm(slope, icpt, sop)
		p := Pt2(float64(pxRaw)/32, float64(pyRaw)/32)
		if h.OnBoundary(p) || h2.OnBoundary(p) {
			return true // boundary ties are tolerance-dependent
		}
		return h.Contains(p) == h2.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
