// Package geom provides the computational-geometry substrate used by the
// dual-representation constraint index: points and half-spaces in E^d,
// convex polyhedra in vertex/ray representation, 2-D and small-d vertex
// enumeration from constraint (H-) representation, convex hulls, the
// geometric dual transform of Section 2.1 of the paper, and exact
// piecewise-linear envelopes for the TOP/BOT surfaces of Section 2.1.
//
// All coordinates are float64. Comparisons use a fixed absolute epsilon
// (Eps); workloads in this repository live in windows on the order of
// [-50, 50]^d, for which an absolute tolerance is appropriate.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Eps is the absolute tolerance used by geometric predicates.
const Eps = 1e-9

// Point is a point in E^d, represented by its d coordinates.
type Point []float64

// NewPoint returns a copy of the given coordinates as a Point.
func NewPoint(coords ...float64) Point {
	p := make(Point, len(coords))
	copy(p, coords)
	return p
}

// Dim returns the dimension of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Add returns p + q. The points must have equal dimension.
func (p Point) Add(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns p − q. The points must have equal dimension.
func (p Point) Sub(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Scale returns s·p.
func (p Point) Scale(s float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = s * p[i]
	}
	return r
}

// Dot returns the inner product of p and q.
func (p Point) Dot(q Point) float64 {
	var s float64
	for i := range p {
		s += p[i] * q[i]
	}
	return s
}

// Norm returns the Euclidean norm of p.
func (p Point) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Eq reports whether p and q coincide within Eps in every coordinate.
func (p Point) Eq(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if math.Abs(p[i]-q[i]) > Eps {
			return false
		}
	}
	return true
}

// IsZero reports whether every coordinate of p is within Eps of zero.
func (p Point) IsZero() bool {
	for _, c := range p {
		if math.Abs(c) > Eps {
			return false
		}
	}
	return true
}

// Normalize returns p scaled to unit norm. It returns p unchanged if its
// norm is smaller than Eps.
func (p Point) Normalize() Point {
	n := p.Norm()
	if n < Eps {
		return p.Clone()
	}
	return p.Scale(1 / n)
}

// String renders the point as "(x1, x2, …)".
func (p Point) String() string {
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = fmt.Sprintf("%g", c)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Pt2 is a convenience constructor for 2-D points, the common case in the
// paper's experiments.
func Pt2(x, y float64) Point { return Point{x, y} }

// Cross2 returns the z component of the cross product (b−a) × (c−a) for
// 2-D points: positive when a→b→c turns counter-clockwise.
func Cross2(a, b, c Point) float64 {
	return (b[0]-a[0])*(c[1]-a[1]) - (b[1]-a[1])*(c[0]-a[0])
}
