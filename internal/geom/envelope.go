package geom

import (
	"math"
	"sort"
)

// Line2 is the line value(a) = M·a + B in the (slope, intercept) parameter
// plane — the graph of F_{D(v)} as a function of the query slope a for a
// fixed primal vertex v = (vx, vy): M = −vx, B = vy.
type Line2 struct {
	M, B float64
}

// Eval returns M·a + B.
func (l Line2) Eval(a float64) float64 { return l.M*a + l.B }

// Envelope is the exact piecewise-linear TOP^P or BOT^P surface of a 2-D
// polyhedron as a function of the query slope a (Section 2.1 of the paper).
// An upper envelope (TOP) is convex; a lower envelope (BOT) is concave.
//
// Unbounded polyhedra restrict the finite domain to [DomLo, DomHi]; outside
// it the surface is +Inf (TOP) or −Inf (BOT). An empty finite domain means
// the surface is infinite everywhere.
type Envelope struct {
	Upper          bool      // true: TOP (max of lines), false: BOT (min of lines)
	DomLo, DomHi   float64   // finite domain; DomLo > DomHi ⇒ always infinite
	hull           []Line2   // envelope pieces ordered by increasing M
	bps            []float64 // breakpoints between consecutive hull pieces
	alwaysInfinite bool
	negInf         bool // empty polyhedron: Eval is −Inf (TOP) / +Inf (BOT)
}

// TopEnvelope2 returns the TOP^P surface of a 2-D polyhedron.
func TopEnvelope2(p Polyhedron) Envelope { return envelope2(p, true) }

// BotEnvelope2 returns the BOT^P surface of a 2-D polyhedron.
func BotEnvelope2(p Polyhedron) Envelope { return envelope2(p, false) }

func envelope2(p Polyhedron, upper bool) Envelope {
	e := Envelope{Upper: upper, DomLo: math.Inf(-1), DomHi: math.Inf(1)}
	if p.IsEmpty() {
		e.negInf = true
		return e
	}
	// Rays restrict the finite domain. For TOP (sup of p_y − a·p_x) a ray r
	// makes the surface +Inf where r_y − a·r_x > 0; for BOT, −Inf where
	// r_y − a·r_x < 0.
	for _, r := range p.Rays {
		ry, rx := r[1], r[0]
		if !upper {
			ry, rx = -ry, -rx // BOT(a) = −sup of (−p_y) + a·p_x; reuse the TOP rule on mirrored rays
		}
		switch {
		case rx > Eps:
			// ry − a·rx ≤ 0 ⇔ a ≥ ry/rx.
			e.DomLo = math.Max(e.DomLo, ry/rx)
		case rx < -Eps:
			e.DomHi = math.Min(e.DomHi, ry/rx)
		default:
			if ry > Eps {
				e.alwaysInfinite = true
				return e
			}
		}
	}
	if e.DomLo > e.DomHi+Eps {
		e.alwaysInfinite = true
		return e
	}
	lines := make([]Line2, 0, len(p.Verts))
	for _, v := range p.Verts {
		l := Line2{M: -v[0], B: v[1]}
		if !upper {
			l = Line2{M: v[0], B: -v[1]} // negate so we can build an upper hull and negate back
		}
		lines = append(lines, l)
	}
	e.hull, e.bps = upperHullLines(lines)
	if !upper {
		for i := range e.hull {
			e.hull[i] = Line2{M: -e.hull[i].M, B: -e.hull[i].B}
		}
	}
	return e
}

// upperHullLines computes the upper envelope of the given lines: the subset
// forming max_l l(a), ordered by increasing slope, plus the breakpoints
// where consecutive pieces cross.
func upperHullLines(lines []Line2) ([]Line2, []float64) {
	if len(lines) == 0 {
		return nil, nil
	}
	ls := append([]Line2(nil), lines...)
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].M != ls[j].M { //dualvet:allow floatcmp — sort needs a strict weak order over the raw bits
			return ls[i].M < ls[j].M
		}
		return ls[i].B < ls[j].B
	})
	// Drop dominated near-equal-slope lines (keep max B). Slopes closer than
	// Eps would put the crossing at ΔB/ΔM — a breakpoint of magnitude ≳1e9
	// (or ±Inf/NaN when ΔM underflows) that destabilizes the hull scan and
	// the binary search over bps, while the dropped line differs from the
	// kept one by at most Eps·|a| anywhere in the domain.
	dedup := ls[:0]
	for _, l := range ls {
		if len(dedup) > 0 && l.M-dedup[len(dedup)-1].M <= Eps {
			if l.B > dedup[len(dedup)-1].B {
				dedup[len(dedup)-1] = l
			}
			continue
		}
		dedup = append(dedup, l)
	}
	ls = dedup
	var hull []Line2
	crossX := func(a, b Line2) float64 { return (b.B - a.B) / (a.M - b.M) }
	for _, l := range ls {
		for len(hull) >= 1 {
			top := hull[len(hull)-1]
			if len(hull) == 1 {
				// l dominates top everywhere iff same slope handled above;
				// otherwise keep both.
				break
			}
			// Remove top if l overtakes it before top overtakes hull[-2].
			if crossX(l, top) <= crossX(top, hull[len(hull)-2])+0 {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, l)
	}
	bps := make([]float64, 0, len(hull)-1)
	for i := 0; i+1 < len(hull); i++ {
		bps = append(bps, crossX(hull[i], hull[i+1]))
	}
	return hull, bps
}

// infValue returns the envelope's infinite value: +Inf for TOP, −Inf for BOT.
func (e Envelope) infValue() float64 {
	if e.Upper {
		return math.Inf(1)
	}
	return math.Inf(-1)
}

// Eval returns the surface value at slope a.
func (e Envelope) Eval(a float64) float64 {
	if e.negInf {
		return -e.infValue()
	}
	if e.alwaysInfinite || a < e.DomLo-Eps || a > e.DomHi+Eps {
		return e.infValue()
	}
	return e.evalFinite(a)
}

func (e Envelope) evalFinite(a float64) float64 {
	i := sort.SearchFloat64s(e.bps, a)
	return e.hull[i].Eval(a)
}

// MaxOn returns the exact maximum of the surface over the closed slope
// interval [lo, hi].
func (e Envelope) MaxOn(lo, hi float64) float64 {
	if e.negInf {
		return -e.infValue()
	}
	if e.alwaysInfinite {
		return e.infValue()
	}
	if e.Upper {
		// Interval escapes the finite domain ⇒ +Inf.
		if lo < e.DomLo-Eps || hi > e.DomHi+Eps {
			return math.Inf(1)
		}
		// Convex: max at the endpoints.
		return math.Max(e.evalFinite(lo), e.evalFinite(hi))
	}
	// Concave (BOT): clamp to the finite domain (outside it BOT = −Inf, which
	// never wins a max), then check endpoints and interior breakpoints.
	cl, ch := math.Max(lo, e.DomLo), math.Min(hi, e.DomHi)
	if cl > ch {
		return math.Inf(-1)
	}
	best := math.Max(e.evalFinite(cl), e.evalFinite(ch))
	for _, b := range e.bps {
		if b > cl && b < ch {
			best = math.Max(best, e.evalFinite(b))
		}
	}
	return best
}

// MinOn returns the exact minimum of the surface over the closed slope
// interval [lo, hi].
func (e Envelope) MinOn(lo, hi float64) float64 {
	if e.negInf {
		return -e.infValue()
	}
	if e.alwaysInfinite {
		return e.infValue()
	}
	if !e.Upper {
		// Concave: interval escaping the finite domain ⇒ −Inf.
		if lo < e.DomLo-Eps || hi > e.DomHi+Eps {
			return math.Inf(-1)
		}
		return math.Min(e.evalFinite(lo), e.evalFinite(hi))
	}
	// Convex (TOP): clamp to the finite domain, then endpoints + breakpoints.
	cl, ch := math.Max(lo, e.DomLo), math.Min(hi, e.DomHi)
	if cl > ch {
		return math.Inf(1)
	}
	best := math.Min(e.evalFinite(cl), e.evalFinite(ch))
	for _, b := range e.bps {
		if b > cl && b < ch {
			best = math.Min(best, e.evalFinite(b))
		}
	}
	return best
}
