package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestEnvelopeMatchesTop(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		p := randomBoundedPoly(rng)
		if p.IsEmpty() {
			continue
		}
		top := TopEnvelope2(p)
		bot := BotEnvelope2(p)
		for j := 0; j < 25; j++ {
			a := rng.NormFloat64() * 4
			if gt, ge := p.Top([]float64{a}), top.Eval(a); math.Abs(gt-ge) > 1e-6 {
				t.Fatalf("TOP envelope mismatch at a=%v: %v vs %v", a, gt, ge)
			}
			if gb, ge := p.Bot([]float64{a}), bot.Eval(a); math.Abs(gb-ge) > 1e-6 {
				t.Fatalf("BOT envelope mismatch at a=%v: %v vs %v", a, gb, ge)
			}
		}
	}
}

func TestEnvelopeExtremesAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		p := randomBoundedPoly(rng)
		if p.IsEmpty() {
			continue
		}
		for _, e := range []Envelope{TopEnvelope2(p), BotEnvelope2(p)} {
			lo := rng.NormFloat64() * 2
			hi := lo + rng.Float64()*4
			gotMax, gotMin := e.MaxOn(lo, hi), e.MinOn(lo, hi)
			// Dense sampling lower-bounds the max and upper-bounds the min.
			sampleMax, sampleMin := math.Inf(-1), math.Inf(1)
			for k := 0; k <= 400; k++ {
				a := lo + (hi-lo)*float64(k)/400
				v := e.Eval(a)
				sampleMax = math.Max(sampleMax, v)
				sampleMin = math.Min(sampleMin, v)
			}
			if gotMax < sampleMax-1e-6 {
				t.Fatalf("MaxOn(%v,%v)=%v < sampled %v", lo, hi, gotMax, sampleMax)
			}
			if gotMin > sampleMin+1e-6 {
				t.Fatalf("MinOn(%v,%v)=%v > sampled %v", lo, hi, gotMin, sampleMin)
			}
			// And the exact extremes cannot beat sampling by much more than
			// the sampling resolution allows (pieces are lines, so the error
			// is bounded by slopeRange·step; use a generous bound).
			if gotMax > sampleMax+1+0.3*math.Abs(gotMax) {
				t.Fatalf("MaxOn suspiciously above samples: %v vs %v", gotMax, sampleMax)
			}
			if gotMin < sampleMin-1-0.3*math.Abs(gotMin) {
				t.Fatalf("MinOn suspiciously below samples: %v vs %v", gotMin, sampleMin)
			}
		}
	}
}

func TestEnvelopeUnboundedDomain(t *testing.T) {
	// Quadrant x ≥ 0, y ≥ 0: TOP ≡ +Inf for every slope (can always go up…
	// no: going up is ray (0,1), so yes +Inf everywhere).
	p, _ := FromHalfSpaces([]HalfSpace{HalfPlane2(1, 0, 0, GE), HalfPlane2(0, 1, 0, GE)}, 2)
	top := TopEnvelope2(p)
	for _, a := range []float64{-3, 0, 5} {
		if !math.IsInf(top.Eval(a), 1) {
			t.Errorf("TOP(%v) of quadrant must be +Inf", a)
		}
	}
	// BOT of the quadrant: inf(y − a·x). For a > 0 the ray (1,0) drives it
	// to −Inf; for a ≤ 0 the inf is 0 at the origin.
	bot := BotEnvelope2(p)
	if !math.IsInf(bot.Eval(1), -1) {
		t.Error("BOT(1) of quadrant must be −Inf")
	}
	if v := bot.Eval(-1); math.Abs(v) > 1e-9 {
		t.Errorf("BOT(−1) of quadrant = %v, want 0", v)
	}
	if v := bot.Eval(0); math.Abs(v) > 1e-9 {
		t.Errorf("BOT(0) of quadrant = %v, want 0", v)
	}
}

func TestEnvelopeEmptyPolyhedron(t *testing.T) {
	e := TopEnvelope2(EmptyPolyhedron(2))
	if !math.IsInf(e.Eval(0), -1) {
		t.Error("TOP of empty polyhedron is −Inf")
	}
	b := BotEnvelope2(EmptyPolyhedron(2))
	if !math.IsInf(b.Eval(0), 1) {
		t.Error("BOT of empty polyhedron is +Inf")
	}
}

func TestEnvelopeMaxOnEscapesDomain(t *testing.T) {
	// Half-plane y ≥ 0: BOT finite only at a = 0.
	p, _ := FromHalfSpaces([]HalfSpace{HalfPlane2(0, 1, 0, GE)}, 2)
	bot := BotEnvelope2(p)
	if !math.IsInf(bot.MinOn(-1, 1), -1) {
		t.Error("BOT min over an interval escaping the domain must be −Inf")
	}
	if v := bot.MaxOn(-1, 1); math.Abs(v) > 1e-9 {
		t.Errorf("BOT max over [−1,1] = %v, want 0 (attained at a=0)", v)
	}
}

func TestUpperHullLines(t *testing.T) {
	lines := []Line2{{M: 0, B: 0}, {M: 1, B: -2}, {M: -1, B: -2}, {M: 0, B: -10}}
	hull, bps := upperHullLines(lines)
	if len(hull) != 3 {
		t.Fatalf("hull = %v", hull)
	}
	if len(bps) != 2 || math.Abs(bps[0]-(-2)) > Eps || math.Abs(bps[1]-2) > Eps {
		t.Fatalf("breakpoints = %v", bps)
	}
	// The dominated line M=0,B=−10 must not appear.
	for _, l := range hull {
		if l.B == -10 {
			t.Error("dominated line kept on hull")
		}
	}
}

func TestUpperHullLinesNearEqualSlopes(t *testing.T) {
	// Slopes closer than Eps must be merged: keeping both would place their
	// crossing at ΔB/ΔM, a breakpoint of magnitude ≳1e9 (±Inf once ΔM
	// underflows) that corrupts the hull scan and the breakpoint search.
	lines := []Line2{{M: 0, B: 0}, {M: 5e-310, B: 1}, {M: 1, B: 0}}
	hull, bps := upperHullLines(lines)
	if len(hull) != 2 {
		t.Fatalf("hull = %v, want the near-duplicate slopes merged", hull)
	}
	if hull[0].B != 1 {
		t.Errorf("hull[0] = %v, want the dominating B=1 line kept", hull[0])
	}
	for _, b := range bps {
		if math.IsInf(b, 0) || math.IsNaN(b) || math.Abs(b) > 1e6 {
			t.Errorf("unstable breakpoint %v from near-equal slopes", b)
		}
	}
	// The merged envelope still upper-bounds every input line on a normal
	// domain, within the tolerance the merge can introduce.
	e := Envelope{Upper: true, DomLo: -10, DomHi: 10, hull: hull, bps: bps}
	for _, a := range []float64{-3, -1, 0, 0.5, 1, 3} {
		got := e.evalFinite(a)
		for _, l := range lines {
			if want := l.M*a + l.B; got < want-1e-6 {
				t.Errorf("Eval(%v) = %v below input line value %v", a, got, want)
			}
		}
	}
}

func TestEnvelopeSingleVertex(t *testing.T) {
	p, err := FromVertices([]Point{{2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	top := TopEnvelope2(p)
	// TOP(a) = 3 − 2a for the single point (2,3).
	for _, a := range []float64{-1, 0, 2.5} {
		if v := top.Eval(a); math.Abs(v-(3-2*a)) > 1e-9 {
			t.Errorf("TOP(%v) = %v, want %v", a, v, 3-2*a)
		}
	}
}
