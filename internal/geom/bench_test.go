package geom

import (
	"math/rand"
	"testing"
)

func benchPolys(n int) []Polyhedron {
	rng := rand.New(rand.NewSource(1))
	out := make([]Polyhedron, n)
	for i := range out {
		out[i] = randomBoundedPoly(rng)
	}
	return out
}

func BenchmarkFromHalfSpaces2D(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = randomBoundedPoly(rng)
	}
}

func BenchmarkFromHalfSpaces3D(b *testing.B) {
	hs := []HalfSpace{
		NewHalfSpace([]float64{1, 0, 0}, 0, GE),
		NewHalfSpace([]float64{0, 1, 0}, 0, GE),
		NewHalfSpace([]float64{0, 0, 1}, 0, GE),
		NewHalfSpace([]float64{1, 1, 1}, -1, LE),
		NewHalfSpace([]float64{1, 2, 0.5}, -2, LE),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromHalfSpaces(hs, 3); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink float64

func BenchmarkSupport(b *testing.B) {
	polys := benchPolys(64)
	c := Pt2(0.3, -0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = polys[i%len(polys)].Support(c)
	}
}

func BenchmarkTopEnvelopeBuild(b *testing.B) {
	polys := benchPolys(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopEnvelope2(polys[i%len(polys)])
	}
}

func BenchmarkEnvelopeEval(b *testing.B) {
	polys := benchPolys(64)
	envs := make([]Envelope, len(polys))
	for i, p := range polys {
		envs[i] = TopEnvelope2(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = envs[i%len(envs)].Eval(float64(i%7) - 3)
	}
}

func BenchmarkEnvelopeMinOn(b *testing.B) {
	polys := benchPolys(64)
	envs := make([]Envelope, len(polys))
	for i, p := range polys {
		envs[i] = TopEnvelope2(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = envs[i%len(envs)].MinOn(-1, 2)
	}
}

func BenchmarkConvexHull2(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Pt2(rng.NormFloat64()*20, rng.NormFloat64()*20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ConvexHull2(pts)
	}
}

func BenchmarkSolveLinear3(b *testing.B) {
	a := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	rhs := []float64{8, -11, -3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := SolveLinear(a, rhs); !ok {
			b.Fatal("singular")
		}
	}
}
