package geom

import "fmt"

// This file implements the explicit dual transformation of Section 2.1 of
// the paper: non-vertical hyperplanes map to points and points map to
// hyperplanes, with the key order-reversing property
//
//	p lies above H  ⇔  D(H) lies below D(p).

// Hyperplane is a non-vertical hyperplane in slope-intercept form
// x_d = b1·x1 + … + b_{d−1}·x_{d−1} + b_d.
type Hyperplane struct {
	Slope     []float64 // b1..b_{d−1}
	Intercept float64   // b_d
}

// NewHyperplane builds a hyperplane from its slope vector and intercept,
// copying the slice.
func NewHyperplane(slope []float64, intercept float64) Hyperplane {
	return Hyperplane{Slope: append([]float64(nil), slope...), Intercept: intercept}
}

// HyperplaneFromGeneral converts a1·x1 + … + ad·xd + c = 0 (non-vertical)
// into slope-intercept form: b_i = −a_i/a_d, b_d = −c/a_d.
//
// Note: the paper's Section 2.1 states b_d = c/a_d, but its own Example 2.1
// and Proposition 2.2 require the line y = b1·x + b_d to be the hyperplane
// itself, which forces b_d = −c/a_d; we follow the self-consistent reading.
func HyperplaneFromGeneral(a []float64, c float64) (Hyperplane, error) {
	d := len(a)
	ad := a[d-1]
	if ad == 0 {
		return Hyperplane{}, fmt.Errorf("geom: hyperplane with a_d = 0 is vertical")
	}
	slope := make([]float64, d-1)
	for i := 0; i < d-1; i++ {
		slope[i] = -a[i] / ad
	}
	return Hyperplane{Slope: slope, Intercept: -c / ad}, nil
}

// Dim returns the dimension of the ambient space of the hyperplane.
func (h Hyperplane) Dim() int { return len(h.Slope) + 1 }

// F evaluates the paper's F_H(x1..x_{d−1}) = b1·x1 + … + b_{d−1}·x_{d−1} + b_d,
// the height of the hyperplane over the projection point.
func (h Hyperplane) F(x []float64) float64 {
	s := h.Intercept
	for i, b := range h.Slope {
		s += b * x[i]
	}
	return s
}

// DualOfHyperplane maps hyperplane x_d = b1·x1 + … + b_d to the dual point
// (b1, …, b_d) ∈ E^d.
func DualOfHyperplane(h Hyperplane) Point {
	p := make(Point, len(h.Slope)+1)
	copy(p, h.Slope)
	p[len(h.Slope)] = h.Intercept
	return p
}

// DualOfPoint maps point p = (p1, …, pd) to the dual hyperplane
// x_d = −p1·x1 − … − p_{d−1}·x_{d−1} + p_d.
func DualOfPoint(p Point) Hyperplane {
	slope := make([]float64, len(p)-1)
	for i := 0; i < len(p)-1; i++ {
		slope[i] = -p[i]
	}
	return Hyperplane{Slope: slope, Intercept: p[len(p)-1]}
}

// Side classifies a point against a hyperplane: +1 above, 0 on (within
// Eps), −1 below, comparing p_d with F_H(p1..p_{d−1}).
func (h Hyperplane) Side(p Point) int {
	v := p[len(p)-1] - h.F(p[:len(p)-1])
	switch {
	case v > Eps:
		return 1
	case v < -Eps:
		return -1
	default:
		return 0
	}
}

// FDual evaluates F_{D(v)} at a slope vector b for a primal point v:
// F_{D(v)}(b) = −v1·b1 − … − v_{d−1}·b_{d−1} + v_d. For a polyhedron P,
// TOP^P(b) = max over vertices v of FDual(v, b) (Section 2.1), which is
// exactly what Polyhedron.Top computes via the support function.
func FDual(v Point, b []float64) float64 {
	s := v[len(v)-1]
	for i := 0; i < len(v)-1; i++ {
		s -= v[i] * b[i]
	}
	return s
}
