package geom

import "math"

// NullSpaceBasis returns an orthonormal-ish basis (unit vectors, not
// necessarily mutually orthogonal) of the null space of the rows×n matrix a.
// An empty result means the matrix has full column rank.
//
// It is used to enumerate candidate generator directions for recession
// cones: directions lying on the boundaries of a subset of constraints form
// the null space of that subset's normal vectors.
func NullSpaceBasis(a [][]float64, n int) [][]float64 {
	rows := len(a)
	if rows == 0 {
		// Null space is all of E^n: the standard basis.
		basis := make([][]float64, n)
		for i := range basis {
			v := make([]float64, n)
			v[i] = 1
			basis[i] = v
		}
		return basis
	}
	// Row-reduce a copy, tracking pivot columns.
	m := make([][]float64, rows)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
	}
	pivotCol := make([]int, 0, rows)
	r := 0
	for c := 0; c < n && r < rows; c++ {
		pivot := -1
		best := Eps
		for i := r; i < rows; i++ {
			if math.Abs(m[i][c]) > best {
				best = math.Abs(m[i][c])
				pivot = i
			}
		}
		if pivot < 0 {
			continue
		}
		m[r], m[pivot] = m[pivot], m[r]
		inv := 1 / m[r][c]
		for i := 0; i < rows; i++ {
			if i == r {
				continue
			}
			f := m[i][c] * inv
			if f == 0 {
				continue
			}
			for j := c; j < n; j++ {
				m[i][j] -= f * m[r][j]
			}
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	isPivot := make([]bool, n)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	pivotRow := make(map[int]int, len(pivotCol))
	for i, c := range pivotCol {
		pivotRow[c] = i
	}
	var basis [][]float64
	for free := 0; free < n; free++ {
		if isPivot[free] {
			continue
		}
		x := make([]float64, n)
		x[free] = 1
		for c, i := range pivotRow {
			x[c] = -m[i][free] / m[i][c]
		}
		var norm float64
		for _, v := range x {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm <= Eps {
			continue
		}
		for i := range x {
			x[i] /= norm
		}
		basis = append(basis, x)
	}
	return basis
}
