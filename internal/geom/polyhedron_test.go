package geom

import (
	"math"
	"math/rand"
	"testing"
)

// triangleHS is the triangle with vertices (0,0), (4,0), (0,4).
func triangleHS() []HalfSpace {
	return []HalfSpace{
		HalfPlane2(0, 1, 0, GE),  // y ≥ 0
		HalfPlane2(1, 0, 0, GE),  // x ≥ 0
		HalfPlane2(1, 1, -4, LE), // x + y ≤ 4
	}
}

func TestFromHalfSpacesTriangle(t *testing.T) {
	p, err := FromHalfSpaces(triangleHS(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsEmpty() || !p.IsBounded() {
		t.Fatalf("triangle misclassified: %v", p)
	}
	if len(p.Verts) != 3 {
		t.Fatalf("want 3 vertices, got %v", p.Verts)
	}
	want := []Point{{0, 0}, {4, 0}, {0, 4}}
	for _, w := range want {
		found := false
		for _, v := range p.Verts {
			if v.Eq(w) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing vertex %v", w)
		}
	}
	if a := p.Area2(); math.Abs(a-8) > 1e-6 {
		t.Errorf("area = %v, want 8", a)
	}
}

func TestFromHalfSpacesEmpty(t *testing.T) {
	hs := []HalfSpace{
		HalfPlane2(0, 1, 0, GE), // y ≥ 0
		HalfPlane2(0, 1, 1, LE), // y ≤ −1
	}
	p, err := FromHalfSpaces(hs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsEmpty() {
		t.Fatalf("contradictory constraints must yield empty, got %v", p)
	}
	if ok, _ := p.Contains(Pt2(0, 0)); ok {
		t.Error("empty polyhedron contains nothing")
	}
}

func TestFromHalfSpacesTriviallyUnsatisfiable(t *testing.T) {
	p, err := FromHalfSpaces([]HalfSpace{HalfPlane2(0, 0, 1, LE)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsEmpty() {
		t.Error("1 ≤ 0 must yield the empty polyhedron")
	}
}

func TestFromHalfSpacesQuadrant(t *testing.T) {
	hs := []HalfSpace{
		HalfPlane2(1, 0, 0, GE), // x ≥ 0
		HalfPlane2(0, 1, 0, GE), // y ≥ 0
	}
	p, err := FromHalfSpaces(hs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsEmpty() || p.IsBounded() {
		t.Fatalf("quadrant misclassified: %v", p)
	}
	if len(p.Verts) != 1 || !p.Verts[0].Eq(Point{0, 0}) {
		t.Fatalf("quadrant vertex: %v", p.Verts)
	}
	// Rays must generate the first quadrant: (1,0) and (0,1) in cone.
	for _, want := range []Point{{1, 0}, {0, 1}} {
		found := false
		for _, r := range p.Rays {
			if r.Eq(want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing ray %v in %v", want, p.Rays)
		}
	}
	if !math.IsInf(p.Area2(), 1) {
		t.Error("unbounded polyhedron must have infinite area")
	}
}

func TestFromHalfSpacesSlab(t *testing.T) {
	// 0 ≤ y ≤ 1: a horizontal slab, non-pointed (contains horizontal lines).
	hs := []HalfSpace{
		HalfPlane2(0, 1, 0, GE),
		HalfPlane2(0, 1, -1, LE),
	}
	p, err := FromHalfSpaces(hs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsEmpty() || p.IsBounded() {
		t.Fatalf("slab misclassified: %v", p)
	}
	// Support in +x and −x directions must be infinite; +y support is
	// bounded by the slab: sup y over slab points = 1 from the generators.
	if !math.IsInf(p.Support(Pt2(1, 0)), 1) || !math.IsInf(p.Support(Pt2(-1, 0)), 1) {
		t.Error("slab must be unbounded horizontally")
	}
	s := p.Support(Pt2(0, 1))
	if math.Abs(s-1) > 1e-6 {
		t.Errorf("slab sup y = %v, want 1", s)
	}
}

func TestFromHalfSpacesHalfPlaneOnly(t *testing.T) {
	// Single constraint y ≥ 2: half-plane, non-pointed.
	p, err := FromHalfSpaces([]HalfSpace{HalfPlane2(0, 1, -2, GE)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsEmpty() || p.IsBounded() {
		t.Fatalf("half-plane misclassified: %v", p)
	}
	if !math.IsInf(p.Support(Pt2(1, 0)), 1) {
		t.Error("half-plane unbounded in +x")
	}
	if !math.IsInf(p.Support(Pt2(0, 1)), 1) {
		t.Error("half-plane unbounded in +y")
	}
	s := p.Support(Pt2(0, -1)) // sup(−y) = −inf y = −2
	if math.Abs(s-(-2)) > 1e-6 {
		t.Errorf("sup(−y) = %v, want −2", s)
	}
}

func TestFromHalfSpacesNoConstraints(t *testing.T) {
	p, err := FromHalfSpaces(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsEmpty() || p.IsBounded() {
		t.Fatalf("whole plane misclassified: %v", p)
	}
	for _, c := range []Point{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}} {
		if !math.IsInf(p.Support(c), 1) {
			t.Errorf("whole plane support in %v must be +Inf", c)
		}
	}
}

// TestSupportDominatesSamples checks the fundamental support-function
// property against uniformly sampled feasible points.
func TestSupportDominatesSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := randomBoundedPoly(rng)
		if p.IsEmpty() {
			continue
		}
		for j := 0; j < 10; j++ {
			c := Pt2(rng.NormFloat64(), rng.NormFloat64())
			sup := p.Support(c)
			// Every convex combination of vertices is in P.
			w := rng.Float64()
			a := p.Verts[rng.Intn(len(p.Verts))]
			b := p.Verts[rng.Intn(len(p.Verts))]
			pt := a.Scale(w).Add(b.Scale(1 - w))
			if c.Dot(pt) > sup+1e-6 {
				t.Fatalf("support violated: c=%v pt=%v sup=%v", c, pt, sup)
			}
		}
	}
}

// randomBoundedPoly builds a random bounded polygon from tangent half-planes
// of a random circle, mirroring the paper's 3–6-constraint tuples.
func randomBoundedPoly(rng *rand.Rand) Polyhedron {
	cx, cy := rng.Float64()*100-50, rng.Float64()*100-50
	r := rng.Float64()*10 + 0.5
	m := 3 + rng.Intn(4)
	hs := make([]HalfSpace, 0, m)
	for i := 0; i < m; i++ {
		// Keep normal-direction gaps below π so the polygon stays bounded.
		ang := (float64(i) + rng.Float64()*0.3 + 0.35) * 2 * math.Pi / float64(m)
		nx, ny := math.Cos(ang), math.Sin(ang)
		// nx·x + ny·y ≤ nx·cx + ny·cy + r
		hs = append(hs, HalfSpace{A: []float64{nx, ny}, C: -(nx*cx + ny*cy + r), Op: LE})
	}
	p, err := FromHalfSpaces(hs, 2)
	if err != nil {
		panic(err)
	}
	return p
}

func TestTopBotAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		p := randomBoundedPoly(rng)
		if p.IsEmpty() || len(p.Verts) == 0 {
			continue
		}
		a := rng.NormFloat64() * 3
		top := p.Top([]float64{a})
		bot := p.Bot([]float64{a})
		// Brute force over vertices: F_{D(v)}(a) = v_y − a·v_x.
		bfTop, bfBot := math.Inf(-1), math.Inf(1)
		for _, v := range p.Verts {
			f := FDual(v, []float64{a})
			bfTop = math.Max(bfTop, f)
			bfBot = math.Min(bfBot, f)
		}
		if math.Abs(top-bfTop) > 1e-6 || math.Abs(bot-bfBot) > 1e-6 {
			t.Fatalf("Top/Bot mismatch: %v/%v vs %v/%v", top, bot, bfTop, bfBot)
		}
		if bot > top+Eps {
			t.Fatalf("Proposition 2.1 violated: BOT %v > TOP %v", bot, top)
		}
	}
}

func TestTopBotUnbounded(t *testing.T) {
	// Upper half-plane y ≥ 0: TOP = +Inf at every slope, BOT(a) is finite
	// only at a = 0 where BOT(0) = 0.
	p, err := FromHalfSpaces([]HalfSpace{HalfPlane2(0, 1, 0, GE)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Top([]float64{0}), 1) || !math.IsInf(p.Top([]float64{2}), 1) {
		t.Error("TOP of upper half-plane must be +Inf")
	}
	if b := p.Bot([]float64{0}); math.Abs(b) > 1e-6 {
		t.Errorf("BOT(0) = %v, want 0", b)
	}
	if !math.IsInf(p.Bot([]float64{1}), -1) {
		t.Error("BOT(1) of upper half-plane must be −Inf")
	}
}

func TestMBR(t *testing.T) {
	p, _ := FromHalfSpaces(triangleHS(), 2)
	lo, hi, err := p.MBR()
	if err != nil {
		t.Fatal(err)
	}
	if !lo.Eq(Point{0, 0}) || !hi.Eq(Point{4, 4}) {
		t.Errorf("MBR = %v..%v", lo, hi)
	}

	q, _ := FromHalfSpaces([]HalfSpace{HalfPlane2(1, 0, 0, GE), HalfPlane2(0, 1, 0, GE)}, 2)
	lo, hi, err = q.MBR()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(hi[0], 1) || !math.IsInf(hi[1], 1) {
		t.Errorf("quadrant MBR hi = %v", hi)
	}
	if lo[0] != 0 || lo[1] != 0 {
		t.Errorf("quadrant MBR lo = %v", lo)
	}

	if _, _, err := EmptyPolyhedron(2).MBR(); err == nil {
		t.Error("MBR of empty polyhedron must error")
	}
}

func TestContainsRequiresHRep(t *testing.T) {
	p, err := FromVertices([]Point{{0, 0}, {1, 0}}, []Point{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Contains(Pt2(0, 0)); err != ErrNoHRep {
		t.Errorf("want ErrNoHRep, got %v", err)
	}
}

func TestFromVerticesBounded2D(t *testing.T) {
	p, err := FromVertices([]Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Verts) != 4 {
		t.Fatalf("interior point not pruned: %v", p.Verts)
	}
	for _, pt := range []Point{{1, 1}, {0, 0}, {2, 2}} {
		ok, err := p.Contains(pt)
		if err != nil || !ok {
			t.Errorf("Contains(%v) = %v, %v", pt, ok, err)
		}
	}
	if ok, _ := p.Contains(Pt2(3, 1)); ok {
		t.Error("(3,1) outside the square")
	}
}

func TestFromHalfSpaces3DSimplex(t *testing.T) {
	hs := []HalfSpace{
		NewHalfSpace([]float64{1, 0, 0}, 0, GE),
		NewHalfSpace([]float64{0, 1, 0}, 0, GE),
		NewHalfSpace([]float64{0, 0, 1}, 0, GE),
		NewHalfSpace([]float64{1, 1, 1}, -1, LE),
	}
	p, err := FromHalfSpaces(hs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsBounded() || len(p.Verts) != 4 {
		t.Fatalf("3-simplex: %v", p)
	}
	// TOP at slope (0,0) = max z = 1; BOT = min z = 0.
	if v := p.Top([]float64{0, 0}); math.Abs(v-1) > 1e-9 {
		t.Errorf("Top = %v", v)
	}
	if v := p.Bot([]float64{0, 0}); math.Abs(v) > 1e-9 {
		t.Errorf("Bot = %v", v)
	}
}

func TestFromHalfSpaces3DHalfSpaceCone(t *testing.T) {
	// Single non-axis-aligned half-space: x + y + z ≤ 0. Its recession cone
	// is itself; generators must span it so that Support is +Inf for any c
	// not proportional to +(1,1,1).
	p, err := FromHalfSpaces([]HalfSpace{NewHalfSpace([]float64{1, 1, 1}, 0, LE)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Point{{1, -1, 0}, {0, 1, -1}, {-1, 0, 0}, {1, 0, -1}} {
		if !math.IsInf(p.Support(c), 1) {
			t.Errorf("Support(%v) must be +Inf, got %v", c, p.Support(c))
		}
	}
	// In the normal direction the support is 0 (boundary through origin).
	if s := p.Support(Point{1, 1, 1}.Normalize()); math.Abs(s) > 1e-6 {
		t.Errorf("Support(normal) = %v, want 0", s)
	}
}

func TestCentroidInside(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		p := randomBoundedPoly(rng)
		if p.IsEmpty() {
			continue
		}
		c := p.Centroid()
		ok, err := p.Contains(c)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("centroid %v outside %v", c, p.Verts)
		}
	}
}

func TestSolveLinearKnown(t *testing.T) {
	x, ok := SolveLinear([][]float64{{2, 0}, {0, 4}}, []float64{6, 8})
	if !ok || math.Abs(x[0]-3) > Eps || math.Abs(x[1]-2) > Eps {
		t.Fatalf("solve = %v, %v", x, ok)
	}
	if _, ok := SolveLinear([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); ok {
		t.Error("singular system must be rejected")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(3)
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
		}
		for i := range a {
			for j := range a[i] {
				b[i] += a[i][j] * x[j]
			}
		}
		got, ok := SolveLinear(a, b)
		if !ok {
			continue // nearly singular random matrix; fine to skip
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-5*(1+math.Abs(x[i])) {
				t.Fatalf("trial %d: got %v want %v", trial, got, x)
			}
		}
	}
}

func TestNullSpace1(t *testing.T) {
	v, ok := NullSpace1([][]float64{{1, 1}})
	if !ok {
		t.Fatal("null space of (1,1) in E² must exist")
	}
	if math.Abs(v[0]+v[1]) > 1e-9 {
		t.Fatalf("(%v) not orthogonal to (1,1)", v)
	}
}
