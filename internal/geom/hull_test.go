package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHull2Square(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.5, 0}}
	hull := ConvexHull2(pts)
	if len(hull) != 4 {
		t.Fatalf("hull = %v", hull)
	}
	// CCW orientation: positive area via shoelace.
	var s float64
	for i := range hull {
		j := (i + 1) % len(hull)
		s += hull[i][0]*hull[j][1] - hull[j][0]*hull[i][1]
	}
	if s <= 0 {
		t.Fatalf("hull not CCW: %v", hull)
	}
}

func TestConvexHull2Degenerate(t *testing.T) {
	if h := ConvexHull2(nil); h != nil {
		t.Errorf("hull of nothing = %v", h)
	}
	if h := ConvexHull2([]Point{{1, 2}}); len(h) != 1 {
		t.Errorf("hull of point = %v", h)
	}
	if h := ConvexHull2([]Point{{1, 2}, {1, 2}, {1, 2}}); len(h) != 1 {
		t.Errorf("hull of repeated point = %v", h)
	}
	h := ConvexHull2([]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(h) != 2 || !h[0].Eq(Point{0, 0}) || !h[1].Eq(Point{3, 3}) {
		t.Errorf("hull of collinear points = %v", h)
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt2(rng.NormFloat64()*20, rng.NormFloat64()*20)
		}
		hull := ConvexHull2(pts)
		if len(hull) < 3 {
			continue
		}
		poly, err := FromVertices(hull, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			ok, err := poly.Contains(p)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("point %v outside its own hull %v", p, hull)
			}
		}
	}
}

func TestPolygonArea2(t *testing.T) {
	sq := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if a := PolygonArea2(sq); math.Abs(a-4) > Eps {
		t.Errorf("area = %v", a)
	}
	// Orientation must not matter.
	rev := []Point{{0, 2}, {2, 2}, {2, 0}, {0, 0}}
	if a := PolygonArea2(rev); math.Abs(a-4) > Eps {
		t.Errorf("area (CW) = %v", a)
	}
	if a := PolygonArea2(sq[:2]); a != 0 {
		t.Errorf("degenerate area = %v", a)
	}
}

func TestCentroid2(t *testing.T) {
	sq := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	c := Centroid2(sq)
	if !c.Eq(Point{1, 1}) {
		t.Errorf("centroid = %v", c)
	}
	if c := Centroid2([]Point{{1, 1}, {3, 3}}); !c.Eq(Point{2, 2}) {
		t.Errorf("segment centroid = %v", c)
	}
	if Centroid2(nil) != nil {
		t.Error("centroid of nothing must be nil")
	}
}
