package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHalfSpaceContains(t *testing.T) {
	h := HalfPlane2(1, 1, -2, LE) // x + y ≤ 2
	if !h.Contains(Pt2(0, 0)) {
		t.Error("(0,0) should satisfy x+y ≤ 2")
	}
	if !h.Contains(Pt2(1, 1)) {
		t.Error("boundary point should satisfy closed constraint")
	}
	if h.Contains(Pt2(2, 2)) {
		t.Error("(2,2) should violate x+y ≤ 2")
	}
	if !h.Negated().Contains(Pt2(2, 2)) {
		t.Error("negation should contain (2,2)")
	}
}

func TestHalfSpaceContainsStrictAndBoundary(t *testing.T) {
	h := HalfPlane2(0, 1, 0, GE) // y ≥ 0
	if !h.OnBoundary(Pt2(5, 0)) {
		t.Error("(5,0) is on the boundary")
	}
	if h.ContainsStrict(Pt2(5, 0)) {
		t.Error("boundary point is not strictly inside")
	}
	if !h.ContainsStrict(Pt2(0, 1)) {
		t.Error("(0,1) is strictly inside y ≥ 0")
	}
}

func TestOpNegate(t *testing.T) {
	if LE.Negate() != GE || GE.Negate() != LE {
		t.Fatal("Negate must swap LE and GE")
	}
	if LE.String() != "<=" || GE.String() != ">=" {
		t.Fatal("operator rendering")
	}
}

func TestAllowsDirection(t *testing.T) {
	h := HalfPlane2(0, 1, -3, GE) // y ≥ 3: recession cone is y ≥ 0
	if !h.AllowsDirection(Pt2(1, 0)) || !h.AllowsDirection(Pt2(0, 1)) {
		t.Error("horizontal and upward directions must be allowed")
	}
	if h.AllowsDirection(Pt2(0, -1)) {
		t.Error("downward direction must be rejected")
	}
}

func TestIsVerticalAndTrivial(t *testing.T) {
	if !HalfPlane2(1, 0, 0, LE).IsVertical() {
		t.Error("x ≤ 0 is vertical (a2 = 0)")
	}
	if HalfPlane2(1, 1, 0, LE).IsVertical() {
		t.Error("x + y ≤ 0 is not vertical")
	}
	triv := HalfPlane2(0, 0, -1, LE) // −1 ≤ 0: vacuous
	if !triv.IsTrivial() || !triv.TrivialSatisfiable() {
		t.Error("−1 ≤ 0 is trivially satisfiable")
	}
	bad := HalfPlane2(0, 0, 1, LE) // 1 ≤ 0: unsatisfiable
	if !bad.IsTrivial() || bad.TrivialSatisfiable() {
		t.Error("1 ≤ 0 is trivially unsatisfiable")
	}
}

func TestSlopeFormRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		c := rng.NormFloat64()
		if math.Abs(b) < 1e-3 {
			continue
		}
		op := LE
		if rng.Intn(2) == 0 {
			op = GE
		}
		h := HalfPlane2(a, b, c, op)
		slope, icpt, sop, err := h.SlopeForm()
		if err != nil {
			t.Fatalf("SlopeForm(%v): %v", h, err)
		}
		h2 := FromSlopeForm(slope, icpt, sop)
		// The two half-planes must contain the same random points.
		for j := 0; j < 20; j++ {
			p := Pt2(rng.NormFloat64()*10, rng.NormFloat64()*10)
			if h.ContainsStrict(p) != h2.ContainsStrict(p) && !h.OnBoundary(p) && !h2.OnBoundary(p) {
				t.Fatalf("round trip disagrees at %v: %v vs %v", p, h, h2)
			}
		}
	}
}

func TestSlopeFormVerticalError(t *testing.T) {
	if _, _, _, err := HalfPlane2(1, 0, 0, LE).SlopeForm(); err == nil {
		t.Fatal("vertical half-plane must not have a slope form")
	}
}

func TestFromSlopeForm(t *testing.T) {
	// y ≥ 2x + 1 contains (0, 2) and not (0, 0).
	h := FromSlopeForm([]float64{2}, 1, GE)
	if !h.Contains(Pt2(0, 2)) {
		t.Error("(0,2) satisfies y ≥ 2x+1")
	}
	if h.Contains(Pt2(0, 0)) {
		t.Error("(0,0) violates y ≥ 2x+1")
	}
}

func TestEvalLinearity(t *testing.T) {
	f := func(a, b, c, x, y float64) bool {
		if anyBad(a, b, c, x, y) {
			return true
		}
		h := HalfPlane2(a, b, c, LE)
		want := a*x + b*y + c
		return h.Eval(Pt2(x, y)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
