package geom

import (
	"fmt"
	"math"
	"strings"
)

// Op is a comparison operator of a linear constraint. The paper (Section 2)
// normalizes every generalized tuple to conjunctions with θ ∈ {≤, ≥};
// equalities are rewritten as two opposite inequalities.
type Op int

const (
	// LE is the operator "≤ 0".
	LE Op = iota
	// GE is the operator "≥ 0".
	GE
)

// Negate returns the opposite operator: ¬(≤) = ≥ and ¬(≥) = ≤, the ¬θ of
// Table 1 in the paper.
func (o Op) Negate() Op {
	if o == LE {
		return GE
	}
	return LE
}

// String renders the operator.
func (o Op) String() string {
	if o == LE {
		return "<="
	}
	return ">="
}

// HalfSpace is the spatial object a1·x1 + … + ad·xd + c θ 0 with
// θ ∈ {≤, ≥} (Section 2 of the paper). In E² it is a half-plane.
type HalfSpace struct {
	A  []float64 // coefficients a1..ad
	C  float64   // constant term c
	Op Op        // θ
}

// NewHalfSpace builds a half-space from its coefficient vector, constant
// term and operator. The coefficient slice is copied.
func NewHalfSpace(a []float64, c float64, op Op) HalfSpace {
	ac := make([]float64, len(a))
	copy(ac, a)
	return HalfSpace{A: ac, C: c, Op: op}
}

// HalfPlane2 builds the 2-D half-plane a·x + b·y + c θ 0.
func HalfPlane2(a, b, c float64, op Op) HalfSpace {
	return HalfSpace{A: []float64{a, b}, C: c, Op: op}
}

// Dim returns the dimension of the ambient space.
func (h HalfSpace) Dim() int { return len(h.A) }

// Eval returns a1·p1 + … + ad·pd + c.
func (h HalfSpace) Eval(p Point) float64 {
	s := h.C
	for i, a := range h.A {
		s += a * p[i]
	}
	return s
}

// Contains reports whether p satisfies the constraint within Eps.
func (h HalfSpace) Contains(p Point) bool {
	v := h.Eval(p)
	if h.Op == LE {
		return v <= Eps
	}
	return v >= -Eps
}

// ContainsStrict reports whether p satisfies the constraint with slack
// greater than Eps (p is in the open half-space, off the boundary).
func (h HalfSpace) ContainsStrict(p Point) bool {
	v := h.Eval(p)
	if h.Op == LE {
		return v < -Eps
	}
	return v > Eps
}

// OnBoundary reports whether p lies on the supporting hyperplane within Eps.
func (h HalfSpace) OnBoundary(p Point) bool {
	return math.Abs(h.Eval(p)) <= Eps
}

// AllowsDirection reports whether the recession cone of the half-space
// contains direction d, i.e. whether moving from any feasible point along d
// stays feasible: a·d ≤ 0 for θ = ≤, a·d ≥ 0 for θ = ≥ (within Eps).
func (h HalfSpace) AllowsDirection(d Point) bool {
	var s float64
	for i, a := range h.A {
		s += a * d[i]
	}
	if h.Op == LE {
		return s <= Eps
	}
	return s >= -Eps
}

// Negated returns the complementary (closed) half-space: same hyperplane,
// opposite operator.
func (h HalfSpace) Negated() HalfSpace {
	return HalfSpace{A: append([]float64(nil), h.A...), C: h.C, Op: h.Op.Negate()}
}

// IsVertical reports whether the supporting hyperplane is vertical in the
// sense of Section 2.1: its last coefficient is (numerically) zero, so the
// hyperplane cannot be written as x_d = b1·x1 + … + b_{d−1}·x_{d−1} + b_d.
func (h HalfSpace) IsVertical() bool {
	return math.Abs(h.A[len(h.A)-1]) <= Eps
}

// IsTrivial reports whether all coefficients are (numerically) zero, in
// which case the constraint is either vacuous or unsatisfiable depending on
// the constant term.
func (h HalfSpace) IsTrivial() bool {
	for _, a := range h.A {
		if math.Abs(a) > Eps {
			return false
		}
	}
	return true
}

// TrivialSatisfiable reports, for a trivial constraint (IsTrivial), whether
// it is satisfied by every point (true) or by none (false).
func (h HalfSpace) TrivialSatisfiable() bool {
	if h.Op == LE {
		return h.C <= Eps
	}
	return h.C >= -Eps
}

// SlopeForm rewrites a non-vertical half-space in the paper's query form
// x_d θ' b1·x1 + … + b_{d−1}·x_{d−1} + b_d, returning the slope vector
// (b1..b_{d−1}), the intercept b_d and θ'. Dividing by a_d flips the
// operator when a_d < 0.
func (h HalfSpace) SlopeForm() (slope []float64, intercept float64, op Op, err error) {
	d := h.Dim()
	ad := h.A[d-1]
	if math.Abs(ad) <= Eps {
		return nil, 0, LE, fmt.Errorf("geom: vertical half-space %v has no slope form", h)
	}
	slope = make([]float64, d-1)
	for i := 0; i < d-1; i++ {
		slope[i] = -h.A[i] / ad
		if slope[i] == 0 {
			slope[i] = 0 // normalize −0
		}
	}
	intercept = -h.C / ad
	if intercept == 0 {
		intercept = 0
	}
	op = h.Op
	if ad < 0 {
		op = op.Negate()
	}
	return slope, intercept, op, nil
}

// FromSlopeForm builds the half-space x_d θ b1·x1 + … + b_{d−1}·x_{d−1} + b_d,
// i.e. −b1·x1 − … − b_{d−1}·x_{d−1} + x_d − b_d θ 0.
func FromSlopeForm(slope []float64, intercept float64, op Op) HalfSpace {
	a := make([]float64, len(slope)+1)
	for i, b := range slope {
		a[i] = -b
	}
	a[len(slope)] = 1
	return HalfSpace{A: a, C: -intercept, Op: op}
}

// String renders the half-space as "a1*x1 + … + c <= 0".
func (h HalfSpace) String() string {
	var sb strings.Builder
	for i, a := range h.A {
		if i > 0 {
			sb.WriteString(" + ")
		}
		fmt.Fprintf(&sb, "%g*x%d", a, i+1)
	}
	fmt.Fprintf(&sb, " + %g %s 0", h.C, h.Op)
	return sb.String()
}
