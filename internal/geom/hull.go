package geom

import "sort"

// ConvexHull2 returns the convex hull of the given 2-D points in
// counter-clockwise order using Andrew's monotone chain. Collinear points on
// the hull boundary are dropped; duplicate points are tolerated. The input
// slice is not modified. Degenerate hulls (a point or a segment) are
// returned with 1 or 2 vertices.
func ConvexHull2(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] { //dualvet:allow floatcmp — sort needs a strict weak order over the raw bits
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
	// Remove duplicates.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) <= 2 {
		out := make([]Point, len(ps))
		copy(out, ps)
		return out
	}
	var lower, upper []Point
	for _, p := range ps {
		for len(lower) >= 2 && Cross2(lower[len(lower)-2], lower[len(lower)-1], p) <= Eps {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(ps) - 1; i >= 0; i-- {
		p := ps[i]
		for len(upper) >= 2 && Cross2(upper[len(upper)-2], upper[len(upper)-1], p) <= Eps {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) < 3 {
		// All points collinear after pruning: fall back to the two extremes.
		return []Point{ps[0], ps[len(ps)-1]}
	}
	return hull
}

// PolygonArea2 returns the (positive) area of the polygon whose vertices
// are given in order (either orientation) via the shoelace formula.
func PolygonArea2(verts []Point) float64 {
	if len(verts) < 3 {
		return 0
	}
	var s float64
	for i := range verts {
		j := (i + 1) % len(verts)
		s += verts[i][0]*verts[j][1] - verts[j][0]*verts[i][1]
	}
	if s < 0 {
		s = -s
	}
	return s / 2
}

// Centroid2 returns the centroid of the convex polygon with the given
// vertices in order. For degenerate inputs (fewer than 3 vertices) the
// arithmetic mean of the vertices is returned.
func Centroid2(verts []Point) Point {
	if len(verts) == 0 {
		return nil
	}
	if len(verts) < 3 {
		c := Point{0, 0}
		for _, v := range verts {
			c[0] += v[0]
			c[1] += v[1]
		}
		return Point{c[0] / float64(len(verts)), c[1] / float64(len(verts))}
	}
	var cx, cy, a float64
	for i := range verts {
		j := (i + 1) % len(verts)
		w := verts[i][0]*verts[j][1] - verts[j][0]*verts[i][1]
		cx += (verts[i][0] + verts[j][0]) * w
		cy += (verts[i][1] + verts[j][1]) * w
		a += w
	}
	if a == 0 {
		return Centroid2(verts[:2])
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}
