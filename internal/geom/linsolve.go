package geom

import "math"

// SolveLinear solves the n×n linear system A·x = b by Gaussian elimination
// with partial pivoting. It returns (x, true) when the system has a unique
// solution and (nil, false) when the matrix is singular within Eps.
//
// The inputs are not modified. n is small throughout this repository (the
// ambient dimension d ≤ 4), so no blocking or pivot scaling is needed.
func SolveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	// Work on copies.
	m := make([][]float64, n)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot: the row with the largest |entry| in this column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) <= Eps {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, true
}

// NullSpace1 returns a non-zero vector in the null space of the (n−1)×n
// matrix A (one fewer row than columns), or (nil, false) when the rows are
// linearly dependent so the null space has dimension > 1. The returned
// vector is normalized to unit length.
//
// It is used to enumerate candidate extreme-ray directions of recession
// cones: a direction lying on d−1 constraint boundaries solves d−1
// homogeneous equations in d unknowns.
func NullSpace1(a [][]float64) ([]float64, bool) {
	rows := len(a)
	n := rows + 1
	// Row-reduce a copy, tracking pivot columns.
	m := make([][]float64, rows)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
	}
	pivotCol := make([]int, 0, rows)
	r := 0
	for c := 0; c < n && r < rows; c++ {
		pivot := -1
		best := Eps
		for i := r; i < rows; i++ {
			if math.Abs(m[i][c]) > best {
				best = math.Abs(m[i][c])
				pivot = i
			}
		}
		if pivot < 0 {
			continue
		}
		m[r], m[pivot] = m[pivot], m[r]
		inv := 1 / m[r][c]
		for i := 0; i < rows; i++ {
			if i == r {
				continue
			}
			f := m[i][c] * inv
			if f == 0 {
				continue
			}
			for j := c; j < n; j++ {
				m[i][j] -= f * m[r][j]
			}
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	if r < rows {
		// Rank-deficient: null space dimension ≥ 2.
		return nil, false
	}
	// The single free column is the one not in pivotCol.
	isPivot := make([]bool, n)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	free := -1
	for c := 0; c < n; c++ {
		if !isPivot[c] {
			free = c
			break
		}
	}
	x := make([]float64, n)
	x[free] = 1
	for i, c := range pivotCol {
		x[c] = -m[i][free] / m[i][c]
	}
	// Normalize.
	var norm float64
	for _, v := range x {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm <= Eps {
		return nil, false
	}
	for i := range x {
		x[i] /= norm
	}
	return x, true
}
