package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestDualityOrderReversal checks the key property of Section 2.1:
// a point p lies above hyperplane H iff D(H) lies below D(p).
func TestDualityOrderReversal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		h := NewHyperplane([]float64{rng.NormFloat64() * 3}, rng.NormFloat64()*10)
		p := Pt2(rng.NormFloat64()*10, rng.NormFloat64()*10)
		primal := p[1] - h.F(p[:1]) // >0: p above H
		dh := DualOfHyperplane(h)
		dp := DualOfPoint(p)
		dual := dh[1] - dp.F(dh[:1]) // >0: D(H) above D(p)
		if primal > Eps && dual >= -Eps && dual > Eps {
			t.Fatalf("p above H but D(H) not below D(p): primal=%v dual=%v", primal, dual)
		}
		if primal < -Eps && dual < -Eps {
			t.Fatalf("p below H but D(H) not above D(p): primal=%v dual=%v", primal, dual)
		}
		if math.Abs(primal) <= Eps && math.Abs(dual) > 1e-6 {
			t.Fatalf("p on H but D(H) not on D(p): primal=%v dual=%v", primal, dual)
		}
	}
}

// TestDualityInvolution: applying the transform twice returns the original
// object (D is an involution up to the sign convention used).
func TestDualityInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 500; trial++ {
		p := Pt2(rng.NormFloat64()*10, rng.NormFloat64()*10)
		back := DualOfHyperplane(DualOfPoint(p))
		// D(p) = (x_2 = −p1·x1 + p2); D of that is the point (−p1, p2).
		if math.Abs(back[0]-(-p[0])) > 1e-9 || math.Abs(back[1]-p[1]) > 1e-9 {
			t.Fatalf("involution: %v -> %v", p, back)
		}
	}
}

func TestHyperplaneFromGeneral(t *testing.T) {
	// 2x − y + 3 = 0  ⇔  y = 2x + 3.
	h, err := HyperplaneFromGeneral([]float64{2, -1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Slope[0]-2) > Eps || math.Abs(h.Intercept-3) > Eps {
		t.Fatalf("slope form = %+v", h)
	}
	// A point on the line must evaluate to Side 0.
	if s := h.Side(Pt2(1, 5)); s != 0 {
		t.Errorf("(1,5) on y=2x+3, Side = %d", s)
	}
	if s := h.Side(Pt2(0, 10)); s != 1 {
		t.Errorf("(0,10) above y=2x+3, Side = %d", s)
	}
	if s := h.Side(Pt2(0, 0)); s != -1 {
		t.Errorf("(0,0) below y=2x+3, Side = %d", s)
	}
	if _, err := HyperplaneFromGeneral([]float64{1, 0}, 0); err == nil {
		t.Error("vertical hyperplane must be rejected")
	}
}

// TestExample21 reproduces Example 2.1 of the paper qualitatively: for the
// polygon of Figure 2, TOP/BOT comparisons decide ALL/EXIST.
func TestExample21(t *testing.T) {
	// Use the triangle (0,0),(4,0),(0,4); it is fully inside y ≥ −x − 1
	// (ALL), touches y = x (EXIST both sides), etc.
	p, _ := FromHalfSpaces(triangleHS(), 2)

	// q1 ≡ y ≥ −x − 1: ALL ⇔ −1 ≤ BOT(−1).
	if bot := p.Bot([]float64{-1}); !(-1 <= bot+Eps) {
		t.Errorf("ALL(q1) should hold: BOT(−1) = %v", bot)
	}
	// q3 ≡ y ≥ x: EXIST ⇔ 0 ≤ TOP(1); and not ALL since BOT(1) < 0.
	if top := p.Top([]float64{1}); !(0 <= top+Eps) {
		t.Errorf("EXIST(q3) should hold: TOP(1) = %v", top)
	}
	if bot := p.Bot([]float64{1}); !(bot < 0) {
		t.Errorf("ALL(q3) should fail: BOT(1) = %v", bot)
	}
}

func TestFDualMatchesDefinition(t *testing.T) {
	v := Point{2, -1, 5}
	b := []float64{3, 4}
	want := 5 - 2*3 - (-1)*4
	if got := FDual(v, b); math.Abs(got-float64(want)) > Eps {
		t.Fatalf("FDual = %v, want %v", got, want)
	}
}
