package harness

import (
	"strings"
	"testing"
)

func TestRunSelSweep(t *testing.T) {
	rows, err := RunSelSweep(SelSweepConfig{
		N:               800,
		Bands:           [][2]float64{{0.05, 0.10}, {0.40, 0.50}},
		QueriesPerPoint: 3,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WinFactor <= 1 {
			t.Errorf("T2 must win at selectivity %v–%v: factor %v", r.SelLo, r.SelHi, r.WinFactor)
		}
	}
	// Output-sensitive T2: higher selectivity never costs dramatically
	// less (at this small N the leaf counts barely move, so only a
	// non-degradation check is meaningful; the full-scale growth trend is
	// in EXPERIMENTS.md).
	if rows[1].T2IO < rows[0].T2IO*0.7 {
		t.Errorf("T2 I/O collapsed at higher selectivity: %+v", rows)
	}
	if out := FormatSelSweep(rows); !strings.Contains(out, "win factor") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestRunTechniqueComparison(t *testing.T) {
	rows, err := RunTechniqueComparison(800, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TechniqueRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, name := range []string{"T2", "T1", "restricted", "R+-tree", "scan"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing technique %q in %+v", name, rows)
		}
	}
	// The paper's ordering: restricted ≤ T2 ≤ T1 in I/O; R⁺ worst of the
	// indexed strategies.
	if !(byName["restricted"].IOPerQuery <= byName["T2"].IOPerQuery) {
		t.Errorf("restricted must not exceed T2: %+v", rows)
	}
	if !(byName["T2"].IOPerQuery <= byName["T1"].IOPerQuery) {
		t.Errorf("T2 must not exceed T1: %+v", rows)
	}
	if !(byName["T1"].IOPerQuery < byName["R+-tree"].IOPerQuery) {
		t.Errorf("every dual technique must beat the R+-tree here: %+v", rows)
	}
	if byName["restricted"].FalseHits != 0 || byName["restricted"].Duplicates != 0 {
		t.Errorf("restricted path is exact: %+v", byName["restricted"])
	}
	if byName["T1"].Duplicates <= byName["T2"].Duplicates {
		t.Errorf("T1 must duplicate more than T2: %+v", rows)
	}
	if out := FormatTechniques(rows); !strings.Contains(out, "restricted") {
		t.Fatalf("format:\n%s", out)
	}
}
