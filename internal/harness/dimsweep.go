package harness

import (
	"fmt"
	"strings"

	"dualcdb/internal/constraint"
	"dualcdb/internal/core"
	"dualcdb/internal/workload"
)

// DimSweepConfig parameterizes the dimension sweep — the study the paper's
// Section 6 leaves as future work: "by increasing the dimension of the
// space, the performance of our technique does not change, since we always
// deal with single values".
type DimSweepConfig struct {
	// Dims are the ambient dimensions measured (default 2, 3, 4).
	Dims []int
	// N is the relation cardinality (default 2000).
	N int
	// SitesPerAxis is the slope-lattice resolution per axis (default 3, so
	// k = 3^{d−1} sites).
	SitesPerAxis int
	// QueriesPerPoint (default 6) and the selectivity band (default
	// 0.10–0.15) follow the paper's mix.
	QueriesPerPoint int
	SelLo, SelHi    float64
	// Seed drives the generator.
	Seed int64
}

func (c *DimSweepConfig) defaults() {
	if len(c.Dims) == 0 {
		c.Dims = []int{2, 3, 4}
	}
	if c.N <= 0 {
		c.N = 2000
	}
	if c.SitesPerAxis <= 0 {
		c.SitesPerAxis = 3
	}
	if c.QueriesPerPoint <= 0 {
		c.QueriesPerPoint = 6
	}
	if c.SelLo <= 0 {
		c.SelLo, c.SelHi = 0.10, 0.15
	}
}

// DimSweepRow is one measured dimension.
type DimSweepRow struct {
	Dim        int
	Sites      int
	IOPerQuery float64
	Pages      int
	// RestrictedIO measures in-set slope points (the optimal path).
	RestrictedIO float64
}

// RunDimSweep builds a d-dimensional index per dimension and measures
// pages/query for approximated (in-cell) and restricted slopes.
func RunDimSweep(cfg DimSweepConfig) ([]DimSweepRow, error) {
	cfg.defaults()
	var rows []DimSweepRow
	for di, d := range cfg.Dims {
		rel, err := workload.GenerateRelationD(workload.ConfigD{
			Dim: d, N: cfg.N, Seed: cfg.Seed + int64(di),
		})
		if err != nil {
			return nil, err
		}
		sites := core.LatticeSites(d-1, cfg.SitesPerAxis, 1.0)
		ix, err := core.BuildD(rel, core.OptionsD{Sites: sites, PoolPages: 1 << 16})
		if err != nil {
			return nil, err
		}
		queries, err := workload.GenerateQueriesD(rel, workload.QueryConfig{
			Count: cfg.QueriesPerPoint, Kind: constraint.EXIST,
			SelectivityLo: cfg.SelLo, SelectivityHi: cfg.SelHi,
			Seed: cfg.Seed + 700 + int64(di),
		}, 1.0)
		if err != nil {
			return nil, err
		}
		row := DimSweepRow{Dim: d, Sites: len(sites), Pages: ix.Pages()}

		var total uint64
		for _, q := range queries {
			io, err := coldIO(ix.Pool(), func() error { _, err := ix.Query(q); return err })
			if err != nil {
				return nil, err
			}
			total += io
		}
		row.IOPerQuery = float64(total) / float64(len(queries))

		// Restricted path: pin the slope to a site.
		total = 0
		for i, q := range queries {
			rq := q
			s := sites[i%len(sites)]
			rq.Slope = append([]float64(nil), s...)
			io, err := coldIO(ix.Pool(), func() error { _, err := ix.Query(rq); return err })
			if err != nil {
				return nil, err
			}
			total += io
		}
		row.RestrictedIO = float64(total) / float64(len(queries))
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatDimSweep renders the sweep as an aligned table.
func FormatDimSweep(rows []DimSweepRow) string {
	var sb strings.Builder
	sb.WriteString("dim   sites   T2 pages/query   restricted pages/query      pages\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%3d %7d %16.1f %24.1f %10d\n",
			r.Dim, r.Sites, r.IOPerQuery, r.RestrictedIO, r.Pages)
	}
	return sb.String()
}
