package harness

import (
	"fmt"
	"strings"
	"time"

	"dualcdb/internal/constraint"
	"dualcdb/internal/core"
	"dualcdb/internal/workload"
)

// BatchSweepConfig parameterizes the batch-throughput sweep: the same
// calibrated query mix the figures use (Figure 9's medium objects by
// default), executed through Index.QueryBatch at increasing worker counts.
type BatchSweepConfig struct {
	// N is the relation cardinality (default 4000).
	N int
	// K is the slope-set cardinality for T2 (default 3).
	K int
	// Size is the object regime; pass workload.Medium for the Figure 9
	// workload (the zero value is workload.Small).
	Size workload.SizeClass
	// Kind is the selection type (default EXIST).
	Kind constraint.QueryKind
	// Queries is the batch size (default 64).
	Queries int
	// Workers are the swept pool widths (default 1, 2, 4, 8).
	Workers []int
	// Rounds is how many times each batch is timed; the fastest round is
	// reported (default 3).
	Rounds int
	// Seed drives the generator.
	Seed int64
}

func (c *BatchSweepConfig) defaults() {
	if c.N <= 0 {
		c.N = 4000
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.Queries <= 0 {
		c.Queries = 64
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
}

// BatchSweepRow is one measured worker count.
type BatchSweepRow struct {
	Workers     int
	Elapsed     time.Duration // fastest round for the whole batch
	QueriesPerS float64
	Speedup     float64 // vs the Workers=1 row
}

// RunBatchSweep builds a T2 index over the configured workload, checks
// QueryBatch against sequential Query results, then times the batch at
// every worker count. It returns one row per worker count with throughput
// and speedup relative to a single worker.
func RunBatchSweep(cfg BatchSweepConfig) ([]BatchSweepRow, error) {
	cfg.defaults()
	rel, err := workload.GenerateRelation(workload.Config{
		N: cfg.N, Size: cfg.Size, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	queries, err := workload.GenerateQueries(rel, workload.QueryConfig{
		Count: cfg.Queries, Kind: cfg.Kind,
		SelectivityLo: 0.10, SelectivityHi: 0.15,
		Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	ix, err := core.Build(rel, core.Options{
		Slopes:       core.EquiangularSlopes(cfg.K),
		Technique:    core.T2,
		PoolPages:    1 << 16,
		BuildWorkers: maxWorkers(cfg.Workers),
	})
	if err != nil {
		return nil, err
	}

	// Correctness gate: the parallel batch must return exactly the
	// sequential answers.
	want := make([][]constraint.TupleID, len(queries))
	for i, q := range queries {
		res, err := ix.Query(q)
		if err != nil {
			return nil, err
		}
		want[i] = res.IDs
	}
	got, err := ix.QueryBatch(queries, core.BatchOptions{})
	if err != nil {
		return nil, err
	}
	for i := range got {
		if !equalIDs(got[i].IDs, want[i]) {
			return nil, fmt.Errorf("harness: QueryBatch result %d differs from sequential Query", i)
		}
	}

	var rows []BatchSweepRow
	for _, w := range cfg.Workers {
		best := time.Duration(0)
		for r := 0; r < cfg.Rounds; r++ {
			start := time.Now()
			if _, err := ix.QueryBatch(queries, core.BatchOptions{Workers: w}); err != nil {
				return nil, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		rows = append(rows, BatchSweepRow{
			Workers:     w,
			Elapsed:     best,
			QueriesPerS: float64(len(queries)) / best.Seconds(),
		})
	}
	if len(rows) > 0 && rows[0].QueriesPerS > 0 {
		for i := range rows {
			rows[i].Speedup = rows[i].QueriesPerS / rows[0].QueriesPerS
		}
	}
	return rows, nil
}

func maxWorkers(ws []int) int {
	m := 1
	for _, w := range ws {
		if w > m {
			m = w
		}
	}
	return m
}

func equalIDs(a, b []constraint.TupleID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FormatBatchSweep renders the sweep as an aligned table.
func FormatBatchSweep(rows []BatchSweepRow) string {
	var sb strings.Builder
	sb.WriteString("workers      batch time    queries/sec      speedup\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10d %12s %14.0f %11.2fx\n",
			r.Workers, r.Elapsed.Round(time.Microsecond), r.QueriesPerS, r.Speedup)
	}
	return sb.String()
}
