// Package harness regenerates the paper's experimental figures: it builds
// the Section 5 workloads, runs the calibrated ALL/EXIST query mixes
// against technique T2 (for every slope-set cardinality k) and against the
// R⁺-tree baseline, and reports the same series the paper plots — average
// page accesses per query (Figures 8 and 9) and occupied disk pages
// (Figure 10).
package harness

import (
	"fmt"
	"runtime"
	"strings"

	"dualcdb/internal/constraint"
	"dualcdb/internal/core"
	"dualcdb/internal/pagestore"
	"dualcdb/internal/rplustree"
	"dualcdb/internal/workload"
)

// Series is one plotted line: a label and a Y value per X position.
type Series struct {
	Label string
	Y     []float64
}

// Figure is a regenerated experiment: X positions (relation cardinalities)
// and one series per indexed structure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []int
	Series []Series
}

// Config parameterizes a figure run.
type Config struct {
	// Ns are the relation cardinalities (default: the paper's 500, 2000,
	// 4000, 8000, 12000).
	Ns []int
	// Ks are the slope-set cardinalities for T2 (default 2, 3, 4, 5).
	Ks []int
	// Size is the object regime (Figures 8 vs 9).
	Size workload.SizeClass
	// Kind is the selection type (sub-figures a vs b).
	Kind constraint.QueryKind
	// QueriesPerPoint is the number of calibrated queries averaged per
	// data point (default 6, the paper's mix).
	QueriesPerPoint int
	// SelLo/SelHi is the selectivity band (default 0.10–0.15, the band the
	// paper reports).
	SelLo, SelHi float64
	// PageSize in bytes (default 1024).
	PageSize int
	// Seed drives workload generation.
	Seed int64
}

func (c *Config) defaults() {
	if len(c.Ns) == 0 {
		c.Ns = []int{500, 2000, 4000, 8000, 12000}
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{2, 3, 4, 5}
	}
	if c.QueriesPerPoint <= 0 {
		c.QueriesPerPoint = 6
	}
	if c.SelLo <= 0 {
		c.SelLo, c.SelHi = 0.10, 0.15
	}
	if c.PageSize <= 0 {
		c.PageSize = pagestore.DefaultPageSize
	}
}

// coldIO runs fn with a cold buffer pool and returns the physical page
// reads it caused — the "page accesses" metric of the figures.
func coldIO(pool *pagestore.Pool, fn func() error) (uint64, error) {
	if err := pool.EvictAll(); err != nil {
		return 0, err
	}
	pool.ResetStats()
	if err := fn(); err != nil {
		return 0, err
	}
	return pool.Stats().PhysicalReads, nil
}

// RunQueryFigure regenerates one of Figures 8(a/b) or 9(a/b): average page
// accesses per query versus relation cardinality, for the R⁺-tree and for
// T2 at every k in Ks.
func RunQueryFigure(id, title string, cfg Config) (Figure, error) {
	cfg.defaults()
	fig := Figure{
		ID: id, Title: title,
		XLabel: "relation cardinality N",
		YLabel: "avg page accesses per query",
		X:      cfg.Ns,
	}
	series := make(map[string]*Series)
	order := []string{"R+-tree"}
	series["R+-tree"] = &Series{Label: "R+-tree"}
	for _, k := range cfg.Ks {
		label := fmt.Sprintf("T2 k=%d", k)
		order = append(order, label)
		series[label] = &Series{Label: label}
	}

	for ni, n := range cfg.Ns {
		rel, err := workload.GenerateRelation(workload.Config{
			N: n, Size: cfg.Size, Seed: cfg.Seed + int64(ni),
		})
		if err != nil {
			return Figure{}, err
		}
		queries, err := workload.GenerateQueries(rel, workload.QueryConfig{
			Count: cfg.QueriesPerPoint, Kind: cfg.Kind,
			SelectivityLo: cfg.SelLo, SelectivityHi: cfg.SelHi,
			Seed: cfg.Seed + 1000 + int64(ni),
		})
		if err != nil {
			return Figure{}, err
		}

		// R⁺-tree baseline.
		rix, err := rplustree.Build(rel, rplustree.Options{PageSize: cfg.PageSize, PoolPages: 1 << 16})
		if err != nil {
			return Figure{}, err
		}
		var total uint64
		for _, q := range queries {
			io, err := coldIO(rix.Pool(), func() error {
				_, err := rix.Query(q)
				return err
			})
			if err != nil {
				return Figure{}, err
			}
			total += io
		}
		series["R+-tree"].Y = append(series["R+-tree"].Y, float64(total)/float64(len(queries)))

		// Dual index, technique T2, for each k.
		for _, k := range cfg.Ks {
			ix, err := core.Build(rel, core.Options{
				Slopes:       core.EquiangularSlopes(k),
				Technique:    core.T2,
				PageSize:     cfg.PageSize,
				PoolPages:    1 << 16,
				BuildWorkers: runtime.GOMAXPROCS(0),
			})
			if err != nil {
				return Figure{}, err
			}
			var total uint64
			for _, q := range queries {
				io, err := coldIO(ix.Pool(), func() error {
					_, err := ix.Query(q)
					return err
				})
				if err != nil {
					return Figure{}, err
				}
				total += io
			}
			label := fmt.Sprintf("T2 k=%d", k)
			series[label].Y = append(series[label].Y, float64(total)/float64(len(queries)))
		}
	}
	for _, label := range order {
		fig.Series = append(fig.Series, *series[label])
	}
	return fig, nil
}

// RunSpaceFigure regenerates Figure 10: occupied disk pages versus
// relation cardinality for the R⁺-tree and T2 at every k.
func RunSpaceFigure(cfg Config) (Figure, error) {
	cfg.defaults()
	fig := Figure{
		ID: "fig10", Title: "Disk space occupied by technique T2 and the R+-tree",
		XLabel: "relation cardinality N",
		YLabel: "occupied pages",
		X:      cfg.Ns,
	}
	series := make(map[string]*Series)
	order := []string{"R+-tree"}
	series["R+-tree"] = &Series{Label: "R+-tree"}
	for _, k := range cfg.Ks {
		label := fmt.Sprintf("T2 k=%d", k)
		order = append(order, label)
		series[label] = &Series{Label: label}
	}
	for ni, n := range cfg.Ns {
		rel, err := workload.GenerateRelation(workload.Config{
			N: n, Size: cfg.Size, Seed: cfg.Seed + int64(ni),
		})
		if err != nil {
			return Figure{}, err
		}
		rix, err := rplustree.Build(rel, rplustree.Options{PageSize: cfg.PageSize, PoolPages: 1 << 16})
		if err != nil {
			return Figure{}, err
		}
		series["R+-tree"].Y = append(series["R+-tree"].Y, float64(rix.Pages()))
		for _, k := range cfg.Ks {
			ix, err := core.Build(rel, core.Options{
				Slopes:       core.EquiangularSlopes(k),
				Technique:    core.T2,
				PageSize:     cfg.PageSize,
				PoolPages:    1 << 16,
				BuildWorkers: runtime.GOMAXPROCS(0),
			})
			if err != nil {
				return Figure{}, err
			}
			label := fmt.Sprintf("T2 k=%d", k)
			series[label].Y = append(series[label].Y, float64(ix.Pages()))
		}
	}
	for _, label := range order {
		fig.Series = append(fig.Series, *series[label])
	}
	return fig, nil
}

// Format renders the figure as an aligned text table (one row per X, one
// column per series).
func (f Figure) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%14s", s.Label)
	}
	sb.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&sb, "%-10d", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&sb, "%14.1f", s.Y[i])
			} else {
				fmt.Fprintf(&sb, "%14s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the figure as comma-separated values.
func (f Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString("N")
	for _, s := range f.Series {
		sb.WriteString("," + s.Label)
	}
	sb.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&sb, "%d", x)
		for _, s := range f.Series {
			fmt.Fprintf(&sb, ",%g", s.Y[i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SeriesByLabel returns the series with the given label.
func (f Figure) SeriesByLabel(label string) (Series, bool) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// ShapeReport summarizes the paper-shape checks for a query figure: at how
// many data points each T2 series beats the R⁺-tree, and the win factors.
type ShapeReport struct {
	PointsTotal   int
	PointsT2Wins  int
	MinWinFactor  float64 // min over points of (R+ I/O) / (T2 I/O)
	MeanWinFactor float64
}

// Shape computes the ShapeReport of a query figure, comparing every T2
// series point against the R⁺-tree baseline.
func (f Figure) Shape() ShapeReport {
	base, ok := f.SeriesByLabel("R+-tree")
	if !ok {
		return ShapeReport{}
	}
	rep := ShapeReport{MinWinFactor: 1e18}
	var sum float64
	for _, s := range f.Series {
		if s.Label == "R+-tree" {
			continue
		}
		for i := range s.Y {
			if i >= len(base.Y) || s.Y[i] == 0 {
				continue
			}
			rep.PointsTotal++
			factor := base.Y[i] / s.Y[i]
			if factor > 1 {
				rep.PointsT2Wins++
			}
			if factor < rep.MinWinFactor {
				rep.MinWinFactor = factor
			}
			sum += factor
		}
	}
	if rep.PointsTotal > 0 {
		rep.MeanWinFactor = sum / float64(rep.PointsTotal)
	}
	return rep
}

// SpaceRatios returns, for each k, the mean over N of
// pages(T2, k) / (k · pages(R+)) — the paper reports this ratio as ≈ 1.32.
func (f Figure) SpaceRatios(ks []int) map[int]float64 {
	base, ok := f.SeriesByLabel("R+-tree")
	if !ok {
		return nil
	}
	out := make(map[int]float64)
	for _, k := range ks {
		s, ok := f.SeriesByLabel(fmt.Sprintf("T2 k=%d", k))
		if !ok {
			continue
		}
		var sum float64
		n := 0
		for i := range s.Y {
			if i < len(base.Y) && base.Y[i] > 0 {
				sum += s.Y[i] / (float64(k) * base.Y[i])
				n++
			}
		}
		if n > 0 {
			out[k] = sum / float64(n)
		}
	}
	return out
}
