package harness

import (
	"fmt"
	"strings"

	"dualcdb/internal/constraint"
	"dualcdb/internal/core"
	"dualcdb/internal/rplustree"
	"dualcdb/internal/workload"
)

// SelSweepConfig parameterizes the selectivity sweep. The paper varies
// selectivity over 5–60 % and reports only the 10–15 % band because
// "performance results obtained for other selectivities appeared to be
// similar" — this experiment checks that claim: the T2-over-R⁺ win factor
// should stay roughly constant across the range.
type SelSweepConfig struct {
	// N is the relation cardinality (default 4000).
	N int
	// Bands are the swept selectivity bands (default five bands covering
	// the paper's 5–60 %).
	Bands [][2]float64
	// K is the slope-set cardinality for T2 (default 3).
	K int
	// Kind is the selection type (default EXIST).
	Kind constraint.QueryKind
	// QueriesPerPoint per band (default 6).
	QueriesPerPoint int
	// Seed drives the generator.
	Seed int64
}

func (c *SelSweepConfig) defaults() {
	if c.N <= 0 {
		c.N = 4000
	}
	if len(c.Bands) == 0 {
		c.Bands = [][2]float64{{0.05, 0.08}, {0.10, 0.15}, {0.20, 0.25}, {0.35, 0.40}, {0.55, 0.60}}
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.QueriesPerPoint <= 0 {
		c.QueriesPerPoint = 6
	}
}

// SelSweepRow is one measured selectivity band.
type SelSweepRow struct {
	SelLo, SelHi float64
	RPlusIO      float64
	T2IO         float64
	WinFactor    float64
}

// RunSelSweep measures both structures across selectivity bands on one
// fixed relation.
func RunSelSweep(cfg SelSweepConfig) ([]SelSweepRow, error) {
	cfg.defaults()
	rel, err := workload.GenerateRelation(workload.Config{
		N: cfg.N, Size: workload.Small, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rix, err := rplustree.Build(rel, rplustree.Options{PoolPages: 1 << 16})
	if err != nil {
		return nil, err
	}
	ix, err := core.Build(rel, core.Options{
		Slopes: core.EquiangularSlopes(cfg.K), Technique: core.T2, PoolPages: 1 << 16,
	})
	if err != nil {
		return nil, err
	}
	var rows []SelSweepRow
	for bi, band := range cfg.Bands {
		queries, err := workload.GenerateQueries(rel, workload.QueryConfig{
			Count: cfg.QueriesPerPoint, Kind: cfg.Kind,
			SelectivityLo: band[0], SelectivityHi: band[1],
			Seed: cfg.Seed + 900 + int64(bi),
		})
		if err != nil {
			return nil, err
		}
		var rTotal, tTotal uint64
		for _, q := range queries {
			io, err := coldIO(rix.Pool(), func() error { _, err := rix.Query(q); return err })
			if err != nil {
				return nil, err
			}
			rTotal += io
			io, err = coldIO(ix.Pool(), func() error { _, err := ix.Query(q); return err })
			if err != nil {
				return nil, err
			}
			tTotal += io
		}
		row := SelSweepRow{
			SelLo:   band[0],
			SelHi:   band[1],
			RPlusIO: float64(rTotal) / float64(len(queries)),
			T2IO:    float64(tTotal) / float64(len(queries)),
		}
		if row.T2IO > 0 {
			row.WinFactor = row.RPlusIO / row.T2IO
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSelSweep renders the sweep as an aligned table.
func FormatSelSweep(rows []SelSweepRow) string {
	var sb strings.Builder
	sb.WriteString("selectivity    R+ pages/query  T2 pages/query   win factor\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%4.0f%% – %2.0f%%  %15.1f %15.1f %12.2f\n",
			r.SelLo*100, r.SelHi*100, r.RPlusIO, r.T2IO, r.WinFactor)
	}
	return sb.String()
}

// TechniqueRow is one execution strategy's profile on a common workload:
// the unified comparison across everything this repository implements.
type TechniqueRow struct {
	Name       string
	IOPerQuery float64
	Candidates float64
	FalseHits  float64
	Duplicates float64
	Pages      int
}

// RunTechniqueComparison profiles restricted/T2/T1/R⁺-tree/scan on one
// workload and query set (EXIST, selectivity 10–15 %).
func RunTechniqueComparison(n, k int, seed int64) ([]TechniqueRow, error) {
	rel, err := workload.GenerateRelation(workload.Config{N: n, Size: workload.Small, Seed: seed})
	if err != nil {
		return nil, err
	}
	queries, err := workload.GenerateQueries(rel, workload.QueryConfig{
		Count: 6, Kind: constraint.EXIST, SelectivityLo: 0.10, SelectivityHi: 0.15, Seed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	slopes := core.EquiangularSlopes(k)
	var rows []TechniqueRow

	for _, tech := range []core.Technique{core.T2, core.T1} {
		ix, err := core.Build(rel, core.Options{Slopes: slopes, Technique: tech, PoolPages: 1 << 16})
		if err != nil {
			return nil, err
		}
		row := TechniqueRow{Name: tech.String(), Pages: ix.Pages()}
		for _, q := range queries {
			io, err := coldIO(ix.Pool(), func() error {
				res, err := ix.Query(q)
				if err == nil {
					row.Candidates += float64(res.Stats.Candidates)
					row.FalseHits += float64(res.Stats.FalseHits)
					row.Duplicates += float64(res.Stats.Duplicates)
				}
				return err
			})
			if err != nil {
				return nil, err
			}
			row.IOPerQuery += float64(io)
		}
		nq := float64(len(queries))
		row.IOPerQuery /= nq
		row.Candidates /= nq
		row.FalseHits /= nq
		row.Duplicates /= nq
		rows = append(rows, row)
	}

	// Restricted path: same T2 index, slopes pinned to S.
	ix, err := core.Build(rel, core.Options{Slopes: slopes, Technique: core.T2, PoolPages: 1 << 16})
	if err != nil {
		return nil, err
	}
	row := TechniqueRow{Name: "restricted", Pages: ix.Pages()}
	for i, q := range queries {
		rq := q
		rq.Slope = []float64{slopes[i%len(slopes)]}
		io, err := coldIO(ix.Pool(), func() error {
			res, err := ix.Query(rq)
			if err == nil {
				row.Candidates += float64(res.Stats.Candidates)
				row.FalseHits += float64(res.Stats.FalseHits)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		row.IOPerQuery += float64(io)
	}
	nq := float64(len(queries))
	row.IOPerQuery /= nq
	row.Candidates /= nq
	row.FalseHits /= nq
	rows = append(rows, row)

	rix, err := rplustree.Build(rel, rplustree.Options{PoolPages: 1 << 16})
	if err != nil {
		return nil, err
	}
	rrow := TechniqueRow{Name: "R+-tree", Pages: rix.Pages()}
	for _, q := range queries {
		io, err := coldIO(rix.Pool(), func() error {
			res, err := rix.Query(q)
			if err == nil {
				rrow.Candidates += float64(res.Stats.Candidates)
				rrow.FalseHits += float64(res.Stats.FalseHits)
				rrow.Duplicates += float64(res.Stats.Duplicates)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		rrow.IOPerQuery += float64(io)
	}
	rrow.IOPerQuery /= nq
	rrow.Candidates /= nq
	rrow.FalseHits /= nq
	rrow.Duplicates /= nq
	rows = append(rows, rrow)

	// Exhaustive scan baseline: every tuple is a candidate; "I/O" is the
	// relation size in pages had it been stored sequentially (N·tuple
	// record / page size) — reported for context.
	scan := TechniqueRow{Name: "scan", Candidates: float64(n)}
	for _, q := range queries {
		ids, err := q.Eval(rel)
		if err != nil {
			return nil, err
		}
		scan.FalseHits += float64(n - len(ids))
	}
	scan.FalseHits /= nq
	rows = append(rows, scan)
	return rows, nil
}

// FormatTechniques renders the comparison as an aligned table.
func FormatTechniques(rows []TechniqueRow) string {
	var sb strings.Builder
	sb.WriteString("technique     pages/query    candidates    falseHits   duplicates      pages\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %12.1f %13.1f %12.1f %12.1f %10d\n",
			r.Name, r.IOPerQuery, r.Candidates, r.FalseHits, r.Duplicates, r.Pages)
	}
	return sb.String()
}
