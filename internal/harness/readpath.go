package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"dualcdb/internal/constraint"
	"dualcdb/internal/core"
	"dualcdb/internal/pagestore"
	"dualcdb/internal/workload"
)

// countingStore wraps a page device and counts the read *calls* it
// receives — the experiment's proxy for read syscalls. A vectored
// ReadPages counts as one call however many pages it returns, which is
// exactly the saving leaf-chain readahead is after.
type countingStore struct {
	pagestore.Store
	readCalls atomic.Uint64
}

func (s *countingStore) ReadPage(id pagestore.PageID, buf []byte) error {
	s.readCalls.Add(1)
	return s.Store.ReadPage(id, buf)
}

func (s *countingStore) ReadPages(ids []pagestore.PageID, bufs [][]byte) (int, error) {
	s.readCalls.Add(1)
	return s.Store.ReadPages(ids, bufs)
}

// ReadPathConfig parameterizes the read-path ablation.
type ReadPathConfig struct {
	// N is the relation cardinality (default 2500).
	N int
	// Queries is the number of distinct queries (default 8).
	Queries int
	// Passes replays the query set this many times so decoded-node reuse
	// and scan resistance show up (default 4).
	Passes int
	// PoolPages is the deliberately small buffer-pool capacity: leaf
	// sweeps must overflow it while the inner nodes fit, so eviction
	// policy matters (default 48).
	PoolPages int
	// Seed drives the generator.
	Seed int64
}

func (c *ReadPathConfig) defaults() {
	if c.N <= 0 {
		c.N = 2500
	}
	if c.Queries <= 0 {
		c.Queries = 8
	}
	if c.Passes <= 0 {
		c.Passes = 4
	}
	if c.PoolPages <= 0 {
		c.PoolPages = 48
	}
}

// ReadPathRow is one configuration's profile on the repeated-query
// workload.
type ReadPathRow struct {
	Name             string
	NsPerQuery       float64
	PagesPerQuery    float64 // physical page reads per query
	ReadCallsPerQ    float64 // store read calls per query (syscall proxy)
	ReadaheadBatches uint64
	YoungEvictions   uint64
	OldEvictions     uint64
	DecodeHits       uint64
	DecodeMisses     uint64
}

// RunReadPath ablates the three read-path layers — decoded-node cache,
// leaf-chain readahead, midpoint LRU — on a file-backed index whose
// buffer pool is much smaller than the leaf level. Each configuration
// gets its own store and runs the same repeated query mix.
func RunReadPath(cfg ReadPathConfig) ([]ReadPathRow, error) {
	cfg.defaults()
	rel, err := workload.GenerateRelation(workload.Config{
		N: cfg.N, Size: workload.Small, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Wider selectivity than the paper's reported band: the sweeps must
	// touch enough leaves to overflow the small pool.
	queries, err := workload.GenerateQueries(rel, workload.QueryConfig{
		Count: cfg.Queries, Kind: constraint.EXIST,
		SelectivityLo: 0.35, SelectivityHi: 0.50,
		Seed: cfg.Seed + 17,
	})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "readpath")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	configs := []struct {
		name              string
		plainLRU, noCache bool
		readahead         int
	}{
		{"baseline (plain LRU, no cache)", true, true, 0},
		{"+decode cache", true, false, 0},
		{"+readahead", true, false, 8},
		{"full (midpoint LRU)", false, false, 8},
	}
	var rows []ReadPathRow
	for ci, c := range configs {
		fs, err := pagestore.OpenFileStore(filepath.Join(dir, fmt.Sprintf("rp%d.db", ci)), 1024)
		if err != nil {
			return nil, err
		}
		cs := &countingStore{Store: fs}
		ix, err := core.Build(rel, core.Options{
			Slopes:        core.EquiangularSlopes(3),
			Technique:     core.T2,
			Store:         cs,
			PoolPages:     cfg.PoolPages,
			PoolShards:    1,
			PlainLRU:      c.plainLRU,
			NoDecodeCache: c.noCache,
			Readahead:     c.readahead,
		})
		if err != nil {
			_ = fs.Close() // already failing; Close error would mask the cause
			return nil, err
		}
		if err := ix.Pool().EvictAll(); err != nil {
			_ = fs.Close() // already failing; Close error would mask the cause
			return nil, err
		}
		ix.Pool().ResetStats()
		cs.readCalls.Store(0)
		decode0 := ix.DecodeCacheStats()

		nq := cfg.Passes * len(queries)
		start := time.Now()
		for pass := 0; pass < cfg.Passes; pass++ {
			for _, q := range queries {
				if _, err := ix.Query(q); err != nil {
					_ = fs.Close() // already failing; Close error would mask the cause
					return nil, err
				}
			}
		}
		elapsed := time.Since(start)

		st := ix.Pool().Stats()
		dec := ix.DecodeCacheStats()
		rows = append(rows, ReadPathRow{
			Name:             c.name,
			NsPerQuery:       float64(elapsed.Nanoseconds()) / float64(nq),
			PagesPerQuery:    float64(st.PhysicalReads) / float64(nq),
			ReadCallsPerQ:    float64(cs.readCalls.Load()) / float64(nq),
			ReadaheadBatches: st.ReadaheadBatches,
			YoungEvictions:   st.YoungEvictions,
			OldEvictions:     st.OldEvictions,
			DecodeHits:       dec.Hits - decode0.Hits,
			DecodeMisses:     dec.Misses - decode0.Misses,
		})
		if err := fs.Close(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatReadPath renders the ablation as an aligned table.
func FormatReadPath(rows []ReadPathRow) string {
	var sb strings.Builder
	sb.WriteString("configuration                    µs/query  pages/query  reads/query  ra-batches  evictions(young/old)  decode hit/miss\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-32s %8.1f %12.1f %12.1f %11d %12d/%-8d %8d/%d\n",
			r.Name, r.NsPerQuery/1000, r.PagesPerQuery, r.ReadCallsPerQ,
			r.ReadaheadBatches, r.YoungEvictions, r.OldEvictions,
			r.DecodeHits, r.DecodeMisses)
	}
	return sb.String()
}
