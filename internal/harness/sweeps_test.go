package harness

import (
	"strings"
	"testing"
)

func TestRunSizeSweep(t *testing.T) {
	rows, err := RunSizeSweep(SizeSweepConfig{
		N:               800,
		AreaFracs:       []float64{0.0005, 0.02, 0.25},
		QueriesPerPoint: 3,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// T2 must win at every size and stay within a narrow band while the
	// R⁺-tree degrades (the Section 5 object-size claim).
	var t2Min, t2Max float64
	for i, r := range rows {
		if r.T2IO <= 0 || r.RPlusIO <= 0 {
			t.Fatalf("non-positive I/O in row %+v", r)
		}
		if r.T2IO >= r.RPlusIO {
			t.Errorf("T2 (%v) did not beat R+ (%v) at area %v", r.T2IO, r.RPlusIO, r.AreaFrac)
		}
		if i == 0 {
			t2Min, t2Max = r.T2IO, r.T2IO
		} else {
			if r.T2IO < t2Min {
				t2Min = r.T2IO
			}
			if r.T2IO > t2Max {
				t2Max = r.T2IO
			}
		}
	}
	if t2Max > 3*t2Min {
		t.Errorf("T2 I/O varies too much with object size: [%v, %v]", t2Min, t2Max)
	}
	out := FormatSizeSweep(rows)
	if !strings.Contains(out, "object area") || len(strings.Split(out, "\n")) < 4 {
		t.Fatalf("format:\n%s", out)
	}
}

func TestRunDimSweep(t *testing.T) {
	rows, err := RunDimSweep(DimSweepConfig{
		Dims:            []int{2, 3},
		N:               400,
		QueriesPerPoint: 3,
		Seed:            6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The Section 6 conjecture: per-query I/O roughly flat across d (the
	// index only ever touches single surface values).
	if rows[1].IOPerQuery > 3*rows[0].IOPerQuery {
		t.Errorf("I/O not flat across dimensions: %+v", rows)
	}
	// Space grows with the site count (3^{d−1} lattice).
	if rows[1].Pages <= rows[0].Pages {
		t.Errorf("pages must grow with sites: %+v", rows)
	}
	if rows[0].Sites != 3 || rows[1].Sites != 9 {
		t.Errorf("site counts: %+v", rows)
	}
	out := FormatDimSweep(rows)
	if !strings.Contains(out, "dim") {
		t.Fatalf("format:\n%s", out)
	}
}
