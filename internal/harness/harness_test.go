package harness

import (
	"strings"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/workload"
)

// quickCfg keeps harness tests fast: small cardinalities, few queries.
func quickCfg(kind constraint.QueryKind, size workload.SizeClass) Config {
	return Config{
		Ns:              []int{500, 4000},
		Ks:              []int{2, 3},
		Size:            size,
		Kind:            kind,
		QueriesPerPoint: 3,
		Seed:            42,
	}
}

func TestRunQueryFigureShape(t *testing.T) {
	fig, err := RunQueryFigure("fig8a-test", "EXIST small", quickCfg(constraint.EXIST, workload.Small))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 { // R+ plus two T2 series
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 {
			t.Fatalf("series %q has %d points", s.Label, len(s.Y))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %q has non-positive I/O %v", s.Label, y)
			}
		}
	}
	// Shape check: at fixed selectivity the answer grows with N, so every
	// structure's I/O must grow with N.
	for _, s := range fig.Series {
		if s.Y[1] <= s.Y[0] {
			t.Errorf("series %q did not grow with N: %v", s.Label, s.Y)
		}
	}
}

func TestT2BeatsRPlusOnPaperWorkload(t *testing.T) {
	// The paper's headline result (Figures 8 and 9): T2 needs fewer page
	// accesses than the R⁺-tree for both selection kinds; check it on a
	// scaled-down workload for every kind/size combination.
	for _, kind := range []constraint.QueryKind{constraint.EXIST, constraint.ALL} {
		for _, size := range []workload.SizeClass{workload.Small, workload.Medium} {
			cfg := quickCfg(kind, size)
			cfg.Ns = []int{1000}
			fig, err := RunQueryFigure("shape", "shape", cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep := fig.Shape()
			if rep.PointsTotal == 0 {
				t.Fatal("no comparison points")
			}
			if rep.PointsT2Wins < rep.PointsTotal {
				t.Errorf("%v/%v: T2 won only %d of %d points (min factor %.2f): \n%s",
					kind, size, rep.PointsT2Wins, rep.PointsTotal, rep.MinWinFactor, fig.Format())
			}
		}
	}
}

func TestRunSpaceFigure(t *testing.T) {
	cfg := quickCfg(constraint.EXIST, workload.Small)
	fig, err := RunSpaceFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Space grows with N and with k.
	k2, _ := fig.SeriesByLabel("T2 k=2")
	k3, _ := fig.SeriesByLabel("T2 k=3")
	for i := range k2.Y {
		if k3.Y[i] <= k2.Y[i] {
			t.Errorf("space must grow with k: k2=%v k3=%v", k2.Y, k3.Y)
		}
	}
	// The normalized ratio pages(T2,k)/(k·pages(R+)) must be roughly
	// k-independent (T2 space is linear in k — Theorem 3.1); its absolute
	// value depends on how much duplication the R⁺-tree suffers, which
	// EXPERIMENTS.md analyzes against the paper's 1.32 figure.
	ratios := fig.SpaceRatios([]int{2, 3})
	if len(ratios) != 2 || ratios[2] <= 0 || ratios[3] <= 0 {
		t.Fatalf("ratios = %v", ratios)
	}
	if rel := ratios[3] / ratios[2]; rel < 0.8 || rel > 1.25 {
		t.Errorf("normalized space ratio should be k-independent: %v", ratios)
	}
}

func TestFigureFormatAndCSV(t *testing.T) {
	fig := Figure{
		ID: "x", Title: "t", XLabel: "N", YLabel: "io",
		X: []int{1, 2},
		Series: []Series{
			{Label: "A", Y: []float64{1.5, 2.5}},
			{Label: "B", Y: []float64{3, 4}},
		},
	}
	txt := fig.Format()
	if !strings.Contains(txt, "A") || !strings.Contains(txt, "2.5") {
		t.Fatalf("Format:\n%s", txt)
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "N,A,B\n1,1.5,3\n") {
		t.Fatalf("CSV:\n%s", csv)
	}
	if _, ok := fig.SeriesByLabel("C"); ok {
		t.Fatal("missing series reported present")
	}
}
