package harness

import (
	"fmt"
	"strings"

	"dualcdb/internal/constraint"
	"dualcdb/internal/core"
	"dualcdb/internal/rplustree"
	"dualcdb/internal/workload"
)

// SizeSweepConfig parameterizes the object-size sweep experiment, which
// isolates the paper's qualitative claim behind Figures 8 vs 9: "the
// R⁺-tree performs better with small objects, whereas the behavior of
// technique T2 does not significantly change when the object size
// changes".
type SizeSweepConfig struct {
	// N is the relation cardinality (default 4000).
	N int
	// AreaFracs are the object-area fractions of the window swept over
	// (default 0.0002 … 0.3).
	AreaFracs []float64
	// K is the slope-set cardinality for T2 (default 3).
	K int
	// Kind is the selection type (default EXIST).
	Kind constraint.QueryKind
	// QueriesPerPoint (default 6) and the selectivity band (default
	// 0.10–0.15) follow the paper's mix.
	QueriesPerPoint int
	SelLo, SelHi    float64
	// Seed drives the generator.
	Seed int64
}

func (c *SizeSweepConfig) defaults() {
	if c.N <= 0 {
		c.N = 4000
	}
	if len(c.AreaFracs) == 0 {
		c.AreaFracs = []float64{0.0002, 0.001, 0.005, 0.02, 0.08, 0.3}
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.QueriesPerPoint <= 0 {
		c.QueriesPerPoint = 6
	}
	if c.SelLo <= 0 {
		c.SelLo, c.SelHi = 0.10, 0.15
	}
}

// SizeSweepRow is one swept size: average I/O per query per structure.
type SizeSweepRow struct {
	AreaFrac   float64
	RPlusIO    float64
	T2IO       float64
	RPlusPages int
	T2Pages    int
}

// RunSizeSweep measures both structures across object sizes at fixed N.
func RunSizeSweep(cfg SizeSweepConfig) ([]SizeSweepRow, error) {
	cfg.defaults()
	var rows []SizeSweepRow
	for i, frac := range cfg.AreaFracs {
		rel, err := workload.GenerateRelation(workload.Config{
			N: cfg.N, AreaLoFrac: frac * 0.8, AreaHiFrac: frac * 1.2,
			Seed: cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		queries, err := workload.GenerateQueries(rel, workload.QueryConfig{
			Count: cfg.QueriesPerPoint, Kind: cfg.Kind,
			SelectivityLo: cfg.SelLo, SelectivityHi: cfg.SelHi,
			Seed: cfg.Seed + 500 + int64(i),
		})
		if err != nil {
			return nil, err
		}
		rix, err := rplustree.Build(rel, rplustree.Options{PoolPages: 1 << 16})
		if err != nil {
			return nil, err
		}
		ix, err := core.Build(rel, core.Options{
			Slopes: core.EquiangularSlopes(cfg.K), Technique: core.T2, PoolPages: 1 << 16,
		})
		if err != nil {
			return nil, err
		}
		row := SizeSweepRow{AreaFrac: frac, RPlusPages: rix.Pages(), T2Pages: ix.Pages()}
		var rTotal, tTotal uint64
		for _, q := range queries {
			io, err := coldIO(rix.Pool(), func() error { _, err := rix.Query(q); return err })
			if err != nil {
				return nil, err
			}
			rTotal += io
			io, err = coldIO(ix.Pool(), func() error { _, err := ix.Query(q); return err })
			if err != nil {
				return nil, err
			}
			tTotal += io
		}
		row.RPlusIO = float64(rTotal) / float64(len(queries))
		row.T2IO = float64(tTotal) / float64(len(queries))
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSizeSweep renders the sweep as an aligned table.
func FormatSizeSweep(rows []SizeSweepRow) string {
	var sb strings.Builder
	sb.WriteString("object area   R+ pages/query  T2 pages/query    R+ pages    T2 pages\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%9.3f%%  %15.1f %15.1f %11d %11d\n",
			r.AreaFrac*100, r.RPlusIO, r.T2IO, r.RPlusPages, r.T2Pages)
	}
	return sb.String()
}
