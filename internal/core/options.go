// Package core implements the paper's contribution: dual-representation
// indexing of linear constraint databases for ALL/EXIST half-plane
// selections.
//
// For every slope a_i in a predefined set S, two B⁺-trees index the tuples:
// B_i^up over TOP^P(a_i) and B_i^down over BOT^P(a_i) (Section 3). Queries
// whose slope lies in S are answered exactly with one tree search and a
// one-directional leaf sweep. Queries with other slopes are approximated:
//
//   - Technique T1 (Section 4.1) rewrites the query into two app-queries
//     with slopes from S (Table 1 fixes their operators; an ALL query
//     becomes one ALL plus one EXIST app-query), executes both, and
//     refines away false hits. Results can contain duplicates.
//   - Technique T2 (Section 4.2–4.3) searches a single tree — the one for
//     the S-slope nearest the query slope — using per-leaf handicap values
//     to bound a second, disjoint sweep in the same tree. No duplicates;
//     false hits are removed by the same refinement step.
//
// Both techniques store tuples exactly (no geometry is approximated — only
// the query is), handle unbounded tuples via ±Inf surface values, and
// process ALL and EXIST selections uniformly.
package core

import (
	"fmt"
	"math"
	"sort"

	"dualcdb/internal/btree"
	"dualcdb/internal/geom"
	"dualcdb/internal/obs"
	"dualcdb/internal/pagestore"
)

// Technique selects how out-of-set query slopes are processed.
type Technique int

const (
	// T2 is the single-tree handicap technique of Section 4.2 (default).
	T2 Technique = iota
	// T1 is the two-app-query technique of Section 4.1.
	T1
	// RestrictedOnly rejects query slopes outside S (Section 3 only).
	RestrictedOnly
)

// String renders the technique name.
func (t Technique) String() string {
	switch t {
	case T1:
		return "T1"
	case RestrictedOnly:
		return "restricted"
	default:
		return "T2"
	}
}

// Options configures a 2-D dual index.
type Options struct {
	// Slopes is the predefined set S of angular coefficients. At least one;
	// at least two for T1/T2 approximation. Sorted internally.
	Slopes []float64
	// Technique picks the approximation technique for slopes outside S.
	Technique Technique
	// PageSize is the page size of the backing store in bytes (default
	// 1024, the paper's setting). Ignored when Pool is set.
	PageSize int
	// PoolPages is the buffer-pool capacity in frames (default 512).
	// Ignored when Pool is set.
	PoolPages int
	// PoolShards is the number of buffer-pool shards, rounded up to a
	// power of two. 0 (the default) selects nextPow2(GOMAXPROCS) so
	// concurrent queries don't serialize on one pool mutex; 1 keeps the
	// historical single-shard pool (one global LRU order). Ignored when
	// Pool is set.
	PoolShards int
	// BuildWorkers is the number of goroutines Build uses to bulk-load
	// the 2·k slope trees and fold handicaps (each worker owns whole
	// trees, so only buffer-pool shard locks contend). ≤ 1 builds
	// serially.
	BuildWorkers int
	// Pool optionally supplies a shared buffer pool (so several structures
	// can be compared on one store); when nil a MemStore-backed pool is
	// created from PageSize/PoolPages. Indexes on shared pools cannot be
	// persisted (no catalog page).
	Pool *pagestore.Pool
	// Store optionally supplies a dedicated page device (e.g. a
	// pagestore.FileStore for an on-disk database); ignored when Pool is
	// set. The store must be fresh — its page 1 becomes the catalog.
	Store pagestore.Store
	// FillFactor is the bulk-load leaf occupancy in (0,1]; default 0.9.
	FillFactor float64
	// PivotX is the x-coordinate of the point P shared by the two T1
	// app-query lines (Section 4.1 leaves the choice open; the center of
	// the data window is a good default).
	PivotX float64
	// OuterHalfWidth is the half-width of the two outer handicap strips
	// beyond min(S) and max(S). Query slopes farther out fall back to T1.
	// Default: half the largest gap between consecutive slopes (or 1.0
	// when S has a single element).
	OuterHalfWidth float64
	// IndexVertical adds a V^up/V^down tree pair over the tuples'
	// horizontal support values so that vertical selections Kind(x θ c) —
	// outside the dual transform, footnote 4 — run an exact tree sweep
	// instead of a scan. Costs two extra trees of space.
	IndexVertical bool
	// RebuildHandicapsEvery triggers an exact handicap recomputation after
	// this many deletions (conservative drift otherwise only costs I/O,
	// never correctness). 0 disables automatic rebuilds.
	RebuildHandicapsEvery int
	// PlainLRU restores the historical single-list LRU eviction in the
	// buffer pool instead of the scan-resistant midpoint LRU (useful as a
	// comparison baseline). Ignored when Pool is set.
	PlainLRU bool
	// NoDecodeCache disables the per-tree decoded-node cache, so every
	// leaf visit re-parses page bytes into fresh slices.
	NoDecodeCache bool
	// Readahead is the leaf-sweep readahead window: the number of sibling
	// leaves fetched per vectored batch read; ≤ 1 disables readahead (the
	// default, which keeps per-query PagesRead exactly the paper's page
	// accesses even for early-terminated sweeps).
	Readahead int
	// Observe attaches a metrics-and-tracing observer to every query this
	// index executes: per-path counters and latency histograms, stage
	// spans (routing, sweeps, dedup, refinement), a slow-query log and a
	// slow-trace ring. nil (the default) compiles to a handful of nil
	// checks on the query path — zero allocations, no atomics — which the
	// BenchmarkQueryBare/BenchmarkQueryObserved pair guards.
	Observe *obs.Observer
}

// treeConfig is the btree configuration every tree of the index shares,
// with the given handicap slots.
func (o *Options) treeConfig(kinds []btree.SlotKind) btree.Config {
	return btree.Config{
		HandicapKinds: kinds,
		FillFactor:    o.FillFactor,
		NoDecodeCache: o.NoDecodeCache,
		Readahead:     o.Readahead,
	}
}

// normalize validates the options and fills defaults, returning the sorted
// slope set.
func (o *Options) normalize() ([]float64, error) {
	if len(o.Slopes) == 0 {
		return nil, fmt.Errorf("core: empty slope set S")
	}
	s := append([]float64(nil), o.Slopes...)
	sort.Float64s(s)
	// Reject slopes closer than the geometric tolerance, not just exact
	// duplicates: two trees for indistinguishable slopes waste pages, and
	// T2's nearest-slope selection and handicap bounds divide by slope
	// differences that must stay well clear of Eps.
	for i := 1; i < len(s); i++ {
		if s[i]-s[i-1] <= geom.Eps {
			return nil, fmt.Errorf("core: slopes %g and %g in S are closer than the tolerance %g", s[i-1], s[i], geom.Eps)
		}
	}
	for _, a := range s {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, fmt.Errorf("core: invalid slope %v in S", a)
		}
	}
	if o.Technique != RestrictedOnly && len(s) < 2 {
		return nil, fmt.Errorf("core: techniques T1/T2 need at least two slopes, got %d", len(s))
	}
	if o.PageSize <= 0 {
		o.PageSize = pagestore.DefaultPageSize
	}
	if o.PoolPages <= 0 {
		o.PoolPages = 512
	}
	if o.FillFactor <= 0 || o.FillFactor > 1 {
		o.FillFactor = 0.9
	}
	if o.OuterHalfWidth <= 0 {
		if len(s) >= 2 {
			maxGap := 0.0
			for i := 1; i < len(s); i++ {
				if g := s[i] - s[i-1]; g > maxGap {
					maxGap = g
				}
			}
			o.OuterHalfWidth = maxGap / 2
		} else {
			o.OuterHalfWidth = 1.0
		}
	}
	return s, nil
}

// EquiangularSlopes returns k slopes spread as the tangents of k equally
// spaced angles in (−π/2, π/2) — a natural choice of S when query slopes
// are uniform in angle, as in the paper's workloads (k = 2..5 there).
func EquiangularSlopes(k int) []float64 {
	if k < 1 {
		return nil
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		ang := -math.Pi/2 + math.Pi*float64(i+1)/float64(k+1)
		out[i] = math.Tan(ang)
	}
	return out
}

// Handicap slot indices. Each tree carries four slots (Section 4.3: "each
// leaf node in B_i^up and B_i^down is extended with four handicap values").
//
// For B^up (keys TOP^P(a_i)):
//
//	slotLowPrev/slotLowNext  bound the downward second sweep of
//	                         EXIST(q(≥)) queries approximated from the
//	                         left/right neighbour strip (min of TOP(a_i)
//	                         over tuples routed by the strip max of TOP);
//	slotHighPrev/slotHighNext bound the upward second sweep of ALL(q(≤))
//	                         queries (max of TOP(a_i) over tuples routed
//	                         by the strip min of TOP).
//
// For B^down (keys BOT^P(a_i)) the same four slots serve ALL(q(≥)) (low
// slots, routed by strip max of BOT) and EXIST(q(≤)) (high slots, routed
// by strip min of BOT).
const (
	slotLowPrev = iota
	slotLowNext
	slotHighPrev
	slotHighNext
	numSlots
)
