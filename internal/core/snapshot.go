package core

import (
	"dualcdb/internal/btree"
	"dualcdb/internal/obs"
	"dualcdb/internal/pagestore"
)

// StatsSnapshot is the unified observability view of one index: its shape,
// the buffer-pool counters and frame residency, the decoded-node cache and
// tree-traversal counters, and — when an observer is attached — the
// per-path query metrics, stage latencies and slow traces. The struct
// marshals to the JSON served at /debug/stats by the debug server.
type StatsSnapshot struct {
	Tuples    int    `json:"tuples"`    // relation size
	Indexed   int    `json:"indexed"`   // satisfiable tuples in the trees
	Pages     int    `json:"pages"`     // total tree pages (Figure 10's space metric)
	Slopes    int    `json:"slopes"`    // |S|
	Technique string `json:"technique"` // approximation technique

	Pool        pagestore.Stats          `json:"pool"`
	Residency   pagestore.Residency      `json:"residency"`
	Snapshots   pagestore.SnapshotCensus `json:"snapshots"`
	MVCC        MVCCStats                `json:"mvcc"`
	DecodeCache btree.DecodeStats        `json:"decode_cache"`
	Sweeps      btree.SweepStats         `json:"sweeps"`

	Observer *obs.Snapshot `json:"observer,omitempty"`
}

// MVCCStats is the version/watermark health view of the MVCC layer: how
// far published state has run ahead of the oldest pinned snapshot, how
// many superseded pages the watermark is holding in memory, and how much
// copy-on-write and reclamation work commits have done in total.
type MVCCStats struct {
	// Version is the currently published commit version; Watermark is
	// the oldest version any active snapshot still pins (0 when none);
	// VersionLag is their difference while a snapshot is pinned — a
	// growing lag means a long-held snapshot is blocking reclamation.
	Version    uint64 `json:"version"`
	Watermark  uint64 `json:"watermark"`
	VersionLag uint64 `json:"version_lag"`
	// PinnedSnapshots counts live PinVersion references;
	// ReclaimBacklogPages counts superseded pages awaiting reclamation.
	PinnedSnapshots     int `json:"pinned_snapshots"`
	ReclaimBacklogPages int `json:"reclaim_backlog_pages"`
	// PagesCloned and PagesReclaimed are cumulative copy-on-write
	// clones and watermark-freed pages.
	PagesCloned    uint64 `json:"pages_cloned"`
	PagesReclaimed uint64 `json:"pages_reclaimed"`
	// ChainOverrides counts sibling-link override entries across the
	// published version's tree handles; it grows with COW churn since
	// the last Save flattened the chains.
	ChainOverrides int `json:"chain_overrides"`
}

// MVCCStats assembles the MVCC health view from the published root set
// and the pool's snapshot census. Safe concurrently with readers and
// writers — the root set is one atomic load and the census takes only
// the pool's snapshot mutex.
func (ix *Index) MVCCStats() MVCCStats {
	rs := ix.roots.Load()
	c := ix.pool.SnapshotCensus()
	m := MVCCStats{
		Version:             rs.version,
		Watermark:           c.Oldest,
		PinnedSnapshots:     c.Active,
		ReclaimBacklogPages: c.DeferredPages,
		PagesCloned:         ix.pool.CloneCount(),
		PagesReclaimed:      c.Reclaimed,
		ChainOverrides:      chainOverrideLen(rs),
	}
	if c.Active > 0 && rs.version > c.Oldest {
		m.VersionLag = rs.version - c.Oldest
	}
	return m
}

// chainOverrideLen sums the sibling-link override map sizes over the
// published root set's tree handles. Handles freeze their override maps
// at publication, so reading them is race-free against the writer.
func chainOverrideLen(rs *rootSet) int {
	n := 0
	count := func(t *btree.Tree) {
		ovn, ovp := t.ChainOverrides()
		n += len(ovn) + len(ovp)
	}
	for _, t := range rs.up {
		count(t)
	}
	for _, t := range rs.down {
		count(t)
	}
	if rs.vup != nil {
		count(rs.vup)
		count(rs.vdown)
	}
	return n
}

// SweepStats sums the descent and leaf-visit counters over every tree of
// the index (the vertical pair included).
func (ix *Index) SweepStats() btree.SweepStats {
	var s btree.SweepStats
	for _, t := range ix.up {
		s.Add(t.SweepStats())
	}
	for _, t := range ix.down {
		s.Add(t.SweepStats())
	}
	if ix.vup != nil {
		s.Add(ix.vup.SweepStats())
		s.Add(ix.vdown.SweepStats())
	}
	return s
}

// StatsSnapshot assembles the unified view. Safe to call concurrently
// with queries and commits: the index shape is read from the published
// root set (one atomic load), and every other source is an atomic
// counter, a per-shard census, or the observer's own lock-protected
// state.
func (ix *Index) StatsSnapshot() StatsSnapshot {
	rs := ix.roots.Load()
	return StatsSnapshot{
		Tuples:      rs.relLen(),
		Indexed:     len(rs.indexed),
		Pages:       ix.Pages(),
		Slopes:      len(ix.slopes),
		Technique:   ix.opt.Technique.String(),
		Pool:        ix.pool.Stats(),
		Residency:   ix.pool.Residency(),
		Snapshots:   ix.pool.SnapshotCensus(),
		MVCC:        ix.MVCCStats(),
		DecodeCache: ix.DecodeCacheStats(),
		Sweeps:      ix.SweepStats(),
		Observer:    ix.opt.Observe.ObserverSnapshot(),
	}
}

// SetObserver attaches an observer to (or, with nil, detaches it from) the
// index's query paths. Not synchronized with in-flight queries: attach or
// detach only while no queries run.
func (ix *Index) SetObserver(o *obs.Observer) {
	ix.opt.Observe = o
	ix.registerGauges()
}

// registerGauges bridges the storage-layer counters into the observer's
// registry as snapshot-time funcs, so /debug/metrics shows pool,
// decode-cache, readahead and sweep state next to the query metrics
// without mirroring every mutation into the registry.
func (ix *Index) registerGauges() {
	r := ix.opt.Observe.Registry()
	if r == nil {
		return
	}
	r.Func("pool.logical_reads", func() any { return ix.pool.Stats().LogicalReads })
	r.Func("pool.physical_reads", func() any { return ix.pool.Stats().PhysicalReads })
	r.Func("pool.writes", func() any { return ix.pool.Stats().Writes })
	r.Func("pool.evictions.young", func() any { return ix.pool.Stats().YoungEvictions })
	r.Func("pool.evictions.old", func() any { return ix.pool.Stats().OldEvictions })
	r.Func("pool.readahead.batches", func() any { return ix.pool.Stats().ReadaheadBatches })
	r.Func("pool.readahead.pages", func() any { return ix.pool.Stats().ReadaheadPages })
	r.Func("pool.residency", func() any { return ix.pool.Residency() })
	r.Func("pool.snapshots", func() any { return ix.pool.SnapshotCensus() })
	r.Func("mvcc", func() any { return ix.MVCCStats() })
	r.Func("decode_cache", func() any { return ix.DecodeCacheStats() })
	r.Func("sweeps", func() any { return ix.SweepStats() })
}

// Observer returns the attached observer (nil when observation is off).
func (ix *Index) Observer() *obs.Observer { return ix.opt.Observe }
