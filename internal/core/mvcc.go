package core

import (
	"errors"
	"sync/atomic"
	"time"

	"dualcdb/internal/btree"
	"dualcdb/internal/constraint"
	"dualcdb/internal/pagestore"
)

// MVCC root sets and reader snapshots.
//
// Every query runs against a rootSet: one immutable, version-stamped view
// of the whole index — frozen read handles for all 2k trees (plus the
// vertical pair), the indexed-tuple set, and the relation contents. The
// current rootSet is published through ix.roots with a single atomic
// pointer swap, so readers acquire a consistent view with one load and no
// lock; writers batch their mutations into a Commit (commit.go) that
// shadows shared pages copy-on-write and publishes the next version.
//
// A Snapshot pins a rootSet's version in the buffer pool's snapshot
// census, which holds back reclamation of any page a commit supersedes
// at a later version — the min-referenced-version watermark in
// pagestore/snapshot.go. Acquire uses pin-then-validate: pin the loaded
// version, then re-load; if the pointer moved, a commit may already have
// queued that version's superseded pages before the pin landed, so drop
// the pin and retry. When the second load still returns the same rootSet,
// the next commit's DeferFrees necessarily observes the pin (both run
// under the pool's snapshot mutex, and the commit publishes before it
// defers), so every page this snapshot can reach stays allocated until
// Release.

// rootSet is one published version of the index. All fields are immutable
// after publication; writers build the next rootSet rather than touching
// a published one.
type rootSet struct {
	version uint64

	up, down   []*btree.Tree // frozen read handles, one pair per slope
	vup, vdown *btree.Tree   // optional vertical pair (nil when off)

	// indexed is the satisfiable-tuple set of this version;
	// deletesSinceRebuild is the handicap-staleness counter carried from
	// commit to commit. Folding both into the rootSet is what makes them
	// readable without a lock: a reader sees the pair that matches the
	// trees it sweeps, never a torn intermediate.
	indexed             map[constraint.TupleID]bool
	deletesSinceRebuild int

	// tuples freezes the relation: slot id−1 holds the tuple with that id
	// (nil = deleted or never assigned); live counts the non-nil slots.
	// Tuples are immutable once inserted, so versions share the pointers.
	tuples []*constraint.Tuple
	live   int
}

// tree returns the B⁺-tree serving queries of q's shape at slope index i:
// B^up for EXIST(≥)/ALL(≤), B^down for ALL(≥)/EXIST(≤) (Section 3).
func (rs *rootSet) tree(i int, q constraint.Query) *btree.Tree {
	if q.UsesTop() {
		return rs.up[i]
	}
	return rs.down[i]
}

// relGet resolves a tuple id against this version of the relation.
func (rs *rootSet) relGet(id constraint.TupleID) (*constraint.Tuple, error) {
	i := int(id) - 1
	if i < 0 || i >= len(rs.tuples) || rs.tuples[i] == nil {
		return nil, constraint.ErrNotFound
	}
	return rs.tuples[i], nil
}

// relScan calls fn for every tuple of this version in id order; a false
// return stops the scan early.
func (rs *rootSet) relScan(fn func(*constraint.Tuple) bool) {
	for _, t := range rs.tuples {
		if t != nil && !fn(t) {
			return
		}
	}
}

// relLen returns the relation size at this version.
func (rs *rootSet) relLen() int { return rs.live }

// handleOf freezes a live tree's current state as an immutable read
// handle for the rootSet being published.
func handleOf(t *btree.Tree) *btree.Tree {
	ovn, ovp := t.ChainOverrides()
	return t.Handle(t.Meta(), ovn, ovp)
}

// relSnapshot freezes the relation into the dense-by-id slice a rootSet
// carries. Used for the initial publish (New/Build/Open); commits derive
// the next slice incrementally from the base version instead.
func relSnapshot(rel *constraint.Relation) ([]*constraint.Tuple, int) {
	maxID := constraint.TupleID(0)
	rel.Scan(func(t *constraint.Tuple) bool {
		if t.ID() > maxID {
			maxID = t.ID()
		}
		return true
	})
	ts := make([]*constraint.Tuple, maxID)
	live := 0
	rel.Scan(func(t *constraint.Tuple) bool {
		ts[t.ID()-1] = t
		live++
		return true
	})
	return ts, live
}

// publishLocked freezes the live trees and the given relation view into a
// new rootSet and publishes it. Requires writeMu (or a not-yet-shared
// index during construction).
func (ix *Index) publishLocked(version uint64, indexed map[constraint.TupleID]bool,
	deletes int, tuples []*constraint.Tuple, live int) *rootSet {
	rs := &rootSet{
		version:             version,
		up:                  make([]*btree.Tree, len(ix.up)),
		down:                make([]*btree.Tree, len(ix.down)),
		indexed:             indexed,
		deletesSinceRebuild: deletes,
		tuples:              tuples,
		live:                live,
	}
	for i, t := range ix.up {
		rs.up[i] = handleOf(t)
	}
	for i, t := range ix.down {
		rs.down[i] = handleOf(t)
	}
	if ix.vup != nil {
		rs.vup = handleOf(ix.vup)
		rs.vdown = handleOf(ix.vdown)
	}
	ix.roots.Store(rs)
	return rs
}

// republishLocked re-freezes the live trees and relation under the
// current version's bookkeeping — the initial publish and the publish
// after bulk operations that mutate trees in place (Build, Open).
func (ix *Index) republishLocked(version uint64, indexed map[constraint.TupleID]bool, deletes int) *rootSet {
	tuples, live := relSnapshot(ix.rel)
	return ix.publishLocked(version, indexed, deletes, tuples, live)
}

// errSnapshotReleased is returned by every query method of a Snapshot
// after Release.
var errSnapshotReleased = errors.New("core: use of released snapshot")

// Snapshot is a pinned, immutable view of the index: every query it runs
// sees exactly the tuples and tree contents of one committed version,
// regardless of concurrent commits. A Snapshot holds superseded pages of
// later commits in memory until Release — release it promptly (the
// dualvet snapleak analyzer flags paths that don't).
type Snapshot struct {
	ix       *Index
	rs       *rootSet
	released atomic.Bool
	// begun feeds the observer's snapshot-age histogram at Release; set
	// only when an observer is attached (the per-call pinRoots path in
	// Query and friends never pays for it).
	begun time.Time
}

// Snapshot pins the current version for reading. The caller must Release
// it; queries on the index's own methods (Query, QueryBatch, …) manage a
// per-call pin internally.
func (ix *Index) Snapshot() *Snapshot {
	s := &Snapshot{ix: ix, rs: ix.pinRoots()}
	if ix.opt.Observe != nil {
		s.begun = time.Now()
	}
	return s
}

// pinRoots pins the current version and returns its rootSet. The per-call
// read path (Index.Query and friends) uses it directly so a query costs no
// allocation beyond its execCtx — keeping the read-only QueryFlat floor of
// the pre-MVCC layout. Callers must pair it with unpinRoots.
func (ix *Index) pinRoots() *rootSet {
	for {
		rs := ix.roots.Load()
		ix.pool.PinVersion(rs.version)
		if ix.roots.Load() == rs {
			return rs
		}
		// A commit published between the load and the pin: its superseded
		// pages may have been queued (and even freed) before our pin
		// landed, so this pin protects nothing — retry on the new root.
		ix.pool.UnpinVersion(rs.version)
	}
}

func (ix *Index) unpinRoots(rs *rootSet) { ix.pool.UnpinVersion(rs.version) }

// Release unpins the snapshot, allowing pages superseded after its
// version to be reclaimed. Idempotent.
func (s *Snapshot) Release() {
	if s.released.Swap(true) {
		return
	}
	s.ix.pool.UnpinVersion(s.rs.version)
	if o := s.ix.opt.Observe; o != nil && !s.begun.IsZero() {
		o.RecordSnapshotAge(time.Since(s.begun))
	}
}

// Version returns the commit version this snapshot pins (1 is the
// freshly created index).
func (s *Snapshot) Version() uint64 { return s.rs.version }

// Len returns the number of indexed (satisfiable) tuples at this version.
func (s *Snapshot) Len() int { return len(s.rs.indexed) }

// Tuples returns the relation size at this version.
func (s *Snapshot) Tuples() int { return s.rs.relLen() }

// guard rejects use after Release.
func (s *Snapshot) guard() error {
	if s.released.Load() {
		return errSnapshotReleased
	}
	return nil
}

// execCtxFor builds the per-query execution state bound to one pinned
// version.
func (ix *Index) execCtxFor(rs *rootSet) *execCtx {
	return &execCtx{rs: rs, rc: &pagestore.ReadCounter{}, obs: ix.opt.Observe}
}

// execCtx builds the per-query execution state bound to this snapshot.
func (s *Snapshot) execCtx() *execCtx { return s.ix.execCtxFor(s.rs) }

// Query executes an ALL or EXIST half-plane selection against this
// snapshot's version.
func (s *Snapshot) Query(q constraint.Query) (Result, error) {
	if err := s.guard(); err != nil {
		return Result{}, err
	}
	return s.ix.query(q, s.execCtx())
}
