package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"dualcdb/internal/btree"
	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
	"dualcdb/internal/obs"
	"dualcdb/internal/pagestore"
)

// QueryStats describes how one selection was executed.
type QueryStats struct {
	// Path is the execution route: "restricted", "t1", "t2", or
	// "t1(fallback)" when a T2 query slope fell outside every handicap
	// strip.
	Path string
	// Candidates is the number of tuple references retrieved from the
	// trees before refinement (T1 counts duplicates once each).
	Candidates int
	// Results is the number of tuples in the final answer.
	Results int
	// FalseHits is the number of candidates discarded by refinement.
	FalseHits int
	// Duplicates is the number of tuple references retrieved more than
	// once (only T1 can produce them; T2 is duplicate-free by design).
	Duplicates int
	// LeavesSwept is the number of leaf pages visited across all sweeps.
	LeavesSwept int
	// PagesRead is the number of physical page reads this query's own
	// tree traversals triggered, counted exactly via a per-query read
	// counter (never a delta on the shared pool counters, which would be
	// racy under concurrent queries). With a cold buffer pool and the
	// query running alone it equals the number of distinct pages touched;
	// in a concurrent batch over a warm shared pool it reports the misses
	// this query itself faulted in — pages another in-flight query loaded
	// first are, by design, charged to that query.
	PagesRead uint64
}

// Result is a selection answer: matching tuple ids in ascending order plus
// execution statistics.
type Result struct {
	IDs   []constraint.TupleID
	Stats QueryStats
}

// AppQuery is one of the approximation queries T1 rewrites a selection
// into: its slope belongs to S, so it runs on the restricted structure.
type AppQuery struct {
	Query constraint.Query
	// SlopeIndex is the position of the app-query slope in sorted S.
	SlopeIndex int
}

// execCtx carries one query's execution state: the pinned root set it
// reads, its exact I/O counter and the intra-query parallelism knobs
// QueryBatch enables.
type execCtx struct {
	// rs is the version this query executes against — every tree sweep
	// and every relation lookup resolves through it, so a query is
	// consistent even while commits land concurrently.
	rs *rootSet
	rc *pagestore.ReadCounter
	// parallelSweeps runs T1's two app-query sweeps concurrently (they
	// visit independent trees).
	parallelSweeps bool
	// refineWorkers fans refinement across this many goroutines once a
	// candidate set reaches refineThreshold (0/1 disables).
	refineWorkers   int
	refineThreshold int
	// bufs, when non-nil, recycles candidate slices across the batch.
	bufs *sync.Pool
	// obs is the attached observer (nil: observation off). tr is the
	// active query trace; when a compound selection (query tuple, line
	// stab) owns the trace, its sub-queries find tr already set and record
	// their stage spans into it instead of opening traces of their own.
	obs *obs.Observer
	tr  *obs.QueryTrace
}

// span opens a stage span when this execution is traced. On the bare
// path it costs one nil check and returns the zero timer, whose End is
// a no-op — no allocation, no atomic traffic.
func (ec *execCtx) span(stage obs.Stage) obs.SpanTimer {
	return ec.spanRC(stage, ec.rc)
}

// spanRC is span against an explicit read counter. T1's parallel sweep
// goroutines pass private counters so concurrent spans never observe
// each other's reads; everything else passes ec.rc through span().
func (ec *execCtx) spanRC(stage obs.Stage, rc *pagestore.ReadCounter) obs.SpanTimer {
	if ec.tr == nil {
		return obs.SpanTimer{}
	}
	return ec.tr.Begin(stage, rc.Physical.Load())
}

// endSpan closes sp, attributing the physical reads since span() and
// the stage's payload size. Span page attribution is exact on every
// path: sequential stages share ec.rc, and T1's parallel sweeps charge
// their reads to per-goroutine counters (merged into ec.rc afterwards),
// so the per-stage pages always partition the query's exact total.
func (ec *execCtx) endSpan(sp obs.SpanTimer, items int) {
	ec.endSpanRC(sp, ec.rc, items)
}

// endSpanRC is endSpan against the counter the span was opened on. The
// close is unconditional — a zero timer's End is a no-op, so every span
// handed in reaches End on every path; the bare (untraced) path only
// skips the counter read, keeping it free of atomic traffic.
func (ec *execCtx) endSpanRC(sp obs.SpanTimer, rc *pagestore.ReadCounter, items int) {
	if ec.tr == nil {
		sp.End(0, items)
		return
	}
	sp.End(rc.Physical.Load(), items)
}

// getBuf returns a zero-length candidate slice, reusing pooled capacity.
func (ec *execCtx) getBuf() []uint32 {
	if ec.bufs != nil {
		if v := ec.bufs.Get(); v != nil {
			return (*v.(*[]uint32))[:0]
		}
	}
	return nil
}

// putBuf returns a candidate slice to the pool once refinement is done
// with it.
func (ec *execCtx) putBuf(s []uint32) {
	if ec.bufs != nil && cap(s) > 0 {
		ec.bufs.Put(&s)
	}
}

// Query executes an ALL or EXIST half-plane selection against the
// current version (a per-call snapshot is pinned and released
// internally; use Snapshot to run several queries on one version).
func (ix *Index) Query(q constraint.Query) (Result, error) {
	rs := ix.pinRoots()
	defer ix.unpinRoots(rs)
	return ix.query(q, ix.execCtxFor(rs))
}

// queryInfo maps a finished query's stats onto the observer's report.
func queryInfo(st QueryStats, err error) obs.QueryInfo {
	return obs.QueryInfo{
		Path:        st.Path,
		PagesRead:   st.PagesRead,
		Candidates:  st.Candidates,
		Results:     st.Results,
		FalseHits:   st.FalseHits,
		Duplicates:  st.Duplicates,
		LeavesSwept: st.LeavesSwept,
		Err:         err,
	}
}

// query is the shared execution core of Query and QueryBatch. When an
// observer is attached and no trace is active yet, this call owns the
// query's trace; sub-selections sharing the execCtx (compound queries)
// record into the already-open trace instead.
func (ix *Index) query(q constraint.Query, ec *execCtx) (Result, error) {
	if ec.obs != nil && ec.tr == nil {
		ec.tr = ec.obs.StartQuery(q.String())
		res, err := ix.queryExec(q, ec)
		ec.obs.FinishQuery(ec.tr, queryInfo(res.Stats, err))
		ec.tr = nil
		return res, err
	}
	return ix.queryExec(q, ec)
}

// queryExec validates, routes and dispatches one half-plane selection.
func (ix *Index) queryExec(q constraint.Query, ec *execCtx) (Result, error) {
	if q.Dim() != 2 {
		return Result{}, fmt.Errorf("core: query dimension %d on a 2-D index", q.Dim())
	}
	a := q.Slope[0]
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return Result{}, fmt.Errorf("core: invalid query slope %v", a)
	}
	sp := ec.span(obs.StageRoute)
	i, exact := ix.nearestSlope(a)
	ec.endSpan(sp, 0)

	var res Result
	var err error
	switch {
	case exact:
		res, err = ix.runRestricted(i, q, ec)
	case ix.opt.Technique == RestrictedOnly:
		return Result{}, fmt.Errorf("core: slope %g not in S and technique is restricted-only", a)
	case ix.opt.Technique == T1:
		res, err = ix.runT1(q, "t1", ec)
	default: // T2
		leftLo, rightHi := ix.stripBounds(i)
		if a >= leftLo && a <= rightHi {
			res, err = ix.runT2(i, q, ec)
		} else {
			res, err = ix.runT1(q, "t1(fallback)", ec)
		}
	}
	if err != nil {
		return Result{}, err
	}
	res.Stats.PagesRead = ec.rc.Physical.Load()
	return res, nil
}

// collectRestricted gathers the candidate tuple ids for a query whose
// slope is exactly S[i]: one search plus a one-directional leaf sweep.
// Candidates are appended to cands (which may carry pooled capacity); page
// reads are charged to rc.
//
// Boundary semantics: candidate filters tolerate ±geom.Eps around the
// intercept (matching the Eps-tolerant refinement predicate), and the
// sweep therefore also *starts* one tolerance before b — a key within Eps
// of b can be stored in the leaf preceding the one that owns b, and a
// sweep starting at b would never visit it.
func (rs *rootSet) collectRestricted(i int, q constraint.Query, st *QueryStats, rc *pagestore.ReadCounter, cands []uint32) ([]uint32, error) {
	tr := rs.tree(i, q)
	b := q.Intercept
	var err error
	if q.SweepsUp() {
		err = tr.VisitLeavesAscTracked(b-geom.Eps, rc, func(lv btree.LeafView) bool {
			st.LeavesSwept++
			for i, n := 0, lv.Len(); i < n; i++ {
				if lv.Key(i) >= b-geom.Eps {
					cands = append(cands, lv.TID(i))
				}
			}
			return true
		})
	} else {
		err = tr.VisitLeavesDescTracked(b+geom.Eps, rc, func(lv btree.LeafView) bool {
			st.LeavesSwept++
			for i, n := 0, lv.Len(); i < n; i++ {
				if lv.Key(i) <= b+geom.Eps {
					cands = append(cands, lv.TID(i))
				}
			}
			return true
		})
	}
	return cands, err
}

// runRestricted answers a query whose slope is in S (Section 3).
func (ix *Index) runRestricted(i int, q constraint.Query, ec *execCtx) (Result, error) {
	st := QueryStats{Path: "restricted"}
	sp := ec.span(obs.StageSweep)
	cands, err := ec.rs.collectRestricted(i, q, &st, ec.rc, ec.getBuf())
	ec.endSpan(sp, len(cands))
	if err != nil {
		return Result{}, err
	}
	res, err := ix.refine(q, cands, st, ec)
	ec.putBuf(cands)
	return res, err
}

// PlanT1 rewrites a query with slope a ∉ S into the two app-queries of
// Section 4.1. The slopes are the S-members nearest to a; the operators
// follow Table 1; both lines pass through the pivot point
// P = (pivotX, a·pivotX + b); an original ALL query becomes one ALL app-
// query (on the θ-preserving line) plus one EXIST app-query.
func PlanT1(q constraint.Query, slopes []float64, pivotX float64) ([2]AppQuery, error) {
	if len(slopes) < 2 {
		return [2]AppQuery{}, fmt.Errorf("core: T1 needs |S| ≥ 2")
	}
	a, b := q.Slope[0], q.Intercept
	j := sort.SearchFloat64s(slopes, a)
	var i1, i2 int // slope indices for q1, q2
	var op1, op2 geom.Op
	switch {
	case j == 0:
		// a < every slope (Table 1 row "a < a1, a < a2"): θ on the nearest
		// (smallest) slope, ¬θ on the second smallest.
		i1, i2 = 0, 1
		op1, op2 = q.Op, q.Op.Negate()
	case j == len(slopes):
		// a > every slope (row "a1 < a, a2 < a"): θ on the nearest
		// (largest) slope, ¬θ on the second largest.
		i1, i2 = len(slopes)-1, len(slopes)-2
		op1, op2 = q.Op, q.Op.Negate()
	default:
		// a1 < a < a2: both app-queries keep θ.
		i1, i2 = j-1, j
		op1, op2 = q.Op, q.Op
	}
	// Both lines pass through P on the query line.
	py := a*pivotX + b
	b1 := py - slopes[i1]*pivotX
	b2 := py - slopes[i2]*pivotX
	k1, k2 := q.Kind, q.Kind
	if q.Kind == constraint.ALL {
		// Two ALL app-queries can miss results (Figure 4): keep ALL on the
		// θ-preserving nearest line, relax the other to EXIST.
		k2 = constraint.EXIST
	}
	return [2]AppQuery{
		{Query: constraint.Query2(k1, slopes[i1], b1, op1), SlopeIndex: i1},
		{Query: constraint.Query2(k2, slopes[i2], b2, op2), SlopeIndex: i2},
	}, nil
}

// runT1 executes the two-app-query technique and refines against the
// original query. The two app-queries sweep independent trees, so with
// ec.parallelSweeps they run concurrently, each with its own stats and
// its own ReadCounter (merged into the shared per-query counter after
// the join) so per-stage page attribution stays exact.
func (ix *Index) runT1(q constraint.Query, path string, ec *execCtx) (Result, error) {
	sp := ec.span(obs.StageRoute)
	plan, err := PlanT1(q, ix.slopes, ix.opt.PivotX)
	ec.endSpan(sp, 0)
	if err != nil {
		return Result{}, err
	}
	st := QueryStats{Path: path}
	var sweeps [2]struct {
		st    QueryStats
		cands []uint32
		err   error
	}
	if ec.parallelSweeps {
		// Each goroutine charges its reads to a private counter so the
		// two concurrent sweep spans don't see each other's page faults;
		// the privates merge into the query counter after the join.
		var srcs [2]pagestore.ReadCounter
		var wg sync.WaitGroup
		for s := range plan {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				src := &srcs[s]
				sw := ec.spanRC(obs.StageSweep, src)
				sweeps[s].cands, sweeps[s].err = ec.rs.collectRestricted(
					plan[s].SlopeIndex, plan[s].Query, &sweeps[s].st, src, ec.getBuf())
				ec.endSpanRC(sw, src, len(sweeps[s].cands))
			}(s)
		}
		wg.Wait()
		for s := range srcs {
			ec.rc.Logical.Add(srcs[s].Logical.Load())
			ec.rc.Physical.Add(srcs[s].Physical.Load())
		}
	} else {
		for s := range plan {
			sw := ec.span(obs.StageSweep)
			sweeps[s].cands, sweeps[s].err = ec.rs.collectRestricted(
				plan[s].SlopeIndex, plan[s].Query, &sweeps[s].st, ec.rc, ec.getBuf())
			ec.endSpan(sw, len(sweeps[s].cands))
		}
	}
	for s := range sweeps {
		if sweeps[s].err != nil {
			return Result{}, sweeps[s].err
		}
		st.LeavesSwept += sweeps[s].st.LeavesSwept
	}
	// Deduplicate before refinement; Candidates still counts every
	// retrieved reference (the paper's T1/T2 comparison is about exactly
	// this redundancy). Pre-sizing seen to the total reference count
	// avoids rehashing on the hot path.
	dd := ec.span(obs.StageDedup)
	total := len(sweeps[0].cands) + len(sweeps[1].cands)
	st.Candidates = total
	seen := make(map[uint32]int, total)
	for s := range sweeps {
		for _, tid := range sweeps[s].cands {
			seen[tid]++
		}
	}
	for _, n := range seen {
		if n > 1 {
			st.Duplicates += n - 1
		}
	}
	uniq := ec.getBuf()
	if uniq == nil {
		uniq = make([]uint32, 0, len(seen))
	}
	for tid := range seen {
		uniq = append(uniq, tid)
	}
	ec.endSpan(dd, st.Duplicates)
	res, err := ix.refineKeepCandidates(q, uniq, st, ec)
	ec.putBuf(uniq)
	ec.putBuf(sweeps[0].cands)
	ec.putBuf(sweeps[1].cands)
	return res, err
}

// runT2 executes the single-tree handicap technique of Section 4.2/4.3.
func (ix *Index) runT2(i int, q constraint.Query, ec *execCtx) (Result, error) {
	st := QueryStats{Path: "t2"}
	tr := ec.rs.tree(i, q)
	a, b := q.Slope[0], q.Intercept
	right := a >= ix.slopes[i]

	cands := ec.getBuf()
	if q.SweepsUp() {
		slot := slotLowPrev
		if right {
			slot = slotLowNext
		}
		// First sweep: upward from one tolerance below the query intercept
		// (the same Eps-tolerant boundary convention as collectRestricted),
		// collecting every key ≥ b−Eps and tracking the lowest handicap of
		// the visited leaves.
		low := math.Inf(1)
		sw := ec.span(obs.StageSweep)
		err := tr.VisitLeavesAscTracked(b-geom.Eps, ec.rc, func(lv btree.LeafView) bool {
			st.LeavesSwept++
			if h := lv.Handicap(slot); h < low {
				low = h
			}
			for i, n := 0, lv.Len(); i < n; i++ {
				if lv.Key(i) >= b-geom.Eps {
					cands = append(cands, lv.TID(i))
				}
			}
			return true
		})
		ec.endSpan(sw, len(cands))
		if err != nil {
			return Result{}, err
		}
		// Second sweep: downward from b to low(q); keys in [low, b−Eps) —
		// the exact complement of the first sweep's filter, so the two
		// sweeps stay disjoint and no duplicates arise.
		if low < b-geom.Eps {
			n1 := len(cands)
			sw2 := ec.span(obs.StageSweepSecond)
			err = tr.VisitLeavesDescTracked(b, ec.rc, func(lv btree.LeafView) bool {
				st.LeavesSwept++
				done := false
				for i, n := 0, lv.Len(); i < n; i++ {
					if lv.Key(i) >= b-geom.Eps {
						continue
					}
					if lv.Key(i) < low-geom.Eps {
						done = true
						continue
					}
					cands = append(cands, lv.TID(i))
				}
				return !done
			})
			ec.endSpan(sw2, len(cands)-n1)
			if err != nil {
				return Result{}, err
			}
		}
	} else {
		slot := slotHighPrev
		if right {
			slot = slotHighNext
		}
		high := math.Inf(-1)
		sw := ec.span(obs.StageSweep)
		err := tr.VisitLeavesDescTracked(b+geom.Eps, ec.rc, func(lv btree.LeafView) bool {
			st.LeavesSwept++
			if h := lv.Handicap(slot); h > high {
				high = h
			}
			for i, n := 0, lv.Len(); i < n; i++ {
				if lv.Key(i) <= b+geom.Eps {
					cands = append(cands, lv.TID(i))
				}
			}
			return true
		})
		ec.endSpan(sw, len(cands))
		if err != nil {
			return Result{}, err
		}
		if high > b+geom.Eps {
			n1 := len(cands)
			sw2 := ec.span(obs.StageSweepSecond)
			err = tr.VisitLeavesAscTracked(b, ec.rc, func(lv btree.LeafView) bool {
				st.LeavesSwept++
				done := false
				for i, n := 0, lv.Len(); i < n; i++ {
					if lv.Key(i) <= b+geom.Eps {
						continue
					}
					if lv.Key(i) > high+geom.Eps {
						done = true
						continue
					}
					cands = append(cands, lv.TID(i))
				}
				return !done
			})
			ec.endSpan(sw2, len(cands)-n1)
			if err != nil {
				return Result{}, err
			}
		}
	}
	res, err := ix.refine(q, cands, st, ec)
	ec.putBuf(cands)
	return res, err
}

// refine filters candidates through the exact Proposition 2.2 predicate.
func (ix *Index) refine(q constraint.Query, cands []uint32, st QueryStats, ec *execCtx) (Result, error) {
	st.Candidates = len(cands)
	return ix.refineKeepCandidates(q, cands, st, ec)
}

// refineKeepCandidates is refine with st.Candidates already set by the
// caller (T1 counts duplicated references before deduplication). Above
// ec.refineThreshold candidates the predicate evaluation fans out across
// ec.refineWorkers goroutines — Tuple extensions are sync.Once-cached and
// Matches is read-only, so chunks are independent.
func (ix *Index) refineKeepCandidates(q constraint.Query, cands []uint32, st QueryStats, ec *execCtx) (Result, error) {
	sp := ec.span(obs.StageRefine)
	res, err := ix.refineExec(q, cands, st, ec)
	ec.endSpan(sp, len(cands))
	return res, err
}

// refineExec is the refinement body, split out so the observation span
// wrapper above stays branch-free on the unobserved path.
func (ix *Index) refineExec(q constraint.Query, cands []uint32, st QueryStats, ec *execCtx) (Result, error) {
	workers := ec.refineWorkers
	if workers > 1 && len(cands) >= ec.refineThreshold && ec.refineThreshold > 0 {
		return refineParallel(ec.rs, q, cands, st, workers)
	}
	ids := make([]constraint.TupleID, 0, len(cands))
	for _, tid := range cands {
		t, err := ec.rs.relGet(constraint.TupleID(tid))
		if err != nil {
			return Result{}, fmt.Errorf("core: candidate %d not in relation: %w", tid, err)
		}
		ok, err := q.Matches(t)
		if err != nil {
			return Result{}, err
		}
		if ok {
			ids = append(ids, constraint.TupleID(tid))
		} else {
			st.FalseHits++
		}
	}
	slices.Sort(ids)
	st.Results = len(ids)
	return Result{IDs: ids, Stats: st}, nil
}

// refineParallel splits the candidate set into contiguous chunks, refines
// each on its own goroutine and merges the per-chunk answers. The final
// sort makes the result identical to sequential refinement.
func refineParallel(rs *rootSet, q constraint.Query, cands []uint32, st QueryStats, workers int) (Result, error) {
	if workers > len(cands) {
		workers = len(cands)
	}
	type chunkOut struct {
		ids       []constraint.TupleID
		falseHits int
		err       error
	}
	outs := make([]chunkOut, workers)
	var wg sync.WaitGroup
	per := (len(cands) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			out := &outs[w]
			out.ids = make([]constraint.TupleID, 0, hi-lo)
			for _, tid := range cands[lo:hi] {
				t, err := rs.relGet(constraint.TupleID(tid))
				if err != nil {
					out.err = fmt.Errorf("core: candidate %d not in relation: %w", tid, err)
					return
				}
				ok, err := q.Matches(t)
				if err != nil {
					out.err = err
					return
				}
				if ok {
					out.ids = append(out.ids, constraint.TupleID(tid))
				} else {
					out.falseHits++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	ids := make([]constraint.TupleID, 0, len(cands))
	for w := range outs {
		if outs[w].err != nil {
			return Result{}, outs[w].err
		}
		ids = append(ids, outs[w].ids...)
		st.FalseHits += outs[w].falseHits
	}
	slices.Sort(ids)
	st.Results = len(ids)
	return Result{IDs: ids, Stats: st}, nil
}
