package core

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"dualcdb/internal/btree"
	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
	"dualcdb/internal/pagestore"
)

// Index is the 2-D dual-representation index over a generalized relation:
// 2·k B⁺-trees (one TOP tree and one BOT tree per slope in S) plus the
// handicap metadata of technique T2.
//
// The index holds a reference to the relation it indexes; the relation
// supplies tuple geometry for handicap computation and for the refinement
// step. Mutate the relation only through the index (Insert/Delete) once it
// is built.
type Index struct {
	rel    *constraint.Relation
	opt    Options
	slopes []float64
	pool   *pagestore.Pool
	// up/down hold per slope the TOP^P(a_i) / BOT^P(a_i) trees.
	up   []*btree.Tree //dualvet:guarded=writeMu
	down []*btree.Tree //dualvet:guarded=writeMu
	// Optional vertical pair (footnote 4 / Options.IndexVertical): supX
	// and infX values for x θ c selections.
	vup   *btree.Tree //dualvet:guarded=writeMu
	vdown *btree.Tree //dualvet:guarded=writeMu

	// roots is the current published rootSet (mvcc.go): readers load it
	// with one atomic pointer read and never lock. writeMu serializes
	// writers; the live trees above are the writer's working set and are
	// only mutated under it (copy-on-write, so published versions are
	// never dirtied). The indexed-tuple set and the handicap-staleness
	// counter live inside the rootSet, versioned with the trees.
	roots   atomic.Pointer[rootSet]
	writeMu sync.Mutex

	// Persistence bookkeeping (see persist.go). catalog is the catalog
	// page (InvalidPage when the index shares a pool and cannot persist);
	// tupleChain heads the serialized-relation page chain after a Save.
	catalog    pagestore.PageID
	tupleChain pagestore.PageID
	dataPages  int
}

// New creates an empty dual index over rel with the given options.
func New(rel *constraint.Relation, opt Options) (*Index, error) {
	if rel.Dim() != 2 {
		return nil, fmt.Errorf("core: Index is 2-dimensional; use NewD for dimension %d", rel.Dim())
	}
	slopes, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	pool := opt.Pool
	owned := pool == nil
	if owned {
		store := opt.Store
		if store == nil {
			store = pagestore.NewMemStore(opt.PageSize)
		}
		pool = pagestore.NewPoolWithOptions(store, pagestore.PoolOptions{
			Capacity: opt.PoolPages,
			Shards:   opt.PoolShards,
			PlainLRU: opt.PlainLRU,
		})
	}
	ix := &Index{
		rel:    rel,
		opt:    opt,
		slopes: slopes,
		pool:   pool,
	}
	if owned {
		// Reserve the catalog page (page 1 of the dedicated store) so the
		// database can be persisted with Save (see persist.go).
		f, err := pool.NewPage()
		if err != nil {
			return nil, err
		}
		ix.catalog = f.ID()
		f.Release()
	}
	kinds := []btree.SlotKind{btree.MinSlot, btree.MinSlot, btree.MaxSlot, btree.MaxSlot}
	cfg := opt.treeConfig(kinds)
	for range slopes {
		u, err := btree.New(pool, cfg)
		if err != nil {
			return nil, err
		}
		d, err := btree.New(pool, cfg)
		if err != nil {
			return nil, err
		}
		ix.up = append(ix.up, u)
		ix.down = append(ix.down, d)
	}
	if opt.IndexVertical {
		if err := ix.ensureVerticalTrees(); err != nil {
			return nil, err
		}
	}
	ix.republishLocked(1, make(map[constraint.TupleID]bool), 0)
	ix.registerGauges()
	return ix, nil
}

// tupleSurface is one satisfiable tuple's build-time geometry: its id and
// its TOP/BOT dual envelopes.
type tupleSurface struct {
	id  constraint.TupleID
	top geom.Envelope
	bot geom.Envelope
}

// Build bulk-loads the index from every satisfiable tuple currently in the
// relation. The index must be empty.
//
// With Options.BuildWorkers > 1 the per-slope work — key evaluation,
// sorting, bulk-loading B_i^up/B_i^down and folding that slope's handicap
// extrema — fans out across a worker pool. Each worker owns whole trees
// (disjoint page sets), so only buffer-pool shard locks are contended and
// the loaded trees are bit-identical in shape to a serial build; only page
// id assignment differs.
func Build(rel *constraint.Relation, opt Options) (*Index, error) {
	ix, err := New(rel, opt)
	if err != nil {
		return nil, err
	}
	var ts []tupleSurface
	var buildErr error
	rel.Scan(func(t *constraint.Tuple) bool {
		if _, err := t.Extension(); err != nil {
			buildErr = err
			return false
		}
		if !t.IsSatisfiable() {
			return true // empty extensions match nothing and are not indexed
		}
		ts = append(ts, tupleSurface{id: t.ID(), top: t.TopEnv(), bot: t.BotEnv()})
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}

	// One task per slope pair, plus one for the optional vertical pair.
	tasks := make([]func() error, 0, len(ix.slopes)+1)
	for i := range ix.slopes {
		i := i
		tasks = append(tasks, func() error { return ix.buildSlope(i, ts) })
	}
	if ix.vup != nil {
		tasks = append(tasks, func() error { return ix.buildVertical(rel, ts) })
	}
	if err := runTasks(tasks, opt.BuildWorkers); err != nil {
		return nil, err
	}
	// Re-publish version 1 over the bulk-loaded trees. The index has not
	// escaped to any reader yet, so mutating the trees in place between
	// New's publish and this one is unobservable.
	indexed := make(map[constraint.TupleID]bool, len(ts))
	for _, t := range ts {
		indexed[t.id] = true
	}
	ix.republishLocked(1, indexed, 0)
	return ix, nil
}

// buildSlope bulk-loads the tree pair of slope index i and folds every
// tuple's strip extrema into that pair's handicap slots (the paper's
// preprocessing step, restricted to one slope so builds parallelize).
func (ix *Index) buildSlope(i int, ts []tupleSurface) error {
	a := ix.slopes[i]
	upEntries := make([]btree.Entry, 0, len(ts))
	downEntries := make([]btree.Entry, 0, len(ts))
	for _, t := range ts {
		upEntries = append(upEntries, btree.Entry{Key: t.top.Eval(a), TID: uint32(t.id)})
		downEntries = append(downEntries, btree.Entry{Key: t.bot.Eval(a), TID: uint32(t.id)})
	}
	slices.SortFunc(upEntries, btree.Entry.Compare)
	slices.SortFunc(downEntries, btree.Entry.Compare)
	if err := ix.up[i].BulkLoad(upEntries); err != nil {
		return err
	}
	if err := ix.down[i].BulkLoad(downEntries); err != nil {
		return err
	}
	for _, t := range ts {
		if err := ix.mergeHandicapsAt(i, t.top, t.bot); err != nil {
			return err
		}
	}
	return nil
}

// buildVertical bulk-loads the optional V^up/V^down pair over horizontal
// support values.
func (ix *Index) buildVertical(rel *constraint.Relation, ts []tupleSurface) error {
	vupEntries := make([]btree.Entry, 0, len(ts))
	vdownEntries := make([]btree.Entry, 0, len(ts))
	for _, t := range ts {
		tup, err := rel.Get(t.id)
		if err != nil {
			return err
		}
		ext, err := tup.Extension()
		if err != nil {
			return err
		}
		vupEntries = append(vupEntries, btree.Entry{Key: supX(ext), TID: uint32(t.id)})
		vdownEntries = append(vdownEntries, btree.Entry{Key: infX(ext), TID: uint32(t.id)})
	}
	slices.SortFunc(vupEntries, btree.Entry.Compare)
	slices.SortFunc(vdownEntries, btree.Entry.Compare)
	if err := ix.vup.BulkLoad(vupEntries); err != nil {
		return err
	}
	return ix.vdown.BulkLoad(vdownEntries)
}

// runTasks executes the tasks on a pool of `workers` goroutines (≤ 1 runs
// them inline) and returns the first error.
func runTasks(tasks []func() error, workers int) error {
	if workers <= 1 || len(tasks) <= 1 {
		for _, task := range tasks {
			if err := task(); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next atomic.Int64
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				errs[i] = tasks[i]()
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// stripBounds returns the left and right strip limits of slope i:
// [leftLo, a_i] toward the previous slope and [a_i, rightHi] toward the
// next one. The outermost strips extend by OuterHalfWidth.
func (ix *Index) stripBounds(i int) (leftLo, rightHi float64) {
	a := ix.slopes[i]
	if i > 0 {
		leftLo = (ix.slopes[i-1] + a) / 2
	} else {
		leftLo = a - ix.opt.OuterHalfWidth
	}
	if i < len(ix.slopes)-1 {
		rightHi = (a + ix.slopes[i+1]) / 2
	} else {
		rightHi = a + ix.opt.OuterHalfWidth
	}
	return leftLo, rightHi
}

// mergeHandicaps folds one tuple's contribution into every tree's handicap
// slots.
func (ix *Index) mergeHandicaps(top, bot geom.Envelope) error {
	for i := range ix.slopes {
		if err := ix.mergeHandicapsAt(i, top, bot); err != nil {
			return err
		}
	}
	return nil
}

// mergeHandicapsAt folds one tuple's contribution into the handicap slots
// of slope i's tree pair. topV/botV are the tree keys; the routing keys are
// the exact strip extrema of the tuple's TOP/BOT envelopes (DESIGN.md
// §4.3). Calls for distinct slopes touch disjoint trees, which is what
// lets Build fan handicap folding across its per-slope workers.
func (ix *Index) mergeHandicapsAt(i int, top, bot geom.Envelope) error {
	a := ix.slopes[i]
	leftLo, rightHi := ix.stripBounds(i)
	topV, botV := top.Eval(a), bot.Eval(a)

	// B_i^up: low slots route by strip max of TOP (convex ⇒ exact at
	// strip endpoints), high slots by strip min.
	u := ix.up[i]
	if err := u.MergeHandicap(top.MaxOn(leftLo, a), slotLowPrev, topV); err != nil {
		return err
	}
	if err := u.MergeHandicap(top.MaxOn(a, rightHi), slotLowNext, topV); err != nil {
		return err
	}
	if err := u.MergeHandicap(top.MinOn(leftLo, a), slotHighPrev, topV); err != nil {
		return err
	}
	if err := u.MergeHandicap(top.MinOn(a, rightHi), slotHighNext, topV); err != nil {
		return err
	}

	// B_i^down: the same four slots over the BOT surface.
	d := ix.down[i]
	if err := d.MergeHandicap(bot.MaxOn(leftLo, a), slotLowPrev, botV); err != nil {
		return err
	}
	if err := d.MergeHandicap(bot.MaxOn(a, rightHi), slotLowNext, botV); err != nil {
		return err
	}
	if err := d.MergeHandicap(bot.MinOn(leftLo, a), slotHighPrev, botV); err != nil {
		return err
	}
	return d.MergeHandicap(bot.MinOn(a, rightHi), slotHighNext, botV)
}

// Insert adds a tuple to the relation and the index as one atomic commit:
// concurrent readers see either the full pre-insert or the full
// post-insert version, never a partially indexed tuple. Unsatisfiable
// tuples are stored in the relation but not indexed (they match no
// query). On error nothing is published and the relation rolls back,
// though the failed tuple keeps its consumed id.
func (ix *Index) Insert(t *constraint.Tuple) (constraint.TupleID, error) {
	c := ix.Begin()
	c.op = "insert"
	id, err := c.Insert(t)
	if err != nil {
		c.Abort()
		return 0, err
	}
	if err := c.Commit(); err != nil {
		return 0, err
	}
	return id, nil
}

// Delete removes a tuple from the index and the relation as one atomic
// commit. Handicap slots are left conservatively stale (sound; costs
// only I/O) and recomputed exactly every RebuildHandicapsEvery deletions.
func (ix *Index) Delete(id constraint.TupleID) error {
	c := ix.Begin()
	c.op = "delete"
	if err := c.Delete(id); err != nil {
		c.Abort()
		return err
	}
	return c.Commit()
}

// RebuildHandicaps recomputes every handicap slot exactly from the current
// relation contents, published as one commit.
func (ix *Index) RebuildHandicaps() error {
	c := ix.Begin()
	c.op = "rebuild"
	if err := c.RebuildHandicaps(); err != nil {
		c.Abort()
		return err
	}
	return c.Commit()
}

// Pages returns the total number of pages occupied by all 2·k trees at
// the current version — the space metric of Figure 10.
func (ix *Index) Pages() int {
	rs := ix.roots.Load()
	n := 0
	for i := range rs.up {
		n += rs.up[i].Pages() + rs.down[i].Pages()
	}
	if rs.vup != nil {
		n += rs.vup.Pages() + rs.vdown.Pages()
	}
	return n
}

// Pool exposes the buffer pool (for I/O accounting in experiments).
func (ix *Index) Pool() *pagestore.Pool { return ix.pool }

// CheckInvariants validates the structural invariants of every live tree
// (a test and debugging aid). It excludes writers for the duration.
func (ix *Index) CheckInvariants() error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	for _, t := range ix.allTrees() {
		if err := t.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

// DecodeCacheStats sums the decoded-node cache counters over every tree of
// the index (the vertical pair included) — the observability hook for the
// read-path cache layer.
func (ix *Index) DecodeCacheStats() btree.DecodeStats {
	var s btree.DecodeStats
	for _, t := range ix.up {
		s.Add(t.DecodeCacheStats())
	}
	for _, t := range ix.down {
		s.Add(t.DecodeCacheStats())
	}
	if ix.vup != nil {
		s.Add(ix.vup.DecodeCacheStats())
		s.Add(ix.vdown.DecodeCacheStats())
	}
	return s
}

// Slopes returns the sorted slope set S.
func (ix *Index) Slopes() []float64 { return append([]float64(nil), ix.slopes...) }

// Len returns the number of indexed (satisfiable) tuples at the current
// version.
func (ix *Index) Len() int { return len(ix.roots.Load().indexed) }

// nearestSlope returns the index of the S-member closest to a (ties break
// toward the lower slope) and whether a coincides with it within Eps.
func (ix *Index) nearestSlope(a float64) (int, bool) {
	i := sort.SearchFloat64s(ix.slopes, a)
	best := -1
	bestDist := math.Inf(1)
	for _, j := range []int{i - 1, i} {
		if j < 0 || j >= len(ix.slopes) {
			continue
		}
		if d := math.Abs(ix.slopes[j] - a); d < bestDist {
			best, bestDist = j, d
		}
	}
	return best, bestDist <= geom.Eps
}
