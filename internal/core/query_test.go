package core

import (
	"math"
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
)

// TestTable1Covering verifies the covering property behind Table 1: the
// union of the two T1 app-query half-planes contains the original query
// half-plane, for all three slope configurations and both operators.
// This regenerates the paper's Table 1 as a checked property (experiment
// id "table1" in DESIGN.md).
func TestTable1Covering(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	slopes := []float64{-2, -0.5, 0.75, 3}
	for trial := 0; trial < 3000; trial++ {
		q := randQuery(rng)
		if _, exact := nearestOf(slopes, q.Slope[0]); exact {
			continue
		}
		plan, err := PlanT1(q, slopes, rng.Float64()*20-10)
		if err != nil {
			t.Fatal(err)
		}
		qh := q.HalfSpace()
		h1 := plan[0].Query.HalfSpace()
		h2 := plan[1].Query.HalfSpace()
		// Sample points of the original half-plane; each must be in q1 ∪ q2.
		for s := 0; s < 40; s++ {
			p := geom.Pt2(rng.Float64()*400-200, rng.Float64()*400-200)
			if !qh.ContainsStrict(p) {
				continue
			}
			if !h1.Contains(p) && !h2.Contains(p) {
				t.Fatalf("covering violated: %v not in %v ∪ %v (q=%v, plan=%v/%v)",
					p, h1, h2, q, plan[0].Query, plan[1].Query)
			}
		}
		// Table 1 operator pattern.
		a := q.Slope[0]
		a1, a2 := plan[0].Query.Slope[0], plan[1].Query.Slope[0]
		switch {
		case a1 < a && a < a2:
			if plan[0].Query.Op != q.Op || plan[1].Query.Op != q.Op {
				t.Fatalf("main case must keep θ on both: %v", plan)
			}
		case a1 < a && a2 < a, a < a1 && a < a2:
			if plan[0].Query.Op != q.Op || plan[1].Query.Op != q.Op.Negate() {
				t.Fatalf("boundary case operator pattern wrong: %v for a=%v", plan, a)
			}
		default:
			t.Fatalf("unexpected slope configuration a=%v a1=%v a2=%v", a, a1, a2)
		}
		// ALL queries become one ALL + one EXIST app-query (Figure 4).
		if q.Kind == constraint.ALL {
			if plan[0].Query.Kind != constraint.ALL || plan[1].Query.Kind != constraint.EXIST {
				t.Fatalf("ALL must split into ALL+EXIST: %v", plan)
			}
		} else if plan[0].Query.Kind != constraint.EXIST || plan[1].Query.Kind != constraint.EXIST {
			t.Fatalf("EXIST must split into EXIST+EXIST: %v", plan)
		}
	}
}

func nearestOf(slopes []float64, a float64) (int, bool) {
	best, bd := -1, math.Inf(1)
	for i, s := range slopes {
		if d := math.Abs(s - a); d < bd {
			best, bd = i, d
		}
	}
	return best, bd <= geom.Eps
}

// TestAppQueryLinesShareAPoint: both T1 app-query boundary lines pass
// through a common point on the original query line (Section 4.1).
func TestAppQueryLinesShareAPoint(t *testing.T) {
	q := constraint.Query2(constraint.EXIST, 0.3, 2, geom.GE)
	pivotX := 5.0
	plan, err := PlanT1(q, []float64{-1, 0, 1}, pivotX)
	if err != nil {
		t.Fatal(err)
	}
	py := 0.3*pivotX + 2
	for _, app := range plan {
		got := app.Query.Slope[0]*pivotX + app.Query.Intercept
		if math.Abs(got-py) > 1e-9 {
			t.Fatalf("app line misses pivot: %v at x=%v gives %v, want %v", app.Query, pivotX, got, py)
		}
	}
}

// TestT2FallbackPath: query slopes beyond the outer strips must fall back
// to T1 and still be exact.
func TestT2FallbackPath(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	opt := Options{Slopes: []float64{-0.5, 0, 0.5}, Technique: T2, OuterHalfWidth: 0.25}
	rel, ix := buildRandomIndex(t, rng, 150, opt, false)
	q := constraint.Query2(constraint.EXIST, 5.0, 0, geom.GE) // far outside S
	got, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Path != "t1(fallback)" {
		t.Fatalf("path = %q, want t1(fallback)", got.Stats.Path)
	}
	want, _ := q.Eval(rel)
	if !sameIDs(got.IDs, want) {
		t.Fatalf("fallback wrong: %v vs %v", got.IDs, want)
	}
}

// TestT2UsesSingleTree: a T2 query must read strictly fewer distinct pages
// than the tree total, and its path must be "t2" for in-strip slopes.
func TestT2PathForInStripSlopes(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	opt := Options{Slopes: []float64{-1, 0, 1}, Technique: T2}
	_, ix := buildRandomIndex(t, rng, 200, opt, false)
	for _, a := range []float64{-0.7, -0.2, 0.3, 0.9, 1.4} {
		q := constraint.Query2(constraint.EXIST, a, 0, geom.GE)
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Path != "t2" {
			t.Fatalf("slope %v: path %q", a, got.Stats.Path)
		}
	}
}

// TestRestrictedIOCost checks Theorem 3.1's shape: the restricted query
// cost is bounded by height + leaves holding the answer (plus one).
func TestRestrictedIOCost(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	opt := Options{Slopes: []float64{0}, Technique: RestrictedOnly, PoolPages: 2048}
	rel, ix := buildRandomIndex(t, rng, 2000, opt, false)
	_ = rel
	if err := ix.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}
	// A very selective query: few results, so few leaves.
	q := constraint.Query2(constraint.EXIST, 0, 49.5, geom.GE)
	got, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	perLeaf := 70 // conservative lower bound on leaf fan-out at 1 KiB pages
	maxLeaves := got.Stats.Results/perLeaf + 2
	if got.Stats.LeavesSwept > maxLeaves+4 {
		t.Fatalf("swept %d leaves for %d results", got.Stats.LeavesSwept, got.Stats.Results)
	}
	if got.Stats.PagesRead > uint64(maxLeaves+8) {
		t.Fatalf("read %d pages for %d results", got.Stats.PagesRead, got.Stats.Results)
	}
}

// TestFigure1WindowClippingUnsound reproduces the paper's Figure 1
// motivation: clipping unbounded objects at a window is incorrect — the
// dual index answers the EXIST query correctly where a window-clipped
// approximation would not.
func TestFigure1WindowClippingUnsound(t *testing.T) {
	rel := constraint.NewRelation(2)
	ix, err := New(rel, Options{Slopes: EquiangularSlopes(3), Technique: T2})
	if err != nil {
		t.Fatal(err)
	}
	// Unbounded tuple t2: a narrow upward wedge far right of the window.
	t2, err := constraint.ParseTuple("y >= x - 100 && y <= x - 99", 2)
	if err != nil {
		t.Fatal(err)
	}
	id, err := ix.Insert(t2)
	if err != nil {
		t.Fatal(err)
	}
	// Query q: y ≥ −x + 100. Inside the window [−50,50]² the strip and the
	// query half-plane are disjoint; they intersect only far outside it
	// (x ≈ 100). The exact index must report the intersection.
	q := constraint.Query2(constraint.EXIST, -1, 100, geom.GE)
	got, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != 1 || got.IDs[0] != id {
		t.Fatalf("unbounded intersection missed: %v", got.IDs)
	}
	// Window-clipped version of the same tuple (what a bounding-box
	// structure would store) does NOT intersect the query.
	clipped, err := constraint.ParseTuple(
		"y >= x - 100 && y <= x - 99 && x >= -50 && x <= 50 && y >= -50 && y <= 50", 2)
	if err != nil {
		t.Fatal(err)
	}
	if clipped.IsSatisfiable() {
		ok, err := q.Matches(clipped)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("clipped tuple should not intersect the query inside the window")
		}
	}
}

// TestQueryStatsConsistency: stats must satisfy their defining identities
// on arbitrary queries.
func TestQueryStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	_, ix := buildRandomIndex(t, rng, 250, Options{Slopes: EquiangularSlopes(4), Technique: T2}, true)
	for qi := 0; qi < 60; qi++ {
		q := randQuery(rng)
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		st := got.Stats
		if st.Results != len(got.IDs) {
			t.Fatalf("Results %d != len(IDs) %d", st.Results, len(got.IDs))
		}
		if st.Candidates < st.Results {
			t.Fatalf("candidates %d < results %d", st.Candidates, st.Results)
		}
		if st.Candidates != st.Results+st.FalseHits+st.Duplicates {
			t.Fatalf("accounting: %+v", st)
		}
	}
}

// TestQueryRejectsBadInput exercises input validation.
func TestQueryRejectsBadInput(t *testing.T) {
	rel := constraint.NewRelation(2)
	ix, err := New(rel, Options{Slopes: EquiangularSlopes(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(constraint.Query2(constraint.EXIST, math.NaN(), 0, geom.GE)); err == nil {
		t.Error("NaN slope must be rejected")
	}
	if _, err := ix.Query(constraint.Query2(constraint.EXIST, math.Inf(1), 0, geom.GE)); err == nil {
		t.Error("infinite slope must be rejected")
	}
	if _, err := ix.Query(constraint.NewQuery(constraint.EXIST, []float64{0, 0}, 0, geom.GE)); err == nil {
		t.Error("3-D query must be rejected by a 2-D index")
	}
}

// TestEmptyIndexQueries: queries on an empty index return empty results.
func TestEmptyIndexQueries(t *testing.T) {
	rel := constraint.NewRelation(2)
	ix, err := New(rel, Options{Slopes: EquiangularSlopes(3)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(206))
	for i := 0; i < 20; i++ {
		got, err := ix.Query(randQuery(rng))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.IDs) != 0 {
			t.Fatalf("empty index returned %v", got.IDs)
		}
	}
}
