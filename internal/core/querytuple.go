package core

import (
	"fmt"
	"slices"

	"dualcdb/internal/constraint"
	"dualcdb/internal/obs"
)

// This file extends the index beyond single half-plane selections to
// *generalized query tuples* — conjunctions of linear constraints, the
// query objects of constraint query languages (Section 1: "each inequality
// constraint, expressed by using the linear polynomial constraint theory,
// represents a half-plane"). The decompositions:
//
//	ALL(Q, t)  with Q = q₁ ∧ … ∧ q_m:   t ⊆ ∩ᵢ ext(qᵢ) ⇔ ∀i ALL(qᵢ, t),
//	  so the answer is the exact intersection of the per-constraint ALL
//	  selections — every constraint runs on the index.
//	EXIST(Q, t): not decomposable (t can meet every qᵢ without meeting
//	  their intersection), so the per-constraint EXIST selections act as
//	  filters — their intersection is a candidate superset — and an exact
//	  polyhedral intersection test refines the survivors.
//
// Vertical constraints (no slope form) cannot run on the dual trees; they
// are applied during refinement only. A query tuple with no usable
// constraint degenerates to a relation scan.

// QueryTupleStats extends QueryStats with the decomposition's shape.
type QueryTupleStats struct {
	QueryStats
	// ConstraintsIndexed is how many of the query tuple's constraints ran
	// on the dual trees; ConstraintsSkipped counts vertical/trivial ones
	// that only the refinement saw.
	ConstraintsIndexed int
	ConstraintsSkipped int
}

// TupleResult is the answer of a generalized-tuple selection.
type TupleResult struct {
	IDs   []constraint.TupleID
	Stats QueryTupleStats
}

// QueryTuple executes ALL(qt, r) or EXIST(qt, r) for a generalized query
// tuple over the 2-D index, against the current version.
func (ix *Index) QueryTuple(kind constraint.QueryKind, qt *constraint.Tuple) (TupleResult, error) {
	rs := ix.pinRoots()
	defer ix.unpinRoots(rs)
	return ix.queryTupleTraced(kind, qt, ix.execCtxFor(rs))
}

// QueryTuple executes ALL(qt, r) or EXIST(qt, r) against this snapshot's
// version.
func (s *Snapshot) QueryTuple(kind constraint.QueryKind, qt *constraint.Tuple) (TupleResult, error) {
	if err := s.guard(); err != nil {
		return TupleResult{}, err
	}
	return s.ix.queryTupleTraced(kind, qt, s.execCtx())
}

// queryTupleTraced wraps queryTuple in its own query trace.
func (ix *Index) queryTupleTraced(kind constraint.QueryKind, qt *constraint.Tuple, ec *execCtx) (TupleResult, error) {
	if ec.obs != nil {
		// The tuple selection owns one trace; every per-constraint
		// sub-query shares the execCtx and records into it.
		ec.tr = ec.obs.StartQuery(fmt.Sprintf("%s(tuple, %d constraints)", kind, len(qt.Constraints())))
		res, err := ix.queryTuple(kind, qt, ec)
		ec.obs.FinishQuery(ec.tr, queryInfo(res.Stats.QueryStats, err))
		ec.tr = nil
		return res, err
	}
	return ix.queryTuple(kind, qt, ec)
}

// queryTuple decomposes, intersects and refines on a caller-supplied
// execCtx: one exact ReadCounter charges every sub-selection's I/O to this
// tuple query (racy before/after deltas on the shared pool counters would
// absorb concurrent queries' misses).
func (ix *Index) queryTuple(kind constraint.QueryKind, qt *constraint.Tuple, ec *execCtx) (TupleResult, error) {
	if qt.Dim() != 2 {
		return TupleResult{}, fmt.Errorf("core: query tuple dimension %d on a 2-D index", qt.Dim())
	}
	qext, err := qt.Extension()
	if err != nil {
		return TupleResult{}, err
	}
	if qext.IsEmpty() {
		// An unsatisfiable query tuple denotes the empty set: nothing is
		// contained in it and nothing intersects it.
		return TupleResult{Stats: QueryTupleStats{QueryStats: QueryStats{Path: "empty-query"}}}, nil
	}
	st := QueryTupleStats{QueryStats: QueryStats{Path: "tuple-" + kind.String()}}

	// Decompose into per-constraint selections. Non-vertical constraints
	// run as half-plane queries; vertical ones run on the V^up/V^down pair
	// when the index carries it (Options.IndexVertical) and are otherwise
	// left to the refinement step.
	type runner func() (Result, error)
	var selections []runner
	for _, h := range qt.Constraints() {
		if h.IsTrivial() {
			st.ConstraintsSkipped++
			continue
		}
		slope, icpt, op, err := h.SlopeForm()
		if err != nil {
			if ec.rs.vup != nil {
				// Vertical constraint a·x + c θ 0 with a ≠ 0: normalize to
				// x θ' −c/a.
				a, c := h.A[0], h.C
				vop := h.Op
				if a < 0 {
					vop = vop.Negate()
				}
				cutoff := -c / a
				selections = append(selections, func() (Result, error) {
					return ix.queryVertical(kind, vop, cutoff, ec)
				})
				continue
			}
			st.ConstraintsSkipped++ // vertical without the pair: refinement-only
			continue
		}
		q := constraint.NewQuery(kind, slope, icpt, op)
		selections = append(selections, func() (Result, error) { return ix.query(q, ec) })
	}
	st.ConstraintsIndexed = len(selections)

	var candidate map[constraint.TupleID]bool
	if len(selections) == 0 {
		// Nothing usable on the index: scan.
		st.Path = "tuple-scan"
		candidate = make(map[constraint.TupleID]bool)
		ec.rs.relScan(func(t *constraint.Tuple) bool {
			candidate[t.ID()] = true
			return true
		})
	} else {
		// Intersect the per-constraint selections (each exact for ALL, a
		// filter for EXIST).
		for i, run := range selections {
			res, err := run()
			if err != nil {
				return TupleResult{}, err
			}
			st.LeavesSwept += res.Stats.LeavesSwept
			st.Candidates += res.Stats.Candidates
			if i == 0 {
				candidate = make(map[constraint.TupleID]bool, len(res.IDs))
				for _, id := range res.IDs {
					candidate[id] = true
				}
				continue
			}
			next := make(map[constraint.TupleID]bool, len(res.IDs))
			for _, id := range res.IDs {
				if candidate[id] {
					next[id] = true
				}
			}
			candidate = next
			if len(candidate) == 0 {
				break
			}
		}
	}

	// Refine. For ALL with no skipped constraints the intersection is
	// already exact; otherwise (EXIST, or vertical constraints present)
	// test the exact polyhedral predicate.
	needRefine := kind == constraint.EXIST || st.ConstraintsSkipped > 0 || len(selections) == 0
	rf := ec.span(obs.StageRefine)
	ids := make([]constraint.TupleID, 0, len(candidate))
	for id := range candidate {
		if needRefine {
			t, err := ec.rs.relGet(id)
			if err != nil {
				ec.endSpan(rf, 0)
				return TupleResult{}, err
			}
			var ok bool
			if kind == constraint.ALL {
				ok, err = constraint.TupleALL(qt, t)
			} else {
				ok, err = constraint.TupleEXIST(qt, t)
			}
			if err != nil {
				ec.endSpan(rf, 0)
				return TupleResult{}, err
			}
			if !ok {
				st.FalseHits++
				continue
			}
		}
		ids = append(ids, id)
	}
	slices.Sort(ids)
	ec.endSpan(rf, len(candidate))
	st.Results = len(ids)
	st.PagesRead = ec.rc.Physical.Load()
	return TupleResult{IDs: ids, Stats: st}, nil
}

// EvalTuple is the exhaustive ground truth for generalized-tuple
// selections: it scans the relation applying the exact polyhedral
// predicates.
func EvalTuple(kind constraint.QueryKind, qt *constraint.Tuple, rel *constraint.Relation) ([]constraint.TupleID, error) {
	qext, err := qt.Extension()
	if err != nil {
		return nil, err
	}
	if qext.IsEmpty() {
		return nil, nil
	}
	var out []constraint.TupleID
	var scanErr error
	rel.Scan(func(t *constraint.Tuple) bool {
		var ok bool
		var err error
		if kind == constraint.ALL {
			ok, err = constraint.TupleALL(qt, t)
		} else {
			ok, err = constraint.TupleEXIST(qt, t)
		}
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			out = append(out, t.ID())
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	slices.Sort(out)
	return out, nil
}
