package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/pagestore"
)

// TestSaveOpenRoundTripMem: save into a memory store, reopen through a new
// pool, and verify identical query answers across all paths.
func TestSaveOpenRoundTripMem(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	store := pagestore.NewMemStore(1024)
	rel := constraint.NewRelation(2)
	for i := 0; i < 200; i++ {
		if _, err := rel.Insert(randTuple(rng, true)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(rel, Options{
		Slopes: EquiangularSlopes(3), Technique: T2, Store: store, PivotX: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}

	rel2, ix2, err := Open(pagestore.NewPool(store, 512))
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Len() != rel.Len() {
		t.Fatalf("reopened relation has %d tuples, want %d", rel2.Len(), rel.Len())
	}
	if ix2.Len() != ix.Len() {
		t.Fatalf("reopened index has %d tuples, want %d", ix2.Len(), ix.Len())
	}
	if len(ix2.Slopes()) != 3 || ix2.opt.PivotX != 2.5 {
		t.Fatalf("options not restored: slopes=%v pivot=%v", ix2.Slopes(), ix2.opt.PivotX)
	}
	for qi := 0; qi < 60; qi++ {
		q := randQuery(rng)
		want, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix2.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got.IDs, want.IDs) {
			t.Fatalf("%v: reopened %v, original %v", q, got.IDs, want.IDs)
		}
		truth, err := q.Eval(rel2)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got.IDs, truth) {
			t.Fatalf("%v: reopened %v, ground truth %v", q, got.IDs, truth)
		}
	}
}

// TestSaveOpenRoundTripFile: the full on-disk lifecycle, including closing
// and reopening the file.
func TestSaveOpenRoundTripFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cdb.pages")
	rng := rand.New(rand.NewSource(602))

	store, err := pagestore.OpenFileStore(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rel := constraint.NewRelation(2)
	for i := 0; i < 150; i++ {
		if _, err := rel.Insert(randTuple(rng, true)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(rel, Options{Slopes: EquiangularSlopes(2), Technique: T1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	// Capture expected answers before closing.
	queries := make([]constraint.Query, 20)
	wants := make([][]constraint.TupleID, 20)
	for i := range queries {
		queries[i] = randQuery(rng)
		res, err := ix.Query(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = res.IDs
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := pagestore.OpenExistingFileStore(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	rel2, ix2, err := Open(pagestore.NewPool(store2, 512))
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Len() != 150 {
		t.Fatalf("reopened relation: %d tuples", rel2.Len())
	}
	if ix2.opt.Technique != T1 {
		t.Fatalf("technique not restored: %v", ix2.opt.Technique)
	}
	for i, q := range queries {
		got, err := ix2.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got.IDs, wants[i]) {
			t.Fatalf("%v: reopened %v, want %v", q, got.IDs, wants[i])
		}
	}
	// The reopened database must accept further updates.
	id, err := ix2.Insert(randTuple(rng, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix2.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := ix2.Save(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveTwiceReclaimsChain: repeated saves must not leak tuple-chain
// pages.
func TestSaveTwiceReclaimsChain(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	store := pagestore.NewMemStore(1024)
	rel := constraint.NewRelation(2)
	for i := 0; i < 100; i++ {
		_, _ = rel.Insert(randTuple(rng, false))
	}
	ix, err := Build(rel, Options{Slopes: EquiangularSlopes(2), Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	after1 := store.NumAllocated()
	for i := 0; i < 5; i++ {
		if err := ix.Save(); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.NumAllocated(); got != after1 {
		t.Fatalf("page leak across saves: %d vs %d", got, after1)
	}
}

// TestSaveRequiresOwnedStore: an index on a shared pool cannot persist.
func TestSaveRequiresOwnedStore(t *testing.T) {
	pool := pagestore.NewPool(pagestore.NewMemStore(1024), 64)
	rel := constraint.NewRelation(2)
	ix, err := Build(rel, Options{Slopes: EquiangularSlopes(2), Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err == nil {
		t.Fatal("Save on a shared pool must fail")
	}
}

// TestOpenRejectsGarbage: opening a store without a catalog fails cleanly.
func TestOpenRejectsGarbage(t *testing.T) {
	store := pagestore.NewMemStore(1024)
	if _, err := store.Alloc(); err != nil { // page 1 exists but is zeroed
		t.Fatal(err)
	}
	if _, _, err := Open(pagestore.NewPool(store, 64)); err == nil {
		t.Fatal("Open must reject a store without a catalog")
	}
	// Entirely empty store: page 1 absent.
	if _, _, err := Open(pagestore.NewPool(pagestore.NewMemStore(1024), 64)); err == nil {
		t.Fatal("Open must reject an empty store")
	}
}

// TestInsertWithID covers the relation restore primitive.
func TestInsertWithID(t *testing.T) {
	rel := constraint.NewRelation(2)
	t1, _ := constraint.ParseTuple("x >= 0", 2)
	if err := rel.InsertWithID(t1, 7); err != nil {
		t.Fatal(err)
	}
	if t1.ID() != 7 {
		t.Fatalf("id = %d", t1.ID())
	}
	t2, _ := constraint.ParseTuple("y >= 0", 2)
	if err := rel.InsertWithID(t2, 7); err == nil {
		t.Fatal("duplicate id must be rejected")
	}
	if err := rel.InsertWithID(t2, 0); err == nil {
		t.Fatal("id 0 must be rejected")
	}
	// The counter advances past restored ids.
	id, err := rel.Insert(t2)
	if err != nil {
		t.Fatal(err)
	}
	if id <= 7 {
		t.Fatalf("next id %d must exceed restored id 7", id)
	}
}
