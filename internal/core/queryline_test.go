package core

import (
	"math"
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
)

// TestQueryLineMatchesGroundTruth: line-stabbing selections against the
// exhaustive interval test b ∈ [BOT(a), TOP(a)].
func TestQueryLineMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 4; trial++ {
		rel, ix := buildRandomIndex(t, rng, 150, Options{
			Slopes: EquiangularSlopes(3), Technique: T2,
		}, true)
		for qi := 0; qi < 50; qi++ {
			a := math.Tan((rng.Float64() - 0.5) * (math.Pi - 0.2))
			b := rng.Float64()*160 - 80
			want, err := EvalLine(a, b, rel)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.QueryLine(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(got.IDs, want) {
				t.Fatalf("line y=%vx+%v: got %v, want %v", a, b, got.IDs, want)
			}
		}
	}
}

// TestQueryLineGeometry: a hand-checked configuration.
func TestQueryLineGeometry(t *testing.T) {
	rel := constraint.NewRelation(2)
	ix, err := New(rel, Options{Slopes: EquiangularSlopes(3), Technique: T2})
	if err != nil {
		t.Fatal(err)
	}
	below, _ := constraint.ParseTuple("x >= 0 && x <= 1 && y >= -5 && y <= -4", 2)
	crossed, _ := constraint.ParseTuple("x >= 0 && x <= 1 && y >= -1 && y <= 1", 2)
	above, _ := constraint.ParseTuple("x >= 0 && x <= 1 && y >= 4 && y <= 5", 2)
	if _, err := ix.Insert(below); err != nil {
		t.Fatal(err)
	}
	idC, _ := ix.Insert(crossed)
	if _, err := ix.Insert(above); err != nil {
		t.Fatal(err)
	}
	// The x-axis (y = 0) crosses only the middle box.
	got, err := ix.QueryLine(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != 1 || got.IDs[0] != idC {
		t.Fatalf("line y=0 crosses %v", got.IDs)
	}
	// A line through all three (steep): x = ... use slope 40: y = 40x − 20
	// passes y∈[−20,20] over x∈[0,1], crossing the middle box and, at the
	// edges, none of the others? At x=0.4, y=−4: crosses 'below' too.
	got, err = ix.QueryLine(40, -20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != 3 {
		t.Fatalf("steep line should cross all boxes, got %v", got.IDs)
	}
}
