package core

import (
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
)

// TestLineIndexMatchesGroundTruth: the interval-tree realization must
// agree with the exhaustive interval test and with the dual index's
// QueryLine at in-set slopes.
func TestLineIndexMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	rel, ix := buildRandomIndex(t, rng, 250, Options{Slopes: EquiangularSlopes(3), Technique: T2}, true)
	li, err := BuildLineIndex(rel, ix.Slopes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 80; qi++ {
		a := li.Slopes()[rng.Intn(3)]
		b := rng.Float64()*160 - 80
		want, err := EvalLine(a, b, rel)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := li.QueryLine(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("line y=%vx+%v: interval %v, want %v", a, b, got, want)
		}
		if st.FalseHits != 0 {
			t.Fatalf("interval stabbing is exact; got %d false hits", st.FalseHits)
		}
		viaDual, err := ix.QueryLine(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, viaDual.IDs) {
			t.Fatalf("interval and dual answers disagree: %v vs %v", got, viaDual.IDs)
		}
	}
}

// TestLineIndexRejectsOutOfSetSlopes: this is the restricted structure.
func TestLineIndexRejectsOutOfSetSlopes(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	rel, _ := buildRandomIndex(t, rng, 30, Options{Slopes: EquiangularSlopes(2), Technique: T2}, false)
	li, err := BuildLineIndex(rel, []float64{-1, 0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := li.QueryLine(0.37, 0); err == nil {
		t.Fatal("out-of-set slope must be rejected")
	}
	if _, err := BuildLineIndex(rel, nil, nil); err == nil {
		t.Fatal("empty slope set must be rejected")
	}
}

// BenchmarkLineStabbing compares the two footnote-6 realizations of the
// restricted line query: interval-tree stabbing vs the dual index's two
// intersected sweeps.
func BenchmarkLineStabbing(b *testing.B) {
	rng := rand.New(rand.NewSource(703))
	rel := constraintRelationForBench(rng, 4000)
	slopes := EquiangularSlopes(3)
	ix, err := Build(rel, Options{Slopes: slopes, Technique: T2, PoolPages: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	li, err := BuildLineIndex(rel, slopes, nil)
	if err != nil {
		b.Fatal(err)
	}
	bs := make([]float64, 64)
	for i := range bs {
		bs[i] = rng.Float64()*160 - 80
	}
	b.Run("intervalTree", func(b *testing.B) {
		var pages uint64
		for i := 0; i < b.N; i++ {
			if err := li.Pool().EvictAll(); err != nil {
				b.Fatal(err)
			}
			li.Pool().ResetStats()
			_, st, err := li.QueryLine(slopes[i%3], bs[i%len(bs)])
			if err != nil {
				b.Fatal(err)
			}
			pages += st.PagesRead
		}
		b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
	})
	b.Run("dualSweeps", func(b *testing.B) {
		var pages uint64
		for i := 0; i < b.N; i++ {
			if err := ix.Pool().EvictAll(); err != nil {
				b.Fatal(err)
			}
			ix.Pool().ResetStats()
			res, err := ix.QueryLine(slopes[i%3], bs[i%len(bs)])
			if err != nil {
				b.Fatal(err)
			}
			pages += res.Stats.PagesRead
		}
		b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
	})
}

func constraintRelationForBench(rng *rand.Rand, n int) *constraint.Relation {
	rel := constraint.NewRelation(2)
	for i := 0; i < n; i++ {
		_, _ = rel.Insert(randTuple(rng, false))
	}
	return rel
}
