package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
	"dualcdb/internal/interval"
	"dualcdb/internal/pagestore"
)

// LineIndex is the footnote-6 alternative realization of the restricted
// structure: for each slope a_i ∈ S it stores the tuples' dual intervals
// [BOT^P(a_i), TOP^P(a_i)] in a paged interval tree. A line y = a_i·x + b
// intersects tuple t_P iff b stabs its interval, so restricted
// line-stabbing queries are answered in O(log n + t/B) pages — the same
// bound the two-B⁺-tree solution achieves by intersecting two sweeps, but
// with a single structure traversal (compare BenchmarkLineStabbing).
//
// The structure is static (rebuild to refresh) and restricted to slopes in
// S; it complements, not replaces, the dual Index.
type LineIndex struct {
	rel    *constraint.Relation
	slopes []float64
	trees  []*interval.Tree
	pool   *pagestore.Pool
}

// BuildLineIndex constructs the interval trees over every satisfiable
// tuple of rel.
func BuildLineIndex(rel *constraint.Relation, slopes []float64, pool *pagestore.Pool) (*LineIndex, error) {
	if rel.Dim() != 2 {
		return nil, fmt.Errorf("core: LineIndex is 2-dimensional")
	}
	if len(slopes) == 0 {
		return nil, fmt.Errorf("core: empty slope set")
	}
	s := append([]float64(nil), slopes...)
	sort.Float64s(s)
	if pool == nil {
		pool = pagestore.NewPool(pagestore.NewMemStore(pagestore.DefaultPageSize), 1<<12)
	}
	li := &LineIndex{rel: rel, slopes: s, pool: pool}
	for _, a := range s {
		var ivs []interval.Interval
		var scanErr error
		rel.Scan(func(t *constraint.Tuple) bool {
			ext, err := t.Extension()
			if err != nil {
				scanErr = err
				return false
			}
			if ext.IsEmpty() {
				return true
			}
			ivs = append(ivs, interval.Interval{
				Lo:  ext.Bot([]float64{a}),
				Hi:  ext.Top([]float64{a}),
				TID: uint32(t.ID()),
			})
			return true
		})
		if scanErr != nil {
			return nil, scanErr
		}
		tr, err := interval.Build(pool, ivs)
		if err != nil {
			return nil, err
		}
		li.trees = append(li.trees, tr)
	}
	return li, nil
}

// QueryLine reports the tuples intersecting the line y = a·x + b; the
// slope must belong to S (this is the restricted structure).
func (li *LineIndex) QueryLine(a, b float64) ([]constraint.TupleID, QueryStats, error) {
	idx := -1
	for i, s := range li.slopes {
		if math.Abs(s-a) <= geom.Eps {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, QueryStats{}, fmt.Errorf("core: slope %g not in the LineIndex slope set", a)
	}
	before := li.pool.Stats().PhysicalReads
	st := QueryStats{Path: "interval-stab"}
	var ids []constraint.TupleID
	visited, err := li.trees[idx].Stab(b, func(iv interval.Interval) {
		ids = append(ids, constraint.TupleID(iv.TID))
	})
	if err != nil {
		return nil, QueryStats{}, err
	}
	st.LeavesSwept = visited
	st.Candidates = len(ids)
	st.Results = len(ids)
	st.PagesRead = li.pool.Stats().PhysicalReads - before
	slices.Sort(ids)
	return ids, st, nil
}

// Pages returns the total page count of all interval trees.
func (li *LineIndex) Pages() int {
	n := 0
	for _, tr := range li.trees {
		n += tr.Pages()
	}
	return n
}

// Pool exposes the buffer pool for I/O accounting.
func (li *LineIndex) Pool() *pagestore.Pool { return li.pool }

// Slopes returns the sorted slope set.
func (li *LineIndex) Slopes() []float64 { return append([]float64(nil), li.slopes...) }
