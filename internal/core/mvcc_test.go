package core

import (
	"errors"
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/pagestore"
)

// probeAnswers runs a fixed set of queries through a snapshot and returns
// the answers positionally.
func probeAnswers(t *testing.T, s *Snapshot, qs []constraint.Query) [][]constraint.TupleID {
	t.Helper()
	out := make([][]constraint.TupleID, len(qs))
	for i, q := range qs {
		res, err := s.Query(q)
		if err != nil {
			t.Fatalf("probe %v: %v", q, err)
		}
		out[i] = res.IDs
	}
	return out
}

// TestInsertFaultLeavesSnapshotIntact is the regression test for the old
// partial-update window: an Insert that fails after some trees took the
// new entry must leave queries on the pre-insert state, not half of one.
// Under copy-on-write the failed batch only ever touched shadow pages, so
// aborting is invisible: the published version still answers every query
// exactly as before the attempt.
func TestInsertFaultLeavesSnapshotIntact(t *testing.T) {
	store := pagestore.NewFaultStore(pagestore.NewMemStore(1024))
	rng := rand.New(rand.NewSource(17))
	rel := constraint.NewRelation(2)
	for i := 0; i < 120; i++ {
		if _, err := rel.Insert(randTuple(rng, false)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(rel, Options{
		Slopes:    EquiangularSlopes(3),
		Technique: T2,
		Store:     store,
	})
	if err != nil {
		t.Fatal(err)
	}

	qs := make([]constraint.Query, 24)
	for i := range qs {
		qs[i] = randQuery(rng)
	}
	before := ix.Snapshot()
	defer before.Release()
	want := probeAnswers(t, before, qs)
	tuplesBefore := rel.Len()
	lenBefore := ix.Len()
	verBefore := before.Version()

	// Every copy-on-write page shadow allocates through the store, so
	// failing the n-th allocation kills the insert midway: some trees
	// already took the entry on their shadow pages, others never saw it.
	for _, allocs := range []int{1, 2, 5, 9} {
		store.FailAllocAfter(allocs)
		_, err := ix.Insert(randTuple(rng, false))
		store.Disarm()
		if !errors.Is(err, pagestore.ErrInjected) {
			t.Fatalf("FailAllocAfter(%d): Insert error = %v, want injected fault", allocs, err)
		}
	}

	if got := rel.Len(); got != tuplesBefore {
		t.Fatalf("relation leaked aborted inserts: %d tuples, want %d", rel.Len(), tuplesBefore)
	}
	if got := ix.Len(); got != lenBefore {
		t.Fatalf("index Len after aborts: %d, want %d", got, lenBefore)
	}
	after := ix.Snapshot()
	defer after.Release()
	if after.Version() != verBefore {
		t.Fatalf("aborted inserts published a version: %d, want %d", after.Version(), verBefore)
	}
	got := probeAnswers(t, after, qs)
	for i := range qs {
		if !sameIDs(got[i], want[i]) {
			t.Fatalf("query %v drifted after aborted inserts: got %v, want %v", qs[i], got[i], want[i])
		}
	}

	// The index stays fully usable: a disarmed insert commits and is seen
	// by new snapshots.
	id, err := ix.Insert(randTuple(rng, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotStableAcrossCommits quick-checks the reader guarantee over
// random tuple batches: a pinned snapshot answers every probe query
// identically before, between and after concurrent commits, while fresh
// snapshots track the live relation exactly.
func TestSnapshotStableAcrossCommits(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	rel, ix := buildRandomIndex(t, rng, 200, Options{
		Slopes:    EquiangularSlopes(3),
		Technique: T2,
	}, false)

	qs := make([]constraint.Query, 30)
	for i := range qs {
		qs[i] = randQuery(rng)
	}
	pinned := ix.Snapshot()
	defer pinned.Release()
	want := probeAnswers(t, pinned, qs)

	ids := rel.IDs()
	for round := 0; round < 6; round++ {
		// One commit batch per round: a few inserts and deletes.
		c := ix.Begin()
		for i := 0; i < 10; i++ {
			id, err := c.Insert(randTuple(rng, false))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 0; i < 8 && len(ids) > 0; i++ {
			j := rng.Intn(len(ids))
			if err := c.Delete(ids[j]); err != nil {
				t.Fatal(err)
			}
			ids = append(ids[:j], ids[j+1:]...)
		}
		if err := c.Commit(); err != nil {
			t.Fatal(err)
		}

		// The pinned snapshot is frozen mid-churn...
		got := probeAnswers(t, pinned, qs)
		for i := range qs {
			if !sameIDs(got[i], want[i]) {
				t.Fatalf("round %d: pinned snapshot drifted on %v: got %v, want %v",
					round, qs[i], got[i], want[i])
			}
		}
		// ...while a fresh snapshot matches the exhaustive ground truth of
		// the live relation.
		fresh := ix.Snapshot()
		for i := 0; i < 5; i++ {
			q := randQuery(rng)
			wantLive, err := q.Eval(rel)
			if err != nil {
				t.Fatal(err)
			}
			res, err := fresh.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(res.IDs, wantLive) {
				t.Fatalf("round %d: live query %v: got %v, want %v", round, q, res.IDs, wantLive)
			}
		}
		fresh.Release()
	}

	// Release triggers reclamation of everything the pin held back.
	pinned.Release()
	if c := ix.Pool().SnapshotCensus(); c.Active != 0 || c.DeferredPages != 0 {
		t.Fatalf("census after release: %+v", c)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// A released snapshot refuses queries instead of touching pages that
	// may be reclaimed.
	if _, err := pinned.Query(qs[0]); !errors.Is(err, errSnapshotReleased) {
		t.Fatalf("query on released snapshot: %v, want errSnapshotReleased", err)
	}
}

// TestSupersededPagesReclaimed checks the watermark accounting end to
// end: pages superseded while a snapshot is pinned stay allocated, and
// releasing the last snapshot returns the store to its exact baseline —
// no page leaks across insert/delete churn.
func TestSupersededPagesReclaimed(t *testing.T) {
	store := pagestore.NewMemStore(1024)
	rng := rand.New(rand.NewSource(41))
	rel := constraint.NewRelation(2)
	ix, err := New(rel, Options{
		Slopes:    EquiangularSlopes(3),
		Technique: T2,
		Store:     store,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline := store.NumAllocated()

	var ids []constraint.TupleID
	for i := 0; i < 150; i++ {
		id, err := ix.Insert(randTuple(rng, false))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	s := ix.Snapshot()
	if got := ix.StatsSnapshot().Snapshots.Active; got != 1 {
		t.Fatalf("census gauge: Active = %d, want 1", got)
	}
	for _, id := range ids {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	censusPinned := ix.Pool().SnapshotCensus()
	if censusPinned.DeferredPages == 0 {
		t.Fatal("no deferred pages while a snapshot pins the pre-delete version")
	}
	allocPinned := store.NumAllocated()

	// The pinned version still sweeps the full pre-delete contents.
	if got := s.Len(); got != 150 {
		t.Fatalf("pinned snapshot Len = %d, want 150", got)
	}
	res, err := s.Query(randQuery(rng))
	if err != nil {
		t.Fatal(err)
	}
	_ = res

	s.Release()
	c := ix.Pool().SnapshotCensus()
	if c.Active != 0 || c.DeferredPages != 0 || c.ReclaimFailures != 0 {
		t.Fatalf("census after release: %+v", c)
	}
	if got := store.NumAllocated(); got != allocPinned-censusPinned.DeferredPages {
		t.Fatalf("release freed %d pages, want %d", allocPinned-got, censusPinned.DeferredPages)
	}
	// Inserting then deleting every tuple must return the store to its
	// post-create footprint: the trees collapse back to empty roots and
	// every superseded page is reclaimed.
	if got := store.NumAllocated(); got != baseline {
		t.Fatalf("page leak: %d pages allocated, baseline %d", got, baseline)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
