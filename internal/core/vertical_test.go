package core

import (
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
	"dualcdb/internal/pagestore"
)

// TestVerticalMatchesGroundTruth: indexed vertical selections against the
// exhaustive evaluation, with and without the vertical pair.
func TestVerticalMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for _, indexed := range []bool{true, false} {
		rel := constraint.NewRelation(2)
		for i := 0; i < 200; i++ {
			if _, err := rel.Insert(randTuple(rng, true)); err != nil {
				t.Fatal(err)
			}
		}
		ix, err := Build(rel, Options{
			Slopes: EquiangularSlopes(3), Technique: T2, IndexVertical: indexed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 60; qi++ {
			kind := constraint.EXIST
			if rng.Intn(2) == 0 {
				kind = constraint.ALL
			}
			op := geom.GE
			if rng.Intn(2) == 0 {
				op = geom.LE
			}
			c := rng.Float64()*160 - 80
			want, err := EvalVertical(kind, op, c, rel)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.QueryVertical(kind, op, c)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(got.IDs, want) {
				t.Fatalf("indexed=%v %v(x %v %v): got %v, want %v", indexed, kind, op, c, got.IDs, want)
			}
			wantPath := "scan"
			if indexed {
				wantPath = "restricted-vertical"
			}
			if got.Stats.Path != wantPath {
				t.Fatalf("indexed=%v: path %q, want %q", indexed, got.Stats.Path, wantPath)
			}
		}
	}
}

// TestVerticalMaintenance: insert/delete keep the vertical pair in sync.
func TestVerticalMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	rel := constraint.NewRelation(2)
	ix, err := New(rel, Options{Slopes: EquiangularSlopes(2), Technique: T2, IndexVertical: true})
	if err != nil {
		t.Fatal(err)
	}
	var live []constraint.TupleID
	for step := 0; step < 200; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			id, err := ix.Insert(randTuple(rng, true))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		} else {
			i := rng.Intn(len(live))
			if err := ix.Delete(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%25 == 24 {
			c := rng.Float64()*100 - 50
			want, _ := EvalVertical(constraint.EXIST, geom.GE, c, rel)
			got, err := ix.QueryVertical(constraint.EXIST, geom.GE, c)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(got.IDs, want) {
				t.Fatalf("step %d: got %v, want %v", step, got.IDs, want)
			}
		}
	}
}

// TestQueryTupleUsesVerticalTrees: with the pair, box queries index all
// four constraints.
func TestQueryTupleUsesVerticalTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(903))
	rel := constraint.NewRelation(2)
	for i := 0; i < 150; i++ {
		if _, err := rel.Insert(randTuple(rng, false)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(rel, Options{Slopes: EquiangularSlopes(3), Technique: T2, IndexVertical: true})
	if err != nil {
		t.Fatal(err)
	}
	window, _ := constraint.ParseTuple("x >= -20 && x <= 20 && y >= -20 && y <= 20", 2)
	for _, kind := range []constraint.QueryKind{constraint.ALL, constraint.EXIST} {
		want, err := EvalTuple(kind, window, rel)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.QueryTuple(kind, window)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got.IDs, want) {
			t.Fatalf("%v(window): got %v, want %v", kind, got.IDs, want)
		}
		if got.Stats.ConstraintsIndexed != 4 || got.Stats.ConstraintsSkipped != 0 {
			t.Fatalf("%v: constraints indexed=%d skipped=%d, want 4/0",
				kind, got.Stats.ConstraintsIndexed, got.Stats.ConstraintsSkipped)
		}
	}
}

// TestVerticalPersistence: the pair round-trips through Save/Open.
func TestVerticalPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(904))
	store := pagestore.NewMemStore(1024)
	rel := constraint.NewRelation(2)
	for i := 0; i < 120; i++ {
		_, _ = rel.Insert(randTuple(rng, true))
	}
	ix, err := Build(rel, Options{
		Slopes: EquiangularSlopes(2), Technique: T2, IndexVertical: true, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	_, ix2, err := Open(pagestore.NewPool(store, 512))
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 30; qi++ {
		c := rng.Float64()*100 - 50
		want, err := ix.QueryVertical(constraint.ALL, geom.LE, c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix2.QueryVertical(constraint.ALL, geom.LE, c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Path != "restricted-vertical" {
			t.Fatalf("reopened index lost the vertical pair: path %q", got.Stats.Path)
		}
		if !sameIDs(got.IDs, want.IDs) {
			t.Fatalf("c=%v: %v vs %v", c, got.IDs, want.IDs)
		}
	}
}
