package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dualcdb/internal/constraint"
	"dualcdb/internal/pagestore"
)

// BatchOptions tunes QueryBatch's worker pool. The zero value asks for
// sensible defaults: GOMAXPROCS query workers, intra-query parallelism on,
// refinement fan-out above 256 candidates.
type BatchOptions struct {
	// Workers is the number of queries executed concurrently (≤ 0 selects
	// GOMAXPROCS). Workers = 1 degenerates to sequential execution and is
	// the baseline the scaling benchmarks compare against.
	Workers int
	// DisableIntraQuery turns off per-query parallelism (T1's two
	// app-query sweeps and large-candidate refinement fan-out). Useful
	// when the batch already saturates every core.
	DisableIntraQuery bool
	// RefineThreshold is the candidate count at which refinement fans out
	// across RefineWorkers goroutines (default 256; candidate sets in the
	// paper's medium workloads routinely reach hundreds of tuples).
	RefineThreshold int
	// RefineWorkers is the refinement fan-out width (default
	// min(4, GOMAXPROCS)).
	RefineWorkers int
}

func (o *BatchOptions) defaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RefineThreshold <= 0 {
		o.RefineThreshold = 256
	}
	if o.RefineWorkers <= 0 {
		o.RefineWorkers = min(4, runtime.GOMAXPROCS(0))
	}
}

// QueryBatch executes a batch of 2-D selections across a bounded worker
// pool and returns one Result per query, positionally. The whole batch
// runs against one pinned snapshot, so it is safe — and consistent — to
// mutate the index concurrently: every query sees the version current
// when the batch started (see the MVCC model in DESIGN.md §13). Queries
// only pin pages in the sharded buffer pool, read the frozen tree pages
// and evaluate cached tuple extensions, so readers never block each
// other except on buffer-pool shard misses.
//
// Each query carries its own exact I/O counter, so every Result's
// QueryStats.PagesRead is the number of page misses that query itself
// faulted in — stable under concurrency, unlike a before/after delta on
// the shared pool statistics.
//
// The first error aborts the batch (workers drain without starting new
// queries) and is returned with a nil slice.
func (ix *Index) QueryBatch(qs []constraint.Query, opts BatchOptions) ([]Result, error) {
	rs := ix.pinRoots()
	defer ix.unpinRoots(rs)
	return ix.queryBatch(rs, qs, opts)
}

// QueryBatch runs the batch against this snapshot's version.
func (s *Snapshot) QueryBatch(qs []constraint.Query, opts BatchOptions) ([]Result, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	return s.ix.queryBatch(s.rs, qs, opts)
}

// queryBatch runs the batch against one pinned version.
func (ix *Index) queryBatch(rs *rootSet, qs []constraint.Query, opts BatchOptions) ([]Result, error) {
	opts.defaults()
	if len(qs) == 0 {
		return []Result{}, nil
	}
	workers := opts.Workers
	if workers > len(qs) {
		workers = len(qs)
	}

	bt := ix.opt.Observe.StartBatch()
	results := make([]Result, len(qs))
	bufs := &sync.Pool{}
	var next atomic.Int64
	var failed atomic.Bool
	var errOnce sync.Once
	var firstErr error

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) || failed.Load() {
					return
				}
				ec := &execCtx{
					rs:              rs,
					rc:              &pagestore.ReadCounter{},
					parallelSweeps:  !opts.DisableIntraQuery,
					refineThreshold: opts.RefineThreshold,
					bufs:            bufs,
					obs:             ix.opt.Observe,
				}
				if !opts.DisableIntraQuery {
					ec.refineWorkers = opts.RefineWorkers
				}
				res, err := ix.query(qs[i], ec)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	bt.Done()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
