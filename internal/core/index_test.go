package core

import (
	"math"
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
)

// randTuple builds a random convex polygon tuple from 3–6 tangent
// half-planes of a circle (bounded), or an unbounded tuple from 1–2
// half-planes when unboundedOK and the coin flip says so.
func randTuple(rng *rand.Rand, unboundedOK bool) *constraint.Tuple {
	if unboundedOK && rng.Intn(5) == 0 {
		m := 1 + rng.Intn(2)
		hs := make([]geom.HalfSpace, 0, m)
		for i := 0; i < m; i++ {
			ang := rng.Float64() * 2 * math.Pi
			nx, ny := math.Cos(ang), math.Sin(ang)
			c := rng.Float64()*40 - 20
			hs = append(hs, geom.HalfSpace{A: []float64{nx, ny}, C: c, Op: geom.LE})
		}
		t, err := constraint.NewTuple(2, hs)
		if err != nil {
			panic(err)
		}
		return t
	}
	cx, cy := rng.Float64()*100-50, rng.Float64()*100-50
	r := rng.Float64()*8 + 0.3
	m := 3 + rng.Intn(4)
	hs := make([]geom.HalfSpace, 0, m)
	for i := 0; i < m; i++ {
		ang := (float64(i) + rng.Float64()*0.3 + 0.35) * 2 * math.Pi / float64(m)
		nx, ny := math.Cos(ang), math.Sin(ang)
		hs = append(hs, geom.HalfSpace{A: []float64{nx, ny}, C: -(nx*cx + ny*cy + r), Op: geom.LE})
	}
	t, err := constraint.NewTuple(2, hs)
	if err != nil {
		panic(err)
	}
	return t
}

func buildRandomIndex(t *testing.T, rng *rand.Rand, n int, opt Options, unboundedOK bool) (*constraint.Relation, *Index) {
	t.Helper()
	rel := constraint.NewRelation(2)
	for i := 0; i < n; i++ {
		if _, err := rel.Insert(randTuple(rng, unboundedOK)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(rel, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rel, ix
}

func randQuery(rng *rand.Rand) constraint.Query {
	kind := constraint.EXIST
	if rng.Intn(2) == 0 {
		kind = constraint.ALL
	}
	op := geom.GE
	if rng.Intn(2) == 0 {
		op = geom.LE
	}
	// Slopes as tangents of uniform angles (the paper's distribution),
	// clamped to avoid near-vertical extremes.
	ang := (rng.Float64() - 0.5) * (math.Pi - 0.2)
	a := math.Tan(ang)
	b := rng.Float64()*160 - 80
	return constraint.Query2(kind, a, b, op)
}

func sameIDs(a, b []constraint.TupleID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIndexMatchesGroundTruth is the central correctness test: on random
// relations (with unbounded tuples) and random queries, every technique
// must return exactly the tuples the exhaustive Proposition 2.2 scan
// returns.
func TestIndexMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, tech := range []Technique{T1, T2} {
		for trial := 0; trial < 6; trial++ {
			opt := Options{
				Slopes:    EquiangularSlopes(2 + rng.Intn(4)),
				Technique: tech,
			}
			rel, ix := buildRandomIndex(t, rng, 150, opt, true)
			for qi := 0; qi < 60; qi++ {
				q := randQuery(rng)
				want, err := q.Eval(rel)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ix.Query(q)
				if err != nil {
					t.Fatalf("%v [%v]: %v", q, tech, err)
				}
				if !sameIDs(got.IDs, want) {
					t.Fatalf("%v [%v, k=%d]: got %v, want %v (stats %+v)",
						q, tech, len(opt.Slopes), got.IDs, want, got.Stats)
				}
			}
		}
	}
}

// TestRestrictedPathExact: query slopes drawn from S run the Section 3
// structure and must match ground truth with zero duplicates.
func TestRestrictedPathExact(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	opt := Options{Slopes: EquiangularSlopes(4), Technique: T2}
	rel, ix := buildRandomIndex(t, rng, 200, opt, true)
	for qi := 0; qi < 80; qi++ {
		q := randQuery(rng)
		q.Slope[0] = ix.Slopes()[rng.Intn(4)] // force an S slope
		want, err := q.Eval(rel)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Path != "restricted" {
			t.Fatalf("path = %q for in-set slope", got.Stats.Path)
		}
		if got.Stats.Duplicates != 0 {
			t.Fatalf("restricted query produced duplicates: %+v", got.Stats)
		}
		if !sameIDs(got.IDs, want) {
			t.Fatalf("%v: got %v, want %v", q, got.IDs, want)
		}
	}
}

// TestT2NeverDuplicates: the defining advantage of T2 over T1
// (Section 4.2) — no tuple reference is retrieved twice.
func TestT2NeverDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	opt := Options{Slopes: EquiangularSlopes(3), Technique: T2}
	_, ix := buildRandomIndex(t, rng, 300, opt, true)
	for qi := 0; qi < 100; qi++ {
		q := randQuery(rng)
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Path == "t2" || got.Stats.Path == "restricted" {
			if got.Stats.Duplicates != 0 {
				t.Fatalf("%v [%s]: produced %d duplicates", q, got.Stats.Path, got.Stats.Duplicates)
			}
			// Candidate multiset must be duplicate-free too: candidates =
			// results + false hits with no double counting.
			if got.Stats.Candidates != got.Stats.Results+got.Stats.FalseHits {
				t.Fatalf("%v: candidate accounting broken: %+v", q, got.Stats)
			}
		}
	}
}

// TestT1DuplicatesHappen documents the T1 weakness the paper motivates T2
// with: across many random queries some duplicates must appear.
func TestT1DuplicatesHappen(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	opt := Options{Slopes: EquiangularSlopes(3), Technique: T1}
	_, ix := buildRandomIndex(t, rng, 300, opt, false)
	dups := 0
	for qi := 0; qi < 100; qi++ {
		q := randQuery(rng)
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		dups += got.Stats.Duplicates
	}
	if dups == 0 {
		t.Fatal("expected T1 to produce duplicate retrievals on random workloads")
	}
}

// TestInsertDeleteMaintainsCorrectness exercises incremental maintenance:
// interleave inserts and deletes, querying against ground truth throughout.
func TestInsertDeleteMaintainsCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	rel := constraint.NewRelation(2)
	opt := Options{Slopes: EquiangularSlopes(3), Technique: T2, RebuildHandicapsEvery: 64}
	ix, err := New(rel, opt)
	if err != nil {
		t.Fatal(err)
	}
	var live []constraint.TupleID
	for step := 0; step < 400; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			id, err := ix.Insert(randTuple(rng, true))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		} else {
			i := rng.Intn(len(live))
			if err := ix.Delete(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%20 == 19 {
			q := randQuery(rng)
			want, err := q.Eval(rel)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(got.IDs, want) {
				t.Fatalf("step %d %v: got %v, want %v", step, q, got.IDs, want)
			}
		}
	}
}

// TestUnsatisfiableTuplesNotIndexed: empty extensions are kept in the
// relation but never enter the trees and never match.
func TestUnsatisfiableTuplesNotIndexed(t *testing.T) {
	rel := constraint.NewRelation(2)
	ix, err := New(rel, Options{Slopes: EquiangularSlopes(2), Technique: T2})
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := constraint.ParseTuple("x >= 1 && x <= 0", 2)
	id, err := ix.Insert(bad)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 {
		t.Fatalf("indexed %d tuples, want 0", ix.Len())
	}
	good, _ := constraint.ParseTuple("x >= 0 && x <= 1 && y >= 0 && y <= 1", 2)
	if _, err := ix.Insert(good); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query(constraint.Query2(constraint.EXIST, 0.5, -100, geom.GE))
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range got.IDs {
		if rid == id {
			t.Fatal("unsatisfiable tuple returned by a query")
		}
	}
	// Deleting the unindexed tuple must work and not disturb the index.
	if err := ix.Delete(id); err != nil {
		t.Fatal(err)
	}
}

func TestRestrictedOnlyRejectsOtherSlopes(t *testing.T) {
	rel := constraint.NewRelation(2)
	ix, err := New(rel, Options{Slopes: []float64{0}, Technique: RestrictedOnly})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(constraint.Query2(constraint.EXIST, 0.5, 0, geom.GE)); err == nil {
		t.Fatal("restricted-only index must reject out-of-set slopes")
	}
	if _, err := ix.Query(constraint.Query2(constraint.EXIST, 0, 0, geom.GE)); err != nil {
		t.Fatalf("in-set slope rejected: %v", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	rel := constraint.NewRelation(2)
	if _, err := New(rel, Options{}); err == nil {
		t.Error("empty slope set must be rejected")
	}
	if _, err := New(rel, Options{Slopes: []float64{1, 1}}); err == nil {
		t.Error("duplicate slopes must be rejected")
	}
	if _, err := New(rel, Options{Slopes: []float64{0, geom.Eps / 2, 1}}); err == nil {
		t.Error("slopes closer than the tolerance must be rejected")
	}
	if _, err := New(rel, Options{Slopes: []float64{0, 2 * geom.Eps}}); err != nil {
		t.Errorf("slopes separated by more than the tolerance rejected: %v", err)
	}
	if _, err := New(rel, Options{Slopes: []float64{1}, Technique: T2}); err == nil {
		t.Error("T2 with a single slope must be rejected")
	}
	if _, err := New(rel, Options{Slopes: []float64{math.Inf(1), 0}}); err == nil {
		t.Error("infinite slopes must be rejected")
	}
	rel3 := constraint.NewRelation(3)
	if _, err := New(rel3, Options{Slopes: []float64{0, 1}}); err == nil {
		t.Error("3-D relation must be rejected by the 2-D index")
	}
}

func TestEquiangularSlopes(t *testing.T) {
	for k := 1; k <= 6; k++ {
		s := EquiangularSlopes(k)
		if len(s) != k {
			t.Fatalf("k=%d: %v", k, s)
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatalf("k=%d not increasing: %v", k, s)
			}
		}
	}
	// Symmetry: slopes come in ± pairs (odd k includes 0).
	s := EquiangularSlopes(3)
	if math.Abs(s[1]) > 1e-12 || math.Abs(s[0]+s[2]) > 1e-9 {
		t.Fatalf("k=3 slopes not symmetric: %v", s)
	}
	if EquiangularSlopes(0) != nil {
		t.Fatal("k=0 must be nil")
	}
}

func TestPagesAndPool(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	opt := Options{Slopes: EquiangularSlopes(3), Technique: T2}
	_, ix := buildRandomIndex(t, rng, 500, opt, false)
	if ix.Pages() <= 0 {
		t.Fatal("index must occupy pages")
	}
	// The store holds the tree pages plus the one reserved catalog page.
	if ix.Pages()+1 != ix.Pool().Store().NumAllocated() {
		t.Fatalf("Pages() = %d, store allocated %d", ix.Pages(), ix.Pool().Store().NumAllocated())
	}
	// Space grows linearly with k: 2·k trees (Theorem 3.1's O(k·n)).
	opt5 := Options{Slopes: EquiangularSlopes(5), Technique: T2}
	rng2 := rand.New(rand.NewSource(106))
	_, ix5 := buildRandomIndex(t, rng2, 500, opt5, false)
	lo := float64(ix.Pages()) * 5 / 3 * 0.8
	hi := float64(ix.Pages()) * 5 / 3 * 1.2
	if p := float64(ix5.Pages()); p < lo || p > hi {
		t.Fatalf("k=5 pages %v outside [%v, %v] (k=3: %d)", p, lo, hi, ix.Pages())
	}
}

func TestRebuildHandicapsPreservesAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	rel, ix := buildRandomIndex(t, rng, 200, Options{Slopes: EquiangularSlopes(3), Technique: T2}, true)
	// Delete a third of the tuples without automatic rebuild.
	ids := rel.IDs()
	for i := 0; i < len(ids)/3; i++ {
		if err := ix.Delete(ids[i*3]); err != nil {
			t.Fatal(err)
		}
	}
	q := randQuery(rng)
	before, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.RebuildHandicaps(); err != nil {
		t.Fatal(err)
	}
	after, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(before.IDs, after.IDs) {
		t.Fatalf("rebuild changed answers: %v vs %v", before.IDs, after.IDs)
	}
	want, _ := q.Eval(rel)
	if !sameIDs(after.IDs, want) {
		t.Fatalf("post-rebuild answers wrong: %v vs %v", after.IDs, want)
	}
}
