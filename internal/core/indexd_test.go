package core

import (
	"math"
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
)

// randTuple3 builds a random bounded 3-D polytope: a box around a random
// center cut by a few random tangent planes; with unboundedOK, sometimes an
// unbounded corner cone instead.
func randTuple3(rng *rand.Rand, unboundedOK bool) *constraint.Tuple {
	c := geom.Point{rng.Float64()*40 - 20, rng.Float64()*40 - 20, rng.Float64()*40 - 20}
	if unboundedOK && rng.Intn(6) == 0 {
		// An unbounded corner: x ≥ cx ∧ y ≥ cy ∧ z ≥ cz (orientation varies).
		hs := make([]geom.HalfSpace, 3)
		for i := 0; i < 3; i++ {
			a := make([]float64, 3)
			op := geom.GE
			if rng.Intn(2) == 0 {
				op = geom.LE
			}
			a[i] = 1
			hs[i] = geom.HalfSpace{A: a, C: -c[i], Op: op}
		}
		t, err := constraint.NewTuple(3, hs)
		if err != nil {
			panic(err)
		}
		return t
	}
	half := rng.Float64()*4 + 0.5
	var hs []geom.HalfSpace
	for i := 0; i < 3; i++ {
		lo := make([]float64, 3)
		lo[i] = 1
		hi := append([]float64(nil), lo...)
		hs = append(hs,
			geom.HalfSpace{A: lo, C: -(c[i] - half), Op: geom.GE},
			geom.HalfSpace{A: hi, C: -(c[i] + half), Op: geom.LE},
		)
	}
	// A couple of random tangent cuts for general position.
	for extra := rng.Intn(3); extra > 0; extra-- {
		n := geom.Point{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Normalize()
		if n.IsZero() {
			continue
		}
		// Keep the center inside with margin r < half.
		r := rng.Float64() * half
		hs = append(hs, geom.HalfSpace{
			A: []float64{n[0], n[1], n[2]}, C: -(n.Dot(c) + r), Op: geom.LE,
		})
	}
	t, err := constraint.NewTuple(3, hs)
	if err != nil {
		panic(err)
	}
	return t
}

func randQuery3(rng *rand.Rand) constraint.Query {
	kind := constraint.EXIST
	if rng.Intn(2) == 0 {
		kind = constraint.ALL
	}
	op := geom.GE
	if rng.Intn(2) == 0 {
		op = geom.LE
	}
	slope := []float64{rng.NormFloat64(), rng.NormFloat64()}
	b := rng.Float64()*80 - 40
	return constraint.NewQuery(kind, slope, b, op)
}

func build3DIndex(t *testing.T, rng *rand.Rand, n int, unboundedOK bool) (*constraint.Relation, *IndexD) {
	t.Helper()
	rel := constraint.NewRelation(3)
	for i := 0; i < n; i++ {
		if _, err := rel.Insert(randTuple3(rng, unboundedOK)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := BuildD(rel, OptionsD{Sites: LatticeSites(2, 3, 1.5)})
	if err != nil {
		t.Fatal(err)
	}
	return rel, ix
}

// TestIndexDMatchesGroundTruth3D: the central d-dimensional correctness
// test — all execution paths against the exhaustive Proposition 2.2 scan.
func TestIndexDMatchesGroundTruth3D(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 4; trial++ {
		rel, ix := build3DIndex(t, rng, 120, true)
		for qi := 0; qi < 50; qi++ {
			q := randQuery3(rng)
			want, err := q.Eval(rel)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.Query(q)
			if err != nil {
				t.Fatalf("%v: %v", q, err)
			}
			if !sameIDs(got.IDs, want) {
				t.Fatalf("%v: got %v, want %v (stats %+v)", q, got.IDs, want, got.Stats)
			}
		}
	}
}

// TestIndexDRestrictedPath: slope points drawn exactly from S must run the
// optimal single-sweep structure.
func TestIndexDRestrictedPath(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	rel, ix := build3DIndex(t, rng, 150, true)
	sites := ix.Sites()
	for qi := 0; qi < 40; qi++ {
		q := randQuery3(rng)
		s := sites[rng.Intn(len(sites))]
		q.Slope = []float64{s[0], s[1]}
		want, err := q.Eval(rel)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Path != "restricted" {
			t.Fatalf("path = %q for in-set slope point", got.Stats.Path)
		}
		if !sameIDs(got.IDs, want) {
			t.Fatalf("%v: got %v, want %v", q, got.IDs, want)
		}
	}
}

// TestIndexDT2PathInsideCells: slopes inside the clamped Voronoi cells use
// the handicap technique, not the scan.
func TestIndexDT2PathInsideCells(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	_, ix := build3DIndex(t, rng, 100, false)
	for qi := 0; qi < 40; qi++ {
		q := randQuery3(rng)
		q.Slope = []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1} // inside the box
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Path != "t2" && got.Stats.Path != "restricted" {
			t.Fatalf("slope %v: path %q", q.Slope, got.Stats.Path)
		}
		if got.Stats.Duplicates != 0 {
			t.Fatalf("T2 in E^3 produced duplicates: %+v", got.Stats)
		}
	}
}

// TestIndexDScanFallback: slope points outside every clamped cell fall
// back to the exhaustive scan and stay correct.
func TestIndexDScanFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	rel, ix := build3DIndex(t, rng, 80, false)
	q := constraint.NewQuery(constraint.EXIST, []float64{50, -50}, 0, geom.GE)
	got, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Path != "scan" {
		t.Fatalf("path = %q for far-out slope", got.Stats.Path)
	}
	want, _ := q.Eval(rel)
	if !sameIDs(got.IDs, want) {
		t.Fatalf("scan fallback wrong: %v vs %v", got.IDs, want)
	}
}

// TestIndexDInsertDelete: incremental maintenance in E^3.
func TestIndexDInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	rel := constraint.NewRelation(3)
	ix, err := NewD(rel, OptionsD{Sites: LatticeSites(2, 2, 1), RebuildHandicapsEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	var live []constraint.TupleID
	for step := 0; step < 200; step++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			id, err := ix.Insert(randTuple3(rng, true))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		} else {
			i := rng.Intn(len(live))
			if err := ix.Delete(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%25 == 24 {
			q := randQuery3(rng)
			want, err := q.Eval(rel)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(got.IDs, want) {
				t.Fatalf("step %d %v: got %v, want %v", step, q, got.IDs, want)
			}
		}
	}
}

// TestIndexDValidation exercises input checking.
func TestIndexDValidation(t *testing.T) {
	rel := constraint.NewRelation(3)
	if _, err := NewD(rel, OptionsD{}); err == nil {
		t.Error("empty site set must be rejected")
	}
	if _, err := NewD(rel, OptionsD{Sites: []geom.Point{{0}}}); err == nil {
		t.Error("wrong site dimension must be rejected")
	}
	if _, err := NewD(rel, OptionsD{Sites: []geom.Point{{0, 0}, {0, 0}}}); err == nil {
		t.Error("duplicate sites must be rejected")
	}
	ix, err := NewD(rel, OptionsD{Sites: LatticeSites(2, 2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(constraint.Query2(constraint.EXIST, 0, 0, geom.GE)); err == nil {
		t.Error("2-D query on a 3-D index must be rejected")
	}
	q := constraint.NewQuery(constraint.EXIST, []float64{math.NaN(), 0}, 0, geom.GE)
	if _, err := ix.Query(q); err == nil {
		t.Error("NaN slope must be rejected")
	}
	t2, _ := constraint.ParseTuple("x >= 0", 2)
	if _, err := ix.Insert(t2); err == nil {
		t.Error("dimension-mismatched tuple must be rejected")
	}
}

// TestLatticeSites checks the site-grid helper.
func TestLatticeSites(t *testing.T) {
	s := LatticeSites(2, 3, 1.5)
	if len(s) != 9 {
		t.Fatalf("3×3 lattice has %d sites", len(s))
	}
	for _, p := range s {
		if p.Dim() != 2 || math.Abs(p[0]) > 1.5+1e-9 || math.Abs(p[1]) > 1.5+1e-9 {
			t.Fatalf("bad site %v", p)
		}
	}
	if got := LatticeSites(1, 1, 2); len(got) != 1 || got[0][0] != 0 {
		t.Fatalf("1×1 lattice = %v", got)
	}
	if LatticeSites(0, 2, 1) != nil || LatticeSites(2, 0, 1) != nil {
		t.Fatal("degenerate lattices must be nil")
	}
}

// TestIndexDSpaceLinearInSites: Theorem 3.1's O(k·n) space in E^3.
func TestIndexDSpaceLinearInSites(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	rel := constraint.NewRelation(3)
	for i := 0; i < 300; i++ {
		if _, err := rel.Insert(randTuple3(rng, false)); err != nil {
			t.Fatal(err)
		}
	}
	ix4, err := BuildD(rel, OptionsD{Sites: LatticeSites(2, 2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ix9, err := BuildD(rel, OptionsD{Sites: LatticeSites(2, 3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(ix9.Pages()) / float64(ix4.Pages())
	if ratio < 9.0/4*0.8 || ratio > 9.0/4*1.2 {
		t.Fatalf("space ratio %v, want ≈ 9/4", ratio)
	}
}
