package core

import (
	"math/rand"
	"sync"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
)

// pointTuple builds the degenerate tuple {(px, py)}.
func pointTuple(px, py float64) *constraint.Tuple {
	t, err := constraint.NewTuple(2, []geom.HalfSpace{
		{A: []float64{1, 0}, C: -px, Op: geom.LE},
		{A: []float64{-1, 0}, C: px, Op: geom.LE},
		{A: []float64{0, 1}, C: -py, Op: geom.LE},
		{A: []float64{0, -1}, C: py, Op: geom.LE},
	})
	if err != nil {
		panic(err)
	}
	return t
}

// TestBoundaryKeysSpanningLeaves pins the sweep/filter boundary agreement:
// the refinement predicates accept keys within geom.Eps of the query
// intercept b, so the sweeps must start one tolerance before b — keys that
// are within Eps of b can fill whole leaves *before* the leaf that owns b
// itself, and a sweep that starts exactly at b never visits them. With a
// tiny page size the b−δ keys span many leaves, so this fails loudly
// against the historical behaviour of starting the sweep at b.
func TestBoundaryKeysSpanningLeaves(t *testing.T) {
	const b = 10.0
	const delta = 5e-10 // < geom.Eps, so b−δ and b+δ both match the filters

	for _, dir := range []struct {
		name string
		y    float64 // packed boundary cluster, many leaves of equal keys
	}{
		{"asc-cluster-below-b", b - delta},
		{"desc-cluster-above-b", b + delta},
	} {
		t.Run(dir.name, func(t *testing.T) {
			rel := constraint.NewRelation(2)
			// 150 boundary points: with PageSize 256 their TOP/BOT keys
			// occupy several leaves on their own.
			for i := 0; i < 150; i++ {
				if _, err := rel.Insert(pointTuple(float64(i-75), dir.y)); err != nil {
					t.Fatal(err)
				}
			}
			// Interior points on both sides of the boundary so each sweep
			// direction has leaves beyond the cluster.
			for i := 0; i < 30; i++ {
				if _, err := rel.Insert(pointTuple(float64(i), b+2+float64(i))); err != nil {
					t.Fatal(err)
				}
				if _, err := rel.Insert(pointTuple(float64(i), b-2-float64(i))); err != nil {
					t.Fatal(err)
				}
			}
			ix, err := Build(rel, Options{
				Slopes:    []float64{-1, 0, 1},
				Technique: T2,
				PageSize:  256,
			})
			if err != nil {
				t.Fatal(err)
			}
			queries := []constraint.Query{
				// Restricted path, slope 0 ∈ S: TOP/BOT of a point (x, y)
				// at slope 0 is y, so the cluster keys sit exactly δ away
				// from the intercept.
				constraint.Query2(constraint.EXIST, 0, b, geom.GE), // asc sweep in B^up
				constraint.Query2(constraint.ALL, 0, b, geom.LE),   // desc sweep in B^up
				constraint.Query2(constraint.ALL, 0, b, geom.GE),   // asc sweep in B^down
				constraint.Query2(constraint.EXIST, 0, b, geom.LE), // desc sweep in B^down
				// T2 handicap path (slope outside S, inside the strips).
				constraint.Query2(constraint.EXIST, 0.01, b, geom.GE),
				constraint.Query2(constraint.ALL, -0.01, b, geom.LE),
			}
			for _, q := range queries {
				want, err := q.Eval(rel)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ix.Query(q)
				if err != nil {
					t.Fatalf("%v: %v", q, err)
				}
				if got.Stats.Path == "scan" {
					t.Fatalf("%v: unexpectedly fell back to scan", q)
				}
				if !sameIDs(got.IDs, want) {
					t.Fatalf("%v [path %s]: got %d ids, want %d (boundary keys missed)",
						q, got.Stats.Path, len(got.IDs), len(want))
				}
			}
		})
	}
}

// TestConcurrentPagesReadAttribution: QueryLine and QueryVertical report
// per-query PagesRead from their own ReadCounter, so under concurrency
// (a) the per-query numbers never exceed the query's serial cold cost, and
// (b) they partition the pool's physical reads exactly. The historical
// pool-stats delta failed both — concurrent queries absorbed each other's
// misses.
func TestConcurrentPagesReadAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	rel, ix := buildRandomIndex(t, rng, 300, Options{
		Slopes:        EquiangularSlopes(3),
		Technique:     T2,
		PoolPages:     1 << 14,
		PoolShards:    8,
		IndexVertical: true,
	}, true)

	type workload struct {
		line bool
		a, b float64 // line params
		kind constraint.QueryKind
		op   geom.Op
		c    float64 // vertical intercept
	}
	cases := []workload{
		{line: true, a: 0.3, b: 4},
		{line: true, a: -1.7, b: -12},
		{kind: constraint.EXIST, op: geom.GE, c: 3},
		{kind: constraint.ALL, op: geom.LE, c: 25},
	}
	run := func(w workload) (Result, error) {
		if w.line {
			return ix.QueryLine(w.a, w.b)
		}
		return ix.QueryVertical(w.kind, w.op, w.c)
	}

	// Serial cold baselines (and ground truth).
	wantIDs := make([][]constraint.TupleID, len(cases))
	serial := make([]uint64, len(cases))
	for i, w := range cases {
		if err := ix.Pool().EvictAll(); err != nil {
			t.Fatal(err)
		}
		res, err := run(w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.PagesRead == 0 {
			t.Fatalf("case %d: serial cold run read no pages", i)
		}
		var truth []constraint.TupleID
		if w.line {
			truth, err = EvalLine(w.a, w.b, rel)
		} else {
			truth, err = EvalVertical(w.kind, w.op, w.c, rel)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(res.IDs, truth) {
			t.Fatalf("case %d: wrong answer", i)
		}
		wantIDs[i] = truth
		serial[i] = res.Stats.PagesRead
	}

	if err := ix.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}
	ix.Pool().ResetStats()

	const workers = 8
	const iters = 12
	var wg sync.WaitGroup
	attributed := make([]uint64, workers)
	errs := make(chan error, workers)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				ci := (wkr + it) % len(cases)
				res, err := run(cases[ci])
				if err != nil {
					errs <- err
					return
				}
				if !sameIDs(res.IDs, wantIDs[ci]) {
					errs <- errMismatch
					return
				}
				if res.Stats.PagesRead > serial[ci] {
					t.Errorf("case %d: concurrent PagesRead %d exceeds serial cold %d (foreign misses attributed)",
						ci, res.Stats.PagesRead, serial[ci])
				}
				attributed[wkr] += res.Stats.PagesRead
			}
		}(wkr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var sum uint64
	for _, a := range attributed {
		sum += a
	}
	if misses := ix.Pool().Stats().PhysicalReads; sum != misses {
		t.Fatalf("attributed PagesRead sum = %d, pool PhysicalReads = %d (attribution not exact)", sum, misses)
	}
}
