package core

import (
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
)

// randQueryTuple builds a random generalized query tuple: a (possibly
// unbounded) conjunction of 1–4 constraints, occasionally including a
// vertical one to exercise the refinement-only path.
func randQueryTuple(rng *rand.Rand) *constraint.Tuple {
	m := 1 + rng.Intn(4)
	var hs []geom.HalfSpace
	for i := 0; i < m; i++ {
		if rng.Intn(5) == 0 {
			// Vertical constraint x θ c.
			op := geom.LE
			if rng.Intn(2) == 0 {
				op = geom.GE
			}
			hs = append(hs, geom.HalfPlane2(1, 0, -(rng.Float64()*100-50), op))
			continue
		}
		a := rng.NormFloat64() * 2
		b := rng.Float64()*120 - 60
		op := geom.GE
		if rng.Intn(2) == 0 {
			op = geom.LE
		}
		hs = append(hs, geom.FromSlopeForm([]float64{a}, b, op))
	}
	t, err := constraint.NewTuple(2, hs)
	if err != nil {
		panic(err)
	}
	return t
}

// TestQueryTupleMatchesGroundTruth: generalized-tuple selections must
// agree with the exhaustive polyhedral evaluation, for both kinds, random
// relations (with unbounded tuples) and random query tuples.
func TestQueryTupleMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 4; trial++ {
		rel, ix := buildRandomIndex(t, rng, 150, Options{
			Slopes: EquiangularSlopes(3), Technique: T2,
		}, true)
		for qi := 0; qi < 40; qi++ {
			qt := randQueryTuple(rng)
			for _, kind := range []constraint.QueryKind{constraint.ALL, constraint.EXIST} {
				want, err := EvalTuple(kind, qt, rel)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ix.QueryTuple(kind, qt)
				if err != nil {
					t.Fatalf("%v(%v): %v", kind, qt, err)
				}
				if !sameIDs(got.IDs, want) {
					t.Fatalf("%v(%s): got %v, want %v (stats %+v)", kind, qt, got.IDs, want, got.Stats)
				}
			}
		}
	}
}

// TestQueryTupleUnsatisfiableQuery: an empty query tuple selects nothing.
func TestQueryTupleUnsatisfiableQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	_, ix := buildRandomIndex(t, rng, 50, Options{Slopes: EquiangularSlopes(2), Technique: T2}, false)
	qt, _ := constraint.ParseTuple("x >= 1 && x <= 0", 2)
	for _, kind := range []constraint.QueryKind{constraint.ALL, constraint.EXIST} {
		got, err := ix.QueryTuple(kind, qt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.IDs) != 0 || got.Stats.Path != "empty-query" {
			t.Fatalf("%v on empty query: %v (%+v)", kind, got.IDs, got.Stats)
		}
	}
}

// TestQueryTupleVerticalOnly: a query tuple of only vertical constraints
// degenerates to a scan and stays exact.
func TestQueryTupleVerticalOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	rel, ix := buildRandomIndex(t, rng, 120, Options{Slopes: EquiangularSlopes(3), Technique: T2}, false)
	qt, err := constraint.ParseTuple("x >= -10 && x <= 10", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []constraint.QueryKind{constraint.ALL, constraint.EXIST} {
		want, err := EvalTuple(kind, qt, rel)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.QueryTuple(kind, qt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Path != "tuple-scan" {
			t.Fatalf("path = %q", got.Stats.Path)
		}
		if !sameIDs(got.IDs, want) {
			t.Fatalf("%v: got %v, want %v", kind, got.IDs, want)
		}
	}
}

// TestQueryTupleBoxQuery: the common spatial case — a window (box) query
// tuple mixing vertical and horizontal constraints.
func TestQueryTupleBoxQuery(t *testing.T) {
	rel := constraint.NewRelation(2)
	ix, err := New(rel, Options{Slopes: EquiangularSlopes(3), Technique: T2})
	if err != nil {
		t.Fatal(err)
	}
	inside, _ := constraint.ParseTuple("x >= 1 && x <= 2 && y >= 1 && y <= 2", 2)
	crossing, _ := constraint.ParseTuple("x >= 4 && x <= 6 && y >= 4 && y <= 6", 2)
	outside, _ := constraint.ParseTuple("x >= 20 && x <= 21 && y >= 0 && y <= 1", 2)
	idIn, _ := ix.Insert(inside)
	idCross, _ := ix.Insert(crossing)
	if _, err := ix.Insert(outside); err != nil {
		t.Fatal(err)
	}
	window, _ := constraint.ParseTuple("x >= 0 && x <= 5 && y >= 0 && y <= 5", 2)

	all, err := ix.QueryTuple(constraint.ALL, window)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.IDs) != 1 || all.IDs[0] != idIn {
		t.Fatalf("ALL(window) = %v", all.IDs)
	}
	exist, err := ix.QueryTuple(constraint.EXIST, window)
	if err != nil {
		t.Fatal(err)
	}
	if len(exist.IDs) != 2 || exist.IDs[0] != idIn || exist.IDs[1] != idCross {
		t.Fatalf("EXIST(window) = %v", exist.IDs)
	}
	if exist.Stats.ConstraintsIndexed != 2 || exist.Stats.ConstraintsSkipped != 2 {
		t.Fatalf("constraint accounting: %+v", exist.Stats)
	}
}

// TestQueryTupleRejectsWrongDim: dimension checks.
func TestQueryTupleRejectsWrongDim(t *testing.T) {
	rel := constraint.NewRelation(2)
	ix, err := New(rel, Options{Slopes: EquiangularSlopes(2)})
	if err != nil {
		t.Fatal(err)
	}
	qt3, _ := constraint.NewTuple(3, nil)
	if _, err := ix.QueryTuple(constraint.ALL, qt3); err == nil {
		t.Fatal("3-D query tuple must be rejected")
	}
}
