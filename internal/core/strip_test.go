package core

import (
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
)

// buildSlopesIndex builds a small index over explicit slopes/options so the
// strip geometry is known exactly.
func buildSlopesIndex(t *testing.T, opt Options) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	rel := constraint.NewRelation(2)
	for i := 0; i < 40; i++ {
		if _, err := rel.Insert(randTuple(rng, false)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(rel, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestNearestSlopeTieBreak: a query slope exactly midway between two
// members of S must resolve deterministically to the lower slope (the
// strict < comparison keeps the first candidate examined, which is i-1).
func TestNearestSlopeTieBreak(t *testing.T) {
	ix := buildSlopesIndex(t, Options{Slopes: []float64{-1, 1}, Technique: T2})
	i, exact := ix.nearestSlope(0) // equidistant from -1 and 1
	if exact {
		t.Fatal("slope 0 must not be exact in S = {-1, 1}")
	}
	if i != 0 {
		t.Fatalf("tie broke to index %d (slope %g), want 0 (lower slope)", i, ix.slopes[i])
	}
	// Off-tie slopes still pick the genuinely nearest member.
	if j, _ := ix.nearestSlope(0.25); j != 1 {
		t.Fatalf("nearestSlope(0.25) = %d, want 1", j)
	}
	if j, _ := ix.nearestSlope(-0.25); j != 0 {
		t.Fatalf("nearestSlope(-0.25) = %d, want 0", j)
	}
	// Members themselves are exact, including under Eps perturbation.
	if j, exact := ix.nearestSlope(-1); !exact || j != 0 {
		t.Fatalf("nearestSlope(-1) = %d, %v", j, exact)
	}
	if j, exact := ix.nearestSlope(1 + geom.Eps/2); !exact || j != 1 {
		t.Fatalf("nearestSlope(1+eps/2) = %d, %v", j, exact)
	}
}

// TestStripBoundsOuterHalfWidth: interior strip edges sit midway between
// adjacent slopes; the outermost strips extend by exactly OuterHalfWidth.
func TestStripBoundsOuterHalfWidth(t *testing.T) {
	ix := buildSlopesIndex(t, Options{
		Slopes: []float64{-1, 1}, Technique: T2, OuterHalfWidth: 5,
	})
	lo, hi := ix.stripBounds(0)
	if lo != -6 || hi != 0 {
		t.Fatalf("stripBounds(0) = (%g, %g), want (-6, 0)", lo, hi)
	}
	lo, hi = ix.stripBounds(1)
	if lo != 0 || hi != 6 {
		t.Fatalf("stripBounds(1) = (%g, %g), want (0, 6)", lo, hi)
	}
	// A single-slope set has no interior edges: both sides are outer.
	// (T1/T2 need two slopes, so build the restricted-only structure; the
	// strip geometry is technique-independent.)
	ix1 := buildSlopesIndex(t, Options{
		Slopes: []float64{2}, Technique: RestrictedOnly, OuterHalfWidth: 3,
	})
	lo, hi = ix1.stripBounds(0)
	if lo != -1 || hi != 5 {
		t.Fatalf("stripBounds(0) single slope = (%g, %g), want (-1, 5)", lo, hi)
	}
}

// TestT2FallbackAtStripEdge: a T2 query inside the widened outer strip runs
// the handicap path; just past the edge it falls back to the two-app-query
// plan. Both must still return the ground-truth answer.
func TestT2FallbackAtStripEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	rel := constraint.NewRelation(2)
	for i := 0; i < 120; i++ {
		if _, err := rel.Insert(randTuple(rng, false)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(rel, Options{
		Slopes: []float64{-1, 1}, Technique: T2, OuterHalfWidth: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		slope float64
		path  string
	}{
		{5.9, "t2"},           // inside the widened outer strip of slope 1
		{6.1, "t1(fallback)"}, // just past rightHi = 6
		{-5.9, "t2"},          // inside the outer strip of slope -1
		{-6.1, "t1(fallback)"},
	} {
		q := constraint.Query2(constraint.EXIST, tc.slope, 2, geom.GE)
		res, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Path != tc.path {
			t.Fatalf("slope %g: path %q, want %q", tc.slope, res.Stats.Path, tc.path)
		}
		want, err := q.Eval(rel)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(res.IDs, want) {
			t.Fatalf("slope %g: %v != ground truth %v", tc.slope, res.IDs, want)
		}
	}
}
