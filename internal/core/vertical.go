package core

import (
	"fmt"
	"math"
	"slices"

	"dualcdb/internal/btree"
	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
	"dualcdb/internal/obs"
)

// Vertical half-planes x θ c fall outside the dual transform (footnote 4:
// "the proposed transformation can be extended to deal with vertical
// hyperplanes"). The extension is the degenerate-direction analogue of the
// TOP/BOT trees: index every tuple's horizontal support interval
// [infX, supX] in one B⁺-tree pair, and the four selections reduce to the
// familiar sweeps:
//
//	EXIST(x ≥ c) ⇔ supX ≥ c     (V^up,   upward sweep)
//	ALL(x ≤ c)   ⇔ supX ≤ c     (V^up,   downward sweep)
//	ALL(x ≥ c)   ⇔ infX ≥ c     (V^down, upward sweep)
//	EXIST(x ≤ c) ⇔ infX ≤ c     (V^down, downward sweep)
//
// No approximation is ever needed — there is only one vertical direction —
// so vertical queries always run the restricted path. The pair is optional
// (Options.IndexVertical); without it vertical selections fall back to an
// exhaustive scan.

// ensureVerticalTrees creates the V^up/V^down pair.
func (ix *Index) ensureVerticalTrees() error {
	if ix.vup != nil {
		return nil
	}
	cfg := ix.opt.treeConfig(nil)
	var err error
	if ix.vup, err = btree.New(ix.pool, cfg); err != nil {
		return err
	}
	if ix.vdown, err = btree.New(ix.pool, cfg); err != nil {
		return err
	}
	return nil
}

// supX and infX are the tuple's horizontal support values (±Inf for
// horizontally unbounded extensions).
func supX(ext geom.Polyhedron) float64 { return ext.Support(geom.Point{1, 0}) }
func infX(ext geom.Polyhedron) float64 { return -ext.Support(geom.Point{-1, 0}) }

// insertVertical indexes one tuple in the vertical pair.
func (ix *Index) insertVertical(ext geom.Polyhedron, id constraint.TupleID) error {
	if ix.vup == nil {
		return nil
	}
	if err := ix.vup.Insert(supX(ext), uint32(id)); err != nil {
		return err
	}
	return ix.vdown.Insert(infX(ext), uint32(id))
}

// deleteVertical removes one tuple from the vertical pair.
func (ix *Index) deleteVertical(ext geom.Polyhedron, id constraint.TupleID) error {
	if ix.vup == nil {
		return nil
	}
	if _, err := ix.vup.Delete(supX(ext), uint32(id)); err != nil {
		return err
	}
	_, err := ix.vdown.Delete(infX(ext), uint32(id))
	return err
}

// QueryVertical executes the selection Kind(x op c) against the current
// version. With IndexVertical it runs one exact tree sweep; otherwise it
// scans.
func (ix *Index) QueryVertical(kind constraint.QueryKind, op geom.Op, c float64) (Result, error) {
	rs := ix.pinRoots()
	defer ix.unpinRoots(rs)
	return ix.queryVerticalTraced(kind, op, c, ix.execCtxFor(rs))
}

// QueryVertical executes the selection Kind(x op c) against this
// snapshot's version.
func (s *Snapshot) QueryVertical(kind constraint.QueryKind, op geom.Op, c float64) (Result, error) {
	if err := s.guard(); err != nil {
		return Result{}, err
	}
	return s.ix.queryVerticalTraced(kind, op, c, s.execCtx())
}

// queryVerticalTraced wraps queryVertical in its own query trace.
func (ix *Index) queryVerticalTraced(kind constraint.QueryKind, op geom.Op, c float64, ec *execCtx) (Result, error) {
	if ec.obs != nil {
		ec.tr = ec.obs.StartQuery(fmt.Sprintf("%s(x %s %g)", kind, op, c))
		res, err := ix.queryVertical(kind, op, c, ec)
		ec.obs.FinishQuery(ec.tr, queryInfo(res.Stats, err))
		ec.tr = nil
		return res, err
	}
	return ix.queryVertical(kind, op, c, ec)
}

// queryVertical is QueryVertical on a caller-supplied execCtx, so a
// generalized query tuple can charge the sweep to its own counter and
// trace.
func (ix *Index) queryVertical(kind constraint.QueryKind, op geom.Op, c float64, ec *execCtx) (Result, error) {
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return Result{}, fmt.Errorf("core: invalid vertical intercept %v", c)
	}
	rs := ec.rs
	if rs.vup == nil {
		ids, err := evalVerticalScan(kind, op, c, rs)
		if err != nil {
			return Result{}, err
		}
		st := QueryStats{Path: "scan", Candidates: rs.relLen(), Results: len(ids)}
		st.FalseHits = st.Candidates - st.Results
		return Result{IDs: ids, Stats: st}, nil
	}
	st := QueryStats{Path: "restricted-vertical"}
	// Route: EXIST(≥)/ALL(≤) read V^up; ALL(≥)/EXIST(≤) read V^down.
	useUp := (kind == constraint.EXIST) == (op == geom.GE)
	tr := rs.vdown
	if useUp {
		tr = rs.vup
	}
	// ec.rc gives this query exact PagesRead attribution under concurrency;
	// the sweeps start one tolerance below/above c so that boundary keys
	// within Eps of c are reached even when they live in an earlier leaf
	// than the one owning c (the same convention as collectRestricted).
	var cands []uint32
	var err error
	sw := ec.span(obs.StageSweep)
	if op == geom.GE {
		err = tr.VisitLeavesAscTracked(c-geom.Eps, ec.rc, func(lv btree.LeafView) bool {
			st.LeavesSwept++
			for i, n := 0, lv.Len(); i < n; i++ {
				if lv.Key(i) >= c-geom.Eps {
					cands = append(cands, lv.TID(i))
				}
			}
			return true
		})
	} else {
		err = tr.VisitLeavesDescTracked(c+geom.Eps, ec.rc, func(lv btree.LeafView) bool {
			st.LeavesSwept++
			for i, n := 0, lv.Len(); i < n; i++ {
				if lv.Key(i) <= c+geom.Eps {
					cands = append(cands, lv.TID(i))
				}
			}
			return true
		})
	}
	ec.endSpan(sw, len(cands))
	if err != nil {
		return Result{}, err
	}
	st.Candidates = len(cands)
	rf := ec.span(obs.StageRefine)
	ids := make([]constraint.TupleID, 0, len(cands))
	for _, tid := range cands {
		t, err := rs.relGet(constraint.TupleID(tid))
		if err != nil {
			ec.endSpan(rf, 0)
			return Result{}, err
		}
		ok, err := matchesVertical(kind, op, c, t)
		if err != nil {
			ec.endSpan(rf, 0)
			return Result{}, err
		}
		if ok {
			ids = append(ids, constraint.TupleID(tid))
		} else {
			st.FalseHits++
		}
	}
	slices.Sort(ids)
	ec.endSpan(rf, len(cands))
	st.Results = len(ids)
	st.PagesRead = ec.rc.Physical.Load()
	return Result{IDs: ids, Stats: st}, nil
}

// matchesVertical is the exact predicate for Kind(x op c).
func matchesVertical(kind constraint.QueryKind, op geom.Op, c float64, t *constraint.Tuple) (bool, error) {
	ext, err := t.Extension()
	if err != nil {
		return false, err
	}
	if ext.IsEmpty() {
		return false, nil
	}
	switch {
	case kind == constraint.EXIST && op == geom.GE:
		return supX(ext) >= c-geom.Eps, nil
	case kind == constraint.EXIST && op == geom.LE:
		return infX(ext) <= c+geom.Eps, nil
	case kind == constraint.ALL && op == geom.GE:
		return infX(ext) >= c-geom.Eps, nil
	default: // ALL, LE
		return supX(ext) <= c+geom.Eps, nil
	}
}

// evalVerticalScan is the scan fallback over one frozen version — the
// same predicate as EvalVertical, run against the snapshot's relation
// view so a concurrent commit cannot tear the scan.
func evalVerticalScan(kind constraint.QueryKind, op geom.Op, c float64, rs *rootSet) ([]constraint.TupleID, error) {
	var out []constraint.TupleID
	var scanErr error
	rs.relScan(func(t *constraint.Tuple) bool {
		ok, err := matchesVertical(kind, op, c, t)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			out = append(out, t.ID())
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	slices.Sort(out)
	return out, nil
}

// EvalVertical is the exhaustive ground truth for vertical selections.
func EvalVertical(kind constraint.QueryKind, op geom.Op, c float64, rel *constraint.Relation) ([]constraint.TupleID, error) {
	var out []constraint.TupleID
	var scanErr error
	rel.Scan(func(t *constraint.Tuple) bool {
		ok, err := matchesVertical(kind, op, c, t)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			out = append(out, t.ID())
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	slices.Sort(out)
	return out, nil
}
