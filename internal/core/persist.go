package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"dualcdb/internal/btree"
	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
	"dualcdb/internal/pagestore"
)

// Persistence: a 2-D dual index together with its relation can be saved
// into its own page store and reopened later — the store is then a
// self-contained constraint database file (use pagestore.OpenFileStore for
// an on-disk one).
//
// Layout: the index's first allocated page (page 1 on a dedicated store)
// is the catalog. It records the options, the slope set, the root metadata
// of every B⁺-tree and the head of a chained-page stream holding the
// serialized relation tuples. Save rewrites the catalog and the tuple
// stream; Open restores the relation (with original tuple ids) and
// reattaches the trees.

const (
	// DCDB0002: flat node layout with self-describing header offsets
	// (btree/node.go); DCDB0001 pages are not readable.
	catalogMagic   = "DCDB0002"
	catalogPage    = pagestore.PageID(1)
	maxPersistK    = 23 // catalog page capacity bound at 1 KiB pages (incl. vertical pair)
	chainHeaderLen = 4  // next-page pointer
)

// Save writes the catalog and the relation into the index's store. The
// index must own its store (created via New/Build without a shared Pool),
// so that the catalog sits at page 1.
//
// Save requires a quiescent index: it excludes writers for its duration
// and refuses to run while any snapshot is active, because it flattens
// the MVCC chain-override maps into the page bytes (the persisted format
// has no override sidecar) — an edit an older pinned version could
// otherwise observe.
func (ix *Index) Save() error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if ix.catalog == pagestore.InvalidPage {
		return fmt.Errorf("core: index has no catalog page (built on a shared pool?)")
	}
	if len(ix.slopes) > maxPersistK {
		return fmt.Errorf("core: cannot persist k=%d > %d slope sets", len(ix.slopes), maxPersistK)
	}
	if c := ix.pool.SnapshotCensus(); c.Active > 0 {
		return fmt.Errorf("core: Save with %d active snapshots", c.Active)
	}
	for _, t := range ix.allTrees() {
		if err := t.FlattenChainOverrides(); err != nil {
			return err
		}
	}
	// Serialize the relation.
	data, count, err := encodeRelation(ix.rel)
	if err != nil {
		return err
	}
	head, pages, err := writeChain(ix.pool, data)
	if err != nil {
		return err
	}
	// Free the previous tuple chain, if any.
	if ix.tupleChain != pagestore.InvalidPage {
		if err := freeChain(ix.pool, ix.tupleChain); err != nil {
			return err
		}
		ix.dataPages = 0
	}
	ix.tupleChain = head
	ix.dataPages = pages

	f, err := ix.pool.Get(ix.catalog)
	if err != nil {
		return err
	}
	defer f.Release()
	d := f.Data()
	for i := range d {
		d[i] = 0
	}
	copy(d[0:8], catalogMagic)
	d[8] = byte(ix.opt.Technique)
	if ix.vup != nil {
		d[9] = 1 // flags: bit 0 = vertical pair present
	}
	binary.LittleEndian.PutUint16(d[10:12], uint16(len(ix.slopes)))
	binary.LittleEndian.PutUint32(d[12:16], uint32(ix.opt.RebuildHandicapsEvery))
	binary.LittleEndian.PutUint64(d[16:24], math.Float64bits(ix.opt.PivotX))
	binary.LittleEndian.PutUint64(d[24:32], math.Float64bits(ix.opt.OuterHalfWidth))
	binary.LittleEndian.PutUint64(d[32:40], math.Float64bits(ix.opt.FillFactor))
	binary.LittleEndian.PutUint32(d[40:44], uint32(head))
	binary.LittleEndian.PutUint32(d[44:48], uint32(count))
	binary.LittleEndian.PutUint32(d[48:52], uint32(ix.rel.Dim()))
	off := 52
	for _, s := range ix.slopes {
		binary.LittleEndian.PutUint64(d[off:off+8], math.Float64bits(s))
		off += 8
	}
	writeMeta := func(m btree.Meta) {
		binary.LittleEndian.PutUint32(d[off:off+4], uint32(m.Root))
		binary.LittleEndian.PutUint32(d[off+4:off+8], uint32(m.Height))
		binary.LittleEndian.PutUint32(d[off+8:off+12], uint32(m.Size))
		binary.LittleEndian.PutUint32(d[off+12:off+16], uint32(m.Pages))
		off += 16
	}
	for i := range ix.slopes {
		writeMeta(ix.up[i].Meta())
		writeMeta(ix.down[i].Meta())
	}
	if ix.vup != nil {
		writeMeta(ix.vup.Meta())
		writeMeta(ix.vdown.Meta())
	}
	f.MarkDirty()
	return ix.pool.Flush()
}

// Open reopens a saved database from its store: it rebuilds the relation
// (original tuple ids preserved) and reattaches the index trees.
func Open(pool *pagestore.Pool) (*constraint.Relation, *Index, error) {
	f, err := pool.Get(catalogPage)
	if err != nil {
		return nil, nil, fmt.Errorf("core: read catalog: %w", err)
	}
	d := f.Data()
	if string(d[0:8]) != catalogMagic {
		f.Release()
		return nil, nil, fmt.Errorf("core: bad catalog magic %q", d[0:8])
	}
	hasVertical := d[9]&1 != 0
	opt := Options{
		Technique:             Technique(d[8]),
		IndexVertical:         hasVertical,
		RebuildHandicapsEvery: int(binary.LittleEndian.Uint32(d[12:16])),
		PivotX:                math.Float64frombits(binary.LittleEndian.Uint64(d[16:24])),
		OuterHalfWidth:        math.Float64frombits(binary.LittleEndian.Uint64(d[24:32])),
		FillFactor:            math.Float64frombits(binary.LittleEndian.Uint64(d[32:40])),
		PageSize:              pool.PageSize(),
	}
	k := int(binary.LittleEndian.Uint16(d[10:12]))
	head := pagestore.PageID(binary.LittleEndian.Uint32(d[40:44]))
	count := int(binary.LittleEndian.Uint32(d[44:48]))
	dim := int(binary.LittleEndian.Uint32(d[48:52]))
	if dim != 2 {
		f.Release()
		return nil, nil, fmt.Errorf("core: persisted dimension %d (the 2-D Open only)", dim)
	}
	off := 52
	slopes := make([]float64, k)
	for i := range slopes {
		slopes[i] = math.Float64frombits(binary.LittleEndian.Uint64(d[off : off+8]))
		off += 8
	}
	opt.Slopes = slopes
	nMetas := 2 * k
	if hasVertical {
		nMetas += 2
	}
	metas := make([]btree.Meta, nMetas)
	for i := range metas {
		metas[i] = btree.Meta{
			Root:   pagestore.PageID(binary.LittleEndian.Uint32(d[off : off+4])),
			Height: int(binary.LittleEndian.Uint32(d[off+4 : off+8])),
			Size:   int(binary.LittleEndian.Uint32(d[off+8 : off+12])),
			Pages:  int(binary.LittleEndian.Uint32(d[off+12 : off+16])),
		}
		off += 16
	}
	f.Release()

	// Rebuild the relation from the tuple chain.
	data, chainPages, err := readChain(pool, head)
	if err != nil {
		return nil, nil, err
	}
	rel, err := decodeRelation(data, count, dim)
	if err != nil {
		return nil, nil, err
	}

	// Reattach the trees.
	ix := &Index{
		rel:        rel,
		opt:        opt,
		slopes:     slopes,
		pool:       pool,
		catalog:    catalogPage,
		tupleChain: head,
	}
	ix.dataPages = chainPages
	kinds := []btree.SlotKind{btree.MinSlot, btree.MinSlot, btree.MaxSlot, btree.MaxSlot}
	cfg := opt.treeConfig(kinds)
	for i := 0; i < k; i++ {
		u, err := btree.Restore(pool, cfg, metas[2*i])
		if err != nil {
			return nil, nil, fmt.Errorf("core: restore B_%d^up: %w", i, err)
		}
		dn, err := btree.Restore(pool, cfg, metas[2*i+1])
		if err != nil {
			return nil, nil, fmt.Errorf("core: restore B_%d^down: %w", i, err)
		}
		ix.up = append(ix.up, u)
		ix.down = append(ix.down, dn)
	}
	if hasVertical {
		vcfg := opt.treeConfig(nil)
		if ix.vup, err = btree.Restore(pool, vcfg, metas[2*k]); err != nil {
			return nil, nil, fmt.Errorf("core: restore V^up: %w", err)
		}
		if ix.vdown, err = btree.Restore(pool, vcfg, metas[2*k+1]); err != nil {
			return nil, nil, fmt.Errorf("core: restore V^down: %w", err)
		}
	}
	// Indexed set: exactly the satisfiable tuples (Insert's invariant).
	indexed := make(map[constraint.TupleID]bool)
	rel.Scan(func(t *constraint.Tuple) bool {
		if t.IsSatisfiable() {
			indexed[t.ID()] = true
		}
		return true
	})
	ix.republishLocked(1, indexed, 0)
	ix.registerGauges()
	return rel, ix, nil
}

// encodeRelation serializes every tuple: id, constraint count, then per
// constraint op, constant and coefficients.
func encodeRelation(rel *constraint.Relation) ([]byte, int, error) {
	var buf []byte
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf = append(buf, b[:]...)
	}
	put64 := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		buf = append(buf, b[:]...)
	}
	count := 0
	dim := rel.Dim()
	rel.Scan(func(t *constraint.Tuple) bool {
		put32(uint32(t.ID()))
		cons := t.Constraints()
		put32(uint32(len(cons)))
		for _, h := range cons {
			if h.Op == geom.LE {
				buf = append(buf, 0)
			} else {
				buf = append(buf, 1)
			}
			put64(h.C)
			for i := 0; i < dim; i++ {
				put64(h.A[i])
			}
		}
		count++
		return true
	})
	return buf, count, nil
}

// decodeRelation reverses encodeRelation.
func decodeRelation(data []byte, count, dim int) (*constraint.Relation, error) {
	rel := constraint.NewRelation(dim)
	off := 0
	need := func(n int) error {
		if off+n > len(data) {
			return fmt.Errorf("core: truncated tuple stream at byte %d", off)
		}
		return nil
	}
	for i := 0; i < count; i++ {
		if err := need(8); err != nil {
			return nil, err
		}
		id := constraint.TupleID(binary.LittleEndian.Uint32(data[off : off+4]))
		m := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		off += 8
		if m < 0 || m > 1<<16 {
			return nil, fmt.Errorf("core: implausible constraint count %d", m)
		}
		cons := make([]geom.HalfSpace, 0, m)
		for j := 0; j < m; j++ {
			if err := need(1 + 8 + 8*dim); err != nil {
				return nil, err
			}
			op := geom.LE
			if data[off] == 1 {
				op = geom.GE
			}
			off++
			c := math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
			off += 8
			a := make([]float64, dim)
			for x := 0; x < dim; x++ {
				a[x] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
				off += 8
			}
			cons = append(cons, geom.HalfSpace{A: a, C: c, Op: op})
		}
		t, err := constraint.NewTuple(dim, cons)
		if err != nil {
			return nil, err
		}
		if err := rel.InsertWithID(t, id); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// writeChain stores data in a linked chain of pages: each page holds a
// 4-byte next pointer followed by payload bytes.
func writeChain(pool *pagestore.Pool, data []byte) (pagestore.PageID, int, error) {
	payload := pool.PageSize() - chainHeaderLen
	var head, prevID pagestore.PageID
	var prev *pagestore.Frame
	pages := 0
	for off := 0; off == 0 || off < len(data); off += payload {
		f, err := pool.NewPage()
		if err != nil {
			return pagestore.InvalidPage, 0, err
		}
		pages++
		if head == pagestore.InvalidPage {
			head = f.ID()
		}
		if prev != nil {
			binary.LittleEndian.PutUint32(prev.Data()[0:4], uint32(f.ID()))
			prev.MarkDirty()
			prev.Release()
		}
		end := off + payload
		if end > len(data) {
			end = len(data)
		}
		if off <= end {
			copy(f.Data()[chainHeaderLen:], data[off:end])
		}
		f.MarkDirty()
		prev, prevID = f, f.ID()
	}
	_ = prevID
	if prev != nil {
		binary.LittleEndian.PutUint32(prev.Data()[0:4], 0)
		prev.MarkDirty()
		prev.Release()
	}
	return head, pages, nil
}

// readChain concatenates a page chain's payload, returning the data and
// the number of chain pages.
func readChain(pool *pagestore.Pool, head pagestore.PageID) ([]byte, int, error) {
	var out []byte
	pages := 0
	for id := head; id != pagestore.InvalidPage; {
		f, err := pool.Get(id)
		if err != nil {
			return nil, 0, err
		}
		next := pagestore.PageID(binary.LittleEndian.Uint32(f.Data()[0:4]))
		out = append(out, f.Data()[chainHeaderLen:]...)
		f.Release()
		id = next
		pages++
	}
	return out, pages, nil
}

// freeChain releases a page chain.
func freeChain(pool *pagestore.Pool, head pagestore.PageID) error {
	for id := head; id != pagestore.InvalidPage; {
		f, err := pool.Get(id)
		if err != nil {
			return err
		}
		next := pagestore.PageID(binary.LittleEndian.Uint32(f.Data()[0:4]))
		f.Release()
		if err := pool.FreePage(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}
