package core

import (
	"fmt"
	"math"
	"slices"

	"dualcdb/internal/btree"
	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
	"dualcdb/internal/obs"
	"dualcdb/internal/pagestore"
)

// This file implements Section 4.4: the extension of the dual index to an
// arbitrary d-dimensional space. The predefined set S becomes a set of
// *sites* in slope space E^{d−1}; every site carries a B^up/B^down tree
// pair over TOP^P/BOT^P values, a query routes to its nearest site (the
// proximity partition the paper obtains from the Voronoi diagram of S),
// and the T2 handicap machinery bounds the second sweep.
//
// Design note (documented in DESIGN.md §4.9): instead of one handicap
// per Voronoi edge (4d per leaf), each leaf carries one low/high pair per
// tree computed over the site's whole (clamped) Voronoi cell. That is the
// edge-wise scheme's conservative envelope: strictly sound, marginally
// more second-sweep I/O, and it keeps the leaf layout independent of the
// cell's edge count. Cells are clamped to a configurable slope-space box;
// query slopes outside every cell fall back to an exhaustive scan (the
// structure has no covering app-query construction in E^d without the
// paper's "d searches" machinery, whose covering sets are only sketched).
type IndexD struct {
	rel   *constraint.Relation
	opt   OptionsD
	dim   int          // ambient dimension d
	sites []geom.Point // S ⊂ E^{d−1}
	cells []geom.Polyhedron
	pool  *pagestore.Pool
	up    []*btree.Tree
	down  []*btree.Tree

	deletesSinceRebuild int
	indexed             map[constraint.TupleID]bool
}

// OptionsD configures a d-dimensional dual index.
type OptionsD struct {
	// Sites is the predefined set S of slope points in E^{d−1}.
	Sites []geom.Point
	// SlopeBoxLo/SlopeBoxHi clamp the Voronoi cells (and hence the region
	// where T2 approximation applies). Defaults to the sites' bounding box
	// expanded by the largest inter-site distance.
	SlopeBoxLo, SlopeBoxHi []float64
	// PageSize / PoolPages / Pool / FillFactor as in Options.
	PageSize   int
	PoolPages  int
	Pool       *pagestore.Pool
	FillFactor float64
	// RebuildHandicapsEvery as in Options.
	RebuildHandicapsEvery int
	// Observe as in Options: attaches per-query metrics and tracing; nil
	// keeps the query path allocation-free.
	Observe *obs.Observer
}

// Handicap slots of the d-dimensional trees.
const (
	slotDLow  = 0 // MinSlot: min surface value at the site over tuples routed by the cell max
	slotDHigh = 1 // MaxSlot: max surface value at the site over tuples routed by the cell min
)

// NewD creates an empty d-dimensional dual index (d ≥ 2 works, but the
// specialized 2-D Index is preferable there).
func NewD(rel *constraint.Relation, opt OptionsD) (*IndexD, error) {
	d := rel.Dim()
	if d < 2 {
		return nil, fmt.Errorf("core: dimension %d < 2", d)
	}
	if len(opt.Sites) == 0 {
		return nil, fmt.Errorf("core: empty site set S")
	}
	for _, s := range opt.Sites {
		if s.Dim() != d-1 {
			return nil, fmt.Errorf("core: site %v has dimension %d, want %d", s, s.Dim(), d-1)
		}
	}
	for i := range opt.Sites {
		for j := i + 1; j < len(opt.Sites); j++ {
			if opt.Sites[i].Eq(opt.Sites[j]) {
				return nil, fmt.Errorf("core: duplicate site %v", opt.Sites[i])
			}
		}
	}
	if opt.PageSize <= 0 {
		opt.PageSize = pagestore.DefaultPageSize
	}
	if opt.PoolPages <= 0 {
		opt.PoolPages = 512
	}
	if opt.FillFactor <= 0 || opt.FillFactor > 1 {
		opt.FillFactor = 0.9
	}
	lo, hi, err := slopeBox(opt, d-1)
	if err != nil {
		return nil, err
	}
	opt.SlopeBoxLo, opt.SlopeBoxHi = lo, hi

	pool := opt.Pool
	if pool == nil {
		pool = pagestore.NewPool(pagestore.NewMemStore(opt.PageSize), opt.PoolPages)
	}
	ix := &IndexD{
		rel:     rel,
		opt:     opt,
		dim:     d,
		sites:   append([]geom.Point(nil), opt.Sites...),
		pool:    pool,
		indexed: make(map[constraint.TupleID]bool),
	}
	if err := ix.buildCells(); err != nil {
		return nil, err
	}
	kinds := []btree.SlotKind{btree.MinSlot, btree.MaxSlot}
	cfg := btree.Config{HandicapKinds: kinds, FillFactor: opt.FillFactor}
	for range ix.sites {
		u, err := btree.New(pool, cfg)
		if err != nil {
			return nil, err
		}
		dn, err := btree.New(pool, cfg)
		if err != nil {
			return nil, err
		}
		ix.up = append(ix.up, u)
		ix.down = append(ix.down, dn)
	}
	return ix, nil
}

// slopeBox fills the default clamping box.
func slopeBox(opt OptionsD, sdim int) (lo, hi []float64, err error) {
	if opt.SlopeBoxLo != nil || opt.SlopeBoxHi != nil {
		if len(opt.SlopeBoxLo) != sdim || len(opt.SlopeBoxHi) != sdim {
			return nil, nil, fmt.Errorf("core: slope box dimension mismatch")
		}
		for i := range opt.SlopeBoxLo {
			if opt.SlopeBoxLo[i] >= opt.SlopeBoxHi[i] {
				return nil, nil, fmt.Errorf("core: empty slope box on axis %d", i)
			}
		}
		return opt.SlopeBoxLo, opt.SlopeBoxHi, nil
	}
	lo = make([]float64, sdim)
	hi = make([]float64, sdim)
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	maxDist := 0.0
	for i, s := range opt.Sites {
		for k, c := range s {
			lo[k] = math.Min(lo[k], c)
			hi[k] = math.Max(hi[k], c)
		}
		for j := i + 1; j < len(opt.Sites); j++ {
			if d := s.Dist(opt.Sites[j]); d > maxDist {
				maxDist = d
			}
		}
	}
	if maxDist == 0 {
		maxDist = 1 // single site
	}
	for i := range lo {
		lo[i] -= maxDist
		hi[i] += maxDist
	}
	return lo, hi, nil
}

// buildCells computes the clamped Voronoi cell of each site: the points of
// the slope box nearer to it than to any other site.
func (ix *IndexD) buildCells() error {
	sdim := ix.dim - 1
	for i, s := range ix.sites {
		var hs []geom.HalfSpace
		for j, t := range ix.sites {
			if i == j {
				continue
			}
			// |x−s|² ≤ |x−t|²  ⇔  2(t−s)·x ≤ |t|² − |s|².
			a := make([]float64, sdim)
			for k := 0; k < sdim; k++ {
				a[k] = 2 * (t[k] - s[k])
			}
			c := s.Dot(s) - t.Dot(t)
			hs = append(hs, geom.HalfSpace{A: a, C: c, Op: geom.LE})
		}
		for k := 0; k < sdim; k++ {
			axis := make([]float64, sdim)
			axis[k] = 1
			hs = append(hs,
				geom.HalfSpace{A: append([]float64(nil), axis...), C: -ix.opt.SlopeBoxHi[k], Op: geom.LE},
				geom.HalfSpace{A: axis, C: -ix.opt.SlopeBoxLo[k], Op: geom.GE},
			)
		}
		cell, err := geom.FromHalfSpaces(hs, sdim)
		if err != nil {
			return fmt.Errorf("core: cell of site %v: %w", s, err)
		}
		if cell.IsEmpty() || len(cell.Verts) == 0 {
			return fmt.Errorf("core: empty Voronoi cell for site %v (outside the slope box?)", s)
		}
		ix.cells = append(ix.cells, cell)
	}
	return nil
}

// BuildD bulk-loads a d-dimensional dual index from the relation.
func BuildD(rel *constraint.Relation, opt OptionsD) (*IndexD, error) {
	ix, err := NewD(rel, opt)
	if err != nil {
		return nil, err
	}
	type surf struct {
		id  constraint.TupleID
		ext geom.Polyhedron
	}
	var ts []surf
	var buildErr error
	rel.Scan(func(t *constraint.Tuple) bool {
		ext, err := t.Extension()
		if err != nil {
			buildErr = err
			return false
		}
		if ext.IsEmpty() {
			return true
		}
		ts = append(ts, surf{id: t.ID(), ext: ext})
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	for i, s := range ix.sites {
		upEntries := make([]btree.Entry, 0, len(ts))
		downEntries := make([]btree.Entry, 0, len(ts))
		for _, t := range ts {
			upEntries = append(upEntries, btree.Entry{Key: t.ext.Top(s), TID: uint32(t.id)})
			downEntries = append(downEntries, btree.Entry{Key: t.ext.Bot(s), TID: uint32(t.id)})
		}
		slices.SortFunc(upEntries, btree.Entry.Compare)
		slices.SortFunc(downEntries, btree.Entry.Compare)
		if err := ix.up[i].BulkLoad(upEntries); err != nil {
			return nil, err
		}
		if err := ix.down[i].BulkLoad(downEntries); err != nil {
			return nil, err
		}
	}
	for _, t := range ts {
		if err := ix.mergeHandicapsD(t.ext); err != nil {
			return nil, err
		}
		ix.indexed[t.id] = true
	}
	return ix, nil
}

// cellTopExtrema returns the exact maximum and a sound lower bound of the
// minimum of TOP^P over the cell. TOP is convex over slope space, so its
// max over the cell is attained at a cell vertex. For the min, TOP(b) =
// max_v g_v(b) ≥ g_v(b) for every tuple vertex v, so
// max_v (min over cell vertices of g_v) is a valid lower bound (rays only
// raise TOP, keeping the bound valid).
func cellTopExtrema(ext geom.Polyhedron, cell geom.Polyhedron) (maxTop, minTopLB float64) {
	maxTop = math.Inf(-1)
	for _, b := range cell.Verts {
		if v := ext.Top(b); v > maxTop {
			maxTop = v
		}
	}
	minTopLB = math.Inf(-1)
	for _, v := range ext.Verts {
		minG := math.Inf(1)
		for _, b := range cell.Verts {
			if g := geom.FDual(v, b); g < minG {
				minG = g
			}
		}
		if minG > minTopLB {
			minTopLB = minG
		}
	}
	return maxTop, minTopLB
}

// cellBotExtrema returns the exact minimum and a sound upper bound of the
// maximum of BOT^P over the cell (the concave mirror of cellTopExtrema).
func cellBotExtrema(ext geom.Polyhedron, cell geom.Polyhedron) (minBot, maxBotUB float64) {
	minBot = math.Inf(1)
	for _, b := range cell.Verts {
		if v := ext.Bot(b); v < minBot {
			minBot = v
		}
	}
	maxBotUB = math.Inf(1)
	for _, v := range ext.Verts {
		maxG := math.Inf(-1)
		for _, b := range cell.Verts {
			if g := geom.FDual(v, b); g > maxG {
				maxG = g
			}
		}
		if maxG < maxBotUB {
			maxBotUB = maxG
		}
	}
	return minBot, maxBotUB
}

// mergeHandicapsD folds one tuple into every site's handicap slots.
func (ix *IndexD) mergeHandicapsD(ext geom.Polyhedron) error {
	for i, s := range ix.sites {
		topV, botV := ext.Top(s), ext.Bot(s)
		cell := ix.cells[i]

		maxTop, minTopLB := cellTopExtrema(ext, cell)
		// EXIST(≥) second-sweep bound: route by the cell max of TOP.
		if err := ix.up[i].MergeHandicap(maxTop, slotDLow, topV); err != nil {
			return err
		}
		// ALL(≤) second-sweep bound: route by (a lower bound of) the cell
		// min of TOP. A lower bound routes to an earlier leaf, which the
		// first (downward) sweep still visits — sound.
		if err := ix.up[i].MergeHandicap(minTopLB, slotDHigh, topV); err != nil {
			return err
		}

		minBot, maxBotUB := cellBotExtrema(ext, cell)
		// ALL(≥): route by (an upper bound of) the cell max of BOT.
		if err := ix.down[i].MergeHandicap(maxBotUB, slotDLow, botV); err != nil {
			return err
		}
		// EXIST(≤): route by the cell min of BOT.
		if err := ix.down[i].MergeHandicap(minBot, slotDHigh, botV); err != nil {
			return err
		}
	}
	return nil
}

// Insert adds a tuple to the relation and the index.
func (ix *IndexD) Insert(t *constraint.Tuple) (constraint.TupleID, error) {
	if t.Dim() != ix.dim {
		return 0, fmt.Errorf("core: tuple dimension %d, index dimension %d", t.Dim(), ix.dim)
	}
	id, err := ix.rel.Insert(t)
	if err != nil {
		return 0, err
	}
	ext, err := t.Extension()
	if err != nil {
		return id, err
	}
	if ext.IsEmpty() {
		return id, nil
	}
	for i, s := range ix.sites {
		if err := ix.up[i].Insert(ext.Top(s), uint32(id)); err != nil {
			return id, err
		}
		if err := ix.down[i].Insert(ext.Bot(s), uint32(id)); err != nil {
			return id, err
		}
	}
	if err := ix.mergeHandicapsD(ext); err != nil {
		return id, err
	}
	ix.indexed[id] = true
	return id, nil
}

// Delete removes a tuple; handicaps stay conservatively stale and are
// rebuilt exactly every RebuildHandicapsEvery deletions.
func (ix *IndexD) Delete(id constraint.TupleID) error {
	t, err := ix.rel.Get(id)
	if err != nil {
		return err
	}
	if ix.indexed[id] {
		ext, err := t.Extension()
		if err != nil {
			return err
		}
		for i, s := range ix.sites {
			if _, err := ix.up[i].Delete(ext.Top(s), uint32(id)); err != nil {
				return err
			}
			if _, err := ix.down[i].Delete(ext.Bot(s), uint32(id)); err != nil {
				return err
			}
		}
		delete(ix.indexed, id)
		ix.deletesSinceRebuild++
	}
	if err := ix.rel.Delete(id); err != nil {
		return err
	}
	if n := ix.opt.RebuildHandicapsEvery; n > 0 && ix.deletesSinceRebuild >= n {
		return ix.RebuildHandicaps()
	}
	return nil
}

// RebuildHandicaps recomputes all handicap slots exactly.
func (ix *IndexD) RebuildHandicaps() error {
	for i := range ix.sites {
		if err := ix.up[i].ResetHandicaps(); err != nil {
			return err
		}
		if err := ix.down[i].ResetHandicaps(); err != nil {
			return err
		}
	}
	var err error
	ix.rel.Scan(func(t *constraint.Tuple) bool {
		if !ix.indexed[t.ID()] {
			return true
		}
		ext, e := t.Extension()
		if e != nil {
			err = e
			return false
		}
		if e := ix.mergeHandicapsD(ext); e != nil {
			err = e
			return false
		}
		return true
	})
	ix.deletesSinceRebuild = 0
	return err
}

// Pages returns the total page count of all trees.
func (ix *IndexD) Pages() int {
	n := 0
	for i := range ix.sites {
		n += ix.up[i].Pages() + ix.down[i].Pages()
	}
	return n
}

// Pool exposes the buffer pool.
func (ix *IndexD) Pool() *pagestore.Pool { return ix.pool }

// Len returns the number of indexed tuples.
func (ix *IndexD) Len() int { return len(ix.indexed) }

// Sites returns a copy of the site set.
func (ix *IndexD) Sites() []geom.Point {
	out := make([]geom.Point, len(ix.sites))
	for i, s := range ix.sites {
		out[i] = s.Clone()
	}
	return out
}

// nearestSite returns the closest site index and whether the point
// coincides with it (the proximity partition's answer).
func (ix *IndexD) nearestSite(p geom.Point) (int, bool) {
	best, bestDist := -1, math.Inf(1)
	for i, s := range ix.sites {
		if d := s.Dist(p); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, bestDist <= geom.Eps
}

// Query executes a d-dimensional ALL/EXIST half-plane selection.
func (ix *IndexD) Query(q constraint.Query) (Result, error) {
	ec := &execCtx{rc: &pagestore.ReadCounter{}, obs: ix.opt.Observe}
	if ec.obs != nil {
		ec.tr = ec.obs.StartQuery(q.String())
		res, err := ix.queryD(q, ec)
		ec.obs.FinishQuery(ec.tr, queryInfo(res.Stats, err))
		ec.tr = nil
		return res, err
	}
	return ix.queryD(q, ec)
}

// queryD validates, routes and dispatches one selection; every page read
// is charged to the execCtx's exact per-query counter (a before/after
// delta on the shared pool counters would absorb concurrent queries'
// misses).
func (ix *IndexD) queryD(q constraint.Query, ec *execCtx) (Result, error) {
	if q.Dim() != ix.dim {
		return Result{}, fmt.Errorf("core: query dimension %d, index dimension %d", q.Dim(), ix.dim)
	}
	for _, b := range q.Slope {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return Result{}, fmt.Errorf("core: invalid query slope %v", q.Slope)
		}
	}
	p := geom.Point(q.Slope)
	sp := ec.span(obs.StageRoute)
	i, exact := ix.nearestSite(p)
	ec.endSpan(sp, 0)

	var res Result
	var err error
	switch {
	case exact:
		res, err = ix.runRestrictedD(i, q, ec)
	default:
		in, cerr := ix.cells[i].Contains(p)
		if cerr != nil {
			return Result{}, cerr
		}
		if in {
			res, err = ix.runT2D(i, q, ec)
		} else {
			res, err = ix.runScan(q)
		}
	}
	if err != nil {
		return Result{}, err
	}
	res.Stats.PagesRead = ec.rc.Physical.Load()
	return res, nil
}

func (ix *IndexD) treeD(i int, q constraint.Query) *btree.Tree {
	if q.UsesTop() {
		return ix.up[i]
	}
	return ix.down[i]
}

// runRestrictedD answers a query whose slope point is in S.
func (ix *IndexD) runRestrictedD(i int, q constraint.Query, ec *execCtx) (Result, error) {
	st := QueryStats{Path: "restricted"}
	tr := ix.treeD(i, q)
	b := q.Intercept
	var cands []uint32
	var err error
	sw := ec.span(obs.StageSweep)
	if q.SweepsUp() {
		err = tr.VisitLeavesAscTracked(b, ec.rc, func(lv btree.LeafView) bool {
			st.LeavesSwept++
			for i, n := 0, lv.Len(); i < n; i++ {
				if lv.Key(i) >= b-geom.Eps {
					cands = append(cands, lv.TID(i))
				}
			}
			return true
		})
	} else {
		err = tr.VisitLeavesDescTracked(b, ec.rc, func(lv btree.LeafView) bool {
			st.LeavesSwept++
			for i, n := 0, lv.Len(); i < n; i++ {
				if lv.Key(i) <= b+geom.Eps {
					cands = append(cands, lv.TID(i))
				}
			}
			return true
		})
	}
	ec.endSpan(sw, len(cands))
	if err != nil {
		return Result{}, err
	}
	return ix.refineD(q, cands, st, ec)
}

// runT2D is the cell-handicap analogue of the 2-D T2 execution.
func (ix *IndexD) runT2D(i int, q constraint.Query, ec *execCtx) (Result, error) {
	st := QueryStats{Path: "t2"}
	tr := ix.treeD(i, q)
	b := q.Intercept
	var cands []uint32
	if q.SweepsUp() {
		low := math.Inf(1)
		sw := ec.span(obs.StageSweep)
		err := tr.VisitLeavesAscTracked(b, ec.rc, func(lv btree.LeafView) bool {
			st.LeavesSwept++
			if h := lv.Handicap(slotDLow); h < low {
				low = h
			}
			for i, n := 0, lv.Len(); i < n; i++ {
				if lv.Key(i) >= b {
					cands = append(cands, lv.TID(i))
				}
			}
			return true
		})
		ec.endSpan(sw, len(cands))
		if err != nil {
			return Result{}, err
		}
		if low < b {
			n1 := len(cands)
			sw2 := ec.span(obs.StageSweepSecond)
			err = tr.VisitLeavesDescTracked(b, ec.rc, func(lv btree.LeafView) bool {
				st.LeavesSwept++
				done := false
				for i, n := 0, lv.Len(); i < n; i++ {
					if lv.Key(i) >= b {
						continue
					}
					if lv.Key(i) < low {
						done = true
						continue
					}
					cands = append(cands, lv.TID(i))
				}
				return !done
			})
			ec.endSpan(sw2, len(cands)-n1)
			if err != nil {
				return Result{}, err
			}
		}
	} else {
		high := math.Inf(-1)
		sw := ec.span(obs.StageSweep)
		err := tr.VisitLeavesDescTracked(b, ec.rc, func(lv btree.LeafView) bool {
			st.LeavesSwept++
			if h := lv.Handicap(slotDHigh); h > high {
				high = h
			}
			for i, n := 0, lv.Len(); i < n; i++ {
				if lv.Key(i) <= b {
					cands = append(cands, lv.TID(i))
				}
			}
			return true
		})
		ec.endSpan(sw, len(cands))
		if err != nil {
			return Result{}, err
		}
		if high > b {
			n1 := len(cands)
			sw2 := ec.span(obs.StageSweepSecond)
			err = tr.VisitLeavesAscTracked(b, ec.rc, func(lv btree.LeafView) bool {
				st.LeavesSwept++
				done := false
				for i, n := 0, lv.Len(); i < n; i++ {
					if lv.Key(i) <= b {
						continue
					}
					if lv.Key(i) > high {
						done = true
						continue
					}
					cands = append(cands, lv.TID(i))
				}
				return !done
			})
			ec.endSpan(sw2, len(cands)-n1)
			if err != nil {
				return Result{}, err
			}
		}
	}
	return ix.refineD(q, cands, st, ec)
}

// runScan answers a query whose slope lies outside every clamped cell by
// exhaustive evaluation (counted as its own path in the stats).
func (ix *IndexD) runScan(q constraint.Query) (Result, error) {
	st := QueryStats{Path: "scan"}
	ids, err := q.Eval(ix.rel)
	if err != nil {
		return Result{}, err
	}
	st.Candidates = ix.rel.Len()
	st.Results = len(ids)
	st.FalseHits = st.Candidates - st.Results
	return Result{IDs: ids, Stats: st}, nil
}

// refineD filters candidates through the exact predicate.
func (ix *IndexD) refineD(q constraint.Query, cands []uint32, st QueryStats, ec *execCtx) (Result, error) {
	st.Candidates = len(cands)
	rf := ec.span(obs.StageRefine)
	defer func() { ec.endSpan(rf, len(cands)) }()
	ids := make([]constraint.TupleID, 0, len(cands))
	for _, tid := range cands {
		t, err := ix.rel.Get(constraint.TupleID(tid))
		if err != nil {
			return Result{}, fmt.Errorf("core: candidate %d not in relation: %w", tid, err)
		}
		ok, err := q.Matches(t)
		if err != nil {
			return Result{}, err
		}
		if ok {
			ids = append(ids, constraint.TupleID(tid))
		} else {
			st.FalseHits++
		}
	}
	slices.Sort(ids)
	st.Results = len(ids)
	return Result{IDs: ids, Stats: st}, nil
}

// LatticeSites returns a regular grid of k^sdim sites in [−extent, extent]^sdim,
// a natural S for uniformly distributed query slopes in E^{d−1}.
func LatticeSites(sdim, perAxis int, extent float64) []geom.Point {
	if perAxis < 1 || sdim < 1 {
		return nil
	}
	coords := make([]float64, perAxis)
	for i := range coords {
		if perAxis == 1 {
			coords[i] = 0
		} else {
			coords[i] = -extent + 2*extent*float64(i)/float64(perAxis-1)
		}
	}
	total := 1
	for i := 0; i < sdim; i++ {
		total *= perAxis
	}
	out := make([]geom.Point, 0, total)
	idx := make([]int, sdim)
	for {
		p := make(geom.Point, sdim)
		for i, j := range idx {
			p[i] = coords[j]
		}
		out = append(out, p)
		k := 0
		for k < sdim {
			idx[k]++
			if idx[k] < perAxis {
				break
			}
			idx[k] = 0
			k++
		}
		if k == sdim {
			break
		}
	}
	return out
}
