package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"dualcdb/internal/constraint"
)

var errMismatch = errors.New("concurrent query returned a wrong answer")

// TestConcurrentQueries: the index supports concurrent readers — queries
// only pin pages (mutex-protected pool), evaluate cached envelopes
// (sync.Once) and read immutable index state. Run under -race to verify
// (`go test -race ./internal/core -run Concurrent`).
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	rel, ix := buildRandomIndex(t, rng, 200, Options{
		Slopes: EquiangularSlopes(3), Technique: T2, PoolPages: 256,
	}, true)

	type queryCase struct {
		q    constraint.Query
		want []constraint.TupleID
	}
	qs := make([]queryCase, 32)
	for i := range qs {
		qs[i].q = randQuery(rng)
		want, err := qs[i].q.Eval(rel)
		if err != nil {
			t.Fatal(err)
		}
		qs[i].want = want
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := qs[(w*50+i)%len(qs)]
				got, err := ix.Query(c.q)
				if err != nil {
					errs <- err
					return
				}
				if !sameIDs(got.IDs, c.want) {
					errs <- errMismatch
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
