package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"dualcdb/internal/constraint"
)

var errMismatch = errors.New("concurrent query returned a wrong answer")

// TestConcurrentQueries: the index supports concurrent readers — queries
// only pin pages (mutex-protected pool), evaluate cached envelopes
// (sync.Once) and read immutable index state. Run under -race to verify
// (`go test -race ./internal/core -run Concurrent`).
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	rel, ix := buildRandomIndex(t, rng, 200, Options{
		Slopes: EquiangularSlopes(3), Technique: T2, PoolPages: 256,
	}, true)

	type queryCase struct {
		q    constraint.Query
		want []constraint.TupleID
	}
	qs := make([]queryCase, 32)
	for i := range qs {
		qs[i].q = randQuery(rng)
		want, err := qs[i].q.Eval(rel)
		if err != nil {
			t.Fatal(err)
		}
		qs[i].want = want
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := qs[(w*50+i)%len(qs)]
				got, err := ix.Query(c.q)
				if err != nil {
					errs <- err
					return
				}
				if !sameIDs(got.IDs, c.want) {
					errs <- errMismatch
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentReadersWithWriter is the MVCC stress test, meant to run
// under -race: one writer goroutine commits inserts and deletes while
// reader goroutines run single queries, batches, pinned snapshots and
// stats reads. Before the copy-on-write root sets this raced on the
// trees' pages, ix.indexed and the relation map; now every reader pins a
// version with one atomic load and must see internally consistent
// answers no matter how commits interleave.
func TestConcurrentReadersWithWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	_, ix := buildRandomIndex(t, rng, 200, Options{
		Slopes:    EquiangularSlopes(3),
		Technique: T2,
		PoolPages: 1 << 12,
	}, false)

	const (
		readers          = 4
		queriesPerReader = 100
		writerOps        = 250
	)
	var wg sync.WaitGroup

	// Writer: mostly single-op commits, with the occasional multi-op
	// batch, against the live index.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(72))
		var ids []constraint.TupleID
		ix.roots.Load().relScan(func(t *constraint.Tuple) bool {
			ids = append(ids, t.ID())
			return true
		})
		for op := 0; op < writerOps; op++ {
			switch {
			case len(ids) < 50 || wrng.Intn(3) > 0:
				id, err := ix.Insert(randTuple(wrng, false))
				if err != nil {
					t.Errorf("writer insert: %v", err)
					return
				}
				ids = append(ids, id)
			case wrng.Intn(8) == 0:
				c := ix.Begin()
				for i := 0; i < 5 && len(ids) > 0; i++ {
					j := wrng.Intn(len(ids))
					if err := c.Delete(ids[j]); err != nil {
						t.Errorf("writer batch delete: %v", err)
						c.Abort()
						return
					}
					ids = append(ids[:j], ids[j+1:]...)
				}
				if err := c.Commit(); err != nil {
					t.Errorf("writer commit: %v", err)
					return
				}
			default:
				j := wrng.Intn(len(ids))
				if err := ix.Delete(ids[j]); err != nil {
					t.Errorf("writer delete: %v", err)
					return
				}
				ids = append(ids[:j], ids[j+1:]...)
			}
		}
	}()

	// Readers: every query path pins a version (explicitly or per call),
	// and re-running a query on a pinned snapshot must be bit-identical
	// even while commits land underneath.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(seed))
			for i := 0; i < queriesPerReader; i++ {
				q := randQuery(rrng)
				switch i % 4 {
				case 0: // per-call snapshot
					if _, err := ix.Query(q); err != nil {
						t.Errorf("reader query: %v", err)
						return
					}
				case 1: // pinned snapshot: repeatable reads
					s := ix.Snapshot()
					r1, err := s.Query(q)
					if err != nil {
						s.Release()
						t.Errorf("reader snapshot query: %v", err)
						return
					}
					r2, err := s.Query(q)
					if err != nil {
						s.Release()
						t.Errorf("reader snapshot requery: %v", err)
						return
					}
					if !sameIDs(r1.IDs, r2.IDs) {
						t.Errorf("snapshot v%d not repeatable: %v then %v",
							s.Version(), r1.IDs, r2.IDs)
					}
					s.Release()
				case 2: // batch sharing one pinned version
					qs := []constraint.Query{q, randQuery(rrng), randQuery(rrng)}
					if _, err := ix.QueryBatch(qs, BatchOptions{Workers: 2}); err != nil {
						t.Errorf("reader batch: %v", err)
						return
					}
				default: // metadata reads are lock-free too
					_ = ix.Len()
					_ = ix.Pages()
					_ = ix.StatsSnapshot()
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()

	if c := ix.Pool().SnapshotCensus(); c.Active != 0 || c.DeferredPages != 0 {
		t.Fatalf("census after quiesce: %+v", c)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Final consistency: the quiesced index matches the exhaustive scan
	// of its own surviving relation.
	rs := ix.roots.Load()
	for i := 0; i < 20; i++ {
		q := randQuery(rng)
		var want []constraint.TupleID
		rs.relScan(func(tp *constraint.Tuple) bool {
			ok, err := q.Matches(tp)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				want = append(want, tp.ID())
			}
			return true
		})
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got.IDs, want) {
			t.Fatalf("post-stress query %v: got %v, want %v", q, got.IDs, want)
		}
	}
}
