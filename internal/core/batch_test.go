package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/pagestore"
)

// TestQueryBatchMatchesSequential: for every option combination — default,
// single worker, intra-query parallelism off, refinement fan-out forced on
// every candidate list — QueryBatch must return exactly the sequential
// Query answers, in order.
func TestQueryBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	_, ix := buildRandomIndex(t, rng, 300, Options{
		Slopes: EquiangularSlopes(3), Technique: T2, PoolPages: 1 << 12, PoolShards: 4,
	}, true)
	qs := make([]constraint.Query, 40)
	want := make([][]constraint.TupleID, len(qs))
	for i := range qs {
		qs[i] = randQuery(rng)
		res, err := ix.Query(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.IDs
	}
	for name, opts := range map[string]BatchOptions{
		"default":       {},
		"one-worker":    {Workers: 1},
		"no-intraquery": {Workers: 4, DisableIntraQuery: true},
		"force-refine":  {Workers: 4, RefineThreshold: 1, RefineWorkers: 4},
	} {
		t.Run(name, func(t *testing.T) {
			got, err := ix.QueryBatch(qs, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(qs) {
				t.Fatalf("len = %d, want %d", len(got), len(qs))
			}
			for i := range got {
				if !sameIDs(got[i].IDs, want[i]) {
					t.Fatalf("query %d: batch %v != sequential %v", i, got[i].IDs, want[i])
				}
			}
		})
	}
}

// TestQueryBatchStress is the acceptance stress test: 8+ goroutines run a
// mix of single Query calls and QueryBatch calls against one shared T2
// index, and every answer must equal the precomputed sequential result.
// Run under -race in CI.
func TestQueryBatchStress(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	_, ix := buildRandomIndex(t, rng, 250, Options{
		Slopes: EquiangularSlopes(3), Technique: T2, PoolPages: 512, PoolShards: 0,
	}, true)
	qs := make([]constraint.Query, 24)
	want := make([][]constraint.TupleID, len(qs))
	for i := range qs {
		qs[i] = randQuery(rng)
		res, err := ix.Query(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.IDs
	}

	const goroutines = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				// Batch caller: whole workload through QueryBatch.
				for round := 0; round < 5; round++ {
					got, err := ix.QueryBatch(qs, BatchOptions{Workers: 2 + g%3})
					if err != nil {
						errs <- err
						return
					}
					for i := range got {
						if !sameIDs(got[i].IDs, want[i]) {
							errs <- errMismatch
							return
						}
					}
				}
			} else {
				// Single-query caller interleaving with the batches.
				for i := 0; i < 60; i++ {
					k := (g*60 + i) % len(qs)
					got, err := ix.Query(qs[k])
					if err != nil {
						errs <- err
						return
					}
					if !sameIDs(got.IDs, want[k]) {
						errs <- errMismatch
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQueryBatchPagesReadExact: with a cold pool large enough to avoid
// eviction, the per-query PagesRead values of a concurrent batch must sum
// exactly to the pool's PhysicalReads — the miss-attribution counters
// partition the real I/O, with nothing dropped or double-counted.
func TestQueryBatchPagesReadExact(t *testing.T) {
	rng := rand.New(rand.NewSource(523))
	_, ix := buildRandomIndex(t, rng, 400, Options{
		Slopes: EquiangularSlopes(3), Technique: T2, PoolPages: 1 << 14, PoolShards: 8,
	}, true)
	qs := make([]constraint.Query, 32)
	for i := range qs {
		qs[i] = randQuery(rng)
	}
	if err := ix.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}
	ix.Pool().ResetStats()
	got, err := ix.QueryBatch(qs, BatchOptions{Workers: 8, RefineThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, r := range got {
		sum += r.Stats.PagesRead
	}
	if misses := ix.Pool().Stats().PhysicalReads; sum != misses {
		t.Fatalf("sum of per-query PagesRead = %d, pool PhysicalReads = %d", sum, misses)
	}

	// Sequentially on a cold pool, each query's PagesRead must also equal
	// the pool delta for that query alone (the historical semantics).
	for i, q := range qs {
		if err := ix.Pool().EvictAll(); err != nil {
			t.Fatal(err)
		}
		ix.Pool().ResetStats()
		res, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if delta := ix.Pool().Stats().PhysicalReads; res.Stats.PagesRead != delta {
			t.Fatalf("query %d: PagesRead %d != pool delta %d", i, res.Stats.PagesRead, delta)
		}
	}
}

// TestQueryBatchPropagatesError: an injected read fault must abort the
// batch with the store's error rather than returning partial results.
func TestQueryBatchPropagatesError(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rel := constraint.NewRelation(2)
	for i := 0; i < 150; i++ {
		if _, err := rel.Insert(randTuple(rng, false)); err != nil {
			t.Fatal(err)
		}
	}
	fs := pagestore.NewFaultStore(pagestore.NewMemStore(pagestore.DefaultPageSize))
	ix, err := Build(rel, Options{
		Slopes: EquiangularSlopes(3), Technique: T2, Store: fs, PoolPages: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]constraint.Query, 16)
	for i := range qs {
		qs[i] = randQuery(rng)
	}
	if err := ix.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}
	fs.FailReadAfter(3)
	res, err := ix.QueryBatch(qs, BatchOptions{Workers: 4})
	if !errors.Is(err, pagestore.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if res != nil {
		t.Fatalf("results must be nil on error, got %d entries", len(res))
	}
	fs.Disarm()
	if _, err := ix.QueryBatch(qs, BatchOptions{}); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

// TestQueryBatchEmpty: an empty batch is a no-op.
func TestQueryBatchEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, ix := buildRandomIndex(t, rng, 50, Options{Slopes: EquiangularSlopes(2)}, false)
	got, err := ix.QueryBatch(nil, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

// TestBuildParallelMatchesSerial: Build with a worker pool must produce an
// index that answers every query identically to the serial build, with the
// same number of leaves swept (identical tree shapes).
func TestBuildParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(642))
	rel := constraint.NewRelation(2)
	for i := 0; i < 300; i++ {
		if _, err := rel.Insert(randTuple(rng, true)); err != nil {
			t.Fatal(err)
		}
	}
	for _, tech := range []Technique{T1, T2} {
		serial, err := Build(rel, Options{
			Slopes: EquiangularSlopes(4), Technique: tech, IndexVertical: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Build(rel, Options{
			Slopes: EquiangularSlopes(4), Technique: tech, IndexVertical: true,
			BuildWorkers: 8, PoolShards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if serial.Pages() != parallel.Pages() {
			t.Fatalf("tech %v: pages %d (serial) != %d (parallel)", tech, serial.Pages(), parallel.Pages())
		}
		for i := 0; i < 60; i++ {
			q := randQuery(rng)
			a, err := serial.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := parallel.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(a.IDs, b.IDs) {
				t.Fatalf("tech %v query %v: %v != %v", tech, q, a.IDs, b.IDs)
			}
			if a.Stats.LeavesSwept != b.Stats.LeavesSwept {
				t.Fatalf("tech %v: leaves %d != %d (tree shapes differ)",
					tech, a.Stats.LeavesSwept, b.Stats.LeavesSwept)
			}
		}
	}
}
