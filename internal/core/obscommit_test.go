package core

import (
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/obs"
)

// TestObservedCommitReconciles is the write-side mirror of
// TestObservedBatchReconciles: after a mix of observed commits (one-op
// wrappers, a multi-op batch, a handicap rebuild, and both abort
// flavors), the per-stage clone/free attribution summed over the flight
// recorder must agree exactly with the pool's ClonePage and
// watermark-reclamation counters, and the observer's stage aggregates
// must agree with both.
func TestObservedCommitReconciles(t *testing.T) {
	ix, o, _ := obsIndex(t, 400, T2)
	rng := rand.New(rand.NewSource(13))
	pool := ix.Pool()

	clones0 := pool.CloneCount()
	reclaimed0 := pool.ReclaimedCount()

	var inserted []constraint.TupleID
	for i := 0; i < 8; i++ {
		id, err := ix.Insert(randTuple(rng, false))
		if err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, id)
	}
	for _, id := range inserted[:4] {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	// One multi-op batch: three inserts and a delete published together.
	c := ix.Begin()
	for i := 0; i < 3; i++ {
		if _, err := c.Insert(randTuple(rng, false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete(inserted[4]); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ix.RebuildHandicaps(); err != nil {
		t.Fatal(err)
	}
	// An explicit abort (staged work discarded by the caller) and a
	// fault abort (mid-batch mutation error forces the rollback).
	c = ix.Begin()
	if _, err := c.Insert(randTuple(rng, false)); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	c = ix.Begin()
	if err := c.Delete(constraint.TupleID(1 << 30)); err == nil {
		t.Fatal("expected delete of unknown id to fail")
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}

	const published, aborted = 14, 2
	cloneDelta := pool.CloneCount() - clones0
	reclaimedDelta := pool.ReclaimedCount() - reclaimed0
	if cloneDelta == 0 || reclaimedDelta == 0 {
		t.Fatalf("commits cloned %d / reclaimed %d pages; reconciliation is vacuous", cloneDelta, reclaimedDelta)
	}

	// Flight recorder: every finished batch retained, spans summing to
	// the pool deltas exactly (clones happen only under the writer lock,
	// and with no snapshot pinned every deferred page frees inside the
	// commit's own reclaim stage).
	recs := o.FlightRecords()
	if len(recs) != published+aborted {
		t.Fatalf("flight recorder has %d records, want %d", len(recs), published+aborted)
	}
	var sumCloned, sumFreed uint64
	ops := map[string]int{}
	for _, r := range recs {
		ops[r.Op]++
		for _, sp := range r.Spans {
			sumCloned += sp.Cloned
			sumFreed += sp.Freed
		}
		if !r.Aborted && len(r.Spans) != 4 {
			t.Errorf("published %s commit has %d spans, want 4 (stage/shadow/publish/reclaim)", r.Op, len(r.Spans))
		}
	}
	if sumCloned != cloneDelta {
		t.Errorf("span clone sum %d != pool ClonePage delta %d", sumCloned, cloneDelta)
	}
	if sumFreed != reclaimedDelta {
		t.Errorf("span free sum %d != pool reclaimed delta %d", sumFreed, reclaimedDelta)
	}
	want := map[string]int{"insert": 8, "delete": 4, "batch": 3, "rebuild": 1}
	for op, n := range want {
		if ops[op] != n {
			t.Errorf("flight recorder has %d %q commits, want %d", ops[op], op, n)
		}
	}

	// Newest-first ordering: the fault abort finished last.
	if !recs[0].Aborted || recs[0].Cause != string(obs.AbortFault) {
		t.Errorf("newest flight record = %+v, want the fault abort", recs[0])
	}

	// Observer aggregates agree with the same exact counters.
	snap := o.ObserverSnapshot()
	if snap.Commits != published || snap.CommitAborts != aborted {
		t.Errorf("snapshot commits=%d aborts=%d, want %d/%d", snap.Commits, snap.CommitAborts, published, aborted)
	}
	if snap.AbortsFault != 1 || snap.AbortsExplicit != 1 {
		t.Errorf("abort causes fault=%d explicit=%d, want 1/1", snap.AbortsFault, snap.AbortsExplicit)
	}
	var stCloned, stFreed uint64
	for _, st := range snap.CommitStages {
		stCloned += st.Cloned
		stFreed += st.Freed
	}
	if stCloned != cloneDelta || stFreed != reclaimedDelta {
		t.Errorf("stage aggregates cloned=%d freed=%d, want %d/%d", stCloned, stFreed, cloneDelta, reclaimedDelta)
	}
	if got := snap.CommitStages["stage"].Count; got != published+aborted {
		t.Errorf("stage-span count %d, want %d (every batch opens one)", got, published+aborted)
	}
	if got := snap.CommitStages["reclaim"].Count; got != published {
		t.Errorf("reclaim-span count %d, want %d (published commits only)", got, published)
	}

	// With no snapshot pinned, nothing stays deferred.
	census := pool.SnapshotCensus()
	if census.DeferredPages != 0 {
		t.Errorf("reclaim backlog %d pages after quiescence, want 0", census.DeferredPages)
	}
	if census.DeferredTotal != census.Reclaimed {
		t.Errorf("deferred total %d != reclaimed %d with no pins and no failures", census.DeferredTotal, census.Reclaimed)
	}
}

// TestMVCCStatsUnderPin drives the version/watermark gauges through a
// pinned snapshot: while a reader pins the old version, commits must
// grow the reclaim backlog and the version lag; releasing the snapshot
// drains the backlog and records the snapshot's age.
func TestMVCCStatsUnderPin(t *testing.T) {
	ix, o, _ := obsIndex(t, 300, T2)
	rng := rand.New(rand.NewSource(29))

	s := ix.Snapshot()
	for i := 0; i < 3; i++ {
		if _, err := ix.Insert(randTuple(rng, false)); err != nil {
			t.Fatal(err)
		}
	}
	m := ix.MVCCStats()
	if m.PinnedSnapshots != 1 {
		t.Errorf("pinned snapshots = %d, want 1", m.PinnedSnapshots)
	}
	if m.Watermark != s.Version() {
		t.Errorf("watermark = %d, want pinned version %d", m.Watermark, s.Version())
	}
	if m.VersionLag != m.Version-s.Version() || m.VersionLag == 0 {
		t.Errorf("version lag = %d, want %d", m.VersionLag, m.Version-s.Version())
	}
	if m.ReclaimBacklogPages == 0 {
		t.Error("reclaim backlog is 0 while a snapshot pins the old version")
	}
	if m.PagesCloned == 0 {
		t.Error("pages cloned is 0 after COW commits")
	}

	s.Release()
	m = ix.MVCCStats()
	if m.PinnedSnapshots != 0 || m.Watermark != 0 || m.VersionLag != 0 {
		t.Errorf("after release: pins=%d watermark=%d lag=%d, want all 0", m.PinnedSnapshots, m.Watermark, m.VersionLag)
	}
	if m.ReclaimBacklogPages != 0 {
		t.Errorf("after release: backlog = %d pages, want 0", m.ReclaimBacklogPages)
	}
	if m.PagesReclaimed == 0 {
		t.Error("after release: pages reclaimed is 0")
	}
	if got := o.ObserverSnapshot().SnapshotAge.Count; got != 1 {
		t.Errorf("snapshot-age histogram count = %d, want 1", got)
	}
}

// TestNilObserverCommitAddsNoAllocs pins the write-side zero-overhead
// invariant: a commit with Observe nil allocates exactly as many objects
// as one on an index that never had an observer, and detaching restores
// it.
func TestNilObserverCommitAddsNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rel := constraint.NewRelation(2)
	for i := 0; i < 200; i++ {
		if _, err := rel.Insert(randTuple(rng, false)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(rel, Options{Slopes: EquiangularSlopes(3), PoolPages: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	// One deterministic insert+delete commit pair per run: the tuple id
	// advances but the tree returns to the same shape, so the allocation
	// count is steady after warmup.
	commit := func() {
		tup := randTuple(rand.New(rand.NewSource(57)), false)
		id, err := ix.Insert(tup)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		commit()
	}

	bare := testing.AllocsPerRun(100, commit)
	ix.SetObserver(obs.New(obs.Options{Name: "test"}))
	observed := testing.AllocsPerRun(100, commit)
	ix.SetObserver(nil)
	detached := testing.AllocsPerRun(100, commit)
	if detached != bare {
		t.Errorf("detached observer changed commit allocations: bare %.1f, after detach %.1f", bare, detached)
	}
	if observed < bare {
		t.Errorf("observed commit allocated less (%.1f) than bare (%.1f)?", observed, bare)
	}
	t.Logf("commit allocs/op: bare %.1f, observed %.1f", bare, observed)
}

// BenchmarkCommitBare and BenchmarkCommitObserved are the write-side
// perf guard: the observed insert+delete commit pair must track the bare
// one (benchsnap gates the allocation delta; the latency ratio is the
// issue's 5% acceptance bar).
func BenchmarkCommitBare(b *testing.B)     { benchCommit(b, false) }
func BenchmarkCommitObserved(b *testing.B) { benchCommit(b, true) }

func benchCommit(b *testing.B, observed bool) {
	_, ix, _ := benchIndex(b, 1000, 3, T2, 0)
	if observed {
		ix.SetObserver(obs.New(obs.Options{Name: "bench"}))
	}
	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 8; i++ {
		id, err := ix.Insert(randTuple(rng, false))
		if err != nil {
			b.Fatal(err)
		}
		if err := ix.Delete(id); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := ix.Insert(randTuple(rng, false))
		if err != nil {
			b.Fatal(err)
		}
		if err := ix.Delete(id); err != nil {
			b.Fatal(err)
		}
	}
}
