package core

import (
	"fmt"
	"slices"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
	"dualcdb/internal/obs"
)

// QueryLine retrieves the tuples whose extension intersects the *line*
// y = a·x + b — the stabbing selection of the 1-dimensional interval view
// the paper's footnote 6 mentions: in the dual, tuple t_P intersects the
// line iff b lies in the interval [BOT^P(a), TOP^P(a)], so the answer is
// EXIST(y ≥ a·x + b) ∩ EXIST(y ≤ a·x + b). Both selections run on the
// index (sharing its technique and statistics) and the refined
// intersection is exact.
func (ix *Index) QueryLine(a, b float64) (Result, error) {
	rs := ix.pinRoots()
	defer ix.unpinRoots(rs)
	return ix.queryLineTraced(a, b, ix.execCtxFor(rs))
}

// QueryLine retrieves the tuples whose extension intersects the line
// y = a·x + b, against this snapshot's version.
func (s *Snapshot) QueryLine(a, b float64) (Result, error) {
	if err := s.guard(); err != nil {
		return Result{}, err
	}
	return s.ix.queryLineTraced(a, b, s.execCtx())
}

// queryLineTraced wraps queryLine in its own query trace.
func (ix *Index) queryLineTraced(a, b float64, ec *execCtx) (Result, error) {
	if ec.obs != nil {
		// The line stab owns one trace; both EXIST sub-queries share the
		// execCtx and record their stage spans into it.
		ec.tr = ec.obs.StartQuery(fmt.Sprintf("line y = %g*x + %g", a, b))
		res, err := ix.queryLine(a, b, ec)
		ec.obs.FinishQuery(ec.tr, queryInfo(res.Stats, err))
		ec.tr = nil
		return res, err
	}
	return ix.queryLine(a, b, ec)
}

// queryLine runs the two EXIST selections on the shared execCtx, so the
// stab's I/O is counted once on one exact per-query ReadCounter.
func (ix *Index) queryLine(a, b float64, ec *execCtx) (Result, error) {
	upper, err := ix.query(constraint.Query2(constraint.EXIST, a, b, geom.GE), ec)
	if err != nil {
		return Result{}, err
	}
	lower, err := ix.query(constraint.Query2(constraint.EXIST, a, b, geom.LE), ec)
	if err != nil {
		return Result{}, err
	}
	dd := ec.span(obs.StageDedup)
	inUpper := make(map[constraint.TupleID]bool, len(upper.IDs))
	for _, id := range upper.IDs {
		inUpper[id] = true
	}
	var ids []constraint.TupleID
	for _, id := range lower.IDs {
		if inUpper[id] {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	ec.endSpan(dd, len(ids))
	st := QueryStats{
		Path:        fmt.Sprintf("line(%s∩%s)", upper.Stats.Path, lower.Stats.Path),
		Candidates:  upper.Stats.Candidates + lower.Stats.Candidates,
		Results:     len(ids),
		FalseHits:   upper.Stats.FalseHits + lower.Stats.FalseHits,
		Duplicates:  upper.Stats.Duplicates + lower.Stats.Duplicates,
		LeavesSwept: upper.Stats.LeavesSwept + lower.Stats.LeavesSwept,
		// The shared ReadCounter accumulates across both sub-queries, so
		// its final value is the stab's exact physical-read total (summing
		// the sub-results would double-count: each sub-query's PagesRead
		// is a cumulative snapshot of the same counter).
		PagesRead: ec.rc.Physical.Load(),
	}
	return Result{IDs: ids, Stats: st}, nil
}

// EvalLine is the exhaustive ground truth for line-stabbing selections.
func EvalLine(a, b float64, rel *constraint.Relation) ([]constraint.TupleID, error) {
	var out []constraint.TupleID
	var scanErr error
	rel.Scan(func(t *constraint.Tuple) bool {
		ext, err := t.Extension()
		if err != nil {
			scanErr = err
			return false
		}
		if ext.IsEmpty() {
			return true
		}
		slope := []float64{a}
		if ext.Bot(slope) <= b+geom.Eps && b <= ext.Top(slope)+geom.Eps {
			out = append(out, t.ID())
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	slices.Sort(out)
	return out, nil
}
