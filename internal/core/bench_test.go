package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/pagestore"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// technique (T1 vs T2), the slope-set cardinality k, and the T1 pivot
// choice. Each reports the figures' currency — candidates, false hits and
// duplicates per query — alongside time.

func benchIndex(b *testing.B, n, k int, tech Technique, pivotX float64) (*constraint.Relation, *Index, []constraint.Query) {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	rel := constraint.NewRelation(2)
	for i := 0; i < n; i++ {
		if _, err := rel.Insert(randTuple(rng, false)); err != nil {
			b.Fatal(err)
		}
	}
	ix, err := Build(rel, Options{
		Slopes:    EquiangularSlopes(k),
		Technique: tech,
		PivotX:    pivotX,
		PoolPages: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]constraint.Query, 64)
	for i := range queries {
		queries[i] = randQuery(rng)
	}
	return rel, ix, queries
}

// BenchmarkAblationTechnique compares the candidate/duplicate profile of
// T1 against T2 on the same workload — the paper's core §4.1 vs §4.2
// trade-off.
func BenchmarkAblationTechnique(b *testing.B) {
	for _, tech := range []Technique{T1, T2} {
		b.Run(tech.String(), func(b *testing.B) {
			_, ix, queries := benchIndex(b, 2000, 3, tech, 0)
			var cands, dups, falseHits, results int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ix.Query(queries[i%len(queries)])
				if err != nil {
					b.Fatal(err)
				}
				cands += res.Stats.Candidates
				dups += res.Stats.Duplicates
				falseHits += res.Stats.FalseHits
				results += res.Stats.Results
			}
			b.ReportMetric(float64(cands)/float64(b.N), "candidates/query")
			b.ReportMetric(float64(dups)/float64(b.N), "duplicates/query")
			b.ReportMetric(float64(falseHits)/float64(b.N), "falseHits/query")
		})
	}
}

// BenchmarkAblationK sweeps the slope-set cardinality: more slopes mean
// narrower strips (fewer false hits) but more trees (space, update cost).
func BenchmarkAblationK(b *testing.B) {
	for _, k := range []int{2, 3, 5, 9} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			_, ix, queries := benchIndex(b, 2000, k, T2, 0)
			var falseHits int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ix.Query(queries[i%len(queries)])
				if err != nil {
					b.Fatal(err)
				}
				falseHits += res.Stats.FalseHits
			}
			b.ReportMetric(float64(falseHits)/float64(b.N), "falseHits/query")
			b.ReportMetric(float64(ix.Pages()), "pages")
		})
	}
}

// BenchmarkAblationPivot varies the T1 pivot point P (the paper leaves its
// choice open): centred pivots minimize the false-hit wedge area over a
// centred workload.
func BenchmarkAblationPivot(b *testing.B) {
	for _, pivot := range []float64{-50, 0, 50} {
		b.Run(fmt.Sprintf("pivotX=%g", pivot), func(b *testing.B) {
			_, ix, queries := benchIndex(b, 2000, 3, T1, pivot)
			var falseHits int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ix.Query(queries[i%len(queries)])
				if err != nil {
					b.Fatal(err)
				}
				falseHits += res.Stats.FalseHits
			}
			b.ReportMetric(float64(falseHits)/float64(b.N), "falseHits/query")
		})
	}
}

// BenchmarkQueryTupleWindow measures generalized-tuple (window) queries.
func BenchmarkQueryTupleWindow(b *testing.B) {
	_, ix, _ := benchIndex(b, 2000, 3, T2, 0)
	window, err := constraint.ParseTuple("x >= -20 && x <= 20 && y >= -20 && y <= 20", 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kind := constraint.EXIST
		if i%2 == 0 {
			kind = constraint.ALL
		}
		if _, err := ix.QueryTuple(kind, window); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryFileStore measures cold T2 queries against a file-backed
// index — the workload the read-path machinery targets. The pool is
// evicted before every query so each iteration pays the full physical
// read cost; physreads/op reports the per-query page accesses.
func BenchmarkQueryFileStore(b *testing.B) {
	for _, bc := range []struct {
		name string
		ra   int
	}{{"plain", 0}, {"readahead", 8}} {
		b.Run(bc.name, func(b *testing.B) {
			store, err := pagestore.OpenFileStore(b.TempDir()+"/bench.db", 1024)
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			rng := rand.New(rand.NewSource(79))
			rel := constraint.NewRelation(2)
			for i := 0; i < 2000; i++ {
				if _, err := rel.Insert(randTuple(rng, false)); err != nil {
					b.Fatal(err)
				}
			}
			ix, err := Build(rel, Options{
				Slopes:    EquiangularSlopes(3),
				Technique: T2,
				Store:     store,
				PoolPages: 1 << 14,
				Readahead: bc.ra,
			})
			if err != nil {
				b.Fatal(err)
			}
			queries := make([]constraint.Query, 64)
			for i := range queries {
				queries[i] = randQuery(rng)
			}
			var pages uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := ix.Pool().EvictAll(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := ix.Query(queries[i%len(queries)])
				if err != nil {
					b.Fatal(err)
				}
				pages += res.Stats.PagesRead
			}
			b.ReportMetric(float64(pages)/float64(b.N), "physreads/op")
		})
	}
}

// BenchmarkIndexD3Query measures the d-dimensional path.
func BenchmarkIndexD3Query(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	rel := constraint.NewRelation(3)
	for i := 0; i < 500; i++ {
		if _, err := rel.Insert(randTuple3(rng, false)); err != nil {
			b.Fatal(err)
		}
	}
	ix, err := BuildD(rel, OptionsD{Sites: LatticeSites(2, 3, 1.5)})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]constraint.Query, 64)
	for i := range queries {
		q := randQuery3(rng)
		q.Slope = []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		queries[i] = q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}
