package core

import (
	"errors"

	"dualcdb/internal/btree"
	"dualcdb/internal/constraint"
	"dualcdb/internal/obs"
	"dualcdb/internal/pagestore"
)

// Commit batches index mutations into one atomic version step. Between
// Begin and Commit every tree mutation is shadowed copy-on-write (pages a
// published version can reach are cloned, never dirtied), so concurrent
// snapshot readers are oblivious to the batch. Commit publishes the new
// root set with a single atomic pointer swap and hands the superseded
// pages to the pool's deferred free list; Abort frees the shadow pages
// and rolls the relation back, leaving no trace.
//
// A batch is single-writer by construction: Begin holds the index write
// lock until Commit or Abort. Mutating methods return errors without
// cleaning up — after any error the caller must Abort the batch (the
// one-op wrappers Index.Insert/Delete/RebuildHandicaps do exactly that).
type Commit struct {
	ix   *Index
	base *rootSet
	// indexed and deletes are this batch's working copies of the base
	// version's bookkeeping; they fold into the next rootSet at Commit.
	indexed map[constraint.TupleID]bool
	deletes int
	// Relation rollback staging: ids inserted (and their tuples, for the
	// next version's frozen view) and tuples removed by this batch.
	inserted       []constraint.TupleID
	insertedTuples []*constraint.Tuple
	removed        []*constraint.Tuple
	done           bool

	// Observability (all zero when Options.Observe is nil, and the bare
	// write path stays allocation-free): the commit trace, the open
	// mutation-staging span, the op label the one-op wrappers stamp for
	// the flight recorder, and the first mutation fault — what lets
	// Abort report its cause (fault vs explicit).
	tr      *obs.CommitTrace
	span    obs.CommitSpanTimer
	op      string
	failErr error
}

var errCommitDone = errors.New("core: use of a finished commit batch")

// Begin opens a write batch. It blocks until any other writer finishes;
// the caller must end the batch with Commit or Abort.
func (ix *Index) Begin() *Commit {
	ix.writeMu.Lock()
	base := ix.roots.Load()
	for _, t := range ix.allTrees() {
		t.BeginCOW()
	}
	indexed := make(map[constraint.TupleID]bool, len(base.indexed)+1)
	for id := range base.indexed {
		indexed[id] = true
	}
	c := &Commit{ix: ix, base: base, indexed: indexed, deletes: base.deletesSinceRebuild}
	if o := ix.opt.Observe; o != nil {
		c.tr = o.StartCommit()
		c.span = c.beginSpan(obs.CommitStageStage)
	}
	return c
}

// beginSpan opens one commit-stage span seeded with the pool's current
// clone and reclamation counts. Clones happen only under writeMu —
// which this batch holds — so the counter deltas endSpan records are
// exact per-stage attribution. Free on the bare path: with no trace the
// zero timer comes back and the pool counters are never read.
func (c *Commit) beginSpan(stage obs.CommitStage) obs.CommitSpanTimer {
	if c.tr == nil {
		return obs.CommitSpanTimer{}
	}
	pool := c.ix.pool
	return c.tr.Begin(stage, pool.CloneCount(), pool.ReclaimedCount())
}

// endSpan closes a commit-stage span with the pool counters now. On the
// bare path the span is the zero timer and End returns immediately, so
// the pool counters are never read and no stage is recorded.
func (c *Commit) endSpan(sp obs.CommitSpanTimer, items int) {
	if c.tr == nil {
		sp.End(0, 0, 0)
		return
	}
	pool := c.ix.pool
	sp.End(pool.CloneCount(), pool.ReclaimedCount(), items)
}

// fail records err as the batch's first mutation fault so Abort can
// report the abort cause to the observer, and returns it unchanged.
func (c *Commit) fail(err error) error {
	if err != nil && c.failErr == nil {
		c.failErr = err
	}
	return err
}

// allTrees lists every live tree of the index (the writer's set; handles
// in published root sets are separate views over the same pages).
func (ix *Index) allTrees() []*btree.Tree {
	ts := make([]*btree.Tree, 0, 2*len(ix.up)+2)
	ts = append(ts, ix.up...)
	ts = append(ts, ix.down...)
	if ix.vup != nil {
		ts = append(ts, ix.vup, ix.vdown)
	}
	return ts
}

// Insert stages one tuple insertion: the relation takes the tuple
// immediately (rolled back on Abort) and the trees take it under the
// batch's copy-on-write shadow. On error the caller must Abort; the
// tuple is then removed again, but — as with a plain Relation.Insert
// failure — it keeps its assigned id and cannot be re-inserted.
func (c *Commit) Insert(t *constraint.Tuple) (constraint.TupleID, error) {
	if c.done {
		return 0, errCommitDone
	}
	ix := c.ix
	id, err := ix.rel.Insert(t)
	if err != nil {
		return 0, c.fail(err)
	}
	c.inserted = append(c.inserted, id)
	c.insertedTuples = append(c.insertedTuples, t)
	if !t.IsSatisfiable() {
		return id, nil // empty extensions match nothing and are not indexed
	}
	top, bot := t.TopEnv(), t.BotEnv()
	for i, a := range ix.slopes {
		if err := ix.up[i].Insert(top.Eval(a), uint32(id)); err != nil {
			return id, c.fail(err)
		}
		if err := ix.down[i].Insert(bot.Eval(a), uint32(id)); err != nil {
			return id, c.fail(err)
		}
	}
	if ix.vup != nil {
		ext, err := t.Extension()
		if err != nil {
			return id, c.fail(err)
		}
		if err := ix.insertVertical(ext, id); err != nil {
			return id, c.fail(err)
		}
	}
	if err := ix.mergeHandicaps(top, bot); err != nil {
		return id, c.fail(err)
	}
	c.indexed[id] = true
	return id, nil
}

// Delete stages one tuple removal. Handicap slots are left conservatively
// stale (sound; costs only I/O); once the batch's deletion counter
// reaches Options.RebuildHandicapsEvery, Commit recomputes them exactly
// before publishing. On error the caller must Abort.
func (c *Commit) Delete(id constraint.TupleID) error {
	if c.done {
		return errCommitDone
	}
	ix := c.ix
	t, err := ix.rel.Get(id)
	if err != nil {
		return c.fail(err)
	}
	if c.indexed[id] {
		top, bot := t.TopEnv(), t.BotEnv()
		for i, a := range ix.slopes {
			if _, err := ix.up[i].Delete(top.Eval(a), uint32(id)); err != nil {
				return c.fail(err)
			}
			if _, err := ix.down[i].Delete(bot.Eval(a), uint32(id)); err != nil {
				return c.fail(err)
			}
		}
		if ix.vup != nil {
			ext, err := t.Extension()
			if err != nil {
				return c.fail(err)
			}
			if err := ix.deleteVertical(ext, id); err != nil {
				return c.fail(err)
			}
		}
		delete(c.indexed, id)
		c.deletes++
	}
	if err := ix.rel.Delete(id); err != nil {
		return c.fail(err)
	}
	c.removed = append(c.removed, t)
	return nil
}

// RebuildHandicaps recomputes every handicap slot exactly from the
// batch's current contents and resets the staleness counter. On error
// the caller must Abort.
func (c *Commit) RebuildHandicaps() error {
	if c.done {
		return errCommitDone
	}
	if err := c.rebuildHandicaps(); err != nil {
		return c.fail(err)
	}
	return nil
}

// rebuildHandicaps is the shared rebuild body (also run by Commit when
// the staleness counter trips the threshold).
func (c *Commit) rebuildHandicaps() error {
	ix := c.ix
	for i := range ix.slopes {
		if err := ix.up[i].ResetHandicaps(); err != nil {
			return err
		}
		if err := ix.down[i].ResetHandicaps(); err != nil {
			return err
		}
	}
	var err error
	ix.rel.Scan(func(t *constraint.Tuple) bool {
		if !c.indexed[t.ID()] {
			return true
		}
		if e := ix.mergeHandicaps(t.TopEnv(), t.BotEnv()); e != nil {
			err = e
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	c.deletes = 0
	return nil
}

// Commit publishes the batch as the next version: trees close their
// copy-on-write batches, the new root set is swapped in atomically, and
// only then are the superseded pages queued behind the snapshot
// watermark — a reader that pinned the old version keeps every page it
// can reach until it releases. On error the batch is aborted.
func (c *Commit) Commit() error {
	if c.done {
		return errCommitDone
	}
	ix := c.ix
	if n := ix.opt.RebuildHandicapsEvery; n > 0 && c.deletes >= n {
		if err := c.rebuildHandicaps(); err != nil {
			c.fail(err)
			c.Abort()
			return err
		}
	}
	// The mutation-staging span ends here: every COW clone the batch
	// will make has been made. Zero it so a hypothetical later Abort
	// cannot double-close it.
	c.endSpan(c.span, len(c.inserted)+len(c.removed))
	c.span = obs.CommitSpanTimer{}

	shadowSpan := c.beginSpan(obs.CommitStageShadow)
	var superseded []pagestore.PageID
	for _, t := range ix.allTrees() {
		superseded = append(superseded, t.CommitCOW()...)
	}
	c.endSpan(shadowSpan, len(superseded))

	publishSpan := c.beginSpan(obs.CommitStagePublish)

	// Derive the next frozen relation from the base version: one slice
	// copy plus the batch's deltas (ids are never reused, so an id
	// inserted then deleted in the same batch nets out by apply order).
	maxID := constraint.TupleID(len(c.base.tuples))
	for _, t := range c.insertedTuples {
		if t.ID() > maxID {
			maxID = t.ID()
		}
	}
	tuples := make([]*constraint.Tuple, maxID)
	copy(tuples, c.base.tuples)
	for _, t := range c.insertedTuples {
		tuples[t.ID()-1] = t
	}
	for _, t := range c.removed {
		tuples[t.ID()-1] = nil
	}
	live := c.base.live + len(c.inserted) - len(c.removed)

	rs := ix.publishLocked(c.base.version+1, c.indexed, c.deletes, tuples, live)
	c.endSpan(publishSpan, live)

	reclaimSpan := c.beginSpan(obs.CommitStageReclaim)
	freed := ix.pool.DeferFrees(rs.version, superseded)
	c.endSpan(reclaimSpan, freed)
	c.done = true
	ix.writeMu.Unlock()
	if o := ix.opt.Observe; o != nil {
		o.FinishCommit(c.tr, obs.CommitInfo{
			Op:         c.opLabel(),
			Version:    rs.version,
			Inserts:    len(c.inserted),
			Deletes:    len(c.removed),
			Superseded: len(superseded),
		})
	}
	return nil
}

// opLabel names the batch for the flight recorder: the one-op wrappers
// stamp insert/delete/rebuild, everything else is a batch.
func (c *Commit) opLabel() string {
	if c.op == "" {
		return "batch"
	}
	return c.op
}

// Abort discards the batch: shadow pages are freed, the relation rolls
// back to its pre-batch contents, and the published root set — which the
// batch never touched — stays current. Tuples staged by Insert keep
// their consumed ids.
func (c *Commit) Abort() error {
	if c.done {
		return nil
	}
	c.done = true
	ix := c.ix
	c.endSpan(c.span, len(c.inserted)+len(c.removed))
	c.span = obs.CommitSpanTimer{}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, t := range ix.allTrees() {
		keep(t.AbortCOW())
	}
	// Restore staged deletes first, then undo staged inserts: a tuple
	// inserted and deleted in the same batch reattaches and is removed
	// again, netting to absent.
	for _, t := range c.removed {
		keep(ix.rel.Reattach(t))
	}
	for _, id := range c.inserted {
		keep(ix.rel.Delete(id))
	}
	ix.writeMu.Unlock()
	if o := ix.opt.Observe; o != nil {
		cause, err := obs.AbortExplicit, c.failErr
		if c.failErr != nil {
			cause = obs.AbortFault
		} else if firstErr != nil {
			err = firstErr
		}
		o.FinishCommit(c.tr, obs.CommitInfo{
			Op:      c.opLabel(),
			Inserts: len(c.inserted),
			Deletes: len(c.removed),
			Aborted: true,
			Cause:   cause,
			Err:     err,
		})
	}
	return firstErr
}
