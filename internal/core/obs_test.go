package core

import (
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
	"dualcdb/internal/obs"
)

// obsIndex builds a small index of the given technique with a fresh
// observer attached; the slow threshold of 1ns retains every query's
// trace in the ring.
func obsIndex(t *testing.T, n int, tech Technique) (*Index, *obs.Observer, []constraint.Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	rel := constraint.NewRelation(2)
	for i := 0; i < n; i++ {
		if _, err := rel.Insert(randTuple(rng, false)); err != nil {
			t.Fatal(err)
		}
	}
	o := obs.New(obs.Options{Name: "test", SlowThreshold: 1, TraceCapacity: 256})
	ix, err := Build(rel, Options{
		Slopes:    EquiangularSlopes(3),
		Technique: tech,
		PoolPages: 1 << 14,
		Observe:   o,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]constraint.Query, 48)
	for i := range queries {
		queries[i] = randQuery(rng)
	}
	return ix, o, queries
}

// TestObservedBatchReconciles is the acceptance check of the observability
// layer: after an observed QueryBatch, the observer's aggregates must agree
// exactly with the per-result QueryStats and with the pool's physical-read
// counter. DisableIntraQuery keeps every query's stages sequential; the
// per-span page attribution must sum to the query's exact PagesRead.
// (TestObservedParallelSweepSpansReconcile covers the intra-query
// parallel case, which is exact too via per-goroutine sweep counters.)
func TestObservedBatchReconciles(t *testing.T) {
	ix, o, queries := obsIndex(t, 800, T2)

	poolBefore := ix.Pool().Stats().PhysicalReads
	// Evict so the batch actually faults pages in (the build warmed the
	// pool); physical reads make the pages-reconciliation non-vacuous.
	if err := ix.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}
	results, err := ix.QueryBatch(queries, BatchOptions{Workers: 4, DisableIntraQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	poolDelta := ix.Pool().Stats().PhysicalReads - poolBefore

	var wantPages, gotCand, gotRes, gotFalse, gotDup, gotLeaves uint64
	for _, r := range results {
		wantPages += r.Stats.PagesRead
		gotCand += uint64(r.Stats.Candidates)
		gotRes += uint64(r.Stats.Results)
		gotFalse += uint64(r.Stats.FalseHits)
		gotDup += uint64(r.Stats.Duplicates)
		gotLeaves += uint64(r.Stats.LeavesSwept)
	}
	if wantPages == 0 {
		t.Fatal("batch read no pages; reconciliation is vacuous")
	}
	// The batch workers are the pool's only readers, and each miss is
	// charged to exactly one query's ReadCounter.
	if poolDelta != wantPages {
		t.Errorf("pool physical reads %d != sum of per-query PagesRead %d", poolDelta, wantPages)
	}

	s := o.ObserverSnapshot()
	if s.Queries != uint64(len(queries)) {
		t.Errorf("observer saw %d queries, want %d", s.Queries, len(queries))
	}
	if s.Batches != 1 {
		t.Errorf("observer saw %d batches, want 1", s.Batches)
	}
	if s.Totals.Count != uint64(len(queries)) {
		t.Errorf("path counts sum to %d, want %d", s.Totals.Count, len(queries))
	}
	if s.Totals.Pages != wantPages {
		t.Errorf("observer pages %d != sum of per-query PagesRead %d", s.Totals.Pages, wantPages)
	}
	if s.Totals.Candidates != gotCand || s.Totals.Results != gotRes ||
		s.Totals.FalseHits != gotFalse || s.Totals.Duplicates != gotDup ||
		s.Totals.LeavesSwept != gotLeaves {
		t.Errorf("observer totals %+v disagree with result sums (cand %d res %d false %d dup %d leaves %d)",
			s.Totals, gotCand, gotRes, gotFalse, gotDup, gotLeaves)
	}
	// Histogram counts must agree with the counters they accompany.
	var histCount uint64
	for name, ps := range s.Paths {
		if ps.Latency.Count != ps.Count {
			t.Errorf("path %s: latency histogram count %d != path count %d", name, ps.Latency.Count, ps.Count)
		}
		histCount += ps.Latency.Count
	}
	if histCount != uint64(len(queries)) {
		t.Errorf("histogram counts sum to %d, want %d", histCount, len(queries))
	}
	// With sequential stages, every physical read happens inside a span,
	// so the per-stage page totals partition the exact query total.
	var stagePages uint64
	for _, st := range s.Stages {
		stagePages += st.Pages
	}
	if stagePages != wantPages {
		t.Errorf("stage span pages %d != sum of per-query PagesRead %d", stagePages, wantPages)
	}

	// Per-trace: each retained trace's span pages sum to its query total.
	traces := o.SlowTraces()
	if len(traces) != len(queries) {
		t.Fatalf("ring retained %d traces, want %d", len(traces), len(queries))
	}
	for _, tr := range traces {
		var sum uint64
		for _, sp := range tr.Spans {
			sum += sp.Pages
		}
		if sum != tr.Pages {
			t.Errorf("trace %q: span pages %d != trace pages %d", tr.Query, sum, tr.Pages)
		}
	}
}

// TestObservedParallelSweepSpansReconcile pins the per-goroutine sweep
// counters: with intra-query parallelism ON and the T1 technique running
// both app-query sweeps concurrently, per-span page attribution must
// still partition each query's exact PagesRead. Before the sweep
// goroutines got private ReadCounters the two concurrent spans read the
// shared counter and double-charged each other's page faults.
func TestObservedParallelSweepSpansReconcile(t *testing.T) {
	ix, o, queries := obsIndex(t, 800, T1)

	poolBefore := ix.Pool().Stats().PhysicalReads
	if err := ix.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}
	// Intra-query parallelism stays enabled: T1 queries run their two
	// sweeps on concurrent goroutines.
	results, err := ix.QueryBatch(queries, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	poolDelta := ix.Pool().Stats().PhysicalReads - poolBefore

	var wantPages uint64
	t1Queries := 0
	for _, r := range results {
		wantPages += r.Stats.PagesRead
		if r.Stats.Path == "t1" {
			t1Queries++
		}
	}
	if wantPages == 0 {
		t.Fatal("batch read no pages; reconciliation is vacuous")
	}
	if t1Queries == 0 {
		t.Fatal("no query took the t1 path; parallel sweeps never ran")
	}
	if poolDelta != wantPages {
		t.Errorf("pool physical reads %d != sum of per-query PagesRead %d", poolDelta, wantPages)
	}

	// Aggregate: stage span pages still partition the exact total.
	s := o.ObserverSnapshot()
	var stagePages uint64
	for _, st := range s.Stages {
		stagePages += st.Pages
	}
	if stagePages != wantPages {
		t.Errorf("stage span pages %d != sum of per-query PagesRead %d", stagePages, wantPages)
	}

	// Per-trace: each trace's span pages sum to its query's exact total,
	// and the t1 traces really did record two sweep spans.
	traces := o.SlowTraces()
	if len(traces) != len(queries) {
		t.Fatalf("ring retained %d traces, want %d", len(traces), len(queries))
	}
	twoSweeps := 0
	for _, tr := range traces {
		var sum uint64
		sweeps := 0
		for _, sp := range tr.Spans {
			sum += sp.Pages
			if sp.Stage == obs.StageSweep.String() {
				sweeps++
			}
		}
		if sum != tr.Pages {
			t.Errorf("trace %q: span pages %d != trace pages %d", tr.Query, sum, tr.Pages)
		}
		if sweeps == 2 {
			twoSweeps++
		}
	}
	if twoSweeps == 0 {
		t.Error("no trace recorded two sweep spans; the parallel-sweep attribution path went unexercised")
	}
}

// TestObservedCompoundQueries checks that line stabs, vertical selections
// and generalized query tuples each record exactly one trace (their
// sub-queries share it) with exact page attribution.
func TestObservedCompoundQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	rel := constraint.NewRelation(2)
	for i := 0; i < 400; i++ {
		if _, err := rel.Insert(randTuple(rng, false)); err != nil {
			t.Fatal(err)
		}
	}
	o := obs.New(obs.Options{SlowThreshold: 1, TraceCapacity: 16})
	ix, err := Build(rel, Options{
		Slopes:        EquiangularSlopes(3),
		Technique:     T2,
		IndexVertical: true,
		PoolPages:     1 << 14,
		Observe:       o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Pool().EvictAll(); err != nil {
		t.Fatal(err)
	}

	lineRes, err := ix.QueryLine(0.4, -3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.QueryVertical(constraint.EXIST, geom.GE, 5); err != nil {
		t.Fatal(err)
	}
	window, err := constraint.ParseTuple("x >= -20 && x <= 20 && y >= -20 && y <= 20", 2)
	if err != nil {
		t.Fatal(err)
	}
	tupRes, err := ix.QueryTuple(constraint.EXIST, window)
	if err != nil {
		t.Fatal(err)
	}

	s := o.ObserverSnapshot()
	if s.Queries != 3 {
		t.Fatalf("observer saw %d queries, want 3 (compound queries own a single trace)", s.Queries)
	}
	for _, tr := range o.SlowTraces() {
		var sum uint64
		for _, sp := range tr.Spans {
			sum += sp.Pages
		}
		if sum != tr.Pages {
			t.Errorf("trace %q: span pages %d != trace pages %d", tr.Query, sum, tr.Pages)
		}
	}
	if lineRes.Stats.PagesRead == 0 && tupRes.Stats.PagesRead == 0 {
		t.Error("compound queries read no pages on an evicted pool")
	}
}

// TestFailedQueryClosesRefineSpan pins the error-path span discipline the
// interprocedural spanleak sweep enforces: a refinement that aborts on a
// tuple-fetch error must still End its span, so the failed query's trace
// records the refine stage instead of dropping it. The dangling id comes
// from deleting a tuple after the build — the index still sweeps it up as
// a candidate, and refinement's Relation.Get fails.
func TestFailedQueryClosesRefineSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	rel := constraint.NewRelation(2)
	var last constraint.TupleID
	for i := 0; i < 200; i++ {
		id, err := rel.Insert(randTuple(rng, false))
		if err != nil {
			t.Fatal(err)
		}
		last = id
	}
	o := obs.New(obs.Options{SlowThreshold: 1, TraceCapacity: 16})
	ix, err := Build(rel, Options{
		Slopes:        EquiangularSlopes(3),
		Technique:     T2,
		IndexVertical: true,
		PoolPages:     1 << 14,
		Observe:       o,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Without a vertical index the window's x-constraints are left to the
	// tuple refinement itself, exercising queryTuple's own error return
	// (on ix, the failure fires inside the vertical sub-selection instead).
	o2 := obs.New(obs.Options{SlowThreshold: 1, TraceCapacity: 16})
	ix2, err := Build(rel, Options{
		Slopes:    EquiangularSlopes(3),
		Technique: T2,
		PoolPages: 1 << 14,
		Observe:   o2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Delete(last); err != nil {
		t.Fatal(err)
	}
	// The MVCC query path reads the relation view frozen in the published
	// root set, so an out-of-band relation mutation is invisible until the
	// next publish. Re-publish both indexes to make the id dangle.
	for _, x := range []*Index{ix, ix2} {
		rs := x.roots.Load()
		x.republishLocked(rs.version+1, rs.indexed, rs.deletesSinceRebuild)
	}

	window, err := constraint.ParseTuple(
		"x >= -1000000 && x <= 1000000 && y >= -1000000 && y <= 1000000", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.QueryTuple(constraint.EXIST, window); err == nil {
		t.Fatal("tuple query over a dangling id succeeded; refine error path unexercised")
	}
	if _, err := ix.QueryVertical(constraint.EXIST, geom.GE, -1e6); err == nil {
		t.Fatal("vertical query over a dangling id succeeded; refine error path unexercised")
	}

	if _, err := ix2.QueryTuple(constraint.EXIST, window); err == nil {
		t.Fatal("tuple query over a dangling id succeeded; tuple refine error path unexercised")
	}

	for name, c := range map[string]struct {
		o    *obs.Observer
		want int
	}{"vertical-indexed": {o, 2}, "tuple-refine": {o2, 1}} {
		failed := 0
		for _, tr := range c.o.SlowTraces() {
			if tr.Err == "" {
				continue
			}
			failed++
			refines := 0
			for _, sp := range tr.Spans {
				if sp.Stage == obs.StageRefine.String() {
					refines++
				}
			}
			if refines == 0 {
				t.Errorf("%s: failed trace %q has no refine span; the error return dropped it", name, tr.Query)
			}
		}
		if failed != c.want {
			t.Fatalf("%s: retained %d failed traces, want %d", name, failed, c.want)
		}
	}
}

// TestNilObserverAddsNoAllocs pins the zero-overhead invariant: a query
// with Observe nil allocates exactly as many objects as one on an index
// that never had an observer, and attaching/detaching restores it.
func TestNilObserverAddsNoAllocs(t *testing.T) {
	ix, o, queries := obsIndex(t, 400, T2)
	q := queries[0]
	// Warm everything (pool, decode cache, tuple extensions).
	if _, err := ix.Query(q); err != nil {
		t.Fatal(err)
	}

	ix.SetObserver(nil)
	bare := testing.AllocsPerRun(200, func() {
		if _, err := ix.Query(q); err != nil {
			t.Fatal(err)
		}
	})
	ix.SetObserver(o)
	observed := testing.AllocsPerRun(200, func() {
		if _, err := ix.Query(q); err != nil {
			t.Fatal(err)
		}
	})
	ix.SetObserver(nil)
	detached := testing.AllocsPerRun(200, func() {
		if _, err := ix.Query(q); err != nil {
			t.Fatal(err)
		}
	})
	if detached != bare {
		t.Errorf("detached observer changed allocations: bare %.1f, after detach %.1f", bare, detached)
	}
	if observed < bare {
		t.Errorf("observed path allocated less (%.1f) than bare (%.1f)?", observed, bare)
	}
	t.Logf("allocs/op: bare %.1f, observed %.1f", bare, observed)
}

// BenchmarkQueryBare and BenchmarkQueryObserved are the perf guard the
// nil-hook invariant is judged by: the bare run must report 0 B/op on the
// warm path, and the observed run shows the cost of full tracing.
func BenchmarkQueryBare(b *testing.B)     { benchObserved(b, false) }
func BenchmarkQueryObserved(b *testing.B) { benchObserved(b, true) }

func benchObserved(b *testing.B, observed bool) {
	_, ix, queries := benchIndex(b, 2000, 3, T2, 0)
	if observed {
		ix.SetObserver(obs.New(obs.Options{Name: "bench"}))
	}
	// Warm the pool and caches so allocation numbers reflect the steady
	// state, not first-touch decode work.
	for _, q := range queries {
		if _, err := ix.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}
