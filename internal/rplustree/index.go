package rplustree

import (
	"fmt"
	"sort"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
	"dualcdb/internal/pagestore"
)

// Index is the relation-aware R⁺-tree: it stores the MBRs of the bounded
// tuples of a generalized relation and answers the same ALL/EXIST
// half-plane selections as the dual index, for a direct experimental
// comparison (Section 5).
//
// Limitations inherited from the structure (and exploited by the paper):
// unbounded tuples cannot be stored, and an ALL selection must be executed
// as an EXIST traversal plus refinement, because containment cannot be
// decided from clipped bounding boxes alone.
type Index struct {
	rel  *constraint.Relation
	tree *Tree
	pool *pagestore.Pool

	// Skipped counts tuples the structure could not index (unbounded or
	// unsatisfiable extensions).
	Skipped int
}

// Options configures an R⁺-tree index.
type Options struct {
	// PageSize in bytes (default 1024). Ignored when Pool is set.
	PageSize int
	// PoolPages is the buffer-pool capacity in frames (default 512).
	PoolPages int
	// Pool optionally shares a buffer pool with other structures.
	Pool *pagestore.Pool
	// FillFactor is the bulk-load node occupancy in (0,1]; default 0.9.
	FillFactor float64
	// DuplicationBound caps one partitioning level's reference growth
	// (default 1.5 = 50 % duplication); beyond it the build chains pages
	// instead of subdividing. An ablation knob for the R⁺-tree's clipping
	// behaviour.
	DuplicationBound float64
}

// QueryStats mirrors core.QueryStats for uniform reporting.
type QueryStats struct {
	Path         string
	Candidates   int // object references touched (duplicates included)
	Results      int
	FalseHits    int
	Duplicates   int
	NodesVisited int
	PagesRead    uint64
}

// Result is a selection answer.
type Result struct {
	IDs   []constraint.TupleID
	Stats QueryStats
}

// Build bulk-loads an R⁺-tree over every bounded, satisfiable tuple of rel.
func Build(rel *constraint.Relation, opt Options) (*Index, error) {
	if rel.Dim() != 2 {
		return nil, fmt.Errorf("rplustree: relation dimension %d, want 2", rel.Dim())
	}
	if opt.PageSize <= 0 {
		opt.PageSize = pagestore.DefaultPageSize
	}
	if opt.PoolPages <= 0 {
		opt.PoolPages = 512
	}
	pool := opt.Pool
	if pool == nil {
		pool = pagestore.NewPool(pagestore.NewMemStore(opt.PageSize), opt.PoolPages)
	}
	ix := &Index{rel: rel, pool: pool}
	var items []Item
	var buildErr error
	rel.Scan(func(t *constraint.Tuple) bool {
		it, ok, err := itemFor(t)
		if err != nil {
			buildErr = err
			return false
		}
		if !ok {
			ix.Skipped++
			return true
		}
		items = append(items, it)
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	tree, err := BulkBounded(pool, items, opt.FillFactor, opt.DuplicationBound)
	if err != nil {
		return nil, err
	}
	ix.tree = tree
	return ix, nil
}

// itemFor derives the MBR item of a tuple; ok is false for tuples the
// R⁺-tree cannot store (empty or unbounded extensions).
func itemFor(t *constraint.Tuple) (Item, bool, error) {
	ext, err := t.Extension()
	if err != nil {
		return Item{}, false, err
	}
	if ext.IsEmpty() || !ext.IsBounded() {
		return Item{}, false, nil
	}
	lo, hi, err := ext.MBR()
	if err != nil {
		return Item{}, false, err
	}
	return Item{R: Rect{MinX: lo[0], MinY: lo[1], MaxX: hi[0], MaxY: hi[1]}, TID: uint32(t.ID())}, true, nil
}

// Insert adds a tuple to the relation and, if bounded, to the tree.
func (ix *Index) Insert(t *constraint.Tuple) (constraint.TupleID, error) {
	id, err := ix.rel.Insert(t)
	if err != nil {
		return 0, err
	}
	it, ok, err := itemFor(t)
	if err != nil {
		return id, err
	}
	if !ok {
		ix.Skipped++
		return id, nil
	}
	return id, ix.tree.Insert(it)
}

// Delete removes a tuple from both the tree and the relation.
func (ix *Index) Delete(id constraint.TupleID) error {
	t, err := ix.rel.Get(id)
	if err != nil {
		return err
	}
	if it, ok, err := itemFor(t); err != nil {
		return err
	} else if ok {
		if _, err := ix.tree.Delete(it.R, it.TID); err != nil {
			return err
		}
	}
	return ix.rel.Delete(id)
}

// Query answers an ALL or EXIST half-plane selection. Both kinds traverse
// the nodes intersecting the half-plane (an ALL query cannot prune more:
// containment of a clipped box says nothing about the object — Section 1),
// deduplicate the references, and refine with the exact predicate.
func (ix *Index) Query(q constraint.Query) (Result, error) {
	if q.Dim() != 2 {
		return Result{}, fmt.Errorf("rplustree: query dimension %d", q.Dim())
	}
	before := ix.pool.Stats().PhysicalReads
	h := q.HalfSpace()
	le := h.Op == geom.LE
	st := QueryStats{Path: "rplus-" + q.Kind.String()}
	seen := make(map[uint32]int)
	visited, err := ix.tree.SearchHalfPlane(h.A[0], h.A[1], h.C, le, func(tid uint32, _ Rect) {
		st.Candidates++
		seen[tid]++
	})
	if err != nil {
		return Result{}, err
	}
	st.NodesVisited = visited
	ids := make([]constraint.TupleID, 0, len(seen))
	for tid, n := range seen {
		if n > 1 {
			st.Duplicates += n - 1
		}
		t, err := ix.rel.Get(constraint.TupleID(tid))
		if err != nil {
			return Result{}, fmt.Errorf("rplustree: candidate %d not in relation: %w", tid, err)
		}
		ok, err := q.Matches(t)
		if err != nil {
			return Result{}, err
		}
		if ok {
			ids = append(ids, constraint.TupleID(tid))
		} else {
			st.FalseHits++
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	st.Results = len(ids)
	st.PagesRead = ix.pool.Stats().PhysicalReads - before
	return Result{IDs: ids, Stats: st}, nil
}

// Pages returns the tree's page count.
func (ix *Index) Pages() int { return ix.tree.Pages() }

// Pool exposes the buffer pool for I/O accounting.
func (ix *Index) Pool() *pagestore.Pool { return ix.pool }

// Tree exposes the underlying rectangle tree.
func (ix *Index) Tree() *Tree { return ix.tree }
