package rplustree

import (
	"math"
	"math/rand"
	"testing"

	"dualcdb/internal/pagestore"
)

func newPool(pageSize int) *pagestore.Pool {
	return pagestore.NewPool(pagestore.NewMemStore(pageSize), 512)
}

func randItems(rng *rand.Rand, n int, maxSide float64) []Item {
	items := make([]Item, n)
	for i := range items {
		cx, cy := rng.Float64()*100-50, rng.Float64()*100-50
		w, h := rng.Float64()*maxSide, rng.Float64()*maxSide
		items[i] = Item{
			R:   Rect{MinX: cx - w/2, MinY: cy - h/2, MaxX: cx + w/2, MaxY: cy + h/2},
			TID: uint32(i + 1),
		}
	}
	return items
}

// searchAllTIDs runs a rect search and returns the distinct tids found.
func searchAllTIDs(t *testing.T, tr *Tree, q Rect) map[uint32]bool {
	t.Helper()
	got := make(map[uint32]bool)
	if err := tr.SearchRect(q, func(tid uint32, _ Rect) { got[tid] = true }); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRectOps(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	c := Rect{5, 5, 6, 6}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("intersection tests")
	}
	if !a.Intersects(Rect{2, 0, 4, 2}) {
		t.Error("edge-touching rectangles intersect (closed sets)")
	}
	if !a.Contains(Rect{0.5, 0.5, 1, 1}) || a.Contains(b) {
		t.Error("containment tests")
	}
	if u := a.Union(c); u != (Rect{0, 0, 6, 6}) {
		t.Errorf("union = %+v", u)
	}
	if a.Area() != 4 {
		t.Errorf("area = %v", a.Area())
	}
	if !WorldRect().ContainsPoint(1e17, -1e17) {
		t.Error("world rect contains everything")
	}
}

func TestRectIntersectsHalfPlane(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	// y ≥ 1 crosses the box: 0·x + 1·y − 1 ≥ 0.
	if !r.IntersectsHalfPlane(0, 1, -1, false) {
		t.Error("y ≥ 1 must intersect [0,2]²")
	}
	// y ≥ 3 misses it.
	if r.IntersectsHalfPlane(0, 1, -3, false) {
		t.Error("y ≥ 3 must miss [0,2]²")
	}
	// y ≤ −1 misses it.
	if r.IntersectsHalfPlane(0, 1, 1, true) {
		t.Error("y ≤ −1 must miss [0,2]²")
	}
	// Infinite region always intersects any half-plane.
	if !WorldRect().IntersectsHalfPlane(1, -1, 1000, true) {
		t.Error("world region intersects every half-plane")
	}
	// x + y ≤ 0 touches the box at the corner (0,0).
	if !r.IntersectsHalfPlane(1, 1, 0, true) {
		t.Error("x + y ≤ 0 touches [0,2]² at the origin")
	}
}

func TestBulkSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randItems(rng, 2000, 8)
	tr, err := Bulk(newPool(1024), items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		q := randItems(rng, 1, 30)[0].R
		got := searchAllTIDs(t, tr, q)
		for _, it := range items {
			want := it.R.Intersects(q)
			if got[it.TID] != want {
				t.Fatalf("tid %d: got %v, want %v (q=%+v r=%+v)", it.TID, got[it.TID], want, q, it.R)
			}
		}
	}
}

func TestBulkHalfPlaneSearchComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := randItems(rng, 1500, 10)
	tr, err := Bulk(newPool(1024), items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		a := rng.NormFloat64() * 2
		b := 1.0
		c := rng.Float64()*100 - 50
		le := rng.Intn(2) == 0
		got := make(map[uint32]bool)
		if _, err := tr.SearchHalfPlane(a, b, c, le, func(tid uint32, _ Rect) { got[tid] = true }); err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			want := it.R.IntersectsHalfPlane(a, b, c, le)
			if want && !got[it.TID] {
				t.Fatalf("missed tid %d for half-plane (%v,%v,%v,%v)", it.TID, a, b, c, le)
			}
			if !want && got[it.TID] {
				t.Fatalf("spurious tid %d", it.TID)
			}
		}
	}
}

func TestDynamicInsertMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr, err := New(newPool(1024), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	var items []Item
	for i := 0; i < 1200; i++ {
		it := randItems(rng, 1, 6)[0]
		it.TID = uint32(i + 1)
		items = append(items, it)
		if err := tr.Insert(it); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%300 == 299 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	for trial := 0; trial < 40; trial++ {
		q := randItems(rng, 1, 40)[0].R
		got := searchAllTIDs(t, tr, q)
		for _, it := range items {
			if got[it.TID] != it.R.Intersects(q) {
				t.Fatalf("tid %d mismatch", it.TID)
			}
		}
	}
}

func TestInsertIdenticalRectsOverflowChain(t *testing.T) {
	// Degenerate: many identical rectangles cannot be separated by any cut;
	// the structure must chain overflow pages and stay correct.
	tr, err := New(newPool(1024), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	r := Rect{0, 0, 1, 1}
	n := 200
	for i := 0; i < n; i++ {
		if err := tr.Insert(Item{R: r, TID: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	got := searchAllTIDs(t, tr, Rect{0.5, 0.5, 0.6, 0.6})
	if len(got) != n {
		t.Fatalf("found %d of %d identical objects", len(got), n)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedItemsRejected(t *testing.T) {
	// Stored objects must be bounded; before this was enforced, an infinite
	// MBR reached buildGrid, whose center arithmetic (MinX+MaxX)/2 produced
	// NaN and silently corrupted the grid partitioning.
	bad := []Rect{
		WorldRect(),
		{MinX: math.Inf(-1), MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 0, MinY: 0, MaxX: math.Inf(1), MaxY: 1},
		{MinX: 0, MinY: math.NaN(), MaxX: 1, MaxY: 1},
	}
	tr, err := New(newPool(1024), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bad {
		if err := tr.Insert(Item{R: r, TID: 1}); err == nil {
			t.Errorf("Insert accepted unbounded/invalid rect %+v", r)
		}
	}
	for _, r := range bad {
		if _, err := Bulk(newPool(1024), []Item{{R: r, TID: 1}}, 0.9); err == nil {
			t.Errorf("Bulk accepted unbounded/invalid rect %+v", r)
		}
	}
	// Bounded items still load.
	if err := tr.Insert(Item{R: Rect{0, 0, 1, 1}, TID: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRemovesReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	items := randItems(rng, 500, 12)
	tr, err := Bulk(newPool(1024), items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items[:100] {
		n, err := tr.Delete(it.R, it.TID)
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 {
			t.Fatalf("tid %d not found on delete", it.TID)
		}
	}
	got := searchAllTIDs(t, tr, WorldRect())
	for _, it := range items[:100] {
		if got[it.TID] {
			t.Fatalf("deleted tid %d still found", it.TID)
		}
	}
	for _, it := range items[100:] {
		if !got[it.TID] {
			t.Fatalf("surviving tid %d lost", it.TID)
		}
	}
}

func TestBulkEmpty(t *testing.T) {
	tr, err := Bulk(newPool(1024), nil, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	got := searchAllTIDs(t, tr, WorldRect())
	if len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeObjectsDegradeSelectiveQueries(t *testing.T) {
	// The R⁺-tree pathology the paper leans on (Figure 9): large objects
	// straddle region boundaries, forcing duplication or chained leaves,
	// so a selective query prunes far less of a big-object tree than of a
	// small-object tree.
	visitFraction := func(maxSide float64) float64 {
		rng := rand.New(rand.NewSource(15))
		tr, err := Bulk(newPool(1024), randItems(rng, 2000, maxSide), 0.9)
		if err != nil {
			t.Fatal(err)
		}
		// Selective query: y ≥ 45 touches ~5 % of centers.
		visited, err := tr.SearchHalfPlane(0, 1, -45, false, func(uint32, Rect) {})
		if err != nil {
			t.Fatal(err)
		}
		return float64(visited) / float64(tr.Pages())
	}
	small := visitFraction(2)
	big := visitFraction(30)
	if big <= small {
		t.Fatalf("pruning: big-object visit fraction %.2f ≤ small-object %.2f", big, small)
	}
}

func TestPagesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pool := newPool(1024)
	tr, err := Bulk(pool, randItems(rng, 3000, 5), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Pages() != pool.Store().NumAllocated() {
		t.Fatalf("tree pages %d != store %d", tr.Pages(), pool.Store().NumAllocated())
	}
}

func TestSearchIOCostBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pool := newPool(1024)
	tr, err := Bulk(pool, randItems(rng, 5000, 1), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	// A selective half-plane: y ≥ 49 touches few objects.
	visited, err := tr.SearchHalfPlane(0, 1, -49, false, func(uint32, Rect) {})
	if err != nil {
		t.Fatal(err)
	}
	if visited > tr.Pages()/3 {
		t.Fatalf("selective query visited %d of %d pages", visited, tr.Pages())
	}
	if got := pool.Stats().PhysicalReads; got > uint64(visited) {
		t.Fatalf("physical reads %d > visited nodes %d", got, visited)
	}
}

func TestWorldRectMath(t *testing.T) {
	w := WorldRect()
	if !math.IsInf(w.Area(), 1) {
		t.Error("world area must be +Inf")
	}
	l := w.cutLeft(0, 3)
	r := w.cutRight(0, 3)
	if l.MaxX != 3 || r.MinX != 3 {
		t.Errorf("cuts: %+v %+v", l, r)
	}
}
