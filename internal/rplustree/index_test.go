package rplustree

import (
	"math"
	"math/rand"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
)

func randBoundedTuple(rng *rand.Rand, maxRadius float64) *constraint.Tuple {
	cx, cy := rng.Float64()*100-50, rng.Float64()*100-50
	r := rng.Float64()*maxRadius + 0.3
	m := 3 + rng.Intn(4)
	hs := make([]geom.HalfSpace, 0, m)
	for i := 0; i < m; i++ {
		ang := (float64(i) + rng.Float64()*0.3 + 0.35) * 2 * math.Pi / float64(m)
		nx, ny := math.Cos(ang), math.Sin(ang)
		hs = append(hs, geom.HalfSpace{A: []float64{nx, ny}, C: -(nx*cx + ny*cy + r), Op: geom.LE})
	}
	t, err := constraint.NewTuple(2, hs)
	if err != nil {
		panic(err)
	}
	return t
}

func randHalfPlaneQuery(rng *rand.Rand) constraint.Query {
	kind := constraint.EXIST
	if rng.Intn(2) == 0 {
		kind = constraint.ALL
	}
	op := geom.GE
	if rng.Intn(2) == 0 {
		op = geom.LE
	}
	ang := (rng.Float64() - 0.5) * (math.Pi - 0.2)
	return constraint.Query2(kind, math.Tan(ang), rng.Float64()*160-80, op)
}

func TestIndexMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rel := constraint.NewRelation(2)
	for i := 0; i < 300; i++ {
		if _, err := rel.Insert(randBoundedTuple(rng, 8)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Skipped != 0 {
		t.Fatalf("skipped %d bounded tuples", ix.Skipped)
	}
	for qi := 0; qi < 80; qi++ {
		q := randHalfPlaneQuery(rng)
		want, err := q.Eval(rel)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.IDs) != len(want) {
			t.Fatalf("%v: got %v, want %v", q, got.IDs, want)
		}
		for i := range want {
			if got.IDs[i] != want[i] {
				t.Fatalf("%v: got %v, want %v", q, got.IDs, want)
			}
		}
	}
}

func TestIndexSkipsUnboundedAndEmpty(t *testing.T) {
	rel := constraint.NewRelation(2)
	unb, _ := constraint.ParseTuple("y >= 0", 2)
	emp, _ := constraint.ParseTuple("x >= 1 && x <= 0", 2)
	box, _ := constraint.ParseTuple("x >= 0 && x <= 1 && y >= 0 && y <= 1", 2)
	_, _ = rel.Insert(unb)
	_, _ = rel.Insert(emp)
	boxID, _ := rel.Insert(box)
	ix, err := Build(rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Skipped != 2 {
		t.Fatalf("Skipped = %d, want 2 (the R⁺-tree stores bounded objects only)", ix.Skipped)
	}
	got, err := ix.Query(constraint.Query2(constraint.EXIST, 0, 0.5, geom.GE))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != 1 || got.IDs[0] != boxID {
		t.Fatalf("got %v", got.IDs)
	}
}

func TestIndexInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	rel := constraint.NewRelation(2)
	ix, err := Build(rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []constraint.TupleID
	for i := 0; i < 200; i++ {
		id, err := ix.Insert(randBoundedTuple(rng, 6))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:50] {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for qi := 0; qi < 30; qi++ {
		q := randHalfPlaneQuery(rng)
		want, err := q.Eval(rel)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.IDs) != len(want) {
			t.Fatalf("%v: got %v, want %v", q, got.IDs, want)
		}
	}
}

func TestALLNeverExceedsEXIST(t *testing.T) {
	// ALL(q) ⊆ EXIST(q) for the same half-plane: the R⁺-tree executes both
	// via the same traversal, so candidates agree and ALL pays the same I/O
	// with more false hits — the effect Figure 8(b)/9(b) quantify.
	rng := rand.New(rand.NewSource(23))
	rel := constraint.NewRelation(2)
	for i := 0; i < 300; i++ {
		_, _ = rel.Insert(randBoundedTuple(rng, 10))
	}
	ix, err := Build(rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 40; qi++ {
		q := randHalfPlaneQuery(rng)
		qAll, qExist := q, q
		qAll.Kind = constraint.ALL
		qExist.Kind = constraint.EXIST
		ra, err := ix.Query(qAll)
		if err != nil {
			t.Fatal(err)
		}
		re, err := ix.Query(qExist)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Stats.Candidates != re.Stats.Candidates {
			t.Fatalf("ALL and EXIST traversals must see the same candidates: %d vs %d",
				ra.Stats.Candidates, re.Stats.Candidates)
		}
		if len(ra.IDs) > len(re.IDs) {
			t.Fatalf("ALL returned more than EXIST: %d vs %d", len(ra.IDs), len(re.IDs))
		}
		if ra.Stats.FalseHits < re.Stats.FalseHits {
			t.Fatalf("ALL must have at least as many false hits: %d vs %d",
				ra.Stats.FalseHits, re.Stats.FalseHits)
		}
	}
}

func TestIndexRejectsWrongDimensions(t *testing.T) {
	rel3 := constraint.NewRelation(3)
	if _, err := Build(rel3, Options{}); err == nil {
		t.Fatal("3-D relation must be rejected")
	}
	rel := constraint.NewRelation(2)
	ix, err := Build(rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := constraint.NewQuery(constraint.EXIST, []float64{0, 0}, 0, geom.GE)
	if _, err := ix.Query(q); err == nil {
		t.Fatal("3-D query must be rejected")
	}
}
