package rplustree

import (
	"math"
	"testing"
)

func TestRectArea(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		r    Rect
		want float64
	}{
		{"bounded", Rect{0, 0, 2, 3}, 6},
		{"invalid", Rect{1, 0, 0, 1}, 0},
		{"world", WorldRect(), inf},
		{"half plane", Rect{-inf, 0, inf, 5}, inf},
		{"quadrant", Rect{0, 0, inf, inf}, inf},
		// Naive width·height is 0·Inf = NaN for these; a NaN area makes
		// every split-cost comparison false and silently corrupts packing.
		{"zero-height strip", Rect{-inf, 2, inf, 2}, 0},
		{"zero-width strip", Rect{3, -inf, 3, inf}, 0},
		{"degenerate ray", Rect{0, 1, inf, 1}, 0},
		{"point at infinity", Rect{inf, inf, inf, inf}, 0},
	}
	for _, c := range cases {
		got := c.r.Area()
		if math.IsNaN(got) {
			t.Errorf("%s: Area() = NaN", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("%s: Area() = %v, want %v", c.name, got, c.want)
		}
	}
}
