package rplustree

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkBulkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randItems(rng, 10000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bulk(newPool(1024), items, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr, err := New(newPool(1024), 0.9)
	if err != nil {
		b.Fatal(err)
	}
	items := randItems(rng, b.N, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i]
		it.TID = uint32(i + 1)
		if err := tr.Insert(it); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchHalfPlane(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr, err := Bulk(newPool(1024), randItems(rng, 10000, 3), 0.9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := float64(i%80) - 40
		if _, err := tr.SearchHalfPlane(0.5, 1, c, i%2 == 0, func(uint32, Rect) {}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDuplicationBound shows the clipping trade-off: low
// bounds chain early (scan-like but compact), high bounds partition deeply
// (prunable but duplicated).
func BenchmarkAblationDuplicationBound(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	items := randItems(rng, 5000, 12)
	for _, bound := range []float64{1.05, 1.5, 2.5} {
		b.Run(fmt.Sprintf("bound=%g", bound), func(b *testing.B) {
			tr, err := BulkBounded(newPool(1024), items, 0.9, bound)
			if err != nil {
				b.Fatal(err)
			}
			var visited int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := tr.SearchHalfPlane(0.3, 1, -35, false, func(uint32, Rect) {})
				if err != nil {
					b.Fatal(err)
				}
				visited = v
			}
			b.ReportMetric(float64(visited), "nodes/query")
			b.ReportMetric(float64(tr.Pages()), "pages")
			b.ReportMetric(float64(tr.Size()), "refs")
		})
	}
}
