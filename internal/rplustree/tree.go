package rplustree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"dualcdb/internal/pagestore"
)

// Item is one indexed object: its MBR and tuple id.
type Item struct {
	R   Rect
	TID uint32
}

// Page layout. Header (16 bytes):
//
//	[0]     node type (1 = leaf, 2 = internal)
//	[1:3]   entry count (uint16)
//	[4:8]   overflow-chain page id (leaves only)
//	[8:16]  reserved
//
// Entries (36 bytes each): MinX, MinY, MaxX, MaxY (float64) + id (uint32) —
// a child page id in internal nodes, a tuple id in leaves.
const (
	headerSize   = 16
	entrySize    = 36
	typeLeaf     = 1
	typeInternal = 2
)

// Tree is a paged R⁺-tree. Node regions are disjoint per level and the
// root's region is the whole plane, so no insertion ever falls outside the
// structure.
type Tree struct {
	pool  *pagestore.Pool
	root  pagestore.PageID
	size  int // object references, counting duplicates
	pages int
	cap   int
	fill  float64
	// dupBound caps one partitioning level's reference growth (1.5 = 50 %
	// duplication); below it the build prefers chaining to subdividing.
	dupBound float64
}

// SetDuplicationBound overrides the per-level duplication bound (default
// 1.5). Values ≤ 1 force pure chaining; large values approximate the
// original R⁺-tree's unbounded clipping. Call before loading data.
func (t *Tree) SetDuplicationBound(b float64) {
	if b > 0 {
		t.dupBound = b
	}
}

// ErrNoValidCut is returned when an internal node cannot be split by any
// guillotine cut; it indicates a bug, since the build and split rules only
// ever produce guillotine partitions.
var ErrNoValidCut = errors.New("rplustree: no valid guillotine cut")

// New creates an empty R⁺-tree (a single empty leaf covering the plane).
func New(pool *pagestore.Pool, fill float64) (*Tree, error) {
	if fill <= 0 || fill > 1 {
		fill = 0.9
	}
	t := &Tree{pool: pool, fill: fill, dupBound: 1.5}
	t.cap = (pool.PageSize() - headerSize) / entrySize
	if t.cap < 4 {
		return nil, fmt.Errorf("rplustree: page size %d too small", pool.PageSize())
	}
	f, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	initNode(f, typeLeaf)
	t.root = f.ID()
	t.pages = 1
	f.Release()
	return t, nil
}

func initNode(f *pagestore.Frame, typ byte) {
	f.Data()[0] = typ
	binary.LittleEndian.PutUint16(f.Data()[1:3], 0)
	binary.LittleEndian.PutUint32(f.Data()[4:8], 0)
	f.MarkDirty()
}

func nodeType(f *pagestore.Frame) byte { return f.Data()[0] }
func nodeCount(f *pagestore.Frame) int { return int(binary.LittleEndian.Uint16(f.Data()[1:3])) }
func setNodeCount(f *pagestore.Frame, c int) {
	binary.LittleEndian.PutUint16(f.Data()[1:3], uint16(c))
	f.MarkDirty()
}
func overflow(f *pagestore.Frame) pagestore.PageID {
	return pagestore.PageID(binary.LittleEndian.Uint32(f.Data()[4:8]))
}
func setOverflow(f *pagestore.Frame, p pagestore.PageID) {
	binary.LittleEndian.PutUint32(f.Data()[4:8], uint32(p))
	f.MarkDirty()
}

func getEntry(f *pagestore.Frame, i int) (Rect, uint32) {
	off := headerSize + i*entrySize
	d := f.Data()
	r := Rect{
		MinX: math.Float64frombits(binary.LittleEndian.Uint64(d[off : off+8])),
		MinY: math.Float64frombits(binary.LittleEndian.Uint64(d[off+8 : off+16])),
		MaxX: math.Float64frombits(binary.LittleEndian.Uint64(d[off+16 : off+24])),
		MaxY: math.Float64frombits(binary.LittleEndian.Uint64(d[off+24 : off+32])),
	}
	return r, binary.LittleEndian.Uint32(d[off+32 : off+36])
}

func setEntry(f *pagestore.Frame, i int, r Rect, id uint32) {
	off := headerSize + i*entrySize
	d := f.Data()
	binary.LittleEndian.PutUint64(d[off:off+8], math.Float64bits(r.MinX))
	binary.LittleEndian.PutUint64(d[off+8:off+16], math.Float64bits(r.MinY))
	binary.LittleEndian.PutUint64(d[off+16:off+24], math.Float64bits(r.MaxX))
	binary.LittleEndian.PutUint64(d[off+24:off+32], math.Float64bits(r.MaxY))
	binary.LittleEndian.PutUint32(d[off+32:off+36], id)
	f.MarkDirty()
}

func appendEntry(f *pagestore.Frame, r Rect, id uint32) {
	c := nodeCount(f)
	setEntry(f, c, r, id)
	setNodeCount(f, c+1)
}

func removeEntryAt(f *pagestore.Frame, i int) {
	c := nodeCount(f)
	d := f.Data()
	copy(d[headerSize+i*entrySize:headerSize+(c-1)*entrySize],
		d[headerSize+(i+1)*entrySize:headerSize+c*entrySize])
	setNodeCount(f, c-1)
	f.MarkDirty()
}

// Size returns the number of stored object references (duplicates count).
func (t *Tree) Size() int { return t.size }

// Pages returns the number of pages the tree occupies (Figure 10 metric).
func (t *Tree) Pages() int { return t.pages }

// Capacity returns the per-node entry capacity.
func (t *Tree) Capacity() int { return t.cap }

// --- Bulk build ---

// Bulk builds an R⁺-tree over the items by recursive quantile slab
// partitioning: each internal node slices its region along one axis into
// disjoint slabs; items straddling a cut are assigned to every slab they
// intersect (the R⁺-tree duplication rule).
func Bulk(pool *pagestore.Pool, items []Item, fill float64) (*Tree, error) {
	return BulkBounded(pool, items, fill, 0)
}

// BulkBounded is Bulk with an explicit per-level duplication bound
// (0 keeps the default of 1.5).
func BulkBounded(pool *pagestore.Pool, items []Item, fill, dupBound float64) (*Tree, error) {
	t, err := New(pool, fill)
	if err != nil {
		return nil, err
	}
	t.SetDuplicationBound(dupBound)
	for _, it := range items {
		if !it.R.Valid() || !it.R.Bounded() {
			return nil, fmt.Errorf("rplustree: item rectangle %+v must be valid and bounded", it.R)
		}
	}
	if len(items) == 0 {
		return t, nil
	}
	// Free the placeholder root; the build allocates its own pages.
	if err := t.pool.FreePage(t.root); err != nil {
		return nil, err
	}
	t.pages--
	root, err := t.buildGrid(items)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// buildGrid bulk-loads via a duplication-aware grid: the resolution is
// chosen once from the objects' extents so that each axis's expected
// duplication stays within the bound, then the grid cells (x-quantile
// columns × per-column y-quantile cells) are packed into internal levels
// of up to `cap` children. Cells that still exceed a page — which happens
// exactly when objects are large relative to the duplication-limited cell
// size — become overflow chains: the R⁺-tree's documented degradation on
// large objects (Figure 9).
func (t *Tree) buildGrid(items []Item) (pagestore.PageID, error) {
	// Budget ~40 % headroom for duplicated references so cells rarely
	// spill into overflow chains when objects are small.
	targetCells := (len(items)*14/10 + t.leafTarget() - 1) / t.leafTarget()

	// Average object extent and the data span per axis.
	var ex, ey float64
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, it := range items {
		ex += it.R.MaxX - it.R.MinX                                //dualvet:allow infguard — item rects are validated bounded at Insert/Bulk
		ey += it.R.MaxY - it.R.MinY                                //dualvet:allow infguard — item rects are validated bounded at Insert/Bulk
		cx, cy := (it.R.MinX+it.R.MaxX)/2, (it.R.MinY+it.R.MaxY)/2 //dualvet:allow infguard — item rects are validated bounded at Insert/Bulk
		minX, maxX = math.Min(minX, cx), math.Max(maxX, cx)
		minY, maxY = math.Min(minY, cy), math.Max(maxY, cy)
	}
	n := float64(len(items))
	ex, ey = ex/n, ey/n
	spanX, spanY := maxX-minX, maxY-minY //dualvet:allow infguard — len(items) > 0, so the ∓Inf seeds were replaced by finite centers

	// Per-axis resolution cap: g cuts of spacing span/g are each crossed by
	// ≈ extent·g/span of the objects, so keeping g ≤ (bound−1)·span/extent
	// bounds the axis's duplication factor by `bound`.
	gMax := func(span, extent float64) int {
		if extent <= 0 || span <= 0 {
			return t.cap
		}
		g := int((t.dupBound - 1) * span / extent)
		if g < 1 {
			g = 1
		}
		return g
	}
	side := int(math.Ceil(math.Sqrt(float64(targetCells))))
	if side < 1 {
		side = 1
	}
	gx := side
	if m := gMax(spanX, ex); gx > m {
		gx = m
	}
	gy := (targetCells + gx - 1) / gx
	if m := gMax(spanY, ey); gy > m {
		gy = m
	}
	if gy < 1 {
		gy = 1
	}

	// Columns by x-quantiles of centers, then cells by y-quantiles within
	// each column.
	columns, colRegions := sliceSlabs(items, WorldRect(), 0, gx)
	if columns == nil {
		columns, colRegions = [][]Item{items}, []Rect{WorldRect()}
	}
	var colChildren []builtChild
	for ci := range columns {
		cells, cellRegions := sliceSlabs(columns[ci], colRegions[ci], 1, gy)
		if cells == nil {
			cells, cellRegions = [][]Item{columns[ci]}, []Rect{colRegions[ci]}
		}
		var leaves []builtChild
		for li := range cells {
			page, err := t.writeLeafChain(cells[li])
			if err != nil {
				return 0, err
			}
			leaves = append(leaves, builtChild{region: cellRegions[li], page: page})
		}
		page, err := t.packChildren(leaves, colRegions[ci])
		if err != nil {
			return 0, err
		}
		colChildren = append(colChildren, builtChild{region: colRegions[ci], page: page})
	}
	return t.packChildren(colChildren, WorldRect())
}

// builtChild is one packed subtree: its region and root page.
type builtChild struct {
	region Rect
	page   pagestore.PageID
}

// packChildren groups children (which tile `region` in order) into internal
// nodes of at most cap entries, adding levels until one root remains. A
// single child is returned as-is.
func (t *Tree) packChildren(children []builtChild, region Rect) (pagestore.PageID, error) {
	if len(children) == 1 {
		return children[0].page, nil
	}
	for len(children) > 1 {
		var up []builtChild
		for i := 0; i < len(children); i += t.cap {
			end := i + t.cap
			if end > len(children) {
				end = len(children)
			}
			group := children[i:end]
			if len(group) == 1 {
				up = append(up, group[0])
				continue
			}
			f, err := t.pool.NewPage()
			if err != nil {
				return 0, err
			}
			initNode(f, typeInternal)
			t.pages++
			groupRegion := group[0].region
			for _, ch := range group {
				appendEntry(f, ch.region, uint32(ch.page))
				groupRegion = groupRegion.Union(ch.region)
			}
			up = append(up, builtChild{region: groupRegion, page: f.ID()})
			f.Release()
		}
		children = up
	}
	return children[0].page, nil
}

func (t *Tree) leafTarget() int {
	n := int(float64(t.cap) * t.fill)
	if n < 1 {
		n = 1
	}
	return n
}

// sliceSlabs cuts region into at most k slabs at center quantiles along the
// axis, assigning every item to each slab it intersects. Cuts that collapse
// (equal quantiles) are skipped, so fewer than k slabs may result.
func sliceSlabs(items []Item, region Rect, axis, k int) ([][]Item, []Rect) {
	centers := make([]float64, len(items))
	for i, it := range items {
		if axis == 0 {
			centers[i] = (it.R.MinX + it.R.MaxX) / 2 //dualvet:allow infguard — item rects are validated bounded at Insert/Bulk
		} else {
			centers[i] = (it.R.MinY + it.R.MaxY) / 2 //dualvet:allow infguard — item rects are validated bounded at Insert/Bulk
		}
	}
	sort.Float64s(centers)
	var cuts []float64
	for j := 1; j < k; j++ {
		c := centers[j*len(centers)/k]
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	if len(cuts) == 0 {
		return nil, nil
	}
	regions := make([]Rect, 0, len(cuts)+1)
	cur := region
	for _, c := range cuts {
		regions = append(regions, cur.cutLeft(axis, c))
		cur = cur.cutRight(axis, c)
	}
	regions = append(regions, cur)
	slabs := make([][]Item, len(regions))
	for _, it := range items {
		for i, r := range regions {
			if r.Intersects(it.R) {
				slabs[i] = append(slabs[i], it)
			}
		}
	}
	// Drop empty slabs (possible when duplicated geometry clusters).
	outS, outR := slabs[:0], regions[:0]
	for i := range slabs {
		if len(slabs[i]) > 0 {
			outS = append(outS, slabs[i])
			outR = append(outR, regions[i])
		}
	}
	return outS, outR
}

// writeLeafChain stores the items in a leaf, chaining overflow pages when
// they exceed the page capacity.
func (t *Tree) writeLeafChain(items []Item) (pagestore.PageID, error) {
	f, err := t.pool.NewPage()
	if err != nil {
		return 0, err
	}
	initNode(f, typeLeaf)
	t.pages++
	first := f.ID()
	for i, it := range items {
		if nodeCount(f) == t.cap {
			nf, err := t.pool.NewPage()
			if err != nil {
				f.Release()
				return 0, err
			}
			initNode(nf, typeLeaf)
			t.pages++
			setOverflow(f, nf.ID())
			f.Release()
			f = nf
		}
		appendEntry(f, it.R, it.TID)
		t.size++
		_ = i
	}
	f.Release()
	return first, nil
}
