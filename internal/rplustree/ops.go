package rplustree

import (
	"fmt"
	"math"

	"dualcdb/internal/pagestore"
)

// This file implements dynamic maintenance (Insert/Delete) and searches.

// Insert adds an item, duplicating its reference into every leaf whose
// region intersects the MBR (the R⁺-tree clipping rule). Node overflow
// splits the node's region with a guillotine cut; crossing objects are
// duplicated into both halves.
func (t *Tree) Insert(it Item) error {
	if !it.R.Valid() || !it.R.Bounded() {
		return fmt.Errorf("rplustree: item rectangle %+v must be valid and bounded", it.R)
	}
	split, err := t.insertInto(t.root, WorldRect(), it)
	if err != nil {
		return err
	}
	if split != nil {
		// Root split: new internal root over the two halves.
		f, err := t.pool.NewPage()
		if err != nil {
			return err
		}
		initNode(f, typeInternal)
		t.pages++
		appendEntry(f, split.leftRegion, uint32(split.left))
		appendEntry(f, split.rightRegion, uint32(split.right))
		t.root = f.ID()
		f.Release()
	}
	return nil
}

// splitResult describes a node split to the parent.
type splitResult struct {
	left, right             pagestore.PageID
	leftRegion, rightRegion Rect
}

func (t *Tree) insertInto(id pagestore.PageID, region Rect, it Item) (*splitResult, error) {
	f, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}

	if nodeType(f) == typeLeaf {
		if overflow(f) != pagestore.InvalidPage {
			// Chained leaf (degenerate data): never split a chain — walk to
			// a page with room, extending the chain if necessary.
			for nodeCount(f) == t.cap && overflow(f) != pagestore.InvalidPage {
				next := overflow(f)
				f.Release()
				if f, err = t.pool.Get(next); err != nil {
					return nil, err
				}
			}
			if nodeCount(f) == t.cap {
				nf, err := t.pool.NewPage()
				if err != nil {
					f.Release()
					return nil, err
				}
				initNode(nf, typeLeaf)
				t.pages++
				setOverflow(f, nf.ID())
				f.Release()
				f = nf
			}
			appendEntry(f, it.R, it.TID)
			t.size++
			f.Release()
			return nil, nil
		}
		if nodeCount(f) < t.cap {
			appendEntry(f, it.R, it.TID)
			t.size++
			f.Release()
			return nil, nil
		}
		// Full chain-free leaf: split, or start a chain if the region
		// cannot be cut without putting everything on both sides.
		res, err := t.splitLeaf(f, region, it)
		f.Release()
		return res, err
	}

	// Internal: read the children, descend into every child whose region
	// intersects the MBR, apply any child splits to the in-memory list, and
	// rewrite (or split) this node from the list — never writing past the
	// page capacity.
	children := readChildren(f)
	var splits []struct {
		idx int
		res *splitResult
	}
	for i, ch := range children {
		if !ch.r.Intersects(it.R) {
			continue
		}
		res, err := t.insertInto(pagestore.PageID(ch.id), ch.r, it)
		if err != nil {
			f.Release()
			return nil, err
		}
		if res != nil {
			splits = append(splits, struct {
				idx int
				res *splitResult
			}{i, res})
		}
	}
	if len(splits) == 0 {
		f.Release()
		return nil, nil
	}
	for i := len(splits) - 1; i >= 0; i-- {
		s := splits[i]
		children = append(children[:s.idx], append([]child{
			{r: s.res.leftRegion, id: uint32(s.res.left)},
			{r: s.res.rightRegion, id: uint32(s.res.right)},
		}, children[s.idx+1:]...)...)
	}
	if len(children) <= t.cap {
		writeChildren(f, children)
		f.Release()
		return nil, nil
	}
	res, err := t.splitChildren(f, children, region)
	f.Release()
	return res, err
}

// child is an in-memory internal-node entry.
type child struct {
	r  Rect
	id uint32
}

func readChildren(f *pagestore.Frame) []child {
	n := nodeCount(f)
	out := make([]child, n)
	for i := 0; i < n; i++ {
		r, id := getEntry(f, i)
		out[i] = child{r, id}
	}
	return out
}

func writeChildren(f *pagestore.Frame, children []child) {
	initNode(f, typeInternal)
	for _, ch := range children {
		appendEntry(f, ch.r, ch.id)
	}
}

// splitChildren splits an over-full child list with a guillotine cut,
// reusing f as the left node; either side that still exceeds capacity is
// split recursively into a deeper internal node.
func (t *Tree) splitChildren(f *pagestore.Frame, children []child, region Rect) (*splitResult, error) {
	axis, at, err := guillotineCut(children, region)
	if err != nil {
		return nil, err
	}
	leftRegion := region.cutLeft(axis, at)
	rightRegion := region.cutRight(axis, at)
	var left, right []child
	for _, ch := range children {
		if rightRegion.Contains(ch.r) {
			right = append(right, ch)
		} else {
			left = append(left, ch)
		}
	}
	leftID, err := t.writeInternal(left, leftRegion, f)
	if err != nil {
		return nil, err
	}
	rightID, err := t.writeInternal(right, rightRegion, nil)
	if err != nil {
		return nil, err
	}
	return &splitResult{left: leftID, right: rightID, leftRegion: leftRegion, rightRegion: rightRegion}, nil
}

// writeInternal persists a child list as an internal node, reusing frame
// `reuse` when given; lists beyond capacity recurse via guillotine cuts.
func (t *Tree) writeInternal(children []child, region Rect, reuse *pagestore.Frame) (pagestore.PageID, error) {
	if len(children) <= t.cap {
		if reuse != nil {
			writeChildren(reuse, children)
			return reuse.ID(), nil
		}
		f, err := t.pool.NewPage()
		if err != nil {
			return 0, err
		}
		t.pages++
		writeChildren(f, children)
		id := f.ID()
		f.Release()
		return id, nil
	}
	axis, at, err := guillotineCut(children, region)
	if err != nil {
		return 0, err
	}
	leftRegion := region.cutLeft(axis, at)
	rightRegion := region.cutRight(axis, at)
	var left, right []child
	for _, ch := range children {
		if rightRegion.Contains(ch.r) {
			right = append(right, ch)
		} else {
			left = append(left, ch)
		}
	}
	leftID, err := t.writeInternal(left, leftRegion, nil)
	if err != nil {
		return 0, err
	}
	rightID, err := t.writeInternal(right, rightRegion, nil)
	if err != nil {
		return 0, err
	}
	pair := []child{{r: leftRegion, id: uint32(leftID)}, {r: rightRegion, id: uint32(rightID)}}
	return t.writeInternal(pair, region, reuse)
}

// guillotineCut finds a cut line no child region strictly crosses, with
// both sides non-empty, preferring balance.
func guillotineCut(children []child, region Rect) (axis int, at float64, err error) {
	found := false
	bestBal := math.Inf(1)
	for ax := 0; ax < 2; ax++ {
		for _, ch := range children {
			for _, c := range cutCandidates(ch.r, ax) {
				if !insideRegion(region, ax, c) {
					continue
				}
				valid, l, r := true, 0, 0
				for _, o := range children {
					lo, hi := o.r.MinX, o.r.MaxX
					if ax == 1 {
						lo, hi = o.r.MinY, o.r.MaxY
					}
					switch {
					case hi <= c:
						l++
					case lo >= c:
						r++
					default:
						valid = false
					}
				}
				if !valid || l == 0 || r == 0 {
					continue
				}
				if bal := math.Abs(float64(l - r)); bal < bestBal {
					bestBal, axis, at, found = bal, ax, c, true
				}
			}
		}
	}
	if !found {
		return 0, 0, ErrNoValidCut
	}
	return axis, at, nil
}

// splitLeaf splits a full leaf plus the pending item across a cut of its
// region. Entries crossing the cut are duplicated. When no cut separates
// anything (all entries overlap every candidate), the leaf grows an
// overflow page instead.
func (t *Tree) splitLeaf(f *pagestore.Frame, region Rect, it Item) (*splitResult, error) {
	items := make([]Item, 0, nodeCount(f)+1)
	for i := 0; i < nodeCount(f); i++ {
		r, tid := getEntry(f, i)
		items = append(items, Item{R: r, TID: tid})
	}
	items = append(items, it)

	axis, at, ok := bestLeafCut(items, region)
	if !ok {
		// Degenerate: chain an overflow page holding the new item.
		nf, err := t.pool.NewPage()
		if err != nil {
			return nil, err
		}
		initNode(nf, typeLeaf)
		t.pages++
		setOverflow(nf, overflow(f))
		setOverflow(f, nf.ID())
		appendEntry(nf, it.R, it.TID)
		t.size++
		nf.Release()
		return nil, nil
	}

	leftRegion := region.cutLeft(axis, at)
	rightRegion := region.cutRight(axis, at)
	var left, right []Item
	for _, x := range items {
		if leftRegion.Intersects(x.R) {
			left = append(left, x)
		}
		if rightRegion.Intersects(x.R) {
			right = append(right, x)
		}
	}
	// Rewrite f as the left leaf; allocate the right leaf. f has no
	// overflow chain here (chained leaves are never split).
	initNode(f, typeLeaf)
	for _, x := range left {
		appendEntry(f, x.R, x.TID)
	}
	nf, err := t.pool.NewPage()
	if err != nil {
		return nil, err
	}
	initNode(nf, typeLeaf)
	t.pages++
	for _, x := range right {
		appendEntry(nf, x.R, x.TID)
	}
	// Reference accounting: one new item, plus one duplicate per crossing.
	t.size += 1 + (len(left) + len(right) - len(items))
	res := &splitResult{left: f.ID(), right: nf.ID(), leftRegion: leftRegion, rightRegion: rightRegion}
	nf.Release()
	return res, nil
}

// bestLeafCut picks the axis and coordinate minimizing crossings while
// keeping both sides strictly smaller than the input. Candidates are entry
// boundaries.
func bestLeafCut(items []Item, region Rect) (axis int, at float64, ok bool) {
	bestScore := math.Inf(1)
	for ax := 0; ax < 2; ax++ {
		for _, x := range items {
			for _, c := range cutCandidates(x.R, ax) {
				if !insideRegion(region, ax, c) {
					continue
				}
				l, r, cross := countSides(items, ax, c)
				if l == len(items) || r == len(items) {
					continue // useless cut
				}
				score := float64(cross)*10 + math.Abs(float64(l-r))
				if score < bestScore {
					bestScore, axis, at, ok = score, ax, c, true
				}
			}
		}
	}
	return axis, at, ok
}

func cutCandidates(r Rect, axis int) [2]float64 {
	if axis == 0 {
		return [2]float64{r.MinX, r.MaxX}
	}
	return [2]float64{r.MinY, r.MaxY}
}

func insideRegion(region Rect, axis int, c float64) bool {
	if axis == 0 {
		return c > region.MinX && c < region.MaxX
	}
	return c > region.MinY && c < region.MaxY
}

func countSides(items []Item, axis int, c float64) (left, right, cross int) {
	for _, x := range items {
		lo, hi := x.R.MinX, x.R.MaxX
		if axis == 1 {
			lo, hi = x.R.MinY, x.R.MaxY
		}
		inLeft := lo <= c
		inRight := hi >= c
		if inLeft {
			left++
		}
		if inRight {
			right++
		}
		if inLeft && inRight {
			cross++
		}
	}
	return left, right, cross
}

// Delete removes every reference to (r, tid) from leaves intersecting r.
// Underflowing nodes are not condensed (deletion is rare in the paper's
// workloads; space is reclaimed by rebuilding).
func (t *Tree) Delete(r Rect, tid uint32) (int, error) {
	removed := 0
	var walk func(id pagestore.PageID) error
	walk = func(id pagestore.PageID) error {
		f, err := t.pool.Get(id)
		if err != nil {
			return err
		}
		defer func() { f.Release() }()
		if nodeType(f) == typeLeaf {
			for {
				for i := nodeCount(f) - 1; i >= 0; i-- {
					er, etid := getEntry(f, i)
					if etid == tid && er == r {
						removeEntryAt(f, i)
						removed++
						t.size--
					}
				}
				next := overflow(f)
				if next == pagestore.InvalidPage {
					return nil
				}
				nf, err := t.pool.Get(next)
				if err != nil {
					return err
				}
				f.Release()
				f = nf
			}
		}
		for i := 0; i < nodeCount(f); i++ {
			cr, cid := getEntry(f, i)
			if cr.Intersects(r) {
				if err := walk(pagestore.PageID(cid)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	err := walk(t.root)
	return removed, err
}

// SearchHalfPlane visits every object whose MBR intersects the half-plane
// a·x + b·y + c θ 0 (le: θ is ≤). The same tid may be emitted repeatedly
// (the R⁺-tree duplication); callers deduplicate. It returns the number of
// tree nodes visited.
func (t *Tree) SearchHalfPlane(a, b, c float64, le bool, emit func(tid uint32, r Rect)) (int, error) {
	visited := 0
	var walk func(id pagestore.PageID, region Rect) error
	walk = func(id pagestore.PageID, region Rect) error {
		f, err := t.pool.Get(id)
		if err != nil {
			return err
		}
		defer func() { f.Release() }()
		visited++
		if nodeType(f) == typeLeaf {
			for {
				for i := 0; i < nodeCount(f); i++ {
					r, tid := getEntry(f, i)
					if r.IntersectsHalfPlane(a, b, c, le) {
						emit(tid, r)
					}
				}
				next := overflow(f)
				if next == pagestore.InvalidPage {
					return nil
				}
				nf, err := t.pool.Get(next)
				if err != nil {
					return err
				}
				f.Release()
				f = nf
				visited++
			}
		}
		for i := 0; i < nodeCount(f); i++ {
			r, cid := getEntry(f, i)
			if r.IntersectsHalfPlane(a, b, c, le) {
				if err := walk(pagestore.PageID(cid), r); err != nil {
					return err
				}
			}
		}
		return nil
	}
	err := walk(t.root, WorldRect())
	return visited, err
}

// SearchRect visits every object whose MBR intersects q (window queries;
// also used by tests to validate structure).
func (t *Tree) SearchRect(q Rect, emit func(tid uint32, r Rect)) error {
	var walk func(id pagestore.PageID) error
	walk = func(id pagestore.PageID) error {
		f, err := t.pool.Get(id)
		if err != nil {
			return err
		}
		defer func() { f.Release() }()
		if nodeType(f) == typeLeaf {
			for {
				for i := 0; i < nodeCount(f); i++ {
					r, tid := getEntry(f, i)
					if r.Intersects(q) {
						emit(tid, r)
					}
				}
				next := overflow(f)
				if next == pagestore.InvalidPage {
					return nil
				}
				nf, err := t.pool.Get(next)
				if err != nil {
					return err
				}
				f.Release()
				f = nf
			}
		}
		for i := 0; i < nodeCount(f); i++ {
			r, cid := getEntry(f, i)
			if r.Intersects(q) {
				if err := walk(pagestore.PageID(cid)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(t.root)
}

// CheckInvariants verifies the R⁺-tree structural invariants: sibling
// regions are pairwise disjoint (zero-area overlap), children lie within
// their parent regions, and every leaf entry intersects its leaf region.
func (t *Tree) CheckInvariants() error {
	var walk func(id pagestore.PageID, region Rect) error
	walk = func(id pagestore.PageID, region Rect) error {
		f, err := t.pool.Get(id)
		if err != nil {
			return err
		}
		defer func() { f.Release() }()
		if nodeType(f) == typeLeaf {
			for {
				for i := 0; i < nodeCount(f); i++ {
					r, tid := getEntry(f, i)
					if !r.Intersects(region) {
						return fmt.Errorf("rplustree: leaf %d entry %d (tid %d) outside region", id, i, tid)
					}
				}
				next := overflow(f)
				if next == pagestore.InvalidPage {
					return nil
				}
				nf, err := t.pool.Get(next)
				if err != nil {
					return err
				}
				f.Release()
				f = nf
			}
		}
		var regions []Rect
		for i := 0; i < nodeCount(f); i++ {
			r, cid := getEntry(f, i)
			if !region.Contains(r) {
				return fmt.Errorf("rplustree: node %d child %d region escapes parent", id, i)
			}
			for _, o := range regions {
				ix := Rect{
					MinX: math.Max(r.MinX, o.MinX), MinY: math.Max(r.MinY, o.MinY),
					MaxX: math.Min(r.MaxX, o.MaxX), MaxY: math.Min(r.MaxY, o.MaxY),
				}
				if ix.Valid() && ix.Area() > 1e-9 {
					return fmt.Errorf("rplustree: node %d has overlapping child regions", id)
				}
			}
			regions = append(regions, r)
			if err := walk(pagestore.PageID(cid), r); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, WorldRect())
}
