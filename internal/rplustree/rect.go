// Package rplustree implements the R⁺-tree of Sellis, Roussopoulos and
// Faloutsos (VLDB 1987) — the baseline the paper compares against in
// Section 5. It is the partition variant: sibling regions are disjoint
// rectangles that together cover their parent's region (the root covers
// the whole plane), and an object whose MBR straddles several leaf regions
// is referenced from every one of them, so searches must deduplicate.
//
// Like the paper's experiments, the structure stores *bounded* objects
// only; EXIST selections traverse every node region intersecting the query
// half-plane, and ALL selections are approximated by an EXIST traversal
// followed by an exact refinement step — precisely the weakness the dual
// index exploits.
package rplustree

import "math"

// Rect is an axis-aligned rectangle, possibly with infinite extents (node
// regions partition the whole plane).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// WorldRect covers the entire plane.
func WorldRect() Rect {
	return Rect{math.Inf(-1), math.Inf(-1), math.Inf(1), math.Inf(1)}
}

// Valid reports MinX ≤ MaxX and MinY ≤ MaxY.
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Bounded reports whether all four coordinates are finite. Stored objects
// must be bounded (the structure's documented limitation — only node
// regions extend to infinity); center and extent arithmetic in the build
// path would otherwise silently produce NaN from Inf − Inf.
func (r Rect) Bounded() bool {
	return !math.IsInf(r.MinX, 0) && !math.IsInf(r.MaxX, 0) &&
		!math.IsInf(r.MinY, 0) && !math.IsInf(r.MaxY, 0)
}

// Intersects reports whether the closed rectangles share a point.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Contains reports whether o lies entirely inside r.
func (r Rect) Contains(o Rect) bool {
	return r.MinX <= o.MinX && o.MaxX <= r.MaxX && r.MinY <= o.MinY && o.MaxY <= r.MaxY
}

// ContainsPoint reports whether (x, y) lies in the closed rectangle.
func (r Rect) ContainsPoint(x, y float64) bool {
	return r.MinX <= x && x <= r.MaxX && r.MinY <= y && y <= r.MaxY
}

// Union returns the bounding box of r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, o.MinX), MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX), MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// Area returns the rectangle's area: +Inf for unbounded regions, 0 for
// degenerate ones — including unbounded strips of zero width, whose naive
// width·height would be 0·Inf = NaN (and a NaN area poisons every split-cost
// comparison downstream, since all of them come out false).
func (r Rect) Area() float64 {
	if !r.Valid() {
		return 0
	}
	if math.IsInf(r.MinX, 0) || math.IsInf(r.MaxX, 0) || math.IsInf(r.MinY, 0) || math.IsInf(r.MaxY, 0) {
		if r.MinX == r.MaxX || r.MinY == r.MaxY { //dualvet:allow floatcmp — exact sentinel equality on ±Inf coordinates
			return 0
		}
		return math.Inf(1)
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// IntersectsHalfPlane reports whether the rectangle meets the half-plane
// a·x + b·y + c θ 0 (θ encoded by le: true for ≤). The extreme corner in
// the constraint's favourable direction decides.
func (r Rect) IntersectsHalfPlane(a, b, c float64, le bool) bool {
	// Pick the corner minimizing (for ≤) or maximizing (for ≥) a·x + b·y.
	x, y := r.MinX, r.MinY
	if le {
		if a > 0 {
			x = r.MinX
		} else {
			x = r.MaxX
		}
		if b > 0 {
			y = r.MinY
		} else {
			y = r.MaxY
		}
		return evalCorner(a, b, c, x, y) <= 1e-9
	}
	if a > 0 {
		x = r.MaxX
	} else {
		x = r.MinX
	}
	if b > 0 {
		y = r.MaxY
	} else {
		y = r.MinY
	}
	return evalCorner(a, b, c, x, y) >= -1e-9
}

// evalCorner computes a·x + b·y + c, treating 0·(±Inf) as 0 so infinite
// node regions behave like limits of growing boxes.
func evalCorner(a, b, c, x, y float64) float64 {
	s := c
	if a != 0 {
		s += a * x
	}
	if b != 0 {
		s += b * y
	}
	return s
}

// cutLeft and cutRight split a rectangle at a coordinate on the given axis
// (0 = x, 1 = y).
func (r Rect) cutLeft(axis int, at float64) Rect {
	if axis == 0 {
		return Rect{r.MinX, r.MinY, at, r.MaxY}
	}
	return Rect{r.MinX, r.MinY, r.MaxX, at}
}

func (r Rect) cutRight(axis int, at float64) Rect {
	if axis == 0 {
		return Rect{at, r.MinY, r.MaxX, r.MaxY}
	}
	return Rect{r.MinX, at, r.MaxX, r.MaxY}
}
