package workload

import (
	"math"
	"testing"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
)

func TestGenerateRelationBasics(t *testing.T) {
	rel, err := GenerateRelation(Config{N: 200, Size: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 200 {
		t.Fatalf("Len = %d", rel.Len())
	}
	rel.Scan(func(tp *constraint.Tuple) bool {
		if !tp.IsSatisfiable() {
			t.Fatalf("generated tuple unsatisfiable: %v", tp)
		}
		if !tp.IsBounded() {
			t.Fatalf("small-regime tuple unbounded: %v", tp)
		}
		m := len(tp.Constraints())
		if m < 3 || m > 6 {
			t.Fatalf("tuple has %d constraints, want 3–6", m)
		}
		return true
	})
}

func TestGeneratedAreasInRegime(t *testing.T) {
	for _, size := range []SizeClass{Small, Medium} {
		rel, err := GenerateRelation(Config{N: 150, Size: size, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		window := 100.0 * 100.0
		lo, hi := 0.01, 0.05
		if size == Medium {
			lo, hi = 0.05, 0.50
		}
		rel.Scan(func(tp *constraint.Tuple) bool {
			ext, err := tp.Extension()
			if err != nil {
				t.Fatal(err)
			}
			frac := ext.Area2() / window
			if frac < lo*0.9 || frac > hi*1.1 {
				t.Fatalf("%v object area fraction %v outside [%v, %v]", size, frac, lo, hi)
			}
			return true
		})
	}
}

func TestGenerationDeterministic(t *testing.T) {
	r1, err := GenerateRelation(Config{N: 50, Size: Small, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GenerateRelation(Config{N: 50, Size: Small, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ids1, ids2 := r1.IDs(), r2.IDs()
	for i := range ids1 {
		t1, _ := r1.Get(ids1[i])
		t2, _ := r2.Get(ids2[i])
		if t1.String() != t2.String() {
			t.Fatalf("seeded generation not deterministic at %d", i)
		}
	}
	r3, err := GenerateRelation(Config{N: 50, Size: Small, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := r1.Get(ids1[0])
	t3, _ := r3.Get(r3.IDs()[0])
	if t1.String() == t3.String() {
		t.Fatal("different seeds produced identical tuples")
	}
}

func TestUnboundedFraction(t *testing.T) {
	rel, err := GenerateRelation(Config{N: 200, Size: Small, UnboundedFraction: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	unb := 0
	rel.Scan(func(tp *constraint.Tuple) bool {
		if !tp.IsSatisfiable() {
			t.Fatalf("unsatisfiable generated tuple")
		}
		if !tp.IsBounded() {
			unb++
		}
		return true
	})
	if unb < 30 || unb > 90 {
		t.Fatalf("unbounded count %d far from expectation 60", unb)
	}
}

func TestQueryCalibration(t *testing.T) {
	rel, err := GenerateRelation(Config{N: 1000, Size: Small, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []constraint.QueryKind{constraint.EXIST, constraint.ALL} {
		qs, err := GenerateQueries(rel, QueryConfig{
			Count: 6, Kind: kind, SelectivityLo: 0.10, SelectivityHi: 0.15, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) != 6 {
			t.Fatalf("generated %d queries", len(qs))
		}
		for _, q := range qs {
			if q.Kind != kind {
				t.Fatalf("kind %v, want %v", q.Kind, kind)
			}
			sel, err := q.Selectivity(rel)
			if err != nil {
				t.Fatal(err)
			}
			// Quantile calibration is exact up to surface-value ties.
			if sel < 0.08 || sel > 0.18 {
				t.Fatalf("%v: selectivity %v outside the calibrated band", q, sel)
			}
		}
	}
}

func TestQueryCalibrationRejectsBadRange(t *testing.T) {
	rel, _ := GenerateRelation(Config{N: 10, Size: Small, Seed: 6})
	if _, err := GenerateQueries(rel, QueryConfig{Count: 1, SelectivityLo: 0, SelectivityHi: 0.5}); err == nil {
		t.Fatal("zero lower selectivity must be rejected")
	}
	if _, err := GenerateQueries(rel, QueryConfig{Count: 1, SelectivityLo: 0.5, SelectivityHi: 0.1}); err == nil {
		t.Fatal("inverted range must be rejected")
	}
	qs, err := GenerateQueries(rel, QueryConfig{Count: 0, SelectivityLo: 0.1, SelectivityHi: 0.2})
	if err != nil || qs != nil {
		t.Fatalf("count 0 must yield nothing: %v %v", qs, err)
	}
}

func TestQuerySlopesAreFinite(t *testing.T) {
	rel, _ := GenerateRelation(Config{N: 300, Size: Medium, Seed: 9})
	qs, err := GenerateQueries(rel, QueryConfig{
		Count: 20, Kind: constraint.EXIST, SelectivityLo: 0.05, SelectivityHi: 0.6, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if math.IsInf(q.Slope[0], 0) || math.IsNaN(q.Slope[0]) || math.IsInf(q.Intercept, 0) {
			t.Fatalf("bad query %v", q)
		}
		if q.Op != geom.GE && q.Op != geom.LE {
			t.Fatalf("bad op in %v", q)
		}
	}
}
