// Package workload regenerates the synthetic workloads of the paper's
// Section 5: relations of random generalized tuples — conjunctions of 3–6
// linear constraints whose boundary directions are drawn uniformly from
// [0, π/2) ∪ (π/2, π), with weight centers uniform in the working window
// [−50, 50]² — in two size regimes (small objects covering 1–5 % of the
// bounding area, medium objects up to 50 %), plus half-plane queries
// calibrated to a target selectivity.
//
// All generation is deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dualcdb/internal/constraint"
	"dualcdb/internal/geom"
)

// SizeClass selects the paper's object-size regime.
type SizeClass int

const (
	// Small objects cover 1–5 % of the working window's area.
	Small SizeClass = iota
	// Medium objects cover 5–50 % of the working window's area.
	Medium
)

// String renders the size class.
func (s SizeClass) String() string {
	if s == Medium {
		return "medium"
	}
	return "small"
}

// Config parameterizes relation generation.
type Config struct {
	// N is the number of tuples (the paper uses 500–12000).
	N int
	// Size selects the object-size regime.
	Size SizeClass
	// Window is the half-width of the working window (default 50, the
	// paper's [−50, 50]²).
	Window float64
	// MinConstraints/MaxConstraints bound the constraints per tuple
	// (defaults 3 and 6, the paper's setting).
	MinConstraints, MaxConstraints int
	// UnboundedFraction, when positive, replaces that fraction of tuples
	// with unbounded ones (wedges and half-planes) — beyond the paper's
	// bounded experiments, used by the unbounded-object studies.
	UnboundedFraction float64
	// AreaLoFrac/AreaHiFrac, when positive, override the size class with an
	// explicit object-area range as fractions of the window area (used by
	// the object-size sweep experiment).
	AreaLoFrac, AreaHiFrac float64
	// Seed drives the deterministic generator.
	Seed int64
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 50
	}
	if c.MinConstraints <= 0 {
		c.MinConstraints = 3
	}
	if c.MaxConstraints < c.MinConstraints {
		c.MaxConstraints = c.MinConstraints + 3
	}
}

// areaFraction samples the object's target area as a fraction of the
// window area for the size class.
func (c Config) areaFraction(rng *rand.Rand) float64 {
	if c.AreaLoFrac > 0 && c.AreaHiFrac >= c.AreaLoFrac {
		return c.AreaLoFrac + rng.Float64()*(c.AreaHiFrac-c.AreaLoFrac)
	}
	if c.Size == Medium {
		return 0.05 + rng.Float64()*0.45 // 5–50 %
	}
	return 0.01 + rng.Float64()*0.04 // 1–5 %
}

// GenerateRelation builds a deterministic random relation.
func GenerateRelation(cfg Config) (*constraint.Relation, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rel := constraint.NewRelation(2)
	for i := 0; i < cfg.N; i++ {
		var t *constraint.Tuple
		var err error
		if cfg.UnboundedFraction > 0 && rng.Float64() < cfg.UnboundedFraction {
			t, err = unboundedTuple(cfg, rng)
		} else {
			t, err = boundedTuple(cfg, rng)
		}
		if err != nil {
			return nil, err
		}
		if _, err := rel.Insert(t); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// boundedTuple builds one bounded convex tuple: m tangent half-planes of a
// circle around the weight center, rescaled so the polygon area hits the
// sampled target exactly.
func boundedTuple(cfg Config, rng *rand.Rand) (*constraint.Tuple, error) {
	w := cfg.Window
	cx, cy := rng.Float64()*2*w-w, rng.Float64()*2*w-w
	m := cfg.MinConstraints + rng.Intn(cfg.MaxConstraints-cfg.MinConstraints+1)
	target := cfg.areaFraction(rng) * (2 * w) * (2 * w)

	// Outward normal directions spread around the circle with gaps < π so
	// the polygon is bounded; the induced boundary directions follow the
	// paper's uniform-angle distribution (vertical boundaries have measure
	// zero and are avoided by the jitter).
	normals := make([]float64, m)
	dists := make([]float64, m)
	for i := 0; i < m; i++ {
		normals[i] = (float64(i) + 0.35 + rng.Float64()*0.3) * 2 * math.Pi / float64(m)
		dists[i] = 0.7 + rng.Float64()*0.6 // radius jitter, rescaled below
	}
	build := func(scale float64) []geom.HalfSpace {
		hs := make([]geom.HalfSpace, m)
		for i := 0; i < m; i++ {
			nx, ny := math.Cos(normals[i]), math.Sin(normals[i])
			r := dists[i] * scale
			hs[i] = geom.HalfSpace{A: []float64{nx, ny}, C: -(nx*cx + ny*cy + r), Op: geom.LE}
		}
		return hs
	}
	probe, err := geom.FromHalfSpaces(build(1), 2)
	if err != nil {
		return nil, err
	}
	area := probe.Area2()
	if area <= 0 || math.IsInf(area, 0) {
		return nil, fmt.Errorf("workload: degenerate probe polygon (area %v)", area)
	}
	// Scaling every tangent distance by s scales the polygon by s about the
	// center, so the area scales by s².
	s := math.Sqrt(target / area)
	return constraint.NewTuple(2, build(s))
}

// unboundedTuple builds a wedge (two half-planes) or a half-plane or slab,
// anchored near the weight center.
func unboundedTuple(cfg Config, rng *rand.Rand) (*constraint.Tuple, error) {
	w := cfg.Window
	cx, cy := rng.Float64()*2*w-w, rng.Float64()*2*w-w
	m := 1 + rng.Intn(2)
	hs := make([]geom.HalfSpace, 0, m)
	base := rng.Float64() * 2 * math.Pi
	for i := 0; i < m; i++ {
		// Keep the normals within a half-circle so the conjunction stays
		// non-empty (a wedge or half-plane through the center).
		ang := base + rng.Float64()*2.5
		nx, ny := math.Cos(ang), math.Sin(ang)
		hs = append(hs, geom.HalfSpace{A: []float64{nx, ny}, C: -(nx*cx + ny*cy), Op: geom.LE})
	}
	return constraint.NewTuple(2, hs)
}

// ConfigD parameterizes d-dimensional relation generation (the Section 6
// "future work" study: behaviour of the technique for d > 2).
type ConfigD struct {
	// Dim is the ambient dimension d ≥ 2.
	Dim int
	// N is the number of tuples.
	N int
	// Window is the half-width of the working window (default 50).
	Window float64
	// SideFrac is the objects' edge length as a fraction of the window
	// width (default 0.15, chosen so selectivities stay comparable across
	// dimensions).
	SideFrac float64
	// ExtraCuts is the number of random tangent half-spaces added to each
	// box (default 2) so tuples are general polytopes, not just boxes.
	ExtraCuts int
	// Seed drives the deterministic generator.
	Seed int64
}

// GenerateRelationD builds a deterministic random d-dimensional relation:
// axis-aligned boxes around uniform centers, cut by a few random tangent
// half-spaces.
func GenerateRelationD(cfg ConfigD) (*constraint.Relation, error) {
	if cfg.Dim < 2 {
		return nil, fmt.Errorf("workload: dimension %d < 2", cfg.Dim)
	}
	if cfg.Window <= 0 {
		cfg.Window = 50
	}
	if cfg.SideFrac <= 0 {
		cfg.SideFrac = 0.15
	}
	if cfg.ExtraCuts < 0 {
		cfg.ExtraCuts = 0
	} else if cfg.ExtraCuts == 0 {
		cfg.ExtraCuts = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rel := constraint.NewRelation(cfg.Dim)
	half := cfg.SideFrac * cfg.Window
	for i := 0; i < cfg.N; i++ {
		c := make([]float64, cfg.Dim)
		for j := range c {
			c[j] = rng.Float64()*2*cfg.Window - cfg.Window
		}
		var hs []geom.HalfSpace
		for j := 0; j < cfg.Dim; j++ {
			lo := make([]float64, cfg.Dim)
			lo[j] = 1
			hi := append([]float64(nil), lo...)
			h := half * (0.6 + 0.8*rng.Float64())
			hs = append(hs,
				geom.HalfSpace{A: lo, C: -(c[j] - h), Op: geom.GE},
				geom.HalfSpace{A: hi, C: -(c[j] + h), Op: geom.LE},
			)
		}
		for e := 0; e < cfg.ExtraCuts; e++ {
			n := make(geom.Point, cfg.Dim)
			var norm float64
			for j := range n {
				n[j] = rng.NormFloat64()
				norm += n[j] * n[j]
			}
			norm = math.Sqrt(norm)
			if norm < 1e-9 {
				continue
			}
			for j := range n {
				n[j] /= norm
			}
			r := half * (0.3 + 0.7*rng.Float64())
			hs = append(hs, geom.HalfSpace{
				A: append([]float64(nil), n...), C: -(n.Dot(geom.Point(c)) + r), Op: geom.LE,
			})
		}
		t, err := constraint.NewTuple(cfg.Dim, hs)
		if err != nil {
			return nil, err
		}
		if _, err := rel.Insert(t); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// GenerateQueriesD builds d-dimensional half-plane queries calibrated to a
// target selectivity, with slope vectors uniform in [−slopeExtent,
// slopeExtent]^{d−1}.
func GenerateQueriesD(rel *constraint.Relation, qc QueryConfig, slopeExtent float64) ([]constraint.Query, error) {
	if qc.Count <= 0 {
		return nil, nil
	}
	if qc.SelectivityLo <= 0 || qc.SelectivityHi < qc.SelectivityLo || qc.SelectivityHi > 1 {
		return nil, fmt.Errorf("workload: bad selectivity range [%v, %v]", qc.SelectivityLo, qc.SelectivityHi)
	}
	if slopeExtent <= 0 {
		slopeExtent = 1
	}
	rng := rand.New(rand.NewSource(qc.Seed))
	sdim := rel.Dim() - 1
	var out []constraint.Query
	for len(out) < qc.Count {
		slope := make([]float64, sdim)
		for i := range slope {
			slope[i] = rng.Float64()*2*slopeExtent - slopeExtent
		}
		op := geom.GE
		if rng.Intn(2) == 0 {
			op = geom.LE
		}
		sel := qc.SelectivityLo + rng.Float64()*(qc.SelectivityHi-qc.SelectivityLo)
		q, ok, err := calibrateD(rel, qc.Kind, slope, op, sel)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, q)
		}
	}
	return out, nil
}

// calibrateD is calibrate for arbitrary dimension.
func calibrateD(rel *constraint.Relation, kind constraint.QueryKind, slope []float64, op geom.Op, sel float64) (constraint.Query, bool, error) {
	probe := constraint.NewQuery(kind, slope, 0, op)
	vals := make([]float64, 0, rel.Len())
	var scanErr error
	rel.Scan(func(t *constraint.Tuple) bool {
		v, err := probe.SurfaceValue(t)
		if err != nil {
			scanErr = err
			return false
		}
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
		return true
	})
	if scanErr != nil {
		return constraint.Query{}, false, scanErr
	}
	if len(vals) == 0 {
		return constraint.Query{}, false, nil
	}
	sort.Float64s(vals)
	want := int(sel * float64(rel.Len()))
	if want < 1 {
		want = 1
	}
	if want > len(vals) {
		want = len(vals)
	}
	var b float64
	if probe.SweepsUp() {
		b = vals[len(vals)-want]
	} else {
		b = vals[want-1]
	}
	if math.IsInf(b, 0) {
		return constraint.Query{}, false, nil
	}
	return constraint.NewQuery(kind, slope, b, op), true, nil
}

// QueryConfig parameterizes query generation.
type QueryConfig struct {
	// Count is the number of queries (the paper uses six per kind).
	Count int
	// Kind is ALL or EXIST.
	Kind constraint.QueryKind
	// SelectivityLo/Hi is the target selectivity range (the paper reports
	// the 10–15 % band).
	SelectivityLo, SelectivityHi float64
	// Seed drives the deterministic generator.
	Seed int64
}

// GenerateQueries builds half-plane queries whose selectivity over rel is
// calibrated into [SelectivityLo, SelectivityHi]: the slope is a random
// tangent of a uniform angle, and the intercept is chosen as the exact
// quantile of the tuples' surface values at that slope.
func GenerateQueries(rel *constraint.Relation, qc QueryConfig) ([]constraint.Query, error) {
	if qc.Count <= 0 {
		return nil, nil
	}
	if qc.SelectivityLo <= 0 || qc.SelectivityHi < qc.SelectivityLo || qc.SelectivityHi > 1 {
		return nil, fmt.Errorf("workload: bad selectivity range [%v, %v]", qc.SelectivityLo, qc.SelectivityHi)
	}
	rng := rand.New(rand.NewSource(qc.Seed))
	var out []constraint.Query
	for len(out) < qc.Count {
		ang := (rng.Float64() - 0.5) * (math.Pi - 0.15)
		a := math.Tan(ang)
		op := geom.GE
		if rng.Intn(2) == 0 {
			op = geom.LE
		}
		sel := qc.SelectivityLo + rng.Float64()*(qc.SelectivityHi-qc.SelectivityLo)
		q, ok, err := calibrate(rel, qc.Kind, a, op, sel)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, q)
		}
	}
	return out, nil
}

// calibrate picks the intercept that makes the query match approximately
// sel·N tuples, using the exact surface-value quantile. It can fail (ok =
// false) when too many tuples share infinite surface values at the slope.
func calibrate(rel *constraint.Relation, kind constraint.QueryKind, a float64, op geom.Op, sel float64) (constraint.Query, bool, error) {
	probe := constraint.Query2(kind, a, 0, op)
	vals := make([]float64, 0, rel.Len())
	var scanErr error
	rel.Scan(func(t *constraint.Tuple) bool {
		v, err := probe.SurfaceValue(t)
		if err != nil {
			scanErr = err
			return false
		}
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
		return true
	})
	if scanErr != nil {
		return constraint.Query{}, false, scanErr
	}
	if len(vals) == 0 {
		return constraint.Query{}, false, nil
	}
	sort.Float64s(vals)
	want := int(sel * float64(rel.Len()))
	if want < 1 {
		want = 1
	}
	if want > len(vals) {
		want = len(vals)
	}
	var b float64
	if probe.SweepsUp() {
		// Matching tuples have surface value ≥ b: take the want-th from top.
		b = vals[len(vals)-want]
	} else {
		b = vals[want-1]
	}
	if math.IsInf(b, 0) {
		return constraint.Query{}, false, nil
	}
	return constraint.Query2(kind, a, b, op), true, nil
}
