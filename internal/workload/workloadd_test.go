package workload

import (
	"testing"

	"dualcdb/internal/constraint"
)

func TestGenerateRelationD(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		rel, err := GenerateRelationD(ConfigD{Dim: d, N: 60, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 60 || rel.Dim() != d {
			t.Fatalf("d=%d: len=%d dim=%d", d, rel.Len(), rel.Dim())
		}
		rel.Scan(func(tp *constraint.Tuple) bool {
			if !tp.IsSatisfiable() {
				t.Fatalf("d=%d: unsatisfiable tuple %v", d, tp)
			}
			if !tp.IsBounded() {
				t.Fatalf("d=%d: unbounded tuple", d)
			}
			return true
		})
	}
	if _, err := GenerateRelationD(ConfigD{Dim: 1, N: 5}); err == nil {
		t.Fatal("dimension 1 must be rejected")
	}
}

func TestGenerateRelationDDeterministic(t *testing.T) {
	a, err := GenerateRelationD(ConfigD{Dim: 3, N: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRelationD(ConfigD{Dim: 3, N: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.Get(a.IDs()[7])
	tb, _ := b.Get(b.IDs()[7])
	if ta.String() != tb.String() {
		t.Fatal("seeded d-dim generation not deterministic")
	}
}

func TestGenerateQueriesD(t *testing.T) {
	rel, err := GenerateRelationD(ConfigD{Dim: 3, N: 400, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := GenerateQueriesD(rel, QueryConfig{
		Count: 5, Kind: constraint.EXIST, SelectivityLo: 0.10, SelectivityHi: 0.15, Seed: 13,
	}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 5 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Dim() != 3 {
			t.Fatalf("query dim %d", q.Dim())
		}
		sel, err := q.Selectivity(rel)
		if err != nil {
			t.Fatal(err)
		}
		if sel < 0.07 || sel > 0.20 {
			t.Fatalf("%v selectivity %v outside the calibrated band", q, sel)
		}
	}
	if _, err := GenerateQueriesD(rel, QueryConfig{Count: 1, SelectivityLo: 0, SelectivityHi: 1}, 1); err == nil {
		t.Fatal("bad selectivity must be rejected")
	}
}
