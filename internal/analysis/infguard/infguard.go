// Package infguard flags NaN-generating arithmetic on values that can carry
// the ±Inf TOP/BOT sentinels.
//
// The dual representation uses ±Inf as the honest value of TOP^P/BOT^P for
// unbounded polyhedra (the paper's "virtual vertices at infinity"), for the
// handicap-slot identities (MinSlot = +Inf, MaxSlot = −Inf) and for
// unbounded R⁺-tree regions. IEEE 754 keeps comparisons on such values exact
// and total, but two arithmetic shapes silently produce NaN — `Inf - Inf`
// (and `Inf + -Inf`) and `0 * Inf` — after which every comparison is false
// and a selection drops tuples with no error anywhere.
//
// The check is flow-sensitive and interprocedural: taint facts propagate
// over the function's control-flow graph (internal/analysis/dataflow), so
// loop-carried assignments are seen on the back edge and branch-local
// assignments join at the merge point, and every declared function gets an
// Inf-taint summary computed bottom-up over the package call graph (with
// summaries imported from dependency vetx records underneath) describing
// how its results acquire taint — intrinsically, or from which parameters.
// A value "may carry Inf" when it is:
//   - the result of math.Inf(...);
//   - read from a field, or returned by a function/method, on the built-in
//     sentinel-carrier list below (the envelope/support/handicap surfaces);
//   - read from a local declaration annotated //dualvet:mayinf;
//   - returned by a callee whose summary propagates taint from an argument
//     that itself may carry Inf here (`v := clamp(top)` taints v when top
//     is tainted and clamp's result derives from its parameter);
//   - a local variable — or a *field of* a local struct — assigned from any
//     of the above, including through composite literals (`a := acc{hi:
//     e.Hi}`), whole-struct copies (`b := a`), and multi-value assignments
//     from a marked function (`lo, hi := bounds()`).
//
// Flagged, unless a math.IsInf guard on the same operand expression appears
// earlier in the function:
//   - x + y and x - y where BOTH operands may carry Inf (opposite-sign
//     infinities meet);
//   - x * y where EITHER operand may carry Inf and the other is not a
//     provably non-zero constant (0·Inf).
//
// Escape hatch: //dualvet:allow infguard on the flagged line, for call sites
// where the operand range provably excludes Inf (say so in a comment).
// _test.go files are exempt: computed-vs-expected comparisons there fail no
// assertion a correct ±Inf comparison wouldn't also fail.
package infguard

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"dualcdb/internal/analysis/dataflow"
	"dualcdb/internal/analysis/framework"
)

// Analyzer is the infguard check.
var Analyzer = &framework.Analyzer{
	Name: "infguard",
	Doc:  "flag +,-,* arithmetic on possibly-±Inf sentinel values without a preceding math.IsInf guard",
	Run:  run,
}

// MayInfFuncs lists functions and methods whose result can carry ±Inf, keyed
// by types.Func.FullName. These are the repository's sentinel producers; the
// list is the cross-package complement of the //dualvet:mayinf annotation,
// which only reaches declarations in the package under analysis.
var MayInfFuncs = map[string]bool{
	"math.Inf":                                   true,
	"(dualcdb/internal/geom.Envelope).Eval":      true,
	"(dualcdb/internal/geom.Envelope).MaxOn":     true,
	"(dualcdb/internal/geom.Envelope).MinOn":     true,
	"(dualcdb/internal/geom.Polyhedron).Support": true,
	"(dualcdb/internal/geom.Polyhedron).Top":     true,
	"(dualcdb/internal/geom.Polyhedron).Bot":     true,
	"(dualcdb/internal/geom.Polyhedron).Area2":   true,
	"(dualcdb/internal/rplustree.Rect).Area":     true,
	"dualcdb/internal/core.supX":                 true,
	"dualcdb/internal/core.infX":                 true,
	// Handicap slots store ±Inf identities for empty accumulators; the
	// flat-layout accessor replaced the LeafView.Handicaps slice field.
	"(dualcdb/internal/btree.LeafView).Handicap": true,
}

// MayInfFields lists struct fields that can hold ±Inf, as
// "pkgpath.Type.Field".
var MayInfFields = map[string]bool{
	"dualcdb/internal/geom.Envelope.DomLo": true,
	"dualcdb/internal/geom.Envelope.DomHi": true,
	"dualcdb/internal/rplustree.Rect.MinX": true,
	"dualcdb/internal/rplustree.Rect.MinY": true,
	"dualcdb/internal/rplustree.Rect.MaxX": true,
	"dualcdb/internal/rplustree.Rect.MaxY": true,
}

// MayInfDirective marks a local declaration (function or struct field) whose
// value can carry ±Inf.
const MayInfDirective = "//dualvet:mayinf"

func run(pass *framework.Pass) error {
	local := collectLocalMarks(pass)

	// Interprocedural step: compute one taint summary per function,
	// bottom-up over the package call graph, with imported dependency banks
	// underneath; the per-function check then consults summaries at call
	// sites, so Inf laundered through a helper is still caught.
	cg := dataflow.BuildCallGraph(pass.Files, pass.TypesInfo)
	imported := pass.Summaries.TaintBank()
	sums := computeTaintSummaries(pass, cg, local, imported)
	lookup := func(fn *types.Func) (dataflow.TaintSummary, bool) {
		if s, ok := sums[fn]; ok {
			return s, true
		}
		s, ok := imported[fn.FullName()]
		return s, ok
	}
	exp := &dataflow.PackageSummaries{}
	exp.AddTaint(sums)
	pass.Export(exp)

	for _, f := range pass.Files {
		// Tests compare computed against expected values where, when both
		// sides carry the same infinity, a NaN difference fails no assertion
		// that a correct ±Inf comparison wouldn't also fail.
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, local, lookup)
		}
	}
	return nil
}

// localMarks holds objects annotated //dualvet:mayinf in this package.
type localMarks map[types.Object]bool

// collectLocalMarks resolves //dualvet:mayinf comments to the function and
// field objects they annotate (directive on the declaration line or the line
// directly above it).
func collectLocalMarks(pass *framework.Pass) localMarks {
	marks := make(localMarks)
	for _, f := range pass.Files {
		lines := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, MayInfDirective) {
					lines[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(lines) == 0 {
			continue
		}
		// A trailing directive (sharing a line with a declaration) marks only
		// that line; the line-above rule is for standalone directive lines.
		declLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.Field:
				declLines[pass.Fset.Position(n.Pos()).Line] = true
			}
			return true
		})
		marked := func(pos token.Pos) bool {
			ln := pass.Fset.Position(pos).Line
			return lines[ln] || (lines[ln-1] && !declLines[ln-1])
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if marked(n.Pos()) {
					if obj := pass.TypesInfo.Defs[n.Name]; obj != nil {
						marks[obj] = true
					}
				}
			case *ast.Field:
				if marked(n.Pos()) {
					for _, name := range n.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							marks[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return marks
}

// taintKey is one may-Inf fact: a local object, optionally narrowed to a
// field path inside it (".hi", ".bounds.lo", ...). path == "" is the whole
// value.
type taintKey struct {
	obj  types.Object
	path string
}

// origins is the taint mask of one value: which flattened parameters (bits
// 0..62, set only in summary mode where parameters are seeded with their
// own bit) and/or an intrinsic producer (bit 63) its possible ±Inf derives
// from. In checking mode parameters are never seeded, so any nonzero mask
// means "may carry Inf".
type origins uint64

const intrinsicOrigin origins = 1 << 63

type taintSet map[taintKey]origins

type taintLattice struct{}

func (taintLattice) Bottom() taintSet { return taintSet{} }

func (taintLattice) Clone(f taintSet) taintSet {
	c := make(taintSet, len(f))
	for k, o := range f {
		c[k] = o
	}
	return c
}

func (taintLattice) Join(dst, src taintSet) (taintSet, bool) {
	changed := false
	for k, o := range src {
		if o&^dst[k] != 0 {
			dst[k] |= o
			changed = true
		}
	}
	return dst, changed
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, local localMarks, sums func(*types.Func) (dataflow.TaintSummary, bool)) {
	// Earliest math.IsInf guard position per guarded expression, collected
	// over the whole body (closures included) since the check is positional.
	guards := make(map[string]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !isMathCall(pass, call, "IsInf") {
			return true
		}
		key := types.ExprString(call.Args[0])
		if p, ok := guards[key]; !ok || call.Pos() < p {
			guards[key] = call.Pos()
		}
		return true
	})
	eng := &taintEngine{pass: pass, local: local, guards: guards, sums: sums}
	eng.checkBody(fd.Body, nil)
}

type taintEngine struct {
	pass   *framework.Pass
	local  localMarks
	guards map[string]token.Pos
	// sums resolves a callee to its taint summary (local fixpoint results
	// first, then the imported bank). Nil or a false return means the callee
	// is opaque: no taint unless it is on the MayInfFuncs/mark lists.
	sums func(*types.Func) (dataflow.TaintSummary, bool)
}

func (eng *taintEngine) guarded(e ast.Expr, at token.Pos) bool {
	p, ok := eng.guards[types.ExprString(e)]
	return ok && p < at
}

// checkBody runs the taint fixpoint over one body's CFG, then replays each
// live block once to report unguarded arithmetic under the converged facts.
// Function literals are analyzed recursively, seeded with the taint state
// at their definition point (captured locals keep their facts).
func (eng *taintEngine) checkBody(body *ast.BlockStmt, seed taintSet) {
	cfg := dataflow.New(body)
	lat := taintLattice{}
	in := dataflow.Forward[taintSet](cfg, lat, func(b *dataflow.Block, f taintSet) taintSet {
		if b == cfg.Entry {
			f, _ = lat.Join(f, seed)
		}
		for _, n := range b.Nodes {
			eng.applyNode(f, n)
		}
		return f
	})
	for _, b := range cfg.Blocks {
		if !b.Live {
			continue
		}
		f := lat.Clone(in[b.Index])
		if b == cfg.Entry {
			f, _ = lat.Join(f, seed)
		}
		for _, n := range b.Nodes {
			eng.checkNode(f, n)
			eng.applyNode(f, n)
			for _, fl := range funcLitsShallow(n) {
				eng.checkBody(fl.Body, lat.Clone(f))
			}
		}
	}
}

// checkNode reports the NaN-generating shapes under the current facts.
func (eng *taintEngine) checkNode(f taintSet, n ast.Node) {
	pass := eng.pass
	mayInf := func(e ast.Expr) bool { return eng.exprOrigins(f, e) != 0 }
	dataflow.WalkShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			switch m.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				if mayInf(m.Lhs[0]) && mayInf(m.Rhs[0]) &&
					!eng.guarded(m.Lhs[0], m.Pos()) && !eng.guarded(m.Rhs[0], m.Pos()) {
					report(pass, m.TokPos, m.Tok, m.Lhs[0], m.Rhs[0])
				}
			case token.MUL_ASSIGN:
				checkMul(pass, m.TokPos, m.Lhs[0], m.Rhs[0], mayInf, eng.guarded)
			}
		case *ast.BinaryExpr:
			if !isFloatExpr(pass, m.X) && !isFloatExpr(pass, m.Y) {
				return true
			}
			switch m.Op {
			case token.ADD, token.SUB:
				if mayInf(m.X) && mayInf(m.Y) &&
					!eng.guarded(m.X, m.Pos()) && !eng.guarded(m.Y, m.Pos()) {
					report(pass, m.OpPos, m.Op, m.X, m.Y)
				}
			case token.MUL:
				checkMul(pass, m.OpPos, m.X, m.Y, mayInf, eng.guarded)
			}
		}
		return true
	})
}

// applyNode is the taint transfer function for one node.
func (eng *taintEngine) applyNode(f taintSet, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		eng.applyAssign(f, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						eng.assignOne(f, name, vs.Values[i])
					}
				}
			}
		}
	}
}

func (eng *taintEngine) applyAssign(f taintSet, n *ast.AssignStmt) {
	switch n.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				eng.assignOne(f, lhs, n.Rhs[i])
			}
			return
		}
		// Multi-value assignment from a single call: each destination gets
		// the matching result's origins (intrinsic for marked producers,
		// per-result flows for summarized callees).
		if len(n.Rhs) == 1 {
			call, isCall := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			for i, lhs := range n.Lhs {
				obj, path, ok := eng.selPath(lhs)
				if !ok {
					continue
				}
				var mask origins
				if isCall {
					mask = eng.callResultOrigins(f, call, i)
				}
				if mask != 0 && isFloatObj(obj) {
					f[taintKey{obj, path}] = mask
				} else {
					eng.kill(f, obj, path)
				}
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		// x op= y keeps/acquires taint when either side may carry Inf.
		if mask := eng.exprOrigins(f, n.Rhs[0]); mask != 0 {
			if obj, path, ok := eng.selPath(n.Lhs[0]); ok {
				f[taintKey{obj, path}] |= mask
			}
		}
	}
}

// assignOne transfers taint for one lhs = rhs pair, with strong updates:
// assigning a provably non-Inf value clears the destination's facts.
func (eng *taintEngine) assignOne(f taintSet, lhs, rhs ast.Expr) {
	obj, path, ok := eng.selPath(lhs)
	if !ok {
		return
	}

	// Whole-struct copy: `b := a` carries a's per-field facts over to b.
	if rhsObj, rhsPath, ok := eng.selPath(rhs); ok && isStructExpr(eng.pass, rhs) {
		eng.kill(f, obj, path)
		type carried struct {
			k taintKey
			o origins
		}
		var adds []carried
		for k, o := range f {
			if k.obj != rhsObj {
				continue
			}
			if rest, match := pathSuffix(k.path, rhsPath); match {
				adds = append(adds, carried{taintKey{obj, path + rest}, o})
			}
		}
		for _, a := range adds {
			f[a.k] |= a.o
		}
		return
	}

	// Composite literal: `a := acc{hi: e.Hi}` taints a.hi.
	if cl, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
		eng.kill(f, obj, path)
		eng.applyComposite(f, obj, path, cl)
		return
	}

	if mask := eng.exprOrigins(f, rhs); mask != 0 {
		f[taintKey{obj, path}] = mask
	} else {
		eng.kill(f, obj, path)
	}
}

// applyComposite taints fields of the destination per the literal's
// elements, recursing into nested struct literals.
func (eng *taintEngine) applyComposite(f taintSet, obj types.Object, base string, cl *ast.CompositeLit) {
	st, ok := structTypeOf(eng.pass, cl)
	for i, el := range cl.Elts {
		var fieldName string
		value := el
		if kv, isKV := el.(*ast.KeyValueExpr); isKV {
			if id, isId := kv.Key.(*ast.Ident); isId {
				fieldName = id.Name
			}
			value = kv.Value
		} else if ok && i < st.NumFields() {
			fieldName = st.Field(i).Name()
		}
		if fieldName == "" {
			continue
		}
		if nested, isCL := ast.Unparen(value).(*ast.CompositeLit); isCL {
			eng.applyComposite(f, obj, base+"."+fieldName, nested)
			continue
		}
		if mask := eng.exprOrigins(f, value); mask != 0 {
			f[taintKey{obj, base + "." + fieldName}] = mask
		}
	}
}

// kill removes the destination's fact and, for a whole-value write, every
// field fact underneath it.
func (eng *taintEngine) kill(f taintSet, obj types.Object, path string) {
	delete(f, taintKey{obj, path})
	for k := range f {
		if k.obj == obj && strings.HasPrefix(k.path, path+".") {
			delete(f, k)
		}
	}
}

// selPath resolves an assignable expression to (root local object, field
// path): `a` → (a, ""), `a.hi` → (a, ".hi"), `a.b.lo` → (a, ".b.lo").
// Anything else (index stores, pointers through calls) is not tracked.
func (eng *taintEngine) selPath(e ast.Expr) (types.Object, string, bool) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "_" {
		return nil, "", false
	}
	return rootSelPath(eng.pass, e)
}

// pathSuffix reports whether child extends parent ("" matches everything)
// and returns the remainder: pathSuffix(".b.lo", ".b") = (".lo", true).
func pathSuffix(child, parent string) (string, bool) {
	if parent == "" {
		return child, true
	}
	if child == parent {
		return "", true
	}
	if strings.HasPrefix(child, parent+".") {
		return child[len(parent):], true
	}
	return "", false
}

func isStructExpr(pass *framework.Pass, e ast.Expr) bool {
	_, ok := structTypeOf(pass, e)
	return ok
}

func structTypeOf(pass *framework.Pass, e ast.Expr) (*types.Struct, bool) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return nil, false
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// funcLitsShallow returns the function literals directly under a node
// (not nested inside other literals) so each gets exactly one recursive
// analysis.
func funcLitsShallow(n ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	if a, ok := n.(*dataflow.Assume); ok {
		n = a.Cond
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok {
			out = append(out, fl)
			return false
		}
		return true
	})
	return out
}

func checkMul(pass *framework.Pass, pos token.Pos, x, y ast.Expr,
	mayInf func(ast.Expr) bool, guarded func(ast.Expr, token.Pos) bool) {
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		inf, other := pair[0], pair[1]
		if mayInf(inf) && !guarded(inf, pos) && !nonZeroConst(pass, other) {
			pass.Reportf(pos,
				"%s may be ±Inf: 0·Inf here yields NaN; check math.IsInf(%s, 0) first (or //dualvet:allow infguard with the range argument)",
				types.ExprString(inf), types.ExprString(inf))
			return
		}
	}
}

func report(pass *framework.Pass, pos token.Pos, op token.Token, x, y ast.Expr) {
	pass.Reportf(pos,
		"both %s and %s may be ±Inf: %s here can yield NaN (Inf%sInf); check math.IsInf first (or //dualvet:allow infguard with the range argument)",
		types.ExprString(x), types.ExprString(y), op, op)
}

// exprOrigins returns the taint mask of e under the current facts: which
// parameter bits (summary mode) and/or the intrinsic bit its possible ±Inf
// derives from. Zero means Inf-free as far as the analysis can see.
func (eng *taintEngine) exprOrigins(f taintSet, e ast.Expr) origins {
	pass := eng.pass
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return 0
		}
		return f[taintKey{obj, ""}]
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return eng.exprOrigins(f, e.X)
		}
	case *ast.IndexExpr:
		return eng.exprOrigins(f, e.X)
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[e.Sel]
		if obj == nil {
			return 0
		}
		if eng.local[obj] {
			return intrinsicOrigin
		}
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			if MayInfFields[fieldKey(pass, e, v)] {
				return intrinsicOrigin
			}
			// Field-sensitive local fact: a.hi after `a.hi = e.Hi` or
			// `a := acc{hi: e.Hi}`.
			if root, path, ok := rootSelPath(pass, e); ok {
				return f[taintKey{root, path}] | f[taintKey{root, ""}]
			}
		}
	case *ast.CallExpr:
		return eng.callResultOrigins(f, e, 0)
	}
	return 0
}

// callResultOrigins returns the taint mask of result res of call: intrinsic
// for the marked producers, otherwise the callee summary's per-result flow
// with parameter bits resolved through the argument expressions.
func (eng *taintEngine) callResultOrigins(f taintSet, call *ast.CallExpr, res int) origins {
	fn := calleeFunc(eng.pass, call)
	if fn == nil {
		return 0
	}
	if MayInfFuncs[fn.FullName()] || eng.local[fn] {
		return intrinsicOrigin
	}
	if eng.sums == nil {
		return 0
	}
	s, ok := eng.sums(fn)
	if !ok || res < 0 || res >= len(s.Results) {
		return 0
	}
	flow := s.Results[res]
	var mask origins
	if flow.Intrinsic {
		mask = intrinsicOrigin
	}
	if len(flow.Params) == 0 {
		return mask
	}
	args, aligned := dataflow.FlatArgs(eng.pass.TypesInfo, call, fn)
	if !aligned {
		return mask
	}
	for _, pi := range flow.Params {
		if pi >= 0 && pi < len(args) {
			mask |= eng.exprOrigins(f, args[pi])
		}
	}
	return mask
}

// rootSelPath is selPath without the engine receiver, for use sites.
func rootSelPath(pass *framework.Pass, e ast.Expr) (types.Object, string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return nil, "", false
		}
		return obj, "", true
	case *ast.SelectorExpr:
		obj, path, ok := rootSelPath(pass, e.X)
		if !ok {
			return nil, "", false
		}
		return obj, path + "." + e.Sel.Name, true
	case *ast.StarExpr:
		return rootSelPath(pass, e.X)
	}
	return nil, "", false
}

// fieldKey renders a field access as "pkgpath.Type.Field".
func fieldKey(pass *framework.Pass, sel *ast.SelectorExpr, v *types.Var) string {
	recv := pass.TypesInfo.Selections[sel]
	if recv == nil {
		return ""
	}
	t := recv.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name()
}

func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func isMathCall(pass *framework.Pass, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == name
}

func isFloatObj(obj types.Object) bool {
	if obj == nil || obj.Type() == nil {
		return false
	}
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isFloatExpr(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// nonZeroConst reports whether e is a compile-time constant other than zero
// (multiplying ±Inf by it cannot produce NaN).
func nonZeroConst(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	return !constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}

// computeTaintSummaries computes one Inf-taint summary per declared function,
// bottom-up over the call graph's SCCs. Within an SCC the members start from
// the optimistic bottom (no flows) and iterate: result masks only ever grow
// (callee flows only grow, and each re-summarization recomputes from larger
// inputs), so the sweep converges; an SCC that exceeds its iteration budget
// degrades to "no known flows" — the same reading an unknown callee gets.
func computeTaintSummaries(pass *framework.Pass, cg *dataflow.CallGraph, local localMarks, imported map[string]dataflow.TaintSummary) map[*types.Func]dataflow.TaintSummary {
	sums := make(map[*types.Func]dataflow.TaintSummary, len(cg.Order))
	lookup := func(fn *types.Func) (dataflow.TaintSummary, bool) {
		if s, ok := sums[fn]; ok {
			return s, true
		}
		s, ok := imported[fn.FullName()]
		return s, ok
	}
	for _, comp := range cg.SCCs {
		recursive := len(comp) > 1 || selfRecursive(cg, comp[0])
		for _, fn := range comp {
			sums[fn] = dataflow.TaintSummary{}
		}
		bound := dataflow.SCCIterBound(len(comp))
		iters := 0
		for {
			iters++
			changed := false
			for _, fn := range comp {
				ns := summarizeTaint(pass, cg.Funcs[fn], local, lookup)
				if !ns.SameShape(sums[fn]) {
					changed = true
				}
				sums[fn] = ns
			}
			if !changed || !recursive {
				break
			}
			if iters >= bound {
				// Non-convergence would mean a monotonicity bug; degrade to
				// "no known flows" rather than loop.
				for _, fn := range comp {
					delete(sums, fn)
				}
				break
			}
		}
	}
	return sums
}

func selfRecursive(cg *dataflow.CallGraph, fn *types.Func) bool {
	for _, c := range cg.Funcs[fn].Callees {
		if c == fn {
			return true
		}
	}
	return false
}

// summarizeTaint runs the taint engine over one function with each named
// flattened parameter seeded with its own origin bit, and reads per-result
// flows off the converged facts at the return statements. Guards are ignored
// here: a math.IsInf check inside a helper does not scrub the value for its
// caller's arithmetic (the helper may still return the Inf it detected).
func summarizeTaint(pass *framework.Pass, fi *dataflow.FuncInfo, local localMarks, lookup func(*types.Func) (dataflow.TaintSummary, bool)) dataflow.TaintSummary {
	sig, ok := fi.Fn.Type().(*types.Signature)
	if !ok {
		return dataflow.TaintSummary{}
	}
	nres := sig.Results().Len()
	if nres == 0 {
		return dataflow.TaintSummary{}
	}
	seed := make(taintSet)
	for i, p := range dataflow.FlatParams(fi.Fn) {
		if i >= 63 {
			break // bits 0..62 only; a 64-parameter function loses precision, not soundness
		}
		if p.Name() == "" || p.Name() == "_" {
			continue
		}
		seed[taintKey{p, ""}] = 1 << i
	}
	eng := &taintEngine{pass: pass, local: local, sums: lookup}
	masks := make([]origins, nres)
	eng.collectReturns(fi.Decl.Body, seed, masks)

	var out dataflow.TaintSummary
	for res, m := range masks {
		if m == 0 {
			continue
		}
		if out.Results == nil {
			out.Results = make([]dataflow.TaintFlow, nres)
		}
		flow := dataflow.TaintFlow{Intrinsic: m&intrinsicOrigin != 0}
		for bit := 0; bit < 63; bit++ {
			if m&(1<<bit) != 0 {
				flow.Params = append(flow.Params, bit)
			}
		}
		out.Results[res] = flow
	}
	return out
}

// collectReturns runs the taint fixpoint over the body and ORs each return
// statement's per-result origins into masks. Closure bodies are not entered —
// their returns are not this function's returns — and bare returns (named
// results) contribute nothing, which only under-taints.
func (eng *taintEngine) collectReturns(body *ast.BlockStmt, seed taintSet, masks []origins) {
	cfg := dataflow.New(body)
	lat := taintLattice{}
	in := dataflow.Forward[taintSet](cfg, lat, func(b *dataflow.Block, f taintSet) taintSet {
		if b == cfg.Entry {
			f, _ = lat.Join(f, seed)
		}
		for _, n := range b.Nodes {
			eng.applyNode(f, n)
		}
		return f
	})
	for _, b := range cfg.Blocks {
		if !b.Live {
			continue
		}
		f := lat.Clone(in[b.Index])
		if b == cfg.Entry {
			f, _ = lat.Join(f, seed)
		}
		for _, n := range b.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				switch {
				case len(ret.Results) == len(masks):
					for i, r := range ret.Results {
						masks[i] |= eng.exprOrigins(f, r)
					}
				case len(ret.Results) == 1:
					// Tuple pass-through: `return helper(...)` spreads the
					// callee's per-result flows across our results.
					if call, isCall := ast.Unparen(ret.Results[0]).(*ast.CallExpr); isCall {
						for i := range masks {
							masks[i] |= eng.callResultOrigins(f, call, i)
						}
					}
				}
			}
			eng.applyNode(f, n)
		}
	}
}
