// Package infguard flags NaN-generating arithmetic on values that can carry
// the ±Inf TOP/BOT sentinels.
//
// The dual representation uses ±Inf as the honest value of TOP^P/BOT^P for
// unbounded polyhedra (the paper's "virtual vertices at infinity"), for the
// handicap-slot identities (MinSlot = +Inf, MaxSlot = −Inf) and for
// unbounded R⁺-tree regions. IEEE 754 keeps comparisons on such values exact
// and total, but two arithmetic shapes silently produce NaN — `Inf - Inf`
// (and `Inf + -Inf`) and `0 * Inf` — after which every comparison is false
// and a selection drops tuples with no error anywhere.
//
// The check is intra-procedural. A value "may carry Inf" when it is:
//   - the result of math.Inf(...);
//   - read from a field, or returned by a function/method, on the built-in
//     sentinel-carrier list below (the envelope/support/handicap surfaces);
//   - read from a local declaration annotated //dualvet:mayinf;
//   - a local variable assigned from any of the above.
//
// Flagged, unless a math.IsInf guard on the same operand expression appears
// earlier in the function:
//   - x + y and x - y where BOTH operands may carry Inf (opposite-sign
//     infinities meet);
//   - x * y where EITHER operand may carry Inf and the other is not a
//     provably non-zero constant (0·Inf).
//
// Escape hatch: //dualvet:allow infguard on the flagged line, for call sites
// where the operand range provably excludes Inf (say so in a comment).
// _test.go files are exempt: computed-vs-expected comparisons there fail no
// assertion a correct ±Inf comparison wouldn't also fail.
package infguard

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"dualcdb/internal/analysis/framework"
)

// Analyzer is the infguard check.
var Analyzer = &framework.Analyzer{
	Name: "infguard",
	Doc:  "flag +,-,* arithmetic on possibly-±Inf sentinel values without a preceding math.IsInf guard",
	Run:  run,
}

// MayInfFuncs lists functions and methods whose result can carry ±Inf, keyed
// by types.Func.FullName. These are the repository's sentinel producers; the
// list is the cross-package complement of the //dualvet:mayinf annotation,
// which only reaches declarations in the package under analysis.
var MayInfFuncs = map[string]bool{
	"math.Inf":                                   true,
	"(dualcdb/internal/geom.Envelope).Eval":      true,
	"(dualcdb/internal/geom.Envelope).MaxOn":     true,
	"(dualcdb/internal/geom.Envelope).MinOn":     true,
	"(dualcdb/internal/geom.Polyhedron).Support": true,
	"(dualcdb/internal/geom.Polyhedron).Top":     true,
	"(dualcdb/internal/geom.Polyhedron).Bot":     true,
	"(dualcdb/internal/geom.Polyhedron).Area2":   true,
	"(dualcdb/internal/rplustree.Rect).Area":     true,
	"dualcdb/internal/core.supX":                 true,
	"dualcdb/internal/core.infX":                 true,
}

// MayInfFields lists struct fields that can hold ±Inf, as
// "pkgpath.Type.Field".
var MayInfFields = map[string]bool{
	"dualcdb/internal/geom.Envelope.DomLo":      true,
	"dualcdb/internal/geom.Envelope.DomHi":      true,
	"dualcdb/internal/btree.LeafView.Handicaps": true,
	"dualcdb/internal/rplustree.Rect.MinX":      true,
	"dualcdb/internal/rplustree.Rect.MinY":      true,
	"dualcdb/internal/rplustree.Rect.MaxX":      true,
	"dualcdb/internal/rplustree.Rect.MaxY":      true,
}

// MayInfDirective marks a local declaration (function or struct field) whose
// value can carry ±Inf.
const MayInfDirective = "//dualvet:mayinf"

func run(pass *framework.Pass) error {
	local := collectLocalMarks(pass)
	for _, f := range pass.Files {
		// Tests compare computed against expected values where, when both
		// sides carry the same infinity, a NaN difference fails no assertion
		// that a correct ±Inf comparison wouldn't also fail.
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, local)
		}
	}
	return nil
}

// localMarks holds objects annotated //dualvet:mayinf in this package.
type localMarks map[types.Object]bool

// collectLocalMarks resolves //dualvet:mayinf comments to the function and
// field objects they annotate (directive on the declaration line or the line
// directly above it).
func collectLocalMarks(pass *framework.Pass) localMarks {
	marks := make(localMarks)
	for _, f := range pass.Files {
		lines := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, MayInfDirective) {
					lines[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(lines) == 0 {
			continue
		}
		// A trailing directive (sharing a line with a declaration) marks only
		// that line; the line-above rule is for standalone directive lines.
		declLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.Field:
				declLines[pass.Fset.Position(n.Pos()).Line] = true
			}
			return true
		})
		marked := func(pos token.Pos) bool {
			ln := pass.Fset.Position(pos).Line
			return lines[ln] || (lines[ln-1] && !declLines[ln-1])
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if marked(n.Pos()) {
					if obj := pass.TypesInfo.Defs[n.Name]; obj != nil {
						marks[obj] = true
					}
				}
			case *ast.Field:
				if marked(n.Pos()) {
					for _, name := range n.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							marks[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return marks
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, local localMarks) {
	// Pass 1: earliest math.IsInf guard position per guarded expression.
	guards := make(map[string]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !isMathCall(pass, call, "IsInf") {
			return true
		}
		key := types.ExprString(call.Args[0])
		if p, ok := guards[key]; !ok || call.Pos() < p {
			guards[key] = call.Pos()
		}
		return true
	})

	guarded := func(e ast.Expr, at token.Pos) bool {
		p, ok := guards[types.ExprString(e)]
		return ok && p < at
	}

	// Pass 2: walk in source order, propagating may-Inf through local
	// assignments and flagging unguarded arithmetic.
	vars := make(map[types.Object]bool) // locals holding a possibly-Inf value
	mayInf := func(e ast.Expr) bool { return exprMayInf(pass, e, local, vars) }

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ASSIGN, token.DEFINE:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						obj := pass.TypesInfo.Defs[id]
						if obj == nil {
							obj = pass.TypesInfo.Uses[id]
						}
						if obj != nil && mayInf(n.Rhs[i]) {
							vars[obj] = true
						}
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				if mayInf(n.Lhs[0]) && mayInf(n.Rhs[0]) &&
					!guarded(n.Lhs[0], n.Pos()) && !guarded(n.Rhs[0], n.Pos()) {
					report(pass, n.TokPos, n.Tok, n.Lhs[0], n.Rhs[0])
				}
			case token.MUL_ASSIGN:
				checkMul(pass, n.TokPos, n.Lhs[0], n.Rhs[0], mayInf, guarded)
			}
		case *ast.BinaryExpr:
			if !isFloatExpr(pass, n.X) && !isFloatExpr(pass, n.Y) {
				return true
			}
			switch n.Op {
			case token.ADD, token.SUB:
				if mayInf(n.X) && mayInf(n.Y) &&
					!guarded(n.X, n.Pos()) && !guarded(n.Y, n.Pos()) {
					report(pass, n.OpPos, n.Op, n.X, n.Y)
				}
			case token.MUL:
				checkMul(pass, n.OpPos, n.X, n.Y, mayInf, guarded)
			}
		}
		return true
	})
}

func checkMul(pass *framework.Pass, pos token.Pos, x, y ast.Expr,
	mayInf func(ast.Expr) bool, guarded func(ast.Expr, token.Pos) bool) {
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		inf, other := pair[0], pair[1]
		if mayInf(inf) && !guarded(inf, pos) && !nonZeroConst(pass, other) {
			pass.Reportf(pos,
				"%s may be ±Inf: 0·Inf here yields NaN; check math.IsInf(%s, 0) first (or //dualvet:allow infguard with the range argument)",
				types.ExprString(inf), types.ExprString(inf))
			return
		}
	}
}

func report(pass *framework.Pass, pos token.Pos, op token.Token, x, y ast.Expr) {
	pass.Reportf(pos,
		"both %s and %s may be ±Inf: %s here can yield NaN (Inf%sInf); check math.IsInf first (or //dualvet:allow infguard with the range argument)",
		types.ExprString(x), types.ExprString(y), op, op)
}

// exprMayInf reports whether e can carry a ±Inf sentinel.
func exprMayInf(pass *framework.Pass, e ast.Expr, local localMarks, vars map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		return obj != nil && vars[obj]
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return exprMayInf(pass, e.X, local, vars)
		}
	case *ast.IndexExpr:
		return exprMayInf(pass, e.X, local, vars)
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[e.Sel]
		if obj == nil {
			return false
		}
		if local[obj] {
			return true
		}
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			return MayInfFields[fieldKey(pass, e, v)]
		}
	case *ast.CallExpr:
		if fn := calleeFunc(pass, e); fn != nil {
			return MayInfFuncs[fn.FullName()] || local[fn]
		}
	}
	return false
}

// fieldKey renders a field access as "pkgpath.Type.Field".
func fieldKey(pass *framework.Pass, sel *ast.SelectorExpr, v *types.Var) string {
	recv := pass.TypesInfo.Selections[sel]
	if recv == nil {
		return ""
	}
	t := recv.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name()
}

func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func isMathCall(pass *framework.Pass, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == name
}

func isFloatExpr(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// nonZeroConst reports whether e is a compile-time constant other than zero
// (multiplying ±Inf by it cannot produce NaN).
func nonZeroConst(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	return !constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}
