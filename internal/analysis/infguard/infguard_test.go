package infguard_test

import (
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/infguard"
)

func TestInfguard(t *testing.T) {
	for _, pkg := range []string{"infguard"} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, "../testdata", infguard.Analyzer, pkg)
		})
	}
}
