package errsink_test

import (
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/errsink"
)

func TestErrsink(t *testing.T) {
	for _, pkg := range []string{"errsink"} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, "../testdata", errsink.Analyzer, pkg)
		})
	}
}
