package errsink_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/errsink"
	"dualcdb/internal/analysis/framework"
)

func TestErrsink(t *testing.T) {
	for _, pkg := range []string{"errsink"} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, "../testdata", errsink.Analyzer, pkg)
		})
	}
}

// TestAllowIsLoadBearing checks the call-site suppression end to end: the
// same dropped-error statement must be flagged without the directive and
// silent with it, so a regression in either the detection or the allow
// plumbing fails loudly.
func TestAllowIsLoadBearing(t *testing.T) {
	const psSrc = `package pagestore

func Sync() error { return nil }
`
	const useTmpl = `package p

import "fake/pagestore"

func drop() {
	pagestore.Sync()%s
}
`
	for _, tc := range []struct {
		name, directive string
		want            int
	}{
		{"bare", "", 1},
		{"allowed", " //dualvet:allow errsink — best-effort", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fset := token.NewFileSet()
			ps, err := parser.ParseFile(fset, "pagestore/ps.go", psSrc, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			psInfo := framework.NewInfo()
			psPkg, err := (&types.Config{}).Check("fake/pagestore", fset, []*ast.File{ps}, psInfo)
			if err != nil {
				t.Fatal(err)
			}
			use, err := parser.ParseFile(fset, "p/use.go", fmt.Sprintf(useTmpl, tc.directive), parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			imp := importerFunc(func(string) (*types.Package, error) { return psPkg, nil })
			info := framework.NewInfo()
			pkg, err := (&types.Config{Importer: imp}).Check("p", fset, []*ast.File{use}, info)
			if err != nil {
				t.Fatal(err)
			}
			diags, _, err := framework.RunPackage(fset, []*ast.File{use}, pkg, info, []*framework.Analyzer{errsink.Analyzer}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) != tc.want {
				t.Fatalf("want %d diagnostics, got %d: %v", tc.want, len(diags), diags)
			}
		})
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
