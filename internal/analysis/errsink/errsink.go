// Package errsink flags call statements that discard an error returned from
// the repository's I/O layers (pagestore, btree, interval, rplustree).
//
// Those packages surface real page faults — pagestore.FaultStore exists so
// tests can inject them — and a dropped error there turns a failed page
// write into silent index corruption. The check is scoped to the I/O
// packages rather than being a general errcheck: the envelope/geometry
// layers return validation errors whose handling is already enforced by
// their callers' signatures.
//
// Reported: expression statements, go statements and defer statements whose
// call returns an error (possibly among other results) and whose callee is
// declared in one of the target packages. Assigning the error to _ is the
// deliberate-discard escape hatch and is not flagged (pair it with a
// justifying comment); //dualvet:allow errsink also works. Test files are
// skipped.
package errsink

import (
	"go/ast"
	"go/types"
	"strings"

	"dualcdb/internal/analysis/framework"
)

// Analyzer is the errsink check.
var Analyzer = &framework.Analyzer{
	Name: "errsink",
	Doc:  "flag dropped error returns from pagestore/btree/interval/rplustree I/O calls",
	Run:  run,
}

// TargetPathSuffixes are the import-path tails of the I/O packages whose
// errors must not be dropped.
var TargetPathSuffixes = []string{"pagestore", "btree", "interval", "rplustree"}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = n.Call
			case *ast.DeferStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			fn := callee(pass, call)
			if fn == nil || !returnsError(fn) || !inTargetPackage(fn) {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s includes an error that is dropped here; page faults must propagate — handle it or assign to _ with a justifying comment",
				fn.FullName())
			return true
		})
	}
	return nil
}

func callee(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

func inTargetPackage(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	for _, suffix := range TargetPathSuffixes {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}
