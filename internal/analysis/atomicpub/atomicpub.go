// Package atomicpub enforces declared field-guard disciplines: a struct
// field annotated `//dualvet:guarded=<mutex>` may only be written while
// that mutex is held in write mode, and typed atomic fields (atomic.Bool,
// atomic.Pointer[T], ...) may only be accessed through their methods —
// never copied or overwritten as plain values.
//
// The guard annotation names a sibling field path relative to the same
// struct value: `guarded=mu` for a plain mutex field, `guarded=Mutex` for
// an embedded one, `guarded=ring.Mutex` for one nested in a sub-struct.
// The check runs the lock-set engine from internal/analysis/dataflow, so
// holds are alias-aware, defer-safe, and flow through call-site summaries:
// a helper that writes a guarded field without taking or declaring the
// guard is not reported at the write — the obligation becomes a "requires"
// entry in its lock summary (the *Locked helper idiom), and every call
// site is checked for the hold instead. Summaries travel through vetx, so
// the contract holds across packages. Writes to a value the function
// freshly allocated are exempt until it escapes to another goroutine
// (constructors initialize without locks).
//
// Escape hatch: //dualvet:allow atomicpub on the flagged line. _test.go
// files are exempt.
package atomicpub

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dualcdb/internal/analysis/dataflow"
	"dualcdb/internal/analysis/framework"
)

// Analyzer is the atomicpub check.
var Analyzer = &framework.Analyzer{
	Name: "atomicpub",
	Doc:  "flag writes to //dualvet:guarded fields without the guard held, and plain access to typed atomic fields",
	Run:  run,
}

// guardDirective is the annotation prefix on struct field declarations.
const guardDirective = "//dualvet:guarded="

func run(pass *framework.Pass) error {
	guards := collectGuards(pass)

	guardOf := func(sel *ast.SelectorExpr) (string, bool) {
		obj := fieldObj(pass.TypesInfo, sel)
		if obj == nil {
			return "", false
		}
		path, ok := guards[obj]
		if !ok {
			return "", false
		}
		// Promoted access through embedded fields: the guard path is
		// relative to the struct declaring the field, so splice in the
		// implicit embedded segments.
		if prefix := dataflow.EmbeddedPrefix(pass.TypesInfo, sel); len(prefix) > 0 {
			path = strings.Join(prefix, ".") + "." + path
		}
		return path, true
	}

	cg := dataflow.BuildCallGraph(pass.Files, pass.TypesInfo)
	imported := pass.Summaries.LocksFor(pass.Analyzer.Name)
	sums, _ := dataflow.ComputeLockSummaries(cg, pass.TypesInfo, dataflow.LockSpec{GuardOf: guardOf}, imported)
	spec := dataflow.LockSpec{
		GuardOf: guardOf,
		Summaries: func(fn *types.Func) (dataflow.LockSummary, bool) {
			if s, ok := sums[fn]; ok {
				return s, true
			}
			s, ok := imported[fn.FullName()]
			return s, ok
		},
	}
	exp := &dataflow.PackageSummaries{}
	exp.AddLocks(pass.Analyzer.Name, sums)
	pass.Export(exp)

	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			al := dataflow.NewAliases(fd.Body, pass.TypesInfo)
			var params []*types.Var
			if fn, okFn := pass.TypesInfo.Defs[fd.Name].(*types.Func); okFn {
				params = dataflow.FlatParams(fn)
			}
			checkBody(pass, fd.Body, al, spec, params, nil)
		}
		checkPlainAtomics(pass, f)
	}
	return nil
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt, al *dataflow.Aliases, spec dataflow.LockSpec, params []*types.Var, entry *dataflow.LockFact) {
	eng := dataflow.NewLockEngine(body, pass.TypesInfo, al, spec, params)
	if entry != nil {
		eng.SetEntry(*entry)
	}
	eng.Run()
	hooks := &dataflow.LockHooks{
		UnguardedWrite: func(n ast.Node, sel *ast.SelectorExpr, guardCanon string, readHeld *dataflow.LockAcq) {
			field := types.ExprString(sel.X) + "." + sel.Sel.Name
			if readHeld != nil {
				pass.Reportf(n.Pos(),
					"write to %s while its guard %s is held only for reading (RLock at line %d); writes need the write lock",
					field, dataflow.DisplayPath(guardCanon), pass.Fset.Position(readHeld.Pos).Line)
				return
			}
			pass.Reportf(n.Pos(),
				"write to %s without holding its guard %s (declared //dualvet:guarded); lock it first or //dualvet:allow atomicpub with a reason",
				field, dataflow.DisplayPath(guardCanon))
		},
		UnmetRequire: func(call *ast.CallExpr, fn *types.Func, eff dataflow.LockEffect, canon string) {
			pass.Reportf(call.Pos(),
				"call to %s requires %s held (it writes fields guarded by it); acquire the lock around this call",
				fn.Name(), dataflow.DisplayPath(canon))
		},
	}
	hooks.FuncLit = func(fl *ast.FuncLit, f *dataflow.LockFact, isGo bool) {
		var childEntry *dataflow.LockFact
		if !isGo {
			childEntry = f
		}
		checkBody(pass, fl.Body, al, spec, nil, childEntry)
	}
	eng.Replay(hooks)
}

// collectGuards parses //dualvet:guarded annotations off struct field
// declarations and validates that the named guard resolves to a sibling
// sync.Mutex/RWMutex (possibly through nested fields).
func collectGuards(pass *framework.Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				path, pos, ok := guardAnnotation(fld)
				if !ok {
					continue
				}
				if len(fld.Names) == 0 {
					pass.Reportf(pos, "//dualvet:guarded on an embedded field has no effect; annotate the named fields instead")
					continue
				}
				if !guardResolves(pass.TypesInfo, st, path) {
					pass.Reportf(pos, "guard %q does not resolve to a sync.Mutex or sync.RWMutex field of this struct; the annotation is ignored", path)
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = path
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the guard path from a field's doc or trailing
// comment.
func guardAnnotation(fld *ast.Field) (string, token.Pos, bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, guardDirective)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				return "", c.Pos(), false
			}
			return fields[0], c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// guardResolves walks the dotted guard path through the struct's fields
// and checks the destination is a sync mutex.
func guardResolves(info *types.Info, st *ast.StructType, path string) bool {
	tv, ok := info.Types[st]
	if !ok {
		return false
	}
	t := tv.Type
	for _, seg := range strings.Split(path, ".") {
		s, okS := t.Underlying().(*types.Struct)
		if !okS {
			return false
		}
		var next types.Type
		for i := 0; i < s.NumFields(); i++ {
			if s.Field(i).Name() == seg {
				next = s.Field(i).Type()
				break
			}
		}
		if next == nil {
			return false
		}
		t = next
	}
	if p, okP := t.(*types.Pointer); okP {
		t = p.Elem()
	}
	named, okN := t.(*types.Named)
	if !okN || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// fieldObj resolves a selector to the field variable it selects, through
// the Selections map (promoted fields included).
func fieldObj(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// checkPlainAtomics flags typed atomic values copied or overwritten as
// plain values: `x.cnt = y` or `v := x.cnt` bypasses (and silently breaks)
// the atomic protocol — every access must go through the cell's methods.
func checkPlainAtomics(pass *framework.Pass, f *ast.File) {
	if framework.IsTestFile(pass.Fset, f) {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			if sel, okSel := ast.Unparen(lhs).(*ast.SelectorExpr); okSel && atomicCellType(pass.TypesInfo, sel) {
				pass.Reportf(lhs.Pos(),
					"atomic field %s overwritten as a plain value; use its Store method (plain writes race with atomic readers)",
					types.ExprString(sel))
			}
		}
		for _, rhs := range asg.Rhs {
			if sel, okSel := ast.Unparen(rhs).(*ast.SelectorExpr); okSel && atomicCellType(pass.TypesInfo, sel) {
				pass.Reportf(rhs.Pos(),
					"atomic field %s copied as a plain value; use its Load method (the copy divorces readers from writers)",
					types.ExprString(sel))
			}
		}
		return true
	})
}

// atomicCellType reports whether sel's type is a named sync/atomic cell.
func atomicCellType(info *types.Info, sel *ast.SelectorExpr) bool {
	tv, ok := info.Types[sel]
	if !ok || tv.Type == nil {
		return false
	}
	named, okN := tv.Type.(*types.Named)
	if !okN {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
