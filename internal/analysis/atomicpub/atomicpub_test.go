package atomicpub_test

import (
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/atomicpub"
)

func TestAtomicpub(t *testing.T) {
	analysistest.Run(t, "../testdata", atomicpub.Analyzer, "atomicpub")
}
