package unitdriver

import (
	"path/filepath"
	"testing"

	"dualcdb/internal/analysis/framework"
)

// TestAnalyzerVersionBumpForcesColdRun pins the cache-invalidation contract
// for analyzer semantics changes: the unit fingerprint hashes versioned
// analyzer identities ("name@vN"), so bumping an Analyzer.Version changes
// the fingerprint and a warm record replayed under the old semantics can
// no longer be found — the unit re-analyzes cold.
func TestAnalyzerVersionBumpForcesColdRun(t *testing.T) {
	tmp := t.TempDir()
	src := filepath.Join(tmp, "a.go")
	writeFile(t, src, "package a\n")
	cfg := &Config{ImportPath: "tmp/a", GoVersion: "go1.22", Compiler: "gc", GoFiles: []string{src}}

	fpV1 := fingerprint(cfg, []string{"lockset@v1"})
	fpV2 := fingerprint(cfg, []string{"lockset@v2"})
	if fpV1 == "" || fpV2 == "" {
		t.Fatal("fingerprint inputs unreadable")
	}
	if fpV1 == fpV2 {
		t.Fatal("bumping the analyzer version did not change the unit fingerprint")
	}

	t.Setenv("DUALVET_CACHE", filepath.Join(tmp, "cache"))
	cacheStore(vetxRecord{Version: vetxVersion, Fingerprint: fpV1, ImportPath: cfg.ImportPath})
	if _, ok := cacheLookup(fpV1); !ok {
		t.Fatal("the v1 record should replay warm under the v1 fingerprint")
	}
	if _, ok := cacheLookup(fpV2); ok {
		t.Fatal("the v2 fingerprint must miss the v1 record: a version bump has to force a cold run")
	}
}

// TestCacheVersionDefaults: analyzers without an explicit Version are v1,
// so pre-existing fingerprints stay stable.
func TestCacheVersionDefaults(t *testing.T) {
	a := &framework.Analyzer{Name: "x"}
	if got := a.CacheVersion(); got != 1 {
		t.Fatalf("zero Version should read as cache version 1, got %d", got)
	}
	a.Version = 3
	if got := a.CacheVersion(); got != 3 {
		t.Fatalf("CacheVersion = %d, want 3", got)
	}
}
