package unitdriver

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Machine-readable diagnostics. Unit processes run under go vet in
// parallel and print to stderr interleaved with go vet's own package
// headers, so structured output cannot be scraped from there. Instead the
// standalone driver sets $DUALVET_JSON to a shared spool file before
// re-executing go vet; every unit appends its diagnostics as NDJSON (one
// O_APPEND write per unit, so concurrent units never tear), and the parent
// renders the spool after go vet exits — as a JSON array (-json) or as
// GitHub Actions workflow commands (-annotations) that surface inline on
// pull requests.

// jsonEnv names the diagnostic spool file handed to unit processes.
const jsonEnv = "DUALVET_JSON"

// emitJSONDiags appends this unit's diagnostics to the spool, one JSON
// object per line. A single write keeps concurrent units atomic (POSIX
// O_APPEND); failures are silent — the stderr channel already carried the
// diagnostics.
func emitJSONDiags(diags []diagRecord) {
	path := os.Getenv(jsonEnv)
	if path == "" || len(diags) == 0 {
		return
	}
	var buf strings.Builder
	for _, d := range diags {
		line, err := json.Marshal(d)
		if err != nil {
			return
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o666)
	if err != nil {
		return
	}
	_, _ = f.WriteString(buf.String())
	f.Close()
}

// reexecGoVetMachine runs the standalone go vet re-exec with a diagnostic
// spool attached, then renders the collected diagnostics.
func reexecGoVetMachine(args []string, jsonOut, annotations bool) int {
	tmp, err := os.CreateTemp("", "dualvet-diags-*.ndjson")
	if err != nil {
		log.Fatal(err)
	}
	spool := tmp.Name()
	tmp.Close()
	defer os.Remove(spool)
	os.Setenv(jsonEnv, spool)

	code := reexecGoVet(args)

	diags, err := readSpool(spool)
	if err != nil {
		log.Print(err)
		return code
	}
	if jsonOut {
		data, err := json.MarshalIndent(diags, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	}
	if annotations {
		for _, d := range diags {
			file, line, col := splitPosition(d.Position)
			fmt.Printf("::error file=%s,line=%d,col=%d,title=dualvet %s::%s\n",
				file, line, col, d.Analyzer, d.Message)
		}
	}
	return code
}

// readSpool parses the NDJSON spool into position-sorted diagnostics.
// Returns an empty (non-nil) slice when the spool is empty so -json prints
// [] rather than null.
func readSpool(path string) ([]diagRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cannot read diagnostic spool: %v", err)
	}
	diags := []diagRecord{}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var d diagRecord
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return nil, fmt.Errorf("malformed diagnostic spool line: %v", err)
		}
		diags = append(diags, d)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Position != diags[j].Position {
			return diags[i].Position < diags[j].Position
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// splitPosition decomposes a "file:line:col" (or "file:line") position
// string; line/col default to 1 when absent or unparsable.
func splitPosition(pos string) (file string, line, col int) {
	file, line, col = pos, 1, 1
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			col = n
			file = file[:i]
		}
	}
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			line = n
			file = file[:i]
		}
	}
	if line == 1 && col > 1 {
		// "file:line" form: the single number was the line.
		line, col = col, 1
	}
	return file, line, col
}
