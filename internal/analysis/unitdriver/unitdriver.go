// Package unitdriver implements the command-line protocol that `go vet
// -vettool=...` requires of an analysis tool, against the standard library
// only (a stdlib-only stand-in for golang.org/x/tools/go/analysis/unitchecker):
//
//	-V=full        describe the executable for build caching
//	-flags         describe supported flags in JSON
//	foo.cfg        analyze the single compilation unit described by the
//	               JSON config file the go command wrote
//
// The go command type-checks every dependency and hands this driver the
// export-data files; the driver parses the unit's sources, type-checks them
// through go/importer with a lookup into those files, runs the analyzers and
// prints diagnostics to stderr (exit status 1 when there are any).
//
// The fact file (.vetx) this driver writes records a fingerprint of the
// unit's inputs, the diagnostics the analyzers produced, and the unit's
// function-summary bank (obligation/borrow/taint transfer per function —
// see cache.go). Dependency vetx files arrive back through
// Config.PackageVetx: their summaries feed the interprocedural analyzers,
// and their byte hashes feed the fingerprint, so a changed callee summary
// re-analyzes exactly the dependent units. The same record is mirrored in
// an external cache ($DUALVET_CACHE) so a repeat run over an unchanged
// package replays the recorded diagnostics instead of re-type-checking and
// re-analyzing, even when GOCACHE was discarded.
//
// Invoked with package patterns instead of a .cfg file, the driver re-executes
// itself through `go vet -vettool=<self>`, which provides the standalone
// `dualvet ./...` interface without a package loader.
package unitdriver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"

	"dualcdb/internal/analysis/framework"
)

// Config mirrors the JSON compilation-unit description the go command
// writes for vet tools (cmd/go/internal/work.vetConfig).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a dualvet-style vet tool.
func Main(analyzers ...*framework.Analyzer) {
	progname := "dualvet"
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	// Standalone output-mode flags are peeled before the go vet protocol
	// check: they only make sense on the human-facing invocation and must
	// not reach go vet as package patterns.
	jsonOut, annotations := false, false
	rest := make([]string, 0, len(os.Args)-1)
	for _, a := range os.Args[1:] {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-annotations", "--annotations":
			annotations = true
		default:
			rest = append(rest, a)
		}
	}
	if standalone(rest) && len(rest) > 0 {
		if jsonOut || annotations {
			os.Exit(reexecGoVetMachine(rest, jsonOut, annotations))
		}
		os.Exit(reexecGoVet(rest))
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Var(versionFlag{}, "V", "print version and exit")
	printflags := fs.Bool("flags", false, "print analyzer flags in JSON")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	if err := fs.Parse(rest); err != nil {
		log.Fatal(err)
	}
	if *printflags {
		printFlags(fs)
		os.Exit(0)
	}
	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, `%[1]s enforces the dualcdb float/Inf/concurrency invariants.

Usage:
	%[1]s [packages]               # runs go vet -vettool=%[1]s [packages]
	%[1]s -json [packages]         # same, plus a JSON diagnostic array on stdout
	%[1]s -annotations [packages]  # same, plus GitHub Actions ::error lines
	%[1]s unit.cfg                 # invoked by go vet on one compilation unit
`, progname)
		os.Exit(2)
	}

	// If any per-analyzer enable flag was passed, run just those.
	selected := analyzers
	if anySet(enabled) {
		selected = nil
		for _, a := range analyzers {
			if *enabled[a.Name] {
				selected = append(selected, a)
			}
		}
	}
	os.Exit(runUnit(args[0], selected))
}

// standalone reports whether the invocation is the human-facing form
// (package patterns) rather than the go vet protocol.
func standalone(args []string) bool {
	if len(args) == 0 {
		return false
	}
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-V") ||
			a == "-flags" || a == "--flags" {
			return false
		}
	}
	return true
}

func reexecGoVet(args []string) int {
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Fatal(err)
	}
	return 0
}

func anySet(m map[string]*bool) bool {
	for _, v := range m {
		if *v {
			return true
		}
	}
	return false
}

func runUnit(cfgFile string, analyzers []*framework.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(analyzers))
	ids := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
		ids[i] = fmt.Sprintf("%s@v%d", a.Name, a.CacheVersion())
	}
	fp := fingerprint(cfg, ids)
	rec := vetxRecord{Version: vetxVersion, Fingerprint: fp, ImportPath: cfg.ImportPath}

	if cfg.VetxOnly {
		// Dependency unit: the go command only wants the fact file. The
		// fingerprint alone is the fact — it hashes this package's sources,
		// so dependents' fingerprints change when this package does.
		if err := writeVetx(cfg, rec); err != nil {
			log.Fatal(err)
		}
		trace("vetxonly", cfg.ImportPath)
		return 0
	}

	if cached, ok := cacheLookup(fp); ok {
		// Warm: replay the recorded diagnostics, skipping parse,
		// type-check and analysis entirely.
		if err := writeVetx(cfg, cached); err != nil {
			log.Fatal(err)
		}
		trace("warm", cfg.ImportPath)
		for _, d := range cached.Diagnostics {
			fmt.Fprintf(os.Stderr, "%s: %s [dualvet:%s]\n", d.Position, d.Message, d.Analyzer)
		}
		emitJSONDiags(cached.Diagnostics)
		if len(cached.Diagnostics) > 0 {
			return 1
		}
		return 0
	}

	// Cold: write a provisional fact file so it exists even if a parse or
	// type-check failure aborts the process, then analyze for real.
	if err := writeVetx(cfg, rec); err != nil {
		log.Fatal(err)
	}
	trace("cold", cfg.ImportPath)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}
	tc := &types.Config{
		Importer:  makeImporter(cfg, fset),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := framework.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatal(err)
	}

	diags, exported, err := framework.RunPackage(fset, files, pkg, info, analyzers, depSummaries(cfg))
	if err != nil {
		log.Fatal(err)
	}
	rec.Analyzers = names
	rec.Summaries = exported
	for _, d := range diags {
		rec.Diagnostics = append(rec.Diagnostics, diagRecord{
			Position: fset.Position(d.Pos).String(),
			Message:  d.Message,
			Analyzer: d.Analyzer,
		})
	}
	if err := writeVetx(cfg, rec); err != nil {
		log.Fatal(err)
	}
	cacheStore(rec)
	for _, d := range rec.Diagnostics {
		fmt.Fprintf(os.Stderr, "%s: %s [dualvet:%s]\n", d.Position, d.Message, d.Analyzer)
	}
	emitJSONDiags(rec.Diagnostics)
	if len(rec.Diagnostics) > 0 {
		return 1
	}
	return 0
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// makeImporter resolves imports through the export-data files the go
// command listed in the config, exactly as go vet's own driver does.
func makeImporter(cfg *Config, fset *token.FileSet) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// versionFlag implements the -V=full protocol the go command uses to give
// the tool a build-cache identity: one line of the form
// "<path> version devel ... buildID=<content hash>".
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

func printFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}
