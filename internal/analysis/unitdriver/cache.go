package unitdriver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"dualcdb/internal/analysis/dataflow"
)

// The vetx file this driver writes is no longer empty: it records the
// unit's analysis result — the fingerprint of everything that went into
// it, the analyzer selection and the diagnostics — as JSON. The go
// command treats the file as opaque fact data and feeds dependency vetx
// files back through Config.PackageVetx, which makes the fingerprint
// transitive: a dependency's record embeds hashes of its sources, so
// hashing dep vetx files captures the whole compile closure without
// touching export data.
//
// The same record is mirrored in an external cache directory
// ($DUALVET_CACHE, default <user cache>/dualvet) keyed by fingerprint.
// That is what survives a thrown-away GOCACHE: when the go command
// re-invokes the driver on an unchanged unit, the fingerprint matches, the
// recorded diagnostics replay verbatim and the parse/type-check/analysis
// pipeline is skipped entirely. Diagnostics make go vet exit nonzero, so
// failing units are re-invoked on every run — replay keeps them cheap.
//
// $DUALVET_TRACE, when set to a file path, appends one line per unit —
// "cold", "warm" or "vetxonly" plus the import path — so tests (and
// curious humans) can observe the cache behaviour.

// Version 2 added the function-summary bank: the interprocedural analyzers
// export per-function obligation/borrow/taint summaries, which ride in the
// vetx record so dependent units can consume them. Because the fingerprint
// hashes dependency vetx files byte-for-byte, a changed callee summary
// changes the dependent's fingerprint — cross-package invalidation is sound
// without a separate summary-hash scheme. Old version-1 cache entries
// simply miss and re-analyze once.
//
// Version 3 added the concurrency banks (lock and publication summaries)
// and versioned analyzer identities in the fingerprint: each analyzer
// contributes "name@vN", so bumping an analyzer's Version invalidates warm
// records that replayed its old semantics.
const vetxVersion = 3

// diagRecord is one recorded diagnostic, position pre-formatted.
type diagRecord struct {
	Position string `json:"position"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

// vetxRecord is the JSON body of a vetx file and of a cache entry.
// Summaries holds only "interesting" entries (anything a caller could not
// assume from the unknown-callee top summary); Go's JSON encoder sorts map
// keys, so the record stays byte-deterministic for the warm-replay gate.
type vetxRecord struct {
	Version     int                        `json:"version"`
	Fingerprint string                     `json:"fingerprint"`
	ImportPath  string                     `json:"import_path"`
	Analyzers   []string                   `json:"analyzers,omitempty"`
	Diagnostics []diagRecord               `json:"diagnostics,omitempty"`
	Summaries   *dataflow.PackageSummaries `json:"summaries,omitempty"`
}

// depSummaries decodes and merges the summary banks of every dependency
// vetx record the go command handed us. Unreadable or version-skewed
// records contribute nothing — their functions degrade to unknown callees,
// which is sound (TopEffect).
func depSummaries(cfg *Config) *dataflow.PackageSummaries {
	if len(cfg.PackageVetx) == 0 {
		return nil
	}
	deps := make([]string, 0, len(cfg.PackageVetx))
	for dep := range cfg.PackageVetx {
		deps = append(deps, dep)
	}
	sort.Strings(deps)
	merged := &dataflow.PackageSummaries{}
	for _, dep := range deps {
		data, err := os.ReadFile(cfg.PackageVetx[dep])
		if err != nil {
			continue
		}
		var rec vetxRecord
		if json.Unmarshal(data, &rec) != nil || rec.Version != vetxVersion {
			continue
		}
		merged.Merge(rec.Summaries)
	}
	if merged.Empty() {
		return nil
	}
	return merged
}

// fingerprint hashes everything that can change this unit's diagnostics:
// the driver binary, the analyzer selection (as versioned "name@vN"
// identities, so a semantics bump invalidates warm records), the unit
// identity, every source file's contents, and every dependency's vetx
// record (itself a fingerprint over that dependency's sources,
// transitively). Returns "" when any input cannot be read — the caller
// then skips caching.
func fingerprint(cfg *Config, analyzerIDs []string) string {
	h := sha256.New()
	self, err := selfHash()
	if err != nil {
		return ""
	}
	fmt.Fprintf(h, "driver %s\n", self)
	fmt.Fprintf(h, "unit %s %s %s\n", cfg.ImportPath, cfg.GoVersion, cfg.Compiler)
	for _, id := range analyzerIDs {
		fmt.Fprintf(h, "analyzer %s\n", id)
	}
	for _, file := range cfg.GoFiles {
		sum, err := fileHash(file)
		if err != nil {
			return ""
		}
		fmt.Fprintf(h, "gofile %s %s\n", filepath.Base(file), sum)
	}
	deps := make([]string, 0, len(cfg.PackageVetx))
	for dep := range cfg.PackageVetx {
		deps = append(deps, dep)
	}
	sort.Strings(deps)
	for _, dep := range deps {
		sum, err := fileHash(cfg.PackageVetx[dep])
		if err != nil {
			return ""
		}
		fmt.Fprintf(h, "depvetx %s %s\n", dep, sum)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func fileHash(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// selfHash hashes the driver executable, the same identity -V=full
// reports to the go command's build cache.
func selfHash() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	return fileHash(exe)
}

// cacheDir resolves the external cache directory; "" disables it.
func cacheDir() string {
	if dir := os.Getenv("DUALVET_CACHE"); dir != "" {
		if dir == "off" {
			return ""
		}
		return dir
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "dualvet")
}

// cacheLookup returns the recorded result for fp, if any.
func cacheLookup(fp string) (vetxRecord, bool) {
	dir := cacheDir()
	if dir == "" || fp == "" {
		return vetxRecord{}, false
	}
	data, err := os.ReadFile(filepath.Join(dir, fp+".json"))
	if err != nil {
		return vetxRecord{}, false
	}
	var rec vetxRecord
	if err := json.Unmarshal(data, &rec); err != nil || rec.Version != vetxVersion || rec.Fingerprint != fp {
		return vetxRecord{}, false
	}
	return rec, true
}

// cacheStore writes rec under its fingerprint via a temp file + rename,
// so concurrent unit processes never observe a torn entry. Failures are
// silent: the cache is an accelerator, never a correctness dependency.
func cacheStore(rec vetxRecord) {
	dir := cacheDir()
	if dir == "" || rec.Fingerprint == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, filepath.Join(dir, rec.Fingerprint+".json")); err != nil {
		os.Remove(name)
	}
}

// writeVetx persists rec as the unit's fact file for the go build cache.
func writeVetx(cfg *Config, rec vetxRecord) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}

// trace appends one "<event> <importpath>" line to $DUALVET_TRACE.
func trace(event, importPath string) {
	path := os.Getenv("DUALVET_TRACE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o666)
	if err != nil {
		return
	}
	fmt.Fprintf(f, "%s %s\n", event, importPath)
	f.Close()
}
