package unitdriver

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestWarmSecondRun proves the vetx/result cache works end to end: a cold
// `go vet -vettool=dualvet` run analyzes the package and records its
// diagnostics; a second run with a *fresh* GOCACHE (so the go command
// re-invokes the tool) but the same DUALVET_CACHE replays the recorded
// diagnostics without re-analyzing. DUALVET_TRACE lines distinguish the
// two paths.
func TestWarmSecondRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet twice")
	}
	tmp := t.TempDir()

	// Build the dualvet tool from this repo.
	tool := filepath.Join(tmp, "dualvet")
	build := exec.Command("go", "build", "-o", tool, "dualcdb/cmd/dualvet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dualvet: %v\n%s", err, out)
	}

	// A tiny throwaway module with one floatcmp violation.
	mod := filepath.Join(tmp, "mod")
	if err := os.MkdirAll(mod, 0o777); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module tmpmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(mod, "a.go"), `package tmpmod

func sameFloat(a, b float64) bool { return a == b }
`)

	cache := filepath.Join(tmp, "dualvet-cache")
	runVet := func(gocache, traceFile string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
		cmd.Dir = mod
		cmd.Env = append(os.Environ(),
			"GOCACHE="+gocache,
			"GOFLAGS=-mod=mod",
			"DUALVET_CACHE="+cache,
			"DUALVET_TRACE="+traceFile,
		)
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	trace1 := filepath.Join(tmp, "trace1")
	out1, err := runVet(filepath.Join(tmp, "gocacheA"), trace1)
	if err == nil {
		t.Fatalf("cold run should fail on the floatcmp violation, output:\n%s", out1)
	}
	if !strings.Contains(out1, "[dualvet:floatcmp]") {
		t.Fatalf("cold run did not report the floatcmp diagnostic:\n%s", out1)
	}
	if events := traceEvents(t, trace1, "tmpmod"); !contains(events, "cold") || contains(events, "warm") {
		t.Fatalf("first run should be cold, trace events for tmpmod: %v", events)
	}

	// Fresh GOCACHE forces the go command to re-invoke the tool; the
	// shared DUALVET_CACHE must make that invocation a warm replay with
	// identical diagnostics.
	trace2 := filepath.Join(tmp, "trace2")
	out2, err := runVet(filepath.Join(tmp, "gocacheB"), trace2)
	if err == nil {
		t.Fatalf("warm run should still fail on the recorded violation, output:\n%s", out2)
	}
	if !strings.Contains(out2, "[dualvet:floatcmp]") {
		t.Fatalf("warm run did not replay the floatcmp diagnostic:\n%s", out2)
	}
	events := traceEvents(t, trace2, "tmpmod")
	if !contains(events, "warm") {
		t.Fatalf("second run with a shared cache should be warm, trace events for tmpmod: %v", events)
	}
	if contains(events, "cold") {
		t.Fatalf("second run re-analyzed the unchanged package, trace events: %v", events)
	}

	// Editing the source must invalidate the fingerprint: third run,
	// again with a fresh GOCACHE, goes cold and reports the new position.
	writeFile(t, filepath.Join(mod, "a.go"), `package tmpmod

// moved down a line
func sameFloat(a, b float64) bool { return a == b }
`)
	trace3 := filepath.Join(tmp, "trace3")
	out3, err := runVet(filepath.Join(tmp, "gocacheC"), trace3)
	if err == nil {
		t.Fatalf("edited run should fail, output:\n%s", out3)
	}
	if events := traceEvents(t, trace3, "tmpmod"); !contains(events, "cold") {
		t.Fatalf("edited package should re-analyze cold, trace events: %v", events)
	}
	if !strings.Contains(out3, "a.go:4") {
		t.Fatalf("edited run should report the new diagnostic position:\n%s", out3)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}

// traceEvents returns the events recorded for importPath in a trace file.
func traceEvents(t *testing.T, path, importPath string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace file: %v", err)
	}
	var events []string
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] == importPath {
			events = append(events, fields[0])
		}
	}
	return events
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
