// Package pinleak flags page-frame pins that can escape release.
//
// The buffer pool's contract (internal/pagestore) is strict: every frame
// handed out pinned — by Get, GetTracked, GetChainTracked or NewPage — must
// be Released exactly once. A pin that never reaches Release wedges its
// frame in the pool forever: the clock hand skips pinned frames, so each
// leak permanently shrinks the effective pool until Get fails with "no
// evictable frame". Over-release already panics at runtime; under-release
// is silent, which is what this analyzer exists for.
//
// The check runs the obligation engine from internal/analysis/dataflow over
// each function's CFG: a pin opens an obligation that must be closed on
// every path reaching a normal return. Closing events are a Release on the
// frame (through any single-assignment alias), a `defer f.Release()`, or an
// ownership transfer — returning the frame, storing it into a structure or
// global, or capturing it in a closure (the new holder is then responsible;
// wrap() in btree is the canonical case). Calls are resolved through
// function summaries computed bottom-up over the package call graph (and
// imported from dependency vetx records): passing a frame to a callee whose
// summary says it releases or takes ownership discharges the obligation,
// while a callee that merely reads the frame — or releases it on only some
// paths — leaves the duty with the caller, and the diagnostic names the
// helper chain. A helper whose summary returns a fresh pin (its result
// passes a Get through) is itself a source at its call sites. Unknown or
// external callees keep the old conservative reading: ownership presumed
// transferred. The `f, err := pool.Get(id); if err != nil { return err }`
// idiom is understood: no frame exists on the error arm. Escape hatch:
// //dualvet:allow pinleak on the acquiring line. _test.go files are exempt
// (tests leak pins deliberately to probe pool accounting).
//
// The flat-layout views add a second, inverted discipline on top of the pin
// obligations: a btree nodeView/LeafView is a borrow of the pinned frame's
// bytes, and once the frame is released the pool may recycle that buffer
// under a different page — reading the view then returns another page's
// bytes. The borrow engine (dataflow.FindBorrowViolations) tracks each view
// from its creating call (node.view, Tree.leafView) and flags any read of
// it sequenced after a release of its lender (node.release, Frame.Release)
// on some path. Views are values, so passing one to a call or returning it
// is an ordinary pre-release read; `defer release` never kills a view; and
// rebinding the view or lender name each loop iteration keeps sweep loops
// clean. btree.EnableViewGuard is the runtime backstop for the dynamic
// cases this static check cannot see.
package pinleak

import (
	"go/ast"
	"go/types"
	"strings"

	"dualcdb/internal/analysis/dataflow"
	"dualcdb/internal/analysis/disciplines"
	"dualcdb/internal/analysis/framework"
)

// Analyzer is the pinleak check.
var Analyzer = &framework.Analyzer{
	Name: "pinleak",
	Doc:  "flag pagestore frame pins that may not reach Release on every return path",
	Run:  run,
}

// Pairs is the registry of pin → release disciplines this analyzer
// enforces, shared through the disciplines package.
var Pairs = disciplines.Pins

// Package-path suffixes match both the real packages and the testdata
// fakes, mirroring errsink's resolution strategy. The pin disciplines
// carry their own suffix in the registry; these serve the borrow spec.
const (
	poolPkg  = "pagestore"
	btreePkg = "btree"
)

// ViewSources are the btree methods that return a view borrowing the bytes
// of a pinned frame. The map value is the index of the lender among the
// call's operands: -1 for the receiver, n for argument n.
var ViewSources = map[string]int{
	"view":     -1, // (node).view(meta) — lender is the receiver node
	"leafView": 0,  // (*Tree).leafView(leaf) — lender is the leaf argument
}

func run(pass *framework.Pass) error {
	spec := Pairs.LeakSpec(pass.TypesInfo)
	bspec := dataflow.BorrowSpec{
		Borrow: func(call *ast.CallExpr) ([]ast.Expr, int, bool) {
			name, ok := viewSource(pass, call)
			if !ok {
				return nil, 0, false
			}
			var lender ast.Expr
			if argIdx := ViewSources[name]; argIdx < 0 {
				sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				lender = sel.X
			} else if argIdx < len(call.Args) {
				lender = call.Args[argIdx]
			}
			if lender == nil {
				return nil, 0, false
			}
			return []ast.Expr{lender}, 0, true
		},
		IsRelease: func(call *ast.CallExpr) bool {
			return disciplines.MethodOn(pass.TypesInfo, call, btreePkg, "node", "release") ||
				disciplines.MethodOn(pass.TypesInfo, call, poolPkg, "Frame", "Release")
		},
		IsLender: func(t types.Type) bool {
			return disciplines.NamedIn(t, btreePkg, "node") || disciplines.NamedIn(t, poolPkg, "Frame")
		},
		// The borrow dies with either the node or its embedded frame: a
		// direct lender.frame.Release() must count as a release too.
		ExpandLender: func(l ast.Expr) []ast.Expr {
			return []ast.Expr{&ast.SelectorExpr{X: l, Sel: ast.NewIdent("frame")}}
		},
	}

	// Interprocedural step: summarize every function of this package
	// bottom-up over the call graph, with the banks imported from dependency
	// vetx records underneath, then let the per-function checks consult the
	// summaries at call sites instead of assuming every call takes ownership.
	cg := dataflow.BuildCallGraph(pass.Files, pass.TypesInfo)
	importedOb := pass.Summaries.ObligationsFor(pass.Analyzer.Name)
	obs, _ := dataflow.ComputeObSummaries(cg, pass.TypesInfo, spec, importedOb)
	spec.Summaries = func(fn *types.Func) (dataflow.ObSummary, bool) {
		if s, ok := obs[fn]; ok {
			return s, true
		}
		s, ok := importedOb[fn.FullName()]
		return s, ok
	}
	importedBw := pass.Summaries.BorrowBank()
	bsums, _ := dataflow.ComputeBorrowSummaries(cg, pass.TypesInfo, bspec, importedBw)
	bspec.Summaries = func(fn *types.Func) (dataflow.BorrowSummary, bool) {
		if s, ok := bsums[fn]; ok {
			return s, true
		}
		s, ok := importedBw[fn.FullName()]
		return s, ok
	}
	exp := &dataflow.PackageSummaries{}
	exp.AddObligations(pass.Analyzer.Name, obs)
	exp.AddBorrows(bsums)
	pass.Export(exp)

	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body, spec)
			checkBorrows(pass, fd.Body, bspec)
			for _, fl := range dataflow.FuncLits(fd.Body) {
				checkBody(pass, fl.Body, spec)
				checkBorrows(pass, fl.Body, bspec)
			}
		}
	}
	return nil
}

// viewSource reports whether call is one of the borrow-creating btree
// methods, returning its name.
func viewSource(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	for name := range ViewSources {
		var typeName string
		if name == "view" {
			typeName = "node"
		} else {
			typeName = "Tree"
		}
		if disciplines.MethodOn(pass.TypesInfo, call, btreePkg, typeName, name) {
			return name, true
		}
	}
	return "", false
}

func checkBorrows(pass *framework.Pass, body *ast.BlockStmt, spec dataflow.BorrowSpec) {
	for _, v := range dataflow.FindBorrowViolations(body, pass.TypesInfo, spec) {
		pass.Reportf(v.Use.Pos(),
			"view %s (borrowed by %s) is read after its frame's release; a view must not outlive the frame's Release (//dualvet:allow pinleak if the page is known re-pinned)",
			v.Use.Name, calleeName(v.Borrow))
	}
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt, spec dataflow.LeakSpec) {
	for _, leak := range dataflow.FindLeaks(body, pass.TypesInfo, spec) {
		name := calleeName(leak.Acquire)
		switch {
		case leak.Immediate:
			pass.Reportf(leak.Acquire.Pos(),
				"frame pinned by %s is discarded without Release; the pin wedges the frame in the pool (//dualvet:allow pinleak if intentional)",
				name)
		case len(leak.Chain) > 0:
			verb := "does not release it"
			if leak.Conditional {
				verb = "releases it on only some paths"
			}
			pass.Reportf(leak.Acquire.Pos(),
				"frame pinned by %s is passed to %s, which %s; the pin may never reach Release (//dualvet:allow pinleak if ownership rests with the callee)",
				name, strings.Join(leak.Chain, " → "), verb)
		default:
			pass.Reportf(leak.Acquire.Pos(),
				"frame pinned by %s may not reach Release on every return path; use defer f.Release() or release on each branch (//dualvet:allow pinleak if ownership moves elsewhere)",
				name)
		}
	}
}

func calleeName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + "." + sel.Sel.Name
	}
	return types.ExprString(call.Fun)
}
