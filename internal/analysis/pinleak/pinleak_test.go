package pinleak_test

import (
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/pinleak"
)

func TestPinleak(t *testing.T) {
	analysistest.Run(t, "../testdata", pinleak.Analyzer, "pinleak")
}

func TestViewBorrows(t *testing.T) {
	analysistest.Run(t, "../testdata", pinleak.Analyzer, "btree")
}
