package spanleak_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/framework"
	"dualcdb/internal/analysis/spanleak"
)

func TestSpanleak(t *testing.T) {
	analysistest.Run(t, "../testdata", spanleak.Analyzer, "spanleak")
}

// TestCrossPackageSummaries drives the vetx-shaped path analysistest cannot:
// summaries exported by one package's pass are handed to a dependent
// package's pass as the imported bank, so a timer passed to an external
// helper is charged by what that helper actually does with it.
func TestCrossPackageSummaries(t *testing.T) {
	const obsSrc = `package obs

type Stage int

type SpanTimer struct{ ok bool }

func (t SpanTimer) End(pages1 uint64, items int) {}

type QueryTrace struct{ n int }

func (tr *QueryTrace) Begin(stage Stage, pages0 uint64) SpanTimer { return SpanTimer{true} }
`
	const helpersSrc = `package helpers

import "fake/obs"

// Close discharges the timer on every path.
func Close(st obs.SpanTimer) { st.End(0, 0) }

// Keep only reads the timer; the obligation stays with the caller.
func Keep(st obs.SpanTimer) { _ = st }
`
	const consumerSrc = `package consumer

import (
	"fake/helpers"
	"fake/obs"
)

func leaky(tr *obs.QueryTrace) {
	st := tr.Begin(0, 0)
	helpers.Keep(st)
}

func clean(tr *obs.QueryTrace) {
	st := tr.Begin(0, 0)
	helpers.Close(st)
}

func allowed(tr *obs.QueryTrace) {
	st := tr.Begin(0, 0) //dualvet:allow spanleak — keeper registry records the interval
	helpers.Keep(st)
}
`

	fset := token.NewFileSet()
	pkgs := map[string]*types.Package{}
	imp := importerFunc(func(path string) (*types.Package, error) { return pkgs[path], nil })
	load := func(path, src string) ([]*ast.File, *types.Package, *types.Info) {
		t.Helper()
		f, err := parser.ParseFile(fset, path+"/src.go", src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		info := framework.NewInfo()
		pkg, err := (&types.Config{Importer: imp}).Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatal(err)
		}
		pkgs[path] = pkg
		return []*ast.File{f}, pkg, info
	}

	load("fake/obs", obsSrc)

	hFiles, hPkg, hInfo := load("fake/helpers", helpersSrc)
	hDiags, exported, err := framework.RunPackage(fset, hFiles, hPkg, hInfo, []*framework.Analyzer{spanleak.Analyzer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hDiags) != 0 {
		t.Fatalf("helpers package should be clean, got %v", hDiags)
	}
	bank := exported.ObligationsFor("spanleak")
	keep, ok := bank["fake/helpers.Keep"]
	if !ok || len(keep.Params) == 0 || keep.Params[0].Discharges() {
		t.Fatalf("exported summary for Keep should keep the obligation, got %+v (present=%v)", keep, ok)
	}
	cl, ok := bank["fake/helpers.Close"]
	if !ok || len(cl.Params) == 0 || !cl.Params[0].Discharges() || cl.Params[0].Conditional() {
		t.Fatalf("exported summary for Close should discharge unconditionally, got %+v (present=%v)", cl, ok)
	}

	cFiles, cPkg, cInfo := load("fake/consumer", consumerSrc)
	diags, _, err := framework.RunPackage(fset, cFiles, cPkg, cInfo, []*framework.Analyzer{spanleak.Analyzer}, exported)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic (leaky; clean discharged, allowed suppressed), got %d: %v", len(diags), diags)
	}
	msg := diags[0].Message
	if !strings.Contains(msg, "passed to Keep") || !strings.Contains(msg, "does not close it") {
		t.Fatalf("diagnostic should name the imported helper chain, got %q", msg)
	}
	if line := fset.Position(diags[0].Pos).Line; line != 9 {
		t.Fatalf("diagnostic should anchor on leaky's Begin (line 9), got line %d", line)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
