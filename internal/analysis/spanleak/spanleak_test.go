package spanleak_test

import (
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/spanleak"
)

func TestSpanleak(t *testing.T) {
	analysistest.Run(t, "../testdata", spanleak.Analyzer, "spanleak")
}
