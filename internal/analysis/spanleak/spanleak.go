// Package spanleak flags observability spans and batch timers that can
// escape their End/Done.
//
// The obs layer's accounting assumes every begun interval is closed:
// QueryTrace.Begin returns a SpanTimer that must reach End (the span is
// appended to the trace only there — a dropped timer silently loses the
// stage from per-stage attribution and breaks the reconciliation
// invariants), and Observer.StartBatch returns a BatchTimer whose Done
// records batch latency. Both are cheap value types, so nothing crashes
// when one is dropped — the telemetry just quietly lies, which is worse.
//
// The begin→close pairings live in the shared disciplines registry
// (disciplines.Spans); adding a trace type means adding one Pair there.
// The check runs the obligation engine from internal/analysis/dataflow
// over each function's CFG: Begin/StartBatch opens an obligation that must
// reach End/Done (directly, through a single-assignment alias, or via
// defer) on every path to a normal return. Returning the timer transfers
// the obligation to the caller; passing it to a callee is resolved through
// function summaries computed over the package call graph (and imported
// from dependency vetx records) — a helper that closes the timer on every
// path discharges the obligation, one that merely reads it (or closes it
// only conditionally) leaves the duty with the caller and the diagnostic
// names the helper chain. Unknown callees are presumed to take ownership,
// as before. Escape hatch: //dualvet:allow spanleak on the beginning line.
// _test.go files are exempt.
package spanleak

import (
	"go/ast"
	"go/types"
	"strings"

	"dualcdb/internal/analysis/dataflow"
	"dualcdb/internal/analysis/disciplines"
	"dualcdb/internal/analysis/framework"
)

// Analyzer is the spanleak check.
var Analyzer = &framework.Analyzer{
	Name: "spanleak",
	Doc:  "flag obs span/batch timers that may not reach End/Done on every return path",
	Run:  run,
}

// Pairs is the registry of begin → close disciplines this analyzer
// enforces, shared through the disciplines package.
var Pairs = disciplines.Spans

func run(pass *framework.Pass) error {
	spec := Pairs.LeakSpec(pass.TypesInfo)

	// Interprocedural step: summarize every function bottom-up over the
	// package call graph (imported dependency banks underneath), so a timer
	// handed to a helper is charged by what the helper actually does with it
	// — End on every path discharges, a read-only or conditional helper
	// leaves the duty here — and a helper returning a fresh timer is a
	// source at its call sites.
	cg := dataflow.BuildCallGraph(pass.Files, pass.TypesInfo)
	imported := pass.Summaries.ObligationsFor(pass.Analyzer.Name)
	sums, _ := dataflow.ComputeObSummaries(cg, pass.TypesInfo, spec, imported)
	spec.Summaries = func(fn *types.Func) (dataflow.ObSummary, bool) {
		if s, ok := sums[fn]; ok {
			return s, true
		}
		s, ok := imported[fn.FullName()]
		return s, ok
	}
	exp := &dataflow.PackageSummaries{}
	exp.AddObligations(pass.Analyzer.Name, sums)
	pass.Export(exp)

	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body, spec)
			for _, fl := range dataflow.FuncLits(fd.Body) {
				checkBody(pass, fl.Body, spec)
			}
		}
	}
	return nil
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt, spec dataflow.LeakSpec) {
	for _, leak := range dataflow.FindLeaks(body, pass.TypesInfo, spec) {
		name, closeName := describe(pass, leak.Acquire)
		switch {
		case leak.Immediate:
			pass.Reportf(leak.Acquire.Pos(),
				"timer started by %s is discarded without %s; the interval is never recorded (//dualvet:allow spanleak if intentional)",
				name, closeName)
		case len(leak.Chain) > 0:
			verb := "does not close it"
			if leak.Conditional {
				verb = "closes it on only some paths"
			}
			pass.Reportf(leak.Acquire.Pos(),
				"timer started by %s is passed to %s, which %s; the interval may never be recorded (//dualvet:allow spanleak if the callee is meant to keep it)",
				name, strings.Join(leak.Chain, " → "), verb)
		default:
			pass.Reportf(leak.Acquire.Pos(),
				"timer started by %s may not reach %s on every return path; close it on each branch or defer it (//dualvet:allow spanleak if ownership moves elsewhere)",
				name, closeName)
		}
	}
}

func describe(pass *framework.Pass, call *ast.CallExpr) (name, closeName string) {
	name = types.ExprString(call.Fun)
	closeName = Pairs.CloseFor(pass.TypesInfo, call)
	if closeName == "" {
		// A summarized source (helper returning a fresh timer): recover the
		// close method from the call's result types.
		if tv, ok := pass.TypesInfo.Types[call]; ok {
			elems := []types.Type{tv.Type}
			if tup, isTup := tv.Type.(*types.Tuple); isTup {
				elems = elems[:0]
				for i := 0; i < tup.Len(); i++ {
					elems = append(elems, tup.At(i).Type())
				}
			}
			for _, t := range elems {
				if c := Pairs.CloseForType(t); c != "" {
					closeName = c
				}
			}
		}
	}
	if closeName == "" {
		closeName = "its close method"
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name = types.ExprString(sel.X) + "." + sel.Sel.Name
	}
	return name, closeName
}
