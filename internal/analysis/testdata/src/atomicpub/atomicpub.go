// Golden cases for the atomicpub analyzer.
package atomicpub

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int //dualvet:guarded=mu
}

var global counter

func unguardedWrite() {
	global.n = 1 // want `write to global\.n without holding its guard global\.mu`
}

func incUnguarded() {
	global.n++ // want `write to global\.n without holding its guard global\.mu`
}

// Clean: the guard is held across the write.
func guardedWrite() {
	global.mu.Lock()
	global.n = 2
	global.mu.Unlock()
}

// Clean: a deferred unlock keeps the guard held through the body.
func deferGuarded() {
	global.mu.Lock()
	defer global.mu.Unlock()
	global.n++
}

// --- read-mode holds ---

type gauge struct {
	mu sync.RWMutex
	v  int //dualvet:guarded=mu
}

var g gauge

func readHeldWrite() {
	g.mu.RLock()
	g.v = 3 // want `write to g\.v while its guard g\.mu is held only for reading \(RLock at line \d+\)`
	g.mu.RUnlock()
}

// --- the *Locked helper contract ---

// bumpLocked writes a guarded field of its receiver without taking the
// guard: the obligation becomes a "requires" summary checked at call sites.
func (c *counter) bumpLocked() { c.n++ }

func callerMissingHold() {
	global.bumpLocked() // want `call to bumpLocked requires global\.mu held \(it writes fields guarded by it\)`
}

// Clean: the caller holds the guard around the helper.
func callerHolding() {
	global.mu.Lock()
	global.bumpLocked()
	global.mu.Unlock()
}

// --- constructor freshness ---

// Clean: the value is this function's own fresh allocation; initialization
// needs no lock until the value escapes.
func newCounter() *counter {
	c := &counter{}
	c.n = 7
	return c
}

func freshThenEscape(ch chan *counter) {
	c := &counter{}
	c.n = 1 // clean: before the value escapes
	ch <- c
	c.n = 2 // want `write to c\.n without holding its guard c\.mu`
}

// Clean: a *Locked helper invoked on a fresh, not-yet-escaped allocation —
// the requires-contract is vacuous until another goroutine can see c.
func newBumped() *counter {
	c := &counter{}
	c.bumpLocked()
	return c
}

func freshHelperThenEscape(ch chan *counter) {
	c := &counter{}
	c.bumpLocked() // clean: before the value escapes
	ch <- c
	c.bumpLocked() // want `call to bumpLocked requires c\.mu held \(it writes fields guarded by it\)`
}

// --- goroutines ---

// The goroutine runs after launch under its own (empty) lock set; holding
// the guard at the go statement protects nothing.
func goWriteUnderLock() {
	global.mu.Lock()
	defer global.mu.Unlock()
	go func() {
		global.n = 5 // want `write to global\.n without holding its guard global\.mu`
	}()
}

// Clean: a non-go literal invoked in place inherits the held set.
func closureInherits() {
	global.mu.Lock()
	defer global.mu.Unlock()
	f := func() { global.n = 6 }
	f()
}

// --- typed atomic cells ---

type flags struct {
	ready atomic.Bool
}

func plainAtomicAccess(f *flags) {
	f.ready = atomic.Bool{} // want `atomic field f\.ready overwritten as a plain value; use its Store method`
	r := f.ready            // want `atomic field f\.ready copied as a plain value; use its Load method`
	_ = r
	f.ready.Store(true) // clean: method access
}

// --- annotation validation ---

type badAnnotations struct {
	sync.Mutex //dualvet:guarded=m // want `//dualvet:guarded on an embedded field has no effect`
	m          sync.Mutex
	x          int //dualvet:guarded=missing // want `guard "missing" does not resolve to a sync\.Mutex or sync\.RWMutex field`
	y          int //dualvet:guarded=m
}

// --- embedded mutexes and nested guard paths ---

type ring struct {
	sync.Mutex
	buf []int //dualvet:guarded=Mutex
}

type owner struct {
	ring ring
}

// addLocked requires o.ring.Mutex; the promoted write is charged to callers.
func (o *owner) addLocked(v int) {
	o.ring.buf = append(o.ring.buf, v)
}

var ow owner

func embeddedCallerBad() {
	ow.addLocked(1) // want `call to addLocked requires ow\.ring\.Mutex held`
}

// Clean: the promoted Lock call names the same embedded mutex the
// annotation resolves to.
func embeddedCallerGood() {
	ow.ring.Lock()
	ow.addLocked(2)
	ow.ring.Unlock()
}
