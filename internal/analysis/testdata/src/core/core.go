// Package core is a golden-test stand-in for dualcdb/internal/core: the
// snapleak analyzer matches target packages by import-path suffix, so this
// fake exercises the same resolution without importing the real module.
package core

type TupleID uint32

type Query struct{ Slope float64 }

type Result struct{ IDs []TupleID }

type Index struct{ version uint64 }

// Snapshot pins the current version; the caller must Release it.
func (ix *Index) Snapshot() *Snapshot { return &Snapshot{ix: ix} }

type Snapshot struct {
	ix       *Index
	released bool
}

func (s *Snapshot) Release() { s.released = true }

func (s *Snapshot) Query(q Query) (Result, error) { return Result{}, nil }

func (s *Snapshot) Version() uint64 { return 0 }

func (s *Snapshot) Len() int { return 0 }
