// Package btree is a golden-test stand-in for dualcdb/internal/btree: the
// pinleak borrow check matches the view/leafView/release methods by
// import-path suffix, so this fake mirrors the real package's borrow
// surface (a node wrapping a pinned frame, views sliced from its bytes)
// without importing the real module.
package btree

import "pagestore"

type viewMeta struct {
	next  uint32
	count uint16
}

// node wraps a pinned frame, as in the real package.
type node struct {
	frame *pagestore.Frame
	data  []byte
}

func (n node) view(m viewMeta) nodeView { return nodeView{data: n.data} }
func (n node) release()                 { n.frame.Release() }
func (n node) isLeaf() bool             { return true }

// nodeView borrows the frame's bytes: dead once the frame is released.
type nodeView struct{ data []byte }

func (v nodeView) key(i int) float64        { return 0 }
func (v nodeView) child(i int) uint32       { return 0 }
func (v nodeView) childIndex(k float64) int { return 0 }

// LeafView is the public borrow handed to sweep callbacks.
type LeafView struct{ v nodeView }

func (lv LeafView) Len() int          { return 0 }
func (lv LeafView) Key(i int) float64 { return lv.v.key(i) }
func (lv LeafView) TID(i int) uint32  { return 0 }

type Tree struct{ pool *pagestore.Pool }

func (t *Tree) leafView(leaf node) (LeafView, viewMeta) {
	// Returning the borrow transfers it to the caller: no release happens
	// in this body, so this is clean.
	return LeafView{v: leaf.view(viewMeta{})}, viewMeta{}
}

func (t *Tree) nextLeaf(id uint32) (node, error) { return node{}, nil }

func sinkEntry(float64) {}

// --- clean shapes -----------------------------------------------------

// releaseAfterVisit is the sweep protocol: every read of the view happens
// before the frame goes back to the pool.
func releaseAfterVisit(t *Tree, leaf node, visit func(LeafView) bool) {
	lv, m := t.leafView(leaf)
	more := visit(lv)
	leaf.release()
	_ = more
	_ = m
}

// deferredRelease runs after the return value is computed; the view is
// readable throughout the body.
func deferredRelease(t *Tree, leaf node) float64 {
	lv, _ := t.leafView(leaf)
	defer leaf.release()
	return lv.Key(0)
}

// reBorrowLoop rebinds both the view and the lender each iteration, so the
// stale pair from the previous round never reaches a read.
func reBorrowLoop(t *Tree, leaf node) error {
	for i := 0; i < 3; i++ {
		lv, m := t.leafView(leaf)
		sinkEntry(lv.Key(0))
		leaf.release()
		var err error
		if leaf, err = t.nextLeaf(m.next); err != nil {
			return err
		}
	}
	leaf.release()
	return nil
}

// descentView mirrors findLeafTracked: the internal-node view is consumed
// before the node is released and the loop re-borrows.
func descentView(t *Tree, n node) uint32 {
	var child uint32
	for !n.isLeaf() {
		v := n.view(viewMeta{})
		child = v.child(v.childIndex(0))
		n.release()
		n, _ = t.nextLeaf(child)
	}
	n.release()
	return child
}

// handedToCaller transfers the borrow out: the caller owns the release
// ordering now.
func handedToCaller(t *Tree, leaf node) LeafView {
	lv, _ := t.leafView(leaf)
	return lv
}

// --- violations -------------------------------------------------------

func useAfterRelease(t *Tree, leaf node) float64 {
	lv, _ := t.leafView(leaf)
	leaf.release()
	return lv.Key(0) // want `view lv \(borrowed by t\.leafView\) is read after its frame's release`
}

func useAfterReleaseOneBranch(t *Tree, leaf node, cond bool) float64 {
	lv, _ := t.leafView(leaf)
	if cond {
		leaf.release()
	}
	return lv.Key(0) // want `view lv \(borrowed by t\.leafView\) is read after its frame's release`
}

func aliasUseAfterRelease(t *Tree, leaf node) float64 {
	lv, _ := t.leafView(leaf)
	lv2 := lv
	leaf.release()
	return lv2.Key(0) // want `view lv2 \(borrowed by t\.leafView\) is read after its frame's release`
}

func copyOfDeadView(t *Tree, leaf node) LeafView {
	lv, _ := t.leafView(leaf)
	leaf.release()
	dead := lv // want `view lv \(borrowed by t\.leafView\) is read after its frame's release`
	return dead
}

func nodeViewAfterRelease(n node) uint32 {
	v := n.view(viewMeta{})
	n.release()
	return v.child(0) // want `view v \(borrowed by n\.view\) is read after its frame's release`
}

func frameReleaseKillsView(n node) uint32 {
	v := n.view(viewMeta{})
	n.frame.Release()
	return v.child(0) // want `view v \(borrowed by n\.view\) is read after its frame's release`
}

func escapeAfterRelease(t *Tree, leaf node, visit func(LeafView) bool) {
	lv, _ := t.leafView(leaf)
	leaf.release()
	visit(lv) // want `view lv \(borrowed by t\.leafView\) is read after its frame's release`
}

func staleLoopCarry(t *Tree, leaf node) {
	var last LeafView
	for i := 0; i < 3; i++ {
		lv, _ := t.leafView(leaf)
		last = lv
		leaf.release()
	}
	sinkEntry(last.Key(0)) // want `view last \(borrowed by t\.leafView\) is read after its frame's release`
}

// --- cross-function (summary-driven) shapes ---------------------------

// viewOf returns a borrow of its leaf parameter: the computed summary
// records the result→parameter provenance, so callers track views created
// through this helper exactly like direct leafView calls.
func viewOf(t *Tree, leaf node) (LeafView, viewMeta) {
	return t.leafView(leaf)
}

// finish releases its lender parameter; the summary carries the release
// effect to call sites.
func finish(leaf node) { leaf.release() }

// helperBorrowClean reads the summarized borrow before the release.
func helperBorrowClean(t *Tree, leaf node) float64 {
	lv, _ := viewOf(t, leaf)
	k := lv.Key(0)
	leaf.release()
	return k
}

// helperBorrowDead reads the summarized borrow after its lender's release:
// the view outlived the lender even though no leafView call is in sight.
func helperBorrowDead(t *Tree, leaf node) float64 {
	lv, _ := viewOf(t, leaf)
	leaf.release()
	return lv.Key(0) // want `view lv \(borrowed by viewOf\) is read after its frame's release`
}

// helperReleaseKills: a helper whose summary releases the lender kills the
// view just like a direct release would.
func helperReleaseKills(t *Tree, leaf node) float64 {
	lv, _ := t.leafView(leaf)
	finish(leaf)
	return lv.Key(0) // want `view lv \(borrowed by t\.leafView\) is read after its frame's release`
}

// helperReleaseOrdered: every read precedes the releasing helper. Clean.
func helperReleaseOrdered(t *Tree, leaf node) float64 {
	lv, _ := t.leafView(leaf)
	k := lv.Key(0)
	finish(leaf)
	return k
}
