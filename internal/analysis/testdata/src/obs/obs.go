// Package obs is a golden-test stand-in for dualcdb/internal/obs: the
// spanleak analyzer matches target packages by import-path suffix, so this
// fake exercises the same resolution without importing the real module.
package obs

type Stage string

type QueryTrace struct{}

func (t *QueryTrace) Begin(stage Stage, pages0 uint64) SpanTimer { return SpanTimer{} }

type SpanTimer struct{ open bool }

func (s SpanTimer) End(pages1 uint64, items int) {}

type Observer struct{}

func (o *Observer) StartBatch() BatchTimer { return BatchTimer{} }

type BatchTimer struct{ open bool }

func (b BatchTimer) Done() {}
