// Golden cases for the infguard analyzer.
package infguard

import "math"

type env struct {
	Lo     float64 //dualvet:mayinf
	Hi     float64 //dualvet:mayinf
	finite float64
}

//dualvet:mayinf
func top() float64 { return math.Inf(1) }

func bot() float64 { return -1 } // unmarked: never treated as Inf-carrying

func addSub(e env) float64 {
	w := e.Hi - e.Lo               // want `both e.Hi and e.Lo may be ±Inf`
	s := e.Lo + e.Hi               // want `both e.Lo and e.Hi may be ±Inf`
	d := math.Inf(1) - math.Inf(1) // want `may be ±Inf`
	t := top() - top()             // want `both top\(\) and top\(\) may be ±Inf`
	u := e.Hi - 1                  // one finite operand: Inf-1 is Inf, never NaN
	v := bot() - bot()             // unmarked producer: allowed
	f := e.finite + e.finite       // unmarked field: allowed
	return w + s + d + t + u + v + f
}

func mul(e env, scale float64) float64 {
	p := e.Hi * scale // want `e.Hi may be ±Inf: 0·Inf here yields NaN`
	q := e.Hi * 2     // non-zero constant factor: allowed
	r := scale * 3.5  // no Inf-carrying operand: allowed
	return p + q + r
}

func propagated(e env, scale float64) float64 {
	h := e.Hi
	return h * scale // want `h may be ±Inf`
}

func guarded(e env, scale float64) float64 {
	if math.IsInf(e.Hi, 0) {
		return 0
	}
	ok := e.Hi * scale // guard precedes: allowed
	w := e.Lo - e.Lo   // want `both e.Lo and e.Lo may be ±Inf`
	if math.IsInf(e.Lo, 0) {
		return 0
	}
	return ok + w + e.Hi - e.Lo // both guarded above: allowed
}

func compound(e env) {
	x := e.Hi
	x -= e.Lo // want `both x and e.Lo may be ±Inf`
	y := 1.0
	y *= 2
	_ = x + y
}

func annotated(e env) float64 {
	// The domain guarantees Lo is finite whenever Hi is (see docs).
	return e.Hi - e.Lo //dualvet:allow infguard
}
