// Golden cases for the infguard analyzer.
package infguard

import "math"

type env struct {
	Lo     float64 //dualvet:mayinf
	Hi     float64 //dualvet:mayinf
	finite float64
}

//dualvet:mayinf
func top() float64 { return math.Inf(1) }

func bot() float64 { return -1 } // unmarked: never treated as Inf-carrying

func addSub(e env) float64 {
	w := e.Hi - e.Lo               // want `both e.Hi and e.Lo may be ±Inf`
	s := e.Lo + e.Hi               // want `both e.Lo and e.Hi may be ±Inf`
	d := math.Inf(1) - math.Inf(1) // want `may be ±Inf`
	t := top() - top()             // want `both top\(\) and top\(\) may be ±Inf`
	u := e.Hi - 1                  // one finite operand: Inf-1 is Inf, never NaN
	v := bot() - bot()             // unmarked producer: allowed
	f := e.finite + e.finite       // unmarked field: allowed
	return w + s + d + t + u + v + f
}

func mul(e env, scale float64) float64 {
	p := e.Hi * scale // want `e.Hi may be ±Inf: 0·Inf here yields NaN`
	q := e.Hi * 2     // non-zero constant factor: allowed
	r := scale * 3.5  // no Inf-carrying operand: allowed
	return p + q + r
}

func propagated(e env, scale float64) float64 {
	h := e.Hi
	return h * scale // want `h may be ±Inf`
}

func guarded(e env, scale float64) float64 {
	if math.IsInf(e.Hi, 0) {
		return 0
	}
	ok := e.Hi * scale // guard precedes: allowed
	w := e.Lo - e.Lo   // want `both e.Lo and e.Lo may be ±Inf`
	if math.IsInf(e.Lo, 0) {
		return 0
	}
	return ok + w + e.Hi - e.Lo // both guarded above: allowed
}

func compound(e env) {
	x := e.Hi
	x -= e.Lo // want `both x and e.Lo may be ±Inf`
	y := 1.0
	y *= 2
	_ = x + y
}

func annotated(e env) float64 {
	// The domain guarantees Lo is finite whenever Hi is (see docs).
	return e.Hi - e.Lo //dualvet:allow infguard
}

// acc is deliberately unmarked: taint on its fields comes only from
// flow-sensitive tracking, never from the sentinel-carrier lists.
type acc struct {
	lo, hi float64
	nested env
}

func structFieldLocal(e env) float64 {
	var a acc
	a.hi = e.Hi
	a.lo = e.Lo
	return a.hi - a.lo // want `both a.hi and a.lo may be ±Inf`
}

func structFieldClean(e env) float64 {
	var a acc
	a.hi = e.Hi
	a.hi = 1 // strong update: the reassignment clears the fact
	a.lo = e.Lo
	return a.hi - a.lo // finite minus Inf: allowed
}

func compositeLocal(e env, scale float64) float64 {
	a := acc{hi: e.Hi}
	return a.hi * scale // want `a.hi may be ±Inf`
}

func compositePositional(e env, scale float64) float64 {
	a := acc{e.Lo, 1, env{}}
	return a.lo * scale // want `a.lo may be ±Inf`
}

func structCopy(e env, scale float64) float64 {
	a := acc{hi: e.Hi}
	b := a
	return b.hi * scale // want `b.hi may be ±Inf`
}

//dualvet:mayinf
func bounds() (float64, float64) { return math.Inf(-1), math.Inf(1) }

func finiteBounds() (float64, float64) { return 0, 1 }

func multiAssign() float64 {
	lo, hi := bounds()
	return hi - lo // want `both hi and lo may be ±Inf`
}

func multiAssignClean() float64 {
	lo, hi := finiteBounds()
	return hi - lo // unmarked producer: allowed
}

func loopCarried(e env, scale float64, n int) float64 {
	s := 1.0
	for i := 0; i < n; i++ {
		s = s * scale // want `s may be ±Inf`
		s = e.Hi
	}
	return s
}

func branchJoin(e env, cond bool, scale float64) float64 {
	s := 1.0
	if cond {
		s = e.Hi
	}
	return s * scale // want `s may be ±Inf`
}

// ---- cross-function cases: taint flows through helper summaries ----

// clamp passes its parameter straight through: its summary records
// result 0 ← param 0, so taint at a call site flows into the result.
func clamp(x float64) float64 {
	if x > 1e300 {
		return x
	}
	return x
}

func launderedThroughHelper(e env) float64 {
	h := clamp(e.Hi)
	l := clamp(e.Lo)
	return h - l // want `both h and l may be ±Inf`
}

func helperCleanInput(scale float64) float64 {
	a := clamp(scale)
	b := clamp(2)
	return a - b // clean arguments in, clean results out: allowed
}

// floor rebuilds its result from a constant: no flow from its parameter.
func floor(x float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

func helperScrubs(e env) float64 {
	a := floor(e.Hi)
	b := floor(e.Lo)
	return a - b // non-propagating helper: allowed
}

// spread taints its result intrinsically (math.Inf inside), even with clean
// arguments.
func spread(w float64) float64 {
	if w < 0 {
		return math.Inf(1)
	}
	return w
}

func intrinsicViaHelper(scale float64) float64 {
	a := spread(scale)
	b := spread(1)
	return a - b // want `both a and b may be ±Inf`
}

// widen launders through two levels: widen → clamp → param.
func widen(x float64) float64 { return clamp(x) }

func launderedTwoHops(e env, scale float64) float64 {
	return widen(e.Hi) * scale // want `widen\(e.Hi\) may be ±Inf`
}

// pair spreads a tainted tuple through `return helper(...)` pass-through.
func pair(x float64) (float64, float64) { return bounds() }

func tuplePassThrough() float64 {
	lo, hi := pair(0)
	return hi - lo // want `both hi and lo may be ±Inf`
}

// selfRef is self-recursive; the SCC fixpoint still converges to
// result ← param.
func selfRef(x float64, n int) float64 {
	if n == 0 {
		return x
	}
	return selfRef(x, n-1)
}

func recursivePropagation(e env, scale float64) float64 {
	return selfRef(e.Hi, 3) * scale // want `selfRef\(e.Hi, 3\) may be ±Inf`
}

func allowedHelperFlow(e env) float64 {
	h := clamp(e.Hi)
	// Domain note: Hi is finite whenever this path is reachable.
	return h - e.Lo //dualvet:allow infguard
}
