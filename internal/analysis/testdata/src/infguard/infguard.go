// Golden cases for the infguard analyzer.
package infguard

import "math"

type env struct {
	Lo     float64 //dualvet:mayinf
	Hi     float64 //dualvet:mayinf
	finite float64
}

//dualvet:mayinf
func top() float64 { return math.Inf(1) }

func bot() float64 { return -1 } // unmarked: never treated as Inf-carrying

func addSub(e env) float64 {
	w := e.Hi - e.Lo               // want `both e.Hi and e.Lo may be ±Inf`
	s := e.Lo + e.Hi               // want `both e.Lo and e.Hi may be ±Inf`
	d := math.Inf(1) - math.Inf(1) // want `may be ±Inf`
	t := top() - top()             // want `both top\(\) and top\(\) may be ±Inf`
	u := e.Hi - 1                  // one finite operand: Inf-1 is Inf, never NaN
	v := bot() - bot()             // unmarked producer: allowed
	f := e.finite + e.finite       // unmarked field: allowed
	return w + s + d + t + u + v + f
}

func mul(e env, scale float64) float64 {
	p := e.Hi * scale // want `e.Hi may be ±Inf: 0·Inf here yields NaN`
	q := e.Hi * 2     // non-zero constant factor: allowed
	r := scale * 3.5  // no Inf-carrying operand: allowed
	return p + q + r
}

func propagated(e env, scale float64) float64 {
	h := e.Hi
	return h * scale // want `h may be ±Inf`
}

func guarded(e env, scale float64) float64 {
	if math.IsInf(e.Hi, 0) {
		return 0
	}
	ok := e.Hi * scale // guard precedes: allowed
	w := e.Lo - e.Lo   // want `both e.Lo and e.Lo may be ±Inf`
	if math.IsInf(e.Lo, 0) {
		return 0
	}
	return ok + w + e.Hi - e.Lo // both guarded above: allowed
}

func compound(e env) {
	x := e.Hi
	x -= e.Lo // want `both x and e.Lo may be ±Inf`
	y := 1.0
	y *= 2
	_ = x + y
}

func annotated(e env) float64 {
	// The domain guarantees Lo is finite whenever Hi is (see docs).
	return e.Hi - e.Lo //dualvet:allow infguard
}

// acc is deliberately unmarked: taint on its fields comes only from
// flow-sensitive tracking, never from the sentinel-carrier lists.
type acc struct {
	lo, hi float64
	nested env
}

func structFieldLocal(e env) float64 {
	var a acc
	a.hi = e.Hi
	a.lo = e.Lo
	return a.hi - a.lo // want `both a.hi and a.lo may be ±Inf`
}

func structFieldClean(e env) float64 {
	var a acc
	a.hi = e.Hi
	a.hi = 1 // strong update: the reassignment clears the fact
	a.lo = e.Lo
	return a.hi - a.lo // finite minus Inf: allowed
}

func compositeLocal(e env, scale float64) float64 {
	a := acc{hi: e.Hi}
	return a.hi * scale // want `a.hi may be ±Inf`
}

func compositePositional(e env, scale float64) float64 {
	a := acc{e.Lo, 1, env{}}
	return a.lo * scale // want `a.lo may be ±Inf`
}

func structCopy(e env, scale float64) float64 {
	a := acc{hi: e.Hi}
	b := a
	return b.hi * scale // want `b.hi may be ±Inf`
}

//dualvet:mayinf
func bounds() (float64, float64) { return math.Inf(-1), math.Inf(1) }

func finiteBounds() (float64, float64) { return 0, 1 }

func multiAssign() float64 {
	lo, hi := bounds()
	return hi - lo // want `both hi and lo may be ±Inf`
}

func multiAssignClean() float64 {
	lo, hi := finiteBounds()
	return hi - lo // unmarked producer: allowed
}

func loopCarried(e env, scale float64, n int) float64 {
	s := 1.0
	for i := 0; i < n; i++ {
		s = s * scale // want `s may be ±Inf`
		s = e.Hi
	}
	return s
}

func branchJoin(e env, cond bool, scale float64) float64 {
	s := 1.0
	if cond {
		s = e.Hi
	}
	return s * scale // want `s may be ±Inf`
}
