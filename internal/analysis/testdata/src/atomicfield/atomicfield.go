// Golden cases for the atomicfield analyzer.
package atomicfield

import "sync/atomic"

type stats struct {
	hits   uint64        // mixed: atomic in bump, plain in read/reset
	misses uint64        // always plain: fine
	calls  atomic.Uint64 // typed atomic: self-contained, never flagged
}

func bump(s *stats) {
	atomic.AddUint64(&s.hits, 1)
	s.misses++
	s.calls.Add(1)
}

func read(s *stats) uint64 {
	return s.hits + // want `field hits is accessed atomically`
		s.misses + s.calls.Load()
}

func reset(s *stats) {
	s.hits = 0 // want `field hits is accessed atomically`
	s.misses = 0
	s.calls.Store(0)
}

func allAtomic(s *stats) uint64 {
	return atomic.LoadUint64(&s.hits) // consistent atomic access: allowed
}

type ctor struct {
	n int64
}

func newCtor() *ctor {
	c := &ctor{}
	c.n = 1 //dualvet:allow atomicfield — value has not escaped yet
	return c
}

func use(c *ctor) { atomic.AddInt64(&c.n, 1) }
