// Golden cases for the snapleak analyzer.
package snapleak

import "core"

func work() {}

// balancedDefer is the canonical read path: pin, defer the unpin.
func balancedDefer(ix *core.Index) (core.Result, error) {
	s := ix.Snapshot()
	defer s.Release()
	return s.Query(core.Query{})
}

func balancedExplicit(ix *core.Index) {
	s := ix.Snapshot()
	work()
	s.Release()
}

// leaked is the deliberate leak: the pin escapes the function on the
// error return, holding the reclamation watermark forever.
func leaked(ix *core.Index, q core.Query) ([]core.TupleID, error) {
	s := ix.Snapshot() // want `snapshot pinned by ix\.Snapshot may not reach Release on every return path`
	res, err := s.Query(q)
	if err != nil {
		return nil, err
	}
	s.Release()
	return res.IDs, nil
}

func discarded(ix *core.Index) {
	ix.Snapshot() // want `snapshot pinned by ix\.Snapshot is discarded without Release`
}

// returned transfers the obligation to the caller: allowed.
func returned(ix *core.Index) *core.Snapshot {
	return ix.Snapshot()
}

// aliasRelease: releasing through a single-assignment alias counts.
func aliasRelease(ix *core.Index) {
	s := ix.Snapshot()
	t := s
	work()
	t.Release()
}

// doubleRelease is fine — Release is idempotent — and so is releasing on
// each branch explicitly.
func branchRelease(ix *core.Index, cond bool) {
	s := ix.Snapshot()
	if cond {
		s.Release()
		return
	}
	s.Release()
}

func annotated(ix *core.Index) {
	ix.Snapshot() //dualvet:allow snapleak — census probe, released by the gauge sweep
}

// --- cross-function (summary-driven) shapes ---------------------------

// unpin releases its snapshot on every path; its summary discharges the
// obligation at call sites.
func unpin(s *core.Snapshot) {
	s.Release()
}

// inspect merely reads the snapshot: the obligation stays with the caller.
func inspect(s *core.Snapshot) int {
	return s.Len()
}

// maybeUnpin releases on one arm only.
func maybeUnpin(s *core.Snapshot, ok bool) {
	if ok {
		s.Release()
	}
}

// releasedByHelper hands the pin to a releasing helper. Allowed.
func releasedByHelper(ix *core.Index) {
	s := ix.Snapshot()
	work()
	unpin(s)
}

// droppedByHelper hands the pin to a helper that never releases it.
func droppedByHelper(ix *core.Index) {
	s := ix.Snapshot() // want `snapshot pinned by ix\.Snapshot is passed to inspect, which does not release it`
	work()
	_ = inspect(s)
}

// conditionallyReleased: the helper releases only on its success arm.
func conditionallyReleased(ix *core.Index, ok bool) {
	s := ix.Snapshot() // want `snapshot pinned by ix\.Snapshot is passed to maybeUnpin, which releases it on only some paths`
	work()
	maybeUnpin(s, ok)
}

// pinVia returns a fresh snapshot; its summary makes it a source.
func pinVia(ix *core.Index) *core.Snapshot {
	return ix.Snapshot()
}

// helperSourceLeaked: a snapshot acquired through a helper still carries
// the obligation.
func helperSourceLeaked(ix *core.Index, cond bool) {
	s := pinVia(ix) // want `snapshot pinned by pinVia may not reach Release on every return path`
	if cond {
		return
	}
	s.Release()
}

// helperSourceBalanced releases the helper-acquired snapshot. Allowed.
func helperSourceBalanced(ix *core.Index) {
	s := pinVia(ix)
	defer s.Release()
	work()
}
