// Package pagestore is a golden-test stand-in for dualcdb/internal/pagestore:
// the errsink and pinleak analyzers match target packages by import-path
// suffix, so this fake exercises the same resolution without importing the
// real module. Method shapes mirror the real pool's pin surface.
package pagestore

type PageID uint64

type ReadCounter struct{ Logical, Physical uint64 }

type Pool struct{}

func (p *Pool) Flush() error                                          { return nil }
func (p *Pool) Get() (*Frame, error)                                  { return &Frame{}, nil }
func (p *Pool) GetTracked(id PageID, rc *ReadCounter) (*Frame, error) { return &Frame{}, nil }
func (p *Pool) NewPage() (*Frame, error)                              { return &Frame{}, nil }
func (p *Pool) Release()                                              {}

type Frame struct{ data []byte }

func (f *Frame) Data() []byte { return f.data }
func (f *Frame) MarkDirty()   {}
func (f *Frame) Release()     {}

func Sync() error { return nil }
