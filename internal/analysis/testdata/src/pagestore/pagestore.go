// Package pagestore is a golden-test stand-in for dualcdb/internal/pagestore:
// the errsink analyzer matches target packages by import-path suffix, so
// this fake exercises the same resolution without importing the real module.
package pagestore

type Pool struct{}

func (p *Pool) Flush() error         { return nil }
func (p *Pool) Get() (*Frame, error) { return &Frame{}, nil }
func (p *Pool) Release()             {}

type Frame struct{}

func Sync() error { return nil }
