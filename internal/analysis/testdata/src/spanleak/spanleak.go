// Golden cases for the spanleak analyzer.
package spanleak

import "obs"

func work() {}

func balanced(tr *obs.QueryTrace) {
	st := tr.Begin("sweep", 0)
	work()
	st.End(1, 2)
}

func leakOneBranch(tr *obs.QueryTrace, cond bool) {
	st := tr.Begin("sweep", 0) // want `timer started by tr\.Begin may not reach End on every return path`
	if cond {
		return
	}
	st.End(1, 2)
}

func discarded(tr *obs.QueryTrace) {
	tr.Begin("sweep", 0) // want `timer started by tr\.Begin is discarded without End`
}

func batchBalancedDefer(o *obs.Observer) {
	bt := o.StartBatch()
	defer bt.Done()
	work()
}

func batchLeak(o *obs.Observer, cond bool) {
	bt := o.StartBatch() // want `timer started by o\.StartBatch may not reach Done on every return path`
	if cond {
		return
	}
	bt.Done()
}

// returned transfers the obligation to the caller: allowed.
func returned(tr *obs.QueryTrace) obs.SpanTimer {
	return tr.Begin("route", 0)
}

// zeroValue is the nil-observer idiom: a zero SpanTimer is no obligation.
func zeroValue(tr *obs.QueryTrace, enabled bool) obs.SpanTimer {
	if !enabled {
		return obs.SpanTimer{}
	}
	return tr.Begin("refine", 0)
}

func aliasEnd(tr *obs.QueryTrace) {
	st := tr.Begin("dedup", 0)
	cp := st
	cp.End(0, 0)
}

func annotated(tr *obs.QueryTrace) {
	tr.Begin("sweep", 0) //dualvet:allow spanleak — fire-and-forget probe
}

// --- cross-function (summary-driven) shapes ---------------------------

// closeSpan ends its timer on every path; its summary discharges the
// obligation at call sites.
func closeSpan(st obs.SpanTimer, pages uint64, items int) {
	st.End(pages, items)
}

// readSpan merely inspects the timer: the obligation stays with the caller.
func readSpan(st obs.SpanTimer) {
	_ = st
}

// maybeClose ends the timer on one arm only.
func maybeClose(st obs.SpanTimer, ok bool) {
	if ok {
		st.End(0, 0)
	}
}

// closedByHelper hands the span to a closing helper. Allowed.
func closedByHelper(tr *obs.QueryTrace) {
	st := tr.Begin("sweep", 0)
	work()
	closeSpan(st, 1, 2)
}

// droppedByHelper hands the span to a helper that never closes it: the
// stage silently vanishes from the trace.
func droppedByHelper(tr *obs.QueryTrace) {
	st := tr.Begin("sweep", 0) // want `timer started by tr\.Begin is passed to readSpan, which does not close it`
	work()
	readSpan(st)
}

// conditionallyClosed: the helper closes only on its success arm.
func conditionallyClosed(tr *obs.QueryTrace, ok bool) {
	st := tr.Begin("sweep", 0) // want `timer started by tr\.Begin is passed to maybeClose, which closes it on only some paths`
	work()
	maybeClose(st, ok)
}

// beginVia returns a fresh timer; its summary makes it a source.
func beginVia(tr *obs.QueryTrace, stage obs.Stage) obs.SpanTimer {
	return tr.Begin(stage, 0)
}

// helperSourceLeaked: a timer acquired through a helper still carries the
// obligation.
func helperSourceLeaked(tr *obs.QueryTrace, cond bool) {
	st := beginVia(tr, "route") // want `timer started by beginVia may not reach End on every return path`
	if cond {
		return
	}
	st.End(0, 0)
}

// helperSourceBalanced closes the helper-acquired timer. Allowed.
func helperSourceBalanced(tr *obs.QueryTrace) {
	st := beginVia(tr, "route")
	defer st.End(0, 0)
	work()
}

// allowedHandoff suppresses the cross-function finding at the call site.
func allowedHandoff(tr *obs.QueryTrace) {
	st := tr.Begin("probe", 0) //dualvet:allow spanleak — probe helper records elsewhere
	readSpan(st)
}
