// Golden cases for the spanleak analyzer.
package spanleak

import "obs"

func work() {}

func balanced(tr *obs.QueryTrace) {
	st := tr.Begin("sweep", 0)
	work()
	st.End(1, 2)
}

func leakOneBranch(tr *obs.QueryTrace, cond bool) {
	st := tr.Begin("sweep", 0) // want `timer started by tr\.Begin may not reach End on every return path`
	if cond {
		return
	}
	st.End(1, 2)
}

func discarded(tr *obs.QueryTrace) {
	tr.Begin("sweep", 0) // want `timer started by tr\.Begin is discarded without End`
}

func batchBalancedDefer(o *obs.Observer) {
	bt := o.StartBatch()
	defer bt.Done()
	work()
}

func batchLeak(o *obs.Observer, cond bool) {
	bt := o.StartBatch() // want `timer started by o\.StartBatch may not reach Done on every return path`
	if cond {
		return
	}
	bt.Done()
}

// returned transfers the obligation to the caller: allowed.
func returned(tr *obs.QueryTrace) obs.SpanTimer {
	return tr.Begin("route", 0)
}

// zeroValue is the nil-observer idiom: a zero SpanTimer is no obligation.
func zeroValue(tr *obs.QueryTrace, enabled bool) obs.SpanTimer {
	if !enabled {
		return obs.SpanTimer{}
	}
	return tr.Begin("refine", 0)
}

func aliasEnd(tr *obs.QueryTrace) {
	st := tr.Begin("dedup", 0)
	cp := st
	cp.End(0, 0)
}

func annotated(tr *obs.QueryTrace) {
	tr.Begin("sweep", 0) //dualvet:allow spanleak — fire-and-forget probe
}
