// Golden cases for the lockset analyzer.
package lockset

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

type R struct {
	mu sync.RWMutex
	n  int
}

// --- re-entrant acquisition ---

func (s *S) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu is acquired again while already locked \(since line \d+\); sync mutexes are not reentrant`
	s.mu.Unlock()
}

func (r *R) upgrade() {
	r.mu.RLock()
	r.mu.Lock() // want `r\.mu write-lock upgrade while read-locked \(RLock at line \d+\) deadlocks`
	r.mu.Unlock()
}

func (r *R) recursiveRead() {
	r.mu.RLock()
	r.mu.RLock() // want `recursive read lock of r\.mu \(RLock at line \d+\)`
	r.mu.RUnlock()
}

// --- unlock discipline ---

func (s *S) doubleUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock() // want `s\.mu is unlocked twice \(previous unlock at line \d+\)`
}

func unlockUnheld() {
	var mu sync.Mutex
	mu.Unlock() // want `unlock of mu which is not held on any path here`
}

func (r *R) wrongUnlockMode() {
	r.mu.RLock()
	r.mu.Unlock() // want `Unlock of r\.mu which is held in read mode \(RLock at line \d+\); use RUnlock`
}

func (r *R) wrongRUnlockMode() {
	r.mu.Lock()
	r.mu.RUnlock() // want `RUnlock of r\.mu which is held in write mode \(Lock at line \d+\); use Unlock`
}

// --- divergent exits ---

func (s *S) divergent(cond bool) {
	s.mu.Lock() // want `s\.mu acquired here is released on some return paths but still held on others`
	if cond {
		return
	}
	s.mu.Unlock()
}

// Clean: both paths release before returning.
func (s *S) balancedBranches(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// Clean: the deferred unlock balances every path.
func (s *S) deferBalanced() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// Clean: unlock inside a deferred closure is still a deferred unlock.
func (s *S) deferClosure() {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	s.n++
}

// --- TryLock refinement ---

// Clean: the lock is held only on the refined success branch and released
// there; the failure branch holds nothing.
func (s *S) tryLock() {
	if s.mu.TryLock() {
		s.n++
		s.mu.Unlock()
	}
}

// --- aliasing ---

type P struct {
	shards []*S
}

func (p *P) aliasReacquire(i int) {
	s := p.shards[i]
	s.mu.Lock()
	p.shards[i].mu.Lock() // want `p\.shards\[i\]\.mu is acquired again while already locked \(since line \d+\)`
	s.mu.Unlock()
}

// --- interprocedural summaries: the Begin/Commit contract ---

// begin returns holding the lock; the imbalance is its summary, not a bug.
func (s *S) begin() { s.mu.Lock() }

// end releases the caller's hold (the Commit contract).
func (s *S) end() { s.mu.Unlock() }

// Clean: summary-applied acquire balanced by the deferred summary release.
func (s *S) beginEnd() {
	s.begin()
	defer s.end()
	s.n++
}

func (s *S) beginReacquire() {
	s.begin()
	s.mu.Lock() // want `s\.mu is acquired again while already locked \(since line \d+\)`
	s.mu.Unlock()
}

// --- opaque lock handles: Begin returns a token, Commit releases through it ---

type txn struct{ st *S }

// open returns holding s.mu; the handle is how the caller gives it back.
func (s *S) open() *txn {
	s.mu.Lock()
	return &txn{st: s}
}

func (t *txn) commit() { t.st.mu.Unlock() }

// Clean: commit's release is rooted at the local handle t, which never
// aliases s in the fact domain — the engine must still discharge s.mu by
// the mutex-field contract instead of reporting an unheld unlock (and a
// divergent exit for the lock it thinks was never dropped).
func (s *S) handleRoundTrip() {
	t := s.open()
	s.n++
	t.commit()
}

// Clean: same contract through a deferred release.
func (s *S) handleDefer() {
	t := s.open()
	defer t.commit()
	s.n++
}
