// Golden cases for the frozen analyzer.
package frozen

import "sync/atomic"

type rootSet struct {
	ids []int
	gen int
}

type index struct {
	roots atomic.Pointer[rootSet]
}

// Clean: every write precedes the publication.
func buildOK(ix *index) {
	rs := &rootSet{}
	rs.ids = append(rs.ids, 1)
	rs.gen = 1
	ix.roots.Store(rs)
}

func writeAfterStore(ix *index) {
	rs := &rootSet{}
	ix.roots.Store(rs)
	rs.gen = 2 // want `write to rs\.gen mutates a value published at line \d+ \(via ix\.roots\.Store\)`
}

func elemAfterStore(ix *index) {
	rs := &rootSet{ids: make([]int, 4)}
	ix.roots.Store(rs)
	rs.ids[0] = 9 // want `write to rs\.ids.* mutates a value published at line \d+`
}

func aliasWrite(ix *index) {
	rs := &rootSet{}
	alias := rs
	ix.roots.Store(rs)
	alias.gen = 3 // want `write to rs\.gen mutates a value published at line \d+`
}

// --- values read out of the cell are frozen at birth ---

func loadWrite(ix *index) {
	rs := ix.roots.Load()
	rs.gen = 4 // want `write to rs\.gen mutates a value published at line \d+ \(via atomic load\)`
}

// Clean: reading a published value is always fine.
func loadRead(ix *index) int {
	rs := ix.roots.Load()
	if rs == nil {
		return 0
	}
	return rs.gen
}

// --- interprocedural publication summaries ---

// publish stores its parameter: callers' arguments freeze at the call.
func publish(ix *index, rs *rootSet) {
	ix.roots.Store(rs)
}

func helperPublish(ix *index) {
	rs := &rootSet{}
	publish(ix, rs)
	rs.gen = 5 // want `write to rs\.gen mutates a value published at line \d+ \(via publish\)`
}

// pinRoots returns an already-published value: callers receive it frozen.
func pinRoots(ix *index) *rootSet {
	rs := ix.roots.Load()
	return rs
}

func helperReturn(ix *index) {
	rs := pinRoots(ix)
	rs.gen = 6 // want `write to rs\.gen mutates a value published at line \d+ \(via pinRoots\)`
}

// --- rebinding is a strong update ---

// Clean: the name is repointed at a fresh value; the frozen object is
// untouched and the new one is not yet published.
func rebind(ix *index) {
	rs := &rootSet{}
	ix.roots.Store(rs)
	rs = &rootSet{}
	rs.gen = 7
	ix.roots.Store(rs)
}

// Clean: writes to a never-published value are free.
func neverPublished() {
	rs := &rootSet{}
	rs.gen = 1
	rs.ids = append(rs.ids, 2)
}

// --- goroutines launched after publication ---

func goAfterPublish(ix *index) {
	rs := &rootSet{}
	ix.roots.Store(rs)
	go func() {
		rs.gen = 8 // want `write to rs\.gen mutates a value published at line \d+ .* from a goroutine launched after publication`
	}()
}

// --- Swap publishes the new value and returns a published old one ---

func swapOld(ix *index) {
	rs := &rootSet{}
	old := ix.roots.Swap(rs)
	old.gen = 9 // want `write to old\.gen mutates a value published at line \d+ \(via atomic swap\)`
	rs.gen = 10 // want `write to rs\.gen mutates a value published at line \d+ \(via ix\.roots\.Swap\)`
}

func casPublish(ix *index, prev *rootSet) {
	rs := &rootSet{}
	if ix.roots.CompareAndSwap(prev, rs) {
		rs.gen = 11 // want `write to rs\.gen mutates a value published at line \d+ \(via ix\.roots\.CompareAndSwap\)`
	}
}
