// Call-site shapes: suppression and callee resolution at the statement
// level. The //dualvet:allow escape hatch must work on plain, defer and go
// statements alike, and calls whose callee cannot be resolved to a declared
// function (method values, immediately-invoked literals) are out of scope.
package errsink

import "pagestore"

func deferAllowed(p *pagestore.Pool) {
	defer p.Flush() //dualvet:allow errsink — shutdown path, error is advisory
}

func goAllowed() {
	go pagestore.Sync() //dualvet:allow errsink — fire-and-forget warmup
}

func deferDropped(p *pagestore.Pool) {
	defer p.Flush() // want `error that is dropped here`
	_ = p
}

func methodValue(p *pagestore.Pool) {
	flush := p.Flush
	flush() // callee unresolvable through the method value: not flagged
}

func immediateLit(p *pagestore.Pool) {
	func() error { return p.Flush() }() // literal callee has no package home: not flagged
}
