// Golden cases for the errsink analyzer.
package errsink

import "pagestore"

func localWork() error { return nil }

func drops(p *pagestore.Pool) {
	p.Flush()           // want `error that is dropped here`
	p.Get()             // want `error that is dropped here`
	pagestore.Sync()    // want `error that is dropped here`
	defer p.Flush()     // want `error that is dropped here`
	go pagestore.Sync() // want `error that is dropped here`
}

func handled(p *pagestore.Pool) error {
	if err := p.Flush(); err != nil { // handled: allowed
		return err
	}
	_ = pagestore.Sync() // explicit discard: the escape hatch, allowed
	f, err := p.Get()    // captured: allowed
	_ = f
	p.Release() // no error in the signature: allowed
	localWork() // not an I/O package: allowed
	return err
}

func annotated(p *pagestore.Pool) {
	p.Flush() //dualvet:allow errsink — best-effort prefetch
}
