// Golden cases for the pinleak analyzer.
package pinleak

import "pagestore"

func use([]byte) {}

func balanced(p *pagestore.Pool, id pagestore.PageID) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	use(f.Data())
	f.Release()
	return nil
}

func deferred(p *pagestore.Pool) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	defer f.Release()
	use(f.Data())
	return nil
}

func leakPlain(p *pagestore.Pool) error {
	f, err := p.Get() // want `frame pinned by p\.Get may not reach Release on every return path`
	if err != nil {
		return err
	}
	use(f.Data())
	return nil
}

func leakOneBranch(p *pagestore.Pool, cond bool) error {
	f, err := p.Get() // want `frame pinned by p\.Get may not reach Release on every return path`
	if err != nil {
		return err
	}
	if cond {
		f.Release()
		return nil
	}
	use(f.Data())
	return nil
}

func leakTracked(p *pagestore.Pool, id pagestore.PageID, rc *pagestore.ReadCounter) error {
	f, err := p.GetTracked(id, rc) // want `frame pinned by p\.GetTracked may not reach Release`
	if err != nil {
		return err
	}
	use(f.Data())
	return nil
}

func leakNewPage(p *pagestore.Pool) error {
	f, err := p.NewPage() // want `frame pinned by p\.NewPage may not reach Release`
	if err != nil {
		return err
	}
	f.MarkDirty()
	return nil
}

func discarded(p *pagestore.Pool) {
	p.Get() // want `frame pinned by p\.Get is discarded without Release`
}

func blankAssigned(p *pagestore.Pool) {
	_, _ = p.Get() // want `frame pinned by p\.Get is discarded without Release`
}

func aliasRelease(p *pagestore.Pool) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	g := f
	g.Release() // release through the alias: allowed
	return nil
}

// pinned transfers ownership to the caller: allowed.
func pinned(p *pagestore.Pool) (*pagestore.Frame, error) {
	f, err := p.Get()
	if err != nil {
		return nil, err
	}
	return f, nil
}

func handedOff(p *pagestore.Pool) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	keep(f) // ownership passed to the callee: allowed
	return nil
}

func keep(f *pagestore.Frame) {}

func capturedByCleanup(p *pagestore.Pool) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	cleanup := func() { f.Release() }
	defer cleanup()
	use(f.Data())
	return nil
}

func panicPath(p *pagestore.Pool) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	if len(f.Data()) == 0 {
		panic("corrupt page") // abnormal exit: not a leak path
	}
	f.Release()
	return nil
}

func releaseInLoopSkipped(p *pagestore.Pool, n int) error {
	for i := 0; i < n; i++ {
		f, err := p.Get() // want `frame pinned by p\.Get may not reach Release`
		if err != nil {
			return err
		}
		if i%2 == 0 {
			continue
		}
		f.Release()
	}
	return nil
}

func annotated(p *pagestore.Pool) error {
	f, err := p.Get() //dualvet:allow pinleak — registry owns the pin until shutdown
	if err != nil {
		return err
	}
	use(f.Data())
	return nil
}
