// Golden cases for the pinleak analyzer.
package pinleak

import "pagestore"

func use([]byte) {}

func balanced(p *pagestore.Pool, id pagestore.PageID) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	use(f.Data())
	f.Release()
	return nil
}

func deferred(p *pagestore.Pool) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	defer f.Release()
	use(f.Data())
	return nil
}

func leakPlain(p *pagestore.Pool) error {
	f, err := p.Get() // want `frame pinned by p\.Get may not reach Release on every return path`
	if err != nil {
		return err
	}
	use(f.Data())
	return nil
}

func leakOneBranch(p *pagestore.Pool, cond bool) error {
	f, err := p.Get() // want `frame pinned by p\.Get may not reach Release on every return path`
	if err != nil {
		return err
	}
	if cond {
		f.Release()
		return nil
	}
	use(f.Data())
	return nil
}

func leakTracked(p *pagestore.Pool, id pagestore.PageID, rc *pagestore.ReadCounter) error {
	f, err := p.GetTracked(id, rc) // want `frame pinned by p\.GetTracked may not reach Release`
	if err != nil {
		return err
	}
	use(f.Data())
	return nil
}

func leakNewPage(p *pagestore.Pool) error {
	f, err := p.NewPage() // want `frame pinned by p\.NewPage may not reach Release`
	if err != nil {
		return err
	}
	f.MarkDirty()
	return nil
}

func discarded(p *pagestore.Pool) {
	p.Get() // want `frame pinned by p\.Get is discarded without Release`
}

func blankAssigned(p *pagestore.Pool) {
	_, _ = p.Get() // want `frame pinned by p\.Get is discarded without Release`
}

func aliasRelease(p *pagestore.Pool) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	g := f
	g.Release() // release through the alias: allowed
	return nil
}

// pinned transfers ownership to the caller: allowed.
func pinned(p *pagestore.Pool) (*pagestore.Frame, error) {
	f, err := p.Get()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// handedOff passes the frame to a helper whose summary shows it neither
// releases nor takes ownership: the pin obligation stays with the caller.
// (Before interprocedural summaries, any call was presumed to take
// ownership and this case was silently allowed.)
func handedOff(p *pagestore.Pool) error {
	f, err := p.Get() // want `frame pinned by p\.Get is passed to keep, which does not release it`
	if err != nil {
		return err
	}
	keep(f)
	return nil
}

func keep(f *pagestore.Frame) {}

// releasedByHelper hands the frame to a helper that releases it on every
// path: the summary discharges the obligation. Allowed.
func releasedByHelper(p *pagestore.Pool) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	closeFrame(f)
	return nil
}

func closeFrame(f *pagestore.Frame) { f.Release() }

// condReleased hands the frame to a helper that releases it on only one
// arm: a conditional leak, named as such.
func condReleased(p *pagestore.Pool, ok bool) error {
	f, err := p.Get() // want `frame pinned by p\.Get is passed to maybeClose, which releases it on only some paths`
	if err != nil {
		return err
	}
	maybeClose(f, ok)
	return nil
}

func maybeClose(f *pagestore.Frame, ok bool) {
	if ok {
		f.Release()
	}
}

// heldThroughChain leaks through two levels of helpers; the diagnostic
// names the chain.
func heldThroughChain(p *pagestore.Pool) error {
	f, err := p.Get() // want `frame pinned by p\.Get is passed to keepOuter → keep`
	if err != nil {
		return err
	}
	keepOuter(f)
	return nil
}

func keepOuter(f *pagestore.Frame) { keep(f) }

// stashed hands the frame to a helper that stores it into a global: the
// summary records an ownership escape, so the caller is off the hook.
var stashSlot *pagestore.Frame

func stashed(p *pagestore.Pool) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	stash(f)
	return nil
}

func stash(f *pagestore.Frame) { stashSlot = f }

// pinViaHelper acquires through a helper whose summary returns a fresh
// pin: the helper's call sites carry the obligation.
func pinViaHelper(p *pagestore.Pool) error {
	f, err := acquire(p) // want `frame pinned by acquire may not reach Release`
	if err != nil {
		return err
	}
	use(f.Data())
	return nil
}

func acquire(p *pagestore.Pool) (*pagestore.Frame, error) {
	return p.Get()
}

// pinViaHelperBalanced releases the helper-acquired frame: allowed.
func pinViaHelperBalanced(p *pagestore.Pool) error {
	f, err := acquire(p)
	if err != nil {
		return err
	}
	defer f.Release()
	use(f.Data())
	return nil
}

// allowedHandoff suppresses the cross-function finding at the call site.
func allowedHandoff(p *pagestore.Pool) error {
	f, err := p.Get() //dualvet:allow pinleak — keeper registry releases at shutdown
	if err != nil {
		return err
	}
	keep(f)
	return nil
}

func capturedByCleanup(p *pagestore.Pool) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	cleanup := func() { f.Release() }
	defer cleanup()
	use(f.Data())
	return nil
}

func panicPath(p *pagestore.Pool) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	if len(f.Data()) == 0 {
		panic("corrupt page") // abnormal exit: not a leak path
	}
	f.Release()
	return nil
}

func releaseInLoopSkipped(p *pagestore.Pool, n int) error {
	for i := 0; i < n; i++ {
		f, err := p.Get() // want `frame pinned by p\.Get may not reach Release`
		if err != nil {
			return err
		}
		if i%2 == 0 {
			continue
		}
		f.Release()
	}
	return nil
}

func annotated(p *pagestore.Pool) error {
	f, err := p.Get() //dualvet:allow pinleak — registry owns the pin until shutdown
	if err != nil {
		return err
	}
	use(f.Data())
	return nil
}
