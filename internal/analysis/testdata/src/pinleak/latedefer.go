// Deferred closures read their captured variables at return time: a loop
// that releases the old frame and re-binds the same variable stays covered
// by `defer func() { f.Release() }()`. A closure over a different variable
// covers nothing new.
package pinleak

import "pagestore"

func reacquireLoopCovered(p *pagestore.Pool, n int) error {
	f, err := p.Get()
	if err != nil {
		return err
	}
	defer func() { f.Release() }()
	for i := 0; i < n; i++ {
		use(f.Data())
		nf, err := p.Get()
		if err != nil {
			return err
		}
		f.Release()
		f = nf
	}
	return nil
}

func reacquireLoopUncovered(p *pagestore.Pool, n int) error {
	g, err := p.Get()
	if err != nil {
		return err
	}
	defer func() { g.Release() }()
	for i := 0; i < n; i++ {
		nf, err := p.Get() // want `frame pinned by p\.Get may not reach Release`
		if err != nil {
			return err
		}
		use(nf.Data())
	}
	return nil
}
