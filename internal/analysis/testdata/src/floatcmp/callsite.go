// Call-result comparisons: both operands are call expressions, so the
// diagnostic and its //dualvet:allow suppression anchor on the call site.
package floatcmp

import "math"

func clampf(x float64) float64 { return x }

func callResults(a, b float64) bool {
	if clampf(a) == clampf(b) { // want `exact floating-point == comparison`
		return true
	}
	if math.Abs(a) == math.Abs(b) { // want `exact floating-point == comparison`
		return true
	}
	if clampf(a) == math.Inf(1) { // Inf sentinel on one side: allowed
		return true
	}
	return clampf(a) == 0 // exact-zero sentinel: allowed
}

func callAllowed(a, b float64) bool {
	if clampf(a) == clampf(b) { //dualvet:allow floatcmp — quantized grid values compare exactly
		return true
	}
	switch clampf(a) { // want `switch on a floating-point value`
	case 1.0:
		return true
	}
	//dualvet:allow floatcmp — tie-break needs the exact order
	return math.Abs(a) != math.Abs(b)
}
