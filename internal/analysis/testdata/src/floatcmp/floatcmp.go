// Golden cases for the floatcmp analyzer.
package floatcmp

import "math"

type keyed float64

const tol = 1e-9

func comparisons(a, b float64, f32 float32, k keyed, n int) bool {
	if a == b { // want `exact floating-point == comparison`
		return true
	}
	if a != b { // want `exact floating-point != comparison`
		return true
	}
	if f32 == float32(b) { // want `exact floating-point == comparison`
		return true
	}
	if k == keyed(a) { // want `exact floating-point == comparison`
		return true
	}
	if a != a { // NaN self-comparison idiom: allowed.
		return true
	}
	if a == 0 { // exact-zero sentinel: allowed.
		return true
	}
	if 0 != b { // exact-zero sentinel, reversed: allowed.
		return true
	}
	if a == math.Inf(1) { // Inf sentinel: allowed.
		return true
	}
	if math.Inf(-1) == b { // Inf sentinel, reversed: allowed.
		return true
	}
	if tol == 1e-9 { // both operands constant: allowed.
		return true
	}
	return n == 3 // integers: not this analyzer's business
}

func switches(a float64, n int) int {
	switch a { // want `switch on a floating-point value`
	case 1.5:
		return 1
	}
	switch n { // integer switch: allowed.
	case 2:
		return 2
	}
	switch { // tagless switch: allowed.
	case a > 0:
		return 3
	}
	return 0
}

// Eq is an epsilon helper: exact comparison inside is the fast path.
func Eq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

func annotated(a, b float64) bool {
	if a == b { //dualvet:allow floatcmp — exact total order needed here
		return true
	}
	//dualvet:allow floatcmp (directive on the line above also suppresses)
	return a != b
}
