// Golden cases for the lockorder analyzer.
package lockorder

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

// Stats is a public entry point that takes the shard lock itself.
func (s *shard) Stats() int { s.mu.Lock(); defer s.mu.Unlock(); return s.n }

func (s *shard) statsLocked() int { return s.n }

func (s *shard) bad() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Stats() // want `s\.Stats\(\) is called while s's mutex is held`
}

func (s *shard) good() int {
	s.mu.Lock()
	n := s.statsLocked() // unexported *Locked helper: allowed
	s.mu.Unlock()
	return n + s.Stats() // lock released before the call: allowed
}

func (s *shard) windowReopened() int {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Stats() // want `s\.Stats\(\) is called while s's mutex is held`
}

type pool struct {
	shards []*shard
	mu     sync.RWMutex
}

func (p *pool) crossValue(other *shard) int {
	p.shards[0].mu.Lock()
	defer p.shards[0].mu.Unlock()
	return other.Stats() // different value locked: allowed
}

func (p *pool) readLocked() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.Total() // want `p\.Total\(\) is called while p's mutex is held`
}

// Total is exported and takes the pool lock.
func (p *pool) Total() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, s := range p.shards {
		n += s.Stats() // no p/s lock event precedes in this function: allowed
	}
	return n
}

func (p *pool) annotated() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.LockFree() //dualvet:allow lockorder — LockFree takes no locks
}

// LockFree is exported and documented not to lock.
func (p *pool) LockFree() int { return len(p.shards) }

// The ROADMAP aliasing example: the local copy and the original path name
// the same shard, so the exported call re-acquires a held mutex.
func (p *pool) aliasedLockThenPath(i int) int {
	s := p.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return p.shards[i].Stats() // want `p\.shards\[i\]\.Stats\(\) is called while p\.shards\[i\]'s mutex is held`
}

func (p *pool) pathLockThenAlias(i int) int {
	p.shards[i].mu.Lock()
	defer p.shards[i].mu.Unlock()
	s := p.shards[i]
	return s.Stats() // want `s\.Stats\(\) is called while s's mutex is held`
}

func (p *pool) aliasDistinctIndex(i, j int) int {
	s := p.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return p.shards[j].Stats() // different shard locked: allowed
}

func (p *pool) aliasReassigned(i, j int) int {
	s := p.shards[i]
	s = p.shards[j]
	s.mu.Lock()
	defer s.mu.Unlock()
	return p.shards[i].Stats() // s no longer certainly names shard i: allowed
}

// May-held on one branch is enough: the else path reaches the call with
// the mutex still locked.
func (s *shard) unlockOneBranchOnly(cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
	}
	return s.Stats() // want `s\.Stats\(\) is called while s's mutex is held`
}

func (s *shard) unlockBothBranches(cond bool) int {
	s.mu.Lock()
	if cond {
		s.n++
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	return s.Stats() // released on every path before the call: allowed
}

func (s *shard) lockInLoopBody(rounds int) int {
	n := 0
	for i := 0; i < rounds; i++ {
		s.mu.Lock()
		n += s.statsLocked()
		s.mu.Unlock()
	}
	return n + s.Stats() // balanced inside the loop: allowed
}
