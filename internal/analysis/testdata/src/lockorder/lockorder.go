// Golden cases for the lockorder analyzer.
package lockorder

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

// Stats is a public entry point that takes the shard lock itself.
func (s *shard) Stats() int { s.mu.Lock(); defer s.mu.Unlock(); return s.n }

func (s *shard) statsLocked() int { return s.n }

func (s *shard) bad() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Stats() // want `s\.Stats\(\) is called while s's mutex is held`
}

func (s *shard) good() int {
	s.mu.Lock()
	n := s.statsLocked() // unexported *Locked helper: allowed
	s.mu.Unlock()
	return n + s.Stats() // lock released before the call: allowed
}

func (s *shard) windowReopened() int {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Stats() // want `s\.Stats\(\) is called while s's mutex is held`
}

type pool struct {
	shards []*shard
	mu     sync.RWMutex
}

func (p *pool) crossValue(other *shard) int {
	p.shards[0].mu.Lock()
	defer p.shards[0].mu.Unlock()
	return other.Stats() // different value locked: allowed
}

func (p *pool) readLocked() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.Total() // want `p\.Total\(\) is called while p's mutex is held`
}

// Total is exported and takes the pool lock.
func (p *pool) Total() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, s := range p.shards {
		n += s.Stats() // no p/s lock event precedes in this function: allowed
	}
	return n
}

func (p *pool) annotated() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.LockFree() //dualvet:allow lockorder — LockFree takes no locks
}

// LockFree is exported and documented not to lock.
func (p *pool) LockFree() int { return len(p.shards) }
