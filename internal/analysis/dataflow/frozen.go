package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The frozen engine statically pins the MVCC handoff rule: a value is
// mutable from its construction site up to the moment it is published
// through an atomic cell (`roots.Store(rs)`), and immutable ever after —
// on the publishing goroutine too, because readers may already hold it.
// The analysis tracks, per CFG point, the set of canonical roots known to
// be published ("frozen"), together with where and how they were
// published. Any store through a frozen root — or through a
// single-assignment alias the alias map resolves back under it — is a
// violation. Values obtained *from* an atomic cell (Load, Swap's previous
// value) are frozen at birth: whoever published them may still read them
// concurrently.
//
// Interprocedurally a PubSummary records which flattened parameters a
// function publishes and which results it returns already-published, so
// `publishLocked(rs)` freezes the caller's rs and `pinRoots()`' result
// arrives frozen without the caller seeing an atomic operation.

// PubSummary is one function's publication behaviour.
type PubSummary struct {
	// Params lists flattened parameter indices the function may publish
	// (store into an atomic cell, directly or via a callee).
	Params []int `json:"params,omitempty"`
	// Results lists result indices that carry already-published values on
	// some path (atomic Load/Swap results, republished parameters, or a
	// value the function itself constructed and published before return).
	Results []int `json:"results,omitempty"`
}

func (s PubSummary) interesting() bool {
	return len(s.Params) > 0 || len(s.Results) > 0
}

func (s PubSummary) sameShape(o PubSummary) bool {
	if len(s.Params) != len(o.Params) || len(s.Results) != len(o.Results) {
		return false
	}
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range s.Results {
		if s.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

// FreezeSpec configures the frozen engine.
type FreezeSpec struct {
	// Summaries resolves a callee's publication summary (local bank first,
	// then imported vetx banks). A miss means the callee neither publishes
	// nor returns published values.
	Summaries func(fn *types.Func) (PubSummary, bool)
}

// FrozenViolation is one store through a published value.
type FrozenViolation struct {
	// Write is the offending statement (assignment or ++/--).
	Write ast.Node
	// Canon is the canonical path being written through; Root is the frozen
	// root it resolves under.
	Canon string
	Root  string
	// Pub is the publication position and Via its printable source
	// ("ix.roots.Store", "publishLocked", "atomic load").
	Pub token.Pos
	Via string
	// InGo marks a write inside a `go` closure launched after publication.
	InGo bool
}

// frozenState describes one published root.
type frozenState struct {
	pub token.Pos
	via string
}

// frozenFact maps canonical roots to their publication. May-analysis:
// frozen on some path means writes are unsafe.
type frozenFact map[string]frozenState

type frozenLattice struct{}

func (frozenLattice) Bottom() frozenFact { return nil }

func (frozenLattice) Clone(f frozenFact) frozenFact {
	if f == nil {
		return nil
	}
	c := make(frozenFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func (frozenLattice) Join(dst, src frozenFact) (frozenFact, bool) {
	changed := false
	for k, v := range src {
		old, ok := dst[k]
		if !ok || v.pub < old.pub {
			if dst == nil {
				dst = make(frozenFact, len(src))
			}
			dst[k] = v
			changed = true
		}
	}
	return dst, changed
}

type freezeEngine struct {
	info *types.Info
	al   *Aliases
	spec FreezeSpec
	cfg  *CFG

	paramKeys []string
	// pubParams/retPub accumulate summary facts; both only grow as the
	// may-facts grow, so collecting across fixpoint sweeps is stable.
	pubParams map[int]bool
	retPub    map[int]bool

	violations map[token.Pos]FrozenViolation
}

// FindFrozenViolations runs the frozen-after-publish analysis over one
// function body and returns its violations in source order. al must be the
// body's alias map.
func FindFrozenViolations(body *ast.BlockStmt, info *types.Info, al *Aliases, spec FreezeSpec) []FrozenViolation {
	eng := newFreezeEngine(body, info, al, spec, nil)
	eng.run()
	eng.replay()
	return eng.sortedViolations()
}

func newFreezeEngine(body *ast.BlockStmt, info *types.Info, al *Aliases, spec FreezeSpec, params []*types.Var) *freezeEngine {
	e := &freezeEngine{
		info:       info,
		al:         al,
		spec:       spec,
		cfg:        New(body),
		pubParams:  make(map[int]bool),
		retPub:     make(map[int]bool),
		violations: make(map[token.Pos]FrozenViolation),
	}
	for _, p := range params {
		e.paramKeys = append(e.paramKeys, objKey(p))
	}
	return e
}

func (e *freezeEngine) run() []frozenFact {
	return Forward[frozenFact](e.cfg, frozenLattice{}, func(b *Block, f frozenFact) frozenFact {
		return e.transfer(b, f, false)
	})
}

func (e *freezeEngine) replay() {
	in := e.run()
	lat := frozenLattice{}
	for _, b := range e.cfg.Blocks {
		if !b.Live {
			continue
		}
		e.transfer(b, lat.Clone(in[b.Index]), true)
	}
}

func (e *freezeEngine) sortedViolations() []FrozenViolation {
	out := make([]FrozenViolation, 0, len(e.violations))
	for _, v := range e.violations {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Write.Pos() < out[j].Write.Pos() })
	return out
}

func (e *freezeEngine) transfer(b *Block, f frozenFact, report bool) frozenFact {
	for _, n := range b.Nodes {
		f = e.node(f, n, report)
	}
	return f
}

func (e *freezeEngine) node(f frozenFact, n ast.Node, report bool) frozenFact {
	switch n := n.(type) {
	case *ast.GoStmt:
		if report {
			// The goroutine body runs after launch; any write it makes
			// through a value frozen at the launch point is a violation.
			e.scanGoBody(f, n)
		}
		f = e.applyCalls(f, n.Call, report)
		return f
	case *ast.AssignStmt:
		if report {
			e.checkWrite(f, n, n.Lhs)
		}
		f = e.applyCalls(f, n, report)
		// Publication-bearing right-hand sides freeze their targets.
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Rhs {
				f = e.assignOne(f, n.Lhs[i], n.Rhs[i])
			}
		} else if len(n.Rhs) == 1 {
			f = e.assignMulti(f, n.Lhs, n.Rhs[0])
		}
		// A plain-identifier rebind repoints the local: the frozen object is
		// untouched and the name no longer refers to it.
		for i, lhs := range n.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if len(n.Lhs) == len(n.Rhs) && e.publishes(n.Rhs[i]) {
				continue
			}
			if f != nil {
				c := e.al.Canon(id)
				if _, frozen := f[c]; frozen && !e.frozenRhs(f, n, i) {
					delete(f, c)
				}
			}
		}
		return f
	case *ast.IncDecStmt:
		if report {
			e.checkWrite(f, n, []ast.Expr{n.X})
		}
		return f
	}
	f = e.applyCalls(f, n, report)
	if report {
		// Non-go function literals execute later under unknown conditions;
		// writes through values already frozen here stay violations.
		for _, fl := range funcLitsUnder(n) {
			e.scanLitBody(f, fl.Body, false)
		}
	}
	return f
}

// frozenRhs reports whether the i-th assignment keeps the name frozen: the
// right-hand side itself resolves under a frozen root (re-aliasing one
// published value to another name).
func (e *freezeEngine) frozenRhs(f frozenFact, n *ast.AssignStmt, i int) bool {
	if len(n.Lhs) != len(n.Rhs) {
		return false
	}
	_, _, frozen := frozenUnder(f, e.al.Canon(n.Rhs[i]))
	return frozen
}

// assignOne applies the freeze effect of a single assignment pair.
func (e *freezeEngine) assignOne(f frozenFact, lhs, rhs ast.Expr) frozenFact {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return f
	}
	if name, isCell := atomicCellOp(e.info, call); isCell && (name == "Load" || name == "Swap" || name == "CompareAndSwap") {
		if name == "CompareAndSwap" {
			return f // result is a bool
		}
		// The loaded (or swapped-out) value is published property.
		return e.freezeLhs(f, lhs, call.Pos(), "atomic "+strings.ToLower(name))
	}
	if fn := Callee(e.info, call); fn != nil && e.spec.Summaries != nil {
		if sum, ok := e.spec.Summaries(fn); ok && len(sum.Results) > 0 {
			// Single-assignment form: only a single-result callee aligns here.
			for _, ri := range sum.Results {
				if ri == 0 {
					f = e.freezeLhs(f, lhs, call.Pos(), fn.Name())
				}
			}
		}
	}
	return f
}

// assignMulti applies freeze effects of `a, b := call()`.
func (e *freezeEngine) assignMulti(f frozenFact, lhs []ast.Expr, rhs ast.Expr) frozenFact {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return f
	}
	fn := Callee(e.info, call)
	if fn == nil || e.spec.Summaries == nil {
		return f
	}
	sum, ok := e.spec.Summaries(fn)
	if !ok {
		return f
	}
	for _, ri := range sum.Results {
		if ri >= 0 && ri < len(lhs) {
			f = e.freezeLhs(f, lhs[ri], call.Pos(), fn.Name())
		}
	}
	return f
}

func (e *freezeEngine) freezeLhs(f frozenFact, lhs ast.Expr, pub token.Pos, via string) frozenFact {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return f
	}
	return e.freeze(f, e.al.Canon(id), pub, via)
}

func (e *freezeEngine) freeze(f frozenFact, canon string, pub token.Pos, via string) frozenFact {
	if strings.Contains(canon, "‹") {
		return f
	}
	if f == nil {
		f = make(frozenFact)
	}
	if old, ok := f[canon]; !ok || pub < old.pub {
		f[canon] = frozenState{pub: pub, via: via}
	}
	return f
}

// publishes reports whether rhs is an atomic read (used to keep rebinds
// like `rs = ix.roots.Load()` frozen rather than strongly updated).
func (e *freezeEngine) publishes(rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	name, isCell := atomicCellOp(e.info, call)
	if isCell && (name == "Load" || name == "Swap") {
		return true
	}
	if fn := Callee(e.info, call); fn != nil && e.spec.Summaries != nil {
		if sum, ok := e.spec.Summaries(fn); ok {
			for _, ri := range sum.Results {
				if ri == 0 {
					return true
				}
			}
		}
	}
	return false
}

// applyCalls walks the calls under n in evaluation order, applying direct
// atomic publications and callee publication summaries.
func (e *freezeEngine) applyCalls(f frozenFact, n ast.Node, report bool) frozenFact {
	WalkShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v, pos, isPub := atomicPublishArg(e.info, call); isPub {
			via := "atomic store"
			if sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); okSel {
				via = types.ExprString(sel.X) + "." + sel.Sel.Name
			}
			canon := e.al.Canon(v)
			f = e.freeze(f, canon, pos, via)
			e.noteParamPub(canon)
			return true
		}
		fn := Callee(e.info, call)
		if fn == nil || e.spec.Summaries == nil {
			return true
		}
		sum, ok := e.spec.Summaries(fn)
		if !ok {
			return true
		}
		if args, aligned := FlatArgs(e.info, call, fn); aligned {
			for _, pi := range sum.Params {
				if pi >= 0 && pi < len(args) {
					canon := e.al.Canon(args[pi])
					f = e.freeze(f, canon, call.Pos(), fn.Name())
					e.noteParamPub(canon)
				}
			}
		}
		return true
	})
	// Return statements feed the Results side of the summary: a returned
	// expression that is frozen here leaves the function already published.
	if ret, ok := n.(*ast.ReturnStmt); ok {
		for i, res := range ret.Results {
			if _, _, frozen := frozenUnder(f, e.al.Canon(res)); frozen {
				e.retPub[i] = true
			}
		}
	}
	return f
}

// noteParamPub records a parameter publication for the summary.
func (e *freezeEngine) noteParamPub(canon string) {
	for i, key := range e.paramKeys {
		if canon == key {
			e.pubParams[i] = true
		}
	}
}

// checkWrite reports stores through frozen roots.
func (e *freezeEngine) checkWrite(f frozenFact, n ast.Node, targets []ast.Expr) {
	if len(f) == 0 {
		return
	}
	for _, t := range targets {
		if _, isIdent := ast.Unparen(t).(*ast.Ident); isIdent {
			continue // rebind, handled as a strong update
		}
		c := e.writeCanon(t)
		root, st, frozen := frozenUnder(f, c)
		if !frozen {
			continue
		}
		if _, dup := e.violations[n.Pos()]; !dup {
			e.violations[n.Pos()] = FrozenViolation{
				Write: n, Canon: c, Root: root, Pub: st.pub, Via: st.via,
			}
		}
	}
}

// scanGoBody reports writes inside a launched goroutine through values
// frozen at the launch point.
func (e *freezeEngine) scanGoBody(f frozenFact, g *ast.GoStmt) {
	for _, fl := range funcLitsUnder(g) {
		e.scanLitBody(f, fl.Body, true)
	}
}

func (e *freezeEngine) scanLitBody(f frozenFact, body *ast.BlockStmt, inGo bool) {
	if len(f) == 0 {
		return
	}
	ast.Inspect(body, func(m ast.Node) bool {
		var targets []ast.Expr
		switch m := m.(type) {
		case *ast.AssignStmt:
			targets = m.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{m.X}
		default:
			return true
		}
		for _, t := range targets {
			if _, isIdent := ast.Unparen(t).(*ast.Ident); isIdent {
				continue
			}
			c := e.writeCanon(t)
			root, st, frozen := frozenUnder(f, c)
			if !frozen {
				continue
			}
			if _, dup := e.violations[m.Pos()]; !dup {
				e.violations[m.Pos()] = FrozenViolation{
					Write: m.(ast.Node), Canon: c, Root: root, Pub: st.pub, Via: st.via, InGo: inGo,
				}
			}
		}
		return true
	})
}

// writeCanon resolves a write target to its most specific resolvable
// canonical path, peeling wrappers until the alias map can name it.
func (e *freezeEngine) writeCanon(t ast.Expr) string {
	for {
		c := e.al.Canon(t)
		if !strings.Contains(c, "‹") {
			return c
		}
		switch x := t.(type) {
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.StarExpr:
			t = x.X
		case *ast.SelectorExpr:
			t = x.X
		default:
			return c
		}
	}
}

// frozenUnder resolves a canonical path against the frozen roots: the path
// itself, or any dotted/indexed extension of a frozen root, is frozen.
func frozenUnder(f frozenFact, canon string) (string, frozenState, bool) {
	if strings.Contains(canon, "‹") {
		return "", frozenState{}, false
	}
	if st, ok := f[canon]; ok {
		return canon, st, true
	}
	for root, st := range f {
		if strings.HasPrefix(canon, root+".") || strings.HasPrefix(canon, root+"[") {
			return root, st, true
		}
	}
	return "", frozenState{}, false
}

// summary reads the function's publication summary off the collected
// parameter and return facts.
func (e *freezeEngine) summary() PubSummary {
	var s PubSummary
	for i := range e.pubParams {
		s.Params = append(s.Params, i)
	}
	for i := range e.retPub {
		s.Results = append(s.Results, i)
	}
	sort.Ints(s.Params)
	sort.Ints(s.Results)
	return s
}

// ComputeFreezeSummaries computes one publication summary per declared
// function, bottom-up over the call graph's SCCs. Publication facts only
// grow, so the sweep converges; an SCC exceeding its budget falls back to
// "publishes nothing" (sound for reports — callers simply lose the
// interprocedural freeze).
func ComputeFreezeSummaries(cg *CallGraph, info *types.Info, spec FreezeSpec, imported map[string]PubSummary) (map[*types.Func]PubSummary, SummaryStats) {
	sums := make(map[*types.Func]PubSummary, len(cg.Order))
	stats := SummaryStats{Functions: len(cg.Order)}
	spec.Summaries = func(fn *types.Func) (PubSummary, bool) {
		if s, ok := sums[fn]; ok {
			return s, true
		}
		s, ok := imported[fn.FullName()]
		return s, ok
	}
	for _, comp := range cg.SCCs {
		recursive := len(comp) > 1 || selfCalls(cg, comp[0])
		for _, fn := range comp {
			sums[fn] = PubSummary{}
		}
		bound := sccIterBound(len(comp))
		iters, bailed := 0, false
		for {
			iters++
			changed := false
			for _, fn := range comp {
				ns := summarizeFreeze(cg.Funcs[fn], info, spec)
				if !ns.sameShape(sums[fn]) {
					changed = true
				}
				sums[fn] = ns
			}
			if !changed || !recursive {
				break
			}
			if iters >= bound {
				bailed = true
				for _, fn := range comp {
					delete(sums, fn)
				}
				break
			}
		}
		stats.observe(iters, bailed)
	}
	return sums, stats
}

func summarizeFreeze(fi *FuncInfo, info *types.Info, spec FreezeSpec) PubSummary {
	body := fi.Decl.Body
	eng := newFreezeEngine(body, info, NewAliases(body, info), spec, flatParams(fi.Fn))
	eng.run()
	return eng.summary()
}
