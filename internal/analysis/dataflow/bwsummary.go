package dataflow

import (
	"go/ast"
	"go/types"
	"sort"
)

// ComputeBorrowSummaries computes one borrow summary per declared function
// of a package unit, bottom-up over the call graph. Two facts are derived:
// which lender-typed parameters a function may release (phase 1, reusing the
// obligation engine with a lender-as-resource spec so release effects
// propagate transitively), and which results are views borrowed from which
// parameters (phase 2, an SCC fixpoint over the borrow engine so
// `return helper(n)` provenance chains resolve). imported supplies
// cross-package summaries keyed by types.Func.FullName.
func ComputeBorrowSummaries(cg *CallGraph, info *types.Info, spec BorrowSpec, imported map[string]BorrowSummary) (map[*types.Func]BorrowSummary, SummaryStats) {
	// Phase 1: lender release effects.
	derivedImported := make(map[string]ObSummary, len(imported))
	for name, s := range imported {
		derivedImported[name] = ObSummary{Params: s.Params, Result: -1, Err: -1}
	}
	derived := LeakSpec{
		Source:     func(*ast.CallExpr) (int, int, bool) { return 0, 0, false },
		IsRelease:  spec.IsRelease,
		IsResource: spec.IsLender,
	}
	obs, stats := ComputeObSummaries(cg, info, derived, derivedImported)

	sums := make(map[*types.Func]BorrowSummary, len(cg.Order))
	for _, fn := range cg.Order {
		if os, ok := obs[fn]; ok {
			sums[fn] = BorrowSummary{Params: os.Params}
		} else {
			sums[fn] = BorrowSummary{}
		}
	}

	// Phase 2: result provenance, optimistically empty, grown to fixpoint
	// per SCC (provenance sets only grow as callee summaries grow).
	spec.Summaries = func(fn *types.Func) (BorrowSummary, bool) {
		if s, ok := sums[fn]; ok {
			return s, true
		}
		s, ok := imported[fn.FullName()]
		return s, ok
	}
	for _, comp := range cg.SCCs {
		recursive := len(comp) > 1 || selfCalls(cg, comp[0])
		bound := sccIterBound(len(comp))
		iters, bailed := 0, false
		for {
			iters++
			changed := false
			for _, fn := range comp {
				results := summarizeBorrowResults(cg.Funcs[fn], info, spec)
				ns := BorrowSummary{Params: sums[fn].Params, Results: results}
				if !ns.sameShape(sums[fn]) {
					changed = true
				}
				sums[fn] = ns
			}
			if !changed || !recursive {
				break
			}
			if iters >= bound {
				bailed = true
				for _, fn := range comp {
					sums[fn] = BorrowSummary{Params: sums[fn].Params}
				}
				break
			}
		}
		stats.observe(iters, bailed)
	}
	return sums, stats
}

// summarizeBorrowResults runs the borrow engine over one function and reads
// result→parameter provenance off its return statements: a returned view
// whose lender set names a parameter borrows from that parameter.
func summarizeBorrowResults(fi *FuncInfo, info *types.Info, spec BorrowSpec) [][]int {
	params := flatParams(fi.Fn)
	if len(params) == 0 {
		return nil
	}
	paramIdx := make(map[string]int, len(params))
	for i, p := range params {
		if spec.IsLender != nil && spec.IsLender(p.Type()) && p.Name() != "" && p.Name() != "_" {
			paramIdx[objKey(p)] = i
		}
	}
	if len(paramIdx) == 0 {
		return nil
	}

	sig := fi.Fn.Type().(*types.Signature)
	nres := sig.Results().Len()
	if nres == 0 {
		return nil
	}
	acc := make([]map[int]bool, nres)
	record := func(res int, param int) {
		if res < 0 || res >= nres {
			return
		}
		if acc[res] == nil {
			acc[res] = make(map[int]bool)
		}
		acc[res][param] = true
	}

	body := fi.Decl.Body
	cfg := New(body)
	eng := &bwEngine{spec: spec, info: info, al: NewAliases(body, info)}
	eng.onReturn = func(f bwFact, n *ast.ReturnStmt) {
		for i, r := range n.Results {
			ru := ast.Unparen(r)
			if call, isCall := ru.(*ast.CallExpr); isCall {
				// `return t.leafView(leaf)`: pass-through provenance — the
				// callee's lenders that are (or alias) parameters flow out.
				lenders, resIdx, isB := eng.borrowOf(call)
				if !isB {
					continue
				}
				out := i
				if len(n.Results) == 1 {
					out = resIdx
				}
				for _, l := range lenders {
					if pi, okP := paramIdx[eng.al.Canon(l)]; okP {
						record(out, pi)
					}
				}
				continue
			}
			if !isPathExpr(ru) {
				continue
			}
			st := viewHolder(f, eng.al.Canon(ru))
			if st == nil {
				continue
			}
			for ln := range st.lenderNames {
				if pi, okP := paramIdx[ln]; okP {
					record(i, pi)
				}
			}
		}
	}
	in := Forward[bwFact](cfg, bwLattice{}, eng.transfer)
	_ = in

	var out [][]int
	for res, set := range acc {
		if len(set) == 0 {
			continue
		}
		if out == nil {
			out = make([][]int, nres)
		}
		ps := make([]int, 0, len(set))
		for p := range set {
			ps = append(ps, p)
		}
		sort.Ints(ps)
		out[res] = ps
	}
	return out
}
