package dataflow

import (
	"go/ast"
	"go/types"
)

// ParamEffect describes, as a may-analysis bitmask, what a callee can do with
// an obligation-carrying value passed in a given parameter position. Join is
// bitwise OR: each bit records that the behavior occurs on at least one path.
type ParamEffect uint8

const (
	// EffKeep: some path through the callee leaves the obligation with the
	// caller — the callee neither released nor took ownership there.
	EffKeep ParamEffect = 1 << iota
	// EffRelease: some path releases the obligation (calls the discipline's
	// release operation on the value or hands it to a releasing callee).
	EffRelease
	// EffEscape: some path takes ownership — the value is stored, returned,
	// captured by a closure, or handed to an unknown callee.
	EffEscape
)

// TopEffect is the summary effect assumed for unknown or external callees:
// ownership is presumed transferred (so the caller is not blamed for a leak
// the helper may well handle) but no release is presumed (so borrows held
// against the value are not spuriously invalidated). This reproduces the
// intra-procedural engine's treatment of every call, making the interprocedural
// analysis a strict refinement for known callees.
const TopEffect = EffEscape

// Discharges reports whether the effect lets the caller drop the obligation:
// every path through the callee released or took ownership of the value.
func (e ParamEffect) Discharges() bool { return e&EffKeep == 0 }

// Conditional reports a "conditionally releases" callee: the obligation is
// discharged on some paths but left with the caller on others.
func (e ParamEffect) Conditional() bool {
	return e&EffKeep != 0 && e&(EffRelease|EffEscape) != 0
}

// ObSummary is one function's obligation summary for one discipline
// (pin/frame, span, ...).
type ObSummary struct {
	// Params holds one effect per flattened parameter (method receiver at
	// index 0, then declared parameters). Parameters whose type is not a
	// resource of the discipline carry effect 0 and are ignored by callers.
	Params []ParamEffect `json:"params,omitempty"`
	// Chains holds, per parameter, the local call chain justifying a kept or
	// conditional effect ("g" called "h" which held the value), capped at
	// chainCap hops. Chains are diagnostic garnish only: convergence checks
	// ignore them.
	Chains [][]string `json:"chains,omitempty"`
	// Result is the flattened index of a result value that carries a fresh
	// obligation the caller must discharge, or -1 (the function is then not a
	// source). At most one result is tracked, matching LeakSpec.Source.
	Result int `json:"result"`
	// Err is the index of the error result paired with Result (the
	// obligation is waived when that error is non-nil), or -1.
	Err int `json:"err"`
}

// chainCap bounds per-parameter diagnostic chains so recursive summaries
// cannot grow them without bound.
const chainCap = 3

// effectFor returns the recorded effect for flattened parameter i, or
// TopEffect when the summary does not cover that position (variadic overflow
// arguments map to the variadic slot).
func (s ObSummary) effectFor(i int) ParamEffect {
	if i < 0 || i >= len(s.Params) {
		return TopEffect
	}
	return s.Params[i]
}

func (s ObSummary) chainFor(i int) []string {
	if i < 0 || i >= len(s.Chains) {
		return nil
	}
	return s.Chains[i]
}

// interesting reports whether the summary says anything a caller could not
// assume from TopEffect alone — only interesting summaries are serialized.
func (s ObSummary) interesting() bool {
	if s.Result >= 0 {
		return true
	}
	for _, p := range s.Params {
		if p != 0 {
			return true
		}
	}
	return false
}

// sameShape compares the convergence-relevant parts of two summaries
// (chains excluded: they are derived diagnostics and may re-order inside an
// SCC without affecting the fixpoint).
func (s ObSummary) sameShape(o ObSummary) bool {
	if s.Result != o.Result || s.Err != o.Err || len(s.Params) != len(o.Params) {
		return false
	}
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	return true
}

// BorrowSummary records how a function interacts with a borrow discipline:
// which results are views borrowed from which parameters, and which lender
// parameters the function may release.
type BorrowSummary struct {
	// Params carries EffRelease for lender-typed parameters the function may
	// release on some path (other bits are not meaningful for borrows).
	Params []ParamEffect `json:"params,omitempty"`
	// Results maps each result index to the flattened parameter indices it
	// borrows from (empty for results that are not views of a parameter).
	Results [][]int `json:"results,omitempty"`
}

func (s BorrowSummary) releases(i int) bool {
	return i >= 0 && i < len(s.Params) && s.Params[i]&EffRelease != 0
}

func (s BorrowSummary) lendersOf(res int) []int {
	if res < 0 || res >= len(s.Results) {
		return nil
	}
	return s.Results[res]
}

func (s BorrowSummary) interesting() bool {
	for _, p := range s.Params {
		if p&EffRelease != 0 {
			return true
		}
	}
	for _, r := range s.Results {
		if len(r) > 0 {
			return true
		}
	}
	return false
}

func (s BorrowSummary) sameShape(o BorrowSummary) bool {
	if len(s.Params) != len(o.Params) || len(s.Results) != len(o.Results) {
		return false
	}
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range s.Results {
		if len(s.Results[i]) != len(o.Results[i]) {
			return false
		}
		for j := range s.Results[i] {
			if s.Results[i][j] != o.Results[i][j] {
				return false
			}
		}
	}
	return true
}

// TaintFlow describes how one result of a function acquires numeric taint.
type TaintFlow struct {
	// Intrinsic: the result may be non-finite regardless of the arguments
	// (the function manufactures an Inf internally).
	Intrinsic bool `json:"intrinsic,omitempty"`
	// Params lists flattened parameter indices whose taint flows into the
	// result.
	Params []int `json:"params,omitempty"`
}

func (f TaintFlow) empty() bool { return !f.Intrinsic && len(f.Params) == 0 }

// TaintSummary is a function's Inf-taint transfer: one flow per result.
type TaintSummary struct {
	Results []TaintFlow `json:"results,omitempty"`
}

func (s TaintSummary) interesting() bool {
	for _, f := range s.Results {
		if !f.empty() {
			return true
		}
	}
	return false
}

func (s TaintSummary) sameShape(o TaintSummary) bool {
	if len(s.Results) != len(o.Results) {
		return false
	}
	for i := range s.Results {
		a, b := s.Results[i], o.Results[i]
		if a.Intrinsic != b.Intrinsic || len(a.Params) != len(b.Params) {
			return false
		}
		for j := range a.Params {
			if a.Params[j] != b.Params[j] {
				return false
			}
		}
	}
	return true
}

// PackageSummaries is the serializable bank of function summaries one package
// unit exports into its vetx record and imports from its dependencies'.
// Functions are keyed by types.Func.FullName (e.g.
// "(dualcdb/internal/pagestore.Pool).Get"); obligation summaries are
// additionally keyed by discipline name so pinleak and spanleak do not collide.
// Only "interesting" summaries appear — a missing entry means TopEffect, which
// keeps records small and byte-stable for the warm-replay gate.
type PackageSummaries struct {
	Obligations map[string]map[string]ObSummary `json:"obligations,omitempty"`
	Borrows     map[string]BorrowSummary        `json:"borrows,omitempty"`
	Taint       map[string]TaintSummary         `json:"taint,omitempty"`
	// Locks holds lock summaries keyed by discipline (lockset and atomicpub
	// compute under different guard specs, so their banks stay apart).
	Locks map[string]map[string]LockSummary `json:"locks,omitempty"`
	// Publish holds publication (frozen-after-publish) summaries.
	Publish map[string]PubSummary `json:"publish,omitempty"`
}

func (p *PackageSummaries) Empty() bool {
	return p == nil || (len(p.Obligations) == 0 && len(p.Borrows) == 0 && len(p.Taint) == 0 &&
		len(p.Locks) == 0 && len(p.Publish) == 0)
}

// Merge folds q into p (p's entries win on collision, which cannot happen for
// well-formed banks: each function lives in exactly one unit).
func (p *PackageSummaries) Merge(q *PackageSummaries) {
	if q == nil {
		return
	}
	for disc, funcs := range q.Obligations {
		if p.Obligations == nil {
			p.Obligations = make(map[string]map[string]ObSummary)
		}
		dst := p.Obligations[disc]
		if dst == nil {
			dst = make(map[string]ObSummary)
			p.Obligations[disc] = dst
		}
		for name, s := range funcs {
			if _, dup := dst[name]; !dup {
				dst[name] = s
			}
		}
	}
	for name, s := range q.Borrows {
		if p.Borrows == nil {
			p.Borrows = make(map[string]BorrowSummary)
		}
		if _, dup := p.Borrows[name]; !dup {
			p.Borrows[name] = s
		}
	}
	for name, s := range q.Taint {
		if p.Taint == nil {
			p.Taint = make(map[string]TaintSummary)
		}
		if _, dup := p.Taint[name]; !dup {
			p.Taint[name] = s
		}
	}
	for disc, funcs := range q.Locks {
		if p.Locks == nil {
			p.Locks = make(map[string]map[string]LockSummary)
		}
		dst := p.Locks[disc]
		if dst == nil {
			dst = make(map[string]LockSummary)
			p.Locks[disc] = dst
		}
		for name, s := range funcs {
			if _, dup := dst[name]; !dup {
				dst[name] = s
			}
		}
	}
	for name, s := range q.Publish {
		if p.Publish == nil {
			p.Publish = make(map[string]PubSummary)
		}
		if _, dup := p.Publish[name]; !dup {
			p.Publish[name] = s
		}
	}
}

// AddObligations records the interesting entries of a computed summary map
// under one discipline, keyed by FullName, ready for Pass.Export.
func (p *PackageSummaries) AddObligations(discipline string, sums map[*types.Func]ObSummary) {
	for fn, s := range sums {
		if !s.interesting() {
			continue
		}
		if p.Obligations == nil {
			p.Obligations = make(map[string]map[string]ObSummary)
		}
		if p.Obligations[discipline] == nil {
			p.Obligations[discipline] = make(map[string]ObSummary)
		}
		p.Obligations[discipline][fn.FullName()] = s
	}
}

// AddBorrows records the interesting entries of a computed borrow summary map.
func (p *PackageSummaries) AddBorrows(sums map[*types.Func]BorrowSummary) {
	for fn, s := range sums {
		if !s.interesting() {
			continue
		}
		if p.Borrows == nil {
			p.Borrows = make(map[string]BorrowSummary)
		}
		p.Borrows[fn.FullName()] = s
	}
}

// AddTaint records the interesting entries of a computed taint summary map.
func (p *PackageSummaries) AddTaint(sums map[*types.Func]TaintSummary) {
	for fn, s := range sums {
		if !s.interesting() {
			continue
		}
		if p.Taint == nil {
			p.Taint = make(map[string]TaintSummary)
		}
		p.Taint[fn.FullName()] = s
	}
}

// AddLocks records the interesting entries of a computed lock summary map
// under one discipline.
func (p *PackageSummaries) AddLocks(discipline string, sums map[*types.Func]LockSummary) {
	for fn, s := range sums {
		if !s.interesting() {
			continue
		}
		if p.Locks == nil {
			p.Locks = make(map[string]map[string]LockSummary)
		}
		if p.Locks[discipline] == nil {
			p.Locks[discipline] = make(map[string]LockSummary)
		}
		p.Locks[discipline][fn.FullName()] = s
	}
}

// AddPublish records the interesting entries of a computed publication
// summary map.
func (p *PackageSummaries) AddPublish(sums map[*types.Func]PubSummary) {
	for fn, s := range sums {
		if !s.interesting() {
			continue
		}
		if p.Publish == nil {
			p.Publish = make(map[string]PubSummary)
		}
		p.Publish[fn.FullName()] = s
	}
}

// LocksFor returns the imported lock summaries for one discipline
// (nil-safe).
func (p *PackageSummaries) LocksFor(discipline string) map[string]LockSummary {
	if p == nil {
		return nil
	}
	return p.Locks[discipline]
}

// PublishBank returns the imported publication summaries (nil-safe).
func (p *PackageSummaries) PublishBank() map[string]PubSummary {
	if p == nil {
		return nil
	}
	return p.Publish
}

// ObligationsFor returns the imported obligation summaries for one discipline
// (nil-safe).
func (p *PackageSummaries) ObligationsFor(discipline string) map[string]ObSummary {
	if p == nil {
		return nil
	}
	return p.Obligations[discipline]
}

// BorrowBank returns the imported borrow summaries (nil-safe).
func (p *PackageSummaries) BorrowBank() map[string]BorrowSummary {
	if p == nil {
		return nil
	}
	return p.Borrows
}

// TaintBank returns the imported taint summaries (nil-safe).
func (p *PackageSummaries) TaintBank() map[string]TaintSummary {
	if p == nil {
		return nil
	}
	return p.Taint
}

// SummaryStats reports how summary computation over one package converged,
// for tests that bound the fixpoint.
type SummaryStats struct {
	Functions int // functions summarized
	SCCs      int // strongly connected components processed
	MaxIters  int // worst-case fixpoint sweeps over a single SCC
	Bailed    int // SCCs that hit the iteration bound and fell back to top
}

func (s *SummaryStats) observe(iters int, bailed bool) {
	s.SCCs++
	if iters > s.MaxIters {
		s.MaxIters = iters
	}
	if bailed {
		s.Bailed++
	}
}

// sccIterBound returns the fixpoint sweep budget for an SCC of n functions.
// Effect bits only ever turn on, so |lattice height| sweeps always suffice;
// the bound is a generous multiple that still catches a non-monotone bug.
func sccIterBound(n int) int { return 4 + 3*n }

// SCCIterBound is the exported fixpoint sweep budget, shared by analyzers
// that run their own summary fixpoints (infguard) and convergence tests.
func SCCIterBound(n int) int { return sccIterBound(n) }

// SameShape reports convergence-relevant equality, for analyzers running
// their own summary fixpoints.
func (s TaintSummary) SameShape(o TaintSummary) bool { return s.sameShape(o) }

// FlatParams returns the flattened parameter variables of fn (receiver
// first for methods) — the indexing every summary uses.
func FlatParams(fn *types.Func) []*types.Var { return flatParams(fn) }

// FlatArgs aligns a call's argument expressions with a callee summary's
// flattened parameter indexing: for a method call, the receiver expression is
// element 0. ok is false when the call shape cannot be aligned (method
// expressions, indirect calls) — callers then fall back to TopEffect
// handling. Variadic calls map trailing arguments onto the final parameter
// slot via flatIndex.
func FlatArgs(info *types.Info, call *ast.CallExpr, fn *types.Func) ([]ast.Expr, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, false
	}
	if sig.Recv() == nil {
		return call.Args, true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	// Only ordinary method values (x.M(...)) are aligned; a method
	// expression (T.M(x, ...)) has no Selections entry of kind MethodVal.
	if s := info.Selections[sel]; s == nil || s.Kind() != types.MethodVal {
		return nil, false
	}
	args := make([]ast.Expr, 0, len(call.Args)+1)
	args = append(args, sel.X)
	return append(args, call.Args...), true
}

// flatParams returns the flattened parameter variables of fn (receiver first
// for methods).
func flatParams(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// flatIndex clamps a flattened argument index to the callee's parameter
// count so variadic overflow arguments share the final slot's effect.
func flatIndex(fn *types.Func, i int) int {
	n := len(flatParams(fn))
	if n == 0 {
		return i
	}
	if i >= n {
		return n - 1
	}
	return i
}
