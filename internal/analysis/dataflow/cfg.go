// Package dataflow is the intra-procedural analysis engine underneath the
// dualvet analyzers: a control-flow graph built from go/ast function bodies,
// a forward fixpoint driver with pluggable lattices, a local alias map that
// resolves single-assignment copies (`s := p.shards[i]`) back to a canonical
// path, and a shared obligation engine for acquire/release disciplines
// (frame pins, trace spans).
//
// The CFG is purely syntactic — it needs no type information — so it can be
// built for any parseable function, including the repo-wide no-panic corpus
// test. Statements appear in basic blocks in evaluation order; structured
// control flow (if/for/range/switch/select), goto and labeled break/continue
// become edges. Two virtual blocks terminate the graph: Exit collects normal
// returns and the fall-off-the-end path, Halt collects paths that leave
// through panic, os.Exit, log.Fatal* or runtime.Goexit — leak checkers
// examine only Exit's predecessors.
//
// Condition refinement: the builder prefixes each if-branch (and for-loop
// body/exit) with a synthetic Assume node recording which way the condition
// went, so analyses can kill facts on, say, the `err != nil` arm of the
// standard error check.
package dataflow

import (
	"go/ast"
	"go/token"
)

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block, Entry first. Unreachable blocks (dead code
	// after a terminator) are kept so analyzers stay total, but carry
	// Live == false.
	Blocks []*Block
	Entry  *Block
	// Exit is the virtual block every normal return (and the fall-off-end
	// path of the body) flows into. It holds no nodes.
	Exit *Block
	// Halt is the virtual block for abnormal termination: panic, os.Exit,
	// log.Fatal*, runtime.Goexit. It holds no nodes.
	Halt *Block
	// Defers lists every defer statement in the body, in source order. The
	// statements also appear as nodes in their blocks, so flow-sensitive
	// analyses see where a defer is (or is not) registered.
	Defers []*ast.DeferStmt
}

// A Block is a straight-line sequence of nodes with no internal control
// transfer. Nodes holds, in evaluation order: simple statements, branch
// conditions (as bare expressions), synthetic Assume markers, and the
// RangeStmt/TypeSwitchStmt headers whose per-iteration bindings an analysis
// may want to model. Composite statements never appear whole — their pieces
// are distributed over blocks — so a transfer function can walk each node's
// subtree without double-visiting nested bodies (FuncLit subtrees excepted;
// see WalkShallow).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Live reports reachability from Entry; analyses skip dead blocks.
	Live bool
}

// Assume is a synthetic node recording that control reached its block only
// because Cond evaluated to true (Negated == false) or false (Negated ==
// true). It implements ast.Node so it can sit in Block.Nodes.
type Assume struct {
	Cond    ast.Expr
	Negated bool
}

// Pos implements ast.Node.
func (a *Assume) Pos() token.Pos { return a.Cond.Pos() }

// End implements ast.Node.
func (a *Assume) End() token.Pos { return a.Cond.End() }

// New builds the CFG of a function body.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cfg.Halt = b.newBlock()
	b.cur = b.cfg.Entry
	b.labels = make(map[string]*labelInfo)
	b.stmtList(body.List)
	// Fall off the end of the body: an implicit return.
	b.jump(b.cfg.Exit)
	b.resolveGotos()
	markLive(b.cfg)
	return b.cfg
}

// labelInfo tracks one label: the block a goto/labeled-statement enters,
// and, when the label names a loop/switch/select, its break and continue
// targets.
type labelInfo struct {
	target     *Block // statement entry; created lazily for forward gotos
	breakTo    *Block
	continueTo *Block
}

// targets is one entry of the break/continue resolution stack.
type targets struct {
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type builder struct {
	cfg    *CFG
	cur    *Block // nil never: after a terminator cur is a fresh dead block
	stack  []targets
	labels map[string]*labelInfo
	// pendingLabel is the label of the immediately enclosing LabeledStmt,
	// consumed by the loop/switch it labels.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge adds cur → to.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target and starts a fresh
// (initially unreachable) block for whatever follows.
func (b *builder) jump(target *Block) {
	edge(b.cur, target)
	b.cur = b.newBlock()
}

func (b *builder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		b.jump(li.target)
		b.cur = li.target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && terminatesFlow(call) {
			b.jump(b.cfg.Halt)
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, GoStmt, IncDecStmt, SendStmt, ...
		b.add(s)
	}
}

// label returns (creating on demand) the info for a label name, so forward
// gotos can reference blocks before the labeled statement is reached.
func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{target: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.breakTo != nil {
				b.jump(li.breakTo)
				return
			}
		}
		for i := len(b.stack) - 1; i >= 0; i-- {
			if b.stack[i].breakTo != nil {
				b.jump(b.stack[i].breakTo)
				return
			}
		}
		b.jump(b.cfg.Exit) // malformed; stay total

	case token.CONTINUE:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.continueTo != nil {
				b.jump(li.continueTo)
				return
			}
		}
		for i := len(b.stack) - 1; i >= 0; i-- {
			if b.stack[i].continueTo != nil {
				b.jump(b.stack[i].continueTo)
				return
			}
		}
		b.jump(b.cfg.Exit)

	case token.GOTO:
		if s.Label != nil {
			b.jump(b.label(s.Label.Name).target)
			return
		}
		b.jump(b.cfg.Exit)

	case token.FALLTHROUGH:
		// Handled by switchStmt (the clause's end flows into the next
		// clause body); here it is a no-op so a stray fallthrough cannot
		// break the builder.
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur

	then := b.newBlock()
	then.Nodes = append(then.Nodes, &Assume{Cond: s.Cond})
	edge(head, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	after := b.newBlock()
	if s.Else != nil {
		els := b.newBlock()
		els.Nodes = append(els.Nodes, &Assume{Cond: s.Cond, Negated: true})
		edge(head, els)
		b.cur = els
		b.stmt(s.Else)
		edge(b.cur, after)
	} else {
		els := b.newBlock()
		els.Nodes = append(els.Nodes, &Assume{Cond: s.Cond, Negated: true})
		edge(head, els)
		edge(els, after)
	}
	edge(thenEnd, after)
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.jump(head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}

	body := b.newBlock()
	after := b.newBlock()
	post := b.newBlock()
	if s.Cond != nil {
		body.Nodes = append(body.Nodes, &Assume{Cond: s.Cond})
		after.Nodes = append(after.Nodes, &Assume{Cond: s.Cond, Negated: true})
		edge(head, after)
	}
	edge(head, body)

	if label != "" {
		li := b.label(label)
		li.breakTo, li.continueTo = after, post
	}
	b.stack = append(b.stack, targets{breakTo: after, continueTo: post})
	b.cur = body
	b.stmtList(s.Body.List)
	edge(b.cur, post)
	b.stack = b.stack[:len(b.stack)-1]

	b.cur = post
	if s.Post != nil {
		b.add(s.Post)
	}
	edge(b.cur, head)
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.newBlock()
	b.jump(head)
	b.cur = head
	// The RangeStmt itself is the per-iteration node: analyses model the
	// key/value bindings from it. WalkShallow does not descend into its
	// body, which lives in the blocks below.
	b.add(s)

	body := b.newBlock()
	after := b.newBlock()
	edge(head, body)
	edge(head, after)

	if label != "" {
		li := b.label(label)
		li.breakTo, li.continueTo = after, head
	}
	b.stack = append(b.stack, targets{breakTo: after, continueTo: head})
	b.cur = body
	b.stmtList(s.Body.List)
	edge(b.cur, head)
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	after := b.newBlock()
	if label != "" {
		b.label(label).breakTo = after
	}
	b.stack = append(b.stack, targets{breakTo: after})

	// First pass: one body block per clause so fallthrough can target the
	// next clause positionally.
	clauses := make([]*ast.CaseClause, 0, len(s.Body.List))
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	for i, cc := range clauses {
		guard := b.newBlock()
		edge(head, guard)
		for _, e := range cc.List {
			guard.Nodes = append(guard.Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		edge(guard, bodies[i])
	}
	if !hasDefault {
		edge(head, after)
	}
	for i, cc := range clauses {
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		if i+1 < len(bodies) && endsInFallthrough(cc.Body) {
			edge(b.cur, bodies[i+1])
			b.cur = b.newBlock()
		} else {
			edge(b.cur, after)
		}
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.add(s.Init)
	}
	// The `x := y.(type)` assignment; analyses can model the binding.
	b.add(s.Assign)
	head := b.cur
	after := b.newBlock()
	if label != "" {
		b.label(label).breakTo = after
	}
	b.stack = append(b.stack, targets{breakTo: after})
	hasDefault := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		body := b.newBlock()
		edge(head, body)
		b.cur = body
		b.stmtList(cc.Body)
		edge(b.cur, after)
	}
	if !hasDefault {
		edge(head, after)
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.cur
	after := b.newBlock()
	if label != "" {
		b.label(label).breakTo = after
	}
	b.stack = append(b.stack, targets{breakTo: after})
	any := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		body := b.newBlock()
		edge(head, body)
		b.cur = body
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		edge(b.cur, after)
	}
	if !any {
		// `select {}` blocks forever.
		edge(head, b.cfg.Halt)
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = after
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	last := body[len(body)-1]
	for {
		if ls, ok := last.(*ast.LabeledStmt); ok {
			last = ls.Stmt
			continue
		}
		break
	}
	br, ok := last.(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// resolveGotos is a no-op today — labels create their blocks lazily, so a
// forward goto already points at the right block — but it keeps the builder
// honest: a goto to an undeclared label leaves an empty, edgeless target
// block rather than a dangling pointer.
func (b *builder) resolveGotos() {}

// terminatesFlow reports, syntactically, whether a call never returns:
// panic, os.Exit, log.Fatal/Fatalf/Fatalln, runtime.Goexit. The match is
// name-based so the CFG stays type-free; shadowing produces a slightly
// conservative graph, never a wrong analysis (the Halt path is simply not
// checked by leak analyzers).
func terminatesFlow(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "log":
			switch fun.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln":
				return true
			}
		case "runtime":
			return fun.Sel.Name == "Goexit"
		}
	}
	return false
}

// markLive flags every block reachable from Entry.
func markLive(c *CFG) {
	var visit func(b *Block)
	visit = func(b *Block) {
		if b.Live {
			return
		}
		b.Live = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(c.Entry)
}

// WalkShallow visits n's subtree in depth-first order, skipping the bodies
// of function literals (a closure's statements belong to its own CFG) and
// never descending into the Body of a RangeStmt node (its statements live
// in other blocks). f returning false prunes the subtree, mirroring
// ast.Inspect.
func WalkShallow(n ast.Node, f func(ast.Node) bool) {
	if n == nil {
		return
	}
	if a, ok := n.(*Assume); ok {
		WalkShallow(a.Cond, f)
		return
	}
	if rs, ok := n.(*ast.RangeStmt); ok {
		if !f(rs) {
			return
		}
		WalkShallow(rs.Key, f)
		WalkShallow(rs.Value, f)
		WalkShallow(rs.X, f)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if fl, ok := m.(*ast.FuncLit); ok {
			// Announce the literal so callers can e.g. scan for captures,
			// but do not walk its body as straight-line code.
			f(fl)
			return false
		}
		return f(m)
	})
}

// FuncLits returns every function literal under n, including nested ones,
// in source order. Analyzers use it to give closure bodies their own CFG
// pass.
func FuncLits(n ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(n, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok {
			out = append(out, fl)
		}
		return true
	})
	return out
}
