package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BorrowSpec describes one borrow discipline: which calls hand out a view
// over a resource owned by someone else (the lender), and which call shapes
// end the lender's life. Unlike an obligation (LeakSpec), a borrow carries
// no duty to act — the rule is temporal: once the lender is released, the
// borrowed value is dead and any read of it is a bug. The canonical instance
// is a btree nodeView over a pinned pagestore frame: the view is a slice of
// the frame's buffer, and after Release the pool may recycle that buffer
// under another page.
type BorrowSpec struct {
	// Borrow classifies a call expression. ok reports whether the call
	// returns a borrowed view; resIdx is the index of the view among the
	// call's results; lenders are the expressions whose release ends the
	// borrow (typically the receiver or an argument, possibly under more
	// than one path — e.g. a node and its embedded frame).
	Borrow func(call *ast.CallExpr) (lenders []ast.Expr, resIdx int, ok bool)
	// IsRelease reports whether a method call of the form recv.M(...)
	// releases recv. The engine matches the receiver against the borrow's
	// lender paths; this predicate only inspects the call shape.
	IsRelease func(call *ast.CallExpr) bool
	// IsLender reports whether a type can lend views in this discipline.
	// Only needed for summary computation; nil disables it.
	IsLender func(t types.Type) bool
	// ExpandLender returns additional release paths reached through a
	// lender expression (e.g. a btree node's embedded frame: releasing
	// n.frame kills views of n). Optional.
	ExpandLender func(l ast.Expr) []ast.Expr
	// Summaries resolves a callee to its borrow summary: which results are
	// views borrowed from which parameters, and which lender parameters the
	// callee may release. Nil, or a false return, means the callee is
	// treated as opaque — no borrow created, no lender released.
	Summaries func(fn *types.Func) (BorrowSummary, bool)
}

// A BorrowViolation is a read of a borrowed view at a point where its
// lender may already have been released.
type BorrowViolation struct {
	// Use is the identifier through which the dead view is read.
	Use *ast.Ident
	// Borrow is the call that created the view.
	Borrow *ast.CallExpr
}

// FindBorrowViolations runs the borrow analysis over one function body and
// returns its use-after-release reads in source order. The analysis is a
// forward may-analysis over the CFG: a release on any path into a use kills
// the view there. Views are values, so passing one to a call or returning
// it is an ordinary use (callee or caller reads it before the release can
// happen here) — only reads sequenced after a release are violations.
// Rebinding a view or lender name drops the stale alias, so loop bodies
// that re-borrow each iteration stay clean. A `defer lender.Release()` runs
// after every read in the body and never kills the view.
func FindBorrowViolations(body *ast.BlockStmt, info *types.Info, spec BorrowSpec) []BorrowViolation {
	if body == nil {
		return nil
	}
	cfg := New(body)
	eng := &bwEngine{
		spec: spec,
		info: info,
		al:   NewAliases(body, info),
	}
	in := Forward[bwFact](cfg, bwLattice{}, eng.transfer)

	// Replay each block over its converged entry fact with reporting on.
	var out []BorrowViolation
	seen := make(map[token.Pos]bool)
	eng.report = func(id *ast.Ident, st *bwState) {
		if !seen[id.Pos()] {
			seen[id.Pos()] = true
			out = append(out, BorrowViolation{Use: id, Borrow: st.call})
		}
	}
	for _, b := range cfg.Blocks {
		if b.Live {
			eng.transfer(b, bwLattice{}.Clone(in[b.Index]))
		}
	}

	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Use.Pos() < out[j-1].Use.Pos(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// bwState is the tracked state of one borrow (keyed by its source call's
// position).
type bwState struct {
	call *ast.CallExpr
	// viewNames holds the canonical paths currently bound to the view.
	viewNames map[string]bool
	// lenderNames holds the canonical paths whose release kills the view.
	lenderNames map[string]bool
	// released means the lender may have been released on some path here.
	released bool
}

func (s *bwState) clone() *bwState {
	c := *s
	c.viewNames = make(map[string]bool, len(s.viewNames))
	for k := range s.viewNames {
		c.viewNames[k] = true
	}
	c.lenderNames = make(map[string]bool, len(s.lenderNames))
	for k := range s.lenderNames {
		c.lenderNames[k] = true
	}
	return &c
}

type bwFact map[token.Pos]*bwState

type bwLattice struct{}

func (bwLattice) Bottom() bwFact { return bwFact{} }

func (bwLattice) Clone(f bwFact) bwFact {
	c := make(bwFact, len(f))
	for k, v := range f {
		c[k] = v.clone()
	}
	return c
}

// Join is the may-released union: a lender released on either path is
// released in the merge; alias sets union.
func (bwLattice) Join(dst, src bwFact) (bwFact, bool) {
	changed := false
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok {
			dst[k] = sv.clone()
			changed = true
			continue
		}
		if sv.released && !dv.released {
			dv.released = true
			changed = true
		}
		for n := range sv.viewNames {
			if !dv.viewNames[n] {
				dv.viewNames[n] = true
				changed = true
			}
		}
		for n := range sv.lenderNames {
			if !dv.lenderNames[n] {
				dv.lenderNames[n] = true
				changed = true
			}
		}
	}
	return dst, changed
}

type bwEngine struct {
	spec BorrowSpec
	info *types.Info
	al   *Aliases
	// report, when non-nil, receives each dead-view read (replay phase).
	report func(id *ast.Ident, st *bwState)
	// onReturn, when non-nil, observes each return statement with the fact
	// in force there (summary computation reads provenance off it).
	onReturn func(f bwFact, n *ast.ReturnStmt)
}

// borrowOf extends the spec's Borrow classification with summarized
// borrows: a known callee one of whose results is a view over an argument.
func (e *bwEngine) borrowOf(call *ast.CallExpr) (lenders []ast.Expr, resIdx int, ok bool) {
	if l, r, isB := e.spec.Borrow(call); isB {
		return l, r, true
	}
	if e.spec.Summaries == nil {
		return nil, 0, false
	}
	fn := Callee(e.info, call)
	if fn == nil {
		return nil, 0, false
	}
	sum, haveSum := e.spec.Summaries(fn)
	if !haveSum {
		return nil, 0, false
	}
	args, aligned := FlatArgs(e.info, call, fn)
	if !aligned {
		return nil, 0, false
	}
	for r, ps := range sum.Results {
		for _, pi := range ps {
			if pi >= 0 && pi < len(args) {
				lenders = append(lenders, args[pi])
			}
		}
		if len(lenders) > 0 {
			return lenders, r, true
		}
	}
	return nil, 0, false
}

// applyCallSummary marks borrows whose lender a known callee may release.
func (e *bwEngine) applyCallSummary(f bwFact, call *ast.CallExpr) {
	if e.spec.Summaries == nil {
		return
	}
	fn := Callee(e.info, call)
	if fn == nil {
		return
	}
	sum, haveSum := e.spec.Summaries(fn)
	if !haveSum {
		return
	}
	args, aligned := FlatArgs(e.info, call, fn)
	if !aligned {
		return
	}
	for i, a := range args {
		if !sum.releases(flatIndex(fn, i)) {
			continue
		}
		c := e.al.Canon(a)
		for _, st := range f {
			if st.lenderNames[c] {
				st.released = true
			}
		}
	}
}

func (e *bwEngine) transfer(b *Block, in bwFact) bwFact {
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *Assume:
			e.scan(in, n.Cond)
		case *ast.AssignStmt:
			e.assign(in, n)
		case *ast.DeferStmt:
			// A deferred release runs after every read in the body; it
			// never kills a view mid-function. A deferred non-release call
			// still evaluates its receiver/arguments now.
			if !e.spec.IsRelease(n.Call) {
				for _, a := range n.Call.Args {
					e.scan(in, a)
				}
			}
		case *ast.ReturnStmt:
			if e.onReturn != nil {
				e.onReturn(in, n)
			}
			for _, r := range n.Results {
				e.scan(in, r)
			}
		default:
			if expr, ok := n.(ast.Expr); ok {
				e.scan(in, expr)
			} else {
				e.scanNode(in, n)
			}
		}
	}
	return in
}

// assign handles the three roles an assignment can play for borrows:
// opening one, rebinding a view alias, or overwriting (and thereby
// dropping) a view or lender name.
func (e *bwEngine) assign(f bwFact, n *ast.AssignStmt) {
	created := make(map[*bwState]bool)
	handledRhs := make(map[int]bool)
	for i, rhs := range n.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		lenders, resIdx, isBorrow := e.borrowOf(call)
		if !isBorrow {
			continue
		}
		handledRhs[i] = true
		// The borrow call's own operands are ordinary reads.
		if sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); okSel {
			e.scan(f, sel.X)
		}
		for _, a := range call.Args {
			e.scan(f, a)
		}
		st := &bwState{
			call:        call,
			viewNames:   map[string]bool{},
			lenderNames: map[string]bool{},
		}
		for _, l := range lenders {
			st.lenderNames[e.al.Canon(l)] = true
			if e.spec.ExpandLender != nil {
				for _, x := range e.spec.ExpandLender(l) {
					st.lenderNames[e.al.Canon(x)] = true
				}
			}
		}
		if lhs := tupleLhs(n, i, resIdx); lhs != nil {
			if id, isId := ast.Unparen(lhs).(*ast.Ident); isId && id.Name != "_" {
				st.viewNames[e.al.Canon(id)] = true
			}
		}
		f[call.Lparen] = st
		created[st] = true
	}

	// A tuple assignment from a non-borrow call: the RHS is one read.
	if len(n.Lhs) != len(n.Rhs) && len(n.Rhs) == 1 && !handledRhs[0] {
		e.scan(f, n.Rhs[0])
	}

	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if len(n.Lhs) == len(n.Rhs) && !handledRhs[i] {
			rhs = n.Rhs[i]
		}
		lhsId, lhsIsIdent := ast.Unparen(lhs).(*ast.Ident)

		if rhs != nil {
			// `v2 := v` extends the view's alias set. A copy of a dead view
			// is itself a dead read — reported once at the copy, and the
			// new name is not tracked further.
			if isPathExpr(rhs) {
				rcanon := e.al.Canon(rhs)
				if st := viewHolder(f, rcanon); st != nil {
					if st.released {
						// The copy itself is the dead read; the new name
						// holds garbage and is not tracked further (the
						// overwrite below still drops its old bindings).
						e.reportUse(rhs, st)
					} else if lhsIsIdent && lhsId.Name != "_" {
						st.viewNames[e.al.Canon(lhsId)] = true
						continue // binding, not an overwrite of this name
					} else {
						// Blank, or stored into a structure/global: nothing
						// further to track through this assignment.
						continue
					}
				} else {
					e.scan(f, rhs)
				}
			} else {
				e.scan(f, rhs)
			}
		}

		// Overwriting a bound name drops the stale alias — both for views
		// (the name now means a different value) and for lenders (their
		// release can no longer be observed through this name).
		if lhsIsIdent && lhsId.Name != "_" {
			c := e.al.Canon(lhsId)
			for _, st := range f {
				if created[st] {
					continue // this statement's own binding
				}
				delete(st.viewNames, c)
				delete(st.lenderNames, c)
			}
		} else if !lhsIsIdent {
			e.scan(f, lhs)
		}
	}
}

// scan walks an expression: release calls flip their lender's borrows to
// released, and every identifier read of a released view is a violation.
// Function-literal bodies are skipped (they get their own analysis and run
// at an unknowable time).
func (e *bwEngine) scan(f bwFact, x ast.Expr) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if e.spec.IsRelease(m) {
				if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
					recv := e.al.Canon(sel.X)
					for _, st := range f {
						if st.lenderNames[recv] {
							st.released = true
						}
					}
				}
			} else {
				e.applyCallSummary(f, m)
			}
		case *ast.Ident:
			e.useIdent(f, m)
		}
		return true
	})
}

// scanNode conservatively scans any remaining statement kind.
func (e *bwEngine) scanNode(f bwFact, n ast.Node) {
	WalkShallow(n, func(m ast.Node) bool {
		if expr, ok := m.(ast.Expr); ok {
			e.scan(f, expr)
			return false
		}
		return true
	})
}

// useIdent flags a read of a view whose lender may be gone.
func (e *bwEngine) useIdent(f bwFact, id *ast.Ident) {
	if id.Name == "_" {
		return
	}
	c := e.al.Canon(id)
	for _, st := range f {
		if st.released && st.viewNames[c] {
			if e.report != nil {
				e.report(id, st)
			}
		}
	}
}

func (e *bwEngine) reportUse(x ast.Expr, st *bwState) {
	if id, ok := ast.Unparen(x).(*ast.Ident); ok && e.report != nil {
		e.report(id, st)
	}
}

// viewHolder returns the borrow binding canon as a view name, if any.
func viewHolder(f bwFact, canon string) *bwState {
	for _, st := range f {
		if st.viewNames[canon] {
			return st
		}
	}
	return nil
}
