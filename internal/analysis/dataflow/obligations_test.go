package dataflow

import (
	"go/ast"
	"testing"
)

// The test discipline: res := acquire() must reach res.close() (mirroring
// the pin/span shapes without importing the real packages).
var testSpec = LeakSpec{
	Source: func(call *ast.CallExpr) (int, int, bool) {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "acquire" {
				return 0, 1, true
			}
			if fun.Name == "acquire1" {
				return 0, -1, true
			}
		}
		return 0, 0, false
	},
	IsRelease: func(call *ast.CallExpr) bool {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "close"
	},
}

const leakPrelude = `package p

type res struct{}

func (r *res) close()      {}
func (r *res) touch()      {}
func acquire() (*res, error)  { return nil, nil }
func acquire1() *res          { return nil }
func sink(r *res)             {}
var global *res
`

func findTestLeaks(t *testing.T, body string) []Leak {
	t.Helper()
	fn, info := typecheck(t, leakPrelude+"\nfunc f(cond bool) error {\n"+body+"\n}\n")
	return FindLeaks(fn.Body, info, testSpec)
}

func TestLeakBalancedPath(t *testing.T) {
	leaks := findTestLeaks(t, `
	r := acquire1()
	r.touch()
	r.close()
	return nil`)
	if len(leaks) != 0 {
		t.Fatalf("balanced acquire/close should not leak, got %v", leaks)
	}
}

func TestLeakMissingClose(t *testing.T) {
	leaks := findTestLeaks(t, `
	r := acquire1()
	r.touch()
	return nil`)
	if len(leaks) != 1 {
		t.Fatalf("want 1 leak, got %d", len(leaks))
	}
}

func TestLeakOneBranchOnly(t *testing.T) {
	leaks := findTestLeaks(t, `
	r := acquire1()
	if cond {
		r.close()
		return nil
	}
	return nil`)
	if len(leaks) != 1 {
		t.Fatalf("leak on the else path should be reported, got %d", len(leaks))
	}
}

func TestLeakDeferClears(t *testing.T) {
	leaks := findTestLeaks(t, `
	r := acquire1()
	defer r.close()
	if cond {
		return nil
	}
	r.touch()
	return nil`)
	if len(leaks) != 0 {
		t.Fatalf("defer close covers all paths, got %v", leaks)
	}
}

func TestLeakErrNilIdiom(t *testing.T) {
	leaks := findTestLeaks(t, `
	r, err := acquire()
	if err != nil {
		return err
	}
	r.close()
	return nil`)
	if len(leaks) != 0 {
		t.Fatalf("err != nil early return must not count as a leak, got %v", leaks)
	}
}

func TestLeakErrNilIdiomStillCatchesMainPath(t *testing.T) {
	leaks := findTestLeaks(t, `
	r, err := acquire()
	if err != nil {
		return err
	}
	r.touch()
	return nil`)
	if len(leaks) != 1 {
		t.Fatalf("main path without close should leak, got %d", len(leaks))
	}
}

func TestLeakAliasClose(t *testing.T) {
	leaks := findTestLeaks(t, `
	r := acquire1()
	s := r
	s.close()
	return nil`)
	if len(leaks) != 0 {
		t.Fatalf("close through an alias should count, got %v", leaks)
	}
}

func TestLeakReturnEscapes(t *testing.T) {
	fn, info := typecheck(t, leakPrelude+`
func f(cond bool) (*res, error) {
	r, err := acquire()
	if err != nil {
		return nil, err
	}
	return r, nil
}
`)
	leaks := FindLeaks(fn.Body, info, testSpec)
	if len(leaks) != 0 {
		t.Fatalf("returning the resource transfers ownership, got %v", leaks)
	}
}

func TestLeakCallArgEscapes(t *testing.T) {
	leaks := findTestLeaks(t, `
	r := acquire1()
	sink(r)
	return nil`)
	if len(leaks) != 0 {
		t.Fatalf("passing the resource away transfers ownership, got %v", leaks)
	}
}

func TestLeakStoreEscapes(t *testing.T) {
	leaks := findTestLeaks(t, `
	r := acquire1()
	global = r
	return nil`)
	if len(leaks) != 0 {
		t.Fatalf("storing the resource transfers ownership, got %v", leaks)
	}
}

func TestLeakClosureCaptureEscapes(t *testing.T) {
	leaks := findTestLeaks(t, `
	r := acquire1()
	cleanup := func() { r.close() }
	defer cleanup()
	return nil`)
	if len(leaks) != 0 {
		t.Fatalf("closure capture transfers ownership, got %v", leaks)
	}
}

func TestLeakDiscardedImmediately(t *testing.T) {
	leaks := findTestLeaks(t, `
	acquire1()
	return nil`)
	if len(leaks) != 1 || !leaks[0].Immediate {
		t.Fatalf("discarded resource should be an immediate leak, got %v", leaks)
	}
}

func TestLeakBlankAssign(t *testing.T) {
	leaks := findTestLeaks(t, `
	_ = acquire1()
	return nil`)
	if len(leaks) != 1 || !leaks[0].Immediate {
		t.Fatalf("blank-assigned resource should be an immediate leak, got %v", leaks)
	}
}

func TestLeakInLoop(t *testing.T) {
	leaks := findTestLeaks(t, `
	for i := 0; i < 3; i++ {
		r := acquire1()
		if cond {
			continue
		}
		r.close()
	}
	return nil`)
	if len(leaks) != 1 {
		t.Fatalf("continue past the close should leak, got %d", len(leaks))
	}
}

func TestLeakLoopBalanced(t *testing.T) {
	leaks := findTestLeaks(t, `
	for i := 0; i < 3; i++ {
		r := acquire1()
		r.touch()
		r.close()
	}
	return nil`)
	if len(leaks) != 0 {
		t.Fatalf("balanced loop body should not leak, got %v", leaks)
	}
}

func TestLeakPanicPathIgnored(t *testing.T) {
	leaks := findTestLeaks(t, `
	r := acquire1()
	if cond {
		panic("fatal")
	}
	r.close()
	return nil`)
	if len(leaks) != 0 {
		t.Fatalf("panic paths are not leak paths, got %v", leaks)
	}
}

func TestLeakNilCheckRefinement(t *testing.T) {
	leaks := findTestLeaks(t, `
	r := acquire1()
	if r == nil {
		return nil
	}
	r.close()
	return nil`)
	if len(leaks) != 0 {
		t.Fatalf("nil-checked resource on the nil arm is no leak, got %v", leaks)
	}
}
