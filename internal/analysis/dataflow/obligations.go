package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeakSpec describes one acquire/release discipline: which calls open an
// obligation (pin a frame, begin a span) and which call shapes close it.
// The engine handles everything else — aliasing, CFG paths, defer, the
// `if err != nil { return }` idiom, and ownership escapes.
type LeakSpec struct {
	// Source classifies a call expression. ok reports whether the call
	// opens an obligation; resIdx is the index of the resource among the
	// call's results, errIdx the index of an error result that, when
	// non-nil, means no resource was acquired (-1 if the source cannot
	// fail).
	Source func(call *ast.CallExpr) (resIdx, errIdx int, ok bool)
	// IsRelease reports whether a method call of the form recv.M(...)
	// closes the obligation held by recv. The engine matches the receiver
	// against the obligation's aliases; this predicate only inspects the
	// call shape.
	IsRelease func(call *ast.CallExpr) bool
}

// A Leak is an obligation that fails to reach a release on some path to a
// normal return.
type Leak struct {
	// Acquire is the source call that opened the obligation.
	Acquire *ast.CallExpr
	// Immediate marks a resource discarded at the call site itself
	// (expression statement or assignment to blank).
	Immediate bool
}

// FindLeaks runs the obligation analysis over one function body and
// returns its leaks in source order. Obligations closed by a release on
// every path, by a defer, or by an ownership escape (returned, passed to a
// call, stored into a structure, captured by a closure) are not reported.
func FindLeaks(body *ast.BlockStmt, info *types.Info, spec LeakSpec) []Leak {
	if body == nil {
		return nil
	}
	cfg := New(body)
	eng := &obEngine{
		spec: spec,
		info: info,
		al:   NewAliases(body, info),
	}
	in := Forward[obFact](cfg, obLattice{}, eng.transfer)

	var leaks []Leak
	seen := make(map[token.Pos]bool)
	add := func(call *ast.CallExpr, immediate bool) {
		if !seen[call.Lparen] {
			seen[call.Lparen] = true
			leaks = append(leaks, Leak{Acquire: call, Immediate: immediate})
		}
	}

	// Immediate leaks are syntactic: a source call whose resource result is
	// discarded on the spot.
	WalkShallowStmts(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if _, _, isSrc := spec.Source(call); isSrc {
					add(call, true)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				resIdx, _, isSrc := spec.Source(call)
				if !isSrc {
					continue
				}
				if lhs := tupleLhs(n, i, resIdx); lhs != nil {
					if id, isId := lhs.(*ast.Ident); isId && id.Name == "_" {
						add(call, true)
					}
				}
			}
		}
	})

	// Path leaks: any obligation still open in the fact flowing into the
	// virtual Exit block escaped release on at least one returning path.
	for _, ob := range in[cfg.Exit.Index] {
		if ob.open {
			add(ob.call, false)
		}
	}

	// Stable order for reporting.
	for i := 1; i < len(leaks); i++ {
		for j := i; j > 0 && leaks[j].Acquire.Lparen < leaks[j-1].Acquire.Lparen; j-- {
			leaks[j], leaks[j-1] = leaks[j-1], leaks[j]
		}
	}
	return leaks
}

// WalkShallowStmts visits every statement-level node under body exactly
// once, skipping function-literal bodies (they get their own analysis).
func WalkShallowStmts(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// obState is the tracked state of one obligation (keyed by its source
// call's position).
type obState struct {
	call *ast.CallExpr
	open bool
	// names holds the canonical paths currently bound to the resource.
	names map[string]bool
	// errName/errLive support the `f, err := Get(...); if err != nil`
	// refinement: while errLive, an assumed-non-nil errName kills the
	// obligation (the resource is nil on the error path).
	errName string
	errLive bool
}

func (o *obState) clone() *obState {
	c := *o
	c.names = make(map[string]bool, len(o.names))
	for k := range o.names {
		c.names[k] = true
	}
	return &c
}

type obFact map[token.Pos]*obState

type obLattice struct{}

func (obLattice) Bottom() obFact { return obFact{} }

func (obLattice) Clone(f obFact) obFact {
	c := make(obFact, len(f))
	for k, v := range f {
		c[k] = v.clone()
	}
	return c
}

// Join is the may-leak union: an obligation open on either path is open in
// the merge; error-liveness survives only if live on both.
func (obLattice) Join(dst, src obFact) (obFact, bool) {
	changed := false
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok {
			dst[k] = sv.clone()
			changed = true
			continue
		}
		if sv.open && !dv.open {
			dv.open = true
			changed = true
		}
		for n := range sv.names {
			if !dv.names[n] {
				dv.names[n] = true
				changed = true
			}
		}
		if dv.errLive && !sv.errLive {
			dv.errLive = false
			changed = true
		}
	}
	return dst, changed
}

type obEngine struct {
	spec LeakSpec
	info *types.Info
	al   *Aliases
}

func (e *obEngine) transfer(b *Block, in obFact) obFact {
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *Assume:
			e.refine(in, n)
		case *ast.AssignStmt:
			e.assign(in, n)
		case *ast.ExprStmt:
			e.exprStmt(in, n)
		case *ast.DeferStmt:
			e.deferStmt(in, n)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				e.scanEscape(in, r, true)
			}
		case *ast.GoStmt:
			e.scanEscape(in, n.Call, true)
		case *ast.SendStmt:
			e.scanEscape(in, n.Value, true)
			e.scanEscape(in, n.Chan, false)
		default:
			if expr, ok := n.(ast.Expr); ok {
				// Branch conditions and switch guards: uses, not escapes.
				e.scanEscape(in, expr, false)
			} else {
				e.scanNode(in, n)
			}
		}
	}
	return in
}

// assign handles the three roles an assignment can play: opening an
// obligation, rebinding an alias, or escaping/overwriting a resource.
func (e *obEngine) assign(f obFact, n *ast.AssignStmt) {
	handledRhs := make(map[int]bool)
	created := make(map[*obState]bool)
	for i, rhs := range n.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		resIdx, errIdx, isSrc := e.spec.Source(call)
		if !isSrc {
			// Still scan the call's arguments for escapes below.
			continue
		}
		handledRhs[i] = true
		// Arguments of the source call itself can escape other resources.
		for _, a := range call.Args {
			e.scanEscape(f, a, true)
		}
		ob := &obState{call: call, open: true, names: map[string]bool{}}
		if lhs := tupleLhs(n, i, resIdx); lhs != nil {
			id, isId := lhs.(*ast.Ident)
			if !isId || !e.isLocal(id) {
				// Blank (immediate leak, reported syntactically), or stored
				// straight into a global/field/index: not ours to track.
				continue
			}
			ob.names[e.al.Canon(id)] = true
		}
		if errIdx >= 0 {
			if lhs := tupleLhs(n, i, errIdx); lhs != nil {
				if id, isId := lhs.(*ast.Ident); isId && id.Name != "_" {
					ob.errName = e.al.Canon(id)
					ob.errLive = true
				}
			}
		}
		f[call.Lparen] = ob
		created[ob] = true
	}

	// A tuple assignment from a non-source call still passes nothing we
	// track, but its arguments can escape resources.
	if len(n.Lhs) != len(n.Rhs) && len(n.Rhs) == 1 && !handledRhs[0] {
		e.scanEscape(f, n.Rhs[0], true)
	}

	// Alias rebinding: `g := f` extends the name set; `x.field = f` or
	// `arr[i] = f` escapes; `f = other` unbinds.
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if len(n.Lhs) == len(n.Rhs) {
			rhs = n.Rhs[i]
			if handledRhs[i] {
				rhs = nil
			}
		} else if len(n.Rhs) == 1 {
			if handledRhs[0] {
				rhs = nil
			} else {
				rhs = nil // tuple from a non-source call: nothing to bind
			}
		}

		lhsId, lhsIsIdent := ast.Unparen(lhs).(*ast.Ident)

		if rhs != nil {
			rcanon := e.al.Canon(rhs)
			if ob := holder(f, rcanon); ob != nil && isPathExpr(rhs) {
				if lhsIsIdent && lhsId.Name != "_" && e.isLocal(lhsId) {
					ob.names[e.al.Canon(lhsId)] = true
				} else if lhsIsIdent && lhsId.Name == "_" {
					// `_ = r`: a deliberate no-op use, not an escape.
				} else {
					// Stored into a global or structure: ownership escapes.
					ob.open = false
				}
				continue
			}
			e.scanEscape(f, rhs, true)
		}

		// Overwriting a bound name drops that alias; reassigning a tracked
		// error kills its refinement power.
		if lhsIsIdent && lhsId.Name != "_" {
			c := e.al.Canon(lhsId)
			for _, ob := range f {
				if created[ob] {
					continue // this statement's own binding
				}
				if ob.names[c] {
					delete(ob.names, c)
				}
				if ob.errLive && ob.errName == c {
					ob.errLive = false
				}
			}
		} else if !lhsIsIdent {
			e.scanEscape(f, lhs, false)
		}
	}
}

func (e *obEngine) exprStmt(f obFact, n *ast.ExprStmt) {
	call, ok := ast.Unparen(n.X).(*ast.CallExpr)
	if !ok {
		e.scanEscape(f, n.X, false)
		return
	}
	if e.release(f, call) {
		return
	}
	if _, _, isSrc := e.spec.Source(call); isSrc {
		// Discarded resource; reported as an immediate leak syntactically.
		for _, a := range call.Args {
			e.scanEscape(f, a, true)
		}
		return
	}
	e.scanCall(f, call)
}

func (e *obEngine) deferStmt(f obFact, n *ast.DeferStmt) {
	// `defer f.Release()` discharges the obligation for every path from
	// here on — deferred calls run on all exits. A closure body inside the
	// defer is a capture: scanned as an escape, which is also a discharge.
	if e.release(f, n.Call) {
		return
	}
	e.scanCall(f, n.Call)
}

// release closes the obligation whose alias set contains the call's
// receiver, returning true if the call is a release.
func (e *obEngine) release(f obFact, call *ast.CallExpr) bool {
	if !e.spec.IsRelease(call) {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := e.al.Canon(sel.X)
	if ob := holder(f, recv); ob != nil {
		ob.open = false
		return true
	}
	// A release of something we aren't tracking (a parameter, a field):
	// still a release call, not an escape of its receiver.
	return true
}

// scanCall treats a non-release, non-source call: the receiver path is a
// use; the arguments escape.
func (e *obEngine) scanCall(f obFact, call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Method call on the resource (f.Data(), f.MarkDirty()): a use.
		e.scanEscape(f, sel.X, false)
	} else {
		e.scanEscape(f, call.Fun, true)
	}
	for _, a := range call.Args {
		e.scanEscape(f, a, true)
	}
}

// scanNode conservatively scans any remaining statement kind.
func (e *obEngine) scanNode(f obFact, n ast.Node) {
	WalkShallow(n, func(m ast.Node) bool {
		if expr, ok := m.(ast.Expr); ok {
			e.scanEscape(f, expr, false)
			return false
		}
		return true
	})
}

// scanEscape walks an expression; any appearance of a tracked resource in
// an escaping position (call argument, composite literal, return value,
// address-taken, closure capture) discharges its obligation — ownership is
// assumed transferred, and the callee/holder is responsible for release.
// Non-escaping positions (selector base, index base, nil comparison) are
// uses and keep the obligation open.
func (e *obEngine) scanEscape(f obFact, expr ast.Expr, escaping bool) {
	if expr == nil {
		return
	}
	switch expr := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if !escaping {
			return
		}
		if ob := holder(f, e.al.Canon(expr)); ob != nil {
			ob.open = false
		}
	case *ast.SelectorExpr:
		e.scanEscape(f, expr.X, false)
	case *ast.IndexExpr:
		e.scanEscape(f, expr.X, false)
		e.scanEscape(f, expr.Index, false)
	case *ast.StarExpr:
		e.scanEscape(f, expr.X, false)
	case *ast.UnaryExpr:
		// &f may stash the resource anywhere.
		e.scanEscape(f, expr.X, expr.Op == token.AND || escaping)
	case *ast.BinaryExpr:
		e.scanEscape(f, expr.X, false)
		e.scanEscape(f, expr.Y, false)
	case *ast.CallExpr:
		if !e.release(f, expr) {
			if _, _, isSrc := e.spec.Source(expr); !isSrc {
				e.scanCall(f, expr)
			}
		}
	case *ast.CompositeLit:
		for _, el := range expr.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				e.scanEscape(f, kv.Value, true)
			} else {
				e.scanEscape(f, el, true)
			}
		}
	case *ast.FuncLit:
		// Captures: any tracked name referenced inside the literal escapes.
		ast.Inspect(expr.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if ob := holder(f, e.al.Canon(id)); ob != nil {
					ob.open = false
				}
			}
			return true
		})
	case *ast.TypeAssertExpr:
		e.scanEscape(f, expr.X, escaping)
	case *ast.SliceExpr:
		e.scanEscape(f, expr.X, false)
	case *ast.KeyValueExpr:
		e.scanEscape(f, expr.Value, escaping)
	}
}

// refine applies a branch assumption. Two patterns matter:
//
//	f, err := Get(...); if err != nil { return err }   — obligation dead on
//	the error arm (Get returns a nil resource with a non-nil error);
//
//	if f == nil { ... }                                — obligation dead on
//	the nil arm.
func (e *obEngine) refine(f obFact, a *Assume) {
	bin, ok := ast.Unparen(a.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return
	}
	var other ast.Expr
	switch {
	case isNilIdent(bin.Y):
		other = bin.X
	case isNilIdent(bin.X):
		other = bin.Y
	default:
		return
	}
	canon := e.al.Canon(other)
	// On this branch, is `other` known non-nil?
	nonNil := (bin.Op == token.NEQ) != a.Negated
	for _, ob := range f {
		if !ob.open {
			continue
		}
		if nonNil && ob.errLive && ob.errName == canon {
			ob.open = false // error path: no resource was acquired
		}
		if !nonNil && ob.names[canon] {
			ob.open = false // resource known nil here
		}
	}
}

// isLocal reports whether an identifier names a function-local variable
// (or parameter) — the only things an alias binding may track. Globals and
// fields outlive the function: storing a resource there is an escape.
func (e *obEngine) isLocal(id *ast.Ident) bool {
	obj := e.info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Package-level variables live in the package scope, whose parent is
	// Universe; anything nested deeper is local.
	if p := v.Parent(); p != nil && p.Parent() == types.Universe {
		return false
	}
	return true
}

// holder returns the open obligation binding canon, if any.
func holder(f obFact, canon string) *obState {
	for _, ob := range f {
		if ob.open && ob.names[canon] {
			return ob
		}
	}
	return nil
}

// tupleLhs returns the LHS expression receiving result #idx of the call at
// Rhs[i], for both `a, b := f()` (tuple) and `a := f()` (1:1) shapes.
func tupleLhs(n *ast.AssignStmt, i, idx int) ast.Expr {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		if idx < len(n.Lhs) {
			return n.Lhs[idx]
		}
		return nil
	}
	if len(n.Lhs) == len(n.Rhs) && idx == 0 {
		return n.Lhs[i]
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isPathExpr reports whether an expression is a pure path (no calls), i.e.
// assigning it creates an alias rather than transferring a computed value.
func isPathExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isPathExpr(e.X)
	case *ast.IndexExpr:
		return isPathExpr(e.X)
	case *ast.StarExpr:
		return isPathExpr(e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && isPathExpr(e.X)
	}
	return false
}
