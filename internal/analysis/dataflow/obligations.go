package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LeakSpec describes one acquire/release discipline: which calls open an
// obligation (pin a frame, begin a span) and which call shapes close it.
// The engine handles everything else — aliasing, CFG paths, defer, the
// `if err != nil { return }` idiom, and ownership escapes.
type LeakSpec struct {
	// Source classifies a call expression. ok reports whether the call
	// opens an obligation; resIdx is the index of the resource among the
	// call's results, errIdx the index of an error result that, when
	// non-nil, means no resource was acquired (-1 if the source cannot
	// fail).
	Source func(call *ast.CallExpr) (resIdx, errIdx int, ok bool)
	// IsRelease reports whether a method call of the form recv.M(...)
	// closes the obligation held by recv. The engine matches the receiver
	// against the obligation's aliases; this predicate only inspects the
	// call shape.
	IsRelease func(call *ast.CallExpr) bool
	// IsResource reports whether a type carries this discipline's
	// obligation. Only needed for summary computation (parameter
	// obligations are seeded from it); nil disables parameter summaries.
	IsResource func(t types.Type) bool
	// Summaries resolves a callee to its obligation summary (local
	// computation first, then imported banks). Nil, or a false return,
	// means the callee is unknown and gets TopEffect: arguments escape,
	// exactly as the intra-procedural engine assumed for every call.
	Summaries func(fn *types.Func) (ObSummary, bool)
}

// A Leak is an obligation that fails to reach a release on some path to a
// normal return.
type Leak struct {
	// Acquire is the source call that opened the obligation.
	Acquire *ast.CallExpr
	// Immediate marks a resource discarded at the call site itself
	// (expression statement or assignment to blank).
	Immediate bool
	// Chain names the helper call path that held the obligation without
	// releasing it on every path ("keep" → "stash"); empty when the leak
	// is local to the analyzed function.
	Chain []string
	// Conditional marks an obligation that was discharged on some path but
	// not all — e.g. a helper that releases only on its error arm.
	Conditional bool
}

// FindLeaks runs the obligation analysis over one function body and
// returns its leaks in source order. Obligations closed by a release on
// every path, by a defer, or by an ownership escape (returned, passed to a
// call, stored into a structure, captured by a closure) are not reported.
func FindLeaks(body *ast.BlockStmt, info *types.Info, spec LeakSpec) []Leak {
	if body == nil {
		return nil
	}
	cfg := New(body)
	eng := &obEngine{
		spec:       spec,
		info:       info,
		al:         NewAliases(body, info),
		entryIndex: -1,
		retRes:     -1,
		retErr:     -1,
	}
	eng.collectLateDefers(body)
	in := Forward[obFact](cfg, obLattice{}, eng.transfer)

	var leaks []Leak
	seen := make(map[token.Pos]bool)
	add := func(call *ast.CallExpr, immediate bool, chain []string, conditional bool) {
		if !seen[call.Lparen] {
			seen[call.Lparen] = true
			leaks = append(leaks, Leak{Acquire: call, Immediate: immediate, Chain: chain, Conditional: conditional})
		}
	}

	// Immediate leaks are syntactic: a source call whose resource result is
	// discarded on the spot. Summarized sources (helpers returning a fresh
	// obligation) count the same as spec sources.
	WalkShallowStmts(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if _, _, isSrc := eng.sourceOf(call); isSrc {
					add(call, true, nil, false)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				resIdx, _, isSrc := eng.sourceOf(call)
				if !isSrc {
					continue
				}
				if lhs := tupleLhs(n, i, resIdx); lhs != nil {
					if id, isId := lhs.(*ast.Ident); isId && id.Name == "_" {
						add(call, true, nil, false)
					}
				}
			}
		}
	})

	// Path leaks: any obligation still open in the fact flowing into the
	// virtual Exit block escaped release on at least one returning path.
	for _, ob := range in[cfg.Exit.Index] {
		if ob.open && ob.call != nil && !eng.lateDeferred(ob) {
			add(ob.call, false, ob.chain, ob.effect&(EffRelease|EffEscape) != 0)
		}
	}

	// Stable order for reporting.
	for i := 1; i < len(leaks); i++ {
		for j := i; j > 0 && leaks[j].Acquire.Lparen < leaks[j-1].Acquire.Lparen; j-- {
			leaks[j], leaks[j-1] = leaks[j-1], leaks[j]
		}
	}
	return leaks
}

// WalkShallowStmts visits every statement-level node under body exactly
// once, skipping function-literal bodies (they get their own analysis).
func WalkShallowStmts(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// obState is the tracked state of one obligation (keyed by its source
// call's position, or the parameter's position in summary mode).
type obState struct {
	call *ast.CallExpr // nil for parameter pseudo-obligations
	open bool
	// names holds the canonical paths currently bound to the resource.
	names map[string]bool
	// errName/errLive support the `f, err := Get(...); if err != nil`
	// refinement: while errLive, an assumed-non-nil errName kills the
	// obligation (the resource is nil on the error path).
	errName string
	errLive bool
	// param is the flattened parameter index this pseudo-obligation
	// summarizes, or -1 for a real (source-call) obligation.
	param int
	// effect accumulates the discharge kinds observed on some path
	// (EffRelease, EffEscape); combined with open-at-exit it yields the
	// parameter's summary effect.
	effect ParamEffect
	// chain names the helper call path responsible for a kept/conditional
	// effect, for diagnostics only.
	chain []string
}

func (o *obState) clone() *obState {
	c := *o
	c.names = make(map[string]bool, len(o.names))
	for k := range o.names {
		c.names[k] = true
	}
	return &c
}

type obFact map[token.Pos]*obState

type obLattice struct{}

func (obLattice) Bottom() obFact { return obFact{} }

func (obLattice) Clone(f obFact) obFact {
	c := make(obFact, len(f))
	for k, v := range f {
		c[k] = v.clone()
	}
	return c
}

// Join is the may-leak union: an obligation open on either path is open in
// the merge; error-liveness survives only if live on both.
func (obLattice) Join(dst, src obFact) (obFact, bool) {
	changed := false
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok {
			dst[k] = sv.clone()
			changed = true
			continue
		}
		if sv.open && !dv.open {
			dv.open = true
			changed = true
		}
		if sv.effect&^dv.effect != 0 {
			dv.effect |= sv.effect
			changed = true
		}
		if len(dv.chain) == 0 && len(sv.chain) > 0 {
			dv.chain = sv.chain
			changed = true
		}
		for n := range sv.names {
			if !dv.names[n] {
				dv.names[n] = true
				changed = true
			}
		}
		if dv.errLive && !sv.errLive {
			dv.errLive = false
			changed = true
		}
	}
	return dst, changed
}

type obEngine struct {
	spec LeakSpec
	info *types.Info
	al   *Aliases
	// Summary-computation mode (ComputeObSummaries): resource-typed
	// parameters to seed as pseudo-obligations at the entry block, and the
	// result obligation detected at return statements. entryIndex is -1 in
	// plain checking mode.
	seeds      []paramSeed
	entryIndex int
	retRes     int
	retErr     int
	// lateDefers records deferred closures that release a captured name:
	// `defer func() { f.Release() }()` reads f at return time, so it also
	// discharges obligations bound to f that are created *after* the defer
	// statement (loop re-acquire through the same variable). The direct
	// form `defer f.Release()` binds its receiver at defer time and is
	// handled flow-sensitively by deferStmt instead.
	lateDefers []lateDefer
}

type lateDefer struct {
	pos  token.Pos
	name string
}

// collectLateDefers scans the body once for release calls inside deferred
// closures and records their receiver names with the defer's position.
func (e *obEngine) collectLateDefers(body *ast.BlockStmt) {
	WalkShallowStmts(body, func(n ast.Node) {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
		if !ok {
			return
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !e.spec.IsRelease(call) {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if c := e.al.Canon(sel.X); c != "" {
					e.lateDefers = append(e.lateDefers, lateDefer{pos: d.Pos(), name: c})
				}
			}
			return true
		})
	})
}

// lateDeferred reports whether an exit-open obligation is discharged by a
// deferred closure: created after the defer and bound to the released name.
func (e *obEngine) lateDeferred(ob *obState) bool {
	for _, d := range e.lateDefers {
		if ob.call != nil && ob.call.Lparen > d.pos && ob.names[d.name] {
			return true
		}
	}
	return false
}

type paramSeed struct {
	idx int
	v   *types.Var
}

func (e *obEngine) transfer(b *Block, in obFact) obFact {
	if b.Index == e.entryIndex {
		for _, p := range e.seeds {
			in[p.v.Pos()] = &obState{
				open:  true,
				names: map[string]bool{objKey(p.v): true},
				param: p.idx,
			}
		}
	}
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *Assume:
			e.refine(in, n)
		case *ast.AssignStmt:
			e.assign(in, n)
		case *ast.ExprStmt:
			e.exprStmt(in, n)
		case *ast.DeferStmt:
			e.deferStmt(in, n)
		case *ast.ReturnStmt:
			if e.entryIndex >= 0 {
				e.noteReturn(in, n)
			}
			for _, r := range n.Results {
				e.scanEscape(in, r, true)
			}
		case *ast.GoStmt:
			e.scanEscape(in, n.Call, true)
		case *ast.SendStmt:
			e.scanEscape(in, n.Value, true)
			e.scanEscape(in, n.Chan, false)
		default:
			if expr, ok := n.(ast.Expr); ok {
				// Branch conditions and switch guards: uses, not escapes.
				e.scanEscape(in, expr, false)
			} else {
				e.scanNode(in, n)
			}
		}
	}
	return in
}

// assign handles the three roles an assignment can play: opening an
// obligation, rebinding an alias, or escaping/overwriting a resource.
func (e *obEngine) assign(f obFact, n *ast.AssignStmt) {
	handledRhs := make(map[int]bool)
	created := make(map[*obState]bool)
	for i, rhs := range n.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		resIdx, errIdx, isSrc := e.sourceOf(call)
		if !isSrc {
			// Still scan the call's arguments for escapes below.
			continue
		}
		handledRhs[i] = true
		// Arguments of the source call itself can escape (or, with a
		// summary, conditionally keep) other resources.
		if !e.callArgsSummary(f, call) {
			for _, a := range call.Args {
				e.scanEscape(f, a, true)
			}
		}
		ob := &obState{call: call, open: true, names: map[string]bool{}, param: -1}
		if lhs := tupleLhs(n, i, resIdx); lhs != nil {
			id, isId := lhs.(*ast.Ident)
			if !isId || !e.isLocal(id) {
				// Blank (immediate leak, reported syntactically), or stored
				// straight into a global/field/index: not ours to track.
				continue
			}
			ob.names[e.al.Canon(id)] = true
		}
		if errIdx >= 0 {
			if lhs := tupleLhs(n, i, errIdx); lhs != nil {
				if id, isId := lhs.(*ast.Ident); isId && id.Name != "_" {
					ob.errName = e.al.Canon(id)
					ob.errLive = true
				}
			}
		}
		f[call.Lparen] = ob
		created[ob] = true
	}

	// A tuple assignment from a non-source call still passes nothing we
	// track, but its arguments can escape resources.
	if len(n.Lhs) != len(n.Rhs) && len(n.Rhs) == 1 && !handledRhs[0] {
		e.scanEscape(f, n.Rhs[0], true)
	}

	// Alias rebinding: `g := f` extends the name set; `x.field = f` or
	// `arr[i] = f` escapes; `f = other` unbinds.
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if len(n.Lhs) == len(n.Rhs) {
			rhs = n.Rhs[i]
			if handledRhs[i] {
				rhs = nil
			}
		} else if len(n.Rhs) == 1 {
			if handledRhs[0] {
				rhs = nil
			} else {
				rhs = nil // tuple from a non-source call: nothing to bind
			}
		}

		lhsId, lhsIsIdent := ast.Unparen(lhs).(*ast.Ident)

		if rhs != nil {
			rcanon := e.al.Canon(rhs)
			if obs := holders(f, rcanon); len(obs) > 0 && isPathExpr(rhs) {
				for _, ob := range obs {
					if lhsIsIdent && lhsId.Name != "_" && e.isLocal(lhsId) {
						ob.names[e.al.Canon(lhsId)] = true
					} else if lhsIsIdent && lhsId.Name == "_" {
						// `_ = r`: a deliberate no-op use, not an escape.
					} else {
						// Stored into a global or structure: ownership escapes.
						ob.open = false
						ob.effect |= EffEscape
					}
				}
				continue
			}
			e.scanEscape(f, rhs, true)
		}

		// Overwriting a bound name drops that alias; reassigning a tracked
		// error kills its refinement power.
		if lhsIsIdent && lhsId.Name != "_" {
			c := e.al.Canon(lhsId)
			for _, ob := range f {
				if created[ob] {
					continue // this statement's own binding
				}
				if ob.names[c] {
					delete(ob.names, c)
				}
				if ob.errLive && ob.errName == c {
					ob.errLive = false
				}
			}
		} else if !lhsIsIdent {
			e.scanEscape(f, lhs, false)
		}
	}
}

func (e *obEngine) exprStmt(f obFact, n *ast.ExprStmt) {
	call, ok := ast.Unparen(n.X).(*ast.CallExpr)
	if !ok {
		e.scanEscape(f, n.X, false)
		return
	}
	if e.release(f, call) {
		return
	}
	if _, _, isSrc := e.sourceOf(call); isSrc {
		// Discarded resource; reported as an immediate leak syntactically.
		if !e.callArgsSummary(f, call) {
			for _, a := range call.Args {
				e.scanEscape(f, a, true)
			}
		}
		return
	}
	e.scanCall(f, call)
}

func (e *obEngine) deferStmt(f obFact, n *ast.DeferStmt) {
	// `defer f.Release()` discharges the obligation for every path from
	// here on — deferred calls run on all exits. A closure body inside the
	// defer is a capture: scanned as an escape, which is also a discharge.
	if e.release(f, n.Call) {
		return
	}
	e.scanCall(f, n.Call)
}

// release closes the obligation whose alias set contains the call's
// receiver, returning true if the call is a release.
func (e *obEngine) release(f obFact, call *ast.CallExpr) bool {
	if !e.spec.IsRelease(call) {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := e.al.Canon(sel.X)
	for _, ob := range holders(f, recv) {
		ob.open = false
		ob.effect |= EffRelease
	}
	// A release of something we aren't tracking (a parameter, a field):
	// still a release call, not an escape of its receiver.
	return true
}

// sourceOf extends the spec's Source classification with summarized
// sources: a known callee whose summary carries a fresh result obligation.
func (e *obEngine) sourceOf(call *ast.CallExpr) (resIdx, errIdx int, ok bool) {
	if r, er, isSrc := e.spec.Source(call); isSrc {
		return r, er, true
	}
	if e.spec.Summaries != nil {
		if fn := Callee(e.info, call); fn != nil {
			if s, have := e.spec.Summaries(fn); have && s.Result >= 0 {
				return s.Result, s.Err, true
			}
		}
	}
	return 0, 0, false
}

// scanCall treats a non-release, non-source call: with a callee summary,
// each argument gets the callee's per-parameter effect; otherwise the
// receiver path is a use and the arguments escape (TopEffect).
func (e *obEngine) scanCall(f obFact, call *ast.CallExpr) {
	if e.callArgsSummary(f, call) {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Method call on the resource (f.Data(), f.MarkDirty()): a use.
		e.scanEscape(f, sel.X, false)
	} else {
		e.scanEscape(f, call.Fun, true)
	}
	for _, a := range call.Args {
		e.scanEscape(f, a, true)
	}
}

// callArgsSummary applies a known callee's per-parameter effects to the
// call's (receiver-flattened) arguments. It returns false when no summary
// is available or the call shape cannot be aligned, in which case the
// caller falls back to the conservative escape treatment.
func (e *obEngine) callArgsSummary(f obFact, call *ast.CallExpr) bool {
	if e.spec.Summaries == nil {
		return false
	}
	fn := Callee(e.info, call)
	if fn == nil {
		return false
	}
	sum, ok := e.spec.Summaries(fn)
	if !ok {
		return false
	}
	args, ok := FlatArgs(e.info, call, fn)
	if !ok {
		return false
	}
	for i, a := range args {
		idx := flatIndex(fn, i)
		au := ast.Unparen(a)
		if isPathExpr(au) {
			if obs := holders(f, e.al.Canon(au)); len(obs) > 0 {
				for _, ob := range obs {
					e.applyEffect(ob, sum.effectFor(idx), fn, sum.chainFor(idx))
				}
				continue
			}
			// An untracked path argument: a plain use.
			e.scanEscape(f, a, false)
			continue
		}
		// Composite/derived arguments can bury a resource; keep the
		// conservative escape for those.
		e.scanEscape(f, a, true)
	}
	return true
}

// applyEffect applies a callee's parameter effect to a tracked obligation
// at a call site.
func (e *obEngine) applyEffect(ob *obState, eff ParamEffect, callee *types.Func, calleeChain []string) {
	ob.effect |= eff &^ EffKeep
	if eff.Discharges() {
		ob.open = false
		return
	}
	// The callee may leave the obligation with the caller: it stays open,
	// and the helper chain is recorded for the diagnostic.
	if len(ob.chain) == 0 {
		chain := append([]string{callee.Name()}, calleeChain...)
		if len(chain) > chainCap {
			chain = chain[:chainCap]
		}
		ob.chain = chain
	}
}

// noteReturn records, in summary mode, a result position that hands a
// fresh obligation to the caller: either a tracked open obligation's
// resource returned by name, or a source call returned directly.
func (e *obEngine) noteReturn(f obFact, n *ast.ReturnStmt) {
	if e.retRes >= 0 {
		return // first detection wins (deterministic: fixed walk order)
	}
	for i, r := range n.Results {
		ru := ast.Unparen(r)
		if call, isCall := ru.(*ast.CallExpr); isCall {
			res, errI, isSrc := e.sourceOf(call)
			if !isSrc {
				continue
			}
			if len(n.Results) == 1 {
				// `return src(...)`: the callee's results pass through
				// unchanged, indices and all.
				e.retRes, e.retErr = res, errI
			} else {
				e.retRes, e.retErr = i, -1
			}
			return
		}
		if !isPathExpr(ru) {
			continue
		}
		var ob *obState
		for _, cand := range holders(f, e.al.Canon(ru)) {
			if cand.param < 0 && cand.call != nil {
				ob = cand // earliest source position wins: deterministic
				break
			}
		}
		if ob == nil {
			continue
		}
		e.retRes, e.retErr = i, -1
		if ob.errName != "" {
			for j, rr := range n.Results {
				if j != i && isPathExpr(ast.Unparen(rr)) && e.al.Canon(rr) == ob.errName {
					e.retErr = j
				}
			}
		}
		return
	}
}

// scanNode conservatively scans any remaining statement kind.
func (e *obEngine) scanNode(f obFact, n ast.Node) {
	WalkShallow(n, func(m ast.Node) bool {
		if expr, ok := m.(ast.Expr); ok {
			e.scanEscape(f, expr, false)
			return false
		}
		return true
	})
}

// scanEscape walks an expression; any appearance of a tracked resource in
// an escaping position (call argument, composite literal, return value,
// address-taken, closure capture) discharges its obligation — ownership is
// assumed transferred, and the callee/holder is responsible for release.
// Non-escaping positions (selector base, index base, nil comparison) are
// uses and keep the obligation open.
func (e *obEngine) scanEscape(f obFact, expr ast.Expr, escaping bool) {
	if expr == nil {
		return
	}
	switch expr := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if !escaping {
			return
		}
		for _, ob := range holders(f, e.al.Canon(expr)) {
			ob.open = false
			ob.effect |= EffEscape
		}
	case *ast.SelectorExpr:
		e.scanEscape(f, expr.X, false)
	case *ast.IndexExpr:
		e.scanEscape(f, expr.X, false)
		e.scanEscape(f, expr.Index, false)
	case *ast.StarExpr:
		e.scanEscape(f, expr.X, false)
	case *ast.UnaryExpr:
		// &f may stash the resource anywhere.
		e.scanEscape(f, expr.X, expr.Op == token.AND || escaping)
	case *ast.BinaryExpr:
		e.scanEscape(f, expr.X, false)
		e.scanEscape(f, expr.Y, false)
	case *ast.CallExpr:
		if !e.release(f, expr) {
			if _, _, isSrc := e.sourceOf(expr); !isSrc {
				e.scanCall(f, expr)
			}
		}
	case *ast.CompositeLit:
		for _, el := range expr.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				e.scanEscape(f, kv.Value, true)
			} else {
				e.scanEscape(f, el, true)
			}
		}
	case *ast.FuncLit:
		// Captures: any tracked name referenced inside the literal escapes.
		ast.Inspect(expr.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				for _, ob := range holders(f, e.al.Canon(id)) {
					ob.open = false
					ob.effect |= EffEscape
				}
			}
			return true
		})
	case *ast.TypeAssertExpr:
		e.scanEscape(f, expr.X, escaping)
	case *ast.SliceExpr:
		e.scanEscape(f, expr.X, false)
	case *ast.KeyValueExpr:
		e.scanEscape(f, expr.Value, escaping)
	}
}

// refine applies a branch assumption. Two patterns matter:
//
//	f, err := Get(...); if err != nil { return err }   — obligation dead on
//	the error arm (Get returns a nil resource with a non-nil error);
//
//	if f == nil { ... }                                — obligation dead on
//	the nil arm.
func (e *obEngine) refine(f obFact, a *Assume) {
	bin, ok := ast.Unparen(a.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return
	}
	var other ast.Expr
	switch {
	case isNilIdent(bin.Y):
		other = bin.X
	case isNilIdent(bin.X):
		other = bin.Y
	default:
		return
	}
	canon := e.al.Canon(other)
	// On this branch, is `other` known non-nil?
	nonNil := (bin.Op == token.NEQ) != a.Negated
	for _, ob := range f {
		if !ob.open {
			continue
		}
		if nonNil && ob.errLive && ob.errName == canon {
			ob.open = false // error path: no resource was acquired
		}
		if !nonNil && ob.names[canon] {
			ob.open = false // resource known nil here
		}
	}
}

// isLocal reports whether an identifier names a function-local variable
// (or parameter) — the only things an alias binding may track. Globals and
// fields outlive the function: storing a resource there is an escape.
func (e *obEngine) isLocal(id *ast.Ident) bool {
	obj := e.info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Package-level variables live in the package scope, whose parent is
	// Universe; anything nested deeper is local.
	if p := v.Parent(); p != nil && p.Parent() == types.Universe {
		return false
	}
	return true
}

// holders returns every open obligation binding canon, ordered by source
// position. After a join, one name can bind several obligations — a loop
// that releases and re-acquires through the same variable merges the
// entry-path obligation with the back-edge one — and any operation through
// that name (release, escape, callee effect) holds on each path for
// whichever obligation the name bound there, so it must be applied to all
// of them. Applying to just one (in map order) is both wrong on the other
// path and non-deterministic.
func holders(f obFact, canon string) []*obState {
	var keys []token.Pos
	for k, ob := range f {
		if ob.open && ob.names[canon] {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]*obState, len(keys))
	for i, k := range keys {
		out[i] = f[k]
	}
	return out
}

// tupleLhs returns the LHS expression receiving result #idx of the call at
// Rhs[i], for both `a, b := f()` (tuple) and `a := f()` (1:1) shapes.
func tupleLhs(n *ast.AssignStmt, i, idx int) ast.Expr {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		if idx < len(n.Lhs) {
			return n.Lhs[idx]
		}
		return nil
	}
	if len(n.Lhs) == len(n.Rhs) && idx == 0 {
		return n.Lhs[i]
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isPathExpr reports whether an expression is a pure path (no calls), i.e.
// assigning it creates an alias rather than transferring a computed value.
func isPathExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isPathExpr(e.X)
	case *ast.IndexExpr:
		return isPathExpr(e.X)
	case *ast.StarExpr:
		return isPathExpr(e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && isPathExpr(e.X)
	}
	return false
}
