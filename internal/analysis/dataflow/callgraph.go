package dataflow

import (
	"go/ast"
	"go/types"
)

// FuncInfo is one node of the per-unit call graph: a declared function or
// method and the package-local functions it calls. Calls through function
// values, interfaces, or into other packages do not appear as edges — those
// callees are resolved (if at all) through imported summaries, or fall back
// to the conservative top summary.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Callees lists the package-local declared functions referenced by call
	// expressions anywhere under the body (closures included — a call made
	// from a nested literal still couples the two functions' summaries),
	// deduplicated, in source order.
	Callees []*types.Func
}

// A CallGraph holds every declared function of one package unit with its
// local call edges and the bottom-up SCC order summary computation follows.
type CallGraph struct {
	Funcs map[*types.Func]*FuncInfo
	// Order lists the functions in declaration order (file order, then
	// position) — the deterministic base ordering everything else derives
	// from.
	Order []*types.Func
	// SCCs partitions Order into strongly connected components in reverse
	// topological order: every callee of a component is either inside it or
	// in an earlier component, so processing SCCs front to back sees callee
	// summaries before caller summaries except for recursion, which the
	// per-SCC fixpoint handles.
	SCCs [][]*types.Func
}

// BuildCallGraph collects the FuncDecls of a package unit and resolves their
// syntactic call edges through the type info.
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	cg := &CallGraph{Funcs: make(map[*types.Func]*FuncInfo)}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.Funcs[fn] = &FuncInfo{Fn: fn, Decl: fd}
			cg.Order = append(cg.Order, fn)
		}
	}
	for _, fn := range cg.Order {
		fi := cg.Funcs[fn]
		seen := make(map[*types.Func]bool)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := Callee(info, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, local := cg.Funcs[callee]; local {
				seen[callee] = true
				fi.Callees = append(fi.Callees, callee)
			}
			return true
		})
	}
	cg.SCCs = cg.sccs()
	return cg
}

// Callee resolves a call expression to the named function or method it
// invokes, or nil for calls through function values, conversions, and
// builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// sccs runs Tarjan's algorithm (iterative, so deep call chains cannot blow
// the stack) over the local edges. Tarjan emits components in reverse
// topological order — exactly the bottom-up order summaries need.
func (cg *CallGraph) sccs() [][]*types.Func {
	index := make(map[*types.Func]int, len(cg.Order))
	low := make(map[*types.Func]int, len(cg.Order))
	onStack := make(map[*types.Func]bool, len(cg.Order))
	var stack []*types.Func
	var out [][]*types.Func
	next := 0

	type frame struct {
		fn *types.Func
		ci int // next callee edge to visit
	}
	for _, root := range cg.Order {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{fn: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			fr := &work[len(work)-1]
			callees := cg.Funcs[fr.fn].Callees
			if fr.ci < len(callees) {
				c := callees[fr.ci]
				fr.ci++
				if _, seen := index[c]; !seen {
					index[c], low[c] = next, next
					next++
					stack = append(stack, c)
					onStack[c] = true
					work = append(work, frame{fn: c})
				} else if onStack[c] && index[c] < low[fr.fn] {
					low[fr.fn] = index[c]
				}
				continue
			}
			// All edges visited: pop, propagate lowlink, maybe emit an SCC.
			fn := fr.fn
			work = work[:len(work)-1]
			if len(work) > 0 {
				if parent := work[len(work)-1].fn; low[fn] < low[parent] {
					low[parent] = low[fn]
				}
			}
			if low[fn] == index[fn] {
				var comp []*types.Func
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == fn {
						break
					}
				}
				out = append(out, comp)
			}
		}
	}
	return out
}
