package dataflow

import (
	"go/types"
)

// ComputeObSummaries computes one obligation summary per declared function
// of a package unit, bottom-up over the call graph's SCCs. Within an SCC the
// members start from the optimistic bottom ("discharges everything, no
// source") and iterate to a fixpoint — effect bits only ever turn on, so the
// sweep converges; an SCC that exceeds its iteration budget falls back to the
// top summary (members deleted from the map, so callers see TopEffect).
// imported supplies cross-package callee summaries keyed by
// types.Func.FullName; spec.Summaries is ignored and replaced by the
// local-then-imported lookup.
func ComputeObSummaries(cg *CallGraph, info *types.Info, spec LeakSpec, imported map[string]ObSummary) (map[*types.Func]ObSummary, SummaryStats) {
	sums := make(map[*types.Func]ObSummary, len(cg.Order))
	stats := SummaryStats{Functions: len(cg.Order)}
	spec.Summaries = func(fn *types.Func) (ObSummary, bool) {
		if s, ok := sums[fn]; ok {
			return s, true
		}
		s, ok := imported[fn.FullName()]
		return s, ok
	}
	for _, comp := range cg.SCCs {
		recursive := len(comp) > 1 || selfCalls(cg, comp[0])
		for _, fn := range comp {
			sums[fn] = ObSummary{Params: make([]ParamEffect, len(flatParams(fn))), Result: -1, Err: -1}
		}
		bound := sccIterBound(len(comp))
		iters, bailed := 0, false
		for {
			iters++
			changed := false
			for _, fn := range comp {
				ns := summarizeOb(cg.Funcs[fn], info, spec)
				if !ns.sameShape(sums[fn]) {
					changed = true
				}
				sums[fn] = ns
			}
			if !changed || !recursive {
				break
			}
			if iters >= bound {
				// Non-convergence would mean a monotonicity bug; degrade to
				// the sound top summary rather than loop.
				bailed = true
				for _, fn := range comp {
					delete(sums, fn)
				}
				break
			}
		}
		stats.observe(iters, bailed)
	}
	return sums, stats
}

// summarizeOb runs the obligation engine over one function with its
// resource-typed parameters seeded as pseudo-obligations, and reads the
// summary off the exit fact and the return statements.
func summarizeOb(fi *FuncInfo, info *types.Info, spec LeakSpec) ObSummary {
	params := flatParams(fi.Fn)
	sum := ObSummary{Result: -1, Err: -1}
	if len(params) > 0 {
		sum.Params = make([]ParamEffect, len(params))
	}
	var seeds []paramSeed
	for i, p := range params {
		if spec.IsResource == nil || !spec.IsResource(p.Type()) {
			continue
		}
		if p.Name() == "" || p.Name() == "_" {
			// An ignored resource parameter stays with the caller.
			sum.Params[i] = EffKeep
			continue
		}
		seeds = append(seeds, paramSeed{idx: i, v: p})
	}

	body := fi.Decl.Body
	cfg := New(body)
	eng := &obEngine{
		spec:       spec,
		info:       info,
		al:         NewAliases(body, info),
		seeds:      seeds,
		entryIndex: cfg.Entry.Index,
		retRes:     -1,
		retErr:     -1,
	}
	in := Forward[obFact](cfg, obLattice{}, eng.transfer)

	for _, ob := range in[cfg.Exit.Index] {
		if ob.param < 0 {
			continue
		}
		eff := ob.effect
		if ob.open {
			eff |= EffKeep
		}
		sum.Params[ob.param] = eff
		if eff&EffKeep != 0 && len(ob.chain) > 0 {
			if sum.Chains == nil {
				sum.Chains = make([][]string, len(params))
			}
			sum.Chains[ob.param] = ob.chain
		}
	}
	// Seeded parameters absent from the exit fact had no normally-returning
	// path (every exit panics): effect 0 — code after such a call is dead.
	sum.Result, sum.Err = eng.retRes, eng.retErr
	return sum
}

func selfCalls(cg *CallGraph, fn *types.Func) bool {
	for _, c := range cg.Funcs[fn].Callees {
		if c == fn {
			return true
		}
	}
	return false
}
