package dataflow

// Lattice describes the fact domain of one forward analysis. F is the
// per-block fact type (typically a map or a small struct of maps); the
// driver treats it opaquely.
type Lattice[F any] interface {
	// Bottom returns the "no information" fact carried into unvisited
	// blocks. Entry receives Bottom too; analyses that need a distinguished
	// entry fact can special-case Block.Index == Entry.Index in Transfer.
	Bottom() F
	// Clone returns an independent copy a transfer function may mutate.
	Clone(F) F
	// Join merges src into dst in place and reports whether dst changed.
	// For may-analyses this is set union.
	Join(dst, src F) (F, bool)
}

// Transfer applies one block's nodes to an incoming fact and returns the
// outgoing fact. It owns `in` (the driver passes a clone).
type Transfer[F any] func(b *Block, in F) F

// Forward runs a forward dataflow fixpoint over the CFG and returns the
// fact at the *start* of every block, indexed by Block.Index. Blocks are
// processed with a FIFO worklist; termination requires Join to be monotone
// and the fact domain to have finite height (true for the finite powerset
// domains the dualvet analyzers use).
func Forward[F any](c *CFG, lat Lattice[F], tf Transfer[F]) []F {
	in := make([]F, len(c.Blocks))
	for i := range in {
		in[i] = lat.Bottom()
	}

	// Seed with every live block (index order approximates reverse
	// post-order closely enough here) so each is transferred at least once
	// even when the incoming join never changes its Bottom fact.
	var work []*Block
	queued := make([]bool, len(c.Blocks))
	for _, b := range c.Blocks {
		if b.Live {
			work = append(work, b)
			queued[b.Index] = true
		}
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		out := tf(b, lat.Clone(in[b.Index]))
		for _, s := range b.Succs {
			merged, changed := lat.Join(in[s.Index], out)
			in[s.Index] = merged
			if changed && !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}
