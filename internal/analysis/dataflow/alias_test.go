package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheck parses a full file and returns the last FuncDecl with its info.
func typecheck(t *testing.T, src string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if f, ok := d.(*ast.FuncDecl); ok {
			fn = f
		}
	}
	return fn, info
}

const aliasSrc = `package p

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

type pool struct {
	shards []*shard
}
`

func TestCanonResolvesSingleAssignmentCopy(t *testing.T) {
	fn, info := typecheck(t, aliasSrc+`
func f(p *pool, i int) {
	s := p.shards[i]
	s.mu.Lock()
	_ = p.shards[i].n
	s.mu.Unlock()
}
`)
	al := NewAliases(fn.Body, info)

	// Dig out `s.mu` and `p.shards[i]` from the body.
	var sMu, pShardsI ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "s" && sel.Sel.Name == "mu" && sMu == nil {
				sMu = sel
			}
		}
		if ix, ok := n.(*ast.IndexExpr); ok && pShardsI == nil {
			pShardsI = ix
		}
		return true
	})
	if sMu == nil || pShardsI == nil {
		t.Fatal("test scaffolding failed to find expressions")
	}
	want := al.Canon(pShardsI) + ".mu"
	if got := al.Canon(sMu); got != want {
		t.Fatalf("s.mu should canonicalize through the alias: got %q want %q", got, want)
	}
}

func TestCanonDoesNotResolveReassigned(t *testing.T) {
	fn, info := typecheck(t, aliasSrc+`
func f(p *pool, i, j int) {
	s := p.shards[i]
	s = p.shards[j]
	s.mu.Lock()
	s.mu.Unlock()
}
`)
	al := NewAliases(fn.Body, info)
	var sMu ast.Expr
	var firstIndex ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "s" && sel.Sel.Name == "mu" && sMu == nil {
				sMu = sel
			}
		}
		if ix, ok := n.(*ast.IndexExpr); ok && firstIndex == nil {
			firstIndex = ix
		}
		return true
	})
	got := al.Canon(sMu)
	if got == al.Canon(firstIndex)+".mu" {
		t.Fatalf("reassigned local must not resolve through its first definition: %q", got)
	}
}

func TestCanonDoesNotResolveThroughCalls(t *testing.T) {
	fn, info := typecheck(t, aliasSrc+`
func pick(p *pool, i int) *shard { return p.shards[i] }

func f(p *pool, i int) {
	a := pick(p, i)
	b := pick(p, i)
	_ = a
	_ = b
}
`)
	al := NewAliases(fn.Body, info)
	var aId, bId *ast.Ident
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				switch id.Name {
				case "a":
					aId = id
				case "b":
					bId = id
				}
			}
		}
		return true
	})
	if al.Canon(aId) == al.Canon(bId) {
		t.Fatal("two distinct call results must not canonicalize equal")
	}
}

func TestCanonShadowedLocalsDistinct(t *testing.T) {
	fn, info := typecheck(t, aliasSrc+`
func f(p *pool) {
	s := p.shards[0]
	{
		s := p.shards[1]
		_ = s
	}
	_ = s
}
`)
	al := NewAliases(fn.Body, info)
	var uses []*ast.Ident
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "s" {
			uses = append(uses, id)
		}
		return true
	})
	// The two `_ = s` uses (last two) resolve to different shards.
	inner, outer := uses[len(uses)-2], uses[len(uses)-1]
	if al.Canon(inner) == al.Canon(outer) {
		t.Fatal("shadowed locals must canonicalize differently")
	}
}

func TestCanonStarAndAddr(t *testing.T) {
	fn, info := typecheck(t, aliasSrc+`
func f(s *shard) {
	q := &s.mu
	_ = q
}
`)
	al := NewAliases(fn.Body, info)
	var qId *ast.Ident
	var sMu ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "q" {
				qId = id
				if ue, ok := as.Rhs[0].(*ast.UnaryExpr); ok {
					sMu = ue.X
				}
			}
		}
		return true
	})
	if al.Canon(qId) != al.Canon(sMu) {
		t.Fatalf("q := &s.mu should alias s.mu: %q vs %q", al.Canon(qId), al.Canon(sMu))
	}
}
