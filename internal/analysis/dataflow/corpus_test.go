package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestCFGCorpusNoPanic builds a CFG for every function and function
// literal in the repository and runs a counting fixpoint over each. The
// builder is purely syntactic, so the whole module — including testdata
// with deliberately odd control flow — is fair game: any panic, edge
// inconsistency or non-terminating fixpoint here is a bug in the engine,
// not in the corpus.
func TestCFGCorpusNoPanic(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	files, funcs := 0, 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "related") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
		if err != nil {
			// Testdata may hold intentionally broken files; the corpus
			// covers everything that parses.
			t.Logf("skipping unparseable %s: %v", path, err)
			return nil
		}
		files++
		rel, _ := filepath.Rel(root, path)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			funcs += checkCorpusFunc(t, fset, rel, fd.Name.Name, fd.Body)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files < 50 || funcs < 300 {
		t.Fatalf("corpus suspiciously small: %d files, %d functions (did the walk root move?)", files, funcs)
	}
	t.Logf("corpus: %d files, %d functions", files, funcs)
}

// checkCorpusFunc builds and sanity-checks the CFG of one body and of
// every function literal inside it, returning the number checked.
func checkCorpusFunc(t *testing.T, fset *token.FileSet, file, name string, body *ast.BlockStmt) int {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: %s: CFG construction panicked: %v", file, name, r)
		}
	}()
	n := 1
	checkCorpusCFG(t, file, name, New(body))
	for _, fl := range FuncLits(body) {
		n++
		checkCorpusCFG(t, file, name+":funclit", New(fl.Body))
	}
	return n
}

// corpusLattice is the two-point reachability lattice — bounded, so the
// fixpoint must terminate even across back edges, while still driving a
// transfer over every live block.
type corpusLattice struct{}

func (corpusLattice) Bottom() bool      { return false }
func (corpusLattice) Clone(f bool) bool { return f }
func (corpusLattice) Join(dst, src bool) (bool, bool) {
	return dst || src, src && !dst
}

func checkCorpusCFG(t *testing.T, file, name string, c *CFG) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Fatalf("%s: %s: "+format, append([]any{file, name}, args...)...)
	}
	if c.Entry == nil || c.Exit == nil || c.Halt == nil {
		fail("virtual blocks missing: entry=%v exit=%v halt=%v", c.Entry, c.Exit, c.Halt)
	}
	if !c.Entry.Live {
		fail("entry block not live")
	}
	for i, b := range c.Blocks {
		if b.Index != i {
			fail("block %d holds index %d", i, b.Index)
		}
		for _, s := range b.Succs {
			if !hasBlock(s.Preds, b) {
				fail("block %d → %d edge missing the back-pointer", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !hasBlock(p.Succs, b) {
				fail("block %d pred %d has no matching succ", b.Index, p.Index)
			}
		}
		if b.Live && b != c.Exit && b != c.Halt && len(b.Succs) == 0 {
			fail("live block %d dead-ends outside Exit/Halt", b.Index)
		}
	}
	// The fixpoint must terminate and visit every live block.
	in := Forward(c, corpusLattice{}, func(b *Block, f bool) bool { return true })
	if len(in) != len(c.Blocks) {
		fail("fixpoint returned %d facts for %d blocks", len(in), len(c.Blocks))
	}
}

func hasBlock(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// repoRoot walks up from the package directory to the module root.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

// TestSummaryCorpusConverges typechecks every repository package and runs
// the obligation and borrow summary computations over its call graph with
// generic type-name-based specs. Every SCC must converge inside its
// iteration budget (a bail here means a monotonicity bug in a transfer
// function, not a corpus problem), and the summarization itself must stay
// inside the per-unit wall-time budget the unit driver depends on.
func TestSummaryCorpusConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repository against stdlib source")
	}
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	ld := newCorpusLoader(root)
	paths, err := ld.repoPackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("suspiciously few packages: %v", paths)
	}

	spec := corpusLeakSpec(ld.info)
	bspec := corpusBorrowSpec(ld.info)

	var funcs, sccs, maxIters, maxComp int
	var sumTime time.Duration
	for _, path := range paths {
		lp, err := ld.load(path)
		if err != nil {
			t.Fatalf("typechecking %s: %v", path, err)
		}
		start := time.Now()
		cg := BuildCallGraph(lp.files, ld.info)
		for _, comp := range cg.SCCs {
			if len(comp) > maxComp {
				maxComp = len(comp)
			}
		}
		_, ostats := ComputeObSummaries(cg, ld.info, spec, nil)
		_, bstats := ComputeBorrowSummaries(cg, ld.info, bspec, nil)
		sumTime += time.Since(start)
		for _, st := range []SummaryStats{ostats, bstats} {
			if st.Bailed != 0 {
				t.Errorf("%s: %d SCCs bailed to top — non-monotone transfer function", path, st.Bailed)
			}
			if st.MaxIters > maxIters {
				maxIters = st.MaxIters
			}
			sccs += st.SCCs
		}
		funcs += ostats.Functions
	}
	if funcs < 400 {
		t.Fatalf("summary corpus suspiciously small: %d functions (did the loader lose packages?)", funcs)
	}
	if bound := sccIterBound(maxComp); maxIters > bound {
		t.Fatalf("fixpoint took %d sweeps, bound for the largest SCC (%d funcs) is %d", maxIters, maxComp, bound)
	}
	// Per-unit budget: the unit driver adds summary computation to every
	// go vet invocation, so the whole-repo cost must stay far below the
	// CI analysis budget. Typechecking time is excluded — the driver gets
	// type info for free from go vet.
	if sumTime > 5*time.Second {
		t.Fatalf("summary computation over the repo took %v, budget 5s", sumTime)
	}
	t.Logf("summary corpus: %d packages, %d functions, %d SCCs (largest %d), max %d sweeps, %v total",
		len(paths), funcs, sccs, maxComp, maxIters, sumTime)
}

// corpusLeakSpec is a repo-generic obligation discipline: any call whose
// results include one of the repository's resource types opens an
// obligation, and any Release/End/Done method on such a type closes it.
func corpusLeakSpec(info *types.Info) LeakSpec {
	isRes := func(t types.Type) bool {
		return corpusNamed(t, "Frame", "SpanTimer", "BatchTimer")
	}
	return LeakSpec{
		IsResource: isRes,
		Source: func(call *ast.CallExpr) (int, int, bool) {
			tv, ok := info.Types[call]
			if !ok || tv.Type == nil {
				return 0, 0, false
			}
			var elems []types.Type
			if tup, isTup := tv.Type.(*types.Tuple); isTup {
				for i := 0; i < tup.Len(); i++ {
					elems = append(elems, tup.At(i).Type())
				}
			} else {
				elems = []types.Type{tv.Type}
			}
			res, errIdx := -1, -1
			for i, e := range elems {
				if res < 0 && isRes(e) {
					res = i
				}
				if errIdx < 0 && types.Identical(e, types.Universe.Lookup("error").Type()) {
					errIdx = i
				}
			}
			if res < 0 {
				return 0, 0, false
			}
			return res, errIdx, true
		},
		IsRelease: func(call *ast.CallExpr) bool {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return false
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return false
			}
			switch fn.Name() {
			case "Release", "End", "Done":
			default:
				return false
			}
			sig, ok := fn.Type().(*types.Signature)
			return ok && sig.Recv() != nil && isRes(sig.Recv().Type())
		},
	}
}

// corpusBorrowSpec mirrors pinleak's view discipline by type and method
// name alone.
func corpusBorrowSpec(info *types.Info) BorrowSpec {
	isLender := func(t types.Type) bool { return corpusNamed(t, "node", "Frame") }
	return BorrowSpec{
		IsLender: isLender,
		Borrow: func(call *ast.CallExpr) ([]ast.Expr, int, bool) {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return nil, 0, false
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return nil, 0, false
			}
			switch fn.Name() {
			case "view":
				return []ast.Expr{sel.X}, 0, true
			case "leafView":
				if len(call.Args) > 0 {
					return []ast.Expr{call.Args[0]}, 0, true
				}
			}
			return nil, 0, false
		},
		IsRelease: func(call *ast.CallExpr) bool {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return false
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return false
			}
			switch fn.Name() {
			case "release", "Release":
			default:
				return false
			}
			sig, ok := fn.Type().(*types.Signature)
			return ok && sig.Recv() != nil && isLender(sig.Recv().Type())
		},
	}
}

func corpusNamed(t types.Type, names ...string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, n := range names {
		if named.Obj().Name() == n {
			return true
		}
	}
	return false
}

// corpusLoader typechecks repository packages by import path, resolving
// dualcdb/... against the working tree and everything else against stdlib
// source. One shared types.Info collects every package's facts so the
// summary computations can run against it uniformly.
type corpusLoader struct {
	root   string
	fset   *token.FileSet
	info   *types.Info
	std    types.Importer
	loaded map[string]*corpusPkg
}

type corpusPkg struct {
	pkg   *types.Package
	files []*ast.File
	err   error
}

func newCorpusLoader(root string) *corpusLoader {
	fset := token.NewFileSet()
	return &corpusLoader{
		root: root,
		fset: fset,
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: map[string]*corpusPkg{},
	}
}

// repoPackages lists the module's package import paths in walk order,
// skipping testdata (fake import paths) and non-Go directories.
func (ld *corpusLoader) repoPackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(ld.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch name := d.Name(); {
			case strings.HasPrefix(name, ".") && path != ld.root,
				name == "testdata", name == "related":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(ld.root, dir)
		if err != nil {
			return err
		}
		ip := "dualcdb"
		if rel != "." {
			ip = "dualcdb/" + filepath.ToSlash(rel)
		}
		for _, seen := range out {
			if seen == ip {
				return nil
			}
		}
		out = append(out, ip)
		return nil
	})
	return out, err
}

func (ld *corpusLoader) load(path string) (*corpusPkg, error) {
	if lp, ok := ld.loaded[path]; ok {
		return lp, lp.err
	}
	lp := &corpusPkg{}
	ld.loaded[path] = lp
	dir := ld.root
	if path != "dualcdb" {
		dir = filepath.Join(ld.root, filepath.FromSlash(strings.TrimPrefix(path, "dualcdb/")))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		lp.err = err
		return lp, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			lp.err = err
			return lp, err
		}
		lp.files = append(lp.files, f)
	}
	imp := corpusImporterFunc(func(ip string) (*types.Package, error) {
		if ip == "dualcdb" || strings.HasPrefix(ip, "dualcdb/") {
			sub, err := ld.load(ip)
			return sub.pkg, err
		}
		return ld.std.Import(ip)
	})
	tc := &types.Config{Importer: imp}
	lp.pkg, lp.err = tc.Check(path, ld.fset, lp.files, ld.info)
	return lp, lp.err
}

type corpusImporterFunc func(path string) (*types.Package, error)

func (f corpusImporterFunc) Import(path string) (*types.Package, error) { return f(path) }
