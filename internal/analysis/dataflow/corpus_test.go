package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCFGCorpusNoPanic builds a CFG for every function and function
// literal in the repository and runs a counting fixpoint over each. The
// builder is purely syntactic, so the whole module — including testdata
// with deliberately odd control flow — is fair game: any panic, edge
// inconsistency or non-terminating fixpoint here is a bug in the engine,
// not in the corpus.
func TestCFGCorpusNoPanic(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	files, funcs := 0, 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "related") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
		if err != nil {
			// Testdata may hold intentionally broken files; the corpus
			// covers everything that parses.
			t.Logf("skipping unparseable %s: %v", path, err)
			return nil
		}
		files++
		rel, _ := filepath.Rel(root, path)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			funcs += checkCorpusFunc(t, fset, rel, fd.Name.Name, fd.Body)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files < 50 || funcs < 300 {
		t.Fatalf("corpus suspiciously small: %d files, %d functions (did the walk root move?)", files, funcs)
	}
	t.Logf("corpus: %d files, %d functions", files, funcs)
}

// checkCorpusFunc builds and sanity-checks the CFG of one body and of
// every function literal inside it, returning the number checked.
func checkCorpusFunc(t *testing.T, fset *token.FileSet, file, name string, body *ast.BlockStmt) int {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: %s: CFG construction panicked: %v", file, name, r)
		}
	}()
	n := 1
	checkCorpusCFG(t, file, name, New(body))
	for _, fl := range FuncLits(body) {
		n++
		checkCorpusCFG(t, file, name+":funclit", New(fl.Body))
	}
	return n
}

// corpusLattice is the two-point reachability lattice — bounded, so the
// fixpoint must terminate even across back edges, while still driving a
// transfer over every live block.
type corpusLattice struct{}

func (corpusLattice) Bottom() bool      { return false }
func (corpusLattice) Clone(f bool) bool { return f }
func (corpusLattice) Join(dst, src bool) (bool, bool) {
	return dst || src, src && !dst
}

func checkCorpusCFG(t *testing.T, file, name string, c *CFG) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Fatalf("%s: %s: "+format, append([]any{file, name}, args...)...)
	}
	if c.Entry == nil || c.Exit == nil || c.Halt == nil {
		fail("virtual blocks missing: entry=%v exit=%v halt=%v", c.Entry, c.Exit, c.Halt)
	}
	if !c.Entry.Live {
		fail("entry block not live")
	}
	for i, b := range c.Blocks {
		if b.Index != i {
			fail("block %d holds index %d", i, b.Index)
		}
		for _, s := range b.Succs {
			if !hasBlock(s.Preds, b) {
				fail("block %d → %d edge missing the back-pointer", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !hasBlock(p.Succs, b) {
				fail("block %d pred %d has no matching succ", b.Index, p.Index)
			}
		}
		if b.Live && b != c.Exit && b != c.Halt && len(b.Succs) == 0 {
			fail("live block %d dead-ends outside Exit/Halt", b.Index)
		}
	}
	// The fixpoint must terminate and visit every live block.
	in := Forward(c, corpusLattice{}, func(b *Block, f bool) bool { return true })
	if len(in) != len(c.Blocks) {
		fail("fixpoint returned %d facts for %d blocks", len(in), len(c.Blocks))
	}
}

func hasBlock(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// repoRoot walks up from the package directory to the module root.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
