package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Aliases canonicalizes expressions within one function body so that two
// syntactic paths naming the same object compare equal. The central case
// from ROADMAP: after `s := p.shards[i]`, both `s.mu` and `p.shards[i].mu`
// canonicalize to the same string.
//
// The map is deliberately modest — flow-insensitive, single-assignment
// only. A local is resolved through its defining expression only when that
// local is never reassigned anywhere in the body (including ++/--, range
// bindings, and unary &x escapes that could let it change behind our
// back... the last is conservative: &x disables resolution of x). That
// keeps canonicalization sound without needing SSA: a name that means two
// things at two program points is simply left opaque, which can only make
// an analysis less precise, never wrong in the may-direction.
type Aliases struct {
	info *types.Info
	// def maps a single-assignment local object to its sole defining
	// expression; nil value means "assigned more than once — do not
	// resolve".
	def map[types.Object]ast.Expr
	// canonCache memoizes resolution (cycles impossible: defs are from an
	// earlier position, and resolution stops at multi-assigned names).
	canonCache map[types.Object]string
}

// NewAliases scans a function body (with its type info) and returns the
// alias map for it. A nil body yields an empty, usable map.
func NewAliases(body ast.Node, info *types.Info) *Aliases {
	a := &Aliases{
		info:       info,
		def:        make(map[types.Object]ast.Expr),
		canonCache: make(map[types.Object]string),
	}
	if body == nil {
		return a
	}
	poison := func(id *ast.Ident) {
		if obj := info.ObjectOf(id); obj != nil {
			a.def[obj] = nil
		}
	}
	record := func(id *ast.Ident, rhs ast.Expr) {
		if id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		if prev, seen := a.def[obj]; seen {
			_ = prev
			a.def[obj] = nil // second write: poison
			return
		}
		a.def[obj] = rhs
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			} else {
				// Multi-value (tuple) assignment: the components have no
				// single defining expression worth resolving through.
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						poison(id)
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				poison(id)
			}
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
				poison(id)
			}
			if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
				poison(id)
			}
		case *ast.UnaryExpr:
			// &x lets x be written through the pointer; give up on it.
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					poison(id)
				}
			}
		case *ast.ValueSpec:
			// var x = e, or var x T (no values: leave unresolvable but
			// defined-once so it renders by name).
			for i, name := range n.Names {
				if i < len(n.Values) {
					record(name, n.Values[i])
				}
			}
		}
		return true
	})
	return a
}

// Canon renders an expression as a canonical path string. Identical strings
// mean "same object along any single execution of the function" (up to the
// single-assignment restriction above). Unrecognized expression forms are
// rendered uniquely by source position so they never collide.
func (a *Aliases) Canon(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return a.canonIdent(e)
	case *ast.SelectorExpr:
		return a.Canon(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return a.Canon(e.X) + "[" + a.Canon(e.Index) + "]"
	case *ast.StarExpr:
		// Auto-deref: *p and p name the same variable for field access.
		return a.Canon(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return a.Canon(e.X)
		}
	case *ast.BasicLit:
		return e.Value
	}
	return fmt.Sprintf("‹%T@%d›", e, e.Pos())
}

func (a *Aliases) canonIdent(id *ast.Ident) string {
	obj := a.info.ObjectOf(id)
	if obj == nil {
		return id.Name
	}
	if s, ok := a.canonCache[obj]; ok {
		return s
	}
	// Guard against pathological self-reference before recursing.
	a.canonCache[obj] = objKey(obj)
	if rhs, ok := a.def[obj]; ok && rhs != nil && resolvable(rhs) {
		s := a.Canon(rhs)
		a.canonCache[obj] = s
		return s
	}
	return a.canonCache[obj]
}

// DisplayPath strips the position qualifiers objKey adds to canonical
// paths, for use in diagnostics: "s·123.mu" renders as "s.mu".
func DisplayPath(canon string) string {
	var b []byte
	for i := 0; i < len(canon); {
		if canon[i] == 0xC2 && i+1 < len(canon) && canon[i+1] == 0xB7 { // '·'
			i += 2
			for i < len(canon) && canon[i] >= '0' && canon[i] <= '9' {
				i++
			}
			continue
		}
		b = append(b, canon[i])
		i++
	}
	return string(b)
}

// objKey renders a variable uniquely: name alone would conflate shadowed
// locals, so the declaration position disambiguates.
func objKey(obj types.Object) string {
	if obj.Pos() == token.NoPos {
		return obj.Name()
	}
	return fmt.Sprintf("%s·%d", obj.Name(), obj.Pos())
}

// resolvable limits which defining expressions a name is resolved through:
// pure path expressions only. Resolving through a call (`s := p.shard(i)`)
// would equate two distinct call results; resolving through arithmetic is
// meaningless for object identity.
func resolvable(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return resolvable(e.X)
	case *ast.IndexExpr:
		return resolvable(e.X) && indexResolvable(e.Index)
	case *ast.StarExpr:
		return resolvable(e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && resolvable(e.X)
	}
	return false
}

// indexResolvable accepts constant or identifier indices — `p.shards[i]`
// resolves as long as i itself is stable (if i is multi-assigned, its canon
// is position-qualified, so two different i's never collide).
func indexResolvable(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return resolvable(e.X)
	}
	return false
}
