package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The lock-set engine tracks which sync.Mutex/RWMutex locks are *held* at
// each CFG point — the inverse of the obligation engine, which tracks what
// must still be released. Facts are keyed by the alias map's canonical
// mutex path (`s.mu` and `p.shards[i].mu` are one lock after
// `s := p.shards[i]`), with embedded mutexes normalized through the
// selection path so `o.ring.Lock()` and a `guarded=Mutex` annotation on
// the ring's fields name the same canonical lock.
//
// Two senses of "held" flow together: Must (held on every path into the
// point — what a guarded write needs) and May (held on some path — what a
// release needs). Must is a meet/intersection lattice, so the fact carries
// an explicit Unreached top for blocks no real path has reached yet; the
// generic Forward driver's Bottom is that top. Deferred unlocks keep the
// lock in Must through the function body (that is the point of defer) and
// are subtracted only at the exit balance.
//
// Interprocedurally a LockSummary records, per function, the locks it
// acquires net of release (Begin), releases without acquiring (Commit,
// Abort — the caller must hold them) and requires held at entry (the
// *Locked helper idiom: a guarded write whose guard the function neither
// takes nor declares is charged to its callers). All three are expressed
// as field paths from a flattened parameter, so they survive vetx
// serialization across packages.

// LockMode distinguishes exclusive (Lock) from shared (RLock) holds.
type LockMode uint8

const (
	LockExcl LockMode = iota
	LockRead
)

func (m LockMode) String() string {
	if m == LockRead {
		return "r"
	}
	return "x"
}

// LockAcq describes one acquisition of a lock.
type LockAcq struct {
	Pos  token.Pos
	Mode LockMode
	// Try marks a TryLock acquisition (held only on the refined success
	// branch); exit-balance checks skip Try locks.
	Try bool
}

// LockFact is the engine's per-point fact.
type LockFact struct {
	// Unreached is the lattice top: no execution path has reached this
	// block yet, so it constrains nothing at a join.
	Unreached bool
	// Must holds locks held on every path into the point; May on at least
	// one. Must ⊆ May.
	Must map[string]LockAcq
	May  map[string]LockAcq
	// Rel records locks that were locally held and then released on some
	// path (for double-release detection); an acquisition clears the entry.
	Rel map[string]token.Pos
	// DeferRel records unlocks deferred to function return on some path.
	DeferRel map[string]token.Pos
}

// MustHeld returns the must-held acquisition of the canonical lock path.
func (f *LockFact) MustHeld(canon string) (LockAcq, bool) {
	a, ok := f.Must[canon]
	return a, ok
}

type lockLattice struct{}

func (lockLattice) Bottom() LockFact { return LockFact{Unreached: true} }

func (lockLattice) Clone(f LockFact) LockFact {
	if f.Unreached {
		return LockFact{Unreached: true}
	}
	c := LockFact{
		Must:     make(map[string]LockAcq, len(f.Must)),
		May:      make(map[string]LockAcq, len(f.May)),
		Rel:      make(map[string]token.Pos, len(f.Rel)),
		DeferRel: make(map[string]token.Pos, len(f.DeferRel)),
	}
	for k, v := range f.Must {
		c.Must[k] = v
	}
	for k, v := range f.May {
		c.May[k] = v
	}
	for k, v := range f.Rel {
		c.Rel[k] = v
	}
	for k, v := range f.DeferRel {
		c.DeferRel[k] = v
	}
	return c
}

// Join meets Must (intersection — a lock is must-held only if every
// incoming path holds it) and unions May/Rel/DeferRel. Unreached facts are
// identities: they represent paths that do not exist yet.
func (l lockLattice) Join(dst, src LockFact) (LockFact, bool) {
	if src.Unreached {
		return dst, false
	}
	if dst.Unreached {
		return l.Clone(src), true
	}
	changed := false
	for k, d := range dst.Must {
		s, ok := src.Must[k]
		if !ok {
			delete(dst.Must, k)
			changed = true
			continue
		}
		if m := meetAcq(d, s); m != d {
			dst.Must[k] = m
			changed = true
		}
	}
	for k, v := range src.May {
		if old, ok := dst.May[k]; !ok {
			dst.May[k] = v
			changed = true
		} else if m := meetAcq(old, v); m != old {
			dst.May[k] = m
			changed = true
		}
	}
	changed = joinPos(dst.Rel, src.Rel) || changed
	changed = joinPos(dst.DeferRel, src.DeferRel) || changed
	return dst, changed
}

// meetAcq merges two acquisitions of the same lock on different paths:
// earliest position (deterministic reports), weakest mode (a read hold on
// either path means writes are not protected), Try if either path tried.
func meetAcq(a, b LockAcq) LockAcq {
	if b.Pos < a.Pos {
		a.Pos = b.Pos
	}
	if b.Mode == LockRead {
		a.Mode = LockRead
	}
	if b.Try {
		a.Try = true
	}
	return a
}

func joinPos(dst, src map[string]token.Pos) bool {
	changed := false
	for k, v := range src {
		if old, ok := dst[k]; !ok || v < old {
			dst[k] = v
			changed = true
		}
	}
	return changed
}

// LockEffect names one mutex reachable from a flattened parameter of a
// function: parameter index plus a dot-joined field path to the mutex
// ("writeMu", "shard.mu", "Mutex" for an embedded one; empty when the
// parameter is the mutex itself). Mode "" is exclusive, "r" shared.
type LockEffect struct {
	Param int    `json:"param"`
	Path  string `json:"path,omitempty"`
	Mode  string `json:"mode,omitempty"`
}

func (e LockEffect) mode() LockMode {
	if e.Mode == "r" {
		return LockRead
	}
	return LockExcl
}

// LockSummary is one function's lock behaviour as its callers observe it.
type LockSummary struct {
	// Acquires lists locks held at every normal return without a balancing
	// release (Begin holds writeMu for the caller).
	Acquires []LockEffect `json:"acquires,omitempty"`
	// Releases lists locks the function unlocks without having acquired
	// them locally — the caller (or its caller) must hold them (Commit).
	Releases []LockEffect `json:"releases,omitempty"`
	// Requires lists locks that must be held at the call site: guarded
	// fields the function writes without taking or declaring the guard
	// (the *Locked helper idiom), plus requirements inherited from callees.
	Requires []LockEffect `json:"requires,omitempty"`
}

func (s LockSummary) interesting() bool {
	return len(s.Acquires) > 0 || len(s.Releases) > 0 || len(s.Requires) > 0
}

func (s LockSummary) sameShape(o LockSummary) bool {
	return sameEffects(s.Acquires, o.Acquires) &&
		sameEffects(s.Releases, o.Releases) &&
		sameEffects(s.Requires, o.Requires)
}

func sameEffects(a, b []LockEffect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortEffects(effs []LockEffect) []LockEffect {
	sort.Slice(effs, func(i, j int) bool {
		if effs[i].Param != effs[j].Param {
			return effs[i].Param < effs[j].Param
		}
		if effs[i].Path != effs[j].Path {
			return effs[i].Path < effs[j].Path
		}
		return effs[i].Mode < effs[j].Mode
	})
	return effs
}

// LockSpec configures the engine for one analysis.
type LockSpec struct {
	// Summaries resolves a callee's lock summary (local fixpoint bank first,
	// then imported vetx banks). Nil or a miss means the callee is presumed
	// lock-neutral — unlike obligations there is no sound "top" for locks,
	// and lock-neutral matches RacerD's treatment of unknown calls.
	Summaries func(fn *types.Func) (LockSummary, bool)
	// GuardOf returns, for a field write through sel (base.field), the
	// guard's field path relative to base ("mu", "shard.mu", "Mutex"), as
	// declared by a //dualvet:guarded annotation. ok=false for unguarded
	// fields. Nil disables guarded-write tracking.
	GuardOf func(sel *ast.SelectorExpr) (string, bool)
}

// LockHooks receives the engine's events during a Replay pass, with the
// converged fact in effect before each event. All callbacks are optional.
type LockHooks struct {
	// Node fires before a CFG node's effects are applied.
	Node func(n ast.Node, f *LockFact)
	// Acquire fires for every direct Lock/RLock; already is the prior
	// acquisition when the lock is must-held at the call (re-entry).
	Acquire func(call *ast.CallExpr, canon string, acq LockAcq, already *LockAcq)
	// Release fires for every direct Unlock/RUnlock and for summary-applied
	// releases. held is nil when the lock is not may-held; prevRel is the
	// earlier release position when the lock was already locally released
	// (double release), or NoPos. localRoot reports that the lock lives in
	// a variable declared in this body (an unlock contract makes no sense
	// for those); paramIdx ≥ 0 when the lock is rooted at a parameter.
	Release func(call *ast.CallExpr, canon string, mode LockMode, held *LockAcq, prevRel token.Pos, localRoot bool, paramIdx int)
	// UnguardedWrite fires for a write to an annotated field whose guard is
	// not must-held and not rooted at a parameter (param-rooted misses
	// become Requires entries instead). readHeld is non-nil when the guard
	// is held but only in read mode.
	UnguardedWrite func(n ast.Node, sel *ast.SelectorExpr, guardCanon string, readHeld *LockAcq)
	// UnmetRequire fires for a call whose callee requires a lock that is
	// not must-held here and not rooted at one of this function's
	// parameters.
	UnmetRequire func(call *ast.CallExpr, fn *types.Func, eff LockEffect, canon string)
	// FuncLit fires for each function literal in a node, with the fact at
	// its occurrence. isGo marks literals launched by a go statement (their
	// bodies run under an empty lock set); deferred literals inherit the
	// registration fact, which matches the lock-then-defer idiom.
	FuncLit func(fl *ast.FuncLit, f *LockFact, isGo bool)
}

// LockEngine runs the lock-set analysis over one function body.
type LockEngine struct {
	info *types.Info
	al   *Aliases
	spec LockSpec
	body *ast.BlockStmt
	cfg  *CFG
	lat  lockLattice
	in   []LockFact
	// entry is the fact at function entry — empty for declared functions,
	// the capture-point fact for closures.
	entry LockFact

	paramKeys []string
	localKeys map[string]bool
	freshKeys map[string]bool
	// escaped maps fresh roots to their earliest escape position: the
	// ownership exemption ends where the value becomes visible to other
	// goroutines.
	escaped map[string]token.Pos

	// requires/contractRel accumulate parameter-rooted lock effects across
	// transfer sweeps (keyed, so re-transfers are idempotent; both only
	// grow as facts weaken, mirroring the Must meet).
	requires    map[LockEffect]bool
	contractRel map[LockEffect]bool
}

// NewLockEngine prepares an engine over body. al may be shared with (and
// should be built from) the outermost enclosing body, so captured names in
// closures canonicalize identically; params are the enclosing function's
// flattened parameters (nil for closures).
func NewLockEngine(body *ast.BlockStmt, info *types.Info, al *Aliases, spec LockSpec, params []*types.Var) *LockEngine {
	e := &LockEngine{
		info:        info,
		al:          al,
		spec:        spec,
		body:        body,
		cfg:         New(body),
		localKeys:   make(map[string]bool),
		freshKeys:   make(map[string]bool),
		requires:    make(map[LockEffect]bool),
		contractRel: make(map[LockEffect]bool),
	}
	for _, p := range params {
		e.paramKeys = append(e.paramKeys, objKey(p))
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := info.Defs[n].(*types.Var); ok {
				e.localKeys[objKey(v)] = true
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := info.ObjectOf(id); obj != nil && freshExpr(info, n.Rhs[i]) {
					e.freshKeys[objKey(obj)] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if name.Name == "_" || i >= len(n.Values) {
					continue
				}
				if obj := info.ObjectOf(name); obj != nil && freshExpr(info, n.Values[i]) {
					e.freshKeys[objKey(obj)] = true
				}
			}
		}
		return true
	})
	e.escaped = EarliestEscapes(FindEscapes(body, info, al))
	return e
}

// SetEntry sets a non-empty fact at function entry (closure analysis).
func (e *LockEngine) SetEntry(f LockFact) { e.entry = e.lat.Clone(f) }

// Run computes the fixpoint. It must be called before Replay/Summary.
func (e *LockEngine) Run() {
	e.in = Forward[LockFact](e.cfg, e.lat, func(b *Block, f LockFact) LockFact {
		return e.transfer(b, f, nil)
	})
}

// Replay re-applies the transfer over every live block with the converged
// incoming facts, firing hooks.
func (e *LockEngine) Replay(h *LockHooks) {
	for _, b := range e.cfg.Blocks {
		if !b.Live {
			continue
		}
		e.transfer(b, e.lat.Clone(e.in[b.Index]), h)
	}
}

// ExitFact returns the converged fact at the function's normal exit.
func (e *LockEngine) ExitFact() LockFact { return e.in[e.cfg.Exit.Index] }

// Summary reads the function's lock summary off the converged facts:
// Acquires from the exit balance, Releases and Requires from the
// parameter-rooted effects collected during the fixpoint.
func (e *LockEngine) Summary() LockSummary {
	var s LockSummary
	exit := e.ExitFact()
	if !exit.Unreached {
		for canon, acq := range exit.Must {
			if acq.Try {
				continue
			}
			if _, deferred := exit.DeferRel[canon]; deferred {
				continue
			}
			if i, path, ok := e.paramRoot(canon); ok {
				s.Acquires = append(s.Acquires, LockEffect{Param: i, Path: path, Mode: modeStr(acq.Mode)})
			}
		}
	}
	for eff := range e.contractRel {
		s.Releases = append(s.Releases, eff)
	}
	for eff := range e.requires {
		s.Requires = append(s.Requires, eff)
	}
	s.Acquires = sortEffects(s.Acquires)
	s.Releases = sortEffects(s.Releases)
	s.Requires = sortEffects(s.Requires)
	return s
}

func modeStr(m LockMode) string {
	if m == LockRead {
		return "r"
	}
	return ""
}

// paramRoot resolves a canonical lock path to (parameter index, field
// path). Only pure dot paths qualify — an index or opaque segment cannot
// be re-rooted at a call site.
func (e *LockEngine) paramRoot(canon string) (int, string, bool) {
	for i, key := range e.paramKeys {
		if canon == key {
			return i, "", true
		}
		if rest, ok := strings.CutPrefix(canon, key+"."); ok && fieldPath(rest) {
			return i, rest, true
		}
	}
	return -1, "", false
}

// fieldPath reports whether s is a dot-joined chain of plain field names.
func fieldPath(s string) bool {
	if s == "" {
		return false
	}
	for _, seg := range strings.Split(s, ".") {
		if seg == "" || strings.ContainsAny(seg, "[]·‹›") {
			return false
		}
	}
	return true
}

// rootOf returns the leading segment of a canonical path.
func rootOf(canon string) string {
	if i := strings.IndexAny(canon, ".["); i >= 0 {
		return canon[:i]
	}
	return canon
}

func (e *LockEngine) transfer(b *Block, f LockFact, h *LockHooks) LockFact {
	if b.Index == e.cfg.Entry.Index && f.Unreached {
		if e.entry.Unreached || e.entry.Must == nil {
			f = e.lat.Clone(LockFact{
				Must: map[string]LockAcq{}, May: map[string]LockAcq{},
				Rel: map[string]token.Pos{}, DeferRel: map[string]token.Pos{},
			})
		} else {
			f = e.lat.Clone(e.entry)
		}
	}
	if f.Unreached {
		return f
	}
	for _, n := range b.Nodes {
		e.node(&f, n, h)
	}
	return f
}

func (e *LockEngine) node(f *LockFact, n ast.Node, h *LockHooks) {
	if h != nil && h.Node != nil {
		h.Node(n, f)
	}
	switch n := n.(type) {
	case *Assume:
		e.refine(f, n)
		return
	case *ast.DeferStmt:
		e.deferStmt(f, n, h)
		return
	case *ast.GoStmt:
		if h != nil && h.FuncLit != nil {
			for _, fl := range funcLitsUnder(n) {
				h.FuncLit(fl, f, true)
			}
		}
		// The launched goroutine runs under its own lock state; argument
		// expressions still evaluate here.
		for _, arg := range n.Call.Args {
			e.walkCalls(f, arg, nil, h)
		}
		return
	}
	// checkWrites also collects Requires effects for the summary, so it
	// runs during the hookless fixpoint sweeps too.
	e.checkWrites(f, n, h)
	e.walkCalls(f, n, nil, h)
	if h != nil && h.FuncLit != nil {
		for _, fl := range funcLitsUnder(n) {
			h.FuncLit(fl, f, false)
		}
	}
}

// refine upgrades a TryLock from "unknown outcome" to must-held on the
// success branch: `if mu.TryLock() { ... }`.
func (e *LockEngine) refine(f *LockFact, a *Assume) {
	cond, neg := ast.Unparen(a.Cond), a.Negated
	for {
		u, ok := cond.(*ast.UnaryExpr)
		if !ok || u.Op != token.NOT {
			break
		}
		cond, neg = ast.Unparen(u.X), !neg
	}
	call, ok := cond.(*ast.CallExpr)
	if !ok || neg {
		return
	}
	if canon, op, _, isOp := e.mutexOp(call); isOp && (op == "TryLock" || op == "TryRLock") {
		mode := LockExcl
		if op == "TryRLock" {
			mode = LockRead
		}
		acq := LockAcq{Pos: call.Pos(), Mode: mode, Try: true}
		f.Must[canon] = acq
		f.May[canon] = acq
		delete(f.Rel, canon)
	}
}

func (e *LockEngine) deferStmt(f *LockFact, n *ast.DeferStmt, h *LockHooks) {
	call := n.Call
	if canon, op, _, isOp := e.mutexOp(call); isOp {
		if op == "Unlock" || op == "RUnlock" {
			if _, ok := f.DeferRel[canon]; !ok {
				f.DeferRel[canon] = call.Pos()
			}
		}
		// A deferred Lock is pathological; leave it alone.
	} else if fn := Callee(e.info, call); fn != nil && e.spec.Summaries != nil {
		if sum, ok := e.spec.Summaries(fn); ok {
			for _, eff := range sum.Releases {
				canon, ok := e.effectCanon(call, fn, eff)
				if !ok {
					continue
				}
				// Same opaque-handle accommodation as applyCall: defer
				// c.Abort() must discharge the lock Begin took even though
				// the handle-rooted canon never binds to it.
				if _, held := f.May[canon]; !held {
					for _, k := range e.suffixHeld(f, eff) {
						if _, seen := f.DeferRel[k]; !seen {
							f.DeferRel[k] = call.Pos()
						}
					}
				}
				if _, seen := f.DeferRel[canon]; !seen {
					f.DeferRel[canon] = call.Pos()
				}
			}
		}
	} else if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// defer func() { mu.Unlock() }(): scan the literal for unlocks —
		// captured names canonicalize through the shared alias map.
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			c, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if canon, op, _, isOp := e.mutexOp(c); isOp && (op == "Unlock" || op == "RUnlock") {
				if _, seen := f.DeferRel[canon]; !seen {
					f.DeferRel[canon] = c.Pos()
				}
			}
			return true
		})
	}
	// Argument expressions of the deferred call evaluate now.
	for _, arg := range call.Args {
		e.walkCalls(f, arg, nil, h)
	}
	if h != nil && h.FuncLit != nil {
		for _, fl := range funcLitsUnder(n) {
			h.FuncLit(fl, f, false)
		}
	}
}

// walkCalls applies lock events of every call under n in evaluation order.
// skip suppresses one call (a deferred call's own effect happens at
// return, not here).
func (e *LockEngine) walkCalls(f *LockFact, n ast.Node, skip *ast.CallExpr, h *LockHooks) {
	WalkShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || call == skip {
			return true
		}
		e.applyCall(f, call, h)
		return true
	})
}

func (e *LockEngine) applyCall(f *LockFact, call *ast.CallExpr, h *LockHooks) {
	if canon, op, _, isOp := e.mutexOp(call); isOp {
		switch op {
		case "Lock", "RLock":
			mode := LockExcl
			if op == "RLock" {
				mode = LockRead
			}
			acq := LockAcq{Pos: call.Pos(), Mode: mode}
			if h != nil && h.Acquire != nil {
				var already *LockAcq
				if prev, held := f.Must[canon]; held {
					already = &prev
				}
				h.Acquire(call, canon, acq, already)
			}
			if prev, held := f.Must[canon]; held {
				acq.Pos = prev.Pos // keep the original window for reports
			}
			f.Must[canon] = acq
			f.May[canon] = acq
			delete(f.Rel, canon)
		case "Unlock", "RUnlock":
			mode := LockExcl
			if op == "RUnlock" {
				mode = LockRead
			}
			e.release(f, call, canon, mode, h)
		case "TryLock", "TryRLock":
			// Outcome unknown here; the Assume refinement upgrades the
			// success branch.
		}
		return
	}
	fn := Callee(e.info, call)
	if fn == nil || e.spec.Summaries == nil {
		return
	}
	sum, ok := e.spec.Summaries(fn)
	if !ok {
		return
	}
	for _, eff := range sum.Acquires {
		if canon, ok := e.effectCanon(call, fn, eff); ok {
			acq := LockAcq{Pos: call.Pos(), Mode: eff.mode()}
			if prev, held := f.Must[canon]; held {
				acq.Pos = prev.Pos
			}
			f.Must[canon] = acq
			f.May[canon] = acq
			delete(f.Rel, canon)
		}
	}
	for _, eff := range sum.Releases {
		canon, ok := e.effectCanon(call, fn, eff)
		if !ok {
			continue
		}
		// Summary-applied releases fire no hooks: an unbound canon here is
		// usually an opaque handle (c.Abort() releasing c.ix.writeMu where c
		// came from Begin), not a double unlock. When the canon misses the
		// held set entirely, conservatively release any held lock with the
		// same mutex field — leaving it held would fabricate Acquires in this
		// function's summary and re-entry reports in its callers.
		if _, held := f.May[canon]; !held {
			for _, k := range e.suffixHeld(f, eff) {
				e.release(f, call, k, eff.mode(), nil)
			}
		}
		e.release(f, call, canon, eff.mode(), nil)
	}
	for _, eff := range sum.Requires {
		canon, ok := e.effectCanon(call, fn, eff)
		if !ok {
			continue
		}
		// A requires-contract rooted at this function's own fresh, not-yet-
		// escaped allocation is vacuous: no other goroutine can reach the
		// object, so the guard has nothing to exclude. Same exemption as
		// checkWrites applies to direct constructor writes.
		if root := rootOf(canon); e.freshKeys[root] {
			if escPos, esc := e.escaped[root]; !esc || call.Pos() < escPos {
				continue
			}
		}
		if held, isHeld := f.Must[canon]; isHeld && (eff.mode() == LockRead || held.Mode == LockExcl) {
			continue
		}
		if i, path, isParam := e.paramRoot(canon); isParam {
			e.requires[LockEffect{Param: i, Path: path, Mode: eff.Mode}] = true
			continue
		}
		if h != nil && h.UnmetRequire != nil {
			h.UnmetRequire(call, fn, eff, canon)
		}
	}
}

// suffixHeld returns the may-held canons whose final path segment matches
// the mutex field of a summary release effect. Used when a summary release
// fails to bind: the handle's root is opaque (a local assigned from an
// unresolvable call) but the mutex field name still identifies which held
// lock the callee is contracted to drop.
func (e *LockEngine) suffixHeld(f *LockFact, eff LockEffect) []string {
	seg := eff.Path
	if i := strings.LastIndexByte(seg, '.'); i >= 0 {
		seg = seg[i+1:]
	}
	if seg == "" {
		return nil
	}
	var keys []string
	for k := range f.May {
		if strings.HasSuffix(k, "."+seg) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// release applies one unlock (direct or through a callee's summary).
func (e *LockEngine) release(f *LockFact, call *ast.CallExpr, canon string, mode LockMode, h *LockHooks) {
	held, isHeld := f.May[canon]
	prevRel, wasRel := f.Rel[canon]
	if !wasRel {
		prevRel = token.NoPos
	}
	localRoot := e.localKeys[rootOf(canon)]
	paramIdx := -1
	if i, path, ok := e.paramRoot(canon); ok {
		paramIdx = i
		if !isHeld {
			// Releasing a lock this function never took: a contract with
			// the caller, recorded in the summary.
			e.contractRel[LockEffect{Param: i, Path: path, Mode: modeStr(mode)}] = true
		}
	}
	if h != nil && h.Release != nil {
		var hp *LockAcq
		if isHeld {
			hp = &held
		}
		h.Release(call, canon, mode, hp, prevRel, localRoot, paramIdx)
	}
	if isHeld {
		if _, seen := f.Rel[canon]; !seen {
			f.Rel[canon] = call.Pos()
		}
	}
	delete(f.Must, canon)
	delete(f.May, canon)
}

// checkWrites looks for assignments and ++/-- through annotated guarded
// fields and verifies the guard is must-held in write mode.
func (e *LockEngine) checkWrites(f *LockFact, n ast.Node, h *LockHooks) {
	if e.spec.GuardOf == nil {
		return
	}
	var targets []ast.Expr
	switch n := n.(type) {
	case *ast.AssignStmt:
		targets = n.Lhs
	case *ast.IncDecStmt:
		targets = []ast.Expr{n.X}
	default:
		return
	}
	for _, t := range targets {
		sel := innerSelector(t)
		if sel == nil {
			continue
		}
		path, guarded := e.spec.GuardOf(sel)
		if !guarded {
			continue
		}
		base := e.al.Canon(sel.X)
		if root := rootOf(base); e.freshKeys[root] {
			// Constructor writes: the value is this function's own fresh
			// allocation — exempt until it escapes to another goroutine.
			if escPos, esc := e.escaped[root]; !esc || n.Pos() < escPos {
				continue
			}
		}
		guardCanon := base
		if path != "" {
			guardCanon += "." + path
		}
		if held, ok := f.Must[guardCanon]; ok {
			if held.Mode == LockRead {
				if h != nil && h.UnguardedWrite != nil {
					h.UnguardedWrite(n, sel, guardCanon, &held)
				}
			}
			continue
		}
		if i, rel, ok := e.paramRoot(guardCanon); ok {
			e.requires[LockEffect{Param: i, Path: rel, Mode: ""}] = true
			continue
		}
		if h != nil && h.UnguardedWrite != nil {
			h.UnguardedWrite(n, sel, guardCanon, nil)
		}
	}
}

// innerSelector peels index/star/paren wrappers off a write target down to
// the field selection being written through: `s.frames[id]` writes field
// frames of s; `*p.cur` writes through field cur.
func innerSelector(t ast.Expr) *ast.SelectorExpr {
	for {
		switch x := t.(type) {
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.StarExpr:
			t = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}

// effectCanon re-roots a callee's lock effect at a call site: the
// canonical path of the aligned argument plus the effect's field path.
func (e *LockEngine) effectCanon(call *ast.CallExpr, fn *types.Func, eff LockEffect) (string, bool) {
	args, ok := FlatArgs(e.info, call, fn)
	if !ok || eff.Param < 0 || eff.Param >= len(args) {
		return "", false
	}
	canon := e.al.Canon(args[eff.Param])
	if eff.Path != "" {
		canon += "." + eff.Path
	}
	return canon, true
}

// mutexOp recognizes call as a sync.Mutex/RWMutex (or sync.Locker)
// Lock/RLock/Unlock/RUnlock/TryLock/TryRLock and returns the canonical
// path of the mutex. Promoted calls through an embedded mutex append the
// embedded field names, so `o.ring.Lock()` on a struct embedding
// sync.Mutex canonicalizes to `o.ring.Mutex` — the same path a
// `guarded=Mutex` annotation resolves to.
func (e *LockEngine) mutexOp(call *ast.CallExpr) (canon, op string, isRW, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false, false
	}
	fn, okFn := e.info.Uses[sel.Sel].(*types.Func)
	if !okFn {
		return "", "", false, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false, false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false, false
	}
	canon = e.mutexCanon(sel)
	sig, okSig := fn.Type().(*types.Signature)
	if okSig && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, okN := t.(*types.Named); okN {
			isRW = named.Obj().Name() == "RWMutex"
		}
	}
	return canon, fn.Name(), isRW, true
}

// mutexCanon canonicalizes the receiver of a mutex method call, walking
// the selection's implicit embedded-field path so promoted calls name the
// actual mutex field.
func (e *LockEngine) mutexCanon(sel *ast.SelectorExpr) string {
	base := e.al.Canon(sel.X)
	for _, name := range EmbeddedPrefix(e.info, sel) {
		base += "." + name
	}
	return base
}

// EmbeddedPrefix returns the implicit embedded-field names a selection
// traverses before reaching its final field or method: for `o.ring.Lock()`
// on a struct whose ring embeds sync.Mutex, the prefix of the promoted
// Lock selection `r.Lock` is ["Mutex"] — the path an annotation or canon
// must spell out.
func EmbeddedPrefix(info *types.Info, sel *ast.SelectorExpr) []string {
	s := info.Selections[sel]
	if s == nil {
		return nil
	}
	idx := s.Index()
	t := s.Recv()
	var out []string
	for _, i := range idx[:len(idx)-1] {
		st := structUnder(t)
		if st == nil || i >= st.NumFields() {
			return nil
		}
		fld := st.Field(i)
		out = append(out, fld.Name())
		t = fld.Type()
	}
	return out
}

func structUnder(t types.Type) *types.Struct {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// freshExpr reports whether rhs is a fresh allocation (composite literal,
// &composite, new, make) — a value this function constructed and owns
// until it escapes.
func freshExpr(info *types.Info, rhs ast.Expr) bool {
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if rhs.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(rhs.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(rhs.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		_, isBuiltin := info.Uses[id].(*types.Builtin)
		return isBuiltin && (id.Name == "new" || id.Name == "make")
	}
	return false
}

// funcLitsUnder returns the function literals directly under one CFG node
// (not nested inside other literals).
func funcLitsUnder(n ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	if a, ok := n.(*Assume); ok {
		n = a.Cond
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok {
			out = append(out, fl)
			return false
		}
		return true
	})
	return out
}

// ComputeLockSummaries computes one lock summary per declared function,
// bottom-up over the call graph's SCCs, mirroring ComputeObSummaries.
// Within an SCC the members start from the lock-neutral bottom and iterate;
// an SCC that exceeds its budget falls back to lock-neutral (entries
// deleted, callers see no effects) — sound for Requires (no spurious
// reports) and merely less precise for Acquires/Releases.
func ComputeLockSummaries(cg *CallGraph, info *types.Info, spec LockSpec, imported map[string]LockSummary) (map[*types.Func]LockSummary, SummaryStats) {
	sums := make(map[*types.Func]LockSummary, len(cg.Order))
	stats := SummaryStats{Functions: len(cg.Order)}
	spec.Summaries = func(fn *types.Func) (LockSummary, bool) {
		if s, ok := sums[fn]; ok {
			return s, true
		}
		s, ok := imported[fn.FullName()]
		return s, ok
	}
	for _, comp := range cg.SCCs {
		recursive := len(comp) > 1 || selfCalls(cg, comp[0])
		for _, fn := range comp {
			sums[fn] = LockSummary{}
		}
		bound := sccIterBound(len(comp))
		iters, bailed := 0, false
		for {
			iters++
			changed := false
			for _, fn := range comp {
				ns := summarizeLocks(cg.Funcs[fn], info, spec)
				if !ns.sameShape(sums[fn]) {
					changed = true
				}
				sums[fn] = ns
			}
			if !changed || !recursive {
				break
			}
			if iters >= bound {
				bailed = true
				for _, fn := range comp {
					delete(sums, fn)
				}
				break
			}
		}
		stats.observe(iters, bailed)
	}
	return sums, stats
}

func summarizeLocks(fi *FuncInfo, info *types.Info, spec LockSpec) LockSummary {
	body := fi.Decl.Body
	eng := NewLockEngine(body, info, NewAliases(body, info), spec, flatParams(fi.Fn))
	eng.Run()
	return eng.Summary()
}
