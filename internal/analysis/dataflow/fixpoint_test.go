package dataflow

import (
	"go/ast"
	"testing"
)

// assignedLattice is a toy may-analysis: the set of variable names that may
// have been assigned.
type assignedLattice struct{}

func (assignedLattice) Bottom() map[string]bool { return map[string]bool{} }

func (assignedLattice) Clone(f map[string]bool) map[string]bool {
	c := make(map[string]bool, len(f))
	for k := range f {
		c[k] = true
	}
	return c
}

func (assignedLattice) Join(dst, src map[string]bool) (map[string]bool, bool) {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return dst, changed
}

func assignTransfer(b *Block, in map[string]bool) map[string]bool {
	for _, n := range b.Nodes {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					in[id.Name] = true
				}
			}
		}
	}
	return in
}

func TestForwardJoinsBranches(t *testing.T) {
	_, c := parseBody(t, `
	if cond {
		x := 1
		_ = x
	} else {
		y := 2
		_ = y
	}
	after := 3
	_ = after`)
	in := Forward[map[string]bool](c, assignedLattice{}, assignTransfer)
	exit := in[c.Exit.Index]
	for _, name := range []string{"x", "y", "after"} {
		if !exit[name] {
			t.Fatalf("%q should be may-assigned at Exit, got %v", name, exit)
		}
	}
}

func TestForwardLoopReachesFixpoint(t *testing.T) {
	_, c := parseBody(t, `
	for i := 0; i < 10; i++ {
		inner := i
		_ = inner
	}
	done := 1
	_ = done`)
	in := Forward[map[string]bool](c, assignedLattice{}, assignTransfer)
	exit := in[c.Exit.Index]
	if !exit["inner"] || !exit["done"] {
		t.Fatalf("loop-body facts should flow around the back edge to Exit: %v", exit)
	}
}

func TestForwardHaltPathExcludedFromExit(t *testing.T) {
	_, c := parseBody(t, `
	if cond {
		onlyOnPanicPath := 1
		_ = onlyOnPanicPath
		panic("x")
	}
	_ = 0`)
	in := Forward[map[string]bool](c, assignedLattice{}, assignTransfer)
	if in[c.Exit.Index]["onlyOnPanicPath"] {
		t.Fatal("facts on a panic-terminated path must not reach Exit")
	}
	if !in[c.Halt.Index]["onlyOnPanicPath"] {
		t.Fatal("facts on a panic-terminated path should reach Halt")
	}
}
