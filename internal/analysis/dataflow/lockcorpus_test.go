package dataflow

import (
	"testing"
	"time"
)

// TestConcurrencyCorpusConverges runs the lock-set and publication summary
// computations over every repository package, then drives the full
// lock-set engine (fixpoint, hook replay, summary read-off) and the escape
// scan over every declared function. Any panic, SCC bail or blown time
// budget here is an engine bug: the corpus includes the repository's real
// concurrency shapes (MVCC commit path, pagestore shards, obs rings),
// which is exactly the code the analyzers must converge on.
func TestConcurrencyCorpusConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repository against stdlib source")
	}
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	ld := newCorpusLoader(root)
	paths, err := ld.repoPackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("suspiciously few packages: %v", paths)
	}

	var funcs, escapes, maxIters, maxComp int
	var sumTime time.Duration
	for _, path := range paths {
		lp, err := ld.load(path)
		if err != nil {
			t.Fatalf("typechecking %s: %v", path, err)
		}
		start := time.Now()
		cg := BuildCallGraph(lp.files, ld.info)
		for _, comp := range cg.SCCs {
			if len(comp) > maxComp {
				maxComp = len(comp)
			}
		}
		_, lstats := ComputeLockSummaries(cg, ld.info, LockSpec{}, nil)
		_, fstats := ComputeFreezeSummaries(cg, ld.info, FreezeSpec{}, nil)
		for _, st := range []SummaryStats{lstats, fstats} {
			if st.Bailed != 0 {
				t.Errorf("%s: %d SCCs bailed to bottom — non-monotone lock/freeze transfer", path, st.Bailed)
			}
			if st.MaxIters > maxIters {
				maxIters = st.MaxIters
			}
		}
		// Per-function: the full engine must survive (and converge on) every
		// body, replay with empty hooks, and read a summary off the exit fact.
		for _, fi := range cg.Funcs {
			body := fi.Decl.Body
			al := NewAliases(body, ld.info)
			escapes += len(FindEscapes(body, ld.info, al))
			eng := NewLockEngine(body, ld.info, al, LockSpec{}, flatParams(fi.Fn))
			eng.Run()
			eng.Replay(&LockHooks{})
			_ = eng.Summary()
			funcs++
		}
		sumTime += time.Since(start)
	}
	if funcs < 400 {
		t.Fatalf("concurrency corpus suspiciously small: %d functions (did the loader lose packages?)", funcs)
	}
	if bound := sccIterBound(maxComp); maxIters > bound {
		t.Fatalf("fixpoint took %d sweeps, bound for the largest SCC (%d funcs) is %d", maxIters, maxComp, bound)
	}
	// The unit driver adds these computations to every go vet invocation;
	// the whole-repo cost must stay well inside the CI analysis budget.
	if sumTime > 10*time.Second {
		t.Fatalf("concurrency analysis over the repo took %v, budget 10s", sumTime)
	}
	t.Logf("concurrency corpus: %d packages, %d functions, %d escapes, max %d sweeps, %v total",
		len(paths), funcs, escapes, maxIters, sumTime)
}
