package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroutine-escape analysis: a flow-insensitive scan marking local values
// that become visible to other goroutines — captured by a `go` closure,
// sent on a channel, or published through an atomic store. Once a value
// escapes, "I constructed it so I own it" reasoning stops being valid: the
// lock-set engine withdraws its fresh-allocation exemption from the escape
// point onward, and the frozen engine treats atomic publication as the
// freeze event itself.

// EscapeKind classifies how a value becomes visible to other goroutines.
type EscapeKind uint8

const (
	// EscGo: referenced inside a closure (or argument list) launched by a
	// go statement.
	EscGo EscapeKind = iota
	// EscChan: sent on a channel.
	EscChan
	// EscPublish: stored through sync/atomic (Pointer.Store/Swap/
	// CompareAndSwap, Value.Store, ...).
	EscPublish
)

func (k EscapeKind) String() string {
	switch k {
	case EscGo:
		return "go"
	case EscChan:
		return "chan"
	default:
		return "publish"
	}
}

// Escape records one escape event.
type Escape struct {
	// Canon is the escaping value's canonical path in the body's alias map.
	Canon string
	Kind  EscapeKind
	Pos   token.Pos
}

// FindEscapes scans body (including nested function literals) for escape
// events. al should be the body's alias map so canonical paths line up
// with other analyses over the same body.
func FindEscapes(body *ast.BlockStmt, info *types.Info, al *Aliases) []Escape {
	var out []Escape
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Everything referenced under the go statement that was declared
			// before it is shared with the new goroutine: closure captures,
			// argument values, and the callee itself.
			ast.Inspect(n, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok || v.Pos() >= n.Pos() {
					return true
				}
				out = append(out, Escape{Canon: al.Canon(id), Kind: EscGo, Pos: n.Pos()})
				return true
			})
		case *ast.SendStmt:
			out = append(out, Escape{Canon: al.Canon(n.Value), Kind: EscChan, Pos: n.Arrow})
		case *ast.CallExpr:
			if v, pos, ok := atomicPublishArg(info, n); ok {
				out = append(out, Escape{Canon: al.Canon(v), Kind: EscPublish, Pos: pos})
			}
		}
		return true
	})
	return out
}

// EarliestEscapes folds an escape list into the earliest escape position
// per canonical root (the leading path segment), the granularity at which
// ownership reasoning is withdrawn.
func EarliestEscapes(escs []Escape) map[string]token.Pos {
	out := make(map[string]token.Pos, len(escs))
	for _, e := range escs {
		root := rootOf(e.Canon)
		if old, ok := out[root]; !ok || e.Pos < old {
			out[root] = e.Pos
		}
	}
	return out
}

// atomicPublishArg returns the value expression published by call when it
// is an atomic.Pointer/Value Store, Swap, or CompareAndSwap.
func atomicPublishArg(info *types.Info, call *ast.CallExpr) (ast.Expr, token.Pos, bool) {
	name, ok := atomicCellOp(info, call)
	if !ok {
		return nil, token.NoPos, false
	}
	switch name {
	case "Store", "Swap":
		if len(call.Args) == 1 {
			return call.Args[0], call.Pos(), true
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			return call.Args[1], call.Pos(), true
		}
	}
	return nil, token.NoPos, false
}

// atomicCellOp reports whether call invokes a method of sync/atomic's
// reference-carrying cells (Pointer[T] or Value) and returns the method
// name. Scalar cells (Bool, Int64, ...) are excluded: their stored values
// carry no mutable state to freeze or escape.
func atomicCellOp(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	switch named.Obj().Name() {
	case "Pointer", "Value":
		return fn.Name(), true
	}
	return "", false
}
