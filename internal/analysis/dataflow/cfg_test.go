package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses `src` as the body of a function and returns its CFG.
func parseBody(t *testing.T, src string) (*token.FileSet, *CFG) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\n\nfunc f() {\n"+src+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return fset, New(fn.Body)
}

// reachesExit reports whether Exit has at least one live predecessor.
func reachesExit(c *CFG) bool {
	for _, p := range c.Exit.Preds {
		if p.Live {
			return true
		}
	}
	return false
}

func TestCFGStraightLine(t *testing.T) {
	_, c := parseBody(t, `x := 1; y := x + 2; _ = y`)
	if !reachesExit(c) {
		t.Fatal("straight-line body should reach Exit")
	}
	if len(c.Entry.Nodes) != 3 {
		t.Fatalf("entry block should hold all three statements, got %d", len(c.Entry.Nodes))
	}
}

func TestCFGIfElseAssumes(t *testing.T) {
	_, c := parseBody(t, `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	_ = x`)
	var pos, neg int
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if a, ok := n.(*Assume); ok {
				if a.Negated {
					neg++
				} else {
					pos++
				}
			}
		}
	}
	if pos != 1 || neg != 1 {
		t.Fatalf("want one positive and one negative Assume, got %d/%d", pos, neg)
	}
	if !reachesExit(c) {
		t.Fatal("if/else should reach Exit")
	}
}

func TestCFGPanicGoesToHalt(t *testing.T) {
	_, c := parseBody(t, `
	x := 1
	if x > 0 {
		panic("boom")
	}
	_ = x`)
	if len(c.Halt.Preds) == 0 {
		t.Fatal("panic path should feed Halt")
	}
	if !reachesExit(c) {
		t.Fatal("non-panic path should still reach Exit")
	}
}

func TestCFGOsExitGoesToHalt(t *testing.T) {
	_, c := parseBody(t, `os.Exit(1)`)
	if len(c.Halt.Preds) == 0 {
		t.Fatal("os.Exit should feed Halt")
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	_, c := parseBody(t, `
	s := 0
	for i := 0; i < 10; i++ {
		s += i
	}
	_ = s`)
	// A loop must produce at least one back edge: some block's successor
	// has a smaller index and is live.
	back := false
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s.Live && b.Live {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("for loop should create a live back edge")
	}
	if !reachesExit(c) {
		t.Fatal("terminating loop should reach Exit")
	}
}

func TestCFGRangeBreakContinue(t *testing.T) {
	_, c := parseBody(t, `
	for _, v := range xs {
		if v == 0 {
			continue
		}
		if v < 0 {
			break
		}
		use(v)
	}
	done()`)
	if !reachesExit(c) {
		t.Fatal("range with break/continue should reach Exit")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	_, c := parseBody(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i+j > 3 {
				break outer
			}
			if j == 1 {
				continue outer
			}
		}
	}
	done()`)
	if !reachesExit(c) {
		t.Fatal("labeled break/continue should reach Exit")
	}
}

func TestCFGGoto(t *testing.T) {
	_, c := parseBody(t, `
	i := 0
loop:
	i++
	if i < 10 {
		goto loop
	}
	_ = i`)
	if !reachesExit(c) {
		t.Fatal("goto loop should reach Exit")
	}
	back := false
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && b.Live {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("goto to an earlier label should create a back edge")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, c := parseBody(t, `
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		d()
	}
	done()`)
	if !reachesExit(c) {
		t.Fatal("switch should reach Exit")
	}
}

func TestCFGSelect(t *testing.T) {
	_, c := parseBody(t, `
	select {
	case v := <-ch:
		use(v)
	case out <- 1:
		b()
	default:
		d()
	}
	done()`)
	if !reachesExit(c) {
		t.Fatal("select should reach Exit")
	}
}

func TestCFGEmptySelectHalts(t *testing.T) {
	_, c := parseBody(t, `select {}`)
	if len(c.Halt.Preds) == 0 {
		t.Fatal("select{} blocks forever and should feed Halt")
	}
}

func TestCFGDefersRecorded(t *testing.T) {
	_, c := parseBody(t, `
	f := open()
	defer f.Close()
	if bad {
		return
	}
	work(f)`)
	if len(c.Defers) != 1 {
		t.Fatalf("want 1 recorded defer, got %d", len(c.Defers))
	}
}

func TestCFGDeadCodeNotLive(t *testing.T) {
	_, c := parseBody(t, `
	return
	unreachable()`)
	// The statement after return must land in a non-live block.
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "unreachable" && b.Live {
						t.Fatal("code after return should not be live")
					}
				}
			}
		}
	}
}

func TestWalkShallowSkipsFuncLit(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", `package p
func f() {
	g := func() { inner() }
	g()
}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	var names []string
	for _, s := range fn.Body.List {
		WalkShallow(s, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				names = append(names, id.Name)
			}
			return true
		})
	}
	joined := strings.Join(names, ",")
	if strings.Contains(joined, "inner") {
		t.Fatalf("WalkShallow descended into the FuncLit body: %v", names)
	}
	if !strings.Contains(joined, "g") {
		t.Fatalf("WalkShallow should still see the outer identifiers: %v", names)
	}
}
