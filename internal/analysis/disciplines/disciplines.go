// Package disciplines is the single registry of the repository's
// begin→close resource disciplines. Each pairing an obligation analyzer
// enforces — a method that hands out a resource and the method that must
// be called on it before the last reference drops — is declared here
// exactly once, and spanleak, pinleak and snapleak build their LeakSpecs
// from it. Adding a trace or resource type means adding one Pair to the
// right registry, not editing each analyzer's private list.
package disciplines

import (
	"go/ast"
	"go/types"
	"strings"

	"dualcdb/internal/analysis/dataflow"
)

// Pair describes one begin→close discipline: the method that hands out
// the resource and the method that discharges it.
type Pair struct {
	// Pkg is the import-path suffix of the package declaring the types
	// ("obs", "pagestore") — a suffix so analysistest fakes match alongside
	// the real package.
	Pkg string
	// BeginType and Begin name the resource-producing method; the resource
	// is always result index 0.
	BeginType string
	Begin     string
	// CloseType and Close name the resource's type and its discharging
	// method.
	CloseType string
	Close     string
	// ErrIdx is the index of the error result paired with the resource
	// (the obligation is waived on the error arm), or -1 when the begin
	// cannot fail.
	ErrIdx int
}

// Registry is an ordered set of pairs sharing one analyzer.
type Registry []Pair

// Spans are the observability interval disciplines: every begun interval
// must be closed or the telemetry silently lies (spanleak).
var Spans = Registry{
	{Pkg: "obs", BeginType: "QueryTrace", Begin: "Begin", CloseType: "SpanTimer", Close: "End", ErrIdx: -1},
	{Pkg: "obs", BeginType: "Observer", Begin: "StartBatch", CloseType: "BatchTimer", Close: "Done", ErrIdx: -1},
	{Pkg: "obs", BeginType: "CommitTrace", Begin: "Begin", CloseType: "CommitSpanTimer", Close: "End", ErrIdx: -1},
}

// Pins are the buffer-pool frame disciplines: every pinned frame must be
// released or it wedges in the pool forever (pinleak).
var Pins = Registry{
	{Pkg: "pagestore", BeginType: "Pool", Begin: "Get", CloseType: "Frame", Close: "Release", ErrIdx: 1},
	{Pkg: "pagestore", BeginType: "Pool", Begin: "GetTracked", CloseType: "Frame", Close: "Release", ErrIdx: 1},
	{Pkg: "pagestore", BeginType: "Pool", Begin: "GetChainTracked", CloseType: "Frame", Close: "Release", ErrIdx: 1},
	{Pkg: "pagestore", BeginType: "Pool", Begin: "NewPage", CloseType: "Frame", Close: "Release", ErrIdx: 1},
}

// Snapshots are the MVCC snapshot disciplines: an unreleased snapshot
// pins the reclaim watermark forever (snapleak).
var Snapshots = Registry{
	{Pkg: "core", BeginType: "Index", Begin: "Snapshot", CloseType: "Snapshot", Close: "Release", ErrIdx: -1},
}

// LeakSpec builds the obligation-engine spec for the registry: sources
// are the begin methods (resource at result 0, paired error per pair),
// releases the close methods, resources the close types. The caller wires
// in Summaries for the interprocedural step.
func (r Registry) LeakSpec(info *types.Info) dataflow.LeakSpec {
	return dataflow.LeakSpec{
		Source: func(call *ast.CallExpr) (int, int, bool) {
			for _, p := range r {
				if MethodOn(info, call, p.Pkg, p.BeginType, p.Begin) {
					return 0, p.ErrIdx, true
				}
			}
			return 0, 0, false
		},
		IsRelease: func(call *ast.CallExpr) bool {
			for _, p := range r {
				if MethodOn(info, call, p.Pkg, p.CloseType, p.Close) {
					return true
				}
			}
			return false
		},
		IsResource: func(t types.Type) bool {
			for _, p := range r {
				if NamedIn(t, p.Pkg, p.CloseType) {
					return true
				}
			}
			return false
		},
	}
}

// CloseFor returns the close-method name for the pair whose begin method
// call invokes, or "" when call is not a begin.
func (r Registry) CloseFor(info *types.Info, call *ast.CallExpr) string {
	for _, p := range r {
		if MethodOn(info, call, p.Pkg, p.BeginType, p.Begin) {
			return p.Close
		}
	}
	return ""
}

// CloseForType returns the close-method name for the pair whose resource
// type is t, or "".
func (r Registry) CloseForType(t types.Type) string {
	for _, p := range r {
		if NamedIn(t, p.Pkg, p.CloseType) {
			return p.Close
		}
	}
	return ""
}

// MethodOn reports whether call invokes method name on the named type
// typeName declared in a package whose import path ends in pkgSuffix (so
// testdata fakes match alongside the real package).
func MethodOn(info *types.Info, call *ast.CallExpr, pkgSuffix, typeName, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return NamedIn(sig.Recv().Type(), pkgSuffix, typeName)
}

// NamedIn reports whether t is (a pointer to) the named type typeName
// declared in a package whose import path ends in pkgSuffix.
func NamedIn(t types.Type, pkgSuffix, typeName string) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Name() != typeName {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}
