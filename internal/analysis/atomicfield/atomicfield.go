// Package atomicfield flags struct fields accessed both through sync/atomic
// call-style operations (atomic.AddUint64(&s.n, 1)) and through plain
// loads/stores elsewhere in the package.
//
// Mixing the two races: the plain access is invisible to the atomic one, and
// the race detector only catches schedules that actually interleave. The
// sharded buffer pool's stats counters (PR 1) are exactly this shape — they
// migrated to the typed atomic.Uint64 API, which makes the mix
// unrepresentable; this analyzer keeps the legacy call-style API honest
// wherever it is still used.
//
// A field is reported when the package contains at least one atomic
// call-style access and at least one plain access to it. Typed atomics
// (atomic.Uint64 et al.) need no checking and are the recommended fix.
// Escape hatch: //dualvet:allow atomicfield on the plain-access line (e.g.
// a constructor writing the field before the value escapes).
package atomicfield

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"dualcdb/internal/analysis/framework"
)

// Analyzer is the atomicfield check.
var Analyzer = &framework.Analyzer{
	Name: "atomicfield",
	Doc:  "flag struct fields accessed both via sync/atomic calls and via plain loads/stores in the same package",
	Run:  run,
}

type access struct {
	pos  token.Pos
	expr string
}

func run(pass *framework.Pass) error {
	atomicUses := make(map[*types.Var][]access)
	plainUses := make(map[*types.Var][]access)

	for _, f := range pass.Files {
		// Selector expressions consumed as &x.f by a sync/atomic call.
		inAtomicCall := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					inAtomicCall[sel] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldObj(pass, sel)
			if fld == nil {
				return true
			}
			a := access{pos: sel.Sel.Pos(), expr: types.ExprString(sel)}
			if inAtomicCall[sel] {
				atomicUses[fld] = append(atomicUses[fld], a)
			} else {
				plainUses[fld] = append(plainUses[fld], a)
			}
			return true
		})
	}

	for fld, plains := range plainUses {
		atomics := atomicUses[fld]
		if len(atomics) == 0 {
			continue
		}
		for _, p := range plains {
			pass.Reportf(p.pos,
				"field %s is accessed atomically at %s but plainly here; use the typed atomic.%s API or make every access atomic",
				fld.Name(), pass.Fset.Position(atomics[0].pos), typedAtomicName(fld.Type()))
		}
	}
	return nil
}

// fieldObj resolves sel to a struct-field object of a numeric basic type
// declared in the package under analysis.
func fieldObj(pass *framework.Pass, sel *ast.SelectorExpr) *types.Var {
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() || v.Pkg() != pass.Pkg {
		return nil
	}
	b, ok := v.Type().Underlying().(*types.Basic)
	if !ok || b.Info()&(types.IsInteger|types.IsUnsigned) == 0 {
		return nil
	}
	return v
}

func isAtomicFuncCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// typedAtomicName suggests the typed sync/atomic replacement for t.
func typedAtomicName(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint, types.Uintptr:
		return "Uint64"
	default:
		return fmt.Sprintf("Value /* %s */", b.Name())
	}
}
