package atomicfield_test

import (
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	for _, pkg := range []string{"atomicfield"} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, "../testdata", atomicfield.Analyzer, pkg)
		})
	}
}
