package snapleak_test

import (
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/snapleak"
)

func TestSnapleak(t *testing.T) {
	analysistest.Run(t, "../testdata", snapleak.Analyzer, "snapleak")
}
