// Package snapleak flags MVCC snapshots that can escape their Release.
//
// Index.Snapshot pins a version in the pool's census: superseded pages
// whose death version is visible to any pinned snapshot are never
// reclaimed (DESIGN.md §13). A dropped *Snapshot therefore does not
// crash anything — the watermark just stops advancing and every page any
// later commit supersedes accumulates forever, an unbounded space leak
// that only shows up under sustained write load. The pairing discipline
// is strict: every Snapshot() must reach Release() on every path to a
// normal return (Release is idempotent, so double-release is harmless
// and `defer s.Release()` is always safe).
//
// The check runs the obligation engine from internal/analysis/dataflow
// over each function's CFG: Snapshot opens an obligation that must reach
// Release (directly, through a single-assignment alias, or via defer) on
// every path to a normal return. Returning the snapshot transfers the
// obligation to the caller; passing it to a callee is resolved through
// function summaries computed over the package call graph (and imported
// from dependency vetx records) — a helper that releases on every path
// discharges the obligation, one that merely reads it leaves the duty
// with the caller and the diagnostic names the helper chain. Unknown
// callees are presumed to take ownership. Escape hatch: //dualvet:allow
// snapleak on the pinning line. _test.go files are exempt.
package snapleak

import (
	"go/ast"
	"go/types"
	"strings"

	"dualcdb/internal/analysis/dataflow"
	"dualcdb/internal/analysis/disciplines"
	"dualcdb/internal/analysis/framework"
)

// Analyzer is the snapleak check.
var Analyzer = &framework.Analyzer{
	Name: "snapleak",
	Doc:  "flag MVCC snapshots that may not reach Release on every return path",
	Run:  run,
}

// Pairs is the registry of pin → release disciplines this analyzer
// enforces, shared through the disciplines package.
var Pairs = disciplines.Snapshots

func run(pass *framework.Pass) error {
	spec := Pairs.LeakSpec(pass.TypesInfo)

	// Interprocedural step: summarize every function bottom-up over the
	// package call graph (imported dependency banks underneath), so a
	// snapshot handed to a helper is charged by what the helper actually
	// does with it — Release on every path discharges, a read-only or
	// conditional helper leaves the duty here — and a helper returning a
	// fresh snapshot is a source at its call sites.
	cg := dataflow.BuildCallGraph(pass.Files, pass.TypesInfo)
	imported := pass.Summaries.ObligationsFor(pass.Analyzer.Name)
	sums, _ := dataflow.ComputeObSummaries(cg, pass.TypesInfo, spec, imported)
	spec.Summaries = func(fn *types.Func) (dataflow.ObSummary, bool) {
		if s, ok := sums[fn]; ok {
			return s, true
		}
		s, ok := imported[fn.FullName()]
		return s, ok
	}
	exp := &dataflow.PackageSummaries{}
	exp.AddObligations(pass.Analyzer.Name, sums)
	pass.Export(exp)

	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body, spec)
			for _, fl := range dataflow.FuncLits(fd.Body) {
				checkBody(pass, fl.Body, spec)
			}
		}
	}
	return nil
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt, spec dataflow.LeakSpec) {
	for _, leak := range dataflow.FindLeaks(body, pass.TypesInfo, spec) {
		name := describe(pass, leak.Acquire)
		switch {
		case leak.Immediate:
			pass.Reportf(leak.Acquire.Pos(),
				"snapshot pinned by %s is discarded without Release; the version is never unpinned and superseded pages leak (//dualvet:allow snapleak if intentional)",
				name)
		case len(leak.Chain) > 0:
			verb := "does not release it"
			if leak.Conditional {
				verb = "releases it on only some paths"
			}
			pass.Reportf(leak.Acquire.Pos(),
				"snapshot pinned by %s is passed to %s, which %s; the pin may hold the reclamation watermark forever (//dualvet:allow snapleak if the callee is meant to keep it)",
				name, strings.Join(leak.Chain, " → "), verb)
		default:
			pass.Reportf(leak.Acquire.Pos(),
				"snapshot pinned by %s may not reach Release on every return path; release it on each branch or defer it (//dualvet:allow snapleak if ownership moves elsewhere)",
				name)
		}
	}
}

func describe(pass *framework.Pass, call *ast.CallExpr) string {
	name := types.ExprString(call.Fun)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name = types.ExprString(sel.X) + "." + sel.Sel.Name
	}
	return name
}
