// Package snapleak flags MVCC snapshots that can escape their Release.
//
// Index.Snapshot pins a version in the pool's census: superseded pages
// whose death version is visible to any pinned snapshot are never
// reclaimed (DESIGN.md §13). A dropped *Snapshot therefore does not
// crash anything — the watermark just stops advancing and every page any
// later commit supersedes accumulates forever, an unbounded space leak
// that only shows up under sustained write load. The pairing discipline
// is strict: every Snapshot() must reach Release() on every path to a
// normal return (Release is idempotent, so double-release is harmless
// and `defer s.Release()` is always safe).
//
// The check runs the obligation engine from internal/analysis/dataflow
// over each function's CFG: Snapshot opens an obligation that must reach
// Release (directly, through a single-assignment alias, or via defer) on
// every path to a normal return. Returning the snapshot transfers the
// obligation to the caller; passing it to a callee is resolved through
// function summaries computed over the package call graph (and imported
// from dependency vetx records) — a helper that releases on every path
// discharges the obligation, one that merely reads it leaves the duty
// with the caller and the diagnostic names the helper chain. Unknown
// callees are presumed to take ownership. Escape hatch: //dualvet:allow
// snapleak on the pinning line. _test.go files are exempt.
package snapleak

import (
	"go/ast"
	"go/types"
	"strings"

	"dualcdb/internal/analysis/dataflow"
	"dualcdb/internal/analysis/framework"
)

// Analyzer is the snapleak check.
var Analyzer = &framework.Analyzer{
	Name: "snapleak",
	Doc:  "flag MVCC snapshots that may not reach Release on every return path",
	Run:  run,
}

// Pairs lists the pin → release disciplines, keyed by the pinning method:
// receiver type, method, the resource type and its release method. The
// snapshot result is always index 0 and pinning cannot fail.
var Pairs = []struct {
	BeginType string
	Begin     string
	CloseType string
	Close     string
}{
	{"Index", "Snapshot", "Snapshot", "Release"},
}

// pkgSuffix matches both the real core package and a testdata fake.
const pkgSuffix = "core"

func run(pass *framework.Pass) error {
	spec := dataflow.LeakSpec{
		Source: func(call *ast.CallExpr) (int, int, bool) {
			for _, p := range Pairs {
				if methodOn(pass, call, p.BeginType, p.Begin) {
					return 0, -1, true
				}
			}
			return 0, 0, false
		},
		IsRelease: func(call *ast.CallExpr) bool {
			for _, p := range Pairs {
				if methodOn(pass, call, p.CloseType, p.Close) {
					return true
				}
			}
			return false
		},
		IsResource: func(t types.Type) bool {
			for _, p := range Pairs {
				if namedIn(t, p.CloseType) {
					return true
				}
			}
			return false
		},
	}

	// Interprocedural step: summarize every function bottom-up over the
	// package call graph (imported dependency banks underneath), so a
	// snapshot handed to a helper is charged by what the helper actually
	// does with it — Release on every path discharges, a read-only or
	// conditional helper leaves the duty here — and a helper returning a
	// fresh snapshot is a source at its call sites.
	cg := dataflow.BuildCallGraph(pass.Files, pass.TypesInfo)
	imported := pass.Summaries.ObligationsFor(pass.Analyzer.Name)
	sums, _ := dataflow.ComputeObSummaries(cg, pass.TypesInfo, spec, imported)
	spec.Summaries = func(fn *types.Func) (dataflow.ObSummary, bool) {
		if s, ok := sums[fn]; ok {
			return s, true
		}
		s, ok := imported[fn.FullName()]
		return s, ok
	}
	exp := &dataflow.PackageSummaries{}
	exp.AddObligations(pass.Analyzer.Name, sums)
	pass.Export(exp)

	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body, spec)
			for _, fl := range dataflow.FuncLits(fd.Body) {
				checkBody(pass, fl.Body, spec)
			}
		}
	}
	return nil
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt, spec dataflow.LeakSpec) {
	for _, leak := range dataflow.FindLeaks(body, pass.TypesInfo, spec) {
		name := describe(pass, leak.Acquire)
		switch {
		case leak.Immediate:
			pass.Reportf(leak.Acquire.Pos(),
				"snapshot pinned by %s is discarded without Release; the version is never unpinned and superseded pages leak (//dualvet:allow snapleak if intentional)",
				name)
		case len(leak.Chain) > 0:
			verb := "does not release it"
			if leak.Conditional {
				verb = "releases it on only some paths"
			}
			pass.Reportf(leak.Acquire.Pos(),
				"snapshot pinned by %s is passed to %s, which %s; the pin may hold the reclamation watermark forever (//dualvet:allow snapleak if the callee is meant to keep it)",
				name, strings.Join(leak.Chain, " → "), verb)
		default:
			pass.Reportf(leak.Acquire.Pos(),
				"snapshot pinned by %s may not reach Release on every return path; release it on each branch or defer it (//dualvet:allow snapleak if ownership moves elsewhere)",
				name)
		}
	}
}

func describe(pass *framework.Pass, call *ast.CallExpr) string {
	name := types.ExprString(call.Fun)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name = types.ExprString(sel.X) + "." + sel.Sel.Name
	}
	return name
}

// namedIn reports whether t is (a pointer to) the named type typeName
// declared in a package whose import path ends in pkgSuffix.
func namedIn(t types.Type, typeName string) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Name() != typeName {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}

// methodOn reports whether call invokes method name on the named type
// typeName declared in a package whose import path ends in pkgSuffix.
func methodOn(pass *framework.Pass, call *ast.CallExpr, typeName, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Name() != typeName {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}
