// Package framework is a minimal, dependency-free reimplementation of the
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) plus the shared
// execution engine used by both the dualvet vet-tool driver and the
// analysistest harness.
//
// The repository cannot vendor golang.org/x/tools (the build environment is
// offline), so the subset of the go/analysis contract that dualvet needs is
// implemented here against the standard library only: analyzers receive
// parsed, type-checked syntax for one package and report position-anchored
// diagnostics. The cross-package channel is the function-summary bank
// (dataflow.PackageSummaries): the unit driver feeds each pass the summaries
// decoded from its dependencies' vetx records, and analyzers export their own
// package's summaries back for the unit's record — the stdlib-only stand-in
// for go/analysis facts.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dualcdb/internal/analysis/dataflow"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable flags and
	// //dualvet:allow comments. It must be a valid identifier.
	Name string
	// Doc is the help text.
	Doc string
	// Version participates in the vetx cache key: bump it when the check's
	// semantics change so stale warm records are invalidated instead of
	// replayed. The zero value reads as version 1.
	Version int
	// Run executes the check and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// CacheVersion returns the analyzer's effective cache version (zero reads
// as 1, so existing analyzers did not all need an explicit field).
func (a *Analyzer) CacheVersion() int {
	if a.Version <= 0 {
		return 1
	}
	return a.Version
}

// A Pass provides one analyzer with the syntax and type information of a
// single package, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one diagnostic. Diagnostics suppressed by a
	// //dualvet:allow comment are filtered by the engine, not by Report.
	Report func(Diagnostic)
	// Summaries holds the function summaries imported from this package's
	// dependencies (decoded from their vetx records by the unit driver).
	// Nil outside the driver; analyzers treat missing entries as unknown
	// callees, which degrades to the intra-procedural behavior.
	Summaries *dataflow.PackageSummaries
	// exported accumulates the summaries this pass computed for its own
	// package, destined for the unit's vetx record.
	exported *dataflow.PackageSummaries
}

// Export merges s into the pass's exported summary bank, for the unit
// driver to serialize into the vetx record.
func (p *Pass) Export(s *dataflow.PackageSummaries) {
	if s.Empty() {
		return
	}
	if p.exported == nil {
		p.exported = &dataflow.PackageSummaries{}
	}
	p.exported.Merge(s)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the engine
}

// AllowDirective is the comment prefix that suppresses diagnostics:
// `//dualvet:allow name1,name2` on the flagged line or the line directly
// above it.
const AllowDirective = "//dualvet:allow"

// RunPackage executes the analyzers over one type-checked package and
// returns the surviving diagnostics in file/position order, plus the merged
// summary bank the analyzers exported for this package (nil when none).
// imported supplies cross-package summaries from the package's dependencies
// (nil outside the unit driver). Diagnostics on lines carrying (or directly
// below) a matching //dualvet:allow comment are dropped.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, imported *dataflow.PackageSummaries) ([]Diagnostic, *dataflow.PackageSummaries, error) {
	allow := collectAllows(fset, files)
	var out []Diagnostic
	var exported *dataflow.PackageSummaries
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Summaries: imported,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			if d.Pos.IsValid() && allow.allows(fset.Position(d.Pos), name) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		if pass.exported != nil {
			if exported == nil {
				exported = &dataflow.PackageSummaries{}
			}
			exported.Merge(pass.exported)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out, exported, nil
}

// allowSet maps filename → line → analyzer names allowed on that line.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) allows(pos token.Position, name string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive suppresses the line it sits on and the line below it
	// (the "comment on its own line above the statement" idiom).
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if names := lines[ln]; names != nil && (names[name] || names["all"]) {
			return true
		}
	}
	return false
}

func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	s := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowDirective)
				if !ok {
					continue
				}
				// Grammar: `//dualvet:allow name1,name2 optional prose`;
				// only the first whitespace-separated field names analyzers.
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				rest = fields[0]
				pos := fset.Position(c.Pos())
				lines := s[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				for _, n := range strings.Split(rest, ",") {
					if n = strings.TrimSpace(n); n != "" {
						names[n] = true
					}
				}
			}
		}
	}
	return s
}

// NewInfo returns a types.Info with every map the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// IsTestFile reports whether the file's name ends in _test.go. Analyzers
// whose invariants do not apply to test assertions (floatcmp, errsink) use
// it to skip test files.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}
