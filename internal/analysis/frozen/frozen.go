// Package frozen statically pins the MVCC handoff rule: a value published
// through an atomic cell (`ix.roots.Store(rs)`) is immutable from the
// store onward — for the publishing goroutine too, because lock-free
// readers may already hold it. Writes are free between construction and
// publication (that is how publishLocked builds the next rootSet); any
// store after the publication point through the published value, an
// alias of it, or anything reachable from it by field or element path, is
// reported.
//
// The check runs the frozen engine from internal/analysis/dataflow: a
// forward may-analysis over the CFG whose facts are the published roots,
// with the body's alias map folding single-assignment names back to their
// sources. Values read *out* of an atomic cell (Load, Swap's previous
// value) are frozen at birth. Publication summaries travel through vetx:
// a helper that stores its parameter into an atomic cell freezes the
// caller's argument, and one returning a published value (pinRoots) hands
// its callers a frozen result.
//
// Escape hatch: //dualvet:allow frozen on the flagged line (e.g. a
// single-writer construction protocol the analysis cannot see). _test.go
// files are exempt.
package frozen

import (
	"go/ast"
	"go/token"
	"go/types"

	"dualcdb/internal/analysis/dataflow"
	"dualcdb/internal/analysis/framework"
)

// Analyzer is the frozen check.
var Analyzer = &framework.Analyzer{
	Name: "frozen",
	Doc:  "flag stores through values already published via atomic.Pointer/Value",
	Run:  run,
}

func run(pass *framework.Pass) error {
	cg := dataflow.BuildCallGraph(pass.Files, pass.TypesInfo)
	imported := pass.Summaries.PublishBank()
	sums, _ := dataflow.ComputeFreezeSummaries(cg, pass.TypesInfo, dataflow.FreezeSpec{}, imported)
	spec := dataflow.FreezeSpec{
		Summaries: func(fn *types.Func) (dataflow.PubSummary, bool) {
			if s, ok := sums[fn]; ok {
				return s, true
			}
			s, ok := imported[fn.FullName()]
			return s, ok
		},
	}
	exp := &dataflow.PackageSummaries{}
	exp.AddPublish(sums)
	pass.Export(exp)

	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		// A write can surface twice: from the enclosing function's analysis
		// (the closure scan at its occurrence point) and from the closure's
		// own analysis. Report each position once.
		seen := make(map[token.Pos]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body, spec, seen)
			for _, fl := range dataflow.FuncLits(fd.Body) {
				checkBody(pass, fl.Body, spec, seen)
			}
		}
	}
	return nil
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt, spec dataflow.FreezeSpec, seen map[token.Pos]bool) {
	al := dataflow.NewAliases(body, pass.TypesInfo)
	for _, v := range dataflow.FindFrozenViolations(body, pass.TypesInfo, al, spec) {
		if seen[v.Write.Pos()] {
			continue
		}
		seen[v.Write.Pos()] = true
		where := ""
		if v.InGo {
			where = " from a goroutine launched after publication"
		}
		pass.Reportf(v.Write.Pos(),
			"write to %s mutates a value published at line %d (via %s)%s; published values are immutable — clone before publishing or //dualvet:allow frozen with a reason",
			dataflow.DisplayPath(v.Canon), pass.Fset.Position(v.Pub).Line, v.Via, where)
	}
}
