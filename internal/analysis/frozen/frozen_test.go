package frozen_test

import (
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/frozen"
)

func TestFrozen(t *testing.T) {
	analysistest.Run(t, "../testdata", frozen.Analyzer, "frozen")
}
