package lockset_test

import (
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/lockset"
)

func TestLockset(t *testing.T) {
	analysistest.Run(t, "../testdata", lockset.Analyzer, "lockset")
}
