// Package lockset checks mutex discipline over the CFG: re-entrant
// acquisition (sync mutexes self-deadlock), unlock of a lock that is not
// held, double unlock, read/write mode mismatches on RWMutex, and locks
// held on some but not all paths to return.
//
// The check runs the lock-set engine from internal/analysis/dataflow: a
// must/may-held analysis, alias-aware (after `s := p.shards[i]`, `s.mu`
// and `p.shards[i].mu` are one lock) and defer-safe (a deferred unlock
// keeps the lock held through the body and balances it at return).
// Functions that intentionally return holding a lock (Begin) or unlock a
// caller's lock (Commit, Abort) are not reported: the imbalance becomes
// part of their lock summary, serialized through vetx, and call sites are
// checked against it. Unknown callees are presumed lock-neutral.
// Escape hatch: //dualvet:allow lockset on the flagged line. _test.go
// files are exempt.
package lockset

import (
	"go/ast"
	"go/token"
	"go/types"

	"dualcdb/internal/analysis/dataflow"
	"dualcdb/internal/analysis/framework"
)

// Analyzer is the lockset check.
var Analyzer = &framework.Analyzer{
	Name: "lockset",
	Doc:  "flag re-entrant mutex acquisition, unbalanced unlocks, and divergent lock-sets at return",
	Run:  run,
}

func run(pass *framework.Pass) error {
	cg := dataflow.BuildCallGraph(pass.Files, pass.TypesInfo)
	imported := pass.Summaries.LocksFor(pass.Analyzer.Name)
	sums, _ := dataflow.ComputeLockSummaries(cg, pass.TypesInfo, dataflow.LockSpec{}, imported)
	spec := dataflow.LockSpec{
		Summaries: func(fn *types.Func) (dataflow.LockSummary, bool) {
			if s, ok := sums[fn]; ok {
				return s, true
			}
			s, ok := imported[fn.FullName()]
			return s, ok
		},
	}
	exp := &dataflow.PackageSummaries{}
	exp.AddLocks(pass.Analyzer.Name, sums)
	pass.Export(exp)

	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			al := dataflow.NewAliases(fd.Body, pass.TypesInfo)
			var params []*types.Var
			if fn, okFn := pass.TypesInfo.Defs[fd.Name].(*types.Func); okFn {
				params = dataflow.FlatParams(fn)
			}
			checkBody(pass, fd.Body, al, spec, params, nil)
		}
	}
	return nil
}

// checkBody analyzes one body (function or closure; closures recurse via
// the FuncLit hook with the lock fact at their occurrence).
func checkBody(pass *framework.Pass, body *ast.BlockStmt, al *dataflow.Aliases, spec dataflow.LockSpec, params []*types.Var, entry *dataflow.LockFact) {
	eng := dataflow.NewLockEngine(body, pass.TypesInfo, al, spec, params)
	if entry != nil {
		eng.SetEntry(*entry)
	}
	eng.Run()

	line := func(p token.Pos) int { return pass.Fset.Position(p).Line }
	show := dataflow.DisplayPath

	hooks := &dataflow.LockHooks{
		Acquire: func(call *ast.CallExpr, canon string, acq dataflow.LockAcq, already *dataflow.LockAcq) {
			if already == nil {
				return
			}
			switch {
			case already.Mode == dataflow.LockExcl:
				pass.Reportf(call.Pos(),
					"%s is acquired again while already locked (since line %d); sync mutexes are not reentrant, this deadlocks (//dualvet:allow lockset if the receiver differs at runtime)",
					show(canon), line(already.Pos))
			case acq.Mode == dataflow.LockExcl:
				pass.Reportf(call.Pos(),
					"%s write-lock upgrade while read-locked (RLock at line %d) deadlocks; release the read lock first",
					show(canon), line(already.Pos))
			default:
				pass.Reportf(call.Pos(),
					"recursive read lock of %s (RLock at line %d) can deadlock with a pending writer (//dualvet:allow lockset if no writer exists)",
					show(canon), line(already.Pos))
			}
		},
		Release: func(call *ast.CallExpr, canon string, mode dataflow.LockMode, held *dataflow.LockAcq, prevRel token.Pos, localRoot bool, paramIdx int) {
			if held != nil {
				if mode == dataflow.LockExcl && held.Mode == dataflow.LockRead {
					pass.Reportf(call.Pos(),
						"Unlock of %s which is held in read mode (RLock at line %d); use RUnlock",
						show(canon), line(held.Pos))
				} else if mode == dataflow.LockRead && held.Mode == dataflow.LockExcl && !held.Try {
					pass.Reportf(call.Pos(),
						"RUnlock of %s which is held in write mode (Lock at line %d); use Unlock",
						show(canon), line(held.Pos))
				}
				return
			}
			if prevRel.IsValid() {
				pass.Reportf(call.Pos(),
					"%s is unlocked twice (previous unlock at line %d); the second unlock panics at runtime",
					show(canon), line(prevRel))
				return
			}
			if localRoot && paramIdx < 0 {
				pass.Reportf(call.Pos(),
					"unlock of %s which is not held on any path here; unlocking an unlocked mutex panics",
					show(canon))
			}
			// Parameter/receiver-rooted releases without a hold are the
			// Commit/Abort contract and land in the summary instead.
		},
	}
	hooks.FuncLit = func(fl *ast.FuncLit, f *dataflow.LockFact, isGo bool) {
		var childEntry *dataflow.LockFact
		if !isGo {
			childEntry = f
		}
		checkBody(pass, fl.Body, al, spec, nil, childEntry)
	}
	eng.Replay(hooks)

	// Divergent exit: held on at least one path to return but not all of
	// them — almost always a missed unlock on an early return. TryLock
	// acquisitions and deferred unlocks are exempt (the success branch and
	// the defer both balance legitimately).
	exit := eng.ExitFact()
	if !exit.Unreached {
		for canon, acq := range exit.May {
			if acq.Try {
				continue
			}
			if _, must := exit.Must[canon]; must {
				continue
			}
			if _, deferred := exit.DeferRel[canon]; deferred {
				continue
			}
			pass.Reportf(acq.Pos,
				"%s acquired here is released on some return paths but still held on others; unlock it on every path or defer the unlock (//dualvet:allow lockset if a callee releases it)",
				show(canon))
		}
	}
}
