// Package analysistest runs a framework.Analyzer over golden packages under
// testdata/src and checks its diagnostics against // want comments — the
// same contract as golang.org/x/tools/go/analysis/analysistest, rebuilt on
// the standard library.
//
// A test package lives in <testdata>/src/<importpath>/. Imports are resolved
// first against sibling testdata packages, then against the standard library
// via the source importer (go/importer "source"), so golden files can model
// cross-package shapes (a fake pagestore for errsink) without a module
// proxy.
//
// Expectations are trailing comments on the offending line:
//
//	x := top == bot // want `exact floating-point`
//
// Each backquoted or double-quoted string is a regexp that must match the
// message of exactly one diagnostic reported on that line; diagnostics with
// no matching expectation, and expectations with no matching diagnostic,
// fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dualcdb/internal/analysis/framework"
)

// The source importer type-checks the standard library from GOROOT source;
// that is slow enough (tens of ms per package tree) to be worth sharing
// across every test in the process. All loads are serialized by mu.
var (
	mu       sync.Mutex
	fset     = token.NewFileSet()
	stdImp   types.Importer
	pkgCache = map[string]*loadedPkg{}
)

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

// Run loads <testdata>/src/<pkgpath>, runs the analyzer on it and reports
// mismatches against the package's // want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgpath string) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()
	if stdImp == nil {
		stdImp = importer.ForCompiler(fset, "source", nil)
	}
	lp := load(testdata, pkgpath)
	if lp.err != nil {
		t.Fatalf("loading %s: %v", pkgpath, lp.err)
	}
	// No imported summaries: golden packages exercise the interprocedural
	// analyzers through same-package helpers (cross-package delivery is the
	// unit driver's vetx path, covered by its own tests).
	diags, _, err := framework.RunPackage(fset, lp.files, lp.pkg, lp.info, []*framework.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	checkWants(t, lp.files, diags)
}

func load(testdata, pkgpath string) *loadedPkg {
	key := testdata + "\x00" + pkgpath
	if lp, ok := pkgCache[key]; ok {
		return lp
	}
	lp := &loadedPkg{}
	pkgCache[key] = lp

	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		lp.err = err
		return lp
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		lp.err = fmt.Errorf("no Go files in %s", dir)
		return lp
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			lp.err = err
			return lp
		}
		lp.files = append(lp.files, f)
	}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if st, err := os.Stat(filepath.Join(testdata, "src", filepath.FromSlash(path))); err == nil && st.IsDir() {
			sib := load(testdata, path)
			return sib.pkg, sib.err
		}
		return stdImp.Import(path)
	})
	lp.info = framework.NewInfo()
	tc := &types.Config{Importer: imp}
	lp.pkg, lp.err = tc.Check(pkgpath, fset, lp.files, lp.info)
	return lp
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one // want regexp with its anchor line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRx = regexp.MustCompile(`// want (.*)$`)

func checkWants(t *testing.T, files []*ast.File, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitLiterals(m[1]) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitLiterals parses the space-separated Go string literals after "want".
func splitLiterals(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(out, s[1:])
			}
			lit, s = s[1:1+end], s[2+end:]
		case '"':
			// Find the closing quote, honoring escapes.
			i := 1
			for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
				i++
			}
			if i >= len(s) {
				return append(out, s[1:])
			}
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				unq = s[1:i]
			}
			lit, s = unq, s[i+1:]
		default:
			// Not a literal: stop.
			return out
		}
		out = append(out, lit)
		s = strings.TrimSpace(s)
	}
	return out
}
