// Package floatcmp flags exact equality comparisons (and switch statements)
// on floating-point values.
//
// The dual representation reduces ALL/EXIST selection to comparing the query
// intercept against evaluated TOP/BOT envelopes (Prop. 2.2), so every float
// comparison on the query path must go through the repository's Eps
// tolerance (geom.Eps, geom.Point.Eq) — a raw == between two computed
// surface values silently diverges from the refinement predicate.
//
// Allowed without annotation:
//   - comparisons against an exact sentinel: the literal constant 0 (division
//     and sign guards) or ±Inf (math.Inf calls, math.MaxFloat64-style consts
//     are NOT exempt);
//   - the x != x NaN idiom;
//   - comparisons where both operands are compile-time constants;
//   - epsilon helpers themselves (function names Eq, feq, approxEq,
//     almostEqual, EqualWithin);
//   - test files (exact expected values are deliberate there);
//   - lines annotated //dualvet:allow floatcmp — required for intentional
//     exact total orders such as sort tie-breaks and B⁺-tree key ordering.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"dualcdb/internal/analysis/framework"
)

// Analyzer is the floatcmp check.
var Analyzer = &framework.Analyzer{
	Name: "floatcmp",
	Doc:  "flag exact ==/!=/switch comparisons on floating-point values outside epsilon helpers and exact-sentinel checks",
	Run:  run,
}

// allowedFuncs are epsilon-helper names whose bodies may compare exactly.
var allowedFuncs = map[string]bool{
	"Eq": true, "feq": true, "approxEq": true, "almostEqual": true, "EqualWithin": true,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloat(pass, n.X) && !isFloat(pass, n.Y) {
					return true
				}
				if comparisonAllowed(pass, n, stack) {
					return true
				}
				pass.Reportf(n.OpPos,
					"exact floating-point %s comparison; use an epsilon tolerance (math.Abs(a-b) <= geom.Eps, geom.Point.Eq) or annotate //dualvet:allow floatcmp for an intentional exact order", n.Op)
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(pass, n.Tag) {
					pass.Reportf(n.Switch,
						"switch on a floating-point value compares exactly; rewrite with epsilon-tolerant if/else or annotate //dualvet:allow floatcmp")
				}
			}
			return true
		})
	}
	return nil
}

func isFloat(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func comparisonAllowed(pass *framework.Pass, cmp *ast.BinaryExpr, stack []ast.Node) bool {
	// x != x / x == x: the NaN self-comparison idiom.
	if types.ExprString(cmp.X) == types.ExprString(cmp.Y) {
		return true
	}
	xc, yc := constVal(pass, cmp.X), constVal(pass, cmp.Y)
	// Both sides compile-time constants: the comparison is exact by
	// construction (e.g. table-driven option validation).
	if xc != nil && yc != nil {
		return true
	}
	// Exact sentinels: literal zero and ±Inf.
	for _, c := range [2]constant.Value{xc, yc} {
		if c != nil && constant.Compare(c, token.EQL, constant.MakeInt64(0)) {
			return true
		}
	}
	if isInfCall(pass, cmp.X) || isInfCall(pass, cmp.Y) {
		return true
	}
	// Epsilon helpers may compare exactly in their own bodies.
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok && allowedFuncs[fd.Name.Name] {
			return true
		}
	}
	return false
}

func constVal(pass *framework.Pass, e ast.Expr) constant.Value {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// isInfCall reports whether e is a call to math.Inf.
func isInfCall(pass *framework.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Inf" {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "math"
}
