package floatcmp_test

import (
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	for _, pkg := range []string{"floatcmp"} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, "../testdata", floatcmp.Analyzer, pkg)
		})
	}
}
