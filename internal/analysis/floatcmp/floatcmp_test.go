package floatcmp_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/floatcmp"
	"dualcdb/internal/analysis/framework"
)

func TestFloatcmp(t *testing.T) {
	for _, pkg := range []string{"floatcmp"} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, "../testdata", floatcmp.Analyzer, pkg)
		})
	}
}

// TestAllowIsLoadBearing checks the call-site suppression end to end: the
// same exact comparison must be flagged without the directive and silent
// with it.
func TestAllowIsLoadBearing(t *testing.T) {
	const tmpl = `package p

func exact(a, b float64) bool {
	return a == b%s
}
`
	for _, tc := range []struct {
		name, directive string
		want            int
	}{
		{"bare", "", 1},
		{"allowed", " //dualvet:allow floatcmp — exact total order", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "p/p.go", fmt.Sprintf(tmpl, tc.directive), parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			info := framework.NewInfo()
			pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
			if err != nil {
				t.Fatal(err)
			}
			diags, _, err := framework.RunPackage(fset, []*ast.File{f}, pkg, info, []*framework.Analyzer{floatcmp.Analyzer}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) != tc.want {
				t.Fatalf("want %d diagnostics, got %d: %v", tc.want, len(diags), diags)
			}
		})
	}
}
