// Package lockorder flags functions that acquire a sync.Mutex/RWMutex held
// in some value's field and then, while the lock may still be held, call an
// exported method on that same value.
//
// Exported methods are a type's public entry points and routinely take the
// same lock (the sharded buffer pool's shard mutex pattern from PR 1):
// calling one with the lock held self-deadlocks on the first schedule that
// reaches it, or establishes a lock-order cycle between shards. The
// convention enforced here is the repository's `fooLocked` idiom — work done
// under a lock goes through unexported *Locked helpers.
//
// The analysis is intra-procedural and alias-aware: lock owners are
// canonicalized through internal/analysis/dataflow's single-assignment
// alias map, so `s := p.shards[i]; s.mu.Lock(); ... p.shards[i].Stats()`
// names one mutex, not two. Held-lock facts flow over the function's CFG as
// a may-analysis — an acquisition `v.mu.Lock()` opens a hazard window on
// the canonical value of `v` that a plain (non-deferred) `v.mu.Unlock()`
// closes on that path; exported method calls `v.M()` inside a window, on
// any path, are reported. Escape hatch: //dualvet:allow lockorder on the
// call line, for exported methods documented as lock-free.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"dualcdb/internal/analysis/dataflow"
	"dualcdb/internal/analysis/framework"
)

// Analyzer is the lockorder check.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc:  "flag exported method calls on a value whose mutex field the function may still hold",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			eng := &lockEngine{pass: pass, al: dataflow.NewAliases(fd.Body, pass.TypesInfo)}
			eng.checkBody(fd.Body)
		}
	}
	return nil
}

// heldSet maps a canonical lock-owner path to the position of the earliest
// acquisition that may still be open.
type heldSet map[string]token.Pos

type heldLattice struct{}

func (heldLattice) Bottom() heldSet { return heldSet{} }

func (heldLattice) Clone(f heldSet) heldSet {
	c := make(heldSet, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// Join is may-held union; the earliest acquisition position wins so the
// report is deterministic.
func (heldLattice) Join(dst, src heldSet) (heldSet, bool) {
	changed := false
	for k, v := range src {
		if old, ok := dst[k]; !ok || v < old {
			dst[k] = v
			changed = true
		}
	}
	return dst, changed
}

type lockEngine struct {
	pass *framework.Pass
	al   *dataflow.Aliases
}

func (eng *lockEngine) checkBody(body *ast.BlockStmt) {
	cfg := dataflow.New(body)
	lat := heldLattice{}
	in := dataflow.Forward[heldSet](cfg, lat, func(b *dataflow.Block, f heldSet) heldSet {
		for _, n := range b.Nodes {
			eng.processNode(f, n, false)
		}
		return f
	})
	for _, b := range cfg.Blocks {
		if !b.Live {
			continue
		}
		f := lat.Clone(in[b.Index])
		for _, n := range b.Nodes {
			eng.processNode(f, n, true)
			// A closure body runs at some later schedule with its own lock
			// state; analyze it as its own function.
			for _, fl := range funcLitsShallow(n) {
				inner := &lockEngine{pass: eng.pass, al: dataflow.NewAliases(fl.Body, eng.pass.TypesInfo)}
				inner.checkBody(fl.Body)
			}
		}
	}
}

// processNode applies (and, in report mode, checks) the lock events and
// method calls inside one CFG node, in evaluation order.
func (eng *lockEngine) processNode(f heldSet, n ast.Node, report bool) {
	deferCall := map[*ast.CallExpr]bool{}
	if ds, ok := n.(*ast.DeferStmt); ok {
		// The deferred call itself runs at return — its lock/unlock effect
		// is outside every window here — but its arguments evaluate now.
		deferCall[ds.Call] = true
	}
	dataflow.WalkShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := eng.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		if owner, op, isMutex := mutexOp(fn, sel); isMutex {
			if deferCall[call] {
				return true
			}
			key := eng.al.Canon(owner)
			switch op {
			case "Lock", "RLock":
				if old, held := f[key]; !held || call.Pos() < old {
					f[key] = call.Pos()
				}
			case "Unlock", "RUnlock":
				delete(f, key)
			}
			return true
		}
		if report && !deferCall[call] && ast.IsExported(fn.Name()) &&
			fn.Type().(*types.Signature).Recv() != nil {
			if lockPos, held := f[eng.al.Canon(sel.X)]; held {
				root := types.ExprString(sel.X)
				eng.pass.Reportf(call.Pos(),
					"%s.%s() is called while %s's mutex is held (locked at %s); exported methods may re-acquire it — use an unexported *Locked helper or release first",
					root, fn.Name(), root, eng.pass.Fset.Position(lockPos))
			}
		}
		return true
	})
}

// mutexOp recognizes sel as a Lock/RLock/Unlock/RUnlock call on a
// sync.Mutex or sync.RWMutex reached through a field of some value, and
// returns that owning value expression (`sh` for sh.mu.Lock()).
func mutexOp(fn *types.Func, sel *ast.SelectorExpr) (owner ast.Expr, op string, ok bool) {
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	// sel.X is the mutex value; require it to be a field selection so we
	// can name the owning value.
	mutexSel, okSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !okSel {
		return nil, "", false
	}
	return mutexSel.X, fn.Name(), true
}

// funcLitsShallow returns the function literals directly under a node (not
// nested inside other literals).
func funcLitsShallow(n ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	if a, ok := n.(*dataflow.Assume); ok {
		n = a.Cond
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok {
			out = append(out, fl)
			return false
		}
		return true
	})
	return out
}
