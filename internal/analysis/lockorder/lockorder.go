// Package lockorder flags functions that acquire a sync.Mutex/RWMutex held
// in some value's field and then, while the lock is positionally still held,
// call an exported method on that same value.
//
// Exported methods are a type's public entry points and routinely take the
// same lock (the sharded buffer pool's shard mutex pattern from PR 1):
// calling one with the lock held self-deadlocks on the first schedule that
// reaches it, or establishes a lock-order cycle between shards. The
// convention enforced here is the repository's `fooLocked` idiom — work done
// under a lock goes through unexported *Locked helpers.
//
// The analysis is syntactic within one function: an acquisition
// `v.mu.Lock()` opens a hazard window on the value expression `v` that a
// plain (non-deferred) `v.mu.Unlock()` closes; exported method calls `v.M()`
// inside a window are reported. Escape hatch: //dualvet:allow lockorder on
// the call line, for exported methods documented as lock-free.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"dualcdb/internal/analysis/framework"
)

// Analyzer is the lockorder check.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc:  "flag exported method calls on a value whose mutex field the function still holds",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type lockEvent struct {
	root     string // rendering of the value whose mutex field is locked
	pos      token.Pos
	unlock   bool
	rlock    bool
	deferred bool
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	var events []lockEvent
	type methodCall struct {
		root string
		name string
		pos  token.Pos
	}
	var calls []methodCall

	// Inspect visits a defer's CallExpr both via the DeferStmt and as a child
	// node; mark it at the DeferStmt and classify at the CallExpr visit only.
	deferCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferCalls[n.Call] = true
			return true
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		deferred := deferCalls[call]
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		if root, op, ok := mutexOp(pass, sel, fn); ok {
			events = append(events, lockEvent{
				root:     root,
				pos:      call.Pos(),
				unlock:   op == "Unlock" || op == "RUnlock",
				rlock:    op == "RLock" || op == "RUnlock",
				deferred: deferred,
			})
			return true
		}
		if !deferred && ast.IsExported(fn.Name()) && fn.Type().(*types.Signature).Recv() != nil {
			calls = append(calls, methodCall{root: types.ExprString(sel.X), name: fn.Name(), pos: call.Pos()})
		}
		return true
	})

	for _, c := range calls {
		var held *lockEvent
		for i := range events {
			e := &events[i]
			if e.root != c.root || e.pos >= c.pos || e.deferred {
				continue
			}
			if e.unlock {
				held = nil
			} else {
				held = e
			}
		}
		if held != nil {
			pass.Reportf(c.pos,
				"%s.%s() is called while %s's mutex is held (locked at %s); exported methods may re-acquire it — use an unexported *Locked helper or release first",
				c.root, c.name, c.root, pass.Fset.Position(held.pos))
		}
	}
}

// mutexOp recognizes sel as a Lock/RLock/Unlock/RUnlock call on a
// sync.Mutex or sync.RWMutex reached through a field of some value, and
// returns the rendering of that value (`sh` for sh.mu.Lock()).
func mutexOp(pass *framework.Pass, sel *ast.SelectorExpr, fn *types.Func) (root, op string, ok bool) {
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	// sel.X is the mutex value; require it to be a field selection so we
	// can name the owning value.
	owner, okSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	return types.ExprString(owner.X), fn.Name(), true
}
