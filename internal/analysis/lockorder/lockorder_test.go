package lockorder_test

import (
	"testing"

	"dualcdb/internal/analysis/analysistest"
	"dualcdb/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	for _, pkg := range []string{"lockorder"} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, "../testdata", lockorder.Analyzer, pkg)
		})
	}
}
