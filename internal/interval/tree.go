// Package interval implements a paged, static interval tree — the
// "1-dimensional interval management" structure the paper's footnote 6
// points to as an alternative realization of the restricted ALL/EXIST
// problem: under the dual transform every tuple becomes, at a fixed slope
// a_i, the interval [BOT^P(a_i), TOP^P(a_i)], and a query line with slope
// a_i stabs exactly the tuples it intersects.
//
// The structure is the classical endpoint-median interval tree laid out on
// pages: each node stores its median and two chained lists of the
// intervals crossing it — one sorted by ascending low endpoint, one by
// descending high endpoint — so a stabbing query reads only the list
// prefixes it reports, O(log n + t/B) pages. Intervals may have infinite
// endpoints (unbounded tuples).
package interval

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"dualcdb/internal/pagestore"
)

// Interval is one stored interval with its tuple id.
type Interval struct {
	Lo, Hi float64
	TID    uint32
}

// Valid reports Lo ≤ Hi.
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi && !math.IsNaN(iv.Lo) && !math.IsNaN(iv.Hi) }

// Contains reports whether x stabs the closed interval.
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// Page layout.
//
// Node page (type 1):
//
//	[0]      type
//	[1:9]    median (float64)
//	[9:13]   left child page
//	[13:17]  right child page
//	[17:21]  loList head page (crossing intervals by ascending Lo)
//	[21:25]  hiList head page (crossing intervals by descending Hi)
//
// List page (type 2):
//
//	[0]      type
//	[1:3]    count
//	[4:8]    next page
//	[8:]     entries: Lo (8), Hi (8), TID (4) = 20 bytes
const (
	typeNode     = 1
	typeList     = 2
	listHeader   = 8
	ivEntrySize  = 20
	nodeMinPages = 1
)

// Tree is a paged static interval tree.
type Tree struct {
	pool  *pagestore.Pool
	root  pagestore.PageID
	size  int
	pages int
	cap   int // list entries per page
}

// Build constructs the tree over the given intervals.
func Build(pool *pagestore.Pool, ivs []Interval) (*Tree, error) {
	t := &Tree{pool: pool}
	t.cap = (pool.PageSize() - listHeader) / ivEntrySize
	if t.cap < 2 {
		return nil, fmt.Errorf("interval: page size %d too small", pool.PageSize())
	}
	for _, iv := range ivs {
		if !iv.Valid() {
			return nil, fmt.Errorf("interval: invalid interval %+v", iv)
		}
	}
	work := append([]Interval(nil), ivs...)
	root, err := t.build(work)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.size = len(ivs)
	return t, nil
}

// Size returns the number of stored intervals.
func (t *Tree) Size() int { return t.size }

// Pages returns the number of pages the tree occupies.
func (t *Tree) Pages() int { return t.pages }

// build recursively writes the subtree for ivs and returns its node page
// (InvalidPage for an empty set).
func (t *Tree) build(ivs []Interval) (pagestore.PageID, error) {
	if len(ivs) == 0 {
		return pagestore.InvalidPage, nil
	}
	med := medianEndpoint(ivs)
	var left, right, cross []Interval
	for _, iv := range ivs {
		switch {
		case iv.Hi < med:
			left = append(left, iv)
		case iv.Lo > med:
			right = append(right, iv)
		default:
			cross = append(cross, iv)
		}
	}
	// Degenerate guard: if nothing crosses and one side got everything,
	// split arbitrarily by count to bound the depth (can happen only with
	// pathological float medians).
	if len(cross) == 0 && (len(left) == len(ivs) || len(right) == len(ivs)) {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
		half := len(ivs) / 2
		cross = ivs[half : half+1]
		left = ivs[:half]
		right = ivs[half+1:]
	}

	byLo := append([]Interval(nil), cross...)
	sort.Slice(byLo, func(i, j int) bool { return byLo[i].Lo < byLo[j].Lo })
	byHi := append([]Interval(nil), cross...)
	sort.Slice(byHi, func(i, j int) bool { return byHi[i].Hi > byHi[j].Hi })

	loHead, err := t.writeList(byLo)
	if err != nil {
		return pagestore.InvalidPage, err
	}
	hiHead, err := t.writeList(byHi)
	if err != nil {
		return pagestore.InvalidPage, err
	}
	leftPage, err := t.build(left)
	if err != nil {
		return pagestore.InvalidPage, err
	}
	rightPage, err := t.build(right)
	if err != nil {
		return pagestore.InvalidPage, err
	}

	f, err := t.pool.NewPage()
	if err != nil {
		return pagestore.InvalidPage, err
	}
	t.pages++
	d := f.Data()
	d[0] = typeNode
	binary.LittleEndian.PutUint64(d[1:9], math.Float64bits(med))
	binary.LittleEndian.PutUint32(d[9:13], uint32(leftPage))
	binary.LittleEndian.PutUint32(d[13:17], uint32(rightPage))
	binary.LittleEndian.PutUint32(d[17:21], uint32(loHead))
	binary.LittleEndian.PutUint32(d[21:25], uint32(hiHead))
	f.MarkDirty()
	id := f.ID()
	f.Release()
	return id, nil
}

// medianEndpoint returns the median of all finite endpoints (falling back
// to 0 when every endpoint is infinite).
func medianEndpoint(ivs []Interval) float64 {
	pts := make([]float64, 0, 2*len(ivs))
	for _, iv := range ivs {
		if !math.IsInf(iv.Lo, 0) {
			pts = append(pts, iv.Lo)
		}
		if !math.IsInf(iv.Hi, 0) {
			pts = append(pts, iv.Hi)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	sort.Float64s(pts)
	return pts[len(pts)/2]
}

// writeList stores the intervals in a chain of list pages.
func (t *Tree) writeList(ivs []Interval) (pagestore.PageID, error) {
	if len(ivs) == 0 {
		return pagestore.InvalidPage, nil
	}
	var head pagestore.PageID
	var prev *pagestore.Frame
	for off := 0; off < len(ivs); off += t.cap {
		f, err := t.pool.NewPage()
		if err != nil {
			return pagestore.InvalidPage, err
		}
		t.pages++
		d := f.Data()
		d[0] = typeList
		end := off + t.cap
		if end > len(ivs) {
			end = len(ivs)
		}
		binary.LittleEndian.PutUint16(d[1:3], uint16(end-off))
		for i := off; i < end; i++ {
			o := listHeader + (i-off)*ivEntrySize
			binary.LittleEndian.PutUint64(d[o:o+8], math.Float64bits(ivs[i].Lo))
			binary.LittleEndian.PutUint64(d[o+8:o+16], math.Float64bits(ivs[i].Hi))
			binary.LittleEndian.PutUint32(d[o+16:o+20], ivs[i].TID)
		}
		f.MarkDirty()
		if head == pagestore.InvalidPage {
			head = f.ID()
		}
		if prev != nil {
			binary.LittleEndian.PutUint32(prev.Data()[4:8], uint32(f.ID()))
			prev.MarkDirty()
			prev.Release()
		}
		prev = f
	}
	binary.LittleEndian.PutUint32(prev.Data()[4:8], 0)
	prev.MarkDirty()
	prev.Release()
	return head, nil
}

// Stab reports every interval containing x, in arbitrary order. It returns
// the number of pages visited.
func (t *Tree) Stab(x float64, emit func(Interval)) (int, error) {
	visited := 0
	id := t.root
	for id != pagestore.InvalidPage {
		f, err := t.pool.Get(id)
		if err != nil {
			return visited, err
		}
		visited++
		d := f.Data()
		if d[0] != typeNode {
			f.Release()
			return visited, fmt.Errorf("interval: page %d is not a node", id)
		}
		med := math.Float64frombits(binary.LittleEndian.Uint64(d[1:9]))
		left := pagestore.PageID(binary.LittleEndian.Uint32(d[9:13]))
		right := pagestore.PageID(binary.LittleEndian.Uint32(d[13:17]))
		loHead := pagestore.PageID(binary.LittleEndian.Uint32(d[17:21]))
		hiHead := pagestore.PageID(binary.LittleEndian.Uint32(d[21:25]))
		f.Release()

		if x <= med {
			// Crossing intervals contain x iff Lo ≤ x; the loList prefix.
			v, err := t.scanList(loHead, func(iv Interval) bool {
				if iv.Lo > x {
					return false
				}
				emit(iv)
				return true
			})
			visited += v
			if err != nil {
				return visited, err
			}
			if x == med { //dualvet:allow floatcmp — med is a stored endpoint; only an exact hit makes the left subtree redundant
				id = pagestore.InvalidPage
			} else {
				id = left
			}
		} else {
			v, err := t.scanList(hiHead, func(iv Interval) bool {
				if iv.Hi < x {
					return false
				}
				emit(iv)
				return true
			})
			visited += v
			if err != nil {
				return visited, err
			}
			id = right
		}
	}
	return visited, nil
}

// scanList walks a list chain calling fn until it returns false.
func (t *Tree) scanList(head pagestore.PageID, fn func(Interval) bool) (int, error) {
	visited := 0
	for id := head; id != pagestore.InvalidPage; {
		f, err := t.pool.Get(id)
		if err != nil {
			return visited, err
		}
		visited++
		d := f.Data()
		count := int(binary.LittleEndian.Uint16(d[1:3]))
		next := pagestore.PageID(binary.LittleEndian.Uint32(d[4:8]))
		for i := 0; i < count; i++ {
			o := listHeader + i*ivEntrySize
			iv := Interval{
				Lo:  math.Float64frombits(binary.LittleEndian.Uint64(d[o : o+8])),
				Hi:  math.Float64frombits(binary.LittleEndian.Uint64(d[o+8 : o+16])),
				TID: binary.LittleEndian.Uint32(d[o+16 : o+20]),
			}
			if !fn(iv) {
				f.Release()
				return visited, nil
			}
		}
		f.Release()
		id = next
	}
	return visited, nil
}
