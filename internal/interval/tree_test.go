package interval

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dualcdb/internal/pagestore"
)

func newPool() *pagestore.Pool {
	return pagestore.NewPool(pagestore.NewMemStore(1024), 1<<14)
}

func randIntervals(rng *rand.Rand, n int) []Interval {
	out := make([]Interval, n)
	for i := range out {
		a := rng.Float64()*200 - 100
		b := a + rng.Float64()*30
		out[i] = Interval{Lo: a, Hi: b, TID: uint32(i + 1)}
	}
	return out
}

func stabIDs(t *testing.T, tr *Tree, x float64) []uint32 {
	t.Helper()
	var ids []uint32
	if _, err := tr.Stab(x, func(iv Interval) { ids = append(ids, iv.TID) }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestStabMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ivs := randIntervals(rng, 3000)
	tr, err := Build(newPool(), ivs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		x := rng.Float64()*240 - 120
		got := stabIDs(t, tr, x)
		var want []uint32
		for _, iv := range ivs {
			if iv.Contains(x) {
				want = append(want, iv.TID)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("x=%v: got %d, want %d", x, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("x=%v: mismatch at %d", x, i)
			}
		}
	}
}

func TestStabInfiniteEndpoints(t *testing.T) {
	ivs := []Interval{
		{Lo: math.Inf(-1), Hi: 0, TID: 1},
		{Lo: 0, Hi: math.Inf(1), TID: 2},
		{Lo: math.Inf(-1), Hi: math.Inf(1), TID: 3},
		{Lo: 5, Hi: 6, TID: 4},
	}
	tr, err := Build(newPool(), ivs)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want []uint32
	}{
		{-100, []uint32{1, 3}},
		{0, []uint32{1, 2, 3}},
		{5.5, []uint32{2, 3, 4}},
		{100, []uint32{2, 3}},
	}
	for _, c := range cases {
		got := stabIDs(t, tr, c.x)
		if len(got) != len(c.want) {
			t.Fatalf("x=%v: got %v, want %v", c.x, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("x=%v: got %v, want %v", c.x, got, c.want)
			}
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	tr, err := Build(newPool(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := stabIDs(t, tr, 0); len(got) != 0 {
		t.Fatalf("empty tree: %v", got)
	}
	// All-identical intervals (degenerate median).
	ivs := make([]Interval, 200)
	for i := range ivs {
		ivs[i] = Interval{Lo: 1, Hi: 2, TID: uint32(i + 1)}
	}
	tr, err = Build(newPool(), ivs)
	if err != nil {
		t.Fatal(err)
	}
	if got := stabIDs(t, tr, 1.5); len(got) != 200 {
		t.Fatalf("identical intervals: %d found", len(got))
	}
	if got := stabIDs(t, tr, 3); len(got) != 0 {
		t.Fatalf("outside: %v", got)
	}
	// Invalid interval rejected.
	if _, err := Build(newPool(), []Interval{{Lo: 2, Hi: 1}}); err == nil {
		t.Fatal("inverted interval must be rejected")
	}
	if _, err := Build(newPool(), []Interval{{Lo: math.NaN(), Hi: 1}}); err == nil {
		t.Fatal("NaN endpoint must be rejected")
	}
}

func TestStabIOBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Short intervals: selective stabs must touch few pages.
	ivs := make([]Interval, 5000)
	for i := range ivs {
		a := rng.Float64()*200 - 100
		ivs[i] = Interval{Lo: a, Hi: a + 0.5, TID: uint32(i + 1)}
	}
	tr, err := Build(newPool(), ivs)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	visited, err := tr.Stab(0, func(Interval) { found++ })
	if err != nil {
		t.Fatal(err)
	}
	// O(log n) nodes + t/B list pages: generous bound.
	if visited > 40+found/2 {
		t.Fatalf("stab visited %d pages for %d results over %d pages total",
			visited, found, tr.Pages())
	}
}

func TestQuickStabEquivalence(t *testing.T) {
	type ivSpec struct {
		Lo   int16
		Len  uint8
		Stab int16
	}
	f := func(specs []ivSpec) bool {
		if len(specs) == 0 {
			return true
		}
		ivs := make([]Interval, len(specs))
		for i, s := range specs {
			lo := float64(s.Lo) / 64
			ivs[i] = Interval{Lo: lo, Hi: lo + float64(s.Len)/16, TID: uint32(i + 1)}
		}
		tr, err := Build(newPool(), ivs)
		if err != nil {
			return false
		}
		x := float64(specs[0].Stab) / 64
		got := make(map[uint32]bool)
		if _, err := tr.Stab(x, func(iv Interval) { got[iv.TID] = true }); err != nil {
			return false
		}
		for _, iv := range ivs {
			if got[iv.TID] != iv.Contains(x) {
				return false
			}
		}
		return len(got) <= len(ivs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
